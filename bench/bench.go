// Package bench exposes the evaluation harness that regenerates the
// paper's artifacts: the Table 1 decision matrix (each decision
// procedure against ground truth on the hardness families and planted
// workloads) and the scaling series for the tractable special cases.
// Command gedbench is a thin CLI over this package.
package bench

import (
	"io"

	"gedlib/internal/bench"
)

// Row is one cell of the Table 1 reproduction.
type Row = bench.Row

// Report is a collection of measured rows.
type Report = bench.Report

// ScalingPoint is one measurement of a scaling series.
type ScalingPoint = bench.ScalingPoint

// Table1 measures every decision procedure against ground truth; quick
// skips the slowest instances (the Grötzsch graph).
func Table1(quick bool) *Report { return bench.Table1(quick) }

// BoundedPatternValidation measures validation time on growing graphs
// with fixed-size patterns (Section 5.3: PTIME).
func BoundedPatternValidation(sizes []int) []ScalingPoint {
	return bench.BoundedPatternValidation(sizes)
}

// GFDxSatConstant measures GFDx satisfiability on growing rule sets
// (Theorem 3: O(1) beyond the class scan).
func GFDxSatConstant(sizes []int) []ScalingPoint { return bench.GFDxSatConstant(sizes) }

// WriteScaling renders a scaling series as an aligned table.
func WriteScaling(w io.Writer, name string, pts []ScalingPoint) { bench.WriteScaling(w, name, pts) }

// MatchPoint is one measurement of the match-enumeration comparison:
// the legacy scan-and-probe extension step versus worst-case-optimal
// sorted-run intersection with pushed-down literal postings.
type MatchPoint = bench.MatchPoint

// MatchEnumeration measures both extension strategies on the
// triangle/diamond-heavy and selective-literal knowledge-base
// scenarios; quick shrinks the instance for CI.
func MatchEnumeration(quick bool) []MatchPoint { return bench.MatchEnumeration(quick) }

// MatchScenarioSpeedup returns the median per-point speedup of one
// scenario ("dense" or "selective").
func MatchScenarioSpeedup(pts []MatchPoint, scenario string) float64 {
	return bench.ScenarioSpeedup(pts, scenario)
}

// WriteMatch renders the match-enumeration comparison as an aligned
// table.
func WriteMatch(w io.Writer, pts []MatchPoint) { bench.WriteMatch(w, pts) }

// ComparisonPoint is one measurement of the storage-model comparison:
// validation over the mutable map-backed graph versus the frozen CSR
// snapshot.
type ComparisonPoint = bench.ComparisonPoint

// CompareValidation measures both validation storage paths on growing
// knowledge-base workloads; the two paths return identical violation
// sets, so the comparison is pure representation cost.
func CompareValidation(scales []int) []ComparisonPoint { return bench.CompareValidation(scales) }

// WriteComparison renders the storage-model comparison as an aligned
// table.
func WriteComparison(w io.Writer, pts []ComparisonPoint) { bench.WriteComparison(w, pts) }
