package bench

import (
	"context"
	"errors"
	"fmt"
	"io"
	"math/rand"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
	"syscall"
	"time"

	"gedlib"
	"gedlib/persist"
	"gedlib/serve"
	"gedlib/workload"
)

// ChaosOptions configures the chaos soak: a serving catalog on a
// fault-injecting filesystem, concurrent writers and readers, and a
// scheduler that alternates inject/heal windows. The soak asserts the
// failure-model contract end to end — no panics, every acknowledged
// write survives a post-soak crash-recovery, the recovered violation
// set is byte-identical to a fresh engine's, and degraded graphs
// recover once the disk heals.
type ChaosOptions struct {
	// Graphs is how many tenant graphs the catalog hosts.
	Graphs int
	// Scale is each tenant's seeded knowledge-base scale.
	Scale int
	// Writers and Readers are the concurrent client goroutine counts
	// (writers round-robin over the graphs).
	Writers, Readers int
	// Duration is the soak wall time (inject/heal windows included).
	Duration time.Duration
	// QuietWindow/ActiveWindow bound the scheduler's healed and faulted
	// phases; actual windows are drawn uniformly from [min, max).
	QuietMin, QuietMax   time.Duration
	ActiveMin, ActiveMax time.Duration
	// ProbeInterval is the serving config's auto-probe base delay.
	ProbeInterval time.Duration
	// Seed makes the fault schedule and the client streams deterministic.
	Seed int64
}

// DefaultChaosOptions is the acceptance soak.
func DefaultChaosOptions() ChaosOptions {
	return ChaosOptions{
		Graphs: 3, Scale: 400, Writers: 8, Readers: 8,
		Duration: 8 * time.Second,
		QuietMin: 300 * time.Millisecond, QuietMax: 800 * time.Millisecond,
		ActiveMin: 150 * time.Millisecond, ActiveMax: 400 * time.Millisecond,
		ProbeInterval: 25 * time.Millisecond, Seed: 1,
	}
}

// QuickChaosOptions is the CI smoke variant (short enough to run under
// the race detector).
func QuickChaosOptions() ChaosOptions {
	return ChaosOptions{
		Graphs: 2, Scale: 120, Writers: 4, Readers: 4,
		Duration: 1500 * time.Millisecond,
		QuietMin: 60 * time.Millisecond, QuietMax: 150 * time.Millisecond,
		ActiveMin: 40 * time.Millisecond, ActiveMax: 120 * time.Millisecond,
		ProbeInterval: 10 * time.Millisecond, Seed: 1,
	}
}

// ChaosResult is one run of the chaos soak. Failures lists every
// violated invariant; an empty list is a pass.
type ChaosResult struct {
	Graphs   int           `json:"graphs"`
	Writers  int           `json:"writers"`
	Readers  int           `json:"readers"`
	Duration time.Duration `json:"duration_ns"`

	WritesAttempted uint64 `json:"writes_attempted"`
	WritesAcked     uint64 `json:"writes_acked"`
	WriteErrors     uint64 `json:"write_errors"`
	DegradedErrors  uint64 `json:"degraded_errors"`
	Reads           uint64 `json:"reads"`

	FaultWindows int               `json:"fault_windows"`
	Injected     map[string]uint64 `json:"injected"`

	// Serving-side degraded-mode counters, summed over graphs.
	WALRetries uint64 `json:"wal_retries"`
	Probes     uint64 `json:"probes"`
	Recoveries uint64 `json:"recoveries"`

	Failures []string `json:"failures"`
}

// chaosWriter tracks one writer's acknowledged soak chain: unique node
// per attempt, an edge from the writer's anchor, and a monotone soak
// attribute on the anchor. Only fully applied, error-free batches are
// recorded as acked — exactly the writes the crash-recovery check
// demands back.
type chaosWriter struct {
	id     int
	graph  string
	anchor string
	acked  []int
}

// ChaosSoak runs the soak. It panics on setup errors (the harness
// asserts behavior under disk faults, not setup races); invariant
// violations go to ChaosResult.Failures instead so the caller can
// report all of them.
func ChaosSoak(opts ChaosOptions) ChaosResult {
	dir, err := os.MkdirTemp("", "gedbench-chaos-*")
	if err != nil {
		panic(err)
	}
	defer os.RemoveAll(dir)

	ffs := NewFaultFS(opts.Seed, nil)
	cat, err := serve.NewCatalog(serve.Config{
		DataDir:       dir,
		FS:            ffs,
		MaxDelay:      time.Millisecond,
		ProbeInterval: opts.ProbeInterval,
	})
	if err != nil {
		panic(err)
	}
	defer cat.Close()

	sigma := gedlib.RuleSet{
		workload.PaperPhi1(), workload.PaperPhi2(),
		workload.PaperPhi3(), workload.PaperPhi4(),
	}
	rulesSrc := gedlib.FormatRules(sigma)
	ctx := context.Background()
	names := make([]string, opts.Graphs)
	nodeCount := make([]int, opts.Graphs)
	for i := range names {
		g, _ := workload.KnowledgeBase(opts.Seed+int64(i), opts.Scale, 0.1)
		data, err := gedlib.MarshalGraph(g)
		if err != nil {
			panic(err)
		}
		names[i] = fmt.Sprintf("tenant%d", i)
		ent, err := cat.Create(names[i], data)
		if err != nil {
			panic(err)
		}
		if _, err := ent.RegisterRules(ctx, rulesSrc); err != nil {
			panic(err)
		}
		nodeCount[i] = g.NumNodes()
	}

	res := ChaosResult{
		Graphs: opts.Graphs, Writers: opts.Writers, Readers: opts.Readers,
		Duration: opts.Duration,
	}
	var (
		attempted, werrs, degraded, reads atomic.Uint64
		stop                              = make(chan struct{})
		wg                                sync.WaitGroup
	)

	// Writers: each drives its round-robin graph with uniquely named
	// chain batches, recording which attempts were acknowledged.
	writers := make([]*chaosWriter, opts.Writers)
	for w := range writers {
		writers[w] = &chaosWriter{
			id:     w,
			graph:  names[w%opts.Graphs],
			anchor: "", // set once the anchor batch acks
		}
	}
	for _, cw := range writers {
		wg.Add(1)
		go func(cw *chaosWriter) {
			defer wg.Done()
			ent, err := cat.Get(cw.graph)
			if err != nil {
				panic(err)
			}
			rng := rand.New(rand.NewSource(opts.Seed + int64(7000+cw.id)))
			n := nodeCount[cw.id%opts.Graphs]
			for attempt := 0; ; attempt++ {
				select {
				case <-stop:
					return
				default:
				}
				var ops []serve.Op
				node := fmt.Sprintf("w%d_n%d", cw.id, attempt)
				if cw.anchor == "" {
					// Bootstrap: a fresh anchor candidate each attempt (a
					// failed batch may still have applied in memory, so ids
					// are never reused).
					ops = []serve.Op{{Op: "add_node", ID: node, Label: "person"}}
				} else {
					ops = []serve.Op{
						{Op: "add_node", ID: node, Label: "person"},
						{Op: "add_edge", Src: cw.anchor, Label: "soak", Dst: node},
						{Op: "set_attr", ID: cw.anchor, Attr: "soak", Value: float64(attempt)},
						{Op: "set_attr", ID: fmt.Sprintf("n%d", rng.Intn(n)),
							Attr: "type", Value: "programmer"},
					}
				}
				attempted.Add(1)
				wres, err := ent.Mutate(ctx, ops)
				if err != nil || len(wres.OpErrors) > 0 || wres.Applied != len(ops) {
					werrs.Add(1)
					if errors.Is(err, serve.ErrDegraded) {
						degraded.Add(1)
						time.Sleep(5 * time.Millisecond) // back off, the probe heals
					}
					continue
				}
				if cw.anchor == "" {
					cw.anchor = node
				} else {
					cw.acked = append(cw.acked, attempt)
				}
			}
		}(cw)
	}

	// Readers: hammer the lock-free view path; degraded graphs must
	// keep answering from their last view.
	for r := 0; r < opts.Readers; r++ {
		wg.Add(1)
		go func(r int) {
			defer wg.Done()
			for i := 0; ; i++ {
				select {
				case <-stop:
					return
				default:
				}
				ent, err := cat.Get(names[(r+i)%opts.Graphs])
				if err != nil {
					panic(err)
				}
				view := ent.CurrentView()
				if view == nil || view.Snap == nil {
					panic("chaos: nil view served")
				}
				_ = len(view.Violations)
				reads.Add(1)
				time.Sleep(200 * time.Microsecond)
			}
		}(r)
	}

	// Fault scheduler: quiet window, inject one rule from the menu,
	// active window, heal. Deterministic from the seed.
	srng := rand.New(rand.NewSource(opts.Seed + 99))
	window := func(lo, hi time.Duration) time.Duration {
		return lo + time.Duration(srng.Int63n(int64(hi-lo)))
	}
	menu := []func() FaultRule{
		func() FaultRule {
			return FaultRule{Kind: "enospc", Op: OpWrite, Path: "wal-",
				Err: syscall.ENOSPC, AfterBytes: 512 + int64(srng.Intn(8192))}
		},
		func() FaultRule {
			return FaultRule{Kind: "eio", Op: OpSync, Path: "wal-",
				Err: syscall.EIO, Kth: 1 + srng.Intn(3)}
		},
		func() FaultRule {
			return FaultRule{Kind: "torn", Op: OpWrite, Path: "wal-", Err: syscall.EIO}
		},
		func() FaultRule {
			return FaultRule{Kind: "enospc", Op: OpWrite, Path: ".tmp-ckpt-",
				Err: syscall.ENOSPC, AfterBytes: 1024}
		},
	}
	deadline := time.Now().Add(opts.Duration)
	for time.Now().Before(deadline) {
		time.Sleep(window(opts.QuietMin, opts.QuietMax))
		ffs.Inject(menu[srng.Intn(len(menu))]())
		res.FaultWindows++
		time.Sleep(window(opts.ActiveMin, opts.ActiveMax))
		ffs.Heal()
	}
	ffs.Heal()
	close(stop)
	wg.Wait()

	res.WritesAttempted = attempted.Load()
	res.WriteErrors = werrs.Load()
	res.DegradedErrors = degraded.Load()
	res.Reads = reads.Load()
	res.Injected = ffs.Injected()
	for _, cw := range writers {
		res.WritesAcked += uint64(len(cw.acked))
	}

	// Every graph must recover now that the disk healed: wait for the
	// auto-probe, then force the operator path once before giving up.
	leaderVersion := make(map[string]uint64, len(names))
	for _, name := range names {
		ent, err := cat.Get(name)
		if err != nil {
			panic(err)
		}
		healed := false
		for waited := time.Duration(0); waited < 5*time.Second; waited += 10 * time.Millisecond {
			if h, _ := ent.Health(); h == "ok" {
				healed = true
				break
			}
			if waited == 2*time.Second {
				_ = ent.Probe(ctx) // operator re-enable path
			}
			time.Sleep(10 * time.Millisecond)
		}
		if !healed {
			_, cause := ent.Health()
			res.Failures = append(res.Failures,
				fmt.Sprintf("%s: still degraded after heal: %v", name, cause))
			continue
		}
		st := ent.Stats()
		res.WALRetries += st.WALRetries
		res.Probes += st.Probes
		res.Recoveries += st.Recoveries
		leaderVersion[name] = ent.CurrentView().Version
	}

	// Crash copy: the data directory as a byte-for-byte snapshot taken
	// WITHOUT closing the catalog — no parting checkpoint, no graceful
	// anything. Recovery from it must hold every acked write.
	crash, err := os.MkdirTemp("", "gedbench-chaos-crash-*")
	if err != nil {
		panic(err)
	}
	defer os.RemoveAll(crash)
	if err := copyTree(dir, crash); err != nil {
		panic(err)
	}

	store, err := persist.Open(crash, persist.Options{})
	if err != nil {
		panic(err)
	}
	recovered := make(map[string]persist.State, len(names))
	for _, name := range names {
		rec, err := store.Recover(name)
		if err != nil {
			res.Failures = append(res.Failures, fmt.Sprintf("%s: crash recovery: %v", name, err))
			continue
		}
		recovered[name] = rec.State
		if v, ok := leaderVersion[name]; ok && rec.State.Graph.Version() != v {
			res.Failures = append(res.Failures, fmt.Sprintf(
				"%s: recovered version %d != leader version %d",
				name, rec.State.Graph.Version(), v))
		}
	}
	for _, cw := range writers {
		st, ok := recovered[cw.graph]
		if !ok || cw.anchor == "" {
			continue
		}
		idx := nameIndex(st.Names)
		anchor, ok := idx[cw.anchor]
		if !ok {
			res.Failures = append(res.Failures, fmt.Sprintf(
				"%s: writer %d anchor %s lost in recovery", cw.graph, cw.id, cw.anchor))
			continue
		}
		lost := 0
		for _, a := range cw.acked {
			node, ok := idx[fmt.Sprintf("w%d_n%d", cw.id, a)]
			if !ok || !st.Graph.HasEdge(anchor, "soak", node) {
				lost++
			}
		}
		if lost > 0 {
			res.Failures = append(res.Failures, fmt.Sprintf(
				"%s: writer %d lost %d/%d acked writes in crash recovery",
				cw.graph, cw.id, lost, len(cw.acked)))
		}
		if len(cw.acked) > 0 {
			last := cw.acked[len(cw.acked)-1]
			if v, ok := st.Graph.Attr(anchor, "soak"); !ok || int(v.Num()) < last {
				res.Failures = append(res.Failures, fmt.Sprintf(
					"%s: writer %d anchor soak attr regressed below acked %d",
					cw.graph, cw.id, last))
			}
		}
	}

	// Oracle: a catalog restored from the crash copy must serve exactly
	// the violation set a fresh engine computes on the recovered graph.
	cat2, err := serve.NewCatalog(serve.Config{DataDir: crash})
	if err != nil {
		panic(err)
	}
	defer cat2.Close()
	if _, err := cat2.Restore(ctx); err != nil {
		res.Failures = append(res.Failures, fmt.Sprintf("restore crash copy: %v", err))
		return res
	}
	for _, name := range names {
		st, ok := recovered[name]
		if !ok {
			continue
		}
		oracleSigma := gedlib.RuleSet{}
		if st.Rules != "" {
			if oracleSigma, err = gedlib.ParseRules(st.Rules); err != nil {
				res.Failures = append(res.Failures, fmt.Sprintf("%s: recovered rules: %v", name, err))
				continue
			}
		}
		want, err := gedlib.New().Validate(ctx, st.Graph, oracleSigma)
		if err != nil {
			res.Failures = append(res.Failures, fmt.Sprintf("%s: oracle validate: %v", name, err))
			continue
		}
		ent2, err := cat2.Get(name)
		if err != nil {
			res.Failures = append(res.Failures, fmt.Sprintf("%s: restored get: %v", name, err))
			continue
		}
		got := ent2.CurrentView().Violations
		if gr, wr := renderViolationSet(got), renderViolationSet(want); gr != wr {
			res.Failures = append(res.Failures, fmt.Sprintf(
				"%s: restored violation set diverges from fresh-engine oracle (%d vs %d violations)",
				name, len(got), len(want)))
		}
	}
	return res
}

// nameIndex inverts a dense wire-name column (index = NodeID).
func nameIndex(names []string) map[string]gedlib.NodeID {
	idx := make(map[string]gedlib.NodeID, len(names))
	for i, n := range names {
		if n != "" {
			idx[n] = gedlib.NodeID(i)
		}
	}
	return idx
}

// renderViolationSet renders violations order-independently: one line
// per violation (rule, sorted bindings, failing literal), lines sorted.
func renderViolationSet(vs []gedlib.Violation) string {
	lines := make([]string, len(vs))
	for i, v := range vs {
		xs := make([]string, 0, len(v.Match))
		for x, id := range v.Match {
			xs = append(xs, fmt.Sprintf("%s=%d", x, id))
		}
		sort.Strings(xs)
		lines[i] = fmt.Sprintf("%s[%s]%s", v.GED.Name, strings.Join(xs, ";"), v.Literal.String())
	}
	sort.Strings(lines)
	return strings.Join(lines, "\n")
}

// copyTree copies a directory tree (regular files only — exactly what
// a persist data dir holds).
func copyTree(src, dst string) error {
	return filepath.WalkDir(src, func(path string, d os.DirEntry, err error) error {
		if err != nil {
			return err
		}
		rel, err := filepath.Rel(src, path)
		if err != nil {
			return err
		}
		target := filepath.Join(dst, rel)
		if d.IsDir() {
			return os.MkdirAll(target, 0o755)
		}
		data, err := os.ReadFile(path)
		if err != nil {
			return err
		}
		return os.WriteFile(target, data, 0o644)
	})
}

// WriteChaos renders the soak result.
func WriteChaos(w io.Writer, r ChaosResult) {
	fmt.Fprintf(w, "graphs=%d  writers=%d  readers=%d  soak=%.1fs  fault windows=%d\n",
		r.Graphs, r.Writers, r.Readers, r.Duration.Seconds(), r.FaultWindows)
	fmt.Fprintf(w, "writes: %d attempted, %d acked, %d errors (%d degraded-rejected)  reads: %d\n",
		r.WritesAttempted, r.WritesAcked, r.WriteErrors, r.DegradedErrors, r.Reads)
	keys := make([]string, 0, len(r.Injected))
	for k := range r.Injected {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	parts := make([]string, len(keys))
	for i, k := range keys {
		parts[i] = fmt.Sprintf("%s=%d", k, r.Injected[k])
	}
	fmt.Fprintf(w, "injected faults: %s\n", strings.Join(parts, " "))
	fmt.Fprintf(w, "degraded mode: %d WAL retries, %d probes, %d recoveries\n",
		r.WALRetries, r.Probes, r.Recoveries)
	if len(r.Failures) == 0 {
		fmt.Fprintf(w, "invariants: PASS (acked writes durable, violation oracle identical, all graphs healed)\n")
		return
	}
	fmt.Fprintf(w, "invariants: %d FAILURES\n", len(r.Failures))
	for _, f := range r.Failures {
		fmt.Fprintf(w, "  FAIL: %s\n", f)
	}
}
