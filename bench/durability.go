package bench

import (
	"context"
	"fmt"
	"io"
	"math/rand"
	"os"
	"time"

	"gedlib"
	"gedlib/persist"
	"gedlib/workload"
)

// DurabilityOptions configures the durability experiment: how much WAL
// history accumulates, how often recovery is timed along the way, how
// many records the follower-staleness measurement tails, and the
// serving load used for the fsync-cost comparison.
type DurabilityOptions struct {
	// Scale is the knowledge-base scale of the durable graph.
	Scale int
	// TotalOps is how many logical ops are appended to the WAL across
	// the recovery curve (no checkpoints in between — the curve measures
	// replay cost as a function of log length).
	TotalOps int
	// Milestones is how many points the recovery curve samples.
	Milestones int
	// FollowerRecords is how many live WAL records the staleness
	// measurement tails.
	FollowerRecords int
	// Seed makes the op stream deterministic.
	Seed int64
	// Serve is the load profile for the durable-vs-in-memory throughput
	// comparison.
	Serve ServeOptions
}

// DefaultDurabilityOptions is the acceptance workload: KB2000, 20k ops
// of WAL history, the full serving load.
func DefaultDurabilityOptions() DurabilityOptions {
	return DurabilityOptions{
		Scale: 2000, TotalOps: 20000, Milestones: 5,
		FollowerRecords: 200, Seed: 1, Serve: DefaultServeOptions(),
	}
}

// QuickDurabilityOptions is the CI smoke variant.
func QuickDurabilityOptions() DurabilityOptions {
	return DurabilityOptions{
		Scale: 200, TotalOps: 1000, Milestones: 3,
		FollowerRecords: 40, Seed: 1, Serve: QuickServeOptions(),
	}
}

// RecoveryPoint is one timing of Store.Recover at a given log length.
type RecoveryPoint struct {
	ReplayedOps int           `json:"replayed_ops"`
	WALBytes    int64         `json:"wal_bytes"`
	Recover     time.Duration `json:"recover_ns"`
}

// DurabilityResult is one run of the durability experiment.
type DurabilityResult struct {
	Scale    int `json:"scale"`
	TotalOps int `json:"total_ops"`

	// Curve: recovery time as the WAL tail grows past a fixed
	// checkpoint — the cost a crash pays, O(|Δ since checkpoint|).
	Curve []RecoveryPoint `json:"curve"`

	// FreshCheckpointRecover is recovery immediately after a
	// checkpoint (map the image, replay nothing); FullLogReplay is the
	// same final state recovered from an empty-graph checkpoint plus
	// the entire history as WAL records. Their ratio is what
	// checkpointing buys.
	FreshCheckpointRecover time.Duration `json:"fresh_checkpoint_recover_ns"`
	FullLogReplay          time.Duration `json:"full_log_replay_ns"`
	ReplaySpeedup          float64       `json:"replay_speedup"`

	// FollowerStaleness digests per-record replica lag (record append
	// time to follower read) while the leader streams live appends.
	FollowerStaleness LatencySummary `json:"follower_staleness"`

	// Serving throughput with the WAL on (fsync=batch riding the group
	// commit) vs the in-memory baseline, same load profile.
	BaselineThroughput float64 `json:"baseline_throughput_rps"`
	DurableThroughput  float64 `json:"durable_throughput_rps"`
	ThroughputRatio    float64 `json:"throughput_ratio"`
}

// mutateOnce applies one random op to g, mirroring the serving write
// mix (attribute churn and edge growth over the fixed node set).
func mutateOnce(rng *rand.Rand, g *gedlib.Graph, n int) {
	id := gedlib.NodeID(rng.Intn(n))
	switch rng.Intn(3) {
	case 0:
		types := []string{"programmer", "psychologist", "video game"}
		g.SetAttr(id, "type", gedlib.String(types[rng.Intn(len(types))]))
	case 1:
		g.SetAttr(id, "name", gedlib.String(fmt.Sprintf("renamed%d", rng.Int31())))
	default:
		g.AddEdge(id, "create", gedlib.NodeID(rng.Intn(n)))
	}
}

// Durability runs the experiment. It panics on setup errors (the
// experiment is a harness, not a server).
func Durability(opts DurabilityOptions) DurabilityResult {
	dir, err := os.MkdirTemp("", "gedbench-durability-*")
	if err != nil {
		panic(err)
	}
	defer os.RemoveAll(dir)

	// FsyncOff: the experiment measures recovery and replication costs,
	// not disk sync latency; the serving comparison below measures the
	// fsync cost separately, end to end.
	store, err := persist.Open(dir, persist.Options{
		Fsync: persist.FsyncOff, CheckpointEvery: 1 << 30,
	})
	if err != nil {
		panic(err)
	}

	g, _ := workload.KnowledgeBase(opts.Seed, opts.Scale, 0.1)
	n := g.NumNodes()
	gs, err := store.Create("kb", persist.State{Graph: g})
	if err != nil {
		panic(err)
	}

	res := DurabilityResult{Scale: opts.Scale, TotalOps: opts.TotalOps}
	rng := rand.New(rand.NewSource(opts.Seed + 7))

	// Recovery curve: append in bursts (one delta record per burst,
	// like one coalesced flush), timing Recover at each milestone.
	timeRecover := func(name string) (time.Duration, *persist.Recovery) {
		start := time.Now()
		rec, err := store.Recover(name)
		if err != nil {
			panic(err)
		}
		return time.Since(start), rec
	}
	const burst = 100
	every := opts.TotalOps / opts.Milestones
	appended := 0
	appendBurst := func(ops int) {
		from := g.Version()
		for i := 0; i < ops; i++ {
			mutateOnce(rng, g, n)
		}
		d := g.DeltaSince(from)
		if err := gs.AppendDelta(d, make([]string, len(d.Nodes))); err != nil {
			panic(err)
		}
		appended += d.Size()
	}
	d0, _ := timeRecover("kb")
	res.Curve = append(res.Curve, RecoveryPoint{Recover: d0})
	for appended < opts.TotalOps {
		appendBurst(burst)
		if appended%every < burst {
			dur, rec := timeRecover("kb")
			res.Curve = append(res.Curve, RecoveryPoint{
				ReplayedOps: rec.ReplayedOps,
				WALBytes:    gs.Stats().WALBytes,
				Recover:     dur,
			})
		}
	}

	// Full-log replay of the same final state: an empty-graph
	// checkpoint plus the entire history (construction included) as
	// one WAL record.
	full := g.DeltaSince(0)
	rs, err := store.Create("replay", persist.State{Graph: gedlib.NewGraph()})
	if err != nil {
		panic(err)
	}
	if err := rs.AppendDelta(full, make([]string, len(full.Nodes))); err != nil {
		panic(err)
	}
	res.FullLogReplay, _ = timeRecover("replay")
	_ = rs.Close()

	// Fresh checkpoint: recovery right after checkpointing replays
	// nothing — it maps the newest image and goes.
	if err := gs.Checkpoint(persist.State{Graph: g}); err != nil {
		panic(err)
	}
	res.FreshCheckpointRecover, _ = timeRecover("kb")
	if res.FreshCheckpointRecover > 0 {
		res.ReplaySpeedup = float64(res.FullLogReplay) / float64(res.FreshCheckpointRecover)
	}

	// Follower staleness: tail the live log while the leader keeps
	// appending; each record's lag is read time minus append time.
	_, rec := timeRecover("kb")
	ctx, cancel := context.WithCancel(context.Background())
	staleness := make([]time.Duration, 0, opts.FollowerRecords)
	tailDone := make(chan error, 1)
	go func() {
		tailDone <- store.Tail(ctx, "kb", rec, time.Millisecond, func(tr persist.TailRecord) error {
			staleness = append(staleness, time.Since(tr.AppendedAt))
			if len(staleness) >= opts.FollowerRecords {
				cancel()
			}
			return nil
		})
	}()
	for i := 0; i < opts.FollowerRecords && ctx.Err() == nil; i++ {
		appendBurst(5)
		time.Sleep(time.Millisecond)
	}
	<-tailDone
	cancel()
	res.FollowerStaleness = summarize(staleness)
	_ = gs.Close()

	// Serving throughput: identical load, in-memory vs durable with
	// group-commit fsync.
	base := ServeLoad(opts.Serve)
	durOpts := opts.Serve
	durOpts.DataDir, durOpts.Fsync = dir+"-serve", "batch"
	defer os.RemoveAll(durOpts.DataDir)
	durable := ServeLoad(durOpts)
	res.BaselineThroughput = base.Throughput
	res.DurableThroughput = durable.Throughput
	if base.Throughput > 0 {
		res.ThroughputRatio = durable.Throughput / base.Throughput
	}
	return res
}

// WriteDurability renders the durability result.
func WriteDurability(w io.Writer, r DurabilityResult) {
	fmt.Fprintf(w, "graph KB%d, %d ops of WAL history\n\n", r.Scale, r.TotalOps)
	fmt.Fprintf(w, "%-14s %12s %12s\n", "REPLAYED OPS", "WAL BYTES", "RECOVER")
	for _, p := range r.Curve {
		fmt.Fprintf(w, "%-14d %12d %12s\n", p.ReplayedOps, p.WALBytes, p.Recover.Round(time.Microsecond))
	}
	fmt.Fprintf(w, "\nfresh-checkpoint recover %s  vs  full-log replay %s  (%.1fx)\n",
		r.FreshCheckpointRecover.Round(time.Microsecond),
		r.FullLogReplay.Round(time.Microsecond), r.ReplaySpeedup)
	s := r.FollowerStaleness
	fmt.Fprintf(w, "follower staleness over %d live records: p50 %s  p95 %s  p99 %s\n",
		s.Count, s.P50.Round(time.Microsecond), s.P95.Round(time.Microsecond), s.P99.Round(time.Microsecond))
	fmt.Fprintf(w, "serving throughput: %.0f req/s in-memory, %.0f req/s durable (fsync=batch) — ratio %.2f\n",
		r.BaselineThroughput, r.DurableThroughput, r.ThroughputRatio)
}
