package bench

import (
	"context"
	"errors"
	"fmt"
	"io"
	"os"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"gedlib"
	"gedlib/persist"
	"gedlib/serve"
	"gedlib/workload"
)

// FailoverOptions configures the failover soak: a leader catalog and a
// warm follower share one data directory; concurrent writers hammer the
// leader while rounds alternately kill it (total storage partition —
// the in-process equivalent of kill -9) or depose it in place (the
// leader stays up with healthy disks while the follower is promoted out
// from under it). Each round promotes the follower, measures RTO, and
// boots the next warm follower. The soak asserts the failover contract
// end to end: zero acked-write loss across every promotion, deposed
// leaders fenced by the epoch bound (no split-brain ack, no stale bytes
// in the final state), a crash-copy recovery whose violation set is
// byte-identical to a fresh engine's, and a stale-epoch reboot that
// comes up fenced read-only.
type FailoverOptions struct {
	// Graphs is how many tenant graphs are promoted each round.
	Graphs int
	// Scale is each tenant's seeded knowledge-base scale.
	Scale int
	// Writers is the concurrent client goroutine count (writers are
	// pinned round-robin to graphs and follow the leader across rounds).
	Writers int
	// Rounds is how many leader successions the soak performs. Even
	// rounds kill the leader; odd rounds depose it live.
	Rounds int
	// WriteWindow is how long writers run against each leader before
	// the round's crash/promotion.
	WriteWindow time.Duration
	// FollowPoll is each follower's WAL poll interval.
	FollowPoll time.Duration
	// Seed makes the workload and fault schedules deterministic.
	Seed int64
}

// DefaultFailoverOptions is the acceptance soak.
func DefaultFailoverOptions() FailoverOptions {
	return FailoverOptions{
		Graphs: 2, Scale: 300, Writers: 6, Rounds: 6,
		WriteWindow: 350 * time.Millisecond,
		FollowPoll:  5 * time.Millisecond,
		Seed:        1,
	}
}

// QuickFailoverOptions is the CI smoke variant (short enough to run
// under the race detector).
func QuickFailoverOptions() FailoverOptions {
	return FailoverOptions{
		Graphs: 2, Scale: 100, Writers: 3, Rounds: 2,
		WriteWindow: 80 * time.Millisecond,
		FollowPoll:  2 * time.Millisecond,
		Seed:        1,
	}
}

// FailoverResult is one run of the failover soak. Failures lists every
// violated invariant; an empty list is a pass.
type FailoverResult struct {
	Graphs  int `json:"graphs"`
	Writers int `json:"writers"`
	Rounds  int `json:"rounds"`
	Kill9   int `json:"kill9_rounds"`
	Deposed int `json:"deposed_rounds"`

	WritesAttempted uint64 `json:"writes_attempted"`
	WritesAcked     uint64 `json:"writes_acked"`
	WriteErrors     uint64 `json:"write_errors"`

	// StaleAttempts are deliberate post-promotion writes fired at live
	// deposed leaders; FencedRejections counts how many the epoch fence
	// refused. A passing run has the two equal and zero stale acks.
	StaleAttempts    int `json:"stale_attempts"`
	FencedRejections int `json:"fenced_rejections"`

	// RTO distribution over rounds: wall time from the promotion call
	// to every graph serving writes at the new epoch.
	RTONanos  []int64 `json:"rto_ns"`
	RTOP50    int64   `json:"rto_p50_ns"`
	RTOP95    int64   `json:"rto_p95_ns"`
	RTOMax    int64   `json:"rto_max_ns"`
	LastEpoch uint64  `json:"last_epoch"`

	Failures []string `json:"failures"`
}

// failoverWriter tracks one writer's acknowledged chain, exactly like
// the chaos soak's: unique node per acked attempt, an edge from the
// writer's anchor, and a monotone attempt attribute on the anchor.
type failoverWriter struct {
	id     int
	graph  string
	anchor string
	acked  []int
}

// leaderRef is the writers' view of "who is the leader right now"; the
// controller swaps it at each promotion.
type leaderRef struct {
	mu  sync.RWMutex
	cat *serve.Catalog
}

func (l *leaderRef) get() *serve.Catalog {
	l.mu.RLock()
	defer l.mu.RUnlock()
	return l.cat
}

func (l *leaderRef) set(c *serve.Catalog) {
	l.mu.Lock()
	defer l.mu.Unlock()
	l.cat = c
}

// FailoverSoak runs the soak. Setup errors panic; invariant violations
// go to FailoverResult.Failures so the caller can report all of them.
func FailoverSoak(opts FailoverOptions) FailoverResult {
	dir, err := os.MkdirTemp("", "gedbench-failover-*")
	if err != nil {
		panic(err)
	}
	defer os.RemoveAll(dir)
	ctx := context.Background()

	// Every catalog gets its own fault FS so ANY incumbent can be
	// killed later, not just the first.
	mkCatalog := func(seed int64) (*serve.Catalog, *FaultFS) {
		ffs := NewFaultFS(seed, nil)
		cat, err := serve.NewCatalog(serve.Config{
			DataDir:        dir,
			FS:             ffs,
			MaxDelay:       time.Millisecond,
			FollowPoll:     opts.FollowPoll,
			RescanInterval: 50 * time.Millisecond,
			ProbeInterval:  20 * time.Millisecond,
		})
		if err != nil {
			panic(err)
		}
		return cat, ffs
	}

	leader, leaderFFS := mkCatalog(opts.Seed)
	sigma := gedlib.RuleSet{
		workload.PaperPhi1(), workload.PaperPhi2(),
		workload.PaperPhi3(), workload.PaperPhi4(),
	}
	rulesSrc := gedlib.FormatRules(sigma)
	names := make([]string, opts.Graphs)
	for i := range names {
		g, _ := workload.KnowledgeBase(opts.Seed+int64(i), opts.Scale, 0.1)
		data, err := gedlib.MarshalGraph(g)
		if err != nil {
			panic(err)
		}
		names[i] = fmt.Sprintf("tenant%d", i)
		ent, err := leader.Create(names[i], data)
		if err != nil {
			panic(err)
		}
		if _, err := ent.RegisterRules(ctx, rulesSrc); err != nil {
			panic(err)
		}
	}

	follower, followerFFS := mkCatalog(opts.Seed + 1)
	if err := follower.Follow(ctx); err != nil {
		panic(err)
	}

	res := FailoverResult{Graphs: opts.Graphs, Writers: opts.Writers, Rounds: opts.Rounds}
	cur := &leaderRef{cat: leader}
	var (
		attempted, werrs atomic.Uint64
		stop             = make(chan struct{})
		wg               sync.WaitGroup
	)

	// Writers run across every succession: an attempt that races a
	// crash or a fence is simply unacked and retried against whichever
	// catalog leads next. Attempt numbers are monotone per writer, so
	// node names never collide across rounds.
	writers := make([]*failoverWriter, opts.Writers)
	for w := range writers {
		writers[w] = &failoverWriter{id: w, graph: names[w%opts.Graphs]}
	}
	for _, fw := range writers {
		wg.Add(1)
		go func(fw *failoverWriter) {
			defer wg.Done()
			for attempt := 0; ; attempt++ {
				select {
				case <-stop:
					return
				default:
				}
				ent, err := cur.get().Get(fw.graph)
				if err != nil {
					time.Sleep(2 * time.Millisecond)
					continue
				}
				node := fmt.Sprintf("w%dn%d", fw.id, attempt)
				var ops []serve.Op
				if fw.anchor == "" {
					ops = []serve.Op{{Op: "add_node", ID: node, Label: "person"}}
				} else {
					ops = []serve.Op{
						{Op: "add_node", ID: node, Label: "person"},
						{Op: "add_edge", Src: fw.anchor, Label: "soak", Dst: node},
						{Op: "set_attr", ID: fw.anchor, Attr: "soak", Value: float64(attempt)},
					}
				}
				attempted.Add(1)
				wres, err := ent.Mutate(ctx, ops)
				if err != nil || len(wres.OpErrors) > 0 || wres.Applied != len(ops) {
					werrs.Add(1)
					time.Sleep(2 * time.Millisecond)
					continue
				}
				if fw.anchor == "" {
					fw.anchor = node
				} else {
					fw.acked = append(fw.acked, attempt)
				}
			}
		}(fw)
	}

	// Succession rounds. staleNodes are the deliberate post-promotion
	// writes at deposed leaders — they must be refused now and absent
	// from the recovered state later.
	var staleNodes []string
	for round := 0; round < opts.Rounds; round++ {
		time.Sleep(opts.WriteWindow)
		kill9 := round%2 == 0
		if kill9 {
			res.Kill9++
			// The incumbent's storage vanishes in every direction,
			// mid-flush included: the closest an in-process harness gets
			// to kill -9. The partition never heals for this catalog.
			rules, err := ParseFaultSpec("partition")
			if err != nil {
				panic(err)
			}
			leaderFFS.Inject(rules...)
		} else {
			res.Deposed++
		}

		pres, perr := follower.Promote(ctx)
		if perr != nil {
			res.Failures = append(res.Failures, fmt.Sprintf("round %d: promote: %v", round, perr))
			break
		}
		if len(pres.Promoted) != opts.Graphs {
			res.Failures = append(res.Failures, fmt.Sprintf(
				"round %d: promoted %d graphs, want %d", round, len(pres.Promoted), opts.Graphs))
		}
		res.RTONanos = append(res.RTONanos, pres.RTONanos)
		res.LastEpoch = pres.Epoch

		deposed := cur.get()
		cur.set(follower)

		if !kill9 {
			// Split-brain probe: the deposed leader is alive with healthy
			// disks and does not know it lost. Its appends must die on the
			// epoch fence — not be acked, not reach the log. (The node id
			// is fresh so the op survives in-memory application and the
			// flush actually consults the fence.)
			for g, name := range names {
				node := fmt.Sprintf("stale_r%dg%d", round, g)
				ent, err := deposed.Get(name)
				if err != nil {
					res.Failures = append(res.Failures, fmt.Sprintf(
						"round %d: deposed get %s: %v", round, name, err))
					continue
				}
				res.StaleAttempts++
				staleNodes = append(staleNodes, node)
				_, merr := ent.Mutate(ctx, []serve.Op{{Op: "add_node", ID: node, Label: "person"}})
				switch {
				case merr == nil:
					res.Failures = append(res.Failures, fmt.Sprintf(
						"round %d: SPLIT BRAIN: deposed leader acked %s on %s", round, node, name))
				case errors.Is(merr, serve.ErrFenced):
					res.FencedRejections++
				default:
					res.Failures = append(res.Failures, fmt.Sprintf(
						"round %d: deposed write on %s refused as %v, want ErrFenced", round, name, merr))
				}
			}
		}

		// The promoted catalog is the incumbent now; warm the next
		// follower. Dead and deposed catalogs are abandoned un-Closed,
		// like the processes they stand in for.
		leaderFFS = followerFFS
		follower, followerFFS = mkCatalog(opts.Seed + int64(2+round))
		if err := follower.Follow(ctx); err != nil {
			panic(err)
		}
	}
	close(stop)
	wg.Wait()

	res.WritesAttempted = attempted.Load()
	res.WriteErrors = werrs.Load()
	for _, fw := range writers {
		res.WritesAcked += uint64(len(fw.acked))
	}
	sort.Slice(res.RTONanos, func(i, j int) bool { return res.RTONanos[i] < res.RTONanos[j] })
	if n := len(res.RTONanos); n > 0 {
		res.RTOP50 = res.RTONanos[n/2]
		res.RTOP95 = res.RTONanos[(n*95+99)/100-1]
		res.RTOMax = res.RTONanos[n-1]
	}

	// The final incumbent must be healthy at the final epoch.
	final := cur.get()
	leaderVersion := make(map[string]uint64, len(names))
	for _, name := range names {
		ent, err := final.Get(name)
		if err != nil {
			res.Failures = append(res.Failures, fmt.Sprintf("%s: final get: %v", name, err))
			continue
		}
		if h, cause := ent.Health(); h != "ok" {
			res.Failures = append(res.Failures, fmt.Sprintf("%s: final leader %s: %v", name, h, cause))
		}
		if st := ent.Stats(); st.LeaderEpoch != uint64(len(res.RTONanos)) {
			res.Failures = append(res.Failures, fmt.Sprintf(
				"%s: final epoch %d, want %d (one bump per promotion)", name, st.LeaderEpoch, len(res.RTONanos)))
		}
		leaderVersion[name] = ent.CurrentView().Version
	}

	// Crash copy of the data directory — no Close, no parting anything.
	// Recovery from it must hold every acked write, none of the fenced
	// stale writes, and the fresh-engine violation oracle.
	crash, err := os.MkdirTemp("", "gedbench-failover-crash-*")
	if err != nil {
		panic(err)
	}
	defer os.RemoveAll(crash)
	if err := copyTree(dir, crash); err != nil {
		panic(err)
	}

	store, err := persist.Open(crash, persist.Options{})
	if err != nil {
		panic(err)
	}
	recovered := make(map[string]persist.State, len(names))
	for _, name := range names {
		rec, err := store.Recover(name)
		if err != nil {
			res.Failures = append(res.Failures, fmt.Sprintf("%s: crash recovery: %v", name, err))
			continue
		}
		recovered[name] = rec.State
		if v, ok := leaderVersion[name]; ok && rec.State.Graph.Version() != v {
			res.Failures = append(res.Failures, fmt.Sprintf(
				"%s: recovered version %d != final leader version %d",
				name, rec.State.Graph.Version(), v))
		}
	}
	for _, fw := range writers {
		st, ok := recovered[fw.graph]
		if !ok || fw.anchor == "" {
			continue
		}
		idx := nameIndex(st.Names)
		anchor, ok := idx[fw.anchor]
		if !ok {
			res.Failures = append(res.Failures, fmt.Sprintf(
				"%s: writer %d anchor %s lost across failovers", fw.graph, fw.id, fw.anchor))
			continue
		}
		lost := 0
		for _, a := range fw.acked {
			node, ok := idx[fmt.Sprintf("w%dn%d", fw.id, a)]
			if !ok || !st.Graph.HasEdge(anchor, "soak", node) {
				lost++
			}
		}
		if lost > 0 {
			res.Failures = append(res.Failures, fmt.Sprintf(
				"%s: writer %d lost %d/%d acked writes across failovers",
				fw.graph, fw.id, lost, len(fw.acked)))
		}
	}
	for _, name := range names {
		st, ok := recovered[name]
		if !ok {
			continue
		}
		idx := nameIndex(st.Names)
		for _, node := range staleNodes {
			if _, ok := idx[node]; ok {
				res.Failures = append(res.Failures, fmt.Sprintf(
					"%s: fenced stale write %s leaked into the recovered state", name, node))
			}
		}
	}

	// Oracle: a catalog restored from the crash copy serves exactly the
	// violation set a fresh engine computes on the recovered graph.
	cat2, err := serve.NewCatalog(serve.Config{DataDir: crash})
	if err != nil {
		panic(err)
	}
	defer cat2.Close()
	if _, err := cat2.Restore(ctx); err != nil {
		res.Failures = append(res.Failures, fmt.Sprintf("restore crash copy: %v", err))
		return res
	}
	for _, name := range names {
		st, ok := recovered[name]
		if !ok {
			continue
		}
		oracleSigma := gedlib.RuleSet{}
		if st.Rules != "" {
			if oracleSigma, err = gedlib.ParseRules(st.Rules); err != nil {
				res.Failures = append(res.Failures, fmt.Sprintf("%s: recovered rules: %v", name, err))
				continue
			}
		}
		want, err := gedlib.New().Validate(ctx, st.Graph, oracleSigma)
		if err != nil {
			res.Failures = append(res.Failures, fmt.Sprintf("%s: oracle validate: %v", name, err))
			continue
		}
		ent2, err := cat2.Get(name)
		if err != nil {
			res.Failures = append(res.Failures, fmt.Sprintf("%s: restored get: %v", name, err))
			continue
		}
		got := ent2.CurrentView().Violations
		if gr, wr := renderViolationSet(got), renderViolationSet(want); gr != wr {
			res.Failures = append(res.Failures, fmt.Sprintf(
				"%s: restored violation set diverges from fresh-engine oracle (%d vs %d violations)",
				name, len(got), len(want)))
		}
	}

	// Stale reboot: the original leader's binary comes back from the
	// dead believing epoch 0. On a second crash copy (the fenced boot
	// must not dirty the oracle's), it must come up fenced read-only:
	// reads serve, writes die on the fence.
	stale, err := os.MkdirTemp("", "gedbench-failover-stale-*")
	if err != nil {
		panic(err)
	}
	defer os.RemoveAll(stale)
	if err := copyTree(dir, stale); err != nil {
		panic(err)
	}
	zero := uint64(0)
	cat3, err := serve.NewCatalog(serve.Config{
		DataDir: stale, AssumeEpoch: &zero, ProbeInterval: time.Hour,
	})
	if err != nil {
		panic(err)
	}
	defer cat3.Close()
	if _, err := cat3.Restore(ctx); err != nil {
		res.Failures = append(res.Failures, fmt.Sprintf("stale reboot restore: %v", err))
		return res
	}
	for _, name := range names {
		ent3, err := cat3.Get(name)
		if err != nil {
			res.Failures = append(res.Failures, fmt.Sprintf("%s: stale reboot get: %v", name, err))
			continue
		}
		if h, _ := ent3.Health(); h != "fenced" {
			res.Failures = append(res.Failures, fmt.Sprintf(
				"%s: stale-epoch reboot came up %q, want fenced", name, h))
		}
		if view := ent3.CurrentView(); view == nil || view.Snap == nil {
			res.Failures = append(res.Failures, fmt.Sprintf("%s: stale reboot serves no view", name))
		}
		if _, merr := ent3.Mutate(ctx, []serve.Op{
			{Op: "add_node", ID: "zombie", Label: "person"},
		}); !errors.Is(merr, serve.ErrFenced) {
			res.Failures = append(res.Failures, fmt.Sprintf(
				"%s: stale reboot write returned %v, want ErrFenced", name, merr))
		}
	}
	return res
}

// WriteFailover renders the soak result.
func WriteFailover(w io.Writer, r FailoverResult) {
	fmt.Fprintf(w, "graphs=%d  writers=%d  rounds=%d (%d kill-9, %d deposed-live)\n",
		r.Graphs, r.Writers, r.Rounds, r.Kill9, r.Deposed)
	fmt.Fprintf(w, "writes: %d attempted, %d acked, %d errors (failover windows included)\n",
		r.WritesAttempted, r.WritesAcked, r.WriteErrors)
	fmt.Fprintf(w, "split-brain probes: %d stale-leader writes, %d fenced\n",
		r.StaleAttempts, r.FencedRejections)
	if len(r.RTONanos) > 0 {
		fmt.Fprintf(w, "promotion RTO: p50=%s  p95=%s  max=%s  (over %d promotions, final epoch %d)\n",
			time.Duration(r.RTOP50), time.Duration(r.RTOP95), time.Duration(r.RTOMax),
			len(r.RTONanos), r.LastEpoch)
	}
	if len(r.Failures) == 0 {
		fmt.Fprintf(w, "invariants: PASS (zero acked-write loss, no split-brain, oracle identical, stale reboot fenced)\n")
		return
	}
	fmt.Fprintf(w, "invariants: %d FAILURES\n", len(r.Failures))
	for _, f := range r.Failures {
		fmt.Fprintf(w, "  FAIL: %s\n", f)
	}
}
