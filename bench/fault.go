package bench

import (
	"gedlib/internal/fault"
	"gedlib/persist"
)

// Fault-injection re-exports. The injector lives in internal/fault (it
// is test infrastructure, not part of the library surface), but the
// chaos harness, gedserve -fault, and serve's external tests all need
// to build one; bench is the sanctioned crossing point of the internal
// boundary for experiment plumbing.

// FaultFS is a persist.FS that injects deterministic, seedable fault
// schedules (ENOSPC budgets, Kth-sync EIO, torn writes, latency) into
// an inner filesystem. See gedlib/internal/fault.
type FaultFS = fault.FS

// FaultRule is one fault-injection rule of a FaultFS schedule.
type FaultRule = fault.Rule

// Fault operation selectors, for building FaultRule values directly.
const (
	OpWrite  = fault.OpWrite
	OpSync   = fault.OpSync
	OpOpen   = fault.OpOpen
	OpRead   = fault.OpRead
	OpRename = fault.OpRename
)

// NewFaultFS returns a fault-injecting FS over base (nil base = the
// OS). Equal seeds give identical torn-write schedules.
func NewFaultFS(seed int64, base persist.FS) *FaultFS { return fault.New(seed, base) }

// ParseFaultSpec parses a semicolon-separated fault schedule, e.g.
// "enospc:path=wal-:after=65536; eio:op=sync:k=2" (the gedserve -fault
// syntax). See gedlib/internal/fault.Parse.
func ParseFaultSpec(spec string) ([]FaultRule, error) { return fault.Parse(spec) }
