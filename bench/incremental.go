package bench

import (
	"context"
	"fmt"
	"io"
	"math/rand"
	"sort"
	"time"

	"gedlib"
	ibench "gedlib/internal/bench"
	"gedlib/workload"
)

// IncrementalPoint is one measurement of the incremental-validation
// comparison: a small delta processed by Engine.Apply (delta snapshot
// maintenance + maintained violation store) versus answering the same
// question with a full Engine.Validate over the cached snapshot. Both
// paths report identical violation sets; the comparison is maintenance
// versus recomputation.
type IncrementalPoint struct {
	Size       int `json:"size"`
	DeltaNodes int `json:"delta_nodes"`
	Iters      int `json:"iters"`
	Violations int `json:"violations"`
	// FullValidate is the median per-update cost of the recompute path;
	// the snapshot itself is delta-maintained in both paths, so this is
	// pure match-enumeration work. Medians keep one GC pause from
	// smearing either column.
	FullValidate time.Duration `json:"full_validate_ns"`
	// EngineApply is the median per-update cost of Engine.Apply.
	EngineApply time.Duration `json:"engine_apply_ns"`
}

// Speedup is the full-validation time over the Engine.Apply time.
func (p IncrementalPoint) Speedup() float64 {
	if p.EngineApply <= 0 {
		return 0
	}
	return float64(p.FullValidate) / float64(p.EngineApply)
}

// IncrementalValidation drives identical update streams — deltaNodes
// localized mutations per iteration, iters iterations — against two
// engines over growing knowledge-base workloads: one answering with
// Engine.Apply, one recomputing with Engine.Validate. The violation
// sets are asserted equal every iteration.
func IncrementalValidation(scales []int, deltaNodes, iters int) []IncrementalPoint {
	ctx := context.Background()
	var out []IncrementalPoint
	for _, n := range scales {
		g, _ := workload.KnowledgeBase(11, n, 0.1)
		sigma := gedlib.RuleSet{
			workload.PaperPhi1(), workload.PaperPhi2(),
			workload.PaperPhi3(), workload.PaperPhi4(),
		}
		inc := gedlib.New()
		full := gedlib.New()
		// Seed both engines outside the measured loop: Apply's first
		// call runs its one full validation, Validate warms its caches.
		if _, err := inc.Apply(ctx, g, sigma); err != nil {
			panic(err)
		}
		if _, err := full.Validate(ctx, g, sigma); err != nil {
			panic(err)
		}

		rng := rand.New(rand.NewSource(101))
		types := []gedlib.Value{
			gedlib.String("programmer"), gedlib.String("psychologist"),
			gedlib.String("video game"),
		}
		applyTimes := make([]time.Duration, 0, iters)
		fullTimes := make([]time.Duration, 0, iters)
		viol := 0
		for it := 0; it < iters; it++ {
			for k := 0; k < deltaNodes; k++ {
				id := gedlib.NodeID(rng.Intn(g.NumNodes()))
				switch rng.Intn(3) {
				case 0:
					g.SetAttr(id, "type", types[rng.Intn(len(types))])
				case 1:
					g.SetAttr(id, "name", gedlib.String(fmt.Sprintf("renamed%d", it)))
				default:
					g.AddEdge(id, "create", gedlib.NodeID(rng.Intn(g.NumNodes())))
				}
			}
			start := time.Now()
			vsA, err := inc.Apply(ctx, g, sigma)
			applyTimes = append(applyTimes, time.Since(start))
			if err != nil {
				panic(err)
			}
			start = time.Now()
			vsB, err := full.Validate(ctx, g, sigma)
			fullTimes = append(fullTimes, time.Since(start))
			if err != nil {
				panic(err)
			}
			if len(vsA) != len(vsB) {
				panic("bench: incremental and full validation disagree")
			}
			viol = len(vsA)
		}
		out = append(out, IncrementalPoint{
			Size:         g.Size(),
			DeltaNodes:   deltaNodes,
			Iters:        iters,
			Violations:   viol,
			FullValidate: median(fullTimes),
			EngineApply:  median(applyTimes),
		})
	}
	return out
}

func median(ds []time.Duration) time.Duration {
	s := append([]time.Duration(nil), ds...)
	sort.Slice(s, func(i, j int) bool { return s[i] < s[j] })
	return s[len(s)/2]
}

// WriteIncremental renders the incremental-validation comparison.
func WriteIncremental(w io.Writer, pts []IncrementalPoint) {
	fmt.Fprintf(w, "%-10s %-6s %-6s %12s %12s %8s\n",
		"SIZE", "DELTA", "VIOL", "FULL", "APPLY", "SPEEDUP")
	for _, p := range pts {
		fmt.Fprintf(w, "%-10d %-6d %-6d %12s %12s %7.2fx\n",
			p.Size, p.DeltaNodes, p.Violations,
			p.FullValidate.Round(time.Microsecond), p.EngineApply.Round(time.Microsecond),
			p.Speedup())
	}
}

// ChasePoint is one measurement of the chase hosting comparison:
// per-round refreeze versus the delta-maintained live coercion.
type ChasePoint = ibench.ChasePoint

// ChaseComparison measures both chase hosting strategies; see the
// internal harness for the workload mix.
func ChaseComparison(musicScales, kbScales []int) []ChasePoint {
	return ibench.ChaseComparison(musicScales, kbScales)
}

// WriteChase renders the chase comparison.
func WriteChase(w io.Writer, pts []ChasePoint) { ibench.WriteChase(w, pts) }
