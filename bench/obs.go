package bench

import (
	"fmt"
	"io"
	"time"
)

// ObsOptions configures the observability-overhead experiment: the
// ServeLoad workload run in two arms per round — observer disabled
// (baseline) and enabled (observed) — back to back, so machine drift
// lands on both arms roughly equally.
type ObsOptions struct {
	// Load is the per-arm serving workload.
	Load ServeOptions
	// Rounds is how many baseline/observed pairs to run; each arm keeps
	// its best round, which filters scheduler noise out of the ratio.
	Rounds int
}

// DefaultObsOptions runs the acceptance serving load three times per arm.
func DefaultObsOptions() ObsOptions {
	return ObsOptions{Load: DefaultServeOptions(), Rounds: 3}
}

// QuickObsOptions is the CI smoke variant: one round of the quick load.
func QuickObsOptions() ObsOptions {
	return ObsOptions{Load: QuickServeOptions(), Rounds: 1}
}

// ObsResult is one run of the observability-overhead experiment.
type ObsResult struct {
	Rounds int `json:"rounds"`

	// Best-of-rounds served throughput per arm.
	BaselineThroughput float64 `json:"baseline_rps"`
	ObservedThroughput float64 `json:"observed_rps"`
	// Overhead is the fractional throughput cost of the instrumentation
	// (positive = observer slower). The non-quick gate requires <= 0.05.
	Overhead float64 `json:"overhead_frac"`

	// Write-path tail latency of each arm's best round — the flush
	// pipeline is where every added histogram observation sits.
	BaselineWriteP95 time.Duration `json:"baseline_write_p95_ns"`
	ObservedWriteP95 time.Duration `json:"observed_write_p95_ns"`
}

// ObsOverhead measures what the pipeline observer costs under serving
// load: identical catalogs and request streams, with the only delta
// being serve.Config.DisableObserver. The /statsz counters stay on in
// both arms (they predate the observer), so the ratio isolates exactly
// the added instrumentation — stage histograms, engine/persist/matcher
// metrics, and the span ring.
func ObsOverhead(opts ObsOptions) ObsResult {
	res := ObsResult{Rounds: opts.Rounds}
	for r := 0; r < opts.Rounds; r++ {
		base := opts.Load
		base.DisableObserver = true
		b := ServeLoad(base)
		obs := opts.Load
		obs.DisableObserver = false
		o := ServeLoad(obs)
		if b.Throughput > res.BaselineThroughput {
			res.BaselineThroughput = b.Throughput
			res.BaselineWriteP95 = b.Write.P95
		}
		if o.Throughput > res.ObservedThroughput {
			res.ObservedThroughput = o.Throughput
			res.ObservedWriteP95 = o.Write.P95
		}
	}
	if res.BaselineThroughput > 0 {
		res.Overhead = 1 - res.ObservedThroughput/res.BaselineThroughput
	}
	return res
}

// WriteObs renders the observability-overhead result.
func WriteObs(w io.Writer, r ObsResult) {
	fmt.Fprintf(w, "rounds=%d (best-of per arm)\n", r.Rounds)
	fmt.Fprintf(w, "%-10s %12s %14s\n", "ARM", "RPS", "WRITE P95")
	fmt.Fprintf(w, "%-10s %12.0f %14s\n", "baseline", r.BaselineThroughput,
		r.BaselineWriteP95.Round(time.Microsecond))
	fmt.Fprintf(w, "%-10s %12.0f %14s\n", "observed", r.ObservedThroughput,
		r.ObservedWriteP95.Round(time.Microsecond))
	fmt.Fprintf(w, "observer overhead %.2f%% of baseline throughput\n", 100*r.Overhead)
}
