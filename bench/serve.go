package bench

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"sort"
	"sync"
	"time"

	"gedlib"
	"gedlib/serve"
	"gedlib/workload"
)

// ServeOptions configures the serving-subsystem load experiment: an
// in-process gedserve (real HTTP handlers, admission control, write
// batcher) driven by concurrent clients replaying a Zipfian-skewed
// multi-tenant request mix.
type ServeOptions struct {
	// Scale is the knowledge-base scale of the hottest tenant; further
	// tenants shrink geometrically (Scale/4, Scale/16, ... with a floor).
	Scale int
	// Tenants is how many graphs the catalog hosts.
	Tenants int
	// Clients is the number of concurrent load-generating clients.
	Clients int
	// RequestsPerClient is each client's request budget.
	RequestsPerClient int
	// ReadFraction is the read share of the mix (0.9 = 90/10).
	ReadFraction float64
	// Skew is the Zipf exponent of the graph/node hot-key skew.
	Skew float64
	// Seed makes the request streams deterministic.
	Seed int64

	// DataDir, when non-empty, runs the server durably (WAL +
	// checkpoints under it) with the given Fsync policy — the
	// durability experiment compares this against the in-memory run.
	DataDir string
	Fsync   string

	// DisableObserver runs the server without the added pipeline
	// instrumentation — the baseline arm of the obs overhead experiment.
	DisableObserver bool
}

// DefaultServeOptions is the acceptance workload: 64 concurrent
// clients, 90/10 read/write, KB2000 hottest tenant.
func DefaultServeOptions() ServeOptions {
	return ServeOptions{
		Scale: 2000, Tenants: 3, Clients: 64, RequestsPerClient: 150,
		ReadFraction: 0.9, Skew: 1.2, Seed: 1,
	}
}

// QuickServeOptions is the CI smoke variant.
func QuickServeOptions() ServeOptions {
	return ServeOptions{
		Scale: 200, Tenants: 2, Clients: 16, RequestsPerClient: 25,
		ReadFraction: 0.9, Skew: 1.2, Seed: 1,
	}
}

// LatencySummary is the percentile digest of one request class.
type LatencySummary struct {
	Count int           `json:"count"`
	P50   time.Duration `json:"p50_ns"`
	P95   time.Duration `json:"p95_ns"`
	P99   time.Duration `json:"p99_ns"`
}

func summarize(ds []time.Duration) LatencySummary {
	if len(ds) == 0 {
		return LatencySummary{}
	}
	s := append([]time.Duration(nil), ds...)
	sort.Slice(s, func(i, j int) bool { return s[i] < s[j] })
	pct := func(p float64) time.Duration {
		i := int(p * float64(len(s)-1))
		return s[i]
	}
	return LatencySummary{Count: len(s), P50: pct(0.50), P95: pct(0.95), P99: pct(0.99)}
}

// ServeResult is one run of the serving load experiment.
type ServeResult struct {
	Scale        int     `json:"scale"`
	Tenants      int     `json:"tenants"`
	Clients      int     `json:"clients"`
	ReadFraction float64 `json:"read_fraction"`

	// Requests is the attempted total; Throughput counts only the
	// Requests-Errors that completed (a shed 503 must not inflate the
	// served rate).
	Requests   int           `json:"requests"`
	Errors     int           `json:"errors"`
	Elapsed    time.Duration `json:"elapsed_ns"`
	Throughput float64       `json:"throughput_rps"`

	Overall LatencySummary `json:"overall"`
	Read    LatencySummary `json:"read"`
	Write   LatencySummary `json:"write"`

	// Coalescing visibility, summed over tenants from /statsz.
	Flushes          uint64  `json:"flushes"`
	FlushedOps       uint64  `json:"flushed_ops"`
	FlushedReqs      uint64  `json:"flushed_reqs"`
	AvgBatchOps      float64 `json:"avg_batch_ops"`
	AvgBatchReqs     float64 `json:"avg_batch_reqs"`
	RejectedWrites   uint64  `json:"rejected_writes"`
	RejectedRequests uint64  `json:"rejected_requests"`
}

// serveClient is one load generator: its own request mix, its own
// latency log.
type serveClient struct {
	mix       *workload.ServeMix
	tenants   []string
	nodeCount []int
	readLat   []time.Duration
	writeLat  []time.Duration
	errors    int
}

// ServeLoad builds the catalog, fires the clients, and digests the
// result. It panics on setup errors (the experiment is a harness, not a
// server) and counts per-request failures instead of aborting — load
// shedding is an expected behavior under saturation, not a bug.
func ServeLoad(opts ServeOptions) ServeResult {
	srv, err := serve.NewServer(serve.Config{
		MaxInFlight:     2*opts.Clients + 16,
		DataDir:         opts.DataDir,
		Fsync:           opts.Fsync,
		DisableObserver: opts.DisableObserver,
	})
	if err != nil {
		panic(err)
	}
	defer srv.Close()
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()
	client := &http.Client{Transport: &http.Transport{
		MaxIdleConns:        2 * opts.Clients,
		MaxIdleConnsPerHost: 2 * opts.Clients,
	}}

	sigma := gedlib.RuleSet{
		workload.PaperPhi1(), workload.PaperPhi2(),
		workload.PaperPhi3(), workload.PaperPhi4(),
	}
	rulesSrc := gedlib.FormatRules(sigma)

	tenants := make([]string, opts.Tenants)
	nodeCount := make([]int, opts.Tenants)
	scale := opts.Scale
	for i := range tenants {
		if scale < 50 {
			scale = 50
		}
		g, _ := workload.KnowledgeBase(opts.Seed+int64(i), scale, 0.1)
		data, err := gedlib.MarshalGraph(g)
		if err != nil {
			panic(err)
		}
		name := fmt.Sprintf("tenant%d", i)
		tenants[i] = name
		nodeCount[i] = g.NumNodes()
		mustPost(client, ts.URL+"/graphs?name="+name, data)
		mustPost(client, ts.URL+"/graphs/"+name+"/rules", []byte(rulesSrc))
		scale /= 4
	}

	clients := make([]*serveClient, opts.Clients)
	for i := range clients {
		clients[i] = &serveClient{
			mix: workload.NewServeMix(opts.Seed+int64(1000+i), opts.Tenants,
				nodeCount[0], opts.ReadFraction, opts.Skew),
			tenants:   tenants,
			nodeCount: nodeCount,
		}
	}

	start := time.Now()
	var wg sync.WaitGroup
	for _, c := range clients {
		wg.Add(1)
		go func(c *serveClient) {
			defer wg.Done()
			c.run(client, ts.URL, opts.RequestsPerClient)
		}(c)
	}
	wg.Wait()
	elapsed := time.Since(start)

	var all, reads, writes []time.Duration
	errors := 0
	for _, c := range clients {
		reads = append(reads, c.readLat...)
		writes = append(writes, c.writeLat...)
		errors += c.errors
	}
	all = append(append(all, reads...), writes...)

	attempted := opts.Clients * opts.RequestsPerClient
	res := ServeResult{
		Scale:        opts.Scale,
		Tenants:      opts.Tenants,
		Clients:      opts.Clients,
		ReadFraction: opts.ReadFraction,
		Requests:     attempted,
		Errors:       errors,
		Elapsed:      elapsed,
		Throughput:   float64(attempted-errors) / elapsed.Seconds(),
		Overall:      summarize(all),
		Read:         summarize(reads),
		Write:        summarize(writes),
	}

	var stats serve.ServerStats
	getJSON(client, ts.URL+"/statsz", &stats)
	for _, e := range stats.Entries {
		res.Flushes += e.Flushes
		res.FlushedOps += e.FlushedOps
		res.FlushedReqs += e.FlushedReqs
		res.RejectedWrites += e.RejectedWrites
	}
	if res.Flushes > 0 {
		res.AvgBatchOps = float64(res.FlushedOps) / float64(res.Flushes)
		res.AvgBatchReqs = float64(res.FlushedReqs) / float64(res.Flushes)
	}
	res.RejectedRequests = stats.RejectedRequests
	return res
}

// run replays the client's request budget against the server.
func (c *serveClient) run(hc *http.Client, base string, requests int) {
	for i := 0; i < requests; i++ {
		req := c.mix.Next()
		tenant := c.tenants[req.Graph]
		n := c.nodeCount[req.Graph]
		var (
			err   error
			start = time.Now()
		)
		switch req.Op {
		case workload.OpListViolations:
			err = c.get(hc, base+"/graphs/"+tenant+"/violations?limit=5")
		case workload.OpStats:
			err = c.get(hc, base+"/graphs/"+tenant+"/stats")
		case workload.OpValidateNodes:
			nodes := make([]string, len(req.Nodes))
			for j, nd := range req.Nodes {
				nodes[j] = fmt.Sprintf("n%d", nd%n)
			}
			body, _ := json.Marshal(map[string]any{"nodes": nodes, "limit": 10})
			err = c.post(hc, base+"/graphs/"+tenant+"/validate", body)
		case workload.OpMutate:
			ops := make([]serve.Op, 0, len(req.Nodes))
			for j, nd := range req.Nodes {
				node := fmt.Sprintf("n%d", nd%n)
				if req.AttrWrite[j] {
					ops = append(ops, serve.Op{
						Op: "set_attr", ID: node, Attr: "type", Value: "programmer",
					})
				} else {
					dst := fmt.Sprintf("n%d", (nd+1+j)%n)
					ops = append(ops, serve.Op{
						Op: "add_edge", Src: node, Label: "create", Dst: dst,
					})
				}
			}
			body, _ := json.Marshal(map[string]any{"ops": ops})
			err = c.post(hc, base+"/graphs/"+tenant+"/mutate", body)
		}
		lat := time.Since(start)
		if err != nil {
			c.errors++
			continue
		}
		if req.IsRead() {
			c.readLat = append(c.readLat, lat)
		} else {
			c.writeLat = append(c.writeLat, lat)
		}
	}
}

func (c *serveClient) get(hc *http.Client, url string) error {
	resp, err := hc.Get(url)
	if err != nil {
		return err
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return fmt.Errorf("status %d", resp.StatusCode)
	}
	return nil
}

func (c *serveClient) post(hc *http.Client, url string, body []byte) error {
	resp, err := hc.Post(url, "application/json", bytes.NewReader(body))
	if err != nil {
		return err
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return fmt.Errorf("status %d", resp.StatusCode)
	}
	return nil
}

func mustPost(hc *http.Client, url string, body []byte) {
	resp, err := hc.Post(url, "application/json", bytes.NewReader(body))
	if err != nil {
		panic(err)
	}
	data, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode/100 != 2 {
		panic(fmt.Sprintf("bench: POST %s: status %d: %s", url, resp.StatusCode, data))
	}
}

func getJSON(hc *http.Client, url string, v any) {
	resp, err := hc.Get(url)
	if err != nil {
		panic(err)
	}
	defer resp.Body.Close()
	if err := json.NewDecoder(resp.Body).Decode(v); err != nil {
		panic(err)
	}
}

// WriteServe renders the serving-load result.
func WriteServe(w io.Writer, r ServeResult) {
	fmt.Fprintf(w, "tenants=%d (hottest KB%d)  clients=%d  mix=%d/%d read/write  requests=%d\n",
		r.Tenants, r.Scale, r.Clients,
		int(r.ReadFraction*100), 100-int(r.ReadFraction*100), r.Requests)
	fmt.Fprintf(w, "elapsed %.2fs  throughput %.0f req/s  errors %d  shed %d  queue-full %d\n",
		r.Elapsed.Seconds(), r.Throughput, r.Errors, r.RejectedRequests, r.RejectedWrites)
	fmt.Fprintf(w, "%-8s %8s %12s %12s %12s\n", "CLASS", "COUNT", "P50", "P95", "P99")
	row := func(name string, s LatencySummary) {
		fmt.Fprintf(w, "%-8s %8d %12s %12s %12s\n", name, s.Count,
			s.P50.Round(time.Microsecond), s.P95.Round(time.Microsecond), s.P99.Round(time.Microsecond))
	}
	row("all", r.Overall)
	row("read", r.Read)
	row("write", r.Write)
	fmt.Fprintf(w, "coalescing: %d flushes, %d ops, %d reqs — %.2f ops/flush, %.2f reqs/flush\n",
		r.Flushes, r.FlushedOps, r.FlushedReqs, r.AvgBatchOps, r.AvgBatchReqs)
}
