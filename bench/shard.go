package bench

import (
	"context"
	"fmt"
	"io"
	"runtime"
	"sort"
	"strings"
	"time"

	"gedlib"
	"gedlib/workload"
)

// ShardOptions configures the sharded-validation scaling experiment.
type ShardOptions struct {
	// Communities and CommunitySize shape the PowerLawSocial host graph.
	Communities, CommunitySize int
	// Degree is the average (out-)degree; InterFrac the share of edges
	// that cross communities ("follows").
	Degree, InterFrac float64
	// Shards is the P sweep; 1 means the monolithic engine.
	Shards []int
	// Iters is how many timed Validate calls feed each median.
	Iters int
	// Seed makes the workload deterministic.
	Seed int64
}

// DefaultShardOptions is the committed-artifact configuration.
func DefaultShardOptions() ShardOptions {
	return ShardOptions{
		Communities: 8, CommunitySize: 250,
		Degree: 6, InterFrac: 0.2,
		Shards: []int{1, 2, 4, 8},
		Iters:  5, Seed: 17,
	}
}

// QuickShardOptions is the CI smoke configuration.
func QuickShardOptions() ShardOptions {
	return ShardOptions{
		Communities: 4, CommunitySize: 50,
		Degree: 4, InterFrac: 0.2,
		Shards: []int{1, 2},
		Iters:  2, Seed: 17,
	}
}

// ShardPoint is one measurement of the sharding experiment: one rule
// set × partitioner × shard count, with its speedup over the P=1
// monolithic baseline on the same rule set.
type ShardPoint struct {
	RuleSet     string        `json:"rule_set"`
	Partitioner string        `json:"partitioner"`
	Shards      int           `json:"shards"`
	CutEdges    int           `json:"cut_edges"`
	Violations  int           `json:"violations"`
	Validate    time.Duration `json:"validate_ns"`
	// Speedup is monolithic time / this point's time; Efficiency is
	// Speedup / Shards (1.0 = perfect linear scaling).
	Speedup    float64 `json:"speedup"`
	Efficiency float64 `json:"efficiency"`
}

// ShardResult is the full sharding experiment: the host graph's shape
// and the scaling sweep. NumCPU records the measuring machine — scaling
// past it measures scheduling overhead, not parallelism, so consumers
// gate efficiency only on points with Shards ≤ NumCPU.
type ShardResult struct {
	Nodes        int          `json:"nodes"`
	KnowsEdges   int          `json:"knows_edges"`
	FollowsEdges int          `json:"follows_edges"`
	NumCPU       int          `json:"num_cpu"`
	Points       []ShardPoint `json:"points"`
}

// canonSet renders a violation list as an order-insensitive canonical
// string for the cross-path equality assertion.
func canonSet(vs []gedlib.Violation) string {
	keys := make([]string, len(vs))
	for i, v := range vs {
		s := v.GED.Name
		for _, x := range v.GED.Pattern.Vars() {
			s += fmt.Sprintf(":%s=%d", x, v.Match[x])
		}
		keys[i] = s
	}
	sort.Strings(keys)
	return strings.Join(keys, "\n")
}

// ShardScaling measures sharded Validate against the monolithic engine
// on the power-law social workload, for the partition-friendly
// ("knows"-only patterns) and boundary-heavy ("follows"-only patterns)
// rule sets, across the configured P sweep with both partitioners.
// Every sharded run's violation set is asserted equal to the
// monolithic set — the experiment measures a different schedule for
// the same answer, and panics if that stops being true.
func ShardScaling(opts ShardOptions) ShardResult {
	ctx := context.Background()
	g, stats := workload.PowerLawSocial(opts.Seed,
		opts.Communities, opts.CommunitySize, opts.Degree, opts.InterFrac)
	res := ShardResult{
		Nodes:        stats.Nodes,
		KnowsEdges:   stats.KnowsEdges,
		FollowsEdges: stats.FollowsEdges,
		NumCPU:       runtime.NumCPU(),
	}
	ruleSets := []struct {
		name  string
		sigma gedlib.RuleSet
	}{
		{"partition-friendly", workload.PartitionFriendlyRules()},
		{"boundary-heavy", workload.BoundaryHeavyRules()},
	}
	partitioners := []struct {
		name string
		part gedlib.Partitioner
	}{
		{"greedy", gedlib.GreedyPartitioner()},
		{"hash", gedlib.HashPartitioner()},
	}
	mono := gedlib.New()
	for _, rs := range ruleSets {
		want, err := mono.Validate(ctx, g, rs.sigma)
		if err != nil {
			panic(err)
		}
		wantCanon := canonSet(want)
		baseline := time.Duration(0)
		for _, p := range opts.Shards {
			for _, pn := range partitioners {
				if p == 1 && pn.name != "greedy" {
					continue // P=1 is the monolithic engine; partitioner moot
				}
				eng := mono
				if p > 1 {
					eng = gedlib.New(gedlib.WithShards(p), gedlib.WithPartitioner(pn.part))
				}
				// Warm outside the timed loop: first contact pays the
				// partition + shard-snapshot build (or, monolithic, the
				// freeze and plan compilation); steady state is what
				// scales.
				if _, err := eng.Validate(ctx, g, rs.sigma); err != nil {
					panic(err)
				}
				times := make([]time.Duration, 0, opts.Iters)
				var vs []gedlib.Violation
				for it := 0; it < opts.Iters; it++ {
					start := time.Now()
					vs, err = eng.Validate(ctx, g, rs.sigma)
					times = append(times, time.Since(start))
					if err != nil {
						panic(err)
					}
				}
				if got := canonSet(vs); got != wantCanon {
					panic(fmt.Sprintf("bench: sharded validation (p=%d %s %s) diverged from monolithic",
						p, pn.name, rs.name))
				}
				pt := ShardPoint{
					RuleSet:     rs.name,
					Partitioner: pn.name,
					Shards:      p,
					Violations:  len(vs),
					Validate:    median(times),
				}
				if p == 1 {
					pt.Partitioner = "-"
					baseline = pt.Validate
				} else if st, ok := eng.ShardStats(g); ok {
					pt.CutEdges = st.CutEdges
				}
				if baseline > 0 && pt.Validate > 0 {
					pt.Speedup = float64(baseline) / float64(pt.Validate)
					pt.Efficiency = pt.Speedup / float64(p)
				}
				res.Points = append(res.Points, pt)
			}
		}
	}
	return res
}

// WriteShard renders the sharding experiment as aligned tables, one
// per rule set.
func WriteShard(w io.Writer, res ShardResult) {
	fmt.Fprintf(w, "host graph: %d nodes, %d knows (intra), %d follows (inter), %d CPUs\n",
		res.Nodes, res.KnowsEdges, res.FollowsEdges, res.NumCPU)
	last := ""
	for _, p := range res.Points {
		if p.RuleSet != last {
			fmt.Fprintf(w, "\n%s:\n", p.RuleSet)
			fmt.Fprintf(w, "%-3s %-8s %8s %6s %12s %8s %6s\n",
				"P", "PART", "CUT", "VIOL", "VALIDATE", "SPEEDUP", "EFF")
			last = p.RuleSet
		}
		fmt.Fprintf(w, "%-3d %-8s %8d %6d %12s %7.2fx %6.2f\n",
			p.Shards, p.Partitioner, p.CutEdges, p.Violations,
			p.Validate.Round(time.Microsecond), p.Speedup, p.Efficiency)
	}
}
