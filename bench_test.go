package gedlib_test

// Benchmarks regenerating the paper's evaluation artifacts: one
// benchmark family per cell of Table 1 (satisfiability / implication /
// validation × dependency class), the O(1) and bounded-pattern special
// cases, and micro-benchmarks for the substrates (matcher, chase).
//
// The paper reports complexity classes rather than absolute numbers;
// the series here make the *shapes* visible: hardness-family instances
// grow super-polynomially with the 3-colorability input, GFDx
// satisfiability stays flat, and fixed-pattern validation scales
// polynomially with graph size.

import (
	"fmt"
	"testing"

	"gedlib/internal/axiom"
	"gedlib/internal/chase"
	"gedlib/internal/gdc"
	"gedlib/internal/ged"
	"gedlib/internal/gedor"
	"gedlib/internal/gen"
	"gedlib/internal/graph"
	"gedlib/internal/optimize"
	"gedlib/internal/pattern"
	"gedlib/internal/reason"
	"gedlib/internal/repair"
)

// hardness instances ordered by difficulty.
func hardnessSeries() []struct {
	name string
	h    *gen.UGraph
} {
	return []struct {
		name string
		h    *gen.UGraph
	}{
		{"K3", gen.Complete(3)},
		{"C5", gen.Cycle(5)},
		{"W5", gen.Wheel(5)},
		{"K23", gen.CompleteBipartite(2, 3)},
	}
}

// ---- Table 1: satisfiability ----

func BenchmarkSatGFD3Col(b *testing.B) {
	for _, in := range hardnessSeries() {
		sigma := gen.SatGFDFamily(in.h)
		b.Run(in.name, func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				reason.CheckSat(sigma)
			}
		})
	}
}

func BenchmarkSatGEDWithKeys(b *testing.B) {
	// GED satisfiability: constants and id literals together.
	sigma := gen.SatGFDFamily(gen.Cycle(5))
	sigma = append(sigma, gen.PaperKeys()...)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		reason.CheckSat(sigma)
	}
}

func BenchmarkSatGKeyRecursive(b *testing.B) {
	sigma := gen.PaperKeys()
	for i := 0; i < b.N; i++ {
		reason.CheckSat(sigma)
	}
}

func BenchmarkSatGEDxRandom(b *testing.B) {
	sigma := gen.RandomGEDSet(3, 6, 4, []graph.Label{"a", "b"}, []graph.Attr{"p", "q"}, 3)
	var gedx ged.Set
	for _, d := range sigma {
		var ys []ged.Literal
		for _, l := range d.Y {
			if k, _ := l.Kind(); k != ged.ConstLiteral {
				ys = append(ys, l)
			}
		}
		gedx = append(gedx, ged.New(d.Name, d.Pattern, nil, ys))
	}
	for i := 0; i < b.N; i++ {
		reason.CheckSat(gedx)
	}
}

// BenchmarkSatGFDxConstant shows the O(1) row: GFDx sets of growing size
// are decided without any chase conflicts, so time grows only with the
// (linear) chase bookkeeping, never with a search.
func BenchmarkSatGFDxConstant(b *testing.B) {
	for _, n := range []int{4, 8, 16, 32} {
		sigma, _ := gen.ImplGFDxFamily(gen.Cycle(n))
		b.Run(fmt.Sprintf("n%d", n), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if !reason.DecideSat(sigma) {
					b.Fatal("GFDx must be satisfiable")
				}
			}
		})
	}
}

func BenchmarkSatGDCDomain(b *testing.B) {
	dom := gdc.DomainConstraint("tau", "A", graph.Int(0), graph.Int(1))
	for i := 0; i < b.N; i++ {
		if gdc.CheckSat(dom).Satisfiable != gdc.True {
			b.Fatal("domain must be satisfiable")
		}
	}
}

func BenchmarkSatGEDorDomain(b *testing.B) {
	psi := gedor.DomainConstraint("tau", "A", graph.Int(0), graph.Int(1))
	psi2 := gedor.DomainConstraint("tau", "B", graph.Int(3), graph.Int(4), graph.Int(5))
	sigma := gedor.Set{psi, psi2}
	for i := 0; i < b.N; i++ {
		if gedor.CheckSat(sigma).Satisfiable != gedor.True {
			b.Fatal("domains must be satisfiable")
		}
	}
}

// ---- Table 1: implication ----

func BenchmarkImplGFDx3Col(b *testing.B) {
	for _, in := range hardnessSeries() {
		sigma, phi := gen.ImplGFDxFamily(in.h)
		b.Run(in.name, func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				reason.Implies(sigma, phi)
			}
		})
	}
}

func BenchmarkImplGKey3Col(b *testing.B) {
	for _, in := range hardnessSeries() {
		sigma, phi := gen.ImplGKeyFamily(in.h)
		b.Run(in.name, func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				reason.Implies(sigma, phi)
			}
		})
	}
}

func BenchmarkImplGEDKeyWeakening(b *testing.B) {
	q := pattern.New()
	q.AddVar("x", "album")
	k1, _ := ged.NewGKey("k1", q, "x", func(x, fx pattern.Var) []ged.Literal {
		return []ged.Literal{ged.VarLit(x, "title", fx, "title")}
	})
	k2, _ := ged.NewGKey("k2", q, "x", func(x, fx pattern.Var) []ged.Literal {
		return []ged.Literal{ged.VarLit(x, "title", fx, "title"), ged.VarLit(x, "release", fx, "release")}
	})
	sigma := ged.Set{k1}
	for i := 0; i < b.N; i++ {
		if !reason.Implies(sigma, k2).Implied {
			b.Fatal("weakening must be implied")
		}
	}
}

func BenchmarkImplGDCOrder(b *testing.B) {
	q := pattern.New()
	q.AddVar("x", "p")
	lt5 := gdc.Set{gdc.New("lt5", q, nil, []ged.Literal{ged.Cmp("x", "a", ged.OpLt, graph.Int(5))})}
	q2 := pattern.New()
	q2.AddVar("x", "p")
	lt10 := gdc.New("lt10", q2, nil, []ged.Literal{ged.Cmp("x", "a", ged.OpLt, graph.Int(10))})
	for i := 0; i < b.N; i++ {
		gdc.Implies(lt5, lt10)
	}
}

func BenchmarkImplGEDorCaseSplit(b *testing.B) {
	q := func() *pattern.Pattern {
		p := pattern.New()
		p.AddVar("x", "tau")
		return p
	}
	dom := gedor.DomainConstraint("tau", "A", graph.Int(0), graph.Int(1))
	c0 := gedor.New("c0", q(), []ged.Literal{ged.ConstLit("x", "A", graph.Int(0))},
		[]ged.Literal{ged.ConstLit("x", "B", graph.Int(5))})
	c1 := gedor.New("c1", q(), []ged.Literal{ged.ConstLit("x", "A", graph.Int(1))},
		[]ged.Literal{ged.ConstLit("x", "B", graph.Int(5))})
	phi := gedor.New("phi", q(), nil, []ged.Literal{ged.ConstLit("x", "B", graph.Int(5))})
	sigma := gedor.Set{dom, c0, c1}
	for i := 0; i < b.N; i++ {
		if gedor.Implies(sigma, phi).Implied != gedor.True {
			b.Fatal("case split must be implied")
		}
	}
}

// ---- Table 1: validation ----

func BenchmarkValidGFDx3Col(b *testing.B) {
	for _, in := range hardnessSeries() {
		g, sigma := gen.ValidGFDxFamily(in.h)
		b.Run(in.name, func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				reason.Satisfies(g, sigma)
			}
		})
	}
}

func BenchmarkValidGKey3Col(b *testing.B) {
	for _, in := range hardnessSeries() {
		g, sigma := gen.ValidGKeyFamily(in.h)
		b.Run(in.name, func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				reason.Satisfies(g, sigma)
			}
		})
	}
}

func BenchmarkValidGFDKnowledgeBase(b *testing.B) {
	sigma := ged.Set{gen.PaperPhi1(), gen.PaperPhi2(), gen.PaperPhi3(), gen.PaperPhi4()}
	for _, n := range []int{50, 100, 200} {
		g, _ := gen.KnowledgeBase(5, n, 0.1)
		b.Run(fmt.Sprintf("scale%d", n), func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				reason.Validate(g, sigma, 0)
			}
		})
	}
}

func BenchmarkValidGEDMusicKeys(b *testing.B) {
	for _, n := range []int{20, 40, 80} {
		g, _ := gen.MusicDB(5, n, 0.2)
		b.Run(fmt.Sprintf("artists%d", n), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				reason.Validate(g, gen.PaperKeys(), 0)
			}
		})
	}
}

func BenchmarkValidSpamRule(b *testing.B) {
	g, _ := gen.SocialNetwork(5, 10, 8)
	sigma := ged.Set{gen.PaperPhi5(2)}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		reason.Validate(g, sigma, 0)
	}
}

func BenchmarkValidGDCDenial(b *testing.B) {
	q := pattern.New()
	q.AddVar("e", "emp").AddVar("m", "emp")
	q.AddEdge("e", "reports_to", "m")
	dc := gdc.New("salary", q,
		[]ged.Literal{ged.CmpVars("e", "salary", ged.OpGt, "m", "salary")}, ged.False("e"))
	g := graph.New()
	var prev graph.NodeID = -1
	for i := 0; i < 200; i++ {
		n := g.AddNodeAttrs("emp", map[graph.Attr]graph.Value{"salary": graph.Int(100 - i%7)})
		if prev >= 0 {
			g.AddEdge(n, "reports_to", prev)
		}
		prev = n
	}
	for i := 0; i < b.N; i++ {
		gdc.Validate(g, gdc.Set{dc}, 0)
	}
}

func BenchmarkValidGEDorDomain(b *testing.B) {
	psi := gedor.DomainConstraint("account", "flag", graph.Int(0), graph.Int(1))
	g := graph.New()
	for i := 0; i < 500; i++ {
		g.AddNodeAttrs("account", map[graph.Attr]graph.Value{"flag": graph.Int(i % 3)})
	}
	for i := 0; i < b.N; i++ {
		gedor.Validate(g, gedor.Set{psi}, 0)
	}
}

// ---- Section 5.3: bounded patterns are tractable ----

func BenchmarkBoundedPatternValidation(b *testing.B) {
	sigma := ged.Set{gen.PaperPhi1(), gen.PaperPhi2(), gen.PaperPhi3(), gen.PaperPhi4()}
	for _, n := range []int{100, 200, 400, 800} {
		g, _ := gen.KnowledgeBase(9, n, 0.05)
		b.Run(fmt.Sprintf("graph%d", g.Size()), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				reason.Validate(g, sigma, 0)
			}
		})
	}
}

// ---- Substrates ----

func BenchmarkMatcherTriangleIntoK3(b *testing.B) {
	g, _ := gen.ValidGFDxFamily(gen.Cycle(3))
	_ = g
	host := gen.RandomPropertyGraph(3, 1000, 4, []graph.Label{"a", "b", "c"}, []graph.Attr{"p"}, 4)
	q := pattern.New()
	q.AddVar("x", "a").AddVar("y", "b").AddVar("z", "c")
	q.AddEdge("x", "e", "y")
	q.AddEdge("y", "e", "z")
	q.AddEdge("z", "e", "x")
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		pattern.CountMatches(q, host)
	}
}

func BenchmarkChaseEntityResolution(b *testing.B) {
	for _, n := range []int{20, 40} {
		g, _ := gen.MusicDB(5, n, 0.4)
		b.Run(fmt.Sprintf("artists%d", n), func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				chase.Run(g.Clone(), gen.PaperKeys())
			}
		})
	}
}

func BenchmarkAxiomProve(b *testing.B) {
	q := pattern.New()
	q.AddVar("x", "p")
	ab := ged.New("ab", q, []ged.Literal{ged.ConstLit("x", "a", graph.Int(1))},
		[]ged.Literal{ged.ConstLit("x", "b", graph.Int(2))})
	bc := ged.New("bc", q, []ged.Literal{ged.ConstLit("x", "b", graph.Int(2))},
		[]ged.Literal{ged.ConstLit("x", "c", graph.Int(3))})
	ac := ged.New("ac", q, []ged.Literal{ged.ConstLit("x", "a", graph.Int(1))},
		[]ged.Literal{ged.ConstLit("x", "c", graph.Int(3))})
	sigma := ged.Set{ab, bc}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		p, err := axiom.Prove(sigma, ac)
		if err != nil {
			b.Fatal(err)
		}
		if err := axiom.Check(sigma, p); err != nil {
			b.Fatal(err)
		}
	}
}

// ---- Applications: parallel validation, query rewriting, repair ----

func BenchmarkValidateParallel(b *testing.B) {
	sigma := ged.Set{gen.PaperPhi1(), gen.PaperPhi2(), gen.PaperPhi3(), gen.PaperPhi4()}
	g, _ := gen.KnowledgeBase(5, 400, 0.1)
	for _, workers := range []int{1, 2, 4, 8} {
		b.Run(fmt.Sprintf("workers%d", workers), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				reason.ValidateParallel(g, sigma, 0, workers)
			}
		})
	}
}

func BenchmarkQueryRewriteSpeedup(b *testing.B) {
	keys := gen.PaperKeys()
	raw, _ := gen.MusicDB(21, 200, 0.3)
	res := chase.Run(raw, keys)
	if !res.Consistent() {
		b.Fatal("resolution failed")
	}
	data := res.Materialize()
	q := pattern.New()
	q.AddVar("u", "album").AddVar("v", "album")
	query := &optimize.Query{Pattern: q, X: []ged.Literal{
		ged.VarLit("u", "title", "v", "title"),
		ged.VarLit("u", "release", "v", "release"),
	}}
	rewritten := optimize.Rewrite(query, keys)
	b.Run("original", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			optimize.Answers(query, data)
		}
	})
	b.Run("rewritten", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			optimize.Answers(rewritten.Query, data)
		}
	})
}

func BenchmarkRepairMusicCatalog(b *testing.B) {
	g, _ := gen.MusicDB(3, 30, 0.4)
	keys := gen.PaperKeys()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		r := repair.Run(g, keys)
		if !r.Repaired {
			b.Fatal("repair failed")
		}
	}
}

// BenchmarkValidatorIndexed compares plain validation against the
// prepared, attribute-indexed validator on the spam workload: the
// antecedent x'.is_fake = 1 of φ₅ is highly selective, so the index
// pivot starts the six-variable match from the handful of confirmed
// fakes instead of every account.
func BenchmarkValidatorIndexed(b *testing.B) {
	sigma := ged.Set{gen.PaperPhi5(2)}
	g, _ := gen.SocialNetwork(5, 30, 10)
	b.Run("plain", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			reason.Validate(g, sigma, 0)
		}
	})
	b.Run("prepared", func(b *testing.B) {
		v := reason.NewValidator(g, sigma)
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			v.Run(0)
		}
	})
}
