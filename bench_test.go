package gedlib_test

// Benchmarks regenerating the paper's evaluation artifacts: one
// benchmark family per cell of Table 1 (satisfiability / implication /
// validation × dependency class), the O(1) and bounded-pattern special
// cases, and micro-benchmarks for the substrates (matcher, chase).
// Everything runs through the public facade.
//
// The paper reports complexity classes rather than absolute numbers;
// the series here make the *shapes* visible: hardness-family instances
// grow super-polynomially with the 3-colorability input, GFDx
// satisfiability stays flat, and fixed-pattern validation scales
// polynomially with graph size.

import (
	"context"
	"fmt"
	"testing"

	"gedlib"
	"gedlib/gdc"
	"gedlib/gedor"
	"gedlib/workload"
)

var (
	benchCtx = context.Background()
	benchEng = gedlib.New()
)

// hardness instances ordered by difficulty.
func hardnessSeries() []struct {
	name string
	h    *workload.UGraph
} {
	return []struct {
		name string
		h    *workload.UGraph
	}{
		{"K3", workload.Complete(3)},
		{"C5", workload.Cycle(5)},
		{"W5", workload.Wheel(5)},
		{"K23", workload.CompleteBipartite(2, 3)},
	}
}

// ---- Table 1: satisfiability ----

func BenchmarkSatGFD3Col(b *testing.B) {
	for _, in := range hardnessSeries() {
		sigma := workload.SatGFDFamily(in.h)
		b.Run(in.name, func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				benchEng.CheckSat(benchCtx, sigma)
			}
		})
	}
}

func BenchmarkSatGEDWithKeys(b *testing.B) {
	// GED satisfiability: constants and id literals together.
	sigma := workload.SatGFDFamily(workload.Cycle(5))
	sigma = append(sigma, workload.PaperKeys()...)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		benchEng.CheckSat(benchCtx, sigma)
	}
}

func BenchmarkSatGKeyRecursive(b *testing.B) {
	sigma := workload.PaperKeys()
	for i := 0; i < b.N; i++ {
		benchEng.CheckSat(benchCtx, sigma)
	}
}

func BenchmarkSatGEDxRandom(b *testing.B) {
	sigma := workload.RandomGEDSet(3, 6, 4, []gedlib.Label{"a", "b"}, []gedlib.Attr{"p", "q"}, 3)
	var gedx gedlib.RuleSet
	for _, d := range sigma {
		var ys []gedlib.Literal
		for _, l := range d.Y {
			if k, _ := l.Kind(); k != gedlib.ConstLiteral {
				ys = append(ys, l)
			}
		}
		gedx = append(gedx, gedlib.NewRule(d.Name, d.Pattern, nil, ys))
	}
	for i := 0; i < b.N; i++ {
		benchEng.CheckSat(benchCtx, gedx)
	}
}

// BenchmarkSatGFDxConstant shows the O(1) row: GFDx sets of growing size
// are decided without any chase conflicts, so time grows only with the
// (linear) chase bookkeeping, never with a search.
func BenchmarkSatGFDxConstant(b *testing.B) {
	for _, n := range []int{4, 8, 16, 32} {
		sigma, _ := workload.ImplGFDxFamily(workload.Cycle(n))
		b.Run(fmt.Sprintf("n%d", n), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if !gedlib.DecideSat(sigma) {
					b.Fatal("GFDx must be satisfiable")
				}
			}
		})
	}
}

func BenchmarkSatGDCDomain(b *testing.B) {
	dom := gdc.DomainConstraint("tau", "A", gedlib.Int(0), gedlib.Int(1))
	for i := 0; i < b.N; i++ {
		if gdc.CheckSat(dom).Satisfiable != gdc.True {
			b.Fatal("domain must be satisfiable")
		}
	}
}

func BenchmarkSatGEDorDomain(b *testing.B) {
	psi := gedor.DomainConstraint("tau", "A", gedlib.Int(0), gedlib.Int(1))
	psi2 := gedor.DomainConstraint("tau", "B", gedlib.Int(3), gedlib.Int(4), gedlib.Int(5))
	sigma := gedor.Set{psi, psi2}
	for i := 0; i < b.N; i++ {
		if gedor.CheckSat(sigma).Satisfiable != gedor.True {
			b.Fatal("domains must be satisfiable")
		}
	}
}

// ---- Table 1: implication ----

func BenchmarkImplGFDx3Col(b *testing.B) {
	for _, in := range hardnessSeries() {
		sigma, phi := workload.ImplGFDxFamily(in.h)
		b.Run(in.name, func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				benchEng.Implies(benchCtx, sigma, phi)
			}
		})
	}
}

func BenchmarkImplGKey3Col(b *testing.B) {
	for _, in := range hardnessSeries() {
		sigma, phi := workload.ImplGKeyFamily(in.h)
		b.Run(in.name, func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				benchEng.Implies(benchCtx, sigma, phi)
			}
		})
	}
}

func BenchmarkImplGEDKeyWeakening(b *testing.B) {
	q := gedlib.NewPattern()
	q.AddVar("x", "album")
	k1, _ := gedlib.NewKey("k1", q, "x", func(x, fx gedlib.Var) []gedlib.Literal {
		return []gedlib.Literal{gedlib.VarLit(x, "title", fx, "title")}
	})
	k2, _ := gedlib.NewKey("k2", q, "x", func(x, fx gedlib.Var) []gedlib.Literal {
		return []gedlib.Literal{gedlib.VarLit(x, "title", fx, "title"), gedlib.VarLit(x, "release", fx, "release")}
	})
	sigma := gedlib.RuleSet{k1}
	for i := 0; i < b.N; i++ {
		r, err := benchEng.Implies(benchCtx, sigma, k2)
		if err != nil || !r.Implied {
			b.Fatal("weakening must be implied")
		}
	}
}

func BenchmarkImplGDCOrder(b *testing.B) {
	q := gedlib.NewPattern()
	q.AddVar("x", "p")
	lt5 := gdc.Set{gdc.New("lt5", q, nil, []gedlib.Literal{gedlib.Cmp("x", "a", gedlib.OpLt, gedlib.Int(5))})}
	q2 := gedlib.NewPattern()
	q2.AddVar("x", "p")
	lt10 := gdc.New("lt10", q2, nil, []gedlib.Literal{gedlib.Cmp("x", "a", gedlib.OpLt, gedlib.Int(10))})
	for i := 0; i < b.N; i++ {
		gdc.Implies(lt5, lt10)
	}
}

func BenchmarkImplGEDorCaseSplit(b *testing.B) {
	q := func() *gedlib.Pattern {
		p := gedlib.NewPattern()
		p.AddVar("x", "tau")
		return p
	}
	dom := gedor.DomainConstraint("tau", "A", gedlib.Int(0), gedlib.Int(1))
	c0 := gedor.New("c0", q(), []gedlib.Literal{gedlib.ConstLit("x", "A", gedlib.Int(0))},
		[]gedlib.Literal{gedlib.ConstLit("x", "B", gedlib.Int(5))})
	c1 := gedor.New("c1", q(), []gedlib.Literal{gedlib.ConstLit("x", "A", gedlib.Int(1))},
		[]gedlib.Literal{gedlib.ConstLit("x", "B", gedlib.Int(5))})
	phi := gedor.New("phi", q(), nil, []gedlib.Literal{gedlib.ConstLit("x", "B", gedlib.Int(5))})
	sigma := gedor.Set{dom, c0, c1}
	for i := 0; i < b.N; i++ {
		if gedor.Implies(sigma, phi).Implied != gedor.True {
			b.Fatal("case split must be implied")
		}
	}
}

// ---- Table 1: validation ----

func BenchmarkValidGFDx3Col(b *testing.B) {
	for _, in := range hardnessSeries() {
		g, sigma := workload.ValidGFDxFamily(in.h)
		b.Run(in.name, func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				gedlib.Satisfies(g, sigma)
			}
		})
	}
}

func BenchmarkValidGKey3Col(b *testing.B) {
	for _, in := range hardnessSeries() {
		g, sigma := workload.ValidGKeyFamily(in.h)
		b.Run(in.name, func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				gedlib.Satisfies(g, sigma)
			}
		})
	}
}

func BenchmarkValidGFDKnowledgeBase(b *testing.B) {
	sigma := gedlib.RuleSet{workload.PaperPhi1(), workload.PaperPhi2(), workload.PaperPhi3(), workload.PaperPhi4()}
	for _, n := range []int{50, 100, 200} {
		g, _ := workload.KnowledgeBase(5, n, 0.1)
		b.Run(fmt.Sprintf("scale%d", n), func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				benchEng.Validate(benchCtx, g, sigma)
			}
		})
	}
}

func BenchmarkValidGEDMusicKeys(b *testing.B) {
	for _, n := range []int{20, 40, 80} {
		g, _ := workload.MusicDB(5, n, 0.2)
		b.Run(fmt.Sprintf("artists%d", n), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				benchEng.Validate(benchCtx, g, workload.PaperKeys())
			}
		})
	}
}

func BenchmarkValidSpamRule(b *testing.B) {
	g, _ := workload.SocialNetwork(5, 10, 8)
	sigma := gedlib.RuleSet{workload.PaperPhi5(2)}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		benchEng.Validate(benchCtx, g, sigma)
	}
}

func BenchmarkValidGDCDenial(b *testing.B) {
	q := gedlib.NewPattern()
	q.AddVar("e", "emp").AddVar("m", "emp")
	q.AddEdge("e", "reports_to", "m")
	dc := gdc.New("salary", q,
		[]gedlib.Literal{gedlib.CmpVars("e", "salary", gedlib.OpGt, "m", "salary")}, gedlib.False("e"))
	g := gedlib.NewGraph()
	var prev gedlib.NodeID = -1
	for i := 0; i < 200; i++ {
		n := g.AddNodeAttrs("emp", map[gedlib.Attr]gedlib.Value{"salary": gedlib.Int(100 - i%7)})
		if prev >= 0 {
			g.AddEdge(n, "reports_to", prev)
		}
		prev = n
	}
	for i := 0; i < b.N; i++ {
		gdc.Validate(g, gdc.Set{dc}, 0)
	}
}

func BenchmarkValidGEDorDomain(b *testing.B) {
	psi := gedor.DomainConstraint("account", "flag", gedlib.Int(0), gedlib.Int(1))
	g := gedlib.NewGraph()
	for i := 0; i < 500; i++ {
		g.AddNodeAttrs("account", map[gedlib.Attr]gedlib.Value{"flag": gedlib.Int(i % 3)})
	}
	for i := 0; i < b.N; i++ {
		gedor.Validate(g, gedor.Set{psi}, 0)
	}
}

// ---- Section 5.3: bounded patterns are tractable ----

func BenchmarkBoundedPatternValidation(b *testing.B) {
	sigma := gedlib.RuleSet{workload.PaperPhi1(), workload.PaperPhi2(), workload.PaperPhi3(), workload.PaperPhi4()}
	for _, n := range []int{100, 200, 400, 800} {
		g, _ := workload.KnowledgeBase(9, n, 0.05)
		b.Run(fmt.Sprintf("graph%d", g.Size()), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				benchEng.Validate(benchCtx, g, sigma)
			}
		})
	}
}

// ---- Substrates ----

func BenchmarkMatcherTriangleIntoK3(b *testing.B) {
	host := workload.RandomPropertyGraph(3, 1000, 4, []gedlib.Label{"a", "b", "c"}, []gedlib.Attr{"p"}, 4)
	q := gedlib.NewPattern()
	q.AddVar("x", "a").AddVar("y", "b").AddVar("z", "c")
	q.AddEdge("x", "e", "y")
	q.AddEdge("y", "e", "z")
	q.AddEdge("z", "e", "x")
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		gedlib.CountMatches(q, host)
	}
}

func BenchmarkChaseEntityResolution(b *testing.B) {
	for _, n := range []int{20, 40} {
		g, _ := workload.MusicDB(5, n, 0.4)
		b.Run(fmt.Sprintf("artists%d", n), func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				benchEng.Chase(benchCtx, g.Clone(), workload.PaperKeys())
			}
		})
	}
}

func BenchmarkAxiomProve(b *testing.B) {
	q := gedlib.NewPattern()
	q.AddVar("x", "p")
	ab := gedlib.NewRule("ab", q, []gedlib.Literal{gedlib.ConstLit("x", "a", gedlib.Int(1))},
		[]gedlib.Literal{gedlib.ConstLit("x", "b", gedlib.Int(2))})
	bc := gedlib.NewRule("bc", q, []gedlib.Literal{gedlib.ConstLit("x", "b", gedlib.Int(2))},
		[]gedlib.Literal{gedlib.ConstLit("x", "c", gedlib.Int(3))})
	ac := gedlib.NewRule("ac", q, []gedlib.Literal{gedlib.ConstLit("x", "a", gedlib.Int(1))},
		[]gedlib.Literal{gedlib.ConstLit("x", "c", gedlib.Int(3))})
	sigma := gedlib.RuleSet{ab, bc}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		p, err := benchEng.Prove(benchCtx, sigma, ac)
		if err != nil {
			b.Fatal(err)
		}
		if err := benchEng.CheckProof(benchCtx, sigma, p); err != nil {
			b.Fatal(err)
		}
	}
}

// ---- Applications: parallel validation, query rewriting, repair ----

func BenchmarkValidateParallel(b *testing.B) {
	sigma := gedlib.RuleSet{workload.PaperPhi1(), workload.PaperPhi2(), workload.PaperPhi3(), workload.PaperPhi4()}
	g, _ := workload.KnowledgeBase(5, 400, 0.1)
	for _, workers := range []int{1, 2, 4, 8} {
		eng := gedlib.New(gedlib.WithWorkers(workers))
		b.Run(fmt.Sprintf("workers%d", workers), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				eng.Validate(benchCtx, g, sigma)
			}
		})
	}
}

func BenchmarkQueryRewriteSpeedup(b *testing.B) {
	keys := workload.PaperKeys()
	raw, _ := workload.MusicDB(21, 200, 0.3)
	res, err := benchEng.Chase(benchCtx, raw, keys)
	if err != nil || !res.Consistent() {
		b.Fatal("resolution failed")
	}
	data := res.Materialize()
	q := gedlib.NewPattern()
	q.AddVar("u", "album").AddVar("v", "album")
	query := &gedlib.Query{Pattern: q, X: []gedlib.Literal{
		gedlib.VarLit("u", "title", "v", "title"),
		gedlib.VarLit("u", "release", "v", "release"),
	}}
	rewritten, err := benchEng.OptimizeQuery(benchCtx, query, keys)
	if err != nil {
		b.Fatal(err)
	}
	b.Run("original", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			gedlib.Answers(query, data)
		}
	})
	b.Run("rewritten", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			gedlib.Answers(rewritten.Query, data)
		}
	})
}

func BenchmarkRepairMusicCatalog(b *testing.B) {
	g, _ := workload.MusicDB(3, 30, 0.4)
	keys := workload.PaperKeys()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		r, err := benchEng.Repair(benchCtx, g, keys)
		if err != nil || !r.Repaired {
			b.Fatal("repair failed")
		}
	}
}

// BenchmarkValidatorIndexed compares plain validation against the
// prepared, attribute-indexed validator on the spam workload: the
// antecedent x'.is_fake = 1 of φ₅ is highly selective, so the index
// pivot starts the six-variable match from the handful of confirmed
// fakes instead of every account.
func BenchmarkValidatorIndexed(b *testing.B) {
	sigma := gedlib.RuleSet{workload.PaperPhi5(2)}
	g, _ := workload.SocialNetwork(5, 30, 10)
	b.Run("plain", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			benchEng.Validate(benchCtx, g, sigma)
		}
	})
	b.Run("prepared", func(b *testing.B) {
		v := gedlib.NewValidator(g, sigma)
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			v.Run(0)
		}
	})
}
