package gedlib_test

// Cancellation contract of the facade: every Engine method takes a
// context and aborts early when it is cancelled. The tests below prove
// the "early" part with a workload whose full enumeration is orders of
// magnitude beyond the deadline, and the plumbing with pre-cancelled
// contexts across the other entry points.

import (
	"context"
	"errors"
	"testing"
	"time"

	"gedlib"
)

// explosiveInstance builds a validation workload with a combinatorially
// huge match space: a complete digraph on n nodes and a 4-cycle
// pattern, giving ~n^4 candidate tuples. The rule's consequent holds
// everywhere, so an uncancelled run would enumerate all of them.
func explosiveInstance(n int) (*gedlib.Graph, gedlib.RuleSet) {
	g := gedlib.NewGraph()
	ids := make([]gedlib.NodeID, n)
	for i := range ids {
		ids[i] = g.AddNodeAttrs("a", map[gedlib.Attr]gedlib.Value{"p": gedlib.Int(1)})
	}
	for _, u := range ids {
		for _, v := range ids {
			if u != v {
				g.AddEdge(u, "e", v)
			}
		}
	}
	q := gedlib.NewPattern()
	q.AddVar("w", "a").AddVar("x", "a").AddVar("y", "a").AddVar("z", "a")
	q.AddEdge("w", "e", "x")
	q.AddEdge("x", "e", "y")
	q.AddEdge("y", "e", "z")
	q.AddEdge("z", "e", "w")
	rule := gedlib.NewRule("slow", q, nil, []gedlib.Literal{gedlib.ConstLit("w", "p", gedlib.Int(1))})
	return g, gedlib.RuleSet{rule}
}

// TestValidateCancelStopsEarly is the headline cancellation proof: the
// instance has ~100^4 candidate matches (hours of enumeration), and a
// 30ms deadline aborts the run within a comfortable margin.
func TestValidateCancelStopsEarly(t *testing.T) {
	g, sigma := explosiveInstance(100)
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Millisecond)
	defer cancel()

	start := time.Now()
	_, err := gedlib.New().Validate(ctx, g, sigma)
	elapsed := time.Since(start)

	if !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("expected DeadlineExceeded, got %v", err)
	}
	if !gedlib.IsCancellation(err) {
		t.Fatalf("IsCancellation must recognize %v", err)
	}
	if elapsed > 5*time.Second {
		t.Fatalf("validation kept running %v after a 30ms deadline", elapsed)
	}
}

// TestValidateCancelInsideMatchlessSearch aborts a search that never
// completes a single match: the pattern's closing edge label does not
// occur in the graph, so the yield callback (where the per-match ctx
// check lives) never fires and only the matcher's internal abort hook
// can stop the ~150^3 × 149 partial-binding exploration.
func TestValidateCancelInsideMatchlessSearch(t *testing.T) {
	n := 150
	g := gedlib.NewGraph()
	ids := make([]gedlib.NodeID, n)
	for i := range ids {
		ids[i] = g.AddNode("a")
	}
	for _, u := range ids {
		for _, v := range ids {
			if u != v {
				g.AddEdge(u, "e", v)
			}
		}
	}
	q := gedlib.NewPattern()
	q.AddVar("w", "a").AddVar("x", "a").AddVar("y", "a").AddVar("z", "a")
	q.AddEdge("w", "e", "x")
	q.AddEdge("x", "e", "y")
	q.AddEdge("y", "e", "z")
	q.AddEdge("z", "missing_label", "w") // never matches: no such edge
	sigma := gedlib.RuleSet{gedlib.NewRule("matchless", q, nil, gedlib.False("w"))}

	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Millisecond)
	defer cancel()
	start := time.Now()
	vs, err := gedlib.New().Validate(ctx, g, sigma)
	elapsed := time.Since(start)

	if !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("expected DeadlineExceeded, got %v (found %d violations)", err, len(vs))
	}
	if elapsed > 5*time.Second {
		t.Fatalf("match-free search kept running %v after a 30ms deadline", elapsed)
	}
}

// TestValidateParallelCancelStopsEarly proves the same for the
// data-parallel validator: every worker honors the context.
func TestValidateParallelCancelStopsEarly(t *testing.T) {
	g, sigma := explosiveInstance(100)
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Millisecond)
	defer cancel()

	start := time.Now()
	_, err := gedlib.New(gedlib.WithWorkers(4)).Validate(ctx, g, sigma)
	elapsed := time.Since(start)

	if !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("expected DeadlineExceeded, got %v", err)
	}
	if elapsed > 5*time.Second {
		t.Fatalf("parallel validation kept running %v after a 30ms deadline", elapsed)
	}
}

// TestCancelledContextAbortsEveryEntryPoint checks the plumbing: an
// already-cancelled context makes each analysis return promptly with
// context.Canceled instead of computing.
func TestCancelledContextAbortsEveryEntryPoint(t *testing.T) {
	eng := gedlib.New()
	ctx, cancel := context.WithCancel(context.Background())
	cancel()

	sigma, err := gedlib.ParseRules(albumKeySrc)
	if err != nil {
		t.Fatal(err)
	}
	g := gedlib.NewGraph()
	for i := 0; i < 2; i++ {
		g.AddNodeAttrs("album", map[gedlib.Attr]gedlib.Value{
			"title": gedlib.String("Bleach"), "release": gedlib.Int(1989)})
	}

	if _, err := eng.Validate(ctx, g, sigma); !errors.Is(err, context.Canceled) {
		t.Errorf("Validate: expected Canceled, got %v", err)
	}
	if _, err := eng.ValidateIncremental(ctx, g, sigma, g.Nodes()); !errors.Is(err, context.Canceled) {
		t.Errorf("ValidateIncremental: expected Canceled, got %v", err)
	}
	if _, err := eng.Repair(ctx, g, sigma); !errors.Is(err, context.Canceled) {
		t.Errorf("Repair: expected Canceled, got %v", err)
	}
	if _, err := eng.Chase(ctx, g, sigma); !errors.Is(err, context.Canceled) {
		t.Errorf("Chase: expected Canceled, got %v", err)
	}
	if _, err := eng.CheckSat(ctx, sigma); !errors.Is(err, context.Canceled) {
		t.Errorf("CheckSat: expected Canceled, got %v", err)
	}
	if _, err := eng.Implies(ctx, sigma, sigma[0]); !errors.Is(err, context.Canceled) {
		t.Errorf("Implies: expected Canceled, got %v", err)
	}
	if _, err := eng.Prove(ctx, sigma, sigma[0]); !errors.Is(err, context.Canceled) {
		t.Errorf("Prove: expected Canceled, got %v", err)
	}
	if err := eng.CheckProof(ctx, sigma, nil); !errors.Is(err, context.Canceled) {
		t.Errorf("CheckProof: expected Canceled, got %v", err)
	}
	if _, err := eng.Discover(ctx, g, gedlib.DiscoverOptions{}); !errors.Is(err, context.Canceled) {
		t.Errorf("Discover: expected Canceled, got %v", err)
	}
	q := &gedlib.Query{Pattern: sigma[0].Pattern}
	if _, err := eng.OptimizeQuery(ctx, q, sigma); !errors.Is(err, context.Canceled) {
		t.Errorf("OptimizeQuery: expected Canceled, got %v", err)
	}
	if _, err := eng.Satisfies(ctx, g, sigma); !errors.Is(err, context.Canceled) {
		t.Errorf("Satisfies: expected Canceled, got %v", err)
	}
}

// TestChaseDepthBound: with WithChaseDepth(1) any chase that applies a
// step needs a second round to confirm the fixpoint, so the duplicate
// albums cannot be resolved within the bound.
func TestChaseDepthBound(t *testing.T) {
	sigma, err := gedlib.ParseRules(albumKeySrc)
	if err != nil {
		t.Fatal(err)
	}
	g := gedlib.NewGraph()
	for i := 0; i < 2; i++ {
		g.AddNodeAttrs("album", map[gedlib.Attr]gedlib.Value{
			"title": gedlib.String("Bleach"), "release": gedlib.Int(1989)})
	}

	bounded := gedlib.New(gedlib.WithChaseDepth(1))
	if _, err := bounded.Chase(context.Background(), g, sigma); !errors.Is(err, gedlib.ErrChaseDepthExceeded) {
		t.Fatalf("expected ErrChaseDepthExceeded, got %v", err)
	}
	if _, err := bounded.Repair(context.Background(), g, sigma); !errors.Is(err, gedlib.ErrChaseDepthExceeded) {
		t.Fatalf("Repair: expected ErrChaseDepthExceeded, got %v", err)
	}

	// A generous bound converges.
	roomy := gedlib.New(gedlib.WithChaseDepth(16))
	r, err := roomy.Repair(context.Background(), g, sigma)
	if err != nil {
		t.Fatal(err)
	}
	if !r.Repaired || r.Graph.NumNodes() != 1 {
		t.Fatalf("bounded-but-sufficient repair failed: %+v", r)
	}
}

// TestValidateCancelReturnsPartial: the sequential validator hands back
// what it found before the abort.
func TestValidateCancelReturnsPartial(t *testing.T) {
	g, sigma := explosiveInstance(40)
	// Make every match a violation so partial results accumulate.
	sigma[0].Y = []gedlib.Literal{gedlib.ConstLit("w", "missing", gedlib.Int(1))}

	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Millisecond)
	defer cancel()
	vs, err := gedlib.New().Validate(ctx, g, sigma)
	if !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("expected DeadlineExceeded, got %v", err)
	}
	if len(vs) == 0 {
		t.Fatal("expected partial violations before the abort")
	}
}
