// Command gedbench regenerates the paper's evaluation artifacts:
//
//	gedbench -experiment table1            # Table 1 decision matrix
//	gedbench -experiment table1 -full      # include the slowest instances
//	gedbench -experiment scaling           # Section 5.3 tractable case + O(1) row
//	gedbench -experiment validate          # snapshot vs map storage comparison
//	gedbench -experiment match             # probe vs worst-case-optimal enumeration
//	gedbench -experiment incremental       # Engine.Apply vs full re-validation
//	gedbench -experiment chase             # delta-maintained vs refreeze chase
//	gedbench -experiment serve             # serving-subsystem load (64 clients, 90/10)
//	gedbench -experiment durability        # WAL recovery scaling, follower staleness, fsync cost
//	gedbench -experiment shard             # sharded vs monolithic validation scaling
//	gedbench -experiment chaos             # fault-injection soak: degraded mode + crash recovery
//	gedbench -experiment failover          # leader kill-9 / live-depose soak: promotion RTO, epoch fencing
//	gedbench -experiment obs               # observer on-vs-off serving overhead (<= 5% gate)
//	gedbench -experiment all
//
// Unknown -experiment values are rejected up front with the list of
// known experiments.
//
// With -json, each experiment additionally writes a machine-readable
// BENCH_<experiment>.json file to the current directory, feeding the
// repository's performance trajectory. -quick shrinks the incremental
// and chase series to one iteration on a small instance, which is what
// the CI smoke job runs.
//
// See EXPERIMENTS.md for how each experiment maps to the paper.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"slices"
	"strings"

	"gedlib/bench"
)

var emitJSON bool

// runOpts carries the shared experiment flags.
type runOpts struct {
	full, quick bool
}

// registry names every known experiment, in `all` execution order, and
// binds each name to its runner. The `all` list, the usage text and the
// up-front validation all derive from it, so adding an experiment is a
// one-line change (a unit test keeps the package doc comment honest).
var registry = []struct {
	name string
	run  func(runOpts)
}{
	{"table1", func(o runOpts) { table1(o.full) }},
	{"scaling", func(o runOpts) { scaling() }},
	{"validate", func(o runOpts) { validate() }},
	{"match", func(o runOpts) { matchExperiment(o.quick) }},
	{"incremental", func(o runOpts) { incremental(o.quick) }},
	{"chase", func(o runOpts) { chaseExperiment(o.quick) }},
	{"serve", func(o runOpts) { serveExperiment(o.quick) }},
	{"durability", func(o runOpts) { durabilityExperiment(o.quick) }},
	{"shard", func(o runOpts) { shardExperiment(o.quick) }},
	{"chaos", func(o runOpts) { chaosExperiment(o.quick) }},
	{"failover", func(o runOpts) { failoverExperiment(o.quick) }},
	{"obs", func(o runOpts) { obsExperiment(o.quick) }},
}

// experimentNames returns the registry's names in `all` order.
func experimentNames() []string {
	names := make([]string, len(registry))
	for i, e := range registry {
		names[i] = e.name
	}
	return names
}

func main() {
	experiments := experimentNames()
	experiment := flag.String("experiment", "table1",
		"experiment to run: "+strings.Join(experiments, " | ")+" | all")
	full := flag.Bool("full", false, "include the slowest instances (Grötzsch graph)")
	quick := flag.Bool("quick", false, "one iteration on small instances (CI smoke)")
	flag.BoolVar(&emitJSON, "json", false, "also write BENCH_<experiment>.json files")
	flag.Usage = func() {
		fmt.Fprintf(flag.CommandLine.Output(),
			"usage: gedbench [flags]\n\nknown experiments: %s, all\n\nflags:\n",
			strings.Join(experiments, ", "))
		flag.PrintDefaults()
	}
	flag.Parse()

	// Validate up front so a typo fails loudly before any experiment
	// burns minutes of work.
	if *experiment != "all" && !slices.Contains(experiments, *experiment) {
		fmt.Fprintf(os.Stderr, "gedbench: unknown experiment %q (known: %s, all)\n",
			*experiment, strings.Join(experiments, ", "))
		flag.Usage()
		os.Exit(2)
	}

	opts := runOpts{full: *full, quick: *quick}
	first := true
	for _, e := range registry {
		if *experiment != "all" && e.name != *experiment {
			continue
		}
		if !first {
			fmt.Println()
		}
		first = false
		e.run(opts)
	}
}

// writeJSON persists one experiment's results as BENCH_<name>.json.
func writeJSON(name string, v any) {
	if !emitJSON {
		return
	}
	path := "BENCH_" + name + ".json"
	data, err := json.MarshalIndent(v, "", "  ")
	if err != nil {
		fmt.Fprintln(os.Stderr, "gedbench: marshal", path+":", err)
		os.Exit(1)
	}
	data = append(data, '\n')
	if err := os.WriteFile(path, data, 0o644); err != nil {
		fmt.Fprintln(os.Stderr, "gedbench:", err)
		os.Exit(1)
	}
	fmt.Println("wrote", path)
}

func table1(full bool) {
	fmt.Println("Table 1 reproduction — decision procedures vs ground truth")
	fmt.Println("(expected column: brute-force 3-coloring / planted workload truth)")
	fmt.Println()
	rep := bench.Table1(!full)
	rep.Write(os.Stdout)
	ok, total := rep.Correct()
	writeJSON("table1", struct {
		Rows    []bench.Row `json:"rows"`
		Correct int         `json:"correct"`
		Total   int         `json:"total"`
	}{rep.Rows, ok, total})
	if ok != total {
		os.Exit(1)
	}
}

func scaling() {
	fmt.Println("Section 5.3: validation with bounded-size patterns is PTIME")
	pts := bench.BoundedPatternValidation([]int{100, 200, 400, 800})
	bench.WriteScaling(os.Stdout, "bounded-pattern validation (time ~ linear in |G|):", pts)
	fmt.Println()
	fmt.Println("Theorem 3: GFDx satisfiability is O(1)")
	cpts := bench.GFDxSatConstant([]int{4, 8, 16, 32, 64})
	bench.WriteScaling(os.Stdout, "GFDx satisfiability (time flat as |Σ| grows):", cpts)
	writeJSON("scaling", struct {
		BoundedPatternValidation []bench.ScalingPoint `json:"bounded_pattern_validation"`
		GFDxSatConstant          []bench.ScalingPoint `json:"gfdx_sat_constant"`
	}{pts, cpts})
}

func incremental(quick bool) {
	fmt.Println("Incremental validation: Engine.Apply (delta snapshot + violation store)")
	fmt.Println("vs full cached-snapshot Validate, per localized 10-node update")
	fmt.Println()
	scales, iters := []int{500, 1000, 2000}, 15
	if quick {
		scales, iters = []int{200}, 1
	}
	pts := bench.IncrementalValidation(scales, 10, iters)
	bench.WriteIncremental(os.Stdout, pts)
	writeJSON("incremental", struct {
		Points []bench.IncrementalPoint `json:"points"`
	}{pts})
}

func chaseExperiment(quick bool) {
	fmt.Println("Chase hosting: per-round coercion rebuild + freeze vs delta-maintained")
	fmt.Println("live coercion (same chase result; maintenance cost only)")
	fmt.Println()
	music, kb := []int{20, 40, 80}, []int{100, 200}
	if quick {
		music, kb = []int{10}, []int{50}
	}
	pts := bench.ChaseComparison(music, kb)
	bench.WriteChase(os.Stdout, pts)
	writeJSON("chase", struct {
		Points []bench.ChasePoint `json:"points"`
	}{pts})
}

func serveExperiment(quick bool) {
	fmt.Println("Serving subsystem: in-process gedserve under concurrent mixed load")
	fmt.Println("(real HTTP handlers, admission control, per-graph write coalescing)")
	fmt.Println()
	opts := bench.DefaultServeOptions()
	if quick {
		opts = bench.QuickServeOptions()
	}
	res := bench.ServeLoad(opts)
	bench.WriteServe(os.Stdout, res)
	writeJSON("serve", res)
	if !quick && res.AvgBatchOps <= 1 {
		fmt.Fprintln(os.Stderr, "gedbench: serve: write coalescing not visible (avg batch <= 1 op)")
		os.Exit(1)
	}
}

func durabilityExperiment(quick bool) {
	fmt.Println("Durability: recovery time vs WAL length (checkpoint + tail replay),")
	fmt.Println("follower staleness over a live log, and the serving-throughput cost")
	fmt.Println("of group-commit fsync")
	fmt.Println()
	opts := bench.DefaultDurabilityOptions()
	if quick {
		opts = bench.QuickDurabilityOptions()
	}
	res := bench.Durability(opts)
	bench.WriteDurability(os.Stdout, res)
	writeJSON("durability", res)
	if !quick {
		// Recovery must scale with |Δ since checkpoint|, not |history|:
		// a fresh checkpoint has to beat replaying the whole log by a
		// wide margin, and the WAL must not halve serving throughput.
		if res.ReplaySpeedup < 2 {
			fmt.Fprintf(os.Stderr, "gedbench: durability: fresh-checkpoint recovery only %.2fx faster than full-log replay\n", res.ReplaySpeedup)
			os.Exit(1)
		}
		if res.ThroughputRatio < 0.6 {
			fmt.Fprintf(os.Stderr, "gedbench: durability: durable throughput ratio %.2f below 0.6\n", res.ThroughputRatio)
			os.Exit(1)
		}
	}
}

func matchExperiment(quick bool) {
	fmt.Println("Match enumeration: scan-and-probe baseline vs worst-case-optimal")
	fmt.Println("sorted-run intersection + constant-literal pushdown (same match sets)")
	fmt.Println()
	pts := bench.MatchEnumeration(quick)
	bench.WriteMatch(os.Stdout, pts)
	dense := bench.MatchScenarioSpeedup(pts, "dense")
	selective := bench.MatchScenarioSpeedup(pts, "selective")
	writeJSON("match", struct {
		Points           []bench.MatchPoint `json:"points"`
		DenseSpeedup     float64            `json:"dense_speedup_median"`
		SelectiveSpeedup float64            `json:"selective_speedup_median"`
	}{pts, dense, selective})
	if !quick {
		if dense < 2 {
			fmt.Fprintf(os.Stderr, "gedbench: match: dense-scenario speedup %.2fx below 2x\n", dense)
			os.Exit(1)
		}
		if selective < 3 {
			fmt.Fprintf(os.Stderr, "gedbench: match: selective-scenario speedup %.2fx below 3x\n", selective)
			os.Exit(1)
		}
	}
}

func shardExperiment(quick bool) {
	fmt.Println("Sharded validation: partitioned snapshots + boundary-aware parallel")
	fmt.Println("frame search vs the monolithic engine (identical violation sets;")
	fmt.Println("the experiment measures a different schedule for the same answer)")
	fmt.Println()
	opts := bench.DefaultShardOptions()
	if quick {
		opts = bench.QuickShardOptions()
	}
	res := bench.ShardScaling(opts)
	bench.WriteShard(os.Stdout, res)
	writeJSON("shard", res)
	if !quick {
		// On partition-friendly rules with the greedy partitioner, every
		// point within the machine's core budget must reach 0.6·P.
		// Points past NumCPU measure scheduling overhead, not
		// parallelism, and are reported but not gated.
		for _, p := range res.Points {
			if p.RuleSet != "partition-friendly" || p.Partitioner != "greedy" {
				continue
			}
			if p.Shards < 2 || p.Shards > res.NumCPU {
				continue
			}
			if p.Efficiency < 0.6 {
				fmt.Fprintf(os.Stderr,
					"gedbench: shard: parallel efficiency %.2f at P=%d below 0.6\n",
					p.Efficiency, p.Shards)
				os.Exit(1)
			}
		}
	}
}

func chaosExperiment(quick bool) {
	fmt.Println("Chaos soak: concurrent serving on a fault-injecting filesystem")
	fmt.Println("(ENOSPC/EIO/torn-write windows; asserts acked writes survive crash")
	fmt.Println("recovery, degraded graphs heal, violation set matches a fresh engine)")
	fmt.Println()
	opts := bench.DefaultChaosOptions()
	if quick {
		opts = bench.QuickChaosOptions()
	}
	res := bench.ChaosSoak(opts)
	bench.WriteChaos(os.Stdout, res)
	writeJSON("chaos", res)
	if len(res.Failures) > 0 {
		fmt.Fprintf(os.Stderr, "gedbench: chaos: %d invariant failures\n", len(res.Failures))
		os.Exit(1)
	}
}

func failoverExperiment(quick bool) {
	fmt.Println("Failover soak: kill -9 and live-depose leader successions under")
	fmt.Println("concurrent writers (asserts zero acked-write loss across promotions,")
	fmt.Println("epoch-fenced deposed leaders — no split-brain — oracle-identical")
	fmt.Println("recovery, and fenced stale-epoch reboots; reports the RTO distribution)")
	fmt.Println()
	opts := bench.DefaultFailoverOptions()
	if quick {
		opts = bench.QuickFailoverOptions()
	}
	res := bench.FailoverSoak(opts)
	bench.WriteFailover(os.Stdout, res)
	writeJSON("failover", res)
	if len(res.Failures) > 0 {
		fmt.Fprintf(os.Stderr, "gedbench: failover: %d invariant failures\n", len(res.Failures))
		os.Exit(1)
	}
	if !quick && res.StaleAttempts > 0 && res.FencedRejections != res.StaleAttempts {
		fmt.Fprintf(os.Stderr, "gedbench: failover: only %d/%d stale-leader writes fenced\n",
			res.FencedRejections, res.StaleAttempts)
		os.Exit(1)
	}
}

func obsExperiment(quick bool) {
	fmt.Println("Observability overhead: the serving load with the pipeline observer")
	fmt.Println("on vs off (same catalog, same request streams; the delta is exactly")
	fmt.Println("the added stage histograms, engine/persist metrics and span ring)")
	fmt.Println()
	opts := bench.DefaultObsOptions()
	if quick {
		opts = bench.QuickObsOptions()
	}
	res := bench.ObsOverhead(opts)
	bench.WriteObs(os.Stdout, res)
	writeJSON("obs", res)
	if !quick && res.Overhead > 0.05 {
		fmt.Fprintf(os.Stderr, "gedbench: obs: observer overhead %.1f%% above the 5%% budget\n", 100*res.Overhead)
		os.Exit(1)
	}
}

func validate() {
	fmt.Println("Storage model: map-backed graph vs frozen CSR snapshot")
	fmt.Println("(same matcher, same rules, identical violation sets; cached = Engine steady state)")
	fmt.Println()
	pts := bench.CompareValidation([]int{200, 400, 800, 1600})
	bench.WriteComparison(os.Stdout, pts)
	writeJSON("validate", struct {
		Points []bench.ComparisonPoint `json:"points"`
	}{pts})
}
