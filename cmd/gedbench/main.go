// Command gedbench regenerates the paper's evaluation artifacts:
//
//	gedbench -experiment table1            # Table 1 decision matrix
//	gedbench -experiment table1 -full      # include the slowest instances
//	gedbench -experiment scaling           # Section 5.3 tractable case + O(1) row
//	gedbench -experiment all
//
// See EXPERIMENTS.md for how each experiment maps to the paper.
package main

import (
	"flag"
	"fmt"
	"os"

	"gedlib/bench"
)

func main() {
	experiment := flag.String("experiment", "table1", "table1 | scaling | all")
	full := flag.Bool("full", false, "include the slowest instances (Grötzsch graph)")
	flag.Parse()

	switch *experiment {
	case "table1":
		table1(*full)
	case "scaling":
		scaling()
	case "all":
		table1(*full)
		fmt.Println()
		scaling()
	default:
		fmt.Fprintln(os.Stderr, "gedbench: unknown experiment", *experiment)
		os.Exit(2)
	}
}

func table1(full bool) {
	fmt.Println("Table 1 reproduction — decision procedures vs ground truth")
	fmt.Println("(expected column: brute-force 3-coloring / planted workload truth)")
	fmt.Println()
	rep := bench.Table1(!full)
	rep.Write(os.Stdout)
	if ok, total := rep.Correct(); ok != total {
		os.Exit(1)
	}
}

func scaling() {
	fmt.Println("Section 5.3: validation with bounded-size patterns is PTIME")
	pts := bench.BoundedPatternValidation([]int{100, 200, 400, 800})
	bench.WriteScaling(os.Stdout, "bounded-pattern validation (time ~ linear in |G|):", pts)
	fmt.Println()
	fmt.Println("Theorem 3: GFDx satisfiability is O(1)")
	cpts := bench.GFDxSatConstant([]int{4, 8, 16, 32, 64})
	bench.WriteScaling(os.Stdout, "GFDx satisfiability (time flat as |Σ| grows):", cpts)
}
