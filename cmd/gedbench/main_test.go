package main

import (
	"fmt"
	"os"
	"slices"
	"strings"
	"testing"
)

// TestRegistryNamesUnique: duplicate names would make one experiment
// shadow another in the -experiment lookup.
func TestRegistryNamesUnique(t *testing.T) {
	names := experimentNames()
	seen := map[string]bool{}
	for _, n := range names {
		if seen[n] {
			t.Fatalf("duplicate experiment name %q", n)
		}
		seen[n] = true
		if n == "all" {
			t.Fatal("'all' is a reserved selector, not a registry entry")
		}
	}
}

// TestAllListMatchesUsage cross-checks the three places an experiment
// name must appear: the registry (which drives `all` and the usage
// line), and the package doc comment's invocation examples. The doc
// comment is prose, so nothing but this test keeps it in sync.
func TestAllListMatchesUsage(t *testing.T) {
	src, err := os.ReadFile("main.go")
	if err != nil {
		t.Fatal(err)
	}
	doc := string(src)
	for _, n := range experimentNames() {
		want := fmt.Sprintf("gedbench -experiment %s", n)
		if !strings.Contains(doc, want) {
			t.Errorf("experiment %q missing from the package doc comment (%q)", n, want)
		}
	}
	if !strings.Contains(doc, "gedbench -experiment all") {
		t.Error("doc comment lost the 'all' example")
	}
	// The usage string is built from the same list; pin that the
	// expected members are present so a registry edit can't silently
	// drop a documented experiment.
	for _, n := range []string{"table1", "match", "incremental", "serve", "durability", "shard"} {
		if !slices.Contains(experimentNames(), n) {
			t.Errorf("experiment %q missing from registry", n)
		}
	}
}
