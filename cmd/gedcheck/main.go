// Command gedcheck runs the GED analyses from the command line:
//
//	gedcheck validate -graph g.json -rules deps.ged     # find violations
//	gedcheck sat      -rules deps.ged                   # satisfiability + witness
//	gedcheck implies  -rules deps.ged -target name      # Σ\{φ} ⊨ φ?
//	gedcheck prove    -rules deps.ged -target name      # A_GED proof of the implication
//	gedcheck chase    -graph g.json -rules deps.ged     # chase a graph, print the quotient
//	gedcheck discover -graph g.json                     # mine GFDs from a graph
//
// Graphs are JSON (see internal/gedio); rules use the DSL:
//
//	ged phi1 on (x:person)-[create]->(y:product) {
//	  when y.type = "video game"
//	  then x.type = "programmer"
//	}
package main

import (
	"flag"
	"fmt"
	"os"

	"gedlib/internal/axiom"
	"gedlib/internal/chase"
	"gedlib/internal/discover"
	"gedlib/internal/ged"
	"gedlib/internal/gedio"
	"gedlib/internal/graph"
	"gedlib/internal/reason"
)

func main() {
	if len(os.Args) < 2 {
		usage()
	}
	cmd := os.Args[1]
	fs := flag.NewFlagSet(cmd, flag.ExitOnError)
	graphPath := fs.String("graph", "", "JSON graph file")
	rulesPath := fs.String("rules", "", "DSL rules file")
	target := fs.String("target", "", "rule name for implies/prove")
	limit := fs.Int("limit", 20, "maximum violations to report")
	if err := fs.Parse(os.Args[2:]); err != nil {
		fatal(err)
	}

	switch cmd {
	case "validate":
		g := loadGraph(*graphPath)
		sigma := loadGEDs(*rulesPath)
		vs := reason.Validate(g, sigma, *limit)
		if len(vs) == 0 {
			fmt.Println("graph satisfies all rules")
			return
		}
		for _, v := range vs {
			fmt.Printf("violation of %s at %v: fails %s\n", v.GED.Name, v.Match, v.Literal)
		}
		os.Exit(1)
	case "sat":
		sigma := loadGEDs(*rulesPath)
		r := reason.CheckSat(sigma)
		if !r.Satisfiable {
			fmt.Println("unsatisfiable:", r.Chase.Eq.Conflict())
			os.Exit(1)
		}
		fmt.Println("satisfiable; witness model:")
		fmt.Print(r.Model)
	case "implies":
		sigma, phi := splitTarget(loadGEDs(*rulesPath), *target)
		r := reason.Implies(sigma, phi)
		if r.Implied {
			how := "by deduction"
			if r.ByInconsistency {
				how = "vacuously (inconsistent antecedent)"
			}
			fmt.Printf("%s is implied %s\n", phi.Name, how)
			return
		}
		fmt.Printf("%s is NOT implied; missing literal: %s\n", phi.Name, *r.Missing)
		os.Exit(1)
	case "prove":
		sigma, phi := splitTarget(loadGEDs(*rulesPath), *target)
		p, err := axiom.Prove(sigma, phi)
		if err != nil {
			fatal(err)
		}
		if err := axiom.Check(sigma, p); err != nil {
			fatal(fmt.Errorf("generated proof failed checking: %w", err))
		}
		fmt.Printf("A_GED proof of %s (%d steps):\n%s", phi.Name, p.Len(), p)
	case "discover":
		g := loadGraph(*graphPath)
		found := discover.GFDs(g, discover.Options{})
		if len(found) == 0 {
			fmt.Println("no rules discovered")
			return
		}
		var rules []*gedio.Rule
		for _, d := range found {
			rules = append(rules, &gedio.Rule{
				Name:    sanitizeName(d.GED.Name),
				Pattern: d.GED.Pattern,
				X:       d.GED.X,
				Y:       d.GED.Y,
			})
		}
		fmt.Printf("# %d rules discovered\n%s", len(found), gedio.Format(rules))
	case "chase":
		g := loadGraph(*graphPath)
		sigma := loadGEDs(*rulesPath)
		res := chase.Run(g, sigma)
		if !res.Consistent() {
			fmt.Println("chase is invalid (⊥):", res.Eq.Conflict())
			os.Exit(1)
		}
		fmt.Printf("chase applied %d steps; quotient graph:\n", len(res.Steps))
		fmt.Print(res.Coercion.Graph)
		classes := res.Eq.NodeClasses()
		for rep, members := range classes {
			if len(members) > 1 {
				fmt.Printf("merged %v -> class of n%d\n", members, rep)
			}
		}
	default:
		usage()
	}
}

func usage() {
	fmt.Fprintln(os.Stderr, "usage: gedcheck validate|sat|implies|prove|chase|discover [flags]")
	os.Exit(2)
}

// sanitizeName makes a mined rule name a DSL identifier.
func sanitizeName(s string) string {
	out := make([]rune, 0, len(s))
	for _, r := range s {
		switch {
		case r >= 'a' && r <= 'z', r >= 'A' && r <= 'Z', r >= '0' && r <= '9', r == '_':
			out = append(out, r)
		default:
			out = append(out, '_')
		}
	}
	if len(out) == 0 {
		return "rule"
	}
	return string(out)
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "gedcheck:", err)
	os.Exit(1)
}

func loadGraph(path string) *graph.Graph {
	if path == "" {
		fatal(fmt.Errorf("missing -graph"))
	}
	data, err := os.ReadFile(path)
	if err != nil {
		fatal(err)
	}
	g, _, err := gedio.UnmarshalGraph(data)
	if err != nil {
		fatal(err)
	}
	return g
}

func loadGEDs(path string) ged.Set {
	if path == "" {
		fatal(fmt.Errorf("missing -rules"))
	}
	data, err := os.ReadFile(path)
	if err != nil {
		fatal(err)
	}
	rules, err := gedio.Parse(string(data))
	if err != nil {
		fatal(err)
	}
	sigma, err := gedio.GEDs(rules)
	if err != nil {
		fatal(err)
	}
	return sigma
}

// splitTarget extracts the named rule as φ and returns the rest as Σ.
func splitTarget(all ged.Set, name string) (ged.Set, *ged.GED) {
	if name == "" {
		fatal(fmt.Errorf("missing -target"))
	}
	var sigma ged.Set
	var phi *ged.GED
	for _, d := range all {
		if d.Name == name && phi == nil {
			phi = d
			continue
		}
		sigma = append(sigma, d)
	}
	if phi == nil {
		fatal(fmt.Errorf("rule %q not found", name))
	}
	return sigma, phi
}
