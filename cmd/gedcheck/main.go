// Command gedcheck runs the GED analyses from the command line:
//
//	gedcheck validate -graph g.json -rules deps.ged     # find violations
//	gedcheck sat      -rules deps.ged                   # satisfiability + witness
//	gedcheck implies  -rules deps.ged -target name      # Σ\{φ} ⊨ φ?
//	gedcheck prove    -rules deps.ged -target name      # A_GED proof of the implication
//	gedcheck chase    -graph g.json -rules deps.ged     # chase a graph, print the quotient
//	gedcheck discover -graph g.json                     # mine GFDs from a graph
//
// Every analysis honors -deadline (cancel the run after a duration) and
// validate honors -workers (data-parallel validation). Graphs are JSON
// (see gedlib.LoadGraph); rules use the DSL:
//
//	ged phi1 on (x:person)-[create]->(y:product) {
//	  when y.type = "video game"
//	  then x.type = "programmer"
//	}
package main

import (
	"context"
	"flag"
	"fmt"
	"os"

	"gedlib"
)

func main() {
	if len(os.Args) < 2 {
		usage()
	}
	cmd := os.Args[1]
	fs := flag.NewFlagSet(cmd, flag.ExitOnError)
	graphPath := fs.String("graph", "", "JSON graph file")
	rulesPath := fs.String("rules", "", "DSL rules file")
	target := fs.String("target", "", "rule name for implies/prove")
	limit := fs.Int("limit", 20, "maximum violations to report")
	workers := fs.Int("workers", 1, "validation workers (<=0 selects GOMAXPROCS)")
	deadline := fs.Duration("deadline", 0, "abort the analysis after this duration (0 = none)")
	if err := fs.Parse(os.Args[2:]); err != nil {
		fatal(err)
	}

	ctx := context.Background()
	if *deadline > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, *deadline)
		defer cancel()
	}
	eng := gedlib.New(
		gedlib.WithWorkers(*workers),
		gedlib.WithViolationLimit(*limit),
	)

	switch cmd {
	case "validate":
		g := loadGraph(*graphPath)
		sigma := loadRules(*rulesPath)
		vs, err := eng.Validate(ctx, g, sigma)
		if err != nil {
			fatal(err)
		}
		if len(vs) == 0 {
			fmt.Println("graph satisfies all rules")
			return
		}
		for _, v := range vs {
			fmt.Printf("violation of %s at %v: fails %s\n", v.GED.Name, v.Match, v.Literal)
		}
		os.Exit(1)
	case "sat":
		sigma := loadRules(*rulesPath)
		r, err := eng.CheckSat(ctx, sigma)
		if err != nil {
			fatal(err)
		}
		if !r.Satisfiable {
			fmt.Println("unsatisfiable:", r.Chase.Eq.Conflict())
			os.Exit(1)
		}
		fmt.Println("satisfiable; witness model:")
		fmt.Print(r.Model)
	case "implies":
		sigma, phi := splitTarget(loadRules(*rulesPath), *target)
		r, err := eng.Implies(ctx, sigma, phi)
		if err != nil {
			fatal(err)
		}
		if r.Implied {
			how := "by deduction"
			if r.ByInconsistency {
				how = "vacuously (inconsistent antecedent)"
			}
			fmt.Printf("%s is implied %s\n", phi.Name, how)
			return
		}
		fmt.Printf("%s is NOT implied; missing literal: %s\n", phi.Name, *r.Missing)
		os.Exit(1)
	case "prove":
		sigma, phi := splitTarget(loadRules(*rulesPath), *target)
		p, err := eng.Prove(ctx, sigma, phi)
		if err != nil {
			fatal(err)
		}
		if err := eng.CheckProof(ctx, sigma, p); err != nil {
			fatal(fmt.Errorf("generated proof failed checking: %w", err))
		}
		fmt.Printf("A_GED proof of %s (%d steps):\n%s", phi.Name, p.Len(), p)
	case "discover":
		g := loadGraph(*graphPath)
		found, err := eng.Discover(ctx, g, gedlib.DiscoverOptions{})
		if err != nil {
			fatal(err)
		}
		if len(found) == 0 {
			fmt.Println("no rules discovered")
			return
		}
		var mined gedlib.RuleSet
		for _, d := range found {
			mined = append(mined, d.GED)
		}
		fmt.Printf("# %d rules discovered\n%s", len(found), gedlib.FormatRules(mined))
	case "chase":
		g := loadGraph(*graphPath)
		sigma := loadRules(*rulesPath)
		res, err := eng.Chase(ctx, g, sigma)
		if err != nil {
			fatal(err)
		}
		if !res.Consistent() {
			fmt.Println("chase is invalid (⊥):", res.Eq.Conflict())
			os.Exit(1)
		}
		fmt.Printf("chase applied %d steps; quotient graph:\n", len(res.Steps))
		fmt.Print(res.Coercion.Graph)
		classes := res.Eq.NodeClasses()
		for rep, members := range classes {
			if len(members) > 1 {
				fmt.Printf("merged %v -> class of n%d\n", members, rep)
			}
		}
	default:
		usage()
	}
}

func usage() {
	fmt.Fprintln(os.Stderr, "usage: gedcheck validate|sat|implies|prove|chase|discover [flags]")
	os.Exit(2)
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "gedcheck:", err)
	os.Exit(1)
}

func loadGraph(path string) *gedlib.Graph {
	if path == "" {
		fatal(fmt.Errorf("missing -graph"))
	}
	data, err := os.ReadFile(path)
	if err != nil {
		fatal(err)
	}
	g, _, err := gedlib.LoadGraph(data)
	if err != nil {
		fatal(err)
	}
	return g
}

func loadRules(path string) gedlib.RuleSet {
	if path == "" {
		fatal(fmt.Errorf("missing -rules"))
	}
	data, err := os.ReadFile(path)
	if err != nil {
		fatal(err)
	}
	sigma, err := gedlib.ParseRules(string(data))
	if err != nil {
		fatal(err)
	}
	return sigma
}

// splitTarget extracts the named rule as φ and returns the rest as Σ.
func splitTarget(all gedlib.RuleSet, name string) (gedlib.RuleSet, *gedlib.Rule) {
	if name == "" {
		fatal(fmt.Errorf("missing -target"))
	}
	var sigma gedlib.RuleSet
	var phi *gedlib.Rule
	for _, d := range all {
		if d.Name == name && phi == nil {
			phi = d
			continue
		}
		sigma = append(sigma, d)
	}
	if phi == nil {
		fatal(fmt.Errorf("rule %q not found", name))
	}
	return sigma, phi
}
