// Command gedserve is the GED serving daemon: a multi-tenant catalog of
// property graphs behind an HTTP+JSON API, with per-graph write
// coalescing and a perpetually maintained violation set per registered
// rule set.
//
//	gedserve -addr :8080
//	gedserve -addr :8080 -load kb=testdata/kb.json -rules kb=testdata/rules.ged
//	gedserve -addr :8080 -data /var/lib/gedserve            # durable leader
//	gedserve -addr :8081 -follow /var/lib/gedserve          # read replica
//
// With -data, every graph is persisted under the directory (per-graph
// delta WAL + periodic checkpoints); rebooting with the same -data
// restores the catalog — newest checkpoint plus WAL-tail replay — so a
// crash loses at most the writes whose mutate requests had not yet
// returned. -fsync picks the WAL sync policy (always, batch, off);
// -checkpoint-every the ops between checkpoints. With -follow, the
// process tails another gedserve's -data directory as a read-only
// replica: mutations are rejected with 403 and /statsz reports the
// replication lag. -rescan sets how often a follower rescans the
// directory for graphs created after it started.
//
// Failover: when the leader dies, POST /promote on a follower turns it
// into the leader in place — the promotion drains the WAL to its true
// durable end, bumps each graph's leadership epoch, and fences the old
// epoch, so a deposed or rebooted stale leader can never acknowledge
// another write (its appends fail, the graph turns read-only "fenced",
// and /healthz says so). POST /demote sends a leader back to tailing
// the directory as a follower. -epoch pins the epoch a rebooting
// process assumes it owns (operator forensics: rebooting an old leader
// binary with its pre-failover epoch comes up fenced instead of
// split-brained); normal reboots omit it and adopt the newest epoch on
// disk. See the README's "Failover & roles" section for the runbook.
//
// API (all JSON):
//
//	POST   /graphs?name=N          create graph N (body: optional graph JSON)
//	DELETE /graphs/{name}          drop a graph (flushes pending writes)
//	GET    /graphs                 list graphs
//	POST   /graphs/{name}/rules    register rules (body: GED DSL text)
//	POST   /graphs/{name}/mutate   {"ops":[{"op":"set_attr",...},...]} — returns after flush
//	GET    /graphs/{name}/violations?limit=&offset=
//	POST   /graphs/{name}/validate {"nodes":["id",...]} — targeted re-validation
//	POST   /graphs/{name}/chase    run the chase over a point-in-time copy
//	GET    /graphs/{name}/stats    per-graph serving stats
//	POST   /graphs/{name}/enable   re-enable a degraded graph (forces a recovery probe)
//	POST   /promote                promote this follower to leader (bypasses admission)
//	POST   /demote                 demote this leader back to follower (bypasses admission)
//	GET    /statsz                 server-wide stats (bypasses admission)
//	GET    /healthz                per-graph health+role: ok|degraded|fenced|readonly (bypasses admission)
//	GET    /metricsz               Prometheus text metrics (bypasses admission)
//	GET    /tracez                 recent traced operations, ?graph=&op=&min=&limit= (bypasses admission)
//	GET    /versionz               build identity from embedded build info (bypasses admission)
//
// The observability endpoints bypass admission control for the same
// reason /healthz does: the monitoring that explains an overload must
// not be shed by it. -slow-op D logs every traced operation (flushes,
// with per-stage timings) that takes at least D; -version prints the
// build identity and exits.
//
// When a graph's disk starts failing, the server degrades instead of
// limping: the last published view keeps serving reads, mutations get
// 503 + Retry-After, /healthz reports the graph degraded with the
// causing error, and an auto-probe re-enables the graph once the disk
// heals (or an operator forces it via /enable). -fault injects a
// deterministic disk-fault schedule for testing exactly that path.
//
// With -pprof, the net/http/pprof debug endpoints are additionally
// served under /debug/pprof/ (bypassing admission control), so
// serving-path matcher profiles can be captured in situ:
//
//	gedserve -addr :8080 -pprof
//	go tool pprof http://localhost:8080/debug/pprof/profile?seconds=10
//
// Consistency model: a write is visible to every subsequent read once
// its mutate request returns; reads see the state as of the last
// flushed batch. See package gedlib/serve.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"net/http"
	"net/http/pprof"
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	"gedlib/bench"
	"gedlib/serve"
)

// assignList collects repeatable name=path flags.
type assignList []string

func (a *assignList) String() string { return strings.Join(*a, ",") }
func (a *assignList) Set(s string) error {
	if !strings.Contains(s, "=") {
		return fmt.Errorf("want name=path, got %q", s)
	}
	*a = append(*a, s)
	return nil
}

func main() {
	var loads, rules assignList
	addr := flag.String("addr", ":8080", "listen address")
	workers := flag.Int("workers", 0, "validation workers per request (0 = sequential)")
	shards := flag.Int("shards", 0, "graph shards for partitioned validation (0 or 1 = monolithic)")
	partitioner := flag.String("partitioner", "", "shard placement strategy: hash or greedy (default hash); needs -shards")
	cacheBound := flag.Int("cache", 0, "engine graph-cache bound (0 = default)")
	chaseDepth := flag.Int("chase-depth", 0, "chase round bound (0 = unbounded)")
	flushOps := flag.Int("flush-ops", 0, "flush a write queue at this many pending ops (0 = default)")
	maxDelay := flag.Duration("flush-delay", 0, "flush a non-empty write queue after this delay (0 = default)")
	maxQueue := flag.Int("queue", 0, "max pending write ops per graph (0 = default)")
	maxInFlight := flag.Int("max-inflight", 0, "max concurrently admitted requests (0 = default)")
	reqTimeout := flag.Duration("request-timeout", 0, "per-request context timeout (0 = default)")
	pprofOn := flag.Bool("pprof", false, "expose net/http/pprof under /debug/pprof/ (profiling the serving-path matcher in situ)")
	dataDir := flag.String("data", "", "durable data directory (per-graph WAL + checkpoints); reboot with the same directory to restore")
	fsync := flag.String("fsync", "batch", "WAL fsync policy: always, batch or off")
	ckptEvery := flag.Int("checkpoint-every", 0, "ops between checkpoints (0 = default)")
	follow := flag.String("follow", "", "follow a leader's -data directory as a read-only replica (POST /promote to take over)")
	rescan := flag.Duration("rescan", 0, "follower rescan interval for graphs created after startup (0 = default 1s)")
	epoch := flag.Int64("epoch", -1, "leadership epoch to assume on restore (testing/forensics; -1 = adopt the newest epoch on disk)")
	faultSpec := flag.String("fault", "", "inject disk faults (testing): e.g. 'enospc:path=wal-:after=65536; eio:op=sync:k=2'")
	faultSeed := flag.Int64("fault-seed", 1, "seed for the -fault schedule's torn-write sizes")
	slowOp := flag.Duration("slow-op", 0, "log traced operations at least this slow, with per-stage timings (0 = off)")
	noObs := flag.Bool("no-obs", false, "disable pipeline instrumentation (engine/persist metrics, traces); /statsz counters stay on")
	version := flag.Bool("version", false, "print build identity and exit")
	flag.Var(&loads, "load", "preload a graph: name=graph.json (repeatable)")
	flag.Var(&rules, "rules", "preregister rules: name=rules.ged (repeatable)")
	flag.Parse()

	if *version {
		v := serve.VersionInfo()
		fmt.Printf("gedserve %s %s %s", v.Module, v.Version, v.Go)
		if v.Revision != "" {
			fmt.Printf(" (%s%s)", v.Revision, map[bool]string{true: "-dirty"}[v.Dirty])
		}
		fmt.Println()
		return
	}
	if *dataDir != "" && *follow != "" {
		fatal(fmt.Errorf("-data and -follow are mutually exclusive"))
	}
	if *partitioner != "" && *partitioner != "hash" && *partitioner != "greedy" {
		fatal(fmt.Errorf("-partitioner %q: want hash or greedy", *partitioner))
	}
	cfg := serve.Config{
		Workers:         *workers,
		Shards:          *shards,
		Partitioner:     *partitioner,
		GraphCacheBound: *cacheBound,
		ChaseDepth:      *chaseDepth,
		FlushOps:        *flushOps,
		MaxDelay:        *maxDelay,
		MaxQueueOps:     *maxQueue,
		MaxInFlight:     *maxInFlight,
		RequestTimeout:  *reqTimeout,
		DataDir:         *dataDir,
		Fsync:           *fsync,
		CheckpointEvery: *ckptEvery,
		RescanInterval:  *rescan,
		SlowOp:          *slowOp,
		DisableObserver: *noObs,
	}
	if *epoch >= 0 {
		if *dataDir == "" {
			fatal(fmt.Errorf("-epoch needs -data (epochs fence the persist layer)"))
		}
		e := uint64(*epoch)
		cfg.AssumeEpoch = &e
	}
	if *slowOp > 0 {
		cfg.OnSlowOp = func(sd *serve.SpanData) {
			fmt.Fprintf(os.Stderr, "gedserve: slow op: graph=%s op=%s dur=%s stages=%v err=%q\n",
				sd.Graph, sd.Op, sd.Dur, sd.Stages, sd.Err)
		}
	}
	if *follow != "" {
		cfg.DataDir = *follow
	}
	if *faultSpec != "" {
		if cfg.DataDir == "" {
			fatal(fmt.Errorf("-fault needs -data (faults act on the persist layer)"))
		}
		rules, err := bench.ParseFaultSpec(*faultSpec)
		if err != nil {
			fatal(fmt.Errorf("-fault: %w", err))
		}
		ffs := bench.NewFaultFS(*faultSeed, nil)
		for _, r := range rules {
			ffs.Inject(r)
		}
		cfg.FS = ffs
		fmt.Printf("gedserve: fault injection armed: %s\n", *faultSpec)
	}
	srv, err := serve.NewServer(cfg)
	if err != nil {
		fatal(err)
	}

	switch {
	case *follow != "":
		if err := srv.Follow(context.Background()); err != nil {
			fatal(err)
		}
		fmt.Printf("gedserve: following %s (read-only replica; POST /promote to take over)\n", *follow)
	case *dataDir != "":
		names, err := srv.Restore(context.Background())
		if err != nil {
			fatal(err)
		}
		fmt.Printf("gedserve: restored %d graph(s) from %s\n", len(names), *dataDir)
	}

	for _, spec := range loads {
		name, path, _ := strings.Cut(spec, "=")
		data, err := os.ReadFile(path)
		if err != nil {
			fatal(err)
		}
		ent, err := srv.Catalog().Create(name, data)
		if errors.Is(err, serve.ErrExists) {
			// Rebooting with both -data and -load: the durable copy
			// (which includes every write since the original load) wins.
			fmt.Printf("gedserve: %s already restored from %s; skipping -load\n", name, *dataDir)
			continue
		}
		if err != nil {
			fatal(err)
		}
		v := ent.CurrentView()
		fmt.Printf("gedserve: loaded %s (%d nodes, %d edges)\n", name, v.Snap.NumNodes(), v.Snap.NumEdges())
	}
	for _, spec := range rules {
		name, path, _ := strings.Cut(spec, "=")
		src, err := os.ReadFile(path)
		if err != nil {
			fatal(err)
		}
		ent, err := srv.Catalog().Get(name)
		if err != nil {
			fatal(fmt.Errorf("-rules %s: %w (use -load first)", name, err))
		}
		view, err := ent.RegisterRules(context.Background(), string(src))
		if err != nil {
			fatal(err)
		}
		fmt.Printf("gedserve: %s: %d rules, %d violations\n", name, len(view.Rules), len(view.Violations))
	}

	handler := srv.Handler()
	if *pprofOn {
		// Debug endpoints ride next to the API, bypassing its admission
		// control: a profile of an overloaded server is exactly when you
		// want them reachable. Guarded by the flag so production
		// deployments opt in explicitly.
		mux := http.NewServeMux()
		mux.HandleFunc("/debug/pprof/", pprof.Index)
		mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
		mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
		mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
		mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
		mux.Handle("/", handler)
		handler = mux
		fmt.Printf("gedserve: pprof enabled at %s/debug/pprof/\n", *addr)
	}

	hs := &http.Server{Addr: *addr, Handler: handler}
	done := make(chan error, 1)
	go func() { done <- hs.ListenAndServe() }()
	fmt.Printf("gedserve: serving on %s\n", *addr)

	sig := make(chan os.Signal, 1)
	signal.Notify(sig, os.Interrupt, syscall.SIGTERM)
	select {
	case err := <-done:
		fatal(err)
	case s := <-sig:
		fmt.Printf("gedserve: %v, draining\n", s)
	}

	// Graceful shutdown: stop accepting, finish in-flight requests,
	// then flush every graph's pending writes.
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	if err := hs.Shutdown(ctx); err != nil {
		fmt.Fprintln(os.Stderr, "gedserve: shutdown:", err)
	}
	srv.Close()
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "gedserve:", err)
	os.Exit(1)
}
