// Package gedlib is a from-scratch Go implementation of "Dependencies
// for Graphs" (Wenfei Fan and Ping Lu, PODS 2017): graph entity
// dependencies (GEDs) over property graphs, the revised chase with the
// Church-Rosser property, decision procedures for satisfiability,
// implication and validation, the finite axiom system A_GED, and the
// GDC and GED∨ extensions.
//
// The implementation lives under internal/; see README.md for the
// package map, DESIGN.md for the system inventory, and EXPERIMENTS.md
// for the reproduction of the paper's evaluation artifacts. The
// benchmarks in bench_test.go regenerate Table 1; run them with
//
//	go test -bench=. -benchmem
package gedlib
