// Package gedlib is a from-scratch Go implementation of "Dependencies
// for Graphs" (Wenfei Fan and Ping Lu, PODS 2017): graph entity
// dependencies (GEDs) over property graphs, the revised chase with the
// Church-Rosser property, decision procedures for satisfiability,
// implication and validation, the finite axiom system A_GED, and the
// GDC and GED∨ extensions.
//
// The public API is this root package: construct an Engine with
// functional options and call its context-aware methods —
//
//	eng := gedlib.New(gedlib.WithWorkers(4))
//	sigma, _ := gedlib.ParseRules(src)
//	g, _, _ := gedlib.LoadGraph(data)
//	vs, err := eng.Validate(ctx, g, sigma)
//
// Rules are parsed from a text DSL (ParseRules) or built
// programmatically (NewPattern, NewRule, NewKey, the literal
// constructors); graphs load from JSON (LoadGraph) or are built with
// NewGraph. The workload, gdc, gedor and bench subpackages expose the
// paper's generators, the two dependency extensions, and the evaluation
// harness. The machinery lives under internal/; see README.md for the
// package map, the quickstart and the DSL grammar. The benchmarks in
// bench_test.go regenerate Table 1; run them with
//
//	go test -bench=. -benchmem
//
// # Storage model
//
// Graph is the mutable build-time representation. The hot analyses run
// on Snapshot, a frozen read-only copy built by Graph.Freeze: labels,
// attribute names and values interned into dense ints, CSR in/out
// adjacency grouped and sorted by edge label, per-label node postings
// and degree statistics, and the attribute-value index folded in.
// Snapshots are immutable and safe for unsynchronized concurrent
// readers; they reflect the graph at freeze time (compare
// Snapshot.SourceVersion against Graph.Version to detect staleness).
//
// Callers normally never freeze explicitly: the Engine caches one
// snapshot keyed on the graph's mutation counter, so repeated Validate,
// Satisfies and Discover calls on an unchanged graph pay the freeze
// cost once. Matching over a Snapshot and over its source Graph yields
// exactly the same result sets — only the cost (and, under a positive
// violation limit, the enumeration-order prefix) differs; the
// canonical-order APIs sort before truncating and are host-independent
// even with a limit.
//
// # Deltas and incremental maintenance
//
// Graphs are add-only and journal every mutation: Graph.DeltaSince(v)
// returns the Delta — added nodes, added edges, attribute writes —
// applied after version v. Snapshot.Apply(delta) advances a frozen
// snapshot by a delta in O(|Δ| + touched adjacency): the snapshot's
// per-node tables are page-chunked and copy-on-write, so only the
// pages, label postings and symbol tables the delta touches are
// cloned; everything else is shared with the parent, and both remain
// immutable and concurrently readable. Symbol ids are append-only
// within a snapshot lineage, which lets compiled matcher plans rebind
// to an advanced snapshot instead of recompiling.
//
// Engine.Apply drives the whole incremental-validation pipeline from
// the journal: it keeps the cached snapshot perpetually fresh via
// Apply, maintains the violation set of a rule set across deltas
// (re-checking only violations the delta touches and searching only
// the touched neighborhoods for new ones), and returns the complete
// canonical violation set at O(|Δ|) cost per update. The stale-cache
// catch-up also serves Validate and ValidateIncremental after
// mutations, so no graph-bound method re-freezes an already-seen
// graph; the chase similarly maintains one live coercion snapshot
// across its fixpoint rounds instead of re-freezing per round.
//
// # Match enumeration
//
// On snapshot hosts the matcher's extension step is worst-case-optimal:
// binding a variable with several already-bound pattern-neighbors
// leapfrog-intersects their sorted CSR adjacency runs (with galloping
// seeks), so only candidates satisfying every incident concrete-labeled
// edge are ever enumerated — the decisive case on cyclic patterns; with
// one bound neighbor the smallest eligible run drives and residual
// constraints are probed per candidate (the mutable-graph host mirrors
// the min-length selection). Constant antecedent literals (x.A = c) are
// pushed down into compiled plans: they resolve to the snapshot's
// (attr, value) posting lists, join the candidate intersection, and
// their postings stay valid across Snapshot.Apply, maintained lazily
// per posting actually read. Variable literals, id literals and
// consequent literals are not pushable and remain post-match checks.
// Plan costing counts literal postings toward a variable's candidate
// estimate and orders the search toward intersection-tight variables.
// The pre-intersection scan-and-probe path survives as the measured
// baseline (gedbench -experiment match) and the differential-test
// oracle.
//
// # Sharding
//
// WithShards(P) partitions every graph the engine touches into P
// shards — WithPartitioner picks the placement: HashPartitioner
// (stateless) or GreedyPartitioner (streaming edge-cut) — and runs
// Validate and Apply shard-local in parallel. Each shard owns a
// snapshot of its nodes' adjacency plus the frontier (non-owned
// endpoints of cut edges), with its own journal lineage so deltas
// advance only touched shards. When match enumeration needs to extend
// across a shard boundary, the partial binding ships to the owning
// shard's queue and resumes there; complete bindings are re-verified
// against the global snapshot before a violation is emitted. Per-shard
// violation stores merge into exactly the canonical order of the
// monolithic path, which remains the P=1 fallback and the differential
// oracle. ShardStats exposes the live topology (owned nodes, cut
// edges, per-shard violation counts); gedbench -experiment shard
// measures 1→P scaling on a power-law social workload.
//
// # Serving
//
// The serve subpackage (daemon: cmd/gedserve) turns the library into a
// long-running multi-tenant system: a catalog of named graphs behind an
// HTTP+JSON API. Its read path is lock-free — every write flush
// publishes an immutable view (snapshot, rebased validator, maintained
// violation set, id mapping) through an atomic pointer, so concurrent
// readers never block writers — and its write path coalesces: mutations
// enqueue onto a per-graph bounded batcher flushed by size or deadline,
// one Engine.Apply per merged batch. One Engine serves the whole
// catalog; its per-graph caches are LRU-bounded (WithGraphCacheBound)
// and released eagerly with Forget, so a daemon hosting many tenants
// holds snapshots and validators for only the hot ones. SnapshotOf and
// NewSnapshotValidator are the handoff points a custom serving layer
// needs to build the same shape.
//
// The persist subpackage makes the catalog durable and replicable:
// each coalesced flush is written ahead as one CRC-framed delta record
// in a per-graph WAL (one fsync per batch — group commit riding the
// batcher), periodic checkpoints store the graph's columnar image in an
// mmap-able file, and recovery maps the newest valid checkpoint and
// replays only the log tail, truncating torn records. A second gedserve
// pointed at the same directory tails the log and serves the same
// graphs as a read-only replica. See ExportImage/ImportImage and
// Graph.ApplyDelta for the underlying primitives.
//
// # Observability
//
// WithObserver(NewObserver(nil)) makes the engine report into a
// dependency-free observability core (internal/obs): an atomic metrics
// registry of counters, gauges and log-scale latency histograms, plus
// context-propagated spans collected in a lock-free ring of recent
// traces. Instrumentation spans every layer — Validate/Apply/Chase
// timings and the snapshot cache, per-rule matcher profiles (candidate,
// intersection, probe and binding counts with the active plan
// fingerprint), shard frame traffic, WAL/checkpoint/recovery durability
// counters, and the serving flush pipeline broken into queue-wait,
// WAL-append, fsync, apply and publish stages. The serve subpackage
// wires an Observer through automatically and exposes the registry as
// Prometheus text at /metricsz, the trace ring at /tracez, and a
// slow-operation log via Config.SlowOp; gedbench -experiment obs gates
// the whole apparatus at <= 5% serving-throughput overhead.
//
// Persistence I/O is pluggable (persist.FS), and the serving layer has
// an explicit failure policy built on it: transient write errors are
// retried inside the flush, a failed fsync is never retried (the graph
// degrades immediately — reads keep serving the last published view,
// writes 503 — until a heal checkpoint re-opens it, via background
// probe or the operator enable endpoint). The fault-injecting FS in
// internal/fault plus the chaos soak (gedbench -experiment chaos)
// rehearse exactly these paths: seeded disk-fault schedules under
// concurrent load, with acked-write durability and violation-set
// equivalence checked against a fresh-engine oracle after a simulated
// crash.
package gedlib
