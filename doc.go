// Package gedlib is a from-scratch Go implementation of "Dependencies
// for Graphs" (Wenfei Fan and Ping Lu, PODS 2017): graph entity
// dependencies (GEDs) over property graphs, the revised chase with the
// Church-Rosser property, decision procedures for satisfiability,
// implication and validation, the finite axiom system A_GED, and the
// GDC and GED∨ extensions.
//
// The public API is this root package: construct an Engine with
// functional options and call its context-aware methods —
//
//	eng := gedlib.New(gedlib.WithWorkers(4))
//	sigma, _ := gedlib.ParseRules(src)
//	g, _, _ := gedlib.LoadGraph(data)
//	vs, err := eng.Validate(ctx, g, sigma)
//
// Rules are parsed from a text DSL (ParseRules) or built
// programmatically (NewPattern, NewRule, NewKey, the literal
// constructors); graphs load from JSON (LoadGraph) or are built with
// NewGraph. The workload, gdc, gedor and bench subpackages expose the
// paper's generators, the two dependency extensions, and the evaluation
// harness. The machinery lives under internal/; see README.md for the
// package map, the quickstart and the DSL grammar. The benchmarks in
// bench_test.go regenerate Table 1; run them with
//
//	go test -bench=. -benchmem
package gedlib
