package gedlib

import (
	"context"
	"errors"
	"sync"

	"gedlib/internal/axiom"
	"gedlib/internal/chase"
	"gedlib/internal/discover"
	"gedlib/internal/optimize"
	"gedlib/internal/reason"
	"gedlib/internal/repair"
)

// ErrChaseDepthExceeded is returned by Engine methods when a chase did
// not converge within the bound set by WithChaseDepth.
var ErrChaseDepthExceeded = chase.ErrDepthExceeded

// Engine is the entry point of the library: one configured instance of
// the paper's analyses. Every method takes a context.Context first and
// honors its cancellation mid-run — the heavy loops (match enumeration,
// chase rounds, worker pools) check the context cooperatively and
// return its error, so a server can bound each request with
// context.WithTimeout.
//
// An Engine is cheap, configured once at New, and safe for concurrent
// use. Its only mutable state is an internal snapshot cache: the
// graph-bound methods (Validate, ValidateIncremental, Satisfies,
// Discover) freeze the graph into a read-only gedlib.Snapshot and key
// the cached copy on the graph's mutation counter (Graph.Version), so
// repeated calls on an unchanged graph pay the freeze cost once. The
// cache holds one snapshot — the last graph seen — and is guarded by a
// mutex, so concurrent calls remain safe; alternating between two
// graphs on one Engine simply re-freezes each time.
type Engine struct {
	workers        int
	violationLimit int
	chaseDepth     int

	mu       sync.Mutex
	snapOf   *Graph
	snapVer  uint64
	snapshot *Snapshot
}

// frozen returns a snapshot of g, reusing the cached one when g and its
// mutation counter are unchanged since the previous graph-bound call.
// The freeze itself runs outside the mutex, so one call freezing a cold
// graph never blocks concurrent calls that hit the cache (two
// concurrent cold calls may both freeze; the results are equivalent and
// one wins the cache slot).
func (e *Engine) frozen(g *Graph) *Snapshot {
	v := g.Version()
	e.mu.Lock()
	if e.snapOf == g && e.snapVer == v && e.snapshot != nil {
		s := e.snapshot
		e.mu.Unlock()
		return s
	}
	e.mu.Unlock()
	s := g.Freeze()
	e.mu.Lock()
	e.snapOf, e.snapVer, e.snapshot = g, v, s
	e.mu.Unlock()
	return s
}

// cached returns the fresh cached snapshot of g if one exists, without
// ever freezing: the incremental path wants the CSR host only when it
// is already paid for.
func (e *Engine) cached(g *Graph) *Snapshot {
	e.mu.Lock()
	defer e.mu.Unlock()
	if e.snapOf == g && e.snapVer == g.Version() && e.snapshot != nil {
		return e.snapshot
	}
	return nil
}

// Option configures an Engine.
type Option func(*Engine)

// WithWorkers sets how many goroutines Validate uses. 1 (the default)
// validates sequentially; larger values partition each rule's match
// space across n workers; n <= 0 selects GOMAXPROCS. The result is
// deterministic regardless of worker count.
func WithWorkers(n int) Option {
	return func(e *Engine) { e.workers = n }
}

// WithViolationLimit bounds how many violations Validate and
// ValidateIncremental report. 0 (the default) reports all of them; a
// server that only needs "is it dirty, and roughly where" can cap the
// work.
func WithViolationLimit(n int) Option {
	return func(e *Engine) { e.violationLimit = n }
}

// WithChaseDepth bounds the number of fixpoint rounds of every chase
// the engine runs (Chase, Repair, CheckSat, Implies, Prove,
// OptimizeQuery). The chase always terminates (Theorem 1), so the bound
// is a resource valve for adversarial inputs, not a semantics knob; an
// exceeded bound surfaces as ErrChaseDepthExceeded. 0 (the default)
// means unbounded.
func WithChaseDepth(d int) Option {
	return func(e *Engine) { e.chaseDepth = d }
}

// New returns an Engine with the given options applied over the
// defaults: sequential validation, no violation limit, no chase bound.
func New(opts ...Option) *Engine {
	e := &Engine{workers: 1}
	for _, o := range opts {
		o(e)
	}
	return e
}

// Validate finds the violations of Σ in g (Section 5.3): matches of a
// rule's pattern that satisfy its antecedent but fail a consequent
// literal. g ⊨ Σ iff the result is empty. Validation runs sequentially
// or data-parallel according to WithWorkers, and reports at most
// WithViolationLimit violations.
//
// On cancellation the violations found so far are returned together
// with ctx's error.
func (e *Engine) Validate(ctx context.Context, g *Graph, sigma RuleSet) ([]Violation, error) {
	snap := e.frozen(g)
	if e.workers == 1 {
		return reason.ValidateOnCtx(ctx, snap, sigma, e.violationLimit)
	}
	return reason.ValidateParallelOnCtx(ctx, snap, sigma, e.violationLimit, e.workers)
}

// ValidateIncremental finds the violations of Σ whose match involves at
// least one of the touched nodes. After a localized update, every *new*
// violation touches an updated node, so re-checking only those matches
// replaces a full re-validation.
//
// Because this is called right after mutations — when the cached
// snapshot is stale by definition — it matches over the mutable graph
// rather than paying a full O(|G|) freeze for a touched-neighborhood
// check; a still-fresh cached snapshot is used when one exists.
func (e *Engine) ValidateIncremental(ctx context.Context, g *Graph, sigma RuleSet, touched []NodeID) ([]Violation, error) {
	if snap := e.cached(g); snap != nil {
		return reason.ValidateTouchingOnCtx(ctx, snap, sigma, touched, e.violationLimit)
	}
	return reason.ValidateTouchingOnCtx(ctx, g, sigma, touched, e.violationLimit)
}

// Satisfies reports g ⊨ Σ, stopping at the first violation.
func (e *Engine) Satisfies(ctx context.Context, g *Graph, sigma RuleSet) (bool, error) {
	vs, err := reason.ValidateOnCtx(ctx, e.frozen(g), sigma, 1)
	if err != nil {
		return false, err
	}
	return len(vs) == 0, nil
}

// Chase runs the revised chase of g by Σ (Theorem 1): the canonical,
// order-independent enforcement of every rule to a fixpoint. The input
// graph is not modified; the result's Materialize yields the quotient
// graph, and Consistent reports whether enforcement succeeded (an
// inconsistent chase is the paper's ⊥).
func (e *Engine) Chase(ctx context.Context, g *Graph, sigma RuleSet) (*ChaseResult, error) {
	return chase.RunCtx(ctx, g, sigma, nil, e.chaseDepth)
}

// Repair cleans g under Σ: the chase read as an edit script. Attribute
// equations fill in or correct values, id literals merge duplicate
// entities. The input graph is not modified. When no repair exists
// (e.g. a forbidding rule matched), the result carries the conflict for
// human resolution instead of silently choosing a side; that is not an
// error — the error reports only cancellation or an exceeded chase
// bound.
func (e *Engine) Repair(ctx context.Context, g *Graph, sigma RuleSet) (*RepairResult, error) {
	return repair.RunCtx(ctx, g, sigma, e.chaseDepth)
}

// CheckSat decides whether Σ is satisfiable in the strong sense of
// Section 5.1 — has a model in which every pattern matches — by chasing
// the canonical graph G_Σ (Theorem 2). The result carries a certified
// witness model when satisfiable.
func (e *Engine) CheckSat(ctx context.Context, sigma RuleSet) (*SatResult, error) {
	return reason.CheckSatCtx(ctx, sigma, e.chaseDepth)
}

// Implies decides Σ ⊨ φ by chasing φ's canonical graph from Eq_X
// (Theorem 4). When not implied, the result names the first consequent
// literal that could not be deduced.
func (e *Engine) Implies(ctx context.Context, sigma RuleSet, phi *Rule) (*ImplResult, error) {
	return reason.ImpliesCtx(ctx, sigma, phi, e.chaseDepth)
}

// Prove constructs a machine-checkable A_GED derivation of Σ ⊢ φ
// (Theorem 7: the axiom system is sound and complete). It returns an
// error when Σ does not imply φ.
func (e *Engine) Prove(ctx context.Context, sigma RuleSet, phi *Rule) (*Proof, error) {
	return axiom.ProveCtx(ctx, sigma, phi, e.chaseDepth)
}

// CheckProof verifies an A_GED proof against Σ step by step, rejecting
// any tampered or ill-founded derivation.
func (e *Engine) CheckProof(ctx context.Context, sigma RuleSet, p *Proof) error {
	if err := ctx.Err(); err != nil {
		return err
	}
	return axiom.Check(sigma, p)
}

// Discover mines rules that hold exactly on g — the profiling
// counterpart of Validate — pruning every candidate implied by the
// rules already kept, as Section 5.2 motivates. Results are
// deterministic. WithChaseDepth bounds each pruning chase; a candidate
// whose implication check exceeds the bound is kept rather than
// guessed about.
func (e *Engine) Discover(ctx context.Context, g *Graph, opt DiscoverOptions) ([]Discovered, error) {
	return discover.GFDsOnCtx(ctx, g, e.frozen(g), opt, e.chaseDepth)
}

// OptimizeQuery rewrites a pattern query under rules known to hold on
// the data: chase-identified variables merge (fewer joins), deduced
// constants become index-backed selections, and a contradictory query
// is proved empty without touching data.
func (e *Engine) OptimizeQuery(ctx context.Context, q *Query, sigma RuleSet) (*RewriteResult, error) {
	return optimize.RewriteCtx(ctx, q, sigma, e.chaseDepth)
}

// IsCancellation reports whether an error returned by an Engine method
// is a context cancellation or deadline expiry, as opposed to a
// resource-bound or input error.
func IsCancellation(err error) bool {
	return errors.Is(err, context.Canceled) || errors.Is(err, context.DeadlineExceeded)
}
