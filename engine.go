package gedlib

import (
	"context"
	"errors"
	"sync"
	"time"

	"gedlib/internal/axiom"
	"gedlib/internal/chase"
	"gedlib/internal/discover"
	"gedlib/internal/obs"
	"gedlib/internal/optimize"
	"gedlib/internal/reason"
	"gedlib/internal/repair"
	"gedlib/internal/shard"
)

// ErrChaseDepthExceeded is returned by Engine methods when a chase did
// not converge within the bound set by WithChaseDepth.
var ErrChaseDepthExceeded = chase.ErrDepthExceeded

// Engine is the entry point of the library: one configured instance of
// the paper's analyses. Every method takes a context.Context first and
// honors its cancellation mid-run — the heavy loops (match enumeration,
// chase rounds, worker pools) check the context cooperatively and
// return its error, so a server can bound each request with
// context.WithTimeout.
//
// An Engine is cheap, configured once at New, and safe for concurrent
// use. Its mutable state is maintained validation machinery, kept in a
// per-graph cache entry (bounded across graphs — see below) and guarded
// by a mutex:
//
//   - a snapshot cache: the graph-bound methods (Validate,
//     ValidateIncremental, Apply, Satisfies, Discover) need a read-only
//     gedlib.Snapshot of the graph. A cached snapshot whose version
//     matches is reused as is; one that is merely stale is advanced by
//     the graph's own change journal (Graph.DeltaSince +
//     Snapshot.Apply) in time proportional to the changes — the engine
//     pays a full O(|G|) freeze only on first contact with a graph (or
//     when the backlog approaches the graph's size, where a fresh
//     freeze is cheaper).
//   - a plan cache: compiled match plans and pushed-down access paths
//     (a prepared validator) keyed on (rule set, snapshot); when only
//     the snapshot moved, plans are rebound rather than recompiled.
//   - a violation store for Apply: the maintained violation set that
//     makes repeated incremental validation O(|Δ|) end to end.
//
// One Engine may host many long-lived graphs — the shape a serving
// catalog needs. The cache holds at most WithGraphCacheBound entries
// (default DefaultGraphCacheBound); touching a graph beyond the bound
// evicts the least-recently-used other graph's entry, whose state is
// simply rebuilt on next contact. Forget releases a graph's entry
// eagerly when the caller knows the graph is gone for good.
type Engine struct {
	workers        int
	violationLimit int
	chaseDepth     int
	cacheBound     int
	shards         int
	partitioner    Partitioner

	// obs is the injected observer (WithObserver), nil by default; em
	// caches its metric handles so hot paths skip the registry lookup.
	obs *Observer
	em  *engineMetrics

	mu    sync.Mutex
	clock uint64
	cache map[*Graph]*engEntry
}

// engEntry is the engine's maintained state for one graph. Entries are
// created on first contact and evicted in LRU order past the cache
// bound. Apply pins its entry for the duration of the call — eviction
// skips pinned entries (the bound is soft while calls are in flight),
// which is what keeps "Apply serializes with itself per graph" true
// even when the cache is churning. Forget removes an entry regardless;
// an in-flight Apply then finishes on the orphan with correct results
// and the state is rebuilt on next contact.
type engEntry struct {
	lastUse uint64 // engine clock at last touch, under Engine.mu
	pinned  int    // in-flight Applies holding this entry, under Engine.mu

	snapVer  uint64
	snapshot *Snapshot

	valSnap   *Snapshot
	valSigma  RuleSet
	validator *reason.Validator

	// applyMu serializes Apply per graph: each violation store is
	// single-writer. Applies on different graphs run concurrently.
	applyMu    sync.Mutex
	storeSigma RuleSet
	store      *reason.ViolationStore

	// shardState is the partitioned topology and per-shard stores when
	// WithShards is active; single-writer under applyMu like the store.
	shardState *shard.State
}

// DefaultGraphCacheBound is how many graphs an Engine retains cached
// state for unless WithGraphCacheBound overrides it.
const DefaultGraphCacheBound = 16

// entryLocked returns g's cache entry, creating it (and evicting the
// LRU entry past the bound) if needed. Engine.mu must be held.
func (e *Engine) entryLocked(g *Graph) *engEntry {
	ent := e.cache[g]
	if ent == nil {
		ent = &engEntry{}
		e.cache[g] = ent
		e.evictLocked(g)
	}
	e.clock++
	ent.lastUse = e.clock
	return ent
}

// evictLocked drops least-recently-used entries until the cache is
// back under its bound, never touching keep or pinned entries. Called
// on entry creation and again when an Apply unpins — while every
// over-bound entry is pinned the bound is soft, and the unpin is what
// brings the cache back down afterwards. Engine.mu must be held.
func (e *Engine) evictLocked(keep *Graph) {
	for e.cacheBound > 0 && len(e.cache) > e.cacheBound {
		var victim *Graph
		oldest := uint64(0)
		for vg, vent := range e.cache {
			if vg == keep || vent.pinned > 0 {
				continue
			}
			if victim == nil || vent.lastUse < oldest {
				victim, oldest = vg, vent.lastUse
			}
		}
		if victim == nil {
			return
		}
		delete(e.cache, victim)
	}
}

// Forget releases every cached artifact for g (snapshot, prepared
// validator, maintained violation store). A serving catalog calls this
// when it drops a graph, so the entry does not linger until LRU
// eviction; calling it for an unknown graph is a no-op.
func (e *Engine) Forget(g *Graph) {
	e.mu.Lock()
	delete(e.cache, g)
	e.mu.Unlock()
}

// CachedGraphs reports how many graphs the engine currently retains
// cached state for. It is bounded by WithGraphCacheBound.
func (e *Engine) CachedGraphs() int {
	e.mu.Lock()
	defer e.mu.Unlock()
	return len(e.cache)
}

// fresh returns a snapshot of g's current state: the cached one when it
// is current, the cached one advanced by the graph's change journal
// when it is stale but close, a full freeze otherwise. The heavy work
// runs outside the mutex, so one call catching up a cold graph never
// blocks concurrent calls that hit the cache (two concurrent cold calls
// may both build; the results are equivalent and one wins the slot).
func (e *Engine) fresh(g *Graph) *Snapshot {
	v := g.Version()
	e.mu.Lock()
	ent := e.entryLocked(g)
	base, baseVer := ent.snapshot, ent.snapVer
	e.mu.Unlock()
	if base != nil && baseVer == v {
		e.em.snapHit.Inc()
		return base
	}
	var s *Snapshot
	if base != nil && baseVer < v {
		// A backlog comparable to the graph is no cheaper to apply than
		// a fresh freeze, and the freeze re-compacts the page storage;
		// a nil delta means the journal no longer reaches back this far.
		if d := g.DeltaSince(baseVer); d != nil && d.Size() <= g.Size()/4 {
			s = base.Apply(d)
			e.em.snapAdvance.Inc()
		}
	}
	if s == nil {
		s = g.Freeze()
		e.em.snapFreeze.Inc()
	}
	e.mu.Lock()
	// Write back lookup-only: re-creating the entry here would
	// resurrect a graph Forget dropped mid-call (an LRU-evicted entry
	// merely misses this one caching opportunity).
	if cur := e.cache[g]; cur != nil {
		e.clock++
		cur.lastUse = e.clock
		cur.snapVer, cur.snapshot = s.SourceVersion(), s
	}
	e.mu.Unlock()
	return s
}

// SnapshotOf returns an up-to-date immutable snapshot of g, reusing and
// advancing the engine's cached one exactly like the graph-bound
// methods do. This is the read-path handoff a serving layer publishes
// to concurrent readers: the snapshot is safe for unsynchronized
// concurrent use, while the call itself reads g and must be
// synchronized with g's mutators like any other graph-bound method.
func (e *Engine) SnapshotOf(g *Graph) *Snapshot {
	return e.fresh(g)
}

// SameRules reports whether two rule sets are the same rules in the
// same order, by identity — rules are built once and shared. This is
// exactly the keying Apply uses for its maintained state, exported so
// a serving layer can make the same "did the rules actually change"
// decision the engine will.
func SameRules(a, b RuleSet) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// plansFor returns a prepared validator (compiled plans + pushed-down
// pivots) for sigma over snap, reusing g's cached one outright when
// nothing moved and rebinding its plans when only the snapshot advanced
// within its lineage. Recompiling from scratch happens only on a new
// rule set or an unrelated snapshot.
func (e *Engine) plansFor(g *Graph, snap *Snapshot, sigma RuleSet) *reason.Validator {
	e.mu.Lock()
	ent := e.entryLocked(g)
	val, valSnap, valSigma := ent.validator, ent.valSnap, ent.valSigma
	e.mu.Unlock()
	if val != nil && SameRules(valSigma, sigma) {
		if valSnap == snap {
			return val
		}
		if valSnap.Lineage() == snap.Lineage() {
			val = val.Rebase(snap)
			e.storePlans(g, snap, sigma, val)
			return val
		}
	}
	val = reason.NewValidatorOn(snap, sigma)
	val.Observe(e.obs.Registry())
	e.storePlans(g, snap, sigma, val)
	return val
}

// storePlans records a prepared validator in g's cache entry —
// lookup-only, so it cannot resurrect an entry Forget removed.
func (e *Engine) storePlans(g *Graph, snap *Snapshot, sigma RuleSet, val *reason.Validator) {
	e.mu.Lock()
	if ent := e.cache[g]; ent != nil {
		e.clock++
		ent.lastUse = e.clock
		ent.validator, ent.valSnap, ent.valSigma = val, snap, sigma
	}
	e.mu.Unlock()
}

// Option configures an Engine.
type Option func(*Engine)

// WithWorkers sets how many goroutines Validate uses. 1 (the default)
// validates sequentially; larger values partition each rule's match
// space across n workers; n <= 0 selects GOMAXPROCS. The result is
// deterministic regardless of worker count.
func WithWorkers(n int) Option {
	return func(e *Engine) { e.workers = n }
}

// WithViolationLimit bounds how many violations Validate and
// ValidateIncremental report. 0 (the default) reports all of them; a
// server that only needs "is it dirty, and roughly where" can cap the
// work.
func WithViolationLimit(n int) Option {
	return func(e *Engine) { e.violationLimit = n }
}

// WithChaseDepth bounds the number of fixpoint rounds of every chase
// the engine runs (Chase, Repair, CheckSat, Implies, Prove,
// OptimizeQuery). The chase always terminates (Theorem 1), so the bound
// is a resource valve for adversarial inputs, not a semantics knob; an
// exceeded bound surfaces as ErrChaseDepthExceeded. 0 (the default)
// means unbounded.
func WithChaseDepth(d int) Option {
	return func(e *Engine) { e.chaseDepth = d }
}

// WithShards partitions every graph the engine touches into p shards
// and runs Validate and Apply through the sharded path: a Partitioner
// (WithPartitioner, hash by default) assigns node ownership, each shard
// keeps its own snapshot lineage and — under Apply — its own maintained
// violation store, and validation executes as parallel shard-local
// extension with partial bindings shipped across shard queues at
// boundaries. Deltas route to the shards they touch (O(|Δ| per shard))
// and per-shard violation sets merge into the same canonical order the
// monolithic path produces — p ≤ 1 (the default) keeps that monolithic
// path, which remains the differential oracle for the sharded one.
//
// In sharded mode Validate serializes with Apply per graph (both
// advance the single-writer shard state) and returns no partial results
// on cancellation.
func WithShards(p int) Option {
	return func(e *Engine) { e.shards = p }
}

// WithPartitioner selects the node-placement strategy WithShards uses:
// HashPartitioner (the O(1) baseline) or GreedyPartitioner (streaming
// edge-cut minimization). A nil partitioner keeps the current one.
func WithPartitioner(part Partitioner) Option {
	return func(e *Engine) {
		if part != nil {
			e.partitioner = part
		}
	}
}

// WithGraphCacheBound bounds how many graphs the engine retains cached
// state for (snapshot, prepared validator, maintained violation store).
// Past the bound the least-recently-used graph's entry is evicted and
// rebuilt on next contact. The default is DefaultGraphCacheBound; n <= 0
// removes the bound (the pre-catalog behavior — only safe when the set
// of graphs an engine ever sees is itself bounded).
func WithGraphCacheBound(n int) Option {
	return func(e *Engine) { e.cacheBound = n }
}

// New returns an Engine with the given options applied over the
// defaults: sequential validation, no violation limit, no chase bound,
// cached state for up to DefaultGraphCacheBound graphs.
func New(opts ...Option) *Engine {
	e := &Engine{
		workers:     1,
		cacheBound:  DefaultGraphCacheBound,
		partitioner: shard.NewHash(),
		cache:       make(map[*Graph]*engEntry),
	}
	for _, o := range opts {
		o(e)
	}
	e.em = newEngineMetrics(e.obs.Registry())
	return e
}

// pin returns g's entry held against LRU eviction, with the matching
// release. Pinning is what keeps "Apply serializes with itself per
// graph" true while the cache churns: a concurrent call for the same
// graph finds this same entry and blocks on its applyMu.
func (e *Engine) pin(g *Graph) (*engEntry, func()) {
	e.mu.Lock()
	ent := e.entryLocked(g)
	ent.pinned++
	e.mu.Unlock()
	return ent, func() {
		e.mu.Lock()
		ent.pinned--
		e.evictLocked(nil)
		e.mu.Unlock()
	}
}

// shardStateFor returns g's sharded state caught up to g's current
// version — advancing it by the graph's journal when the backlog is
// small, repartitioning from scratch otherwise. The caller must hold
// ent.applyMu (the state is single-writer) and keep g quiescent, like
// every graph-bound method.
func (e *Engine) shardStateFor(ctx context.Context, g *Graph, ent *engEntry) (*shard.State, error) {
	st := ent.shardState
	if st != nil && st.P() == e.shards {
		d := g.DeltaSince(st.Version())
		switch {
		case d != nil && d.Size() <= g.Size()/4:
			if err := st.ApplyDelta(ctx, d); err != nil {
				ent.shardState = nil
				return nil, err
			}
		case g.Version() != st.Version():
			// Journal trimmed or backlog rivals the graph: repartition.
			st = nil
		}
	} else {
		st = nil
	}
	if st == nil {
		st = shard.New(g, e.fresh(g), e.shards, e.partitioner)
		st.Observe(e.obs.Registry())
		ent.shardState = st
	}
	// Publish the sharded global snapshot into the plain snapshot cache
	// so the other graph-bound methods reuse it instead of re-advancing.
	e.mu.Lock()
	if cur := e.cache[g]; cur != nil {
		cur.snapVer, cur.snapshot = st.Global().SourceVersion(), st.Global()
	}
	e.mu.Unlock()
	return st, nil
}

// Validate finds the violations of Σ in g (Section 5.3): matches of a
// rule's pattern that satisfy its antecedent but fail a consequent
// literal. g ⊨ Σ iff the result is empty. Validation runs sequentially
// or data-parallel according to WithWorkers, and reports at most
// WithViolationLimit violations.
//
// On cancellation the violations found so far are returned together
// with ctx's error.
func (e *Engine) Validate(ctx context.Context, g *Graph, sigma RuleSet) ([]Violation, error) {
	defer e.em.observe(e.em.validate, time.Now())
	if e.shards > 1 {
		return e.validateSharded(ctx, g, sigma)
	}
	val := e.plansFor(g, e.fresh(g), sigma)
	if e.workers == 1 {
		return val.RunCtx(ctx, e.violationLimit)
	}
	return val.RunParallelCtx(ctx, e.violationLimit, e.workers)
}

// validateSharded is Validate through the partitioned path: catch the
// shard topology up to the graph, run the frame-protocol search across
// all shards, and report the canonical merge.
func (e *Engine) validateSharded(ctx context.Context, g *Graph, sigma RuleSet) ([]Violation, error) {
	ent, unpin := e.pin(g)
	defer unpin()
	ent.applyMu.Lock()
	defer ent.applyMu.Unlock()
	st, err := e.shardStateFor(ctx, g, ent)
	if err != nil {
		return nil, err
	}
	vs, err := st.Validate(ctx, sigma)
	if err != nil {
		return nil, err
	}
	return e.limited(vs), nil
}

// ValidateIncremental finds the violations of Σ whose match involves at
// least one of the touched nodes. After a localized update, every *new*
// violation touches an updated node, so re-checking only those matches
// replaces a full re-validation.
//
// The engine brings its cached snapshot up to date by applying the
// graph's change journal (O(|Δ|), no freeze) and runs the
// touched-neighborhood search over it with cached plans, so the
// steady-state call is proportional to the update, not the graph. The
// exceptions are the same as every graph-bound method's: first contact
// with a graph (or contact after LRU eviction, or after a backlog
// rivaling the graph) pays one full freeze before the cheap regime
// resumes. For a maintained answer to "what are all current
// violations", use Apply instead.
func (e *Engine) ValidateIncremental(ctx context.Context, g *Graph, sigma RuleSet, touched []NodeID) ([]Violation, error) {
	defer e.em.observe(e.em.validateInc, time.Now())
	val := e.plansFor(g, e.fresh(g), sigma)
	return val.TouchingCtx(ctx, touched, e.violationLimit)
}

// Apply incorporates the graph's mutations since the previous Apply (or
// any other graph-bound call) into the engine's maintained validation
// state, and returns the complete current violation set of Σ in
// canonical order, truncated to WithViolationLimit.
//
// The first Apply for a (graph, rules) pair seeds a maintained
// violation store with one full validation. Every later Apply costs
// O(|Δ| + touched neighborhoods) matcher work plus a cheap filter scan
// of the stored set: the cached snapshot advances by the graph's
// change journal (Snapshot.Apply — no freeze), stored violations whose
// match the delta touches are re-checked, and the touched
// neighborhoods are searched for new ones. Apply serializes with
// itself; other Engine methods may run concurrently.
//
// The maintained state is keyed on the graph and the rule set *by
// identity* (same rules, same order, same pointers — rules are built
// once and shared). Passing a freshly rebuilt RuleSet on every call
// silently re-seeds every time, making Apply no cheaper than Validate;
// build Σ once and reuse it.
//
// On error (cancellation mid-seed or mid-update) the store is
// discarded and the next Apply re-seeds; no partial state is returned.
func (e *Engine) Apply(ctx context.Context, g *Graph, sigma RuleSet) ([]Violation, error) {
	defer e.em.observe(e.em.apply, time.Now())
	// Pin the entry so LRU churn cannot evict it mid-call: a concurrent
	// Apply for the same graph must find this same entry (and block on
	// its applyMu) rather than seed a duplicate store on a fresh one.
	ent, unpin := e.pin(g)
	defer unpin()
	ent.applyMu.Lock()
	defer ent.applyMu.Unlock()
	if e.shards > 1 {
		st, err := e.shardStateFor(ctx, g, ent)
		if err != nil {
			return nil, err
		}
		if !st.Seeded(sigma) {
			if err := st.SeedStores(ctx, sigma); err != nil {
				ent.shardState = nil
				return nil, err
			}
		}
		return e.limited(st.Violations()), nil
	}
	if st := ent.store; st != nil && SameRules(ent.storeSigma, sigma) {
		d := g.DeltaSince(st.Snapshot().SourceVersion())
		if d != nil && d.Size() <= g.Size()/4 {
			snap := st.Snapshot().Apply(d)
			if err := st.Apply(ctx, snap, d.TouchedNodes()); err != nil {
				ent.store = nil
				return nil, err
			}
			e.mu.Lock()
			// ent is pinned against LRU eviction, but Forget may have
			// removed it; lookup-only so a dropped graph stays dropped.
			if cur := e.cache[g]; cur != nil {
				cur.snapVer, cur.snapshot = snap.SourceVersion(), snap
			}
			e.mu.Unlock()
			return e.limited(st.Violations()), nil
		}
		// The backlog rivals the graph; fall through and re-seed from a
		// fresh freeze.
	}
	st, err := reason.NewViolationStoreParallelCtx(ctx, e.plansFor(g, e.fresh(g), sigma), e.workers)
	if err != nil {
		ent.store = nil
		return nil, err
	}
	st.Observe(e.em.storeRecheck, e.em.storeDrop, e.em.storeFresh)
	ent.store, ent.storeSigma = st, sigma
	return e.limited(st.Violations()), nil
}

// limited applies the engine's violation limit and copies the result:
// ViolationStore.Violations returns (possibly cached) store-owned
// state, and Apply's callers get the same ownership Validate's do.
func (e *Engine) limited(vs []Violation) []Violation {
	if e.violationLimit > 0 && len(vs) > e.violationLimit {
		vs = vs[:e.violationLimit]
	}
	out := make([]Violation, len(vs))
	copy(out, vs)
	return out
}

// ShardStats describes the shard topology the engine maintains for one
// graph under WithShards.
type ShardStats struct {
	// Shards is the shard count P.
	Shards int
	// Partitioner names the placement strategy.
	Partitioner string
	// CutEdges counts distinct edges whose endpoints live on different
	// shards — the boundary index's headline number.
	CutEdges int
	// OwnedNodes are the per-shard owned-node counts.
	OwnedNodes []int
	// ShardViolations are the per-shard maintained violation counts
	// (violations live with the owner of their first variable binding);
	// nil until an Apply has seeded the sharded stores.
	ShardViolations []int
}

// ShardStats reports g's current shard topology, when WithShards is
// active and a prior Validate or Apply built the state (it never builds
// one itself — stats stay O(P)). It serializes with Apply on the same
// graph, like every sharded-state reader.
func (e *Engine) ShardStats(g *Graph) (ShardStats, bool) {
	if e.shards <= 1 {
		return ShardStats{}, false
	}
	e.mu.Lock()
	ent := e.cache[g]
	if ent == nil {
		e.mu.Unlock()
		return ShardStats{}, false
	}
	ent.pinned++
	e.mu.Unlock()
	defer func() {
		e.mu.Lock()
		ent.pinned--
		e.evictLocked(nil)
		e.mu.Unlock()
	}()
	ent.applyMu.Lock()
	defer ent.applyMu.Unlock()
	st := ent.shardState
	if st == nil {
		return ShardStats{}, false
	}
	return ShardStats{
		Shards:          st.P(),
		Partitioner:     st.PartitionerName(),
		CutEdges:        st.CutEdges(),
		OwnedNodes:      st.OwnedNodes(),
		ShardViolations: st.StoreCounts(),
	}, true
}

// Satisfies reports g ⊨ Σ, stopping at the first violation.
func (e *Engine) Satisfies(ctx context.Context, g *Graph, sigma RuleSet) (bool, error) {
	vs, err := e.plansFor(g, e.fresh(g), sigma).RunCtx(ctx, 1)
	if err != nil {
		return false, err
	}
	return len(vs) == 0, nil
}

// Chase runs the revised chase of g by Σ (Theorem 1): the canonical,
// order-independent enforcement of every rule to a fixpoint. The input
// graph is not modified; the result's Materialize yields the quotient
// graph, and Consistent reports whether enforcement succeeded (an
// inconsistent chase is the paper's ⊥).
func (e *Engine) Chase(ctx context.Context, g *Graph, sigma RuleSet) (*ChaseResult, error) {
	defer e.em.observe(e.em.chase, time.Now())
	return chase.RunCtx(obs.ContextWithObserver(ctx, e.obs), g, sigma, nil, e.chaseDepth)
}

// Repair cleans g under Σ: the chase read as an edit script. Attribute
// equations fill in or correct values, id literals merge duplicate
// entities. The input graph is not modified. When no repair exists
// (e.g. a forbidding rule matched), the result carries the conflict for
// human resolution instead of silently choosing a side; that is not an
// error — the error reports only cancellation or an exceeded chase
// bound.
func (e *Engine) Repair(ctx context.Context, g *Graph, sigma RuleSet) (*RepairResult, error) {
	return repair.RunCtx(ctx, g, sigma, e.chaseDepth)
}

// CheckSat decides whether Σ is satisfiable in the strong sense of
// Section 5.1 — has a model in which every pattern matches — by chasing
// the canonical graph G_Σ (Theorem 2). The result carries a certified
// witness model when satisfiable.
func (e *Engine) CheckSat(ctx context.Context, sigma RuleSet) (*SatResult, error) {
	return reason.CheckSatCtx(ctx, sigma, e.chaseDepth)
}

// Implies decides Σ ⊨ φ by chasing φ's canonical graph from Eq_X
// (Theorem 4). When not implied, the result names the first consequent
// literal that could not be deduced.
func (e *Engine) Implies(ctx context.Context, sigma RuleSet, phi *Rule) (*ImplResult, error) {
	return reason.ImpliesCtx(ctx, sigma, phi, e.chaseDepth)
}

// Prove constructs a machine-checkable A_GED derivation of Σ ⊢ φ
// (Theorem 7: the axiom system is sound and complete). It returns an
// error when Σ does not imply φ.
func (e *Engine) Prove(ctx context.Context, sigma RuleSet, phi *Rule) (*Proof, error) {
	return axiom.ProveCtx(ctx, sigma, phi, e.chaseDepth)
}

// CheckProof verifies an A_GED proof against Σ step by step, rejecting
// any tampered or ill-founded derivation.
func (e *Engine) CheckProof(ctx context.Context, sigma RuleSet, p *Proof) error {
	if err := ctx.Err(); err != nil {
		return err
	}
	return axiom.Check(sigma, p)
}

// Discover mines rules that hold exactly on g — the profiling
// counterpart of Validate — pruning every candidate implied by the
// rules already kept, as Section 5.2 motivates. Results are
// deterministic. WithChaseDepth bounds each pruning chase; a candidate
// whose implication check exceeds the bound is kept rather than
// guessed about.
func (e *Engine) Discover(ctx context.Context, g *Graph, opt DiscoverOptions) ([]Discovered, error) {
	return discover.GFDsOnCtx(ctx, g, e.fresh(g), opt, e.chaseDepth)
}

// OptimizeQuery rewrites a pattern query under rules known to hold on
// the data: chase-identified variables merge (fewer joins), deduced
// constants become index-backed selections, and a contradictory query
// is proved empty without touching data.
func (e *Engine) OptimizeQuery(ctx context.Context, q *Query, sigma RuleSet) (*RewriteResult, error) {
	return optimize.RewriteCtx(ctx, q, sigma, e.chaseDepth)
}

// IsCancellation reports whether an error returned by an Engine method
// is a context cancellation or deadline expiry, as opposed to a
// resource-bound or input error.
func IsCancellation(err error) bool {
	return errors.Is(err, context.Canceled) || errors.Is(err, context.DeadlineExceeded)
}
