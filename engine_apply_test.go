package gedlib_test

import (
	"context"
	"fmt"
	"math/rand"
	"sort"
	"testing"

	"gedlib"
	"gedlib/workload"
)

func canon(vs []gedlib.Violation) []string {
	out := make([]string, 0, len(vs))
	for _, v := range vs {
		vars := v.GED.Pattern.Vars()
		s := v.GED.Name
		for _, x := range vars {
			s += fmt.Sprintf(":%s=%d", x, v.Match[x])
		}
		out = append(out, s)
	}
	sort.Strings(out)
	return out
}

// TestEngineApplyMatchesValidate: Engine.Apply's maintained violation
// set equals a from-scratch Validate after every delta of a random
// update stream.
func TestEngineApplyMatchesValidate(t *testing.T) {
	ctx := context.Background()
	rng := rand.New(rand.NewSource(41))
	g, _ := workload.KnowledgeBase(31, 30, 0.1)
	sigma := gedlib.RuleSet{
		workload.PaperPhi1(), workload.PaperPhi2(),
		workload.PaperPhi3(), workload.PaperPhi4(),
	}
	eng := gedlib.New()
	check := gedlib.New() // separate engine so Apply's cache is not shared

	for step := 0; step < 20; step++ {
		got, err := eng.Apply(ctx, g, sigma)
		if err != nil {
			t.Fatal(err)
		}
		want, err := check.Validate(ctx, g, sigma)
		if err != nil {
			t.Fatal(err)
		}
		a, b := canon(got), canon(want)
		if len(a) != len(b) {
			t.Fatalf("step %d: Apply reports %d violations, Validate %d", step, len(a), len(b))
		}
		for i := range a {
			if a[i] != b[i] {
				t.Fatalf("step %d: violation sets differ at %d: %s vs %s", step, i, a[i], b[i])
			}
		}
		// Mutate a handful of nodes for the next round.
		for k := 0; k < 1+rng.Intn(3); k++ {
			id := gedlib.NodeID(rng.Intn(g.NumNodes()))
			switch rng.Intn(3) {
			case 0:
				g.SetAttr(id, "type", gedlib.String("psychologist"))
			case 1:
				g.SetAttr(id, "type", gedlib.String("programmer"))
			default:
				g.AddEdge(id, "create", gedlib.NodeID(rng.Intn(g.NumNodes())))
			}
		}
	}
}

// TestEngineApplyLimit: the violation limit truncates Apply's report
// without corrupting the maintained set.
func TestEngineApplyLimit(t *testing.T) {
	ctx := context.Background()
	g, stats := workload.KnowledgeBase(33, 40, 0.4)
	if stats.Total() == 0 {
		t.Skip("no planted violations")
	}
	sigma := gedlib.RuleSet{
		workload.PaperPhi1(), workload.PaperPhi2(),
		workload.PaperPhi3(), workload.PaperPhi4(),
	}
	full, err := gedlib.New().Apply(ctx, g, sigma)
	if err != nil {
		t.Fatal(err)
	}
	if len(full) < 2 {
		t.Skip("need at least two violations")
	}
	lim, err := gedlib.New(gedlib.WithViolationLimit(1)).Apply(ctx, g, sigma)
	if err != nil {
		t.Fatal(err)
	}
	if len(lim) != 1 {
		t.Fatalf("limit 1 reported %d violations", len(lim))
	}
}

// TestEngineApplyAfterValidate: interleaving Apply with the other
// graph-bound methods keeps every answer fresh.
func TestEngineApplyAfterValidate(t *testing.T) {
	ctx := context.Background()
	eng := gedlib.New()
	g := gedlib.NewGraph()
	game := g.AddNode("product")
	g.SetAttr(game, "type", gedlib.String("video game"))
	dev := g.AddNode("person")
	g.SetAttr(dev, "type", gedlib.String("artist"))
	g.AddEdge(dev, "create", game)
	sigma := gedlib.RuleSet{workload.PaperPhi1()}

	if vs, _ := eng.Validate(ctx, g, sigma); len(vs) != 1 {
		t.Fatalf("Validate: want 1 violation, got %d", len(vs))
	}
	if vs, _ := eng.Apply(ctx, g, sigma); len(vs) != 1 {
		t.Fatalf("Apply: want 1 violation, got %d", len(vs))
	}
	// Repair; both views must converge to clean.
	g.SetAttr(dev, "type", gedlib.String("programmer"))
	if vs, _ := eng.Apply(ctx, g, sigma); len(vs) != 0 {
		t.Fatalf("Apply after repair: want 0, got %d", len(vs))
	}
	if vs, _ := eng.Validate(ctx, g, sigma); len(vs) != 0 {
		t.Fatalf("Validate after repair: want 0, got %d", len(vs))
	}
	// Incremental view over the delta-maintained snapshot.
	g.SetAttr(dev, "type", gedlib.String("gardener"))
	vs, err := eng.ValidateIncremental(ctx, g, sigma, []gedlib.NodeID{dev})
	if err != nil {
		t.Fatal(err)
	}
	if len(vs) != 1 {
		t.Fatalf("ValidateIncremental: want 1, got %d", len(vs))
	}
}
