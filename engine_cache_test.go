package gedlib_test

import (
	"context"
	"testing"

	"gedlib"
	"gedlib/workload"
)

// TestEngineSnapshotCacheInvalidation: the engine's cached snapshot is
// keyed on the graph's mutation counter, so a mutation between Validate
// calls must be visible — stale results would mean the cache failed to
// invalidate.
func TestEngineSnapshotCacheInvalidation(t *testing.T) {
	ctx := context.Background()
	eng := gedlib.New()
	g := gedlib.NewGraph()
	game := g.AddNode("product")
	g.SetAttr(game, "type", gedlib.String("video game"))
	dev := g.AddNode("person")
	g.SetAttr(dev, "type", gedlib.String("artist"))
	g.AddEdge(dev, "create", game)

	sigma := gedlib.RuleSet{workload.PaperPhi1()}
	vs, err := eng.Validate(ctx, g, sigma)
	if err != nil {
		t.Fatal(err)
	}
	if len(vs) != 1 {
		t.Fatalf("planted violation not found: %d violations", len(vs))
	}

	// Re-validate without mutation: cached snapshot, same answer.
	vs, err = eng.Validate(ctx, g, sigma)
	if err != nil || len(vs) != 1 {
		t.Fatalf("cached re-validation changed the answer: %d violations, err %v", len(vs), err)
	}

	// Repair the creator's type; the next call must see the fix.
	g.SetAttr(dev, "type", gedlib.String("programmer"))
	vs, err = eng.Validate(ctx, g, sigma)
	if err != nil {
		t.Fatal(err)
	}
	if len(vs) != 0 {
		t.Fatalf("stale snapshot: %d violations after repair", len(vs))
	}

	// Structural mutation invalidates too.
	game2 := g.AddNode("product")
	g.SetAttr(game2, "type", gedlib.String("video game"))
	g.AddEdge(dev, "create", game2)
	g.SetAttr(dev, "type", gedlib.String("gardener"))
	vs, err = eng.Validate(ctx, g, sigma)
	if err != nil {
		t.Fatal(err)
	}
	if len(vs) != 2 {
		t.Fatalf("post-mutation validation found %d violations, want 2", len(vs))
	}
}

// TestEngineSnapshotCacheParallelWorkers: the cached snapshot is shared
// with the parallel validator and both worker counts agree.
func TestEngineSnapshotCacheParallelWorkers(t *testing.T) {
	ctx := context.Background()
	g, stats := workload.KnowledgeBase(3, 60, 0.3)
	sigma := gedlib.RuleSet{
		workload.PaperPhi1(), workload.PaperPhi2(),
		workload.PaperPhi3(), workload.PaperPhi4(),
	}
	seq, err := gedlib.New().Validate(ctx, g, sigma)
	if err != nil {
		t.Fatal(err)
	}
	par, err := gedlib.New(gedlib.WithWorkers(4)).Validate(ctx, g, sigma)
	if err != nil {
		t.Fatal(err)
	}
	if len(seq) != len(par) {
		t.Fatalf("sequential found %d violations, parallel %d", len(seq), len(par))
	}
	if stats.Total() > 0 && len(seq) == 0 {
		t.Error("planted inconsistencies but found no violations")
	}
}
