package gedlib_test

import (
	"context"
	"testing"

	"gedlib"
	"gedlib/workload"
)

// TestEngineGraphCacheBound: one engine hosting more graphs than its
// cache bound keeps at most bound entries alive, and an evicted graph
// still validates correctly (its state is rebuilt on next contact).
func TestEngineGraphCacheBound(t *testing.T) {
	ctx := context.Background()
	const bound = 4
	eng := gedlib.New(gedlib.WithGraphCacheBound(bound))
	sigma := gedlib.RuleSet{workload.PaperPhi1(), workload.PaperPhi2()}

	graphs := make([]*gedlib.Graph, 3*bound)
	want := make([]int, len(graphs))
	for i := range graphs {
		g, _ := workload.KnowledgeBase(int64(i), 20+i, 0.2)
		graphs[i] = g
		vs, err := eng.Validate(ctx, g, sigma)
		if err != nil {
			t.Fatal(err)
		}
		want[i] = len(vs)
		if n := eng.CachedGraphs(); n > bound {
			t.Fatalf("after %d graphs the cache holds %d entries, bound %d", i+1, n, bound)
		}
	}
	if n := eng.CachedGraphs(); n != bound {
		t.Fatalf("steady-state cache holds %d entries, want %d", n, bound)
	}

	// Revisit every graph, including the evicted ones: same answers.
	for i, g := range graphs {
		vs, err := eng.Validate(ctx, g, sigma)
		if err != nil {
			t.Fatal(err)
		}
		if len(vs) != want[i] {
			t.Fatalf("graph %d after eviction: %d violations, want %d", i, len(vs), want[i])
		}
	}
}

// TestEngineGraphCacheLRUOrder: the hottest graph survives eviction —
// re-touching it between colder graphs keeps its entry resident.
func TestEngineGraphCacheLRUOrder(t *testing.T) {
	ctx := context.Background()
	eng := gedlib.New(gedlib.WithGraphCacheBound(2))
	sigma := gedlib.RuleSet{workload.PaperPhi1()}

	hot, _ := workload.KnowledgeBase(1, 30, 0.2)
	if _, err := eng.Apply(ctx, hot, sigma); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 6; i++ {
		cold, _ := workload.KnowledgeBase(int64(10+i), 15, 0.1)
		if _, err := eng.Validate(ctx, cold, sigma); err != nil {
			t.Fatal(err)
		}
		// Touch the hot graph so it stays the most recently used; its
		// maintained Apply state must survive every cold interloper.
		hot.SetAttr(gedlib.NodeID(i), "name", gedlib.String("renamed"))
		if _, err := eng.Apply(ctx, hot, sigma); err != nil {
			t.Fatal(err)
		}
	}
	if n := eng.CachedGraphs(); n != 2 {
		t.Fatalf("cache holds %d entries, want 2", n)
	}
}

// TestEngineForget: Forget drops a graph's cached state immediately and
// later calls rebuild it.
func TestEngineForget(t *testing.T) {
	ctx := context.Background()
	eng := gedlib.New()
	sigma := gedlib.RuleSet{workload.PaperPhi1()}
	g, _ := workload.KnowledgeBase(2, 25, 0.2)

	before, err := eng.Apply(ctx, g, sigma)
	if err != nil {
		t.Fatal(err)
	}
	if eng.CachedGraphs() != 1 {
		t.Fatalf("cache holds %d entries, want 1", eng.CachedGraphs())
	}
	eng.Forget(g)
	if eng.CachedGraphs() != 0 {
		t.Fatalf("cache holds %d entries after Forget, want 0", eng.CachedGraphs())
	}
	after, err := eng.Apply(ctx, g, sigma)
	if err != nil {
		t.Fatal(err)
	}
	if len(after) != len(before) {
		t.Fatalf("re-seeded Apply found %d violations, want %d", len(after), len(before))
	}
}

// TestEngineSnapshotOf: the published snapshot tracks the graph and is
// shared with the engine's own cache.
func TestEngineSnapshotOf(t *testing.T) {
	eng := gedlib.New()
	g, _ := workload.KnowledgeBase(3, 20, 0.1)
	s1 := eng.SnapshotOf(g)
	if got, want := s1.SourceVersion(), g.Version(); got != want {
		t.Fatalf("snapshot at version %d, graph at %d", got, want)
	}
	if s2 := eng.SnapshotOf(g); s2 != s1 {
		t.Fatal("unchanged graph re-snapshotted instead of reusing the cache")
	}
	g.SetAttr(gedlib.NodeID(0), "name", gedlib.String("moved"))
	s3 := eng.SnapshotOf(g)
	if s3 == s1 || s3.SourceVersion() != g.Version() {
		t.Fatal("snapshot did not advance with the graph")
	}
}
