package gedlib

import (
	"time"

	"gedlib/internal/obs"
)

// engineMetrics caches the engine's metric handles so the hot paths
// never touch the registry's mutex. Built once at New from the
// observer's registry; with no observer every handle is nil and each
// instrumentation site costs one nil check.
type engineMetrics struct {
	validate    *obs.Histogram
	validateInc *obs.Histogram
	apply       *obs.Histogram
	chase       *obs.Histogram

	snapHit     *obs.Counter
	snapAdvance *obs.Counter
	snapFreeze  *obs.Counter

	storeRecheck *obs.Counter
	storeDrop    *obs.Counter
	storeFresh   *obs.Counter
}

func newEngineMetrics(reg *obs.Registry) *engineMetrics {
	return &engineMetrics{
		validate:    reg.Histogram("ged_engine_validate_seconds", "full Validate duration"),
		validateInc: reg.Histogram("ged_engine_validate_incremental_seconds", "ValidateIncremental duration"),
		apply:       reg.Histogram("ged_engine_apply_seconds", "Engine.Apply duration"),
		chase:       reg.Histogram("ged_engine_chase_seconds", "Engine.Chase duration"),

		snapHit:     reg.Counter("ged_engine_snapshot_cache_total", "snapshot cache outcomes", "outcome", "hit"),
		snapAdvance: reg.Counter("ged_engine_snapshot_cache_total", "snapshot cache outcomes", "outcome", "advance"),
		snapFreeze:  reg.Counter("ged_engine_snapshot_cache_total", "snapshot cache outcomes", "outcome", "freeze"),

		storeRecheck: reg.Counter("ged_engine_store_rechecks_total", "maintained violations re-checked after a delta"),
		storeDrop:    reg.Counter("ged_engine_store_drops_total", "maintained violations dropped as repaired"),
		storeFresh:   reg.Counter("ged_engine_store_fresh_total", "fresh violations admitted into maintained stores"),
	}
}

// observe times one engine operation into h; used as
// defer e.em.observe(h, time.Now()).
func (em *engineMetrics) observe(h *obs.Histogram, start time.Time) {
	h.Observe(time.Since(start))
}
