package gedlib_test

import (
	"context"
	"fmt"
	"math/rand"
	"sync"
	"testing"
	"testing/quick"

	"gedlib"
	"gedlib/workload"
)

// orderedCanon renders a violation list preserving its order, including
// the recorded failing literal — "byte-identical canonical sets" is the
// sharded path's contract, so order and evidence both count.
func orderedCanon(vs []gedlib.Violation) string {
	out := ""
	for _, v := range vs {
		out += v.GED.Name
		for _, x := range v.GED.Pattern.Vars() {
			out += fmt.Sprintf(":%s=%d", x, v.Match[x])
		}
		out += fmt.Sprintf(" !%v\n", v.Literal)
	}
	return out
}

// TestEngineShardedMatchesMonolithic: WithShards(P) Validate and Apply
// must produce byte-identical canonical violation sets to the P=1
// monolithic engine across a random update stream, for both
// partitioners.
func TestEngineShardedMatchesMonolithic(t *testing.T) {
	ctx := context.Background()
	sigma := gedlib.RuleSet{
		workload.PaperPhi1(), workload.PaperPhi2(),
		workload.PaperPhi3(), workload.PaperPhi4(),
	}
	for _, p := range []int{2, 4} {
		for _, part := range []gedlib.Partitioner{gedlib.HashPartitioner(), gedlib.GreedyPartitioner()} {
			t.Run(fmt.Sprintf("p%d_%s", p, part.Name()), func(t *testing.T) {
				rng := rand.New(rand.NewSource(int64(91 + p)))
				g, _ := workload.KnowledgeBase(31, 30, 0.2)
				sharded := gedlib.New(gedlib.WithShards(p), gedlib.WithPartitioner(part))
				// Two workers put the monolithic Validate on the
				// canonically-sorted parallel path — the order the
				// sharded merge must reproduce (the sequential path
				// reports enumeration order instead).
				mono := gedlib.New(gedlib.WithWorkers(2))
				for step := 0; step < 10; step++ {
					gotV, err := sharded.Validate(ctx, g, sigma)
					if err != nil {
						t.Fatal(err)
					}
					wantV, err := mono.Validate(ctx, g, sigma)
					if err != nil {
						t.Fatal(err)
					}
					if orderedCanon(gotV) != orderedCanon(wantV) {
						t.Fatalf("step %d: sharded Validate diverged\n got:\n%s\nwant:\n%s",
							step, orderedCanon(gotV), orderedCanon(wantV))
					}
					gotA, err := sharded.Apply(ctx, g, sigma)
					if err != nil {
						t.Fatal(err)
					}
					wantA, err := mono.Apply(ctx, g, sigma)
					if err != nil {
						t.Fatal(err)
					}
					if orderedCanon(gotA) != orderedCanon(wantA) {
						t.Fatalf("step %d: sharded Apply diverged\n got:\n%s\nwant:\n%s",
							step, orderedCanon(gotA), orderedCanon(wantA))
					}
					for k := 0; k < 1+rng.Intn(4); k++ {
						switch rng.Intn(4) {
						case 0:
							g.SetAttr(gedlib.NodeID(rng.Intn(g.NumNodes())), "type", gedlib.String("programmer"))
						case 1:
							g.SetAttr(gedlib.NodeID(rng.Intn(g.NumNodes())), "type", gedlib.String("video game"))
						case 2:
							g.AddNode("person")
						default:
							g.AddEdge(gedlib.NodeID(rng.Intn(g.NumNodes())), "create",
								gedlib.NodeID(rng.Intn(g.NumNodes())))
						}
					}
				}
			})
		}
	}
}

// TestEngineShardedQuickDifferential drives the sharded-vs-monolithic
// differential with testing/quick generating the configuration space:
// random graph seed, shard count, partitioner and delta stream. Both
// Validate and Apply must return byte-identical canonical violation
// sets at every step.
func TestEngineShardedQuickDifferential(t *testing.T) {
	ctx := context.Background()
	labels := []gedlib.Label{"person", "product", "org"}
	attrs := []gedlib.Attr{"a", "b", "c"}
	f := func(seed int64, pRaw, steps uint8, useGreedy bool) bool {
		p := 2 + int(pRaw%3) // 2..4 shards
		part := gedlib.HashPartitioner()
		if useGreedy {
			part = gedlib.GreedyPartitioner()
		}
		rng := rand.New(rand.NewSource(seed))
		g := workload.RandomPropertyGraph(seed, 30+int(pRaw)%40, 2.0, labels, attrs, 3)
		sigma := workload.RandomGEDSet(seed+1, 3, 3, labels, attrs, 3)
		sharded := gedlib.New(gedlib.WithShards(p), gedlib.WithPartitioner(part))
		mono := gedlib.New(gedlib.WithWorkers(2))
		for step := 0; step <= int(steps%4); step++ {
			gotV, err := sharded.Validate(ctx, g, sigma)
			if err != nil {
				t.Error(err)
				return false
			}
			wantV, err := mono.Validate(ctx, g, sigma)
			if err != nil {
				t.Error(err)
				return false
			}
			if orderedCanon(gotV) != orderedCanon(wantV) {
				t.Errorf("seed %d p=%d step %d: Validate diverged", seed, p, step)
				return false
			}
			gotA, err := sharded.Apply(ctx, g, sigma)
			if err != nil {
				t.Error(err)
				return false
			}
			wantA, err := mono.Apply(ctx, g, sigma)
			if err != nil {
				t.Error(err)
				return false
			}
			if orderedCanon(gotA) != orderedCanon(wantA) {
				t.Errorf("seed %d p=%d step %d: Apply diverged", seed, p, step)
				return false
			}
			for k := 0; k < 1+rng.Intn(5); k++ {
				n := g.NumNodes()
				switch rng.Intn(4) {
				case 0:
					g.AddNode(labels[rng.Intn(len(labels))])
				case 1:
					g.AddEdge(gedlib.NodeID(rng.Intn(n)), "e", gedlib.NodeID(rng.Intn(n)))
				case 2:
					g.SetAttr(gedlib.NodeID(rng.Intn(n)), attrs[rng.Intn(len(attrs))],
						gedlib.Int(rng.Intn(3)))
				default:
					g.AddEdge(gedlib.NodeID(rng.Intn(n)), "likes", gedlib.NodeID(rng.Intn(n)))
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 8}); err != nil {
		t.Fatal(err)
	}
}

// TestEngineShardedConcurrentApplies: sharded Applies on distinct
// graphs run concurrently (the per-graph lock serializes only within a
// graph); must be race-clean under -race.
func TestEngineShardedConcurrentApplies(t *testing.T) {
	ctx := context.Background()
	sigma := gedlib.RuleSet{workload.PaperPhi1(), workload.PaperPhi4()}
	eng := gedlib.New(gedlib.WithShards(3), gedlib.WithPartitioner(gedlib.GreedyPartitioner()))
	var wg sync.WaitGroup
	for i := 0; i < 4; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(int64(700 + i)))
			g, _ := workload.KnowledgeBase(int64(40+i), 25, 0.2)
			for step := 0; step < 6; step++ {
				if _, err := eng.Apply(ctx, g, sigma); err != nil {
					t.Errorf("apply: %v", err)
					return
				}
				g.SetAttr(gedlib.NodeID(rng.Intn(g.NumNodes())), "type", gedlib.String("programmer"))
			}
		}(i)
	}
	wg.Wait()
}

// TestEngineShardStats pins the stats surface: absent before first
// contact, populated after Apply, absent on monolithic engines.
func TestEngineShardStats(t *testing.T) {
	ctx := context.Background()
	g, _ := workload.KnowledgeBase(31, 30, 0.2)
	sigma := gedlib.RuleSet{workload.PaperPhi1()}

	if _, ok := gedlib.New().ShardStats(g); ok {
		t.Fatal("monolithic engine reported shard stats")
	}
	eng := gedlib.New(gedlib.WithShards(2))
	if _, ok := eng.ShardStats(g); ok {
		t.Fatal("stats existed before any sharded call")
	}
	if _, err := eng.Apply(ctx, g, sigma); err != nil {
		t.Fatal(err)
	}
	st, ok := eng.ShardStats(g)
	if !ok {
		t.Fatal("no stats after Apply")
	}
	if st.Shards != 2 || st.Partitioner != "hash" {
		t.Fatalf("stats = %+v", st)
	}
	owned := 0
	for _, n := range st.OwnedNodes {
		owned += n
	}
	if owned != g.NumNodes() {
		t.Fatalf("owned nodes %d != %d", owned, g.NumNodes())
	}
	if st.ShardViolations == nil || len(st.ShardViolations) != 2 {
		t.Fatalf("per-shard violation counts = %v", st.ShardViolations)
	}
	vs, err := eng.Apply(ctx, g, sigma)
	if err != nil {
		t.Fatal(err)
	}
	total := 0
	for _, n := range st.ShardViolations {
		total += n
	}
	if total != len(vs) {
		t.Fatalf("per-shard counts sum to %d, Apply reports %d", total, len(vs))
	}
}
