package gedlib_test

// Godoc-verified examples for the public facade: each Example walks one
// Engine entry point through the paper's running scenario.

import (
	"context"
	"fmt"

	"gedlib"
)

const phi1Src = `
# a video game can only be created by programmers
ged phi1 on (x:person)-[create]->(y:product) {
  when y.type = "video game"
  then x.type = "programmer"
}
`

const albumKeySrc = `
ged albumKey on (a:album), (b:album) {
  when a.title = b.title and a.release = b.release
  then a.id = b.id
}
`

// dirtyKB builds the Example 1(1) inconsistency: a psychologist
// credited with creating a video game.
func dirtyKB() *gedlib.Graph {
	g := gedlib.NewGraph()
	dev := g.AddNodeAttrs("person", map[gedlib.Attr]gedlib.Value{
		"type": gedlib.String("psychologist"),
	})
	game := g.AddNodeAttrs("product", map[gedlib.Attr]gedlib.Value{
		"type": gedlib.String("video game"),
	})
	g.AddEdge(dev, "create", game)
	return g
}

func ExampleEngine_Validate() {
	eng := gedlib.New()
	sigma, _ := gedlib.ParseRules(phi1Src)
	g := dirtyKB()

	vs, err := eng.Validate(context.Background(), g, sigma)
	if err != nil {
		panic(err)
	}
	for _, v := range vs {
		fmt.Printf("%s fails %s\n", v.GED.Name, v.Literal)
	}
	// Output:
	// phi1 fails x.type = "programmer"
}

func ExampleEngine_ValidateIncremental() {
	eng := gedlib.New()
	sigma, _ := gedlib.ParseRules(phi1Src)
	g := dirtyKB()

	// A localized update: only matches touching the updated node are
	// re-checked, not the whole graph.
	dev := g.Nodes()[0]
	g.SetAttr(dev, "type", gedlib.String("programmer"))
	vs, err := eng.ValidateIncremental(context.Background(), g, sigma, []gedlib.NodeID{dev})
	if err != nil {
		panic(err)
	}
	fmt.Println("violations after fix:", len(vs))
	// Output:
	// violations after fix: 0
}

func ExampleEngine_Repair() {
	eng := gedlib.New()
	sigma, _ := gedlib.ParseRules(albumKeySrc)

	// Two catalog entries for one album: same title, same release.
	g := gedlib.NewGraph()
	for i := 0; i < 2; i++ {
		g.AddNodeAttrs("album", map[gedlib.Attr]gedlib.Value{
			"title":   gedlib.String("Bleach"),
			"release": gedlib.Int(1989),
		})
	}

	r, err := eng.Repair(context.Background(), g, sigma)
	if err != nil {
		panic(err)
	}
	fmt.Printf("repaired: %v, %d -> %d nodes\n", r.Repaired, g.NumNodes(), r.Graph.NumNodes())
	// Output:
	// repaired: true, 2 -> 1 nodes
}

func ExampleEngine_Chase() {
	eng := gedlib.New()
	sigma, _ := gedlib.ParseRules(albumKeySrc)

	g := gedlib.NewGraph()
	for i := 0; i < 2; i++ {
		g.AddNodeAttrs("album", map[gedlib.Attr]gedlib.Value{
			"title":   gedlib.String("Bleach"),
			"release": gedlib.Int(1989),
		})
	}

	res, err := eng.Chase(context.Background(), g, sigma)
	if err != nil {
		panic(err)
	}
	fmt.Printf("consistent: %v, quotient satisfies rules: %v\n",
		res.Consistent(), gedlib.Satisfies(res.Materialize(), sigma))
	// Output:
	// consistent: true, quotient satisfies rules: true
}

func ExampleEngine_CheckSat() {
	eng := gedlib.New()
	sigma, _ := gedlib.ParseRules(phi1Src + albumKeySrc)

	sat, err := eng.CheckSat(context.Background(), sigma)
	if err != nil {
		panic(err)
	}
	fmt.Printf("satisfiable: %v, certified model: %v\n",
		sat.Satisfiable, gedlib.IsModel(sat.Model, sigma))
	// Output:
	// satisfiable: true, certified model: true
}

func ExampleEngine_Implies() {
	eng := gedlib.New()
	sigma, _ := gedlib.ParseRules(albumKeySrc)

	// The key implies its own reflexive weakening X → X.
	key := sigma[0]
	weak := gedlib.NewRule("weak", key.Pattern, key.X, key.X)
	r, err := eng.Implies(context.Background(), sigma, weak)
	if err != nil {
		panic(err)
	}
	fmt.Println("implied:", r.Implied)
	// Output:
	// implied: true
}

func ExampleEngine_Prove() {
	eng := gedlib.New()
	ctx := context.Background()

	// Transitivity: (a=1 → b=2) and (b=2 → c=3) imply (a=1 → c=3),
	// with a machine-checkable A_GED derivation.
	q := gedlib.NewPattern()
	q.AddVar("x", "p")
	sigma := gedlib.RuleSet{
		gedlib.NewRule("ab", q, []gedlib.Literal{gedlib.ConstLit("x", "a", gedlib.Int(1))},
			[]gedlib.Literal{gedlib.ConstLit("x", "b", gedlib.Int(2))}),
		gedlib.NewRule("bc", q, []gedlib.Literal{gedlib.ConstLit("x", "b", gedlib.Int(2))},
			[]gedlib.Literal{gedlib.ConstLit("x", "c", gedlib.Int(3))}),
	}
	phi := gedlib.NewRule("ac", q, []gedlib.Literal{gedlib.ConstLit("x", "a", gedlib.Int(1))},
		[]gedlib.Literal{gedlib.ConstLit("x", "c", gedlib.Int(3))})

	proof, err := eng.Prove(ctx, sigma, phi)
	if err != nil {
		panic(err)
	}
	fmt.Println("proof checks:", eng.CheckProof(ctx, sigma, proof) == nil)
	// Output:
	// proof checks: true
}

func ExampleEngine_Discover() {
	eng := gedlib.New()

	// Every person in this graph is a programmer — mining finds the
	// constant rule and verifies it exactly.
	g := gedlib.NewGraph()
	for i := 0; i < 3; i++ {
		g.AddNodeAttrs("person", map[gedlib.Attr]gedlib.Value{
			"type": gedlib.String("programmer"),
		})
	}
	mined, err := eng.Discover(context.Background(), g, gedlib.DiscoverOptions{})
	if err != nil {
		panic(err)
	}
	for _, d := range mined {
		fmt.Printf("%s (support %d)\n", d.GED.Name, d.Support)
	}
	// Output:
	// const:x.type@(person) (support 3)
}

func ExampleEngine_OptimizeQuery() {
	eng := gedlib.New()
	sigma, _ := gedlib.ParseRules(albumKeySrc)

	// Two albums sharing title and release are one node under the key,
	// so asking for such a pair with two different release years is
	// empty on every consistent database — detected without data.
	q := gedlib.NewPattern()
	q.AddVar("u", "album").AddVar("v", "album")
	query := &gedlib.Query{Pattern: q, X: []gedlib.Literal{
		gedlib.VarLit("u", "title", "v", "title"),
		gedlib.VarLit("u", "release", "v", "release"),
		gedlib.ConstLit("u", "release", gedlib.Int(1980)),
		gedlib.ConstLit("v", "release", gedlib.Int(1999)),
	}}
	r, err := eng.OptimizeQuery(context.Background(), query, sigma)
	if err != nil {
		panic(err)
	}
	fmt.Println("provably empty:", r.Empty)
	// Output:
	// provably empty: true
}

func ExampleParseRules() {
	sigma, err := gedlib.ParseRules(phi1Src)
	if err != nil {
		panic(err)
	}
	// FormatRules renders the set back in the same DSL.
	reparsed, err := gedlib.ParseRules(gedlib.FormatRules(sigma))
	if err != nil {
		panic(err)
	}
	fmt.Printf("%d rule(s); round-trips: %v\n", len(sigma), len(reparsed) == len(sigma))
	// Output:
	// 1 rule(s); round-trips: true
}
