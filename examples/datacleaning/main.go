// Data cleaning with GEDs: detect inconsistencies, repair what has a
// canonical fix, and report what needs a human. The repair is the chase
// read as an edit script (Theorem 1 makes it order-independent), exactly
// the "detect semantic inconsistencies and repair data" use the paper's
// introduction motivates.
//
//	go run ./examples/datacleaning
package main

import (
	"fmt"

	"gedlib/internal/ged"
	"gedlib/internal/gen"
	"gedlib/internal/graph"
	"gedlib/internal/reason"
	"gedlib/internal/repair"
)

func main() {
	// A small dirty knowledge base: a missing capital name (repairable),
	// a missing creator type (repairable), duplicate albums
	// (repairable by merging), and a family cycle (not repairable by
	// value edits — needs a human).
	g := graph.New()
	fin := g.AddNodeAttrs("country", map[graph.Attr]graph.Value{"name": graph.String("Finland")})
	hel := g.AddNodeAttrs("city", map[graph.Attr]graph.Value{"name": graph.String("Helsinki")})
	unnamed := g.AddNode("city")
	g.AddEdge(fin, "capital", hel)
	g.AddEdge(fin, "capital", unnamed)

	dev := g.AddNode("person")
	game := g.AddNodeAttrs("product", map[graph.Attr]graph.Value{"type": graph.String("video game")})
	g.AddEdge(dev, "create", game)

	for i := 0; i < 2; i++ {
		g.AddNodeAttrs("album", map[graph.Attr]graph.Value{
			"title": graph.String("Bleach"), "release": graph.Int(1989)})
	}

	rules := ged.Set{gen.PaperPhi1(), gen.PaperPhi2(), gen.PaperPsi2()}

	fmt.Println("violations before cleaning:")
	for _, v := range repair.Check(g, rules) {
		fmt.Println(" ", v)
	}

	r := repair.Run(g, rules)
	if !r.Repaired {
		fmt.Println("unrepairable:", r.Conflict)
		return
	}
	fmt.Println("\ncanonical repair script:")
	for _, e := range r.Edits {
		fmt.Println(" ", e)
	}
	fmt.Printf("\nrepaired graph: %d -> %d nodes; satisfies rules: %v\n",
		g.NumNodes(), r.Graph.NumNodes(), reason.Satisfies(r.Graph, rules))

	// Now add the Sclater cycle: no value edit fixes a forbidden
	// pattern, so the repair refuses and points at the rule.
	philip := g.AddNode("person")
	william := g.AddNode("person")
	g.AddEdge(philip, "child", william)
	g.AddEdge(philip, "parent", william)
	rules = append(rules, gen.PaperPhi4())
	r2 := repair.Run(g, rules)
	if r2.Repaired {
		fmt.Println("unexpected: cycle repaired")
		return
	}
	fmt.Printf("\nwith the child+parent cycle: unrepairable (%s via %s) — human review needed\n",
		r2.Conflict, r2.ConflictRule)
}
