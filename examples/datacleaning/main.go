// Data cleaning with GEDs: detect inconsistencies, repair what has a
// canonical fix, and report what needs a human. The repair is the chase
// read as an edit script (Theorem 1 makes it order-independent), exactly
// the "detect semantic inconsistencies and repair data" use the paper's
// introduction motivates.
//
//	go run ./examples/datacleaning
package main

import (
	"context"
	"fmt"
	"log"

	"gedlib"
	"gedlib/workload"
)

func main() {
	ctx := context.Background()
	eng := gedlib.New()

	// A small dirty knowledge base: a missing capital name (repairable),
	// a missing creator type (repairable), duplicate albums
	// (repairable by merging), and a family cycle (not repairable by
	// value edits — needs a human).
	g := gedlib.NewGraph()
	fin := g.AddNodeAttrs("country", map[gedlib.Attr]gedlib.Value{"name": gedlib.String("Finland")})
	hel := g.AddNodeAttrs("city", map[gedlib.Attr]gedlib.Value{"name": gedlib.String("Helsinki")})
	unnamed := g.AddNode("city")
	g.AddEdge(fin, "capital", hel)
	g.AddEdge(fin, "capital", unnamed)

	dev := g.AddNode("person")
	game := g.AddNodeAttrs("product", map[gedlib.Attr]gedlib.Value{"type": gedlib.String("video game")})
	g.AddEdge(dev, "create", game)

	for i := 0; i < 2; i++ {
		g.AddNodeAttrs("album", map[gedlib.Attr]gedlib.Value{
			"title": gedlib.String("Bleach"), "release": gedlib.Int(1989)})
	}

	rules := gedlib.RuleSet{workload.PaperPhi1(), workload.PaperPhi2(), workload.PaperPsi2()}

	fmt.Println("violations before cleaning:")
	vs, err := eng.Validate(ctx, g, rules)
	if err != nil {
		log.Fatal(err)
	}
	for _, v := range vs {
		fmt.Printf("  %s: %v fails %s\n", v.GED.Name, v.Match, v.Literal)
	}

	r, err := eng.Repair(ctx, g, rules)
	if err != nil {
		log.Fatal(err)
	}
	if !r.Repaired {
		fmt.Println("unrepairable:", r.Conflict)
		return
	}
	fmt.Println("\ncanonical repair script:")
	for _, e := range r.Edits {
		fmt.Println(" ", e)
	}
	fmt.Printf("\nrepaired graph: %d -> %d nodes; satisfies rules: %v\n",
		g.NumNodes(), r.Graph.NumNodes(), gedlib.Satisfies(r.Graph, rules))

	// Now add the Sclater cycle: no value edit fixes a forbidden
	// pattern, so the repair refuses and points at the rule.
	philip := g.AddNode("person")
	william := g.AddNode("person")
	g.AddEdge(philip, "child", william)
	g.AddEdge(philip, "parent", william)
	rules = append(rules, workload.PaperPhi4())
	r2, err := eng.Repair(ctx, g, rules)
	if err != nil {
		log.Fatal(err)
	}
	if r2.Repaired {
		fmt.Println("unexpected: cycle repaired")
		return
	}
	fmt.Printf("\nwith the child+parent cycle: unrepairable (%s via %s) — human review needed\n",
		r2.Conflict, r2.ConflictRule)
}
