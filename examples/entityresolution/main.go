// Entity resolution with recursively-defined keys: the album/artist
// scenario of Example 1(3). The keys are mutually recursive —
//
//	ψ₁: an album is identified by its title and the id of its artist,
//	ψ₂: an album is identified by its title and release year,
//	ψ₃: an artist is identified by name and the id of an album,
//
// so identifying one entity can only happen after identifying another.
// The chase resolves the recursion to a fixpoint: ψ₂ merges album
// duplicates, which lets ψ₃ merge their artists, which lets ψ₁ merge the
// remaining albums of those artists — a cascade no single pass finds.
//
//	go run ./examples/entityresolution
package main

import (
	"context"
	"fmt"
	"log"

	"gedlib"
	"gedlib/workload"
)

func main() {
	ctx := context.Background()
	eng := gedlib.New()

	g, stats := workload.MusicDB(99, 60, 0.35)
	fmt.Printf("catalog: %d artists, %d albums (%d duplicated pairs planted)\n",
		stats.Artists, stats.Albums, stats.DupPairs)

	keys := workload.PaperKeys()
	fmt.Println("\nkeys:")
	for _, k := range keys {
		fmt.Println(" ", k)
	}

	// Before resolution the catalog violates the keys.
	vs, err := eng.Validate(ctx, g, keys)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nkey violations before resolution: %d\n", len(vs))

	// Chase to a fixpoint: duplicates merge.
	res, err := eng.Chase(ctx, g, keys)
	if err != nil {
		log.Fatal(err)
	}
	if !res.Consistent() {
		panic("catalog chase must be consistent")
	}
	before := g.NumNodes()
	after := res.Coercion.Graph.NumNodes()
	fmt.Printf("chase: %d steps, %d entities -> %d entities (%d merges)\n",
		len(res.Steps), before, after, before-after)

	// The resolved catalog satisfies every key.
	resolved := res.Materialize()
	if !gedlib.Satisfies(resolved, keys) {
		panic("resolved catalog must satisfy the keys")
	}
	fmt.Println("resolved catalog satisfies ψ1–ψ3")

	// Show one merged class.
	for rep, members := range res.Eq.NodeClasses() {
		if len(members) > 1 {
			fmt.Printf("example merge: nodes %v are one %s entity\n",
				members, res.Eq.ClassLabel(rep))
			break
		}
	}
}
