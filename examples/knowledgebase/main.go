// Knowledge-base consistency checking: the Example 1 scenario of the
// paper. A synthetic Yago/DBPedia-style knowledge base is generated with
// planted inconsistencies, and the GEDs φ₁–φ₄ catch every one:
//
//   - a video game created by a psychologist (φ₁),
//
//   - a country with two differently-named capitals (φ₂),
//
//   - a flightless species of a flying class (φ₃, attribute inheritance
//     over wildcard patterns),
//
//   - a person who is both child and parent of the same person (φ₄, a
//     forbidding constraint).
//
//     go run ./examples/knowledgebase
package main

import (
	"context"
	"fmt"
	"log"

	"gedlib"
	"gedlib/workload"
)

func main() {
	ctx := context.Background()
	eng := gedlib.New(gedlib.WithWorkers(4))

	g, stats := workload.KnowledgeBase(42, 200, 0.15)
	fmt.Printf("knowledge base: %d nodes, %d edges\n", g.NumNodes(), g.NumEdges())
	fmt.Printf("planted: %d bad creators, %d double capitals, %d inheritance breaks, %d family cycles\n",
		stats.BadCreators, stats.BadCapitals, stats.BadInherits, stats.BadCycles)

	sigma := gedlib.RuleSet{workload.PaperPhi1(), workload.PaperPhi2(), workload.PaperPhi3(), workload.PaperPhi4()}
	fmt.Println("\nrules:")
	for _, d := range sigma {
		fmt.Println(" ", d)
	}

	vs, err := eng.Validate(ctx, g, sigma)
	if err != nil {
		log.Fatal(err)
	}
	byRule := map[string]int{}
	for _, v := range vs {
		byRule[v.GED.Name]++
	}
	fmt.Println("\nviolations found:")
	for _, d := range sigma {
		fmt.Printf("  %s: %d\n", d.Name, byRule[d.Name])
	}
	if len(vs) < stats.Total() {
		fmt.Println("MISSED SOME PLANTED ERRORS — this should not happen")
	} else {
		fmt.Printf("\nall %d planted inconsistencies caught (%d total violating matches)\n",
			stats.Total(), len(vs))
	}

	// The rule set itself is sensible: it has a model.
	if r, err := eng.CheckSat(ctx, sigma); err == nil && r.Satisfiable {
		fmt.Println("Σ is satisfiable — the rules do not conflict with each other")
	}
}
