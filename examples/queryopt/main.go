// Query optimization with GEDs: the application the paper motivates for
// billion-node graphs ("FDs and keys help us optimize queries that are
// costly on large graphs"). Chasing the query's canonical graph with the
// dependencies known to hold on the data shrinks the pattern (fewer
// joins), infers constant selections (index pushdown), and detects
// queries that are empty on every consistent database.
//
//	go run ./examples/queryopt
package main

import (
	"fmt"
	"log"
	"time"

	"gedlib/internal/chase"
	"gedlib/internal/ged"
	"gedlib/internal/gen"
	"gedlib/internal/graph"
	"gedlib/internal/optimize"
	"gedlib/internal/pattern"
)

func main() {
	// The catalog satisfies the recursive keys ψ1–ψ3 after resolution.
	keys := gen.PaperKeys()
	raw, _ := gen.MusicDB(21, 400, 0.3)
	res := chase.Run(raw, keys)
	if !res.Consistent() {
		log.Fatal("catalog resolution failed")
	}
	data := res.Materialize()
	fmt.Printf("catalog: %d entities (resolved)\n", data.NumNodes())

	// Query: pairs of albums sharing title and release — a dedup probe.
	q := pattern.New()
	q.AddVar("u", "album").AddVar("v", "album")
	query := &optimize.Query{Pattern: q, X: []ged.Literal{
		ged.VarLit("u", "title", "v", "title"),
		ged.VarLit("u", "release", "v", "release"),
	}}

	r := optimize.Rewrite(query, keys)
	fmt.Printf("\noriginal query: %s with %d selection literals\n", query.Pattern, len(query.X))
	fmt.Printf("rewritten:      %s with %d selection literals (%d vars merged)\n",
		r.Query.Pattern, len(r.Query.X), r.MergedVars)

	// Both forms return the same answers (over original variables), but
	// the rewritten one scans one variable instead of joining two.
	t0 := time.Now()
	orig := optimize.Answers(query, data)
	dOrig := time.Since(t0)
	t0 = time.Now()
	rewr := optimize.Answers(r.Query, data)
	dRewr := time.Since(t0)
	fmt.Printf("\nanswers: original %d in %s, rewritten %d in %s\n",
		len(orig), dOrig.Round(time.Microsecond), len(rewr), dRewr.Round(time.Microsecond))
	if len(orig) != len(rewr) {
		log.Fatal("rewrite changed the answer count — bug")
	}

	// A query whose selection contradicts the keys is empty on every
	// consistent database: two albums sharing title+release (hence, by
	// ψ2, being one node) cannot carry two different release years.
	contradictory := &optimize.Query{Pattern: q.Clone(), X: []ged.Literal{
		ged.VarLit("u", "title", "v", "title"),
		ged.VarLit("u", "release", "v", "release"),
		ged.ConstLit("u", "release", graph.Int(1980)),
		ged.ConstLit("v", "release", graph.Int(1999)),
	}}
	cr := optimize.Rewrite(contradictory, keys)
	fmt.Printf("\ncontradictory query detected empty without data access: %v\n", cr.Empty)
	if !cr.Empty {
		log.Fatal("expected the contradictory query to be empty")
	}
}
