// Query optimization with GEDs: the application the paper motivates for
// billion-node graphs ("FDs and keys help us optimize queries that are
// costly on large graphs"). Chasing the query's canonical graph with the
// dependencies known to hold on the data shrinks the pattern (fewer
// joins), infers constant selections (index pushdown), and detects
// queries that are empty on every consistent database.
//
//	go run ./examples/queryopt
package main

import (
	"context"
	"fmt"
	"log"
	"time"

	"gedlib"
	"gedlib/workload"
)

func main() {
	ctx := context.Background()
	eng := gedlib.New()

	// The catalog satisfies the recursive keys ψ1–ψ3 after resolution.
	keys := workload.PaperKeys()
	raw, _ := workload.MusicDB(21, 400, 0.3)
	res, err := eng.Chase(ctx, raw, keys)
	if err != nil {
		log.Fatal(err)
	}
	if !res.Consistent() {
		log.Fatal("catalog resolution failed")
	}
	data := res.Materialize()
	fmt.Printf("catalog: %d entities (resolved)\n", data.NumNodes())

	// Query: pairs of albums sharing title and release — a dedup probe.
	q := gedlib.NewPattern()
	q.AddVar("u", "album").AddVar("v", "album")
	query := &gedlib.Query{Pattern: q, X: []gedlib.Literal{
		gedlib.VarLit("u", "title", "v", "title"),
		gedlib.VarLit("u", "release", "v", "release"),
	}}

	r, err := eng.OptimizeQuery(ctx, query, keys)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\noriginal query: %s with %d selection literals\n", query.Pattern, len(query.X))
	fmt.Printf("rewritten:      %s with %d selection literals (%d vars merged)\n",
		r.Query.Pattern, len(r.Query.X), r.MergedVars)

	// Both forms return the same answers (over original variables), but
	// the rewritten one scans one variable instead of joining two.
	t0 := time.Now()
	orig := gedlib.Answers(query, data)
	dOrig := time.Since(t0)
	t0 = time.Now()
	rewr := gedlib.Answers(r.Query, data)
	dRewr := time.Since(t0)
	fmt.Printf("\nanswers: original %d in %s, rewritten %d in %s\n",
		len(orig), dOrig.Round(time.Microsecond), len(rewr), dRewr.Round(time.Microsecond))
	if len(orig) != len(rewr) {
		log.Fatal("rewrite changed the answer count — bug")
	}

	// A query whose selection contradicts the keys is empty on every
	// consistent database: two albums sharing title+release (hence, by
	// ψ2, being one node) cannot carry two different release years.
	contradictory := &gedlib.Query{Pattern: q.Clone(), X: []gedlib.Literal{
		gedlib.VarLit("u", "title", "v", "title"),
		gedlib.VarLit("u", "release", "v", "release"),
		gedlib.ConstLit("u", "release", gedlib.Int(1980)),
		gedlib.ConstLit("v", "release", gedlib.Int(1999)),
	}}
	cr, err := eng.OptimizeQuery(ctx, contradictory, keys)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\ncontradictory query detected empty without data access: %v\n", cr.Empty)
	if !cr.Empty {
		log.Fatal("expected the contradictory query to be empty")
	}
}
