// Quickstart: define a graph and a GED, validate, reason, and chase —
// entirely through the public gedlib facade.
//
//	go run ./examples/quickstart
package main

import (
	"context"
	"fmt"
	"log"

	"gedlib"
)

const rules = `
# φ1 of the paper: a video game can only be created by programmers.
ged phi1 on (x:person)-[create]->(y:product) {
  when y.type = "video game"
  then x.type = "programmer"
}

# Albums are identified by title and release year.
ged albumKey on (a:album), (b:album) {
  when a.title = b.title and a.release = b.release
  then a.id = b.id
}
`

func main() {
	ctx := context.Background()
	eng := gedlib.New()

	// 1. Parse dependencies from the DSL.
	sigma, err := gedlib.ParseRules(rules)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("loaded rules:")
	for _, d := range sigma {
		fmt.Println(" ", d)
	}

	// 2. Build a small property graph.
	g := gedlib.NewGraph()
	dev := g.AddNodeAttrs("person", map[gedlib.Attr]gedlib.Value{
		"name": gedlib.String("Tony Gibson"),
		"type": gedlib.String("psychologist"), // the Yago3 inconsistency
	})
	game := g.AddNodeAttrs("product", map[gedlib.Attr]gedlib.Value{
		"name": gedlib.String("Ghetto Blaster"),
		"type": gedlib.String("video game"),
	})
	g.AddEdge(dev, "create", game)
	for i := 0; i < 2; i++ {
		g.AddNodeAttrs("album", map[gedlib.Attr]gedlib.Value{
			"title":   gedlib.String("Bleach"),
			"release": gedlib.Int(1989),
		})
	}

	// 3. Validate: both rules are violated.
	fmt.Println("\nviolations:")
	vs, err := eng.Validate(ctx, g, sigma)
	if err != nil {
		log.Fatal(err)
	}
	for _, v := range vs {
		fmt.Printf("  %s at %v fails %s\n", v.GED.Name, v.Match, v.Literal)
	}

	// 4. Repair the type error and let the chase merge the duplicate
	// albums (entity resolution).
	g.SetAttr(dev, "type", gedlib.String("programmer"))
	res, err := eng.Chase(ctx, g, sigma)
	if err != nil {
		log.Fatal(err)
	}
	if !res.Consistent() {
		log.Fatal("chase failed: ", res.Eq.Conflict())
	}
	fmt.Printf("\nchase applied %d steps; %d nodes -> %d nodes\n",
		len(res.Steps), g.NumNodes(), res.Coercion.Graph.NumNodes())
	if !gedlib.Satisfies(res.Materialize(), sigma) {
		log.Fatal("chase result must satisfy Σ")
	}
	fmt.Println("quotient graph satisfies Σ")

	// 5. Static analyses: the rules are satisfiable, and a stronger key
	// follows from the album key.
	sat, err := eng.CheckSat(ctx, sigma)
	if err != nil {
		log.Fatal(err)
	}
	if !sat.Satisfiable {
		log.Fatal("Σ should be satisfiable")
	}
	stronger := gedlib.NewRule("strongerKey", sigma[1].Pattern,
		append(append([]gedlib.Literal{}, sigma[1].X...), gedlib.VarLit("a", "label", "b", "label")),
		sigma[1].Y)
	r, err := eng.Implies(ctx, sigma, stronger)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("Σ implies %s: %v\n", stronger.Name, r.Implied)
}
