// Quickstart: define a graph and a GED, validate, reason, and chase.
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"log"

	"gedlib/internal/chase"
	"gedlib/internal/ged"
	"gedlib/internal/gedio"
	"gedlib/internal/graph"
	"gedlib/internal/reason"
)

const rules = `
# φ1 of the paper: a video game can only be created by programmers.
ged phi1 on (x:person)-[create]->(y:product) {
  when y.type = "video game"
  then x.type = "programmer"
}

# Albums are identified by title and release year.
ged albumKey on (a:album), (b:album) {
  when a.title = b.title and a.release = b.release
  then a.id = b.id
}
`

func main() {
	// 1. Parse dependencies from the DSL.
	parsed, err := gedio.Parse(rules)
	if err != nil {
		log.Fatal(err)
	}
	sigma, err := gedio.GEDs(parsed)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("loaded rules:")
	for _, d := range sigma {
		fmt.Println(" ", d)
	}

	// 2. Build a small property graph.
	g := graph.New()
	dev := g.AddNodeAttrs("person", map[graph.Attr]graph.Value{
		"name": graph.String("Tony Gibson"),
		"type": graph.String("psychologist"), // the Yago3 inconsistency
	})
	game := g.AddNodeAttrs("product", map[graph.Attr]graph.Value{
		"name": graph.String("Ghetto Blaster"),
		"type": graph.String("video game"),
	})
	g.AddEdge(dev, "create", game)
	for i := 0; i < 2; i++ {
		g.AddNodeAttrs("album", map[graph.Attr]graph.Value{
			"title":   graph.String("Bleach"),
			"release": graph.Int(1989),
		})
	}

	// 3. Validate: both rules are violated.
	fmt.Println("\nviolations:")
	for _, v := range reason.Validate(g, sigma, 0) {
		fmt.Printf("  %s at %v fails %s\n", v.GED.Name, v.Match, v.Literal)
	}

	// 4. Repair the type error and let the chase merge the duplicate
	// albums (entity resolution).
	g.SetAttr(dev, "type", graph.String("programmer"))
	res := chase.Run(g, sigma)
	if !res.Consistent() {
		log.Fatal("chase failed: ", res.Eq.Conflict())
	}
	fmt.Printf("\nchase applied %d steps; %d nodes -> %d nodes\n",
		len(res.Steps), g.NumNodes(), res.Coercion.Graph.NumNodes())
	if !reason.Satisfies(res.Materialize(), sigma) {
		log.Fatal("chase result must satisfy Σ")
	}
	fmt.Println("quotient graph satisfies Σ")

	// 5. Static analyses: the rules are satisfiable, and a stronger key
	// follows from the album key.
	if !reason.CheckSat(sigma).Satisfiable {
		log.Fatal("Σ should be satisfiable")
	}
	stronger := ged.New("strongerKey", sigma[1].Pattern,
		append(append([]ged.Literal{}, sigma[1].X...), ged.VarLit("a", "label", "b", "label")),
		sigma[1].Y)
	r := reason.Implies(sigma, stronger)
	fmt.Printf("Σ implies %s: %v\n", stronger.Name, r.Implied)
}
