// Spam detection on a social network: the φ₅ scenario of Example 1.
// Accounts that share liked blogs with a confirmed fake account and post
// blogs carrying the same peculiar keyword are flagged. Validation finds
// the direct violations; the chase *propagates* the flag — enforcing φ₅
// marks accounts fake, which triggers the rule on further accounts —
// demonstrating GEDs as inference rules, not just checks.
//
//	go run ./examples/spamdetect
package main

import (
	"context"
	"fmt"
	"log"

	"gedlib"
	"gedlib/workload"
)

func main() {
	ctx := context.Background()
	eng := gedlib.New()

	g, stats := workload.SocialNetwork(7, 6, 8)
	fmt.Printf("social graph: %d nodes, %d edges, %d confirmed fakes, %d spam-posting accounts\n",
		g.NumNodes(), g.NumEdges(), stats.SeedFakes, len(stats.Spammy))

	phi5 := workload.PaperPhi5(2)
	fmt.Println("\nrule:", phi5)

	// Validation: accounts violating φ₅ right now.
	vs, err := eng.Validate(ctx, g, gedlib.RuleSet{phi5})
	if err != nil {
		log.Fatal(err)
	}
	direct := map[gedlib.NodeID]bool{}
	for _, v := range vs {
		direct[v.Match["x"]] = true
	}
	fmt.Printf("\ndirect violations flag %d accounts\n", len(direct))

	// Chase: enforce the rule to a fixpoint. Every account reachable
	// through shared-likes chains from a seed fake gets is_fake = 1.
	res, err := eng.Chase(ctx, g.Clone(), gedlib.RuleSet{phi5})
	if err != nil {
		log.Fatal(err)
	}
	if !res.Consistent() {
		panic("chase must be consistent: the rule only sets flags")
	}
	flagged := 0
	for _, id := range g.Nodes() {
		if g.Label(id) != "account" {
			continue
		}
		if v, ok := res.Eq.AttrConst(id, "is_fake"); ok && v.Equal(gedlib.Int(1)) {
			flagged++
		}
	}
	fmt.Printf("chase fixpoint (%d steps) flags %d accounts as fake\n", len(res.Steps), flagged)
	if flagged < len(direct) {
		panic("chase must flag at least the direct violators")
	}

	// The fixpoint graph satisfies the rule.
	if !gedlib.Satisfies(res.Materialize(), gedlib.RuleSet{phi5}) {
		panic("fixpoint must satisfy φ5")
	}
	fmt.Println("fixpoint graph satisfies φ5 — no unflagged spam remains")
}
