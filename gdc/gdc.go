// Package gdc exposes graph denial constraints — the GED extension of
// Section 8.1 with ordered comparison predicates (<, <=, >, >=, !=) —
// through the same vocabulary as the root gedlib package. Because
// inequalities lift satisfiability and implication beyond the chase
// (Theorem 8), the analyses here return three-valued Verdicts: True and
// False are certified, Unknown means the branch budget was exhausted.
package gdc

import (
	"gedlib"
	"gedlib/internal/gdc"
)

// GDC is a graph denial constraint Q[x̄](X → Y) whose literals may use
// ordered comparisons.
type GDC = gdc.GDC

// Set is a set of GDCs.
type Set = gdc.Set

// Violation is a match violating a GDC.
type Violation = gdc.Violation

// Verdict is a three-valued answer; True and False are certified.
type Verdict = gdc.Verdict

// Three-valued verdicts.
const (
	False   = gdc.False
	True    = gdc.True
	Unknown = gdc.Unknown
)

// SatResult reports a GDC satisfiability analysis.
type SatResult = gdc.SatResult

// ImplResult reports a GDC implication analysis.
type ImplResult = gdc.ImplResult

// New returns the GDC Q[x̄](X → Y).
func New(name string, q *gedlib.Pattern, x, y []gedlib.Literal) *GDC {
	return gdc.New(name, q, x, y)
}

// FromGED reads a plain rule as a GDC (every GED is one).
func FromGED(r *gedlib.Rule) *GDC { return gdc.FromGED(r) }

// DomainConstraint returns the GDCs asserting that attribute a of every
// tau-labeled node takes one of the given values.
func DomainConstraint(tau gedlib.Label, a gedlib.Attr, domain ...gedlib.Value) Set {
	return gdc.DomainConstraint(tau, a, domain...)
}

// Validate finds violations of Σ in g, up to limit (<= 0 means all).
func Validate(g *gedlib.Graph, sigma Set, limit int) []Violation {
	return gdc.Validate(g, sigma, limit)
}

// Satisfies reports g ⊨ Σ.
func Satisfies(g *gedlib.Graph, sigma Set) bool { return gdc.Satisfies(g, sigma) }

// CheckSat decides (three-valued) whether Σ has a model, certifying
// True with a witness.
func CheckSat(sigma Set) *SatResult { return gdc.CheckSat(sigma) }

// Implies decides (three-valued) whether Σ ⊨ φ, certifying False with a
// counterexample.
func Implies(sigma Set, phi *GDC) *ImplResult { return gdc.Implies(sigma, phi) }
