// Package gedor exposes GED∨ — the GED extension of Section 8.2 with
// disjunctive consequents — through the same vocabulary as the root
// gedlib package. Satisfiability and implication branch over disjunct
// choices (Theorems 9 and 10), so the analyses return three-valued
// Verdicts: True and False are certified, Unknown means the branch
// budget was exhausted.
package gedor

import (
	"gedlib"
	"gedlib/internal/gedor"
)

// GEDor is a disjunctive dependency Q[x̄](X → l₁ ∨ ... ∨ lₖ).
type GEDor = gedor.GEDor

// Set is a set of GED∨s.
type Set = gedor.Set

// Violation is a match satisfying X with every disjunct of Y false.
type Violation = gedor.Violation

// Verdict is a three-valued answer; True and False are certified.
type Verdict = gedor.Verdict

// Three-valued verdicts.
const (
	False   = gedor.False
	True    = gedor.True
	Unknown = gedor.Unknown
)

// SatResult reports a GED∨ satisfiability analysis.
type SatResult = gedor.SatResult

// ImplResult reports a GED∨ implication analysis.
type ImplResult = gedor.ImplResult

// New returns the GED∨ Q[x̄](X → Y) with Y read disjunctively.
func New(name string, q *gedlib.Pattern, x, y []gedlib.Literal) *GEDor {
	return gedor.New(name, q, x, y)
}

// FromGED translates a plain rule into the equivalent GED∨s (one per
// consequent literal).
func FromGED(r *gedlib.Rule) []*GEDor { return gedor.FromGED(r) }

// DomainConstraint returns the GED∨ asserting that attribute a of every
// tau-labeled node takes one of the given values.
func DomainConstraint(tau gedlib.Label, a gedlib.Attr, domain ...gedlib.Value) *GEDor {
	return gedor.DomainConstraint(tau, a, domain...)
}

// Validate finds violations of Σ in g, up to limit (<= 0 means all).
func Validate(g *gedlib.Graph, sigma Set, limit int) []Violation {
	return gedor.Validate(g, sigma, limit)
}

// Satisfies reports g ⊨ Σ.
func Satisfies(g *gedlib.Graph, sigma Set) bool { return gedor.Satisfies(g, sigma) }

// CheckSat decides (three-valued) whether Σ has a model, certifying
// True with a witness.
func CheckSat(sigma Set) *SatResult { return gedor.CheckSat(sigma) }

// Implies decides (three-valued) whether Σ ⊨ φ, certifying False with a
// counterexample.
func Implies(sigma Set, phi *GEDor) *ImplResult { return gedor.Implies(sigma, phi) }
