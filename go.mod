module gedlib

go 1.24
