package gedlib_test

// End-to-end integration: the full pipeline a user of the library walks
// through — parse rules from the DSL, load a graph from JSON, validate,
// repair, re-validate, mine new rules, prune them by implication, and
// produce a checkable A_GED proof — all against the paper's running
// knowledge-base scenario, and all through the public facade.

import (
	"context"
	"os"
	"strings"
	"testing"

	"gedlib"
	"gedlib/workload"
)

func TestEndToEndPipeline(t *testing.T) {
	ctx := context.Background()
	eng := gedlib.New()

	// 1. Rules from the DSL (the testdata files the CLI uses).
	ruleSrc, err := os.ReadFile("testdata/rules.ged")
	if err != nil {
		t.Fatal(err)
	}
	sigma, err := gedlib.ParseRules(string(ruleSrc))
	if err != nil {
		t.Fatal(err)
	}
	if len(sigma) != 2 {
		t.Fatalf("expected 2 rules, got %d", len(sigma))
	}

	// 2. Graph from JSON.
	graphSrc, err := os.ReadFile("testdata/kb.json")
	if err != nil {
		t.Fatal(err)
	}
	g, ids, err := gedlib.LoadGraph(graphSrc)
	if err != nil {
		t.Fatal(err)
	}

	// 3. Validate: the KB is dirty (wrong creator type, two capitals).
	vs, err := eng.Validate(ctx, g, sigma)
	if err != nil {
		t.Fatal(err)
	}
	if len(vs) < 2 {
		t.Fatalf("expected at least 2 violations, got %d", len(vs))
	}
	// Parallel validation agrees.
	pvs, err := gedlib.New(gedlib.WithWorkers(4)).Validate(ctx, g, sigma)
	if err != nil {
		t.Fatal(err)
	}
	if len(pvs) != len(vs) {
		t.Fatalf("parallel validation disagrees: %d vs %d", len(pvs), len(vs))
	}

	// 4. Repair. The creator type contradicts a constant — unrepairable
	// as-is, so the chase reports the conflict.
	r, err := eng.Repair(ctx, g, sigma)
	if err != nil {
		t.Fatal(err)
	}
	if r.Repaired {
		t.Fatal("psychologist-vs-programmer conflict must be unrepairable")
	}
	// Clear the contradicting value and repair again: now the constant
	// can be written and the capital names unified.
	g.SetAttr(ids["gibson"], "type", gedlib.String("programmer"))
	g.SetAttr(ids["stpetersburg"], "name", gedlib.String("Helsinki"))
	r, err = eng.Repair(ctx, g, sigma)
	if err != nil {
		t.Fatal(err)
	}
	if !r.Repaired {
		t.Fatalf("repair failed: %v", r.Conflict)
	}
	if !gedlib.Satisfies(r.Graph, sigma) {
		t.Fatal("repaired graph must satisfy the rules")
	}

	// 5. The rule set is satisfiable and sensible.
	sat, err := eng.CheckSat(ctx, sigma)
	if err != nil {
		t.Fatal(err)
	}
	if !sat.Satisfiable || !gedlib.IsModel(sat.Model, sigma) {
		t.Fatal("rule set must be satisfiable with a certified model")
	}

	// 6. Implication with a proof: the capital rule implies its
	// reflexive weakening, with a machine-checked A_GED derivation.
	phi2 := sigma[1]
	weak := gedlib.NewRule("weak", phi2.Pattern, phi2.Y, phi2.Y)
	impl, err := eng.Implies(ctx, sigma, weak)
	if err != nil {
		t.Fatal(err)
	}
	if !impl.Implied {
		t.Fatal("X → X must be implied")
	}
	proof, err := eng.Prove(ctx, sigma, weak)
	if err != nil {
		t.Fatal(err)
	}
	if err := eng.CheckProof(ctx, sigma, proof); err != nil {
		t.Fatalf("proof rejected: %v\n%s", err, proof)
	}

	// 7. Mine rules from the repaired KB; every mined rule holds and
	// none is implied by another kept rule.
	mined, err := eng.Discover(ctx, r.Graph, gedlib.DiscoverOptions{MinSupport: 1})
	if err != nil {
		t.Fatal(err)
	}
	for _, d := range mined {
		if !gedlib.Satisfies(r.Graph, gedlib.RuleSet{d.GED}) {
			t.Fatalf("mined rule does not hold: %s", d.GED)
		}
	}

	// 8. Query optimization: asking for a country with two capitals of
	// different names is empty on every repaired database.
	q := gedlib.NewPattern()
	q.AddVar("c", "country").AddVar("y", "city").AddVar("z", "city")
	q.AddEdge("c", "capital", "y")
	q.AddEdge("c", "capital", "z")
	query := &gedlib.Query{Pattern: q, X: []gedlib.Literal{
		gedlib.ConstLit("y", "name", gedlib.String("Helsinki")),
		gedlib.ConstLit("z", "name", gedlib.String("Saint Petersburg")),
	}}
	opt, err := eng.OptimizeQuery(ctx, query, sigma)
	if err != nil {
		t.Fatal(err)
	}
	if !opt.Empty {
		t.Fatal("contradictory query must be detected empty")
	}
}

func TestEndToEndEntityResolutionScenario(t *testing.T) {
	ctx := context.Background()
	eng := gedlib.New()

	// The Example 1(3) scenario driven through the public surfaces:
	// recursive keys parsed from DSL text, resolution via repair, and
	// the resolved catalog round-tripped through JSON.
	src := `
ged psi2 on (x:album), (x':album) {
  when x.title = x'.title and x.release = x'.release
  then x.id = x'.id
}
ged psi1 on (x:album)-[by]->(z:artist), (x':album)-[by]->(z':artist) {
  when x.title = x'.title and z.id = z'.id
  then x.id = x'.id
}
ged psi3 on (x:album)-[by]->(z:artist), (x':album)-[by]->(z':artist) {
  when x.id = x'.id and z.name = z'.name
  then z.id = z'.id
}
`
	keys, err := gedlib.ParseRules(src)
	if err != nil {
		t.Fatal(err)
	}
	for _, k := range keys {
		if !gedlib.IsKey(k) {
			t.Errorf("%s should be recognized as a GKey", k.Name)
		}
	}

	g, stats := workload.MusicDB(31, 40, 0.4)
	if stats.DupPairs == 0 {
		t.Skip("no duplicates planted")
	}
	r, err := eng.Repair(ctx, g, keys)
	if err != nil {
		t.Fatal(err)
	}
	if !r.Repaired {
		t.Fatalf("resolution failed: %v", r.Conflict)
	}
	if r.Graph.NumNodes() >= g.NumNodes() {
		t.Fatal("duplicates must merge")
	}
	if !gedlib.Satisfies(r.Graph, keys) {
		t.Fatal("resolved catalog must satisfy the keys")
	}

	// JSON round trip of the resolved catalog.
	data, err := gedlib.MarshalGraph(r.Graph)
	if err != nil {
		t.Fatal(err)
	}
	back, _, err := gedlib.LoadGraph(data)
	if err != nil {
		t.Fatal(err)
	}
	if !gedlib.Satisfies(back, keys) {
		t.Fatal("round-tripped catalog must still satisfy the keys")
	}
	if !strings.Contains(string(data), "album") {
		t.Fatal("serialized catalog looks wrong")
	}
}
