package gedlib_test

// End-to-end integration: the full pipeline a user of the library walks
// through — parse rules from the DSL, load a graph from JSON, validate,
// repair, re-validate, mine new rules, prune them by implication, and
// produce a checkable A_GED proof — all against the paper's running
// knowledge-base scenario.

import (
	"os"
	"strings"
	"testing"

	"gedlib/internal/axiom"
	"gedlib/internal/discover"
	"gedlib/internal/ged"
	"gedlib/internal/gedio"
	"gedlib/internal/gen"
	"gedlib/internal/graph"
	"gedlib/internal/optimize"
	"gedlib/internal/pattern"
	"gedlib/internal/reason"
	"gedlib/internal/repair"
)

func TestEndToEndPipeline(t *testing.T) {
	// 1. Rules from the DSL (the testdata files the CLI uses).
	ruleSrc, err := os.ReadFile("testdata/rules.ged")
	if err != nil {
		t.Fatal(err)
	}
	parsed, err := gedio.Parse(string(ruleSrc))
	if err != nil {
		t.Fatal(err)
	}
	sigma, err := gedio.GEDs(parsed)
	if err != nil {
		t.Fatal(err)
	}
	if len(sigma) != 2 {
		t.Fatalf("expected 2 rules, got %d", len(sigma))
	}

	// 2. Graph from JSON.
	graphSrc, err := os.ReadFile("testdata/kb.json")
	if err != nil {
		t.Fatal(err)
	}
	g, ids, err := gedio.UnmarshalGraph(graphSrc)
	if err != nil {
		t.Fatal(err)
	}

	// 3. Validate: the KB is dirty (wrong creator type, two capitals).
	vs := reason.Validate(g, sigma, 0)
	if len(vs) < 2 {
		t.Fatalf("expected at least 2 violations, got %d", len(vs))
	}
	// Parallel validation agrees.
	pvs := reason.ValidateParallel(g, sigma, 0, 4)
	if len(pvs) != len(vs) {
		t.Fatalf("parallel validation disagrees: %d vs %d", len(pvs), len(vs))
	}

	// 4. Repair. The creator type contradicts a constant — unrepairable
	// as-is, so the chase reports the conflict.
	r := repair.Run(g, sigma)
	if r.Repaired {
		t.Fatal("psychologist-vs-programmer conflict must be unrepairable")
	}
	// Clear the contradicting value and repair again: now the constant
	// can be written and the capital names unified.
	g.SetAttr(ids["gibson"], "type", graph.String("programmer"))
	g.SetAttr(ids["stpetersburg"], "name", graph.String("Helsinki"))
	r = repair.Run(g, sigma)
	if !r.Repaired {
		t.Fatalf("repair failed: %v", r.Conflict)
	}
	if !reason.Satisfies(r.Graph, sigma) {
		t.Fatal("repaired graph must satisfy the rules")
	}

	// 5. The rule set is satisfiable and sensible.
	sat := reason.CheckSat(sigma)
	if !sat.Satisfiable || !reason.IsModel(sat.Model, sigma) {
		t.Fatal("rule set must be satisfiable with a certified model")
	}

	// 6. Implication with a proof: the capital rule implies its
	// reflexive weakening, with a machine-checked A_GED derivation.
	phi2 := sigma[1]
	weak := ged.New("weak", phi2.Pattern, phi2.Y, phi2.Y)
	if !reason.Implies(sigma, weak).Implied {
		t.Fatal("X → X must be implied")
	}
	proof, err := axiom.Prove(sigma, weak)
	if err != nil {
		t.Fatal(err)
	}
	if err := axiom.Check(sigma, proof); err != nil {
		t.Fatalf("proof rejected: %v\n%s", err, proof)
	}

	// 7. Mine rules from the repaired KB; every mined rule holds and
	// none is implied by another kept rule.
	mined := discover.GFDs(r.Graph, discover.Options{MinSupport: 1})
	for _, d := range mined {
		if !reason.Satisfies(r.Graph, ged.Set{d.GED}) {
			t.Fatalf("mined rule does not hold: %s", d.GED)
		}
	}

	// 8. Query optimization: asking for a country with two capitals of
	// different names is empty on every repaired database.
	q := pattern.New()
	q.AddVar("c", "country").AddVar("y", "city").AddVar("z", "city")
	q.AddEdge("c", "capital", "y")
	q.AddEdge("c", "capital", "z")
	query := &optimize.Query{Pattern: q, X: []ged.Literal{
		ged.ConstLit("y", "name", graph.String("Helsinki")),
		ged.ConstLit("z", "name", graph.String("Saint Petersburg")),
	}}
	opt := optimize.Rewrite(query, sigma)
	if !opt.Empty {
		t.Fatal("contradictory query must be detected empty")
	}
}

func TestEndToEndEntityResolutionScenario(t *testing.T) {
	// The Example 1(3) scenario driven through the public surfaces:
	// recursive keys parsed from DSL text, resolution via repair, and
	// the resolved catalog round-tripped through JSON.
	src := `
ged psi2 on (x:album), (x':album) {
  when x.title = x'.title and x.release = x'.release
  then x.id = x'.id
}
ged psi1 on (x:album)-[by]->(z:artist), (x':album)-[by]->(z':artist) {
  when x.title = x'.title and z.id = z'.id
  then x.id = x'.id
}
ged psi3 on (x:album)-[by]->(z:artist), (x':album)-[by]->(z':artist) {
  when x.id = x'.id and z.name = z'.name
  then z.id = z'.id
}
`
	parsed, err := gedio.Parse(src)
	if err != nil {
		t.Fatal(err)
	}
	keys, err := gedio.GEDs(parsed)
	if err != nil {
		t.Fatal(err)
	}
	for _, k := range keys {
		if !ged.IsGKey(k) {
			t.Errorf("%s should be recognized as a GKey", k.Name)
		}
	}

	g, stats := gen.MusicDB(31, 40, 0.4)
	if stats.DupPairs == 0 {
		t.Skip("no duplicates planted")
	}
	r := repair.Run(g, keys)
	if !r.Repaired {
		t.Fatalf("resolution failed: %v", r.Conflict)
	}
	if r.Graph.NumNodes() >= g.NumNodes() {
		t.Fatal("duplicates must merge")
	}
	if !reason.Satisfies(r.Graph, keys) {
		t.Fatal("resolved catalog must satisfy the keys")
	}

	// JSON round trip of the resolved catalog.
	data, err := gedio.MarshalGraph(r.Graph)
	if err != nil {
		t.Fatal(err)
	}
	back, _, err := gedio.UnmarshalGraph(data)
	if err != nil {
		t.Fatal(err)
	}
	if !reason.Satisfies(back, keys) {
		t.Fatal("round-tripped catalog must still satisfy the keys")
	}
	if !strings.Contains(string(data), "album") {
		t.Fatal("serialized catalog looks wrong")
	}
}
