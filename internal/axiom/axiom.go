// Package axiom implements the finite axiomatization A_GED of Section 6
// of "Dependencies for Graphs" (Fan & Lu, PODS 2017): the six inference
// rules GED1–GED6 of Table 2, machine-checkable proof objects, a proof
// checker, and a proof generator that realizes the completeness argument
// of Theorem 7 by replaying chase traces.
//
// A proof of φ from Σ is a sequence of GEDs, each either a member of Σ
// or deduced from earlier entries by one rule. Following the paper, the
// intermediate literal form c = x.A is permitted inside proofs (it
// arises from GED3 flips of constant literals).
package axiom

import (
	"fmt"

	"strings"

	"gedlib/internal/chase"
	"gedlib/internal/ged"
	"gedlib/internal/graph"
	"gedlib/internal/pattern"
)

// Rule identifies the inference rule justifying a step.
type Rule uint8

const (
	// RulePremise introduces a member of Σ.
	RulePremise Rule = iota
	// RuleGED1 is reflexivity: Σ ⊢ Q[x̄](X → X ∧ X_id).
	RuleGED1
	// RuleGED2 enforces id-literal semantics: from (u.id = v.id) ∈ Y and
	// attribute A appearing on u or v in Y, deduce Q[x̄](X → u.A = v.A).
	RuleGED2
	// RuleGED3 is symmetry: from (u = v) ∈ Y deduce Q[x̄](X → v = u).
	RuleGED3
	// RuleGED4 is transitivity: from (u1 = v), (v = u2) ∈ Y deduce
	// Q[x̄](X → u1 = u2).
	RuleGED4
	// RuleGED5 is ex falso: when Eq_X ∪ Eq_Y is inconsistent, deduce
	// Q[x̄](X → Y1) for any literal set Y1 of x̄.
	RuleGED5
	// RuleGED6 is pattern composition: from Q[x̄](X → Y) with consistent
	// Eq_X ∪ Eq_Y, a proven Q1[x̄1](X1 → Y1), and a match h of Q1 in the
	// coercion (G_Q)_{Eq_X ∪ Eq_Y} with h(x̄1) ⊨ X1, deduce
	// Q[x̄](X → Y ∧ h(Y1)).
	RuleGED6
)

// String names the rule.
func (r Rule) String() string {
	switch r {
	case RulePremise:
		return "premise"
	case RuleGED1:
		return "GED1"
	case RuleGED2:
		return "GED2"
	case RuleGED3:
		return "GED3"
	case RuleGED4:
		return "GED4"
	case RuleGED5:
		return "GED5"
	default:
		return "GED6"
	}
}

// Step is one line of a proof.
type Step struct {
	// Rule is the justification.
	Rule Rule
	// Concl is the GED this step concludes.
	Concl *ged.GED
	// Prem are indices of earlier steps used as premises: one for
	// GED2–GED5, two (main, side) for GED6, none otherwise.
	Prem []int
	// SigmaIndex identifies the Σ member for RulePremise.
	SigmaIndex int
	// Match is GED6's homomorphism h, mapping the side premise's
	// variables to variables of the main premise's pattern.
	Match map[pattern.Var]pattern.Var
}

// Proof is a checkable derivation Σ ⊢ φ.
type Proof struct {
	// Target is φ.
	Target *ged.GED
	// Steps is the derivation; the last step concludes φ.
	Steps []Step
}

// Len returns the number of proof lines.
func (p *Proof) Len() int { return len(p.Steps) }

// String renders the proof, one numbered line per step.
func (p *Proof) String() string {
	var b strings.Builder
	for i, s := range p.Steps {
		fmt.Fprintf(&b, "(%d) %-8s", i+1, s.Rule)
		if len(s.Prem) > 0 {
			fmt.Fprintf(&b, " from %v", premPlus(s.Prem))
		}
		fmt.Fprintf(&b, ": %s\n", s.Concl)
	}
	return b.String()
}

func premPlus(ps []int) []int {
	out := make([]int, len(ps))
	for i, p := range ps {
		out[i] = p + 1
	}
	return out
}

// ---- literal and GED comparison helpers ----

// litKey canonically identifies a literal for set comparison.
func litKey(l ged.Literal) string { return l.String() }

// litSet builds the set view of a literal list.
func litSet(ls []ged.Literal) map[string]bool {
	m := make(map[string]bool, len(ls))
	for _, l := range ls {
		m[litKey(l)] = true
	}
	return m
}

// litSetEqual reports whether two literal lists denote the same set.
func litSetEqual(a, b []ged.Literal) bool {
	sa, sb := litSet(a), litSet(b)
	if len(sa) != len(sb) {
		return false
	}
	for k := range sa {
		if !sb[k] {
			return false
		}
	}
	return true
}

// litIn reports whether l occurs in ls (exactly; flips are separate).
func litIn(l ged.Literal, ls []ged.Literal) bool {
	for _, m := range ls {
		if m == l {
			return true
		}
	}
	return false
}

// patternsEqual compares patterns structurally: same variables with the
// same labels and the same edge multiset.
func patternsEqual(a, b *pattern.Pattern) bool {
	if a == b {
		return true
	}
	if a.NumVars() != b.NumVars() || len(a.Edges()) != len(b.Edges()) {
		return false
	}
	for _, v := range a.Vars() {
		if !b.HasVar(v) || a.Label(v) != b.Label(v) {
			return false
		}
	}
	ea := edgeMultiset(a)
	eb := edgeMultiset(b)
	if len(ea) != len(eb) {
		return false
	}
	for k, n := range ea {
		if eb[k] != n {
			return false
		}
	}
	return true
}

func edgeMultiset(p *pattern.Pattern) map[pattern.Edge]int {
	m := make(map[pattern.Edge]int, len(p.Edges()))
	for _, e := range p.Edges() {
		m[e]++
	}
	return m
}

// gedsEqual compares two GEDs up to literal-set equality.
func gedsEqual(a, b *ged.GED) bool {
	return patternsEqual(a.Pattern, b.Pattern) &&
		litSetEqual(a.X, b.X) && litSetEqual(a.Y, b.Y)
}

// xid returns the literal set X_id = {x.id = x.id : x ∈ x̄}.
func xid(q *pattern.Pattern) []ged.Literal {
	out := make([]ged.Literal, 0, q.NumVars())
	for _, x := range q.Vars() {
		out = append(out, ged.IDLit(x, x))
	}
	return out
}

// substitute applies a variable renaming to a literal.
func substitute(l ged.Literal, h map[pattern.Var]pattern.Var) ged.Literal {
	sub := func(o ged.Operand) ged.Operand {
		if o.Kind == ged.OperandConst {
			return o
		}
		o.Var = h[o.Var]
		return o
	}
	return ged.Literal{Left: sub(l.Left), Right: sub(l.Right), Op: l.Op}
}

// normalizeLit rewrites the intermediate form c = x.A to x.A = c so the
// chase machinery can evaluate and apply it.
func normalizeLit(l ged.Literal) ged.Literal {
	if l.Left.Kind == ged.OperandConst && l.Right.Kind != ged.OperandConst {
		return l.Flip()
	}
	return l
}

// eqOf builds the equivalence relation Eq_{X∪Y} over the canonical graph
// G_Q of pattern q. It returns the relation (possibly inconsistent) and
// the variable-to-node map.
func eqOf(q *pattern.Pattern, lits ...[]ged.Literal) (*chase.Eq, map[pattern.Var]graph.NodeID) {
	gq, vm := q.ToGraph()
	var seeds []chase.Seed
	for _, ls := range lits {
		for _, l := range ls {
			n := normalizeLit(l)
			if n.Left.Kind == ged.OperandConst && n.Right.Kind == ged.OperandConst {
				// A degenerate c = d literal: represent its effect via a
				// scratch attribute when the constants differ (it then
				// poisons Eq), and skip it when trivially true.
				if n.Left.Const.Equal(n.Right.Const) {
					continue
				}
				x := q.Vars()[0]
				seeds = append(seeds,
					chase.SeedOf(ged.ConstLit(x, "_cc", n.Left.Const), vm),
					chase.SeedOf(ged.ConstLit(x, "_cc", n.Right.Const), vm))
				continue
			}
			seeds = append(seeds, chase.SeedOf(n, vm))
		}
	}
	res := chase.RunSeeded(gq, nil, seeds)
	return res.Eq, vm
}

// holdsUnder evaluates literal l (over q1's variables, mapped into q's
// variables by h) against eq, where vm resolves q's variables to nodes.
func holdsUnder(eq *chase.Eq, l ged.Literal, h map[pattern.Var]pattern.Var, vm map[pattern.Var]graph.NodeID) bool {
	n := normalizeLit(substitute(l, h))
	if n.Left.Kind == ged.OperandConst && n.Right.Kind == ged.OperandConst {
		return n.Left.Const.Equal(n.Right.Const)
	}
	m := make(map[pattern.Var]graph.NodeID)
	for _, v := range n.Vars() {
		m[v] = vm[v]
	}
	return chase.Holds(eq, n, m)
}

// attrAppears reports whether attribute a appears on u or v among the
// literals (the GED2 side condition).
func attrAppears(a graph.Attr, u, v pattern.Var, ls []ged.Literal) bool {
	check := func(o ged.Operand) bool {
		return o.Kind == ged.OperandAttr && o.Attr == a && (o.Var == u || o.Var == v)
	}
	for _, l := range ls {
		if check(l.Left) || check(l.Right) {
			return true
		}
	}
	return false
}

// varsValid reports whether every variable mentioned by the literals
// belongs to the pattern.
func varsValid(ls []ged.Literal, q *pattern.Pattern) bool {
	for _, l := range ls {
		for _, v := range l.Vars() {
			if !q.HasVar(v) {
				return false
			}
		}
	}
	return true
}
