package axiom

import (
	"fmt"
	"math/rand"
	"strings"
	"testing"

	"gedlib/internal/ged"
	"gedlib/internal/graph"
	"gedlib/internal/pattern"
	"gedlib/internal/reason"
)

func singleNodeQ(label graph.Label) *pattern.Pattern {
	q := pattern.New()
	q.AddVar("x", label)
	return q
}

func TestProveReflexive(t *testing.T) {
	// Σ ⊢ φ for φ ∈ Σ.
	q := pattern.New()
	q.AddVar("x", "a").AddVar("y", "a")
	phi := ged.New("phi", q,
		[]ged.Literal{ged.VarLit("x", "k", "y", "k")},
		[]ged.Literal{ged.IDLit("x", "y")})
	sigma := ged.Set{phi}
	p, err := Prove(sigma, phi)
	if err != nil {
		t.Fatalf("Prove: %v", err)
	}
	if err := Check(sigma, p); err != nil {
		t.Fatalf("Check: %v\n%s", err, p)
	}
}

func TestProveTransitivityChain(t *testing.T) {
	// Example 8(c): X → Y, Y → Z ⊢ X → Z (constants standing in for the
	// abstract literal sets).
	q := singleNodeQ("p")
	ab := ged.New("ab", q,
		[]ged.Literal{ged.ConstLit("x", "a", graph.Int(1))},
		[]ged.Literal{ged.ConstLit("x", "b", graph.Int(2))})
	bc := ged.New("bc", q,
		[]ged.Literal{ged.ConstLit("x", "b", graph.Int(2))},
		[]ged.Literal{ged.ConstLit("x", "c", graph.Int(3))})
	ac := ged.New("ac", q,
		[]ged.Literal{ged.ConstLit("x", "a", graph.Int(1))},
		[]ged.Literal{ged.ConstLit("x", "c", graph.Int(3))})
	sigma := ged.Set{ab, bc}
	p, err := Prove(sigma, ac)
	if err != nil {
		t.Fatalf("Prove: %v", err)
	}
	if err := Check(sigma, p); err != nil {
		t.Fatalf("Check: %v\n%s", err, p)
	}
	// The proof must use GED6 (pattern composition drives the chase
	// replay) and GED3 (literal extraction).
	used := map[Rule]bool{}
	for _, s := range p.Steps {
		used[s.Rule] = true
	}
	for _, r := range []Rule{RuleGED1, RuleGED3, RuleGED6} {
		if !used[r] {
			t.Errorf("expected rule %s in the proof\n%s", r, p)
		}
	}
}

func TestProveAugmentation(t *testing.T) {
	// Example 8(b): from Q(X → Y) derive Q(XZ → YZ).
	q := singleNodeQ("p")
	xy := ged.New("xy", q,
		[]ged.Literal{ged.ConstLit("x", "a", graph.Int(1))},
		[]ged.Literal{ged.ConstLit("x", "b", graph.Int(2))})
	xzyz := ged.New("xzyz", q,
		[]ged.Literal{ged.ConstLit("x", "a", graph.Int(1)), ged.ConstLit("x", "z", graph.Int(9))},
		[]ged.Literal{ged.ConstLit("x", "b", graph.Int(2)), ged.ConstLit("x", "z", graph.Int(9))})
	sigma := ged.Set{xy}
	p, err := Prove(sigma, xzyz)
	if err != nil {
		t.Fatalf("Prove: %v", err)
	}
	if err := Check(sigma, p); err != nil {
		t.Fatalf("Check: %v\n%s", err, p)
	}
}

func TestProveGED5Inconsistent(t *testing.T) {
	// The paper's GED5 independence witness: Σ = ∅ and
	// φ = Q[x]((x.A = 1) ∧ (x.A = 2) → x.A = 3).
	q := singleNodeQ("p")
	phi := ged.New("phi", q,
		[]ged.Literal{ged.ConstLit("x", "A", graph.Int(1)), ged.ConstLit("x", "A", graph.Int(2))},
		[]ged.Literal{ged.ConstLit("x", "A", graph.Int(3))})
	p, err := Prove(nil, phi)
	if err != nil {
		t.Fatalf("Prove: %v", err)
	}
	if err := Check(nil, p); err != nil {
		t.Fatalf("Check: %v\n%s", err, p)
	}
	usedGED5 := false
	for _, s := range p.Steps {
		if s.Rule == RuleGED5 {
			usedGED5 = true
		}
	}
	if !usedGED5 {
		t.Errorf("a proof of a constant-inventing GED must use GED5\n%s", p)
	}
}

func TestProveChaseConflict(t *testing.T) {
	// Σ forces a label conflict on φ's pattern: implication holds by
	// condition (1) of Theorem 4 and the proof routes through GED5.
	qf := pattern.New()
	qf.AddVar("x", "a").AddVar("y", "b")
	sigma := ged.Set{ged.New("merge", qf, nil, []ged.Literal{ged.IDLit("x", "y")})}
	phi := ged.New("phi", qf, nil, []ged.Literal{ged.ConstLit("x", "whatever", graph.Int(5))})
	if !reason.Implies(sigma, phi).Implied {
		t.Fatal("precondition: Σ must imply φ by inconsistency")
	}
	p, err := Prove(sigma, phi)
	if err != nil {
		t.Fatalf("Prove: %v", err)
	}
	if err := Check(sigma, p); err != nil {
		t.Fatalf("Check: %v\n%s", err, p)
	}
}

func TestProveUsesGED2(t *testing.T) {
	// Identifying nodes propagates attributes: deriving y.k = z.k after
	// y.id = z.id requires GED2.
	q := pattern.New()
	q.AddVar("x", "a").AddVar("y", "b").AddVar("z", "b")
	q.AddEdge("x", "e", "y")
	q.AddEdge("x", "e", "z")
	sigma := ged.Set{ged.New("key", q, nil, []ged.Literal{ged.IDLit("y", "z")})}
	phi := ged.New("phi", q,
		[]ged.Literal{ged.ConstLit("y", "k", graph.Int(7))},
		[]ged.Literal{ged.VarLit("y", "k", "z", "k")})
	if !reason.Implies(sigma, phi).Implied {
		t.Fatal("precondition: Σ must imply φ")
	}
	p, err := Prove(sigma, phi)
	if err != nil {
		t.Fatalf("Prove: %v", err)
	}
	if err := Check(sigma, p); err != nil {
		t.Fatalf("Check: %v\n%s", err, p)
	}
	used := false
	for _, s := range p.Steps {
		if s.Rule == RuleGED2 {
			used = true
		}
	}
	if !used {
		t.Errorf("expected GED2 in the proof\n%s", p)
	}
}

func TestProveExample7(t *testing.T) {
	q1 := pattern.New()
	q1.AddVar("x1", graph.Wildcard).AddVar("x2", graph.Wildcard)
	phi1 := ged.New("phi1", q1,
		[]ged.Literal{ged.VarLit("x1", "A", "x2", "A")},
		[]ged.Literal{ged.IDLit("x1", "x2")})
	q2 := pattern.New()
	q2.AddVar("x1", graph.Wildcard).AddVar("x2", graph.Wildcard)
	phi2 := ged.New("phi2", q2,
		[]ged.Literal{ged.VarLit("x1", "B", "x2", "B")},
		[]ged.Literal{ged.VarLit("x1", "A", "x1", "B")})
	q := pattern.New()
	q.AddVar("x1", graph.Wildcard).AddVar("x2", graph.Wildcard)
	q.AddVar("x3", "a").AddVar("x4", "b")
	phi := ged.New("phi", q,
		[]ged.Literal{ged.VarLit("x1", "A", "x3", "A"), ged.VarLit("x2", "B", "x4", "B")},
		[]ged.Literal{ged.IDLit("x1", "x3"), ged.IDLit("x2", "x4")})
	sigma := ged.Set{phi1, phi2}
	p, err := Prove(sigma, phi)
	if err != nil {
		t.Fatalf("Prove: %v", err)
	}
	if err := Check(sigma, p); err != nil {
		t.Fatalf("Check: %v\n%s", err, p)
	}
}

func TestProveNotImplied(t *testing.T) {
	q := singleNodeQ("p")
	phi := ged.New("phi", q, nil, []ged.Literal{ged.ConstLit("x", "a", graph.Int(1))})
	if _, err := Prove(nil, phi); err == nil {
		t.Error("Prove must fail on a non-implied GED")
	}
}

func TestProveEmptyConsequent(t *testing.T) {
	q := singleNodeQ("p")
	phi := ged.New("phi", q, []ged.Literal{ged.ConstLit("x", "a", graph.Int(1))}, nil)
	p, err := Prove(nil, phi)
	if err != nil {
		t.Fatalf("Prove: %v", err)
	}
	if err := Check(nil, p); err != nil {
		t.Fatalf("Check: %v", err)
	}
}

func TestCheckRejectsTampering(t *testing.T) {
	q := singleNodeQ("p")
	ab := ged.New("ab", q,
		[]ged.Literal{ged.ConstLit("x", "a", graph.Int(1))},
		[]ged.Literal{ged.ConstLit("x", "b", graph.Int(2))})
	ac := ged.New("ac", q,
		[]ged.Literal{ged.ConstLit("x", "a", graph.Int(1))},
		[]ged.Literal{ged.ConstLit("x", "b", graph.Int(2)), ged.ConstLit("x", "a", graph.Int(1)),
			ged.IDLit("x", "x")})
	sigma := ged.Set{ab}
	p, err := Prove(sigma, ac)
	if err != nil {
		t.Fatalf("Prove: %v", err)
	}
	if err := Check(sigma, p); err != nil {
		t.Fatalf("Check: %v\n%s", err, p)
	}

	// Tamper 1: claim a different Σ member.
	bad := *p
	bad.Steps = append([]Step{}, p.Steps...)
	for i, s := range bad.Steps {
		if s.Rule == RulePremise {
			s.SigmaIndex = 5
			bad.Steps[i] = s
		}
	}
	if Check(sigma, &bad) == nil {
		t.Error("tampered sigma index accepted")
	}

	// Tamper 2: smuggle an extra literal into a conclusion.
	bad2 := *p
	bad2.Steps = append([]Step{}, p.Steps...)
	last := *bad2.Steps[len(bad2.Steps)-1].Concl
	last.Y = append(append([]ged.Literal{}, last.Y...), ged.ConstLit("x", "zz", graph.Int(42)))
	bad2.Steps[len(bad2.Steps)-1].Concl = &last
	if Check(sigma, &bad2) == nil {
		t.Error("smuggled literal accepted")
	}

	// Tamper 3: forge a GED5 application on a consistent premise.
	forged := &Proof{
		Target: ac,
		Steps: []Step{
			{Rule: RuleGED1, Concl: ged.New("", q, ac.X, append(append([]ged.Literal{}, ac.X...), ged.IDLit("x", "x")))},
			{Rule: RuleGED5, Concl: ac, Prem: []int{0}},
		},
	}
	if Check(sigma, forged) == nil {
		t.Error("GED5 on a consistent premise accepted")
	}

	// Tamper 4: GED6 with a match violating labels.
	qq := pattern.New()
	qq.AddVar("x", "a").AddVar("y", "b")
	side := ged.New("side", singleNodeQ("zzz"), nil, nil)
	forged2 := &Proof{
		Target: ged.New("", qq, nil, nil),
		Steps: []Step{
			{Rule: RuleGED1, Concl: ged.New("", qq, nil, xid(qq))},
			{Rule: RulePremise, Concl: side, SigmaIndex: 0},
			{Rule: RuleGED6, Concl: ged.New("", qq, nil, xid(qq)),
				Prem: []int{0, 1}, Match: map[pattern.Var]pattern.Var{"x": "x"}},
		},
	}
	if Check(ged.Set{side}, forged2) == nil {
		t.Error("GED6 with label-incompatible match accepted")
	}
}

func TestCheckRejectsForwardReference(t *testing.T) {
	q := singleNodeQ("p")
	g := ged.New("", q, nil, xid(q))
	p := &Proof{Target: g, Steps: []Step{
		{Rule: RuleGED3, Concl: ged.New("", q, nil, []ged.Literal{ged.IDLit("x", "x")}), Prem: []int{1}},
		{Rule: RuleGED1, Concl: g},
	}}
	if Check(nil, p) == nil {
		t.Error("forward premise reference accepted")
	}
}

func TestProofString(t *testing.T) {
	q := singleNodeQ("p")
	phi := ged.New("phi", q,
		[]ged.Literal{ged.ConstLit("x", "a", graph.Int(1))},
		[]ged.Literal{ged.ConstLit("x", "a", graph.Int(1))})
	p, err := Prove(nil, phi)
	if err != nil {
		t.Fatal(err)
	}
	s := p.String()
	if !strings.Contains(s, "GED1") {
		t.Errorf("rendered proof missing GED1:\n%s", s)
	}
}

// TestSoundnessAndCompletenessRandom cross-checks Prove/Check against
// the chase-based decision procedure on random instances: Σ ⊨ φ iff a
// checkable proof exists (Theorem 7).
func TestSoundnessAndCompletenessRandom(t *testing.T) {
	rng := rand.New(rand.NewSource(31))
	proved, refused := 0, 0
	for trial := 0; trial < 200; trial++ {
		sigma := randomSigma(rng)
		phi := randomSigma(rng)[0]
		implied := reason.Implies(sigma, phi).Implied
		p, err := Prove(sigma, phi)
		if implied && err != nil {
			t.Fatalf("trial %d: implied but Prove failed: %v\nΣ=%v\nφ=%v", trial, err, sigma, phi)
		}
		if !implied && err == nil {
			t.Fatalf("trial %d: not implied but Prove succeeded\nΣ=%v\nφ=%v\n%s", trial, sigma, phi, p)
		}
		if err != nil {
			refused++
			continue
		}
		proved++
		if cerr := Check(sigma, p); cerr != nil {
			t.Fatalf("trial %d: generated proof rejected: %v\nΣ=%v\nφ=%v\n%s", trial, cerr, sigma, phi, p)
		}
	}
	if proved == 0 || refused == 0 {
		t.Logf("coverage: proved=%d refused=%d", proved, refused)
	}
}

// randomSigma mirrors the reason package's random instances, with GKeys
// occasionally thrown in.
func randomSigma(rng *rand.Rand) ged.Set {
	labels := []graph.Label{"a", "b", graph.Wildcard}
	attrs := []graph.Attr{"p", "q"}
	var sigma ged.Set
	for i := 0; i < 1+rng.Intn(2); i++ {
		q := pattern.New()
		q.AddVar("x", labels[rng.Intn(len(labels))])
		q.AddVar("y", labels[rng.Intn(len(labels))])
		if rng.Intn(2) == 0 {
			q.AddEdge("x", "e", "y")
		}
		var xs, ys []ged.Literal
		switch rng.Intn(4) {
		case 0:
			xs = append(xs, ged.VarLit("x", attrs[0], "y", attrs[0]))
		case 1:
			xs = append(xs, ged.ConstLit("x", attrs[rng.Intn(2)], graph.Int(rng.Intn(2))))
		case 2:
			xs = append(xs, ged.IDLit("x", "y"))
		}
		switch rng.Intn(4) {
		case 0:
			ys = append(ys, ged.IDLit("x", "y"))
		case 1:
			ys = append(ys, ged.ConstLit("y", attrs[rng.Intn(2)], graph.Int(rng.Intn(2))))
		case 2:
			ys = append(ys, ged.VarLit("x", attrs[1], "y", attrs[1]))
		case 3:
			ys = append(ys, ged.VarLit("x", attrs[0], "x", attrs[1]),
				ged.ConstLit("y", attrs[0], graph.Int(rng.Intn(2))))
		}
		sigma = append(sigma, ged.New(fmt.Sprintf("r%d", i), q, xs, ys))
	}
	return sigma
}

func TestProveRecursiveKeyCascade(t *testing.T) {
	// The ψ₂ → ψ₃ → ψ₁ cascade as one implication: if two album pairs
	// share titles/releases and artist names appropriately, the albums
	// of the merged artists are identified too. The proof must chain id
	// literals through GED2-propagated attributes.
	psi1 := func() *ged.GED {
		q := pattern.New()
		q.AddVar("x", "album").AddVar("z", "artist")
		q.AddEdge("x", "by", "z")
		k, err := ged.NewGKey("psi1", q, "x", func(v, fv pattern.Var) []ged.Literal {
			if v == "x" {
				return []ged.Literal{ged.VarLit(v, "title", fv, "title")}
			}
			return []ged.Literal{ged.IDLit(v, fv)}
		})
		if err != nil {
			t.Fatal(err)
		}
		return k
	}()
	psi2 := func() *ged.GED {
		q := pattern.New()
		q.AddVar("x", "album")
		k, err := ged.NewGKey("psi2", q, "x", func(v, fv pattern.Var) []ged.Literal {
			return []ged.Literal{ged.VarLit(v, "title", fv, "title"), ged.VarLit(v, "release", fv, "release")}
		})
		if err != nil {
			t.Fatal(err)
		}
		return k
	}()
	psi3 := func() *ged.GED {
		q := pattern.New()
		q.AddVar("x", "album").AddVar("z", "artist")
		q.AddEdge("x", "by", "z")
		k, err := ged.NewGKey("psi3", q, "z", func(v, fv pattern.Var) []ged.Literal {
			if v == "z" {
				return []ged.Literal{ged.VarLit(v, "name", fv, "name")}
			}
			return []ged.Literal{ged.IDLit(v, fv)}
		})
		if err != nil {
			t.Fatal(err)
		}
		return k
	}()
	sigma := ged.Set{psi1, psi2, psi3}

	// φ: two artists each with two albums; the first albums share
	// title+release, artists share names, second albums share titles.
	// Conclusion: the second albums are the same entity.
	q := pattern.New()
	q.AddVar("a1", "album").AddVar("b1", "album").AddVar("r1", "artist")
	q.AddVar("a2", "album").AddVar("b2", "album").AddVar("r2", "artist")
	q.AddEdge("a1", "by", "r1")
	q.AddEdge("b1", "by", "r1")
	q.AddEdge("a2", "by", "r2")
	q.AddEdge("b2", "by", "r2")
	phi := ged.New("cascade", q,
		[]ged.Literal{
			ged.VarLit("a1", "title", "a2", "title"),
			ged.VarLit("a1", "release", "a2", "release"),
			ged.VarLit("r1", "name", "r2", "name"),
			ged.VarLit("b1", "title", "b2", "title"),
		},
		[]ged.Literal{ged.IDLit("b1", "b2"), ged.IDLit("r1", "r2")})

	if !reason.Implies(sigma, phi).Implied {
		t.Fatal("precondition: the cascade must be implied")
	}
	p, err := Prove(sigma, phi)
	if err != nil {
		t.Fatalf("Prove: %v", err)
	}
	if err := Check(sigma, p); err != nil {
		t.Fatalf("Check: %v\n%s", err, p)
	}
	if p.Len() < 6 {
		t.Errorf("cascade proof suspiciously short (%d steps)", p.Len())
	}
}
