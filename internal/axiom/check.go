package axiom

import (
	"fmt"

	"gedlib/internal/chase"
	"gedlib/internal/ged"
	"gedlib/internal/graph"
	"gedlib/internal/pattern"
)

// Check verifies that p is a legal A_GED proof of p.Target from sigma:
// every step must be justified by its rule, and the final step must
// conclude the target (up to literal-set equality; a target with empty Y
// is accepted against any conclusion sharing its pattern and antecedent,
// since Q[x̄](X → ∅) is vacuous). A nil error means Σ ⊢ φ.
func Check(sigma ged.Set, p *Proof) error {
	if len(p.Steps) == 0 {
		return fmt.Errorf("axiom: empty proof")
	}
	for i := range p.Steps {
		if err := checkStep(sigma, p, i); err != nil {
			return fmt.Errorf("axiom: step %d (%s): %w", i+1, p.Steps[i].Rule, err)
		}
	}
	last := p.Steps[len(p.Steps)-1].Concl
	t := p.Target
	if !patternsEqual(last.Pattern, t.Pattern) || !litSetEqual(last.X, t.X) {
		return fmt.Errorf("axiom: final step does not conclude the target")
	}
	if len(t.Y) > 0 && !litSetEqual(last.Y, t.Y) {
		return fmt.Errorf("axiom: final consequent differs from the target")
	}
	return nil
}

func checkStep(sigma ged.Set, p *Proof, i int) error {
	s := p.Steps[i]
	if s.Concl == nil || s.Concl.Pattern == nil {
		return fmt.Errorf("missing conclusion")
	}
	prem := make([]*ged.GED, len(s.Prem))
	for j, pi := range s.Prem {
		if pi < 0 || pi >= i {
			return fmt.Errorf("premise %d out of range", pi)
		}
		prem[j] = p.Steps[pi].Concl
	}
	switch s.Rule {
	case RulePremise:
		if s.SigmaIndex < 0 || s.SigmaIndex >= len(sigma) {
			return fmt.Errorf("sigma index %d out of range", s.SigmaIndex)
		}
		if !gedsEqual(s.Concl, sigma[s.SigmaIndex]) {
			return fmt.Errorf("conclusion is not Σ[%d]", s.SigmaIndex)
		}
		return nil

	case RuleGED1:
		if len(prem) != 0 {
			return fmt.Errorf("GED1 takes no premises")
		}
		want := append(append([]ged.Literal{}, s.Concl.X...), xid(s.Concl.Pattern)...)
		if !litSetEqual(s.Concl.Y, want) {
			return fmt.Errorf("consequent is not X ∧ X_id")
		}
		if !varsValid(s.Concl.X, s.Concl.Pattern) {
			return fmt.Errorf("antecedent mentions unknown variables")
		}
		return nil

	case RuleGED2:
		if len(prem) != 1 {
			return fmt.Errorf("GED2 takes one premise")
		}
		m := prem[0]
		if err := sameContext(s.Concl, m); err != nil {
			return err
		}
		if len(s.Concl.Y) != 1 {
			return fmt.Errorf("conclusion must be a single literal")
		}
		c := s.Concl.Y[0]
		if c.Op != ged.OpEq || c.Left.Kind != ged.OperandAttr || c.Right.Kind != ged.OperandAttr || c.Left.Attr != c.Right.Attr {
			return fmt.Errorf("conclusion must be u.A = v.A")
		}
		u, v, a := c.Left.Var, c.Right.Var, c.Left.Attr
		if !litIn(ged.IDLit(u, v), m.Y) && !litIn(ged.IDLit(v, u), m.Y) {
			return fmt.Errorf("premise consequent lacks %s.id = %s.id", u, v)
		}
		if !attrAppears(a, u, v, m.Y) {
			return fmt.Errorf("attribute %s does not appear on %s or %s in the premise consequent", a, u, v)
		}
		return nil

	case RuleGED3:
		if len(prem) != 1 {
			return fmt.Errorf("GED3 takes one premise")
		}
		m := prem[0]
		if err := sameContext(s.Concl, m); err != nil {
			return err
		}
		if len(s.Concl.Y) != 1 {
			return fmt.Errorf("conclusion must be a single literal")
		}
		if !litIn(s.Concl.Y[0].Flip(), m.Y) {
			return fmt.Errorf("flipped literal not in the premise consequent")
		}
		return nil

	case RuleGED4:
		if len(prem) != 1 {
			return fmt.Errorf("GED4 takes one premise")
		}
		m := prem[0]
		if err := sameContext(s.Concl, m); err != nil {
			return err
		}
		if len(s.Concl.Y) != 1 {
			return fmt.Errorf("conclusion must be a single literal")
		}
		c := s.Concl.Y[0]
		if c.Op != ged.OpEq {
			return fmt.Errorf("conclusion must be an equality")
		}
		// Search for a middle operand v with (u1 = v), (v = u2) ∈ Y.
		for _, l1 := range m.Y {
			if l1.Op != ged.OpEq || l1.Left != c.Left {
				continue
			}
			for _, l2 := range m.Y {
				if l2.Op == ged.OpEq && l2.Left == l1.Right && l2.Right == c.Right {
					return nil
				}
			}
		}
		return fmt.Errorf("no transitivity chain for %s in the premise consequent", c)

	case RuleGED5:
		if len(prem) != 1 {
			return fmt.Errorf("GED5 takes one premise")
		}
		m := prem[0]
		if err := sameContext(s.Concl, m); err != nil {
			return err
		}
		eq, _ := eqOf(m.Pattern, m.X, m.Y)
		if eq.Consistent() {
			return fmt.Errorf("Eq_X ∪ Eq_Y is consistent; GED5 does not apply")
		}
		if !varsValid(s.Concl.Y, s.Concl.Pattern) {
			return fmt.Errorf("conclusion mentions unknown variables")
		}
		return nil

	case RuleGED6:
		if len(prem) != 2 {
			return fmt.Errorf("GED6 takes two premises (main, side)")
		}
		main, side := prem[0], prem[1]
		if err := sameContext(s.Concl, main); err != nil {
			return err
		}
		eq, vm := eqOf(main.Pattern, main.X, main.Y)
		if !eq.Consistent() {
			return fmt.Errorf("Eq_X ∪ Eq_Y of the main premise is inconsistent")
		}
		h := s.Match
		if h == nil {
			return fmt.Errorf("missing match")
		}
		if err := checkHom(side.Pattern, main.Pattern, h, eq, vm); err != nil {
			return err
		}
		for _, l := range side.X {
			if !holdsUnder(eq, l, h, vm) {
				return fmt.Errorf("h(x̄1) does not satisfy X1 literal %s", l)
			}
		}
		want := append([]ged.Literal{}, main.Y...)
		for _, l := range side.Y {
			want = append(want, substitute(l, h))
		}
		if !litSetEqual(s.Concl.Y, want) {
			return fmt.Errorf("conclusion is not Y ∧ h(Y1)")
		}
		return nil
	}
	return fmt.Errorf("unknown rule")
}

// sameContext requires the conclusion to share the premise's pattern and
// antecedent.
func sameContext(concl, prem *ged.GED) error {
	if !patternsEqual(concl.Pattern, prem.Pattern) {
		return fmt.Errorf("pattern differs from the premise")
	}
	if !litSetEqual(concl.X, prem.X) {
		return fmt.Errorf("antecedent differs from the premise")
	}
	return nil
}

// checkHom verifies that h is a match of q1 in the coercion of eq over
// q's canonical graph: variables land on ⪯-compatible classes, pattern
// edges are realized between classes, and every mapped variable exists.
func checkHom(q1, q *pattern.Pattern, h map[pattern.Var]pattern.Var, eq *chase.Eq, vm map[pattern.Var]graph.NodeID) error {
	co := chase.Coerce(eq)
	for _, w := range q1.Vars() {
		tv, ok := h[w]
		if !ok {
			return fmt.Errorf("match does not bind %s", w)
		}
		if !q.HasVar(tv) {
			return fmt.Errorf("match binds %s to unknown variable %s", w, tv)
		}
		if !graph.LabelMatches(q1.Label(w), eq.ClassLabel(vm[tv])) {
			return fmt.Errorf("label of %s does not match class of %s", w, tv)
		}
	}
	for _, e := range q1.Edges() {
		src := co.NodeOf[vm[h[e.Src]]]
		dst := co.NodeOf[vm[h[e.Dst]]]
		found := false
		for _, ge := range co.Graph.Out(src) {
			if ge.Dst == dst && graph.LabelMatches(e.Label, ge.Label) {
				found = true
				break
			}
		}
		if !found {
			return fmt.Errorf("edge (%s,%s,%s) not realized in the coercion", e.Src, e.Label, e.Dst)
		}
	}
	return nil
}
