package axiom

import (
	"testing"

	"gedlib/internal/ged"
	"gedlib/internal/graph"
	"gedlib/internal/pattern"
	"gedlib/internal/reason"
)

// TestProveTransitiveNodeChain exercises deriveNodeEq: the target id
// literal a.id = c.id is never textual in the accumulated consequent —
// only a~b and b~c are — so the proof must walk the node proof forest
// and chain the links with GED4.
func TestProveTransitiveNodeChain(t *testing.T) {
	q := pattern.New()
	q.AddVar("a", "p").AddVar("b", "p").AddVar("c", "p")
	phi := ged.New("trans", q,
		[]ged.Literal{ged.IDLit("a", "b"), ged.IDLit("b", "c")},
		[]ged.Literal{ged.IDLit("a", "c")})
	if !reason.Implies(nil, phi).Implied {
		t.Fatal("precondition: transitivity of id literals must be implied")
	}
	p, err := Prove(nil, phi)
	if err != nil {
		t.Fatalf("Prove: %v", err)
	}
	if err := Check(nil, p); err != nil {
		t.Fatalf("Check: %v\n%s", err, p)
	}
	used := map[Rule]bool{}
	for _, s := range p.Steps {
		used[s.Rule] = true
	}
	if !used[RuleGED4] {
		t.Errorf("transitive chain must use GED4\n%s", p)
	}
}

// TestProveReflexiveAttr exercises deriveReflexive: x.A = x.A is
// deducible once the slot exists, but never textual.
func TestProveReflexiveAttr(t *testing.T) {
	q := pattern.New()
	q.AddVar("x", "p")
	phi := ged.New("refl", q,
		[]ged.Literal{ged.ConstLit("x", "A", graph.Int(5))},
		[]ged.Literal{ged.VarLit("x", "A", "x", "A")})
	if !reason.Implies(nil, phi).Implied {
		t.Fatal("precondition: x.A = x.A must follow from x.A = 5")
	}
	p, err := Prove(nil, phi)
	if err != nil {
		t.Fatalf("Prove: %v", err)
	}
	if err := Check(nil, p); err != nil {
		t.Fatalf("Check: %v\n%s", err, p)
	}
}

// TestProveIDPropValueChain exercises the IDProp branch of valueLink:
// the value chain from u.B to v.C passes through the attribute-class
// merge induced by identifying x and y (closure rule (d)), which the
// proof realizes with GED2.
func TestProveIDPropValueChain(t *testing.T) {
	q := pattern.New()
	q.AddVar("x", "p").AddVar("y", "p").AddVar("u", "q").AddVar("v", "q")
	phi := ged.New("idprop", q,
		[]ged.Literal{
			ged.VarLit("x", "A", "u", "B"),
			ged.VarLit("y", "A", "v", "C"),
			ged.IDLit("x", "y"),
		},
		[]ged.Literal{ged.VarLit("u", "B", "v", "C")})
	if !reason.Implies(nil, phi).Implied {
		t.Fatal("precondition: u.B = v.C must follow")
	}
	p, err := Prove(nil, phi)
	if err != nil {
		t.Fatalf("Prove: %v", err)
	}
	if err := Check(nil, p); err != nil {
		t.Fatalf("Check: %v\n%s", err, p)
	}
	used := map[Rule]bool{}
	for _, s := range p.Steps {
		used[s.Rule] = true
	}
	if !used[RuleGED2] {
		t.Errorf("IDProp chain must use GED2\n%s", p)
	}
}

// TestProveConstantBridgeChain: two attributes equated only through a
// shared constant (closure rule (b)); the chain passes through the
// constant endpoint with a GED4 fold over the generalized literal c = x.A.
func TestProveConstantBridgeChain(t *testing.T) {
	q := pattern.New()
	q.AddVar("x", "p").AddVar("y", "p")
	phi := ged.New("bridge", q,
		[]ged.Literal{ged.ConstLit("x", "A", graph.Int(7)), ged.ConstLit("y", "B", graph.Int(7))},
		[]ged.Literal{ged.VarLit("x", "A", "y", "B")})
	if !reason.Implies(nil, phi).Implied {
		t.Fatal("precondition: shared constant must equate the attributes")
	}
	p, err := Prove(nil, phi)
	if err != nil {
		t.Fatalf("Prove: %v", err)
	}
	if err := Check(nil, p); err != nil {
		t.Fatalf("Check: %v\n%s", err, p)
	}
}

// TestProveDeduceConstantThroughVar: the target constant literal y.B = 7
// follows from x.A = 7 and x.A = y.B.
func TestProveDeduceConstantThroughVar(t *testing.T) {
	q := pattern.New()
	q.AddVar("x", "p").AddVar("y", "p")
	phi := ged.New("cthru", q,
		[]ged.Literal{ged.ConstLit("x", "A", graph.Int(7)), ged.VarLit("x", "A", "y", "B")},
		[]ged.Literal{ged.ConstLit("y", "B", graph.Int(7))})
	p, err := Prove(nil, phi)
	if err != nil {
		t.Fatalf("Prove: %v", err)
	}
	if err := Check(nil, p); err != nil {
		t.Fatalf("Check: %v\n%s", err, p)
	}
}

// TestProveLongMixedChain: a five-hop chain mixing id merges, constants
// and variable literals, all folded into one target literal.
func TestProveLongMixedChain(t *testing.T) {
	q := pattern.New()
	for _, v := range []pattern.Var{"a", "b", "c", "d"} {
		q.AddVar(v, "p")
	}
	phi := ged.New("long", q,
		[]ged.Literal{
			ged.VarLit("a", "k", "b", "k"), // a.k = b.k
			ged.ConstLit("b", "k", graph.Int(3)),
			ged.ConstLit("c", "m", graph.Int(3)), // bridge through 3
			ged.VarLit("c", "m", "d", "n"),
		},
		[]ged.Literal{ged.VarLit("a", "k", "d", "n")})
	if !reason.Implies(nil, phi).Implied {
		t.Fatal("precondition: the chain must be implied")
	}
	p, err := Prove(nil, phi)
	if err != nil {
		t.Fatalf("Prove: %v", err)
	}
	if err := Check(nil, p); err != nil {
		t.Fatalf("Check: %v\n%s", err, p)
	}
}
