package axiom

import (
	"context"
	"fmt"

	"gedlib/internal/chase"
	"gedlib/internal/ged"
	"gedlib/internal/graph"
	"gedlib/internal/pattern"
)

// Prove constructs an A_GED proof of φ from Σ, following the
// completeness argument of Theorem 7:
//
//  1. GED1 yields Q[x̄](X → X ∧ X_id).
//  2. Every step of the chase of G_Q from Eq_X by Σ is replayed as a
//     GED6 application (Claim 1): the chase match is exactly the
//     homomorphism GED6 requires into (G_Q)_{Eq_X ∪ Eq_Y}.
//  3. If the chase is inconsistent, GED5 concludes φ (Claim 2 and
//     condition (1) of Theorem 4). Otherwise every literal of φ's
//     consequent is deduced from the final equivalence relation by
//     replaying its proof-forest explanation through GED2 (id
//     propagation), GED3 (symmetry) and GED4 (transitivity), and the
//     singletons are conjoined back with GED6.
//
// Prove returns an error when Σ does not imply φ.
func Prove(sigma ged.Set, phi *ged.GED) (*Proof, error) {
	return ProveCtx(context.Background(), sigma, phi, 0)
}

// ProveCtx is Prove with cooperative cancellation and an optional chase
// round bound: the underlying implication chase (the expensive part of
// proof construction) aborts when ctx is cancelled or the bound is hit.
func ProveCtx(ctx context.Context, sigma ged.Set, phi *ged.GED, maxRounds int) (*Proof, error) {
	if err := phi.Validate(); err != nil {
		return nil, err
	}
	if err := sigma.Validate(); err != nil {
		return nil, err
	}
	gq, vm := phi.Pattern.ToGraph()
	inv := make(map[graph.NodeID]pattern.Var, len(vm))
	for v, n := range vm {
		inv[n] = v
	}
	seeds := make([]chase.Seed, 0, len(phi.X))
	for _, l := range phi.X {
		seeds = append(seeds, chase.SeedOf(l, vm))
	}
	res, err := chase.RunCtx(ctx, gq, sigma, seeds, maxRounds)
	if err != nil {
		return nil, err
	}
	pr := &prover{
		sigma: sigma, phi: phi, vm: vm, inv: inv,
		res:       res,
		singleton: make(map[string]int),
		premises:  make(map[int]int),
	}
	if err := pr.run(); err != nil {
		return nil, err
	}
	return &Proof{Target: phi, Steps: pr.steps}, nil
}

type prover struct {
	sigma ged.Set
	phi   *ged.GED
	vm    map[pattern.Var]graph.NodeID
	inv   map[graph.NodeID]pattern.Var
	res   *chase.Result

	steps     []Step
	cur       int            // index of the accumulated Q(X → Y_cur) step
	singleton map[string]int // literal key → step proving Q(X → [l])
	premises  map[int]int    // Σ index → premise step
}

func (pr *prover) add(s Step) int {
	pr.steps = append(pr.steps, s)
	return len(pr.steps) - 1
}

func (pr *prover) concl(i int) *ged.GED { return pr.steps[i].Concl }

// mk builds a GED sharing φ's pattern and antecedent.
func (pr *prover) mk(y []ged.Literal) *ged.GED {
	return ged.New("", pr.phi.Pattern, pr.phi.X, y)
}

func (pr *prover) run() error {
	// (1) GED1.
	y0 := append(append([]ged.Literal{}, pr.phi.X...), xid(pr.phi.Pattern)...)
	pr.cur = pr.add(Step{Rule: RuleGED1, Concl: pr.mk(y0)})

	// Inconsistent Eq_X: GED5 immediately.
	if eq, _ := eqOf(pr.phi.Pattern, pr.phi.X); !eq.Consistent() {
		pr.add(Step{Rule: RuleGED5, Concl: pr.mk(pr.phi.Y), Prem: []int{pr.cur}})
		return nil
	}

	// (2) Replay the chase trace through GED6.
	for _, s := range pr.res.Steps {
		d := pr.sigma[s.GED]
		h := make(map[pattern.Var]pattern.Var, len(s.Match))
		for v, n := range s.Match {
			h[v] = pr.inv[n]
		}
		newY := append([]ged.Literal{}, pr.concl(pr.cur).Y...)
		for _, l := range d.Y {
			sl := substitute(l, h)
			if !litIn(sl, newY) {
				newY = append(newY, sl)
			}
		}
		pr.cur = pr.add(Step{
			Rule:  RuleGED6,
			Concl: pr.mk(newY),
			Prem:  []int{pr.cur, pr.premise(s.GED)},
			Match: h,
		})
		if eq, _ := eqOf(pr.phi.Pattern, pr.phi.X, newY); !eq.Consistent() {
			// (3a) Claim 2: the accumulated consequent is inconsistent;
			// GED5 concludes anything, in particular φ.
			pr.add(Step{Rule: RuleGED5, Concl: pr.mk(pr.phi.Y), Prem: []int{pr.cur}})
			return nil
		}
	}
	if !pr.res.Consistent() {
		return fmt.Errorf("axiom: internal: inconsistent chase not reflected in replay")
	}

	// (3b) Deduce each literal of φ's consequent.
	if len(pr.phi.Y) == 0 {
		return nil // vacuous target; Check accepts the GED1 conclusion
	}
	var parts []int
	for _, l := range pr.phi.Y {
		if !pr.res.Deduced(l, pr.vm) {
			return fmt.Errorf("axiom: Σ does not imply φ: literal %s is not deducible", l)
		}
		idx, err := pr.deriveSingleton(l)
		if err != nil {
			return err
		}
		parts = append(parts, idx)
	}
	acc := parts[0]
	for _, idx := range parts[1:] {
		acc = pr.conjoin(acc, idx)
	}
	// Ensure the final consequent is exactly set(φ.Y): conjoin handles
	// the multi-literal case; the single-literal case is already exact.
	final := pr.concl(acc)
	if !litSetEqual(final.Y, pr.phi.Y) {
		return fmt.Errorf("axiom: internal: assembled %v, want %v", final.Y, pr.phi.Y)
	}
	return nil
}

// premise returns (memoized) the RulePremise step introducing Σ[i].
func (pr *prover) premise(i int) int {
	if idx, ok := pr.premises[i]; ok {
		return idx
	}
	idx := pr.add(Step{Rule: RulePremise, Concl: pr.sigma[i], SigmaIndex: i})
	pr.premises[i] = idx
	return idx
}

// conjoin applies GED6 with the identity match to combine Q(X → Ya) and
// Q(X → Yb) into Q(X → Ya ∪ Yb).
func (pr *prover) conjoin(a, b int) int {
	h := make(map[pattern.Var]pattern.Var)
	for _, v := range pr.phi.Pattern.Vars() {
		h[v] = v
	}
	ya := pr.concl(a).Y
	newY := append([]ged.Literal{}, ya...)
	for _, l := range pr.concl(b).Y {
		if !litIn(l, newY) {
			newY = append(newY, l)
		}
	}
	return pr.add(Step{Rule: RuleGED6, Concl: pr.mk(newY), Prem: []int{a, b}, Match: h})
}

// extractSingleton produces Q(X → [l]) when l or its flip occurs in the
// accumulated consequent, via GED3 (applied once or twice).
func (pr *prover) extractSingleton(l ged.Literal) (int, error) {
	if idx, ok := pr.singleton[litKey(l)]; ok {
		return idx, nil
	}
	curY := pr.concl(pr.cur).Y
	var idx int
	switch {
	case litIn(l.Flip(), curY):
		idx = pr.add(Step{Rule: RuleGED3, Concl: pr.mk([]ged.Literal{l}), Prem: []int{pr.cur}})
	case litIn(l, curY):
		mid := pr.add(Step{Rule: RuleGED3, Concl: pr.mk([]ged.Literal{l.Flip()}), Prem: []int{pr.cur}})
		idx = pr.add(Step{Rule: RuleGED3, Concl: pr.mk([]ged.Literal{l}), Prem: []int{mid}})
	default:
		return 0, fmt.Errorf("axiom: internal: literal %s not in accumulated consequent", l)
	}
	pr.singleton[litKey(l)] = idx
	return idx, nil
}

// deriveSingleton produces Q(X → [l]) for a literal deducible from the
// final chase relation.
func (pr *prover) deriveSingleton(l ged.Literal) (int, error) {
	if idx, ok := pr.singleton[litKey(l)]; ok {
		return idx, nil
	}
	curY := pr.concl(pr.cur).Y
	if litIn(l, curY) || litIn(l.Flip(), curY) {
		return pr.extractSingleton(l)
	}
	k, ok := l.Kind()
	if !ok {
		return 0, fmt.Errorf("axiom: cannot derive non-GED literal %s", l)
	}
	var idx int
	var err error
	if k == ged.IDLiteral {
		idx, err = pr.deriveNodeEq(l.Left.Var, l.Right.Var)
	} else {
		idx, err = pr.deriveValueEq(l)
	}
	if err != nil {
		return 0, err
	}
	pr.singleton[litKey(l)] = idx
	return idx, nil
}

// chainLink is one derived equality e_i = e_{i+1} of a transitivity
// chain: the step index proving it and the literal it concludes.
type chainLink struct {
	idx int
	lit ged.Literal
}

// foldChain combines links [e0=e1], [e1=e2], ... into [e0=ek] with GED6
// conjunctions and GED4 transitivity.
func (pr *prover) foldChain(links []chainLink) (chainLink, error) {
	if len(links) == 0 {
		return chainLink{}, fmt.Errorf("axiom: internal: empty chain")
	}
	acc := links[0]
	for _, next := range links[1:] {
		if acc.lit.Right != next.lit.Left {
			return chainLink{}, fmt.Errorf("axiom: internal: broken chain %s / %s", acc.lit, next.lit)
		}
		joined := pr.conjoin(acc.idx, next.idx)
		lit := ged.Literal{Left: acc.lit.Left, Right: next.lit.Right, Op: ged.OpEq}
		idx := pr.add(Step{Rule: RuleGED4, Concl: pr.mk([]ged.Literal{lit}), Prem: []int{joined}})
		acc = chainLink{idx: idx, lit: lit}
	}
	return acc, nil
}

// deriveNodeEq produces Q(X → [u.id = v.id]) by replaying the node
// proof-forest explanation.
func (pr *prover) deriveNodeEq(u, v pattern.Var) (int, error) {
	if u == v {
		return pr.extractSingleton(ged.IDLit(u, u)) // from X_id
	}
	chain := pr.res.Eq.ExplainNodes(pr.vm[u], pr.vm[v])
	if chain == nil {
		return 0, fmt.Errorf("axiom: %s and %s are not identified", u, v)
	}
	var links []chainLink
	for _, link := range chain {
		lit := ged.IDLit(pr.inv[link.A], pr.inv[link.B])
		idx, err := pr.extractSingleton(lit)
		if err != nil {
			return 0, err
		}
		links = append(links, chainLink{idx: idx, lit: lit})
	}
	acc, err := pr.foldChain(links)
	if err != nil {
		return 0, err
	}
	want := ged.IDLit(u, v)
	if acc.lit != want {
		return 0, fmt.Errorf("axiom: internal: derived %s, want %s", acc.lit, want)
	}
	return acc.idx, nil
}

// endpointOperand renders a value-forest endpoint as a literal operand.
func (pr *prover) endpointOperand(e chase.ValueEndpoint) ged.Operand {
	if e.IsConst {
		return ged.Const(e.Const)
	}
	return ged.AttrOf(pr.inv[e.Node], e.Attr)
}

// deriveGED2 produces Q(X → [u.A = v.A]) for identified nodes nu, nv
// whose attribute A exists, by conjoining the id literal into the
// accumulated consequent and applying GED2.
func (pr *prover) deriveGED2(nu, nv graph.NodeID, a graph.Attr) (int, error) {
	u, v := pr.inv[nu], pr.inv[nv]
	lit := ged.VarLit(u, a, v, a)
	if idx, ok := pr.singleton[litKey(lit)]; ok {
		return idx, nil
	}
	idIdx, err := pr.deriveSingleton(ged.IDLit(u, v))
	if err != nil {
		return 0, err
	}
	joined := pr.conjoin(pr.cur, idIdx)
	idx := pr.add(Step{Rule: RuleGED2, Concl: pr.mk([]ged.Literal{lit}), Prem: []int{joined}})
	pr.singleton[litKey(lit)] = idx
	return idx, nil
}

// deriveValueEq produces Q(X → [l]) for a variable or constant literal
// deducible from the final relation, by bridging to the proof-forest
// anchors with GED2 and replaying the value explanation.
func (pr *prover) deriveValueEq(l ged.Literal) (int, error) {
	eq := pr.res.Eq

	// anchorFor returns the forest term for an attribute operand plus an
	// optional bridge link [op = anchor-op].
	anchorFor := func(op ged.Operand) (chase.Term, *chainLink, error) {
		n := pr.vm[op.Var]
		if t, ok := eq.SlotTermExact(n, op.Attr); ok {
			return t, nil, nil
		}
		t, owner, ok := eq.ClassSlotTerm(n, op.Attr)
		if !ok {
			return 0, nil, fmt.Errorf("axiom: %s has no attribute %s", op.Var, op.Attr)
		}
		idx, err := pr.deriveGED2(n, owner, op.Attr)
		if err != nil {
			return 0, nil, err
		}
		return t, &chainLink{idx: idx, lit: ged.VarLit(op.Var, op.Attr, pr.inv[owner], op.Attr)}, nil
	}

	var links []chainLink
	var startTerm, endTerm chase.Term
	var err error

	var startBridge, endBridge *chainLink
	startTerm, startBridge, err = anchorFor(l.Left)
	if err != nil {
		return 0, err
	}
	if l.Right.Kind == ged.OperandConst {
		t, ok := eq.ConstTermExact(l.Right.Const)
		if !ok {
			return 0, fmt.Errorf("axiom: constant %s not in the relation", l.Right.Const)
		}
		endTerm = t
	} else {
		endTerm, endBridge, err = anchorFor(l.Right)
		if err != nil {
			return 0, err
		}
	}

	if startBridge != nil {
		links = append(links, *startBridge)
	}
	for _, vl := range eq.ExplainTerms(startTerm, endTerm) {
		link, err := pr.valueLink(vl)
		if err != nil {
			return 0, err
		}
		links = append(links, link)
	}
	if endBridge != nil {
		// The bridge proves [right = anchor]; the chain needs
		// [anchor = right], i.e. its flip.
		flipped := endBridge.lit.Flip()
		idx := pr.add(Step{Rule: RuleGED3, Concl: pr.mk([]ged.Literal{flipped}), Prem: []int{endBridge.idx}})
		links = append(links, chainLink{idx: idx, lit: flipped})
	}

	if len(links) == 0 {
		// Same term on both sides: x.A = x.A. Bounce through any literal
		// mentioning the operand.
		return pr.deriveReflexive(l.Left)
	}
	acc, err := pr.foldChain(links)
	if err != nil {
		return 0, err
	}
	want := ged.Literal{Left: l.Left, Right: l.Right, Op: ged.OpEq}
	if acc.lit != want {
		return 0, fmt.Errorf("axiom: internal: derived %s, want %s", acc.lit, want)
	}
	return acc.idx, nil
}

// valueLink turns one value-forest explanation edge into a proven
// singleton [A = B].
func (pr *prover) valueLink(vl chase.ValueLink) (chainLink, error) {
	switch vl.Reason.Kind {
	case chase.ReasonIDProp:
		if vl.A.IsConst || vl.B.IsConst {
			return chainLink{}, fmt.Errorf("axiom: internal: IDProp link with constant endpoint")
		}
		idx, err := pr.deriveGED2(vl.A.Node, vl.B.Node, vl.A.Attr)
		if err != nil {
			return chainLink{}, err
		}
		return chainLink{idx: idx, lit: ged.VarLit(pr.inv[vl.A.Node], vl.A.Attr, pr.inv[vl.B.Node], vl.B.Attr)}, nil
	case chase.ReasonInitial:
		return chainLink{}, fmt.Errorf("axiom: internal: initial-attribute link on a canonical graph")
	default: // ReasonGiven, ReasonStep: the literal is textual in Y_cur.
		lit := ged.Literal{Left: pr.endpointOperand(vl.A), Right: pr.endpointOperand(vl.B), Op: ged.OpEq}
		idx, err := pr.extractSingleton(lit)
		if err != nil {
			return chainLink{}, err
		}
		return chainLink{idx: idx, lit: lit}, nil
	}
}

// deriveReflexive produces Q(X → [op = op]) by bouncing through any
// accumulated literal mentioning op.
func (pr *prover) deriveReflexive(op ged.Operand) (int, error) {
	lit := ged.Literal{Left: op, Right: op, Op: ged.OpEq}
	if idx, ok := pr.singleton[litKey(lit)]; ok {
		return idx, nil
	}
	for _, l := range pr.concl(pr.cur).Y {
		var other ged.Operand
		switch {
		case l.Left == op:
			other = l.Right
		case l.Right == op:
			other = l.Left
		default:
			continue
		}
		forward := ged.Literal{Left: op, Right: other, Op: ged.OpEq}
		fIdx, err := pr.extractSingleton(forward)
		if err != nil {
			return 0, err
		}
		back := forward.Flip()
		bIdx := pr.add(Step{Rule: RuleGED3, Concl: pr.mk([]ged.Literal{back}), Prem: []int{fIdx}})
		acc, err := pr.foldChain([]chainLink{{fIdx, forward}, {bIdx, back}})
		if err != nil {
			return 0, err
		}
		pr.singleton[litKey(lit)] = acc.idx
		return acc.idx, nil
	}
	return 0, fmt.Errorf("axiom: internal: no literal mentions %s", op)
}
