package axiom

import (
	"fmt"

	"gedlib/internal/ged"
	"gedlib/internal/pattern"
)

// Weaken extends a proof whose final step concludes Q[x̄](X → Y) with a
// derivation of Q[x̄](X → Y1) for a subset Y1 ⊆ Y. This is the derived
// projection rule the paper calls GED7 (Example 8(a)): it is not a
// primitive of A_GED, but is assembled from GED3 (to isolate single
// literals), GED6 with the identity match (to conjoin them), and GED5
// when X ∪ Y is inconsistent.
//
// The extended proof's target becomes Q[x̄](X → Y1).
func Weaken(p *Proof, y1 []ged.Literal) (*Proof, error) {
	if len(p.Steps) == 0 {
		return nil, fmt.Errorf("axiom: weakening an empty proof")
	}
	lastIdx := len(p.Steps) - 1
	base := p.Steps[lastIdx].Concl
	ys := litSet(base.Y)
	for _, l := range y1 {
		if !ys[litKey(l)] {
			return nil, fmt.Errorf("axiom: literal %s is not in the proven consequent", l)
		}
	}
	out := &Proof{
		Target: ged.New(p.Target.Name, base.Pattern, base.X, y1),
		Steps:  append([]Step{}, p.Steps...),
	}
	mk := func(y []ged.Literal) *ged.GED { return ged.New("", base.Pattern, base.X, y) }
	add := func(s Step) int {
		out.Steps = append(out.Steps, s)
		return len(out.Steps) - 1
	}

	// Inconsistent X ∪ Y: GED5 concludes anything at once.
	if eq, _ := eqOf(base.Pattern, base.X, base.Y); !eq.Consistent() {
		add(Step{Rule: RuleGED5, Concl: mk(y1), Prem: []int{lastIdx}})
		return out, nil
	}
	if len(y1) == 0 {
		// A vacuous target; Check's empty-Y convention accepts the base.
		return out, nil
	}

	// Extract each literal as a singleton via double GED3.
	var singles []int
	for _, l := range y1 {
		mid := add(Step{Rule: RuleGED3, Concl: mk([]ged.Literal{l.Flip()}), Prem: []int{lastIdx}})
		singles = append(singles, add(Step{Rule: RuleGED3, Concl: mk([]ged.Literal{l}), Prem: []int{mid}}))
	}
	// Conjoin with identity-match GED6.
	h := make(map[pattern.Var]pattern.Var)
	for _, v := range base.Pattern.Vars() {
		h[v] = v
	}
	acc := singles[0]
	accY := []ged.Literal{y1[0]}
	for i, s := range singles[1:] {
		accY = append(accY, y1[i+1])
		acc = add(Step{Rule: RuleGED6, Concl: mk(append([]ged.Literal{}, accY...)),
			Prem: []int{acc, s}, Match: h})
	}
	return out, nil
}
