package axiom

import (
	"testing"

	"gedlib/internal/ged"
	"gedlib/internal/graph"
	"gedlib/internal/pattern"
)

func TestWeakenProjectsConsequent(t *testing.T) {
	// Prove Q(X → b ∧ c) from Σ, then project to Q(X → c) via GED7.
	q := singleNodeQ("p")
	full := ged.New("full", q,
		[]ged.Literal{ged.ConstLit("x", "a", graph.Int(1))},
		[]ged.Literal{ged.ConstLit("x", "b", graph.Int(2)), ged.ConstLit("x", "c", graph.Int(3))})
	sigma := ged.Set{full}
	p, err := Prove(sigma, full)
	if err != nil {
		t.Fatal(err)
	}
	w, err := Weaken(p, []ged.Literal{ged.ConstLit("x", "c", graph.Int(3))})
	if err != nil {
		t.Fatal(err)
	}
	if err := Check(sigma, w); err != nil {
		t.Fatalf("weakened proof rejected: %v\n%s", err, w)
	}
	if len(w.Target.Y) != 1 || w.Target.Y[0] != ged.ConstLit("x", "c", graph.Int(3)) {
		t.Errorf("weakened target wrong: %s", w.Target)
	}
}

func TestWeakenBothLiterals(t *testing.T) {
	q := singleNodeQ("p")
	full := ged.New("full", q, nil,
		[]ged.Literal{ged.ConstLit("x", "b", graph.Int(2)), ged.ConstLit("x", "c", graph.Int(3))})
	sigma := ged.Set{full}
	p, err := Prove(sigma, full)
	if err != nil {
		t.Fatal(err)
	}
	// Projecting to the full set (reordered) still checks.
	w, err := Weaken(p, []ged.Literal{ged.ConstLit("x", "c", graph.Int(3)), ged.ConstLit("x", "b", graph.Int(2))})
	if err != nil {
		t.Fatal(err)
	}
	if err := Check(sigma, w); err != nil {
		t.Fatalf("Check: %v\n%s", err, w)
	}
}

func TestWeakenRejectsForeignLiteral(t *testing.T) {
	q := singleNodeQ("p")
	full := ged.New("full", q, nil, []ged.Literal{ged.ConstLit("x", "b", graph.Int(2))})
	p, err := Prove(ged.Set{full}, full)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := Weaken(p, []ged.Literal{ged.ConstLit("x", "zz", graph.Int(9))}); err == nil {
		t.Error("literal outside the consequent accepted")
	}
}

func TestWeakenInconsistent(t *testing.T) {
	// X ∪ Y inconsistent: the projection goes through GED5.
	q := singleNodeQ("p")
	phi := ged.New("phi", q,
		[]ged.Literal{ged.ConstLit("x", "a", graph.Int(1)), ged.ConstLit("x", "a", graph.Int(2))},
		[]ged.Literal{ged.ConstLit("x", "b", graph.Int(2)), ged.ConstLit("x", "c", graph.Int(3))})
	sigma := ged.Set{}
	p, err := Prove(sigma, phi)
	if err != nil {
		t.Fatal(err)
	}
	w, err := Weaken(p, []ged.Literal{ged.ConstLit("x", "b", graph.Int(2))})
	if err != nil {
		t.Fatal(err)
	}
	if err := Check(sigma, w); err != nil {
		t.Fatalf("Check: %v\n%s", err, w)
	}
	usedGED5 := false
	for _, s := range w.Steps {
		if s.Rule == RuleGED5 {
			usedGED5 = true
		}
	}
	if !usedGED5 {
		t.Error("inconsistent weakening must use GED5")
	}
}

func TestWeakenVariableLiterals(t *testing.T) {
	q := pattern.New()
	q.AddVar("x", "a").AddVar("y", "a")
	full := ged.New("full", q,
		[]ged.Literal{ged.VarLit("x", "k", "y", "k")},
		[]ged.Literal{ged.IDLit("x", "y"), ged.VarLit("x", "m", "y", "m")})
	sigma := ged.Set{full}
	p, err := Prove(sigma, full)
	if err != nil {
		t.Fatal(err)
	}
	w, err := Weaken(p, []ged.Literal{ged.IDLit("x", "y")})
	if err != nil {
		t.Fatal(err)
	}
	if err := Check(sigma, w); err != nil {
		t.Fatalf("Check: %v\n%s", err, w)
	}
}
