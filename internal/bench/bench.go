// Package bench is the experiment harness that regenerates the paper's
// evaluation artifacts — Table 1 (the complexity landscape of the
// satisfiability, implication and validation problems across the GED
// sub-classes and extensions) and the tractable-case observation of
// Section 5.3 — as measured decision-correctness and scaling series.
//
// The paper reports complexity classes, not wall-clock numbers, so the
// reproduction target is the *shape* of each row: which problems are
// decidable in constant time (GFDx satisfiability), which scale
// polynomially (bounded patterns), and which exhibit the exponential
// growth of the hardness families.
package bench

import (
	"context"
	"fmt"
	"io"
	"time"

	"gedlib/internal/gdc"
	"gedlib/internal/ged"
	"gedlib/internal/gedor"
	"gedlib/internal/gen"
	"gedlib/internal/graph"
	"gedlib/internal/pattern"
	"gedlib/internal/reason"
)

// Row is one measured cell of the Table 1 reproduction.
type Row struct {
	// Class is the dependency class (GED, GFD, GKey, GEDx, GFDx, GDC, GED∨).
	Class string `json:"class"`
	// Problem is satisfiability, implication or validation.
	Problem string `json:"problem"`
	// Instance describes the workload.
	Instance string `json:"instance"`
	// Expected and Got are the ground-truth and computed decisions.
	Expected string `json:"expected"`
	Got      string `json:"got"`
	// Elapsed is the wall-clock time of the decision procedure.
	Elapsed time.Duration `json:"elapsed_ns"`
}

// Report is a collection of measured rows.
type Report struct {
	Rows []Row
}

// Correct counts rows whose decision matched the ground truth.
func (r *Report) Correct() (ok, total int) {
	for _, row := range r.Rows {
		if row.Expected == row.Got {
			ok++
		}
	}
	return ok, len(r.Rows)
}

// Write renders the report as an aligned table.
func (r *Report) Write(w io.Writer) {
	fmt.Fprintf(w, "%-6s %-14s %-22s %-10s %-10s %12s\n",
		"CLASS", "PROBLEM", "INSTANCE", "EXPECTED", "GOT", "TIME")
	for _, row := range r.Rows {
		mark := " "
		if row.Expected != row.Got {
			mark = "!"
		}
		fmt.Fprintf(w, "%-6s %-14s %-22s %-10s %-10s %12s %s\n",
			row.Class, row.Problem, row.Instance, row.Expected, row.Got, row.Elapsed.Round(time.Microsecond), mark)
	}
	ok, total := r.Correct()
	fmt.Fprintf(w, "\n%d/%d decisions match ground truth\n", ok, total)
}

func b2s(b bool) string {
	if b {
		return "yes"
	}
	return "no"
}

// hardnessInputs are the 3-colorability instances driving the lower
// bound families, with their ground truth.
func hardnessInputs() []struct {
	name string
	h    *gen.UGraph
	chi3 bool
} {
	return []struct {
		name string
		h    *gen.UGraph
		chi3 bool
	}{
		{"K3", gen.Complete(3), true},
		{"K4", gen.Complete(4), false},
		{"C5", gen.Cycle(5), true},
		{"W4", gen.Wheel(4), true},
		{"W5", gen.Wheel(5), false},
		{"K23", gen.CompleteBipartite(2, 3), true},
		{"Grotzsch", gen.Grotzsch(), false},
	}
}

// Table1 runs every reproduced cell of Table 1 and returns the report.
// The quick flag drops the slowest instances (the Grötzsch graph).
func Table1(quick bool) *Report {
	rep := &Report{}
	inputs := hardnessInputs()
	if quick {
		inputs = inputs[:5]
	}

	// --- Satisfiability ---
	for _, in := range inputs {
		sigma := gen.SatGFDFamily(in.h)
		start := time.Now()
		got := reason.CheckSat(sigma).Satisfiable
		rep.Rows = append(rep.Rows, Row{
			Class: "GFD", Problem: "satisfiability", Instance: "3col/" + in.name,
			Expected: b2s(!in.chi3), Got: b2s(got), Elapsed: time.Since(start),
		})
	}
	// GED satisfiability: the GFD family extended with a harmless GKey,
	// exercising id literals in the same decision.
	for _, in := range inputs[:3] {
		sigma := gen.SatGFDFamily(in.h)
		q := pattern.New()
		q.AddVar("a", "album")
		key, err := ged.NewGKey("k", q, "a", func(x, fx pattern.Var) []ged.Literal {
			return []ged.Literal{ged.VarLit(x, "title", fx, "title")}
		})
		if err != nil {
			panic(err)
		}
		sigma = append(sigma, key)
		start := time.Now()
		got := reason.CheckSat(sigma).Satisfiable
		rep.Rows = append(rep.Rows, Row{
			Class: "GED", Problem: "satisfiability", Instance: "3col+key/" + in.name,
			Expected: b2s(!in.chi3), Got: b2s(got), Elapsed: time.Since(start),
		})
	}
	// GKey/GEDx satisfiability: recursive keys are always satisfiable
	// on their own (no constants to conflict); checked as ground truth.
	start := time.Now()
	got := reason.CheckSat(gen.PaperKeys()).Satisfiable
	rep.Rows = append(rep.Rows, Row{
		Class: "GKey", Problem: "satisfiability", Instance: "psi1-3",
		Expected: "yes", Got: b2s(got), Elapsed: time.Since(start),
	})
	// GFDx satisfiability: O(1) — always satisfiable.
	start = time.Now()
	sigma, _ := gen.ImplGFDxFamily(gen.Wheel(5))
	got = reason.CheckSat(sigma).Satisfiable
	rep.Rows = append(rep.Rows, Row{
		Class: "GFDx", Problem: "satisfiability", Instance: "any (O(1): yes)",
		Expected: "yes", Got: b2s(got), Elapsed: time.Since(start),
	})

	// --- Implication ---
	for _, in := range inputs {
		sigma, phi := gen.ImplGFDxFamily(in.h)
		start := time.Now()
		got := reason.Implies(sigma, phi).Implied
		rep.Rows = append(rep.Rows, Row{
			Class: "GFDx", Problem: "implication", Instance: "3col/" + in.name,
			Expected: b2s(in.chi3), Got: b2s(got), Elapsed: time.Since(start),
		})
	}
	for _, in := range inputs {
		if quick && in.name == "Grotzsch" {
			continue
		}
		sigma, phi := gen.ImplGKeyFamily(in.h)
		start := time.Now()
		got := reason.Implies(sigma, phi).Implied
		rep.Rows = append(rep.Rows, Row{
			Class: "GKey", Problem: "implication", Instance: "3col/" + in.name,
			Expected: b2s(in.chi3), Got: b2s(got), Elapsed: time.Since(start),
		})
	}

	// --- Validation ---
	for _, in := range inputs {
		g, sigma := gen.ValidGFDxFamily(in.h)
		start := time.Now()
		got := reason.Satisfies(g, sigma)
		rep.Rows = append(rep.Rows, Row{
			Class: "GFDx", Problem: "validation", Instance: "3col/" + in.name,
			Expected: b2s(!in.chi3), Got: b2s(got), Elapsed: time.Since(start),
		})
	}
	for _, in := range inputs {
		g, sigma := gen.ValidGKeyFamily(in.h)
		start := time.Now()
		got := reason.Satisfies(g, sigma)
		rep.Rows = append(rep.Rows, Row{
			Class: "GKey", Problem: "validation", Instance: "3col/" + in.name,
			Expected: b2s(!in.chi3), Got: b2s(got), Elapsed: time.Since(start),
		})
	}
	// GED/GFD validation on the knowledge-base workload: dirty KBs fail,
	// clean KBs pass.
	for _, rate := range []float64{0, 0.3} {
		g, stats := gen.KnowledgeBase(7, 50, rate)
		sigma := ged.Set{gen.PaperPhi1(), gen.PaperPhi2(), gen.PaperPhi3(), gen.PaperPhi4()}
		start := time.Now()
		got := reason.Satisfies(g, sigma)
		rep.Rows = append(rep.Rows, Row{
			Class: "GFD", Problem: "validation", Instance: fmt.Sprintf("KB(rate=%.1f)", rate),
			Expected: b2s(stats.Total() == 0), Got: b2s(got), Elapsed: time.Since(start),
		})
	}
	// GED (keys) validation on the music catalog.
	for _, rate := range []float64{0, 0.4} {
		g, stats := gen.MusicDB(7, 40, rate)
		start := time.Now()
		got := reason.Satisfies(g, gen.PaperKeys())
		rep.Rows = append(rep.Rows, Row{
			Class: "GED", Problem: "validation", Instance: fmt.Sprintf("music(rate=%.1f)", rate),
			Expected: b2s(stats.DupPairs == 0), Got: b2s(got), Elapsed: time.Since(start),
		})
	}

	// --- GDC row (Theorem 8) ---
	dom := gdc.DomainConstraint("tau", "A", graph.Int(0), graph.Int(1))
	start = time.Now()
	gv := gdc.CheckSat(dom).Satisfiable
	rep.Rows = append(rep.Rows, Row{
		Class: "GDC", Problem: "satisfiability", Instance: "domain{0,1}",
		Expected: "true", Got: gv.String(), Elapsed: time.Since(start),
	})
	conflict := append(gdc.Set{}, dom...)
	conflict = append(conflict, gdc.New("ne", dom[0].Pattern, nil, []ged.Literal{
		ged.Cmp("x", "A", ged.OpNe, graph.Int(0)),
		ged.Cmp("x", "A", ged.OpNe, graph.Int(1)),
	}))
	start = time.Now()
	gv = gdc.CheckSat(conflict).Satisfiable
	rep.Rows = append(rep.Rows, Row{
		Class: "GDC", Problem: "satisfiability", Instance: "domain-conflict",
		Expected: "false", Got: gv.String(), Elapsed: time.Since(start),
	})
	lt5 := gdc.Set{gdc.New("lt5", nodePattern("p"), nil, []ged.Literal{ged.Cmp("x", "a", ged.OpLt, graph.Int(5))})}
	lt10 := gdc.New("lt10", nodePattern("p"), nil, []ged.Literal{ged.Cmp("x", "a", ged.OpLt, graph.Int(10))})
	start = time.Now()
	iv := gdc.Implies(lt5, lt10).Implied
	rep.Rows = append(rep.Rows, Row{
		Class: "GDC", Problem: "implication", Instance: "a<5 ⊨ a<10",
		Expected: "true", Got: iv.String(), Elapsed: time.Since(start),
	})
	start = time.Now()
	iv = gdc.Implies(gdc.Set{lt10}, lt5[0]).Implied
	rep.Rows = append(rep.Rows, Row{
		Class: "GDC", Problem: "implication", Instance: "a<10 ⊭ a<5",
		Expected: "false", Got: iv.String(), Elapsed: time.Since(start),
	})
	g := graph.New()
	g.AddNodeAttrs("p", map[graph.Attr]graph.Value{"a": graph.Int(3)})
	start = time.Now()
	ok := gdc.Satisfies(g, lt5)
	rep.Rows = append(rep.Rows, Row{
		Class: "GDC", Problem: "validation", Instance: "a=3 vs a<5",
		Expected: "yes", Got: b2s(ok), Elapsed: time.Since(start),
	})

	// --- GED∨ row (Theorem 9) ---
	psi := gedor.DomainConstraint("tau", "A", graph.Int(0), graph.Int(1))
	start = time.Now()
	ov := gedor.CheckSat(gedor.Set{psi}).Satisfiable
	rep.Rows = append(rep.Rows, Row{
		Class: "GED∨", Problem: "satisfiability", Instance: "domain{0,1}",
		Expected: "true", Got: ov.String(), Elapsed: time.Since(start),
	})
	narrow := gedor.New("n", nodePattern("tau"), nil, []ged.Literal{ged.ConstLit("x", "A", graph.Int(0))})
	start = time.Now()
	oiv := gedor.Implies(gedor.Set{narrow}, psi).Implied
	rep.Rows = append(rep.Rows, Row{
		Class: "GED∨", Problem: "implication", Instance: "A=0 ⊨ A∈{0,1}",
		Expected: "true", Got: oiv.String(), Elapsed: time.Since(start),
	})
	start = time.Now()
	oiv = gedor.Implies(gedor.Set{psi}, narrow).Implied
	rep.Rows = append(rep.Rows, Row{
		Class: "GED∨", Problem: "implication", Instance: "A∈{0,1} ⊭ A=0",
		Expected: "false", Got: oiv.String(), Elapsed: time.Since(start),
	})
	g2 := graph.New()
	g2.AddNodeAttrs("tau", map[graph.Attr]graph.Value{"A": graph.Int(1)})
	start = time.Now()
	ok = gedor.Satisfies(g2, gedor.Set{psi})
	rep.Rows = append(rep.Rows, Row{
		Class: "GED∨", Problem: "validation", Instance: "A=1 vs domain",
		Expected: "yes", Got: b2s(ok), Elapsed: time.Since(start),
	})
	return rep
}

func nodePattern(l graph.Label) *pattern.Pattern {
	q := pattern.New()
	q.AddVar("x", l)
	return q
}

// ScalingPoint is one measurement of a scaling series.
type ScalingPoint struct {
	Size    int           `json:"size"`
	Elapsed time.Duration `json:"elapsed_ns"`
}

// BoundedPatternValidation measures Section 5.3's tractable case:
// validating fixed-size patterns against growing graphs is polynomial.
// It returns one point per graph size.
func BoundedPatternValidation(sizes []int) []ScalingPoint {
	sigma := ged.Set{gen.PaperPhi1(), gen.PaperPhi2(), gen.PaperPhi3(), gen.PaperPhi4()}
	var out []ScalingPoint
	for _, n := range sizes {
		g, _ := gen.KnowledgeBase(11, n, 0.1)
		start := time.Now()
		reason.Validate(g, sigma, 0)
		out = append(out, ScalingPoint{Size: g.Size(), Elapsed: time.Since(start)})
	}
	return out
}

// GFDxSatConstant measures the O(1) row: satisfiability of GFDx sets of
// growing size, which the solver recognizes without conflicts.
func GFDxSatConstant(sizes []int) []ScalingPoint {
	var out []ScalingPoint
	for _, n := range sizes {
		h := gen.Cycle(2*n + 4)
		sigma, _ := gen.ImplGFDxFamily(h)
		start := time.Now()
		if !reason.DecideSat(sigma) {
			panic("bench: GFDx set reported unsatisfiable")
		}
		out = append(out, ScalingPoint{Size: sigma.Size(), Elapsed: time.Since(start)})
	}
	return out
}

// WriteScaling renders a scaling series.
func WriteScaling(w io.Writer, name string, pts []ScalingPoint) {
	fmt.Fprintf(w, "%s\n%-10s %12s\n", name, "SIZE", "TIME")
	for _, p := range pts {
		fmt.Fprintf(w, "%-10d %12s\n", p.Size, p.Elapsed.Round(time.Microsecond))
	}
}

// ComparisonPoint is one measurement of the storage-model comparison:
// full validation of the knowledge-base workload over the mutable
// map-backed graph versus the frozen CSR snapshot (freeze cost
// included, and separately the amortized re-run against a cached
// snapshot — the Engine's steady state).
type ComparisonPoint struct {
	Size       int           `json:"size"`
	Violations int           `json:"violations"`
	Mutable    time.Duration `json:"mutable_ns"`
	Freeze     time.Duration `json:"freeze_ns"`
	Snapshot   time.Duration `json:"snapshot_ns"`
	Cached     time.Duration `json:"cached_ns"`
}

// Speedup is the steady-state gain of the snapshot path: mutable time
// over cached-snapshot time.
func (p ComparisonPoint) Speedup() float64 {
	if p.Cached <= 0 {
		return 0
	}
	return float64(p.Mutable) / float64(p.Cached)
}

// CompareValidation measures both validation storage paths on growing
// knowledge-base workloads under the paper's rules φ₁–φ₄. Both paths
// run the same matcher over the same rule set and return identical
// violation sets; only the host representation differs.
func CompareValidation(scales []int) []ComparisonPoint {
	ctx := context.Background()
	sigma := ged.Set{gen.PaperPhi1(), gen.PaperPhi2(), gen.PaperPhi3(), gen.PaperPhi4()}
	var out []ComparisonPoint
	for _, n := range scales {
		g, _ := gen.KnowledgeBase(11, n, 0.1)

		// Warm both paths once: the cached column is the Engine's steady
		// state, where the plans' pushed-down literal postings (built
		// lazily on the snapshot's first use, then delta-maintained) are
		// already materialized.
		warmSnap := g.Freeze()
		reason.ValidateOnCtx(ctx, g, sigma, 1)
		reason.ValidateOnCtx(ctx, warmSnap, sigma, 1)

		start := time.Now()
		vs, _ := reason.ValidateOnCtx(ctx, g, sigma, 0)
		mutable := time.Since(start)

		start = time.Now()
		snap := g.Freeze()
		freeze := time.Since(start)

		snap.NumPostings() // materialize postings, as the Engine's cache would have
		start = time.Now()
		vs2, _ := reason.ValidateOnCtx(ctx, snap, sigma, 0)
		cached := time.Since(start)

		if len(vs) != len(vs2) {
			panic("bench: storage paths disagree on violation count")
		}
		out = append(out, ComparisonPoint{
			Size:       g.Size(),
			Violations: len(vs),
			Mutable:    mutable,
			Freeze:     freeze,
			Snapshot:   freeze + cached,
			Cached:     cached,
		})
	}
	return out
}

// WriteComparison renders the storage-model comparison.
func WriteComparison(w io.Writer, pts []ComparisonPoint) {
	fmt.Fprintf(w, "%-10s %-6s %12s %12s %12s %12s %8s\n",
		"SIZE", "VIOL", "MUTABLE", "FREEZE", "SNAPSHOT", "CACHED", "SPEEDUP")
	for _, p := range pts {
		fmt.Fprintf(w, "%-10d %-6d %12s %12s %12s %12s %7.2fx\n",
			p.Size, p.Violations,
			p.Mutable.Round(time.Microsecond), p.Freeze.Round(time.Microsecond),
			p.Snapshot.Round(time.Microsecond), p.Cached.Round(time.Microsecond),
			p.Speedup())
	}
}
