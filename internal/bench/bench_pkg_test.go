package bench

import (
	"bytes"
	"strings"
	"testing"
)

func TestTable1AllCorrect(t *testing.T) {
	if testing.Short() {
		t.Skip("table 1 reproduction is slow")
	}
	rep := Table1(true)
	ok, total := rep.Correct()
	if ok != total {
		var b bytes.Buffer
		rep.Write(&b)
		t.Fatalf("%d/%d decisions wrong:\n%s", total-ok, total, b.String())
	}
	if total < 25 {
		t.Errorf("expected at least 25 measured cells, got %d", total)
	}
	// Every class and problem of Table 1 must be covered.
	classes := map[string]bool{}
	problems := map[string]bool{}
	for _, r := range rep.Rows {
		classes[r.Class] = true
		problems[r.Problem] = true
	}
	for _, c := range []string{"GED", "GFD", "GKey", "GFDx", "GDC", "GED∨"} {
		if !classes[c] {
			t.Errorf("class %s not covered", c)
		}
	}
	for _, p := range []string{"satisfiability", "implication", "validation"} {
		if !problems[p] {
			t.Errorf("problem %s not covered", p)
		}
	}
}

func TestReportWrite(t *testing.T) {
	rep := &Report{Rows: []Row{
		{Class: "GFD", Problem: "validation", Instance: "x", Expected: "yes", Got: "yes"},
		{Class: "GFD", Problem: "validation", Instance: "y", Expected: "yes", Got: "no"},
	}}
	var b bytes.Buffer
	rep.Write(&b)
	s := b.String()
	if !strings.Contains(s, "1/2 decisions match") {
		t.Errorf("summary wrong:\n%s", s)
	}
	if !strings.Contains(s, "!") {
		t.Error("mismatches must be marked")
	}
}

func TestScalingSeries(t *testing.T) {
	pts := BoundedPatternValidation([]int{20, 40})
	if len(pts) != 2 || pts[1].Size <= pts[0].Size {
		t.Errorf("scaling points wrong: %+v", pts)
	}
	cpts := GFDxSatConstant([]int{2, 4})
	if len(cpts) != 2 {
		t.Errorf("constant series wrong: %+v", cpts)
	}
	var b bytes.Buffer
	WriteScaling(&b, "test", pts)
	if !strings.Contains(b.String(), "SIZE") {
		t.Error("scaling table header missing")
	}
}
