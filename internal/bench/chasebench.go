package bench

import (
	"context"
	"fmt"
	"io"
	"time"

	"gedlib/internal/chase"
	"gedlib/internal/ged"
	"gedlib/internal/gen"
	"gedlib/internal/graph"
	"gedlib/internal/pattern"
)

// ChasePoint is one measurement of the chase storage comparison: the
// same chase run with the legacy per-round coercion rebuild + full
// freeze versus the delta-maintained live coercion (the production
// path, where a round's snapshot advances by Snapshot.Apply).
type ChasePoint struct {
	Workload string        `json:"workload"`
	Size     int           `json:"size"`
	Steps    int           `json:"steps"`
	Refreeze time.Duration `json:"refreeze_ns"`
	Delta    time.Duration `json:"delta_ns"`
}

// Speedup is refreeze time over delta time.
func (p ChasePoint) Speedup() float64 {
	if p.Delta <= 0 {
		return 0
	}
	return float64(p.Refreeze) / float64(p.Delta)
}

// propagationChain builds the classic chase-chain workload: a path of
// n "cell" nodes where a mark set on the head must propagate hop by
// hop, one fixpoint round per hop. The rule set is a single GED
// (x -next-> y ∧ x.mark = 1 → y.mark = 1), so every round after the
// first applies exactly one bind step and changes nothing structural —
// the regime where the delta-maintained chase does no coercion
// rebuild, no freeze and no match re-enumeration at all.
func propagationChain(n int) (*graph.Graph, ged.Set) {
	g := graph.New()
	prev := g.AddNodeAttrs("cell", map[graph.Attr]graph.Value{"mark": graph.Int(1)})
	for i := 1; i < n; i++ {
		cur := g.AddNode("cell")
		g.AddEdge(prev, "next", cur)
		prev = cur
	}
	q := pattern.New()
	q.AddVar("x", "cell")
	q.AddVar("y", "cell")
	q.AddEdge("x", "next", "y")
	prop := ged.New("propagate", q,
		[]ged.Literal{ged.ConstLit("x", "mark", graph.Int(1))},
		[]ged.Literal{ged.ConstLit("y", "mark", graph.Int(1))})
	return g, ged.Set{prop}
}

// ChaseComparison measures both chase hosting strategies on three
// workload families: the music catalog under the paper's recursive
// keys (merge-heavy — every duplicate pair retires a coercion carrier,
// where the adaptive rebuild keeps the delta path at parity), the
// knowledge base under φ₁–φ₄ (mixed), and mark-propagation chains
// (bind-only rounds — the delta path's home turf, one O(pending)
// worklist re-check per round instead of a rebuild + freeze + full
// re-enumeration). Both strategies compute the same result; the
// comparison is pure maintenance cost.
func ChaseComparison(musicScales, kbScales []int) []ChasePoint {
	ctx := context.Background()
	var out []ChasePoint
	run := func(name string, build func() *graph.Graph, sigma ged.Set) {
		// Best of three runs per mode, on fresh graphs (the chase does
		// not mutate its input; fresh builds keep the runs independent
		// and the minimum suppresses GC noise).
		size := 0
		measure := func(opts chase.Options) (time.Duration, *chase.Result) {
			best := time.Duration(0)
			var res *chase.Result
			for i := 0; i < 3; i++ {
				g := build()
				size = g.Size()
				start := time.Now()
				r, err := chase.RunCtxOpts(ctx, g, sigma, nil, 0, opts)
				el := time.Since(start)
				if err != nil {
					panic(err)
				}
				if res == nil || el < best {
					best, res = el, r
				}
			}
			return best, res
		}
		// One throwaway run per mode warms the allocator so neither
		// mode pays the process's cold-start in its measurement.
		measure(chase.Options{})
		measure(chase.Options{RefreezeEachRound: true})
		delta, resD := measure(chase.Options{})
		refreeze, resR := measure(chase.Options{RefreezeEachRound: true})
		if resD.Consistent() != resR.Consistent() {
			panic("bench: chase hosting strategies disagree")
		}
		out = append(out, ChasePoint{
			Workload: name,
			Size:     size,
			Steps:    len(resD.Steps),
			Refreeze: refreeze,
			Delta:    delta,
		})
	}
	for _, n := range musicScales {
		n := n
		run(fmt.Sprintf("music(%d)", n), func() *graph.Graph {
			g, _ := gen.MusicDB(7, n, 0.3)
			return g
		}, gen.PaperKeys())
	}
	for _, n := range kbScales {
		n := n
		run(fmt.Sprintf("kb(%d)", n), func() *graph.Graph {
			g, _ := gen.KnowledgeBase(11, n, 0.1)
			return g
		}, ged.Set{gen.PaperPhi1(), gen.PaperPhi2(), gen.PaperPhi3(), gen.PaperPhi4()})
	}
	for _, n := range kbScales {
		n := n
		cg, sigma := propagationChain(n)
		run(fmt.Sprintf("chain(%d)", n), func() *graph.Graph { return cg.Clone() }, sigma)
	}
	return out
}

// WriteChase renders the chase comparison.
func WriteChase(w io.Writer, pts []ChasePoint) {
	fmt.Fprintf(w, "%-12s %-8s %-7s %12s %12s %8s\n",
		"WORKLOAD", "SIZE", "STEPS", "REFREEZE", "DELTA", "SPEEDUP")
	for _, p := range pts {
		fmt.Fprintf(w, "%-12s %-8d %-7d %12s %12s %7.2fx\n",
			p.Workload, p.Size, p.Steps,
			p.Refreeze.Round(time.Microsecond), p.Delta.Round(time.Microsecond),
			p.Speedup())
	}
}
