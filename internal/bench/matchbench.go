package bench

import (
	"fmt"
	"io"
	"math/rand"
	"sort"
	"time"

	"gedlib/internal/gen"
	"gedlib/internal/graph"
	"gedlib/internal/pattern"
)

// MatchPoint is one measurement of the match-enumeration comparison:
// the same pattern enumerated over the same snapshot by the legacy
// scan-and-probe extension step (first bound neighbor's adjacency
// scanned, every other constraint probed per candidate, literals
// checked post-match) and by the worst-case-optimal extension step
// (multi-way sorted-run intersection with pushed-down literal
// postings). Both paths are asserted to produce the same match count;
// the comparison is pure enumeration strategy.
type MatchPoint struct {
	// Scenario is "dense" (triangle/diamond-heavy knowledge base) or
	// "selective" (constant-literal antecedents on a knowledge base).
	Scenario string `json:"scenario"`
	Pattern  string `json:"pattern"`
	Size     int    `json:"size"`
	Matches  int    `json:"matches"`
	Iters    int    `json:"iters"`
	// Probe and Intersect are median per-enumeration times.
	Probe     time.Duration `json:"probe_ns"`
	Intersect time.Duration `json:"intersect_ns"`
}

// Speedup is the probe-path time over the intersection-path time.
func (p MatchPoint) Speedup() float64 {
	if p.Intersect <= 0 {
		return 0
	}
	return float64(p.Probe) / float64(p.Intersect)
}

// ScenarioSpeedup returns the median per-point speedup of one scenario.
func ScenarioSpeedup(pts []MatchPoint, scenario string) float64 {
	var ss []float64
	for _, p := range pts {
		if p.Scenario == scenario {
			ss = append(ss, p.Speedup())
		}
	}
	if len(ss) == 0 {
		return 0
	}
	sort.Float64s(ss)
	// Lower-middle median: with an even point count this is the
	// conservative choice, so the regression gate in gedbench cannot be
	// masked by one fast pattern.
	return ss[(len(ss)-1)/2]
}

// denseKB overlays a triadic "knows" collaboration network on the
// knowledge-base workload: each person closes knows-triangles with
// random peers, yielding the cyclic, hub-heavy neighborhood structure
// worst-case-optimal intersection is built for.
func denseKB(scale int) *graph.Graph {
	g, _ := gen.KnowledgeBase(11, scale, 0.1)
	rng := rand.New(rand.NewSource(17))
	persons := g.NodesWithLabel("person")
	for _, p := range persons {
		for k := 0; k < 4; k++ {
			a := persons[rng.Intn(len(persons))]
			b := persons[rng.Intn(len(persons))]
			g.AddEdge(p, "knows", a)
			g.AddEdge(a, "knows", b)
			g.AddEdge(p, "knows", b)
		}
	}
	return g
}

// matchCase is one measured (pattern, filters) pair.
type matchCase struct {
	scenario string
	name     string
	p        *pattern.Pattern
	filters  []pattern.ConstFilter
}

func matchCases() []matchCase {
	tri := pattern.New()
	tri.AddVar("x", "person").AddVar("y", "person").AddVar("z", "person")
	tri.AddEdge("x", "knows", "y").AddEdge("y", "knows", "z").AddEdge("x", "knows", "z")

	dia := pattern.New()
	dia.AddVar("x", "person").AddVar("y", "person").AddVar("z", "person").AddVar("w", "person")
	dia.AddEdge("x", "knows", "y").AddEdge("x", "knows", "z")
	dia.AddEdge("y", "knows", "w").AddEdge("z", "knows", "w")

	// φ₁'s antecedent shape: creators of video games, with the constant
	// literals of X pushed down. The "psychologist" literal keeps ~10%
	// of creators (the planted violation rate), the "video game"
	// literal filters the product side.
	create := pattern.New()
	create.AddVar("x", "person").AddVar("y", "product")
	create.AddEdge("x", "create", "y")
	createFilters := []pattern.ConstFilter{
		{Var: "x", Attr: "type", Value: graph.String("psychologist")},
		{Var: "y", Attr: "type", Value: graph.String("video game")},
	}

	// A joined two-hop with a selective literal on the far end:
	// creators knowing creators of video games.
	hop := pattern.New()
	hop.AddVar("x", "person").AddVar("y", "person").AddVar("z", "product")
	hop.AddEdge("x", "knows", "y").AddEdge("y", "create", "z")
	hopFilters := []pattern.ConstFilter{
		{Var: "x", Attr: "type", Value: graph.String("psychologist")},
		{Var: "z", Attr: "type", Value: graph.String("video game")},
	}

	return []matchCase{
		{scenario: "dense", name: "triangle", p: tri},
		{scenario: "dense", name: "diamond", p: dia},
		{scenario: "selective", name: "create-const", p: create, filters: createFilters},
		{scenario: "selective", name: "knows-create-const", p: hop, filters: hopFilters},
	}
}

// MatchEnumeration measures the probe and intersection extension steps
// on the triangle/diamond-heavy and selective-literal knowledge-base
// scenarios. quick shrinks the instance and iteration count for CI.
func MatchEnumeration(quick bool) []MatchPoint {
	scale, iters := 2000, 7
	if quick {
		scale, iters = 300, 3
	}
	g := denseKB(scale)
	snap := g.Freeze()

	var out []MatchPoint
	for _, c := range matchCases() {
		// The probe baseline enumerates every match of the bare pattern
		// and applies the constant literals post-match — exactly the
		// pre-pushdown validator shape. The intersection path compiles
		// the literals into the plan.
		probePlan := pattern.CompileProbe(c.p, snap)
		isectPlan := pattern.CompileFiltered(c.p, snap, c.filters)
		countProbe := func() int {
			n := 0
			probePlan.ForEachBound(nil, func(m pattern.Match) bool {
				for _, f := range c.filters {
					v, ok := snap.Attr(m[f.Var], f.Attr)
					if !ok || !v.Equal(f.Value) {
						return true
					}
				}
				n++
				return true
			})
			return n
		}
		countIsect := func() int {
			n := 0
			isectPlan.ForEachBound(nil, func(pattern.Match) bool {
				n++
				return true
			})
			return n
		}
		var probeTimes, isectTimes []time.Duration
		matches := -1
		for it := 0; it < iters; it++ {
			start := time.Now()
			np := countProbe()
			probeTimes = append(probeTimes, time.Since(start))
			start = time.Now()
			ni := countIsect()
			isectTimes = append(isectTimes, time.Since(start))
			if np != ni {
				panic(fmt.Sprintf("bench: match paths disagree on %s/%s: probe %d, intersect %d",
					c.scenario, c.name, np, ni))
			}
			matches = ni
		}
		out = append(out, MatchPoint{
			Scenario:  c.scenario,
			Pattern:   c.name,
			Size:      g.Size(),
			Matches:   matches,
			Iters:     iters,
			Probe:     medianDur(probeTimes),
			Intersect: medianDur(isectTimes),
		})
	}
	return out
}

func medianDur(ds []time.Duration) time.Duration {
	s := append([]time.Duration(nil), ds...)
	sort.Slice(s, func(i, j int) bool { return s[i] < s[j] })
	return s[len(s)/2]
}

// WriteMatch renders the match-enumeration comparison.
func WriteMatch(w io.Writer, pts []MatchPoint) {
	fmt.Fprintf(w, "%-10s %-20s %-10s %-8s %12s %12s %8s\n",
		"SCENARIO", "PATTERN", "SIZE", "MATCHES", "PROBE", "INTERSECT", "SPEEDUP")
	for _, p := range pts {
		fmt.Fprintf(w, "%-10s %-20s %-10d %-8d %12s %12s %7.2fx\n",
			p.Scenario, p.Pattern, p.Size, p.Matches,
			p.Probe.Round(time.Microsecond), p.Intersect.Round(time.Microsecond),
			p.Speedup())
	}
	fmt.Fprintf(w, "\nmedian speedup: dense %.2fx, selective %.2fx\n",
		ScenarioSpeedup(pts, "dense"), ScenarioSpeedup(pts, "selective"))
}
