package chase

import (
	"context"
	"errors"
	"fmt"

	"gedlib/internal/ged"
	"gedlib/internal/graph"
	"gedlib/internal/obs"
	"gedlib/internal/pattern"
)

// ErrDepthExceeded is returned by RunCtx when the chase has not reached
// a fixpoint within the configured number of rounds.
var ErrDepthExceeded = errors.New("chase: depth bound exceeded")

// Coercion is the graph G_Eq of Section 4.1 together with the maps
// relating it to the base graph: each node class becomes one node,
// labeled by the class's resolved label; edges are transported; and
// attributes with known constants are materialized.
type Coercion struct {
	// Graph is G_Eq.
	Graph *graph.Graph
	// NodeOf maps each base node to its coercion node.
	NodeOf map[graph.NodeID]graph.NodeID
	// RepOf maps each coercion node back to its class representative in
	// the base graph.
	RepOf []graph.NodeID
}

// Coerce builds the coercion of eq on its base graph. It must only be
// called on a consistent Eq (G_Eq is undefined otherwise).
func Coerce(eq *Eq) *Coercion {
	if !eq.Consistent() {
		panic("chase: coercion of inconsistent Eq")
	}
	g := eq.Graph()
	co := graph.New()
	c := &Coercion{Graph: co, NodeOf: make(map[graph.NodeID]graph.NodeID, g.NumNodes())}
	for _, id := range g.Nodes() {
		r := eq.NodeRoot(id)
		if cn, ok := c.NodeOf[r]; ok {
			c.NodeOf[id] = cn
			continue
		}
		cn := co.AddNode(eq.ClassLabel(r))
		c.NodeOf[r] = cn
		c.NodeOf[id] = cn
		c.RepOf = append(c.RepOf, r)
	}
	for _, e := range g.Edges() {
		co.AddEdge(c.NodeOf[e.Src], e.Label, c.NodeOf[e.Dst])
	}
	for cn, r := range c.RepOf {
		for _, a := range eq.ClassAttrs(r) {
			if v, ok := eq.AttrConst(r, a); ok {
				co.SetAttr(graph.NodeID(cn), a, v)
			}
		}
	}
	return c
}

// Step records one chase step Eq ⇒_(φ,h) Eq′ of the trace: which GED of
// Σ was applied, under which match (given as base-graph class
// representatives), enforcing which consequent literal.
type Step struct {
	// GED is the index of the applied dependency in Σ.
	GED int
	// Match maps the pattern variables to base-graph nodes (class
	// representatives at the time of the step).
	Match map[pattern.Var]graph.NodeID
	// Literal is the index of the enforced literal in the GED's Y.
	Literal int
}

// Result is the outcome chase(G, Σ) of Theorem 1: by the Church-Rosser
// property it is independent of the order in which GEDs were applied.
type Result struct {
	// Eq is the final equivalence relation. When the chase is invalid it
	// holds the relation at the failing step, with its Conflict set.
	Eq *Eq
	// Coercion is the final coercion G_Eq; nil when the chase is invalid
	// (the paper's ⊥).
	Coercion *Coercion
	// Steps is the chasing sequence applied.
	Steps []Step
	// Sigma is the chased dependency set.
	Sigma ged.Set
}

// Consistent reports whether the chase terminated in a valid sequence.
func (r *Result) Consistent() bool { return r.Eq.Consistent() }

// Seed is an initial extension of Eq0 before the chase runs; it realizes
// the relation Eq_X of the implication analysis (Section 5.2), expressed
// over base-graph nodes.
type Seed struct {
	Literal ged.Literal
	// Nodes resolves the literal's variables to base-graph nodes.
	Nodes map[pattern.Var]graph.NodeID
}

// SeedOf translates a literal over pattern variables into a Seed via the
// variable-to-node map vm.
func SeedOf(l ged.Literal, vm map[pattern.Var]graph.NodeID) Seed {
	nodes := make(map[pattern.Var]graph.NodeID)
	for _, v := range l.Vars() {
		nodes[v] = vm[v]
	}
	return Seed{Literal: l, Nodes: nodes}
}

// Run chases g by sigma starting from Eq0 (Theorem 1). The trace, final
// relation and coercion are returned; on an invalid sequence the result's
// Coercion is nil and Eq carries the conflict.
func Run(g *graph.Graph, sigma ged.Set) *Result {
	return RunSeeded(g, sigma, nil)
}

// RunSeeded chases g by sigma starting from Eq0 extended by the given
// seed literals — the chase(G_Q, Eq_X, Σ) of Section 5.2. Seeds are
// applied with ReasonGiven in order; a conflicting seed set makes the
// chase invalid immediately (an inconsistent Eq_X, Section 4.1 case (b)).
func RunSeeded(g *graph.Graph, sigma ged.Set, seeds []Seed) *Result {
	res, _ := RunCtx(context.Background(), g, sigma, seeds, 0)
	return res
}

// Options tunes RunCtxOpts. The zero value selects the production
// configuration.
type Options struct {
	// RefreezeEachRound forces the legacy behavior of re-coercing and
	// re-freezing the coercion graph at the start of every fixpoint
	// round, instead of maintaining one live coercion and advancing its
	// snapshot by deltas. Both modes compute the same chase (the
	// differential tests assert it); the flag exists so the benchmark
	// harness can measure the delta path against the full-freeze
	// baseline.
	RefreezeEachRound bool
}

// RunCtx is RunSeeded with cooperative cancellation and an optional
// round bound. The chase checks ctx between rounds, between matches and
// inside the matcher's backtracking search; on cancellation the partial
// Result (with its coercion materialized when the relation is still
// consistent) is returned alongside ctx's error. maxRounds > 0 bounds
// the number of fixpoint rounds (each round applies every GED over the
// current coercion); if the chase has not converged within the bound,
// ErrDepthExceeded is returned with the partial result. maxRounds <= 0
// means unbounded — the chase always terminates by Theorem 1, so the
// bound is a resource valve, not a semantics knob.
//
// The coercion graph is immutable within a round (chase steps mutate
// eq, not G_Eq), and between rounds it changes only by the node merges
// the round performed. RunCtx therefore builds the coercion and its
// frozen snapshot once, and each subsequent round only transports the
// merged classes' adjacency onto their surviving carriers and advances
// the snapshot by the resulting delta (graph.Snapshot.Apply) — no
// per-round O(|G|) freeze. Compiled match plans are rebound across the
// deltas for the same reason.
func RunCtx(ctx context.Context, g *graph.Graph, sigma ged.Set, seeds []Seed, maxRounds int) (*Result, error) {
	return RunCtxOpts(ctx, g, sigma, seeds, maxRounds, Options{})
}

// RunCtxOpts is RunCtx with explicit Options.
func RunCtxOpts(ctx context.Context, g *graph.Graph, sigma ged.Set, seeds []Seed, maxRounds int, opts Options) (*Result, error) {
	eq := NewEq(g)
	res := &Result{Eq: eq, Sigma: sigma}
	c := &chaser{ctx: ctx, eq: eq, res: res, sigma: sigma, maxRounds: maxRounds}
	if o := obs.FromContext(ctx); o != nil {
		c.roundCtr = o.Registry().Counter("ged_chase_rounds_total", "chase fixpoint rounds executed")
	}
	c.vars = make([][]pattern.Var, len(sigma))
	c.clits = make([]clitSet, len(sigma))
	for gi, d := range sigma {
		c.vars[gi] = d.Pattern.Vars()
		c.clits[gi] = compileLits(d, c.vars[gi])
	}
	for i, s := range seeds {
		applyLiteral(eq, s.Literal, s.Nodes, Reason{Kind: ReasonGiven, Seed: i})
		if !eq.Consistent() {
			return res, nil
		}
	}
	if opts.RefreezeEachRound {
		return c.runRefreeze()
	}
	return c.runDelta()
}

// chaser carries the shared state of one chase run.
type chaser struct {
	ctx       context.Context
	eq        *Eq
	res       *Result
	sigma     ged.Set
	vars      [][]pattern.Var // per GED, the pattern's variable order
	clits     []clitSet       // per GED, literals with variables index-resolved
	baseBuf   []graph.NodeID  // reused base-node translation scratch
	maxRounds int
	rounds    int
	roundCtr  *obs.Counter // ctx-injected observer's round tally, often nil
	// per-round accumulators
	changed bool
	// merges collects the node identifications of the current round, to
	// be folded into the live coercion before the next one.
	merges [][2]graph.NodeID
}

// clit is one GED literal with its variables resolved to indexes of the
// pattern's variable order, so the fixpoint loop evaluates it straight
// off a dense binding vector — no per-match map. Kind mirrors
// Literal.Kind.
type clit struct {
	kind   ged.LiteralKind
	li, ri int // variable indexes (ri unused for const literals)
	la, ra graph.Attr
	c      graph.Value
	src    ged.Literal // the original literal, for step application
}

// clitSet is one GED's compiled antecedent and consequent.
type clitSet struct {
	x, y []clit
}

func compileLits(d *ged.GED, vars []pattern.Var) clitSet {
	idx := make(map[pattern.Var]int, len(vars))
	for i, v := range vars {
		idx[v] = i
	}
	one := func(l ged.Literal) clit {
		k, ok := l.Kind()
		if !ok {
			panic(fmt.Sprintf("chase: non-GED literal %s", l))
		}
		cl := clit{kind: k, li: idx[l.Left.Var], la: l.Left.Attr, src: l}
		switch k {
		case ConstKind:
			cl.c = l.Right.Const
		default:
			cl.ri = idx[l.Right.Var]
			cl.ra = l.Right.Attr
		}
		return cl
	}
	var cs clitSet
	for _, l := range d.X {
		cs.x = append(cs.x, one(l))
	}
	for _, l := range d.Y {
		cs.y = append(cs.y, one(l))
	}
	return cs
}

// clitHolds evaluates one compiled literal against eq under the base
// node vector (bind translated through repOf by the caller).
func (c *chaser) clitHolds(cl *clit, base []graph.NodeID) bool {
	switch cl.kind {
	case ConstKind:
		v, ok := c.eq.AttrConst(base[cl.li], cl.la)
		return ok && v.Equal(cl.c)
	case VarKind:
		return c.eq.SameValue(base[cl.li], cl.la, base[cl.ri], cl.ra)
	default:
		return c.eq.SameNode(base[cl.li], base[cl.ri])
	}
}

// abort finalizes an interrupted chase: the partial result still
// carries a usable coercion so callers holding it do not trip over a
// nil Coercion in Materialize.
func (c *chaser) abort(err error) (*Result, error) {
	if c.eq.Consistent() {
		c.res.Coercion = Coerce(c.eq)
	}
	return c.res, err
}

// checkRound guards the top of each fixpoint round; done reports that
// the caller must return (res, err) immediately.
func (c *chaser) checkRound() (*Result, error, bool) {
	if err := c.ctx.Err(); err != nil {
		r, e := c.abort(err)
		return r, e, true
	}
	if c.maxRounds > 0 && c.rounds >= c.maxRounds {
		r, e := c.abort(ErrDepthExceeded)
		return r, e, true
	}
	c.rounds++
	c.roundCtr.Inc()
	return nil, nil, false
}

// enforce processes one coercion match of Σ[gi], given as the dense
// binding vector bind over the pattern's variable order: translate to
// base-graph class representatives, check the antecedent, and enforce
// every failing consequent literal as chase steps. It reports whether
// the match is settled — enforced or already satisfied — and therefore
// never needs to be revisited: literal satisfaction under Eq is
// monotone (Eq only grows), so a settled match stays settled. An
// antecedent that does not (yet) hold leaves the match pending.
//
// The check phase runs entirely on dense vectors and compiled literals;
// a variable map materializes only on the rare slow path that actually
// applies a step (and is then owned by the recorded trace entry).
func (c *chaser) enforce(gi int, repOf []graph.NodeID, bind []graph.NodeID) (settled bool) {
	base := c.baseBuf[:0]
	for _, cn := range bind {
		base = append(base, repOf[cn])
	}
	c.baseBuf = base
	cs := &c.clits[gi]
	for i := range cs.x {
		if !c.clitHolds(&cs.x[i], base) {
			return false
		}
	}
	for li := range cs.y {
		cl := &cs.y[li]
		if c.clitHolds(cl, base) {
			continue
		}
		vars := c.vars[gi]
		m := make(map[pattern.Var]graph.NodeID, len(vars))
		for i, x := range vars {
			m[x] = base[i]
		}
		step := len(c.res.Steps)
		c.res.Steps = append(c.res.Steps, Step{GED: gi, Match: m, Literal: li})
		if cl.kind == IDKind {
			c.merges = append(c.merges, [2]graph.NodeID{base[cl.li], base[cl.ri]})
		}
		applyLiteral(c.eq, cl.src, m, Reason{Kind: ReasonStep, Step: step})
		c.changed = true
		if !c.eq.Consistent() {
			return true
		}
	}
	return true
}

// runRefreeze is the legacy fixpoint loop: every round re-coerces,
// re-freezes and re-enumerates every match of every GED. It is the
// benchmark baseline and the differential-test oracle for runDelta.
func (c *chaser) runRefreeze() (*Result, error) {
	eq, sigma := c.eq, c.sigma
	stop := func() bool { return c.ctx.Err() != nil }
	for {
		if r, err, done := c.checkRound(); done {
			return r, err
		}
		co := Coerce(eq)
		host := co.Graph.Freeze()
		c.changed = false
		// The per-round coercion rebuild makes enforce's merge list
		// useless here; keep it from accumulating across the run.
		c.merges = c.merges[:0]
		var ctxErr error
		for gi, d := range sigma {
			pattern.Compile(d.Pattern, host).ForEachDenseCancel(stop, func(bind []graph.NodeID) bool {
				if ctxErr = c.ctx.Err(); ctxErr != nil {
					return false
				}
				c.enforce(gi, co.RepOf, bind)
				return eq.Consistent()
			})
			if ctxErr = c.ctx.Err(); ctxErr != nil {
				return c.abort(ctxErr)
			}
			if !eq.Consistent() {
				return c.res, nil
			}
		}
		if !c.changed {
			break
		}
	}
	c.res.Coercion = Coerce(eq)
	return c.res, nil
}

// pendingMatch is one enumerated match whose antecedent did not hold
// yet, kept on the worklist as its dense coercion-node binding vector.
type pendingMatch []graph.NodeID

// runDelta is the production fixpoint loop. It builds the coercion and
// its frozen snapshot once (liveCoercion) and exploits two monotonicity
// facts:
//
//   - the coercion graph changes between rounds only when the previous
//     round merged node classes; a round after pure attribute-bind
//     steps re-checks its parked worklist by literal evaluation alone —
//     no coercion rebuild, no freeze, and no match enumeration at all;
//   - Eq only grows, so a match that was enforced (or already
//     satisfied) is settled forever; only matches whose antecedent did
//     not hold yet are parked.
//
// After a merge round the live coercion absorbs the merges and advances
// its snapshot by the working graph's own delta (Snapshot.Apply), and
// the round re-sweeps the matches over the patched snapshot with
// rebound plans — the legacy cost minus the per-round Coerce+Freeze,
// which is the honest floor for merge-heavy rounds, whose new-match set
// is of the same order as the full match set.
func (c *chaser) runDelta() (*Result, error) {
	eq, sigma := c.eq, c.sigma
	stop := func() bool { return c.ctx.Err() != nil }
	lc := newLiveCoercion(eq, sigma)

	wl := make([][]pendingMatch, len(sigma))
	// parked[gi] reports that wl[gi] holds gi's complete pending set for
	// the current graph. Parking gives up past a cap — a pending set far
	// larger than the graph (disconnected patterns cross-multiply) costs
	// more to park and re-check than to re-enumerate, and would hold
	// O(matches) memory.
	parked := make([]bool, len(sigma))
	parkCap := 64 + 8*lc.co.Graph.NumNodes()
	var arena []graph.NodeID // chunked backing for parked binding vectors
	park := func(gi int, bind []graph.NodeID) {
		if len(wl[gi]) >= parkCap {
			parked[gi] = false
			wl[gi] = wl[gi][:0]
			return
		}
		if len(arena)+len(bind) > cap(arena) {
			arena = make([]graph.NodeID, 0, 16*1024)
		}
		lo := len(arena)
		arena = append(arena, bind...)
		wl[gi] = append(wl[gi], pendingMatch(arena[lo:len(arena):len(arena)]))
	}
	var ctxErr error
	// fullSweep re-enumerates Σ[gi] over the live snapshot. With park
	// set, antecedent-pending matches land on a rebuilt worklist so
	// later bind-only rounds skip enumeration entirely; without it the
	// sweep is as lean as the legacy loop (parking a merge-heavy chase's
	// pending set every round would never pay for itself). Retired
	// carriers are filtered out at binding time: their labels and edges
	// are subsumed by their class carriers, so the carrier-only matches
	// are the quotient's matches.
	fullSweep := func(gi int, doPark bool) {
		wl[gi] = wl[gi][:0]
		parked[gi] = doPark
		var filter func(graph.NodeID) bool
		if lc.stale > 0 {
			filter = lc.isCarrier
		}
		lc.plan(gi).ForEachDenseFiltered(stop, filter, func(bind []graph.NodeID) bool {
			if ctxErr = c.ctx.Err(); ctxErr != nil {
				return false
			}
			if !c.enforce(gi, lc.co.RepOf, bind) && parked[gi] {
				park(gi, bind)
			}
			return eq.Consistent()
		})
	}

	structural := true // graph-shape change since the last sweep
	for {
		if r, err, done := c.checkRound(); done {
			return r, err
		}
		if len(c.merges) > 0 {
			lc.advance(c.merges)
			c.merges = c.merges[:0]
			structural = true
		}
		c.changed = false

		for gi := range sigma {
			if structural || !parked[gi] {
				// Park on the opening round and on the forced re-sweep
				// at a merge→bind transition — the rounds a worklist
				// will serve. Structural (merge) rounds rebuild the
				// matching space anyway, so parking there would never
				// pay for itself.
				fullSweep(gi, c.rounds == 1 || !structural)
			} else {
				// The graph is unchanged since gi's worklist was built:
				// every match is either settled forever or parked.
				// Re-check the parked ones against the grown Eq — pure
				// literal evaluation, no matcher.
				kept := wl[gi][:0]
				for _, pm := range wl[gi] {
					if err := c.ctx.Err(); err != nil {
						return c.abort(err)
					}
					if c.enforce(gi, lc.co.RepOf, pm) {
						if !eq.Consistent() {
							return c.res, nil
						}
						continue
					}
					kept = append(kept, pm)
				}
				wl[gi] = kept
			}
			if ctxErr != nil {
				return c.abort(ctxErr)
			}
			if !eq.Consistent() {
				return c.res, nil
			}
		}
		structural = false
		if !c.changed {
			break
		}
	}
	c.res.Coercion = Coerce(eq)
	return c.res, nil
}

// Holds evaluates one GED literal against eq under node assignment m:
// h(x̄) ⊨ l in the sense of Section 3, with equality read modulo Eq.
// It accepts the flipped intermediate forms (c = x.A) that proofs use.
func Holds(eq *Eq, l ged.Literal, m map[pattern.Var]graph.NodeID) bool {
	if l.Left.Kind == ged.OperandConst {
		l = l.Flip()
	}
	return literalHolds(eq, l, m)
}

// literalHolds evaluates one GED literal against eq under node
// assignment m.
func literalHolds(eq *Eq, l ged.Literal, m map[pattern.Var]graph.NodeID) bool {
	k, ok := l.Kind()
	if !ok {
		panic(fmt.Sprintf("chase: non-GED literal %s", l))
	}
	switch k {
	case ConstKind:
		v, ok := eq.AttrConst(m[l.Left.Var], l.Left.Attr)
		return ok && v.Equal(l.Right.Const)
	case VarKind:
		return eq.SameValue(m[l.Left.Var], l.Left.Attr, m[l.Right.Var], l.Right.Attr)
	default:
		return eq.SameNode(m[l.Left.Var], m[l.Right.Var])
	}
}

// Aliases keep the switch above readable.
const (
	ConstKind = ged.ConstLiteral
	VarKind   = ged.VarLiteral
	IDKind    = ged.IDLiteral
)

// applyLiteral extends eq with one literal, per chase-step cases (1)–(3).
func applyLiteral(eq *Eq, l ged.Literal, m map[pattern.Var]graph.NodeID, why Reason) {
	k, ok := l.Kind()
	if !ok {
		panic(fmt.Sprintf("chase: non-GED literal %s", l))
	}
	switch k {
	case ConstKind:
		eq.bindConst(m[l.Left.Var], l.Left.Attr, l.Right.Const, why)
	case VarKind:
		eq.bindEqual(m[l.Left.Var], l.Left.Attr, m[l.Right.Var], l.Right.Attr, why)
	default:
		eq.IdentifyNodes(m[l.Left.Var], m[l.Right.Var], why)
	}
}

// Deduced reports whether literal l (over base-graph nodes, resolved by
// m) can be deduced from the result's final relation, in the sense of
// Section 5.2: the equality it asserts holds in Eq.
func (r *Result) Deduced(l ged.Literal, m map[pattern.Var]graph.NodeID) bool {
	if !r.Consistent() {
		return false
	}
	return literalHolds(r.Eq, l, m)
}
