package chase

import (
	"context"
	"errors"
	"fmt"

	"gedlib/internal/ged"
	"gedlib/internal/graph"
	"gedlib/internal/pattern"
)

// ErrDepthExceeded is returned by RunCtx when the chase has not reached
// a fixpoint within the configured number of rounds.
var ErrDepthExceeded = errors.New("chase: depth bound exceeded")

// Coercion is the graph G_Eq of Section 4.1 together with the maps
// relating it to the base graph: each node class becomes one node,
// labeled by the class's resolved label; edges are transported; and
// attributes with known constants are materialized.
type Coercion struct {
	// Graph is G_Eq.
	Graph *graph.Graph
	// NodeOf maps each base node to its coercion node.
	NodeOf map[graph.NodeID]graph.NodeID
	// RepOf maps each coercion node back to its class representative in
	// the base graph.
	RepOf []graph.NodeID
}

// Coerce builds the coercion of eq on its base graph. It must only be
// called on a consistent Eq (G_Eq is undefined otherwise).
func Coerce(eq *Eq) *Coercion {
	if !eq.Consistent() {
		panic("chase: coercion of inconsistent Eq")
	}
	g := eq.Graph()
	co := graph.New()
	c := &Coercion{Graph: co, NodeOf: make(map[graph.NodeID]graph.NodeID, g.NumNodes())}
	for _, id := range g.Nodes() {
		r := eq.NodeRoot(id)
		if cn, ok := c.NodeOf[r]; ok {
			c.NodeOf[id] = cn
			continue
		}
		cn := co.AddNode(eq.ClassLabel(r))
		c.NodeOf[r] = cn
		c.NodeOf[id] = cn
		c.RepOf = append(c.RepOf, r)
	}
	for _, e := range g.Edges() {
		co.AddEdge(c.NodeOf[e.Src], e.Label, c.NodeOf[e.Dst])
	}
	for cn, r := range c.RepOf {
		for _, a := range eq.ClassAttrs(r) {
			if v, ok := eq.AttrConst(r, a); ok {
				co.SetAttr(graph.NodeID(cn), a, v)
			}
		}
	}
	return c
}

// Step records one chase step Eq ⇒_(φ,h) Eq′ of the trace: which GED of
// Σ was applied, under which match (given as base-graph class
// representatives), enforcing which consequent literal.
type Step struct {
	// GED is the index of the applied dependency in Σ.
	GED int
	// Match maps the pattern variables to base-graph nodes (class
	// representatives at the time of the step).
	Match map[pattern.Var]graph.NodeID
	// Literal is the index of the enforced literal in the GED's Y.
	Literal int
}

// Result is the outcome chase(G, Σ) of Theorem 1: by the Church-Rosser
// property it is independent of the order in which GEDs were applied.
type Result struct {
	// Eq is the final equivalence relation. When the chase is invalid it
	// holds the relation at the failing step, with its Conflict set.
	Eq *Eq
	// Coercion is the final coercion G_Eq; nil when the chase is invalid
	// (the paper's ⊥).
	Coercion *Coercion
	// Steps is the chasing sequence applied.
	Steps []Step
	// Sigma is the chased dependency set.
	Sigma ged.Set
}

// Consistent reports whether the chase terminated in a valid sequence.
func (r *Result) Consistent() bool { return r.Eq.Consistent() }

// Seed is an initial extension of Eq0 before the chase runs; it realizes
// the relation Eq_X of the implication analysis (Section 5.2), expressed
// over base-graph nodes.
type Seed struct {
	Literal ged.Literal
	// Nodes resolves the literal's variables to base-graph nodes.
	Nodes map[pattern.Var]graph.NodeID
}

// SeedOf translates a literal over pattern variables into a Seed via the
// variable-to-node map vm.
func SeedOf(l ged.Literal, vm map[pattern.Var]graph.NodeID) Seed {
	nodes := make(map[pattern.Var]graph.NodeID)
	for _, v := range l.Vars() {
		nodes[v] = vm[v]
	}
	return Seed{Literal: l, Nodes: nodes}
}

// Run chases g by sigma starting from Eq0 (Theorem 1). The trace, final
// relation and coercion are returned; on an invalid sequence the result's
// Coercion is nil and Eq carries the conflict.
func Run(g *graph.Graph, sigma ged.Set) *Result {
	return RunSeeded(g, sigma, nil)
}

// RunSeeded chases g by sigma starting from Eq0 extended by the given
// seed literals — the chase(G_Q, Eq_X, Σ) of Section 5.2. Seeds are
// applied with ReasonGiven in order; a conflicting seed set makes the
// chase invalid immediately (an inconsistent Eq_X, Section 4.1 case (b)).
func RunSeeded(g *graph.Graph, sigma ged.Set, seeds []Seed) *Result {
	res, _ := RunCtx(context.Background(), g, sigma, seeds, 0)
	return res
}

// RunCtx is RunSeeded with cooperative cancellation and an optional
// round bound. The chase checks ctx between rounds, between matches and
// inside the matcher's backtracking search; on cancellation the partial
// Result (with its coercion materialized when the relation is still
// consistent) is returned alongside ctx's error. maxRounds > 0 bounds
// the number of fixpoint rounds (each round applies every GED over the
// current coercion); if the chase has not converged within the bound,
// ErrDepthExceeded is returned with the partial result. maxRounds <= 0
// means unbounded — the chase always terminates by Theorem 1, so the
// bound is a resource valve, not a semantics knob.
func RunCtx(ctx context.Context, g *graph.Graph, sigma ged.Set, seeds []Seed, maxRounds int) (*Result, error) {
	eq := NewEq(g)
	res := &Result{Eq: eq, Sigma: sigma}
	// abort finalizes an interrupted chase: the partial result still
	// carries a usable coercion so callers holding it do not trip over a
	// nil Coercion in Materialize.
	abort := func(err error) (*Result, error) {
		if eq.Consistent() {
			res.Coercion = Coerce(eq)
		}
		return res, err
	}
	for i, s := range seeds {
		applyLiteral(eq, s.Literal, s.Nodes, Reason{Kind: ReasonGiven, Seed: i})
		if !eq.Consistent() {
			return res, nil
		}
	}
	stop := func() bool { return ctx.Err() != nil }
	rounds := 0
	for {
		if err := ctx.Err(); err != nil {
			return abort(err)
		}
		if maxRounds > 0 && rounds >= maxRounds {
			return abort(ErrDepthExceeded)
		}
		rounds++
		co := Coerce(eq)
		// The coercion graph is immutable for the rest of the round (chase
		// steps mutate eq, not G_Eq), so it is frozen once per round and
		// the snapshot's CSR matcher is shared across every GED's match
		// phase; the next round coerces and re-freezes.
		host := co.Graph.Freeze()
		changed := false
		var ctxErr error
		for gi, d := range sigma {
			pat := d.Pattern
			pattern.ForEachMatchCancel(pat, host, stop, func(m pattern.Match) bool {
				if ctxErr = ctx.Err(); ctxErr != nil {
					return false
				}
				// Translate the coercion match to base-graph class
				// representatives; representatives stay valid across
				// merges performed later in this iteration.
				base := make(map[pattern.Var]graph.NodeID, len(m))
				for v, cn := range m {
					base[v] = co.RepOf[cn]
				}
				if !satisfiesAll(eq, d.X, base) {
					return true
				}
				for li, l := range d.Y {
					if literalHolds(eq, l, base) {
						continue
					}
					step := len(res.Steps)
					res.Steps = append(res.Steps, Step{GED: gi, Match: base, Literal: li})
					applyLiteral(eq, l, base, Reason{Kind: ReasonStep, Step: step})
					changed = true
					if !eq.Consistent() {
						return false
					}
				}
				return true
			})
			if ctxErr = ctx.Err(); ctxErr != nil {
				return abort(ctxErr)
			}
			if !eq.Consistent() {
				return res, nil
			}
		}
		if !changed {
			break
		}
	}
	res.Coercion = Coerce(eq)
	return res, nil
}

// satisfiesAll reports h(x̄) ⊨ X under eq: every literal holds, with the
// paper's attribute-existence semantics (a missing attribute falsifies
// the literal, hence the whole antecedent).
func satisfiesAll(eq *Eq, lits []ged.Literal, m map[pattern.Var]graph.NodeID) bool {
	for _, l := range lits {
		if !literalHolds(eq, l, m) {
			return false
		}
	}
	return true
}

// Holds evaluates one GED literal against eq under node assignment m:
// h(x̄) ⊨ l in the sense of Section 3, with equality read modulo Eq.
// It accepts the flipped intermediate forms (c = x.A) that proofs use.
func Holds(eq *Eq, l ged.Literal, m map[pattern.Var]graph.NodeID) bool {
	if l.Left.Kind == ged.OperandConst {
		l = l.Flip()
	}
	return literalHolds(eq, l, m)
}

// literalHolds evaluates one GED literal against eq under node
// assignment m.
func literalHolds(eq *Eq, l ged.Literal, m map[pattern.Var]graph.NodeID) bool {
	k, ok := l.Kind()
	if !ok {
		panic(fmt.Sprintf("chase: non-GED literal %s", l))
	}
	switch k {
	case ConstKind:
		v, ok := eq.AttrConst(m[l.Left.Var], l.Left.Attr)
		return ok && v.Equal(l.Right.Const)
	case VarKind:
		return eq.SameValue(m[l.Left.Var], l.Left.Attr, m[l.Right.Var], l.Right.Attr)
	default:
		return eq.SameNode(m[l.Left.Var], m[l.Right.Var])
	}
}

// Aliases keep the switch above readable.
const (
	ConstKind = ged.ConstLiteral
	VarKind   = ged.VarLiteral
	IDKind    = ged.IDLiteral
)

// applyLiteral extends eq with one literal, per chase-step cases (1)–(3).
func applyLiteral(eq *Eq, l ged.Literal, m map[pattern.Var]graph.NodeID, why Reason) {
	k, ok := l.Kind()
	if !ok {
		panic(fmt.Sprintf("chase: non-GED literal %s", l))
	}
	switch k {
	case ConstKind:
		eq.bindConst(m[l.Left.Var], l.Left.Attr, l.Right.Const, why)
	case VarKind:
		eq.bindEqual(m[l.Left.Var], l.Left.Attr, m[l.Right.Var], l.Right.Attr, why)
	default:
		eq.IdentifyNodes(m[l.Left.Var], m[l.Right.Var], why)
	}
}

// Deduced reports whether literal l (over base-graph nodes, resolved by
// m) can be deduced from the result's final relation, in the sense of
// Section 5.2: the equality it asserts holds in Eq.
func (r *Result) Deduced(l ged.Literal, m map[pattern.Var]graph.NodeID) bool {
	if !r.Consistent() {
		return false
	}
	return literalHolds(r.Eq, l, m)
}
