package chase

import (
	"fmt"
	"math/rand"
	"sort"
	"strings"
	"testing"

	"gedlib/internal/ged"
	"gedlib/internal/graph"
	"gedlib/internal/pattern"
)

// example4Graph builds the graph of Figure 2: v1, v2 carry A = 1 and
// point (via e-edges) at v1', v2', which carry distinct labels.
func example4Graph() (*graph.Graph, [4]graph.NodeID) {
	g := graph.New()
	v1 := g.AddNodeAttrs("a", map[graph.Attr]graph.Value{"A": graph.Int(1)})
	v2 := g.AddNodeAttrs("a", map[graph.Attr]graph.Value{"A": graph.Int(1)})
	w1 := g.AddNode("b")
	w2 := g.AddNode("c")
	g.AddEdge(v1, "e", w1)
	g.AddEdge(v2, "e", w2)
	return g, [4]graph.NodeID{v1, v2, w1, w2}
}

// phi1 is Q1[x,y](x.A = y.A → x.id = y.id) with Q1 two a-nodes.
func phi1() *ged.GED {
	q := pattern.New()
	q.AddVar("x", "a").AddVar("y", "a")
	return ged.New("phi1", q,
		[]ged.Literal{ged.VarLit("x", "A", "y", "A")},
		[]ged.Literal{ged.IDLit("x", "y")})
}

// phi2 is Q2[x,y,z](∅ → y.id = z.id) with Q2 an a-node pointing at two
// wildcard nodes.
func phi2() *ged.GED {
	q := pattern.New()
	q.AddVar("x", "a").AddVar("y", graph.Wildcard).AddVar("z", graph.Wildcard)
	q.AddEdge("x", "e", "y")
	q.AddEdge("x", "e", "z")
	return ged.New("phi2", q, nil, []ged.Literal{ged.IDLit("y", "z")})
}

func TestExample4ValidChase(t *testing.T) {
	g, ids := example4Graph()
	res := Run(g, ged.Set{phi1()})
	if !res.Consistent() {
		t.Fatalf("chase invalid: %v", res.Eq.Conflict())
	}
	if !res.Eq.SameNode(ids[0], ids[1]) {
		t.Error("v1 and v2 must be identified")
	}
	if res.Eq.SameNode(ids[2], ids[3]) {
		t.Error("v1' and v2' must stay distinct under Σ1")
	}
	if res.Coercion.Graph.NumNodes() != 3 {
		t.Errorf("G1 has %d nodes, want 3", res.Coercion.Graph.NumNodes())
	}
	// The merged node keeps its two outgoing edges.
	merged := res.Coercion.NodeOf[ids[0]]
	if len(res.Coercion.Graph.Out(merged)) != 2 {
		t.Error("merged node must keep both e-edges")
	}
	if v, ok := res.Coercion.Graph.Attr(merged, "A"); !ok || !v.Equal(graph.Int(1)) {
		t.Error("merged node must carry A = 1")
	}
}

func TestExample4InvalidChase(t *testing.T) {
	g, _ := example4Graph()
	res := Run(g, ged.Set{phi1(), phi2()})
	if res.Consistent() {
		t.Fatal("Σ2 chase must be invalid (result ⊥)")
	}
	c := res.Eq.Conflict()
	if c.Kind != LabelConflict {
		t.Fatalf("conflict kind = %v, want label conflict", c.Kind)
	}
	if !strings.Contains(c.Error(), "label conflict") {
		t.Errorf("conflict message: %s", c.Error())
	}
	if res.Coercion != nil {
		t.Error("invalid chase must have nil coercion (⊥)")
	}
}

func TestChurchRosserExample4(t *testing.T) {
	// Applying Σ2 in either order yields ⊥ (Theorem 1).
	g, _ := example4Graph()
	a := Run(g, ged.Set{phi1(), phi2()})
	b := Run(g.Clone(), ged.Set{phi2(), phi1()})
	if a.Consistent() || b.Consistent() {
		t.Error("both orders must be invalid")
	}
}

func TestAttributeConflictForbidding(t *testing.T) {
	g := graph.New()
	g.AddNode("person")
	q := pattern.New()
	q.AddVar("x", "person")
	phi := ged.New("forbid", q, nil, ged.False("x"))
	res := Run(g, ged.Set{phi})
	if res.Consistent() {
		t.Fatal("forbidding constraint must invalidate the chase")
	}
	if res.Eq.Conflict().Kind != AttrConflict {
		t.Error("expected attribute conflict")
	}
}

func TestAttributeGeneration(t *testing.T) {
	// Q[x](∅ → x.A = x.A) forces every τ-node to have an A attribute
	// (Section 3, "existence of attributes").
	g := graph.New()
	n := g.AddNode("tau")
	q := pattern.New()
	q.AddVar("x", "tau")
	phi := ged.New("gen", q, nil, []ged.Literal{ged.VarLit("x", "A", "x", "A")})
	res := Run(g, ged.Set{phi})
	if !res.Consistent() {
		t.Fatal("chase must be valid")
	}
	if _, ok := res.Eq.SlotTerm(n, "A"); !ok {
		t.Error("attribute A must be generated on the tau node")
	}
	// Materialization gives it a placeholder value.
	m := res.Materialize()
	if _, ok := m.Attr(res.Coercion.NodeOf[n], "A"); !ok {
		t.Error("materialized graph must carry generated attribute")
	}
}

func TestConstantPropagation(t *testing.T) {
	// x.A = c in a consequent binds the value class; a second GED with a
	// different constant for the same class conflicts.
	g := graph.New()
	g.AddNode("p")
	q := pattern.New()
	q.AddVar("x", "p")
	phiA := ged.New("a", q, nil, []ged.Literal{ged.ConstLit("x", "t", graph.Int(1))})
	res := Run(g, ged.Set{phiA})
	if !res.Consistent() {
		t.Fatal("single constant must be fine")
	}
	if v, ok := res.Eq.AttrConst(0, "t"); !ok || !v.Equal(graph.Int(1)) {
		t.Error("constant not bound")
	}
	phiB := ged.New("b", q, nil, []ged.Literal{ged.ConstLit("x", "t", graph.Int(2))})
	res2 := Run(graph.New(), ged.Set{})
	_ = res2
	res3 := Run(func() *graph.Graph { h := graph.New(); h.AddNode("p"); return h }(), ged.Set{phiA, phiB})
	if res3.Consistent() {
		t.Fatal("conflicting constants must invalidate")
	}
	if res3.Eq.Conflict().Kind != AttrConflict {
		t.Error("expected attribute conflict")
	}
}

func TestConstantBridgeRuleB(t *testing.T) {
	// Closure rule (b): classes sharing a constant are one class. Both
	// nodes carry A = 1 initially, so [v1.A] = [v2.A] = {v1.A, v2.A, 1},
	// exactly as Example 4 describes Eq0.
	g, ids := example4Graph()
	eq := NewEq(g)
	if !eq.SameValue(ids[0], "A", ids[1], "A") {
		t.Error("Eq0 must merge value classes sharing constant 1")
	}
}

func TestVariableLiteralChase(t *testing.T) {
	// Two capitals must share a name (φ2 of Example 3).
	g := graph.New()
	country := g.AddNode("country")
	c1 := g.AddNodeAttrs("city", map[graph.Attr]graph.Value{"name": graph.String("Helsinki")})
	c2 := g.AddNode("city")
	g.AddEdge(country, "capital", c1)
	g.AddEdge(country, "capital", c2)
	q := pattern.New()
	q.AddVar("x", "country").AddVar("y", "city").AddVar("z", "city")
	q.AddEdge("x", "capital", "y")
	q.AddEdge("x", "capital", "z")
	phi := ged.New("cap", q, nil, []ged.Literal{ged.VarLit("y", "name", "z", "name")})
	res := Run(g, ged.Set{phi})
	if !res.Consistent() {
		t.Fatal("chase must be valid")
	}
	// c2.name is generated and equated with c1.name, hence Helsinki.
	if v, ok := res.Eq.AttrConst(c2, "name"); !ok || !v.Equal(graph.String("Helsinki")) {
		t.Errorf("c2.name = %v, want Helsinki", v)
	}
}

func TestIDMergePropagatesAttributes(t *testing.T) {
	// Rule (d): identifying nodes merges their attribute classes; a
	// conflict between their constants invalidates the chase.
	g := graph.New()
	a := g.AddNodeAttrs("p", map[graph.Attr]graph.Value{"k": graph.Int(1)})
	b := g.AddNodeAttrs("p", map[graph.Attr]graph.Value{"k": graph.Int(2)})
	q := pattern.New()
	q.AddVar("x", "p").AddVar("y", "p")
	phi := ged.New("key", q, nil, []ged.Literal{ged.IDLit("x", "y")})
	res := Run(g, ged.Set{phi})
	if res.Consistent() {
		t.Fatal("merging nodes with conflicting constants must fail")
	}
	_ = a
	_ = b

	// Without the conflict the attributes unify.
	g2 := graph.New()
	a2 := g2.AddNodeAttrs("p", map[graph.Attr]graph.Value{"k": graph.Int(1)})
	b2 := g2.AddNode("p")
	res2 := Run(g2, ged.Set{phi})
	if !res2.Consistent() {
		t.Fatal("chase must be valid")
	}
	if !res2.Eq.SameNode(a2, b2) {
		t.Error("nodes must merge")
	}
	if v, ok := res2.Eq.AttrConst(b2, "k"); !ok || !v.Equal(graph.Int(1)) {
		t.Error("attribute must propagate to merged class")
	}
}

func TestWildcardLabelResolution(t *testing.T) {
	// Merging a wildcard node with a concrete node resolves to the
	// concrete label (Example 7's point about ⪯ in the chase).
	g := graph.New()
	a := g.AddNode(graph.Wildcard)
	b := g.AddNode("city")
	q := pattern.New()
	q.AddVar("x", graph.Wildcard).AddVar("y", "city")
	phi := ged.New("m", q, nil, []ged.Literal{ged.IDLit("x", "y")})
	res := Run(g, ged.Set{phi})
	if !res.Consistent() {
		t.Fatalf("wildcard merge must be consistent: %v", res.Eq.Conflict())
	}
	if res.Eq.ClassLabel(a) != "city" {
		t.Errorf("resolved label = %s, want city", res.Eq.ClassLabel(a))
	}
	_ = b
}

func TestSeededChase(t *testing.T) {
	// Seeding realizes Eq_X: an inconsistent X invalidates immediately.
	q := pattern.New()
	q.AddVar("x", "p")
	gq, vm := q.ToGraph()
	seeds := []Seed{
		SeedOf(ged.ConstLit("x", "a", graph.Int(1)), vm),
		SeedOf(ged.ConstLit("x", "a", graph.Int(2)), vm),
	}
	res := RunSeeded(gq, nil, seeds)
	if res.Consistent() {
		t.Fatal("inconsistent Eq_X must yield ⊥")
	}

	gq2, vm2 := q.ToGraph()
	res2 := RunSeeded(gq2, nil, []Seed{SeedOf(ged.ConstLit("x", "a", graph.Int(1)), vm2)})
	if !res2.Consistent() {
		t.Fatal("consistent seed rejected")
	}
	if v, ok := res2.Eq.AttrConst(vm2["x"], "a"); !ok || !v.Equal(graph.Int(1)) {
		t.Error("seed literal not recorded")
	}
}

func TestSeededLabelConflict(t *testing.T) {
	q := pattern.New()
	q.AddVar("x", "a").AddVar("y", "b")
	gq, vm := q.ToGraph()
	res := RunSeeded(gq, nil, []Seed{SeedOf(ged.IDLit("x", "y"), vm)})
	if res.Consistent() {
		t.Fatal("id seed over incompatible labels must fail")
	}
	if res.Eq.Conflict().Kind != LabelConflict {
		t.Error("expected label conflict")
	}
}

// signature canonically describes a chase result for Church-Rosser
// comparison: the node partition with labels, and per class the
// attribute names with constants or value-class ids.
func signature(t *testing.T, res *Result) string {
	t.Helper()
	if !res.Consistent() {
		return "⊥"
	}
	eq := res.Eq
	classes := eq.NodeClasses()
	reps := make([]graph.NodeID, 0, len(classes))
	for r := range classes {
		reps = append(reps, r)
	}
	sort.Slice(reps, func(i, j int) bool {
		return fmt.Sprint(classes[reps[i]]) < fmt.Sprint(classes[reps[j]])
	})
	valueClassID := make(map[Term]int)
	var b strings.Builder
	for _, r := range reps {
		fmt.Fprintf(&b, "%v:%s{", classes[r], eq.ClassLabel(r))
		for _, a := range eq.ClassAttrs(r) {
			if v, ok := eq.AttrConst(r, a); ok {
				fmt.Fprintf(&b, "%s=%s;", a, v)
				continue
			}
			tm, _ := eq.SlotTerm(r, a)
			id, ok := valueClassID[tm]
			if !ok {
				id = len(valueClassID)
				valueClassID[tm] = id
			}
			fmt.Fprintf(&b, "%s~%d;", a, id)
		}
		b.WriteString("} ")
	}
	return b.String()
}

// TestChurchRosserPermutations chases random graphs by random GED sets
// under many Σ orderings and requires identical results (Theorem 1).
func TestChurchRosserPermutations(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for trial := 0; trial < 60; trial++ {
		g, sigma := randomInstance(rng)
		want := signature(t, Run(g.Clone(), sigma))
		for p := 0; p < 4; p++ {
			perm := append(ged.Set{}, sigma...)
			rng.Shuffle(len(perm), func(i, j int) { perm[i], perm[j] = perm[j], perm[i] })
			got := signature(t, Run(g.Clone(), perm))
			if got != want {
				t.Fatalf("trial %d: order-dependent chase:\n%s\nvs\n%s", trial, want, got)
			}
		}
	}
}

// TestChaseBound checks the Theorem 1 bound: |Eq| ≤ 4·|G|·|Σ| and the
// chase length is at most 8·|G|·|Σ|.
func TestChaseBound(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	for trial := 0; trial < 80; trial++ {
		g, sigma := randomInstance(rng)
		res := Run(g, sigma)
		bound := 4 * g.Size() * (sigma.Size() + g.Size())
		if res.Eq.Size() > bound {
			t.Fatalf("trial %d: |Eq| = %d exceeds bound %d", trial, res.Eq.Size(), bound)
		}
		if len(res.Steps) > 2*bound {
			t.Fatalf("trial %d: %d steps exceeds bound %d", trial, len(res.Steps), 2*bound)
		}
	}
}

// TestChaseResultSatisfiesSigma checks Theorem 1's final claim: for a
// valid terminal chase, G_Eq ⊨ Σ (evaluated on the materialized graph).
func TestChaseResultSatisfiesSigma(t *testing.T) {
	rng := rand.New(rand.NewSource(13))
	for trial := 0; trial < 60; trial++ {
		g, sigma := randomInstance(rng)
		res := Run(g, sigma)
		if !res.Consistent() {
			continue
		}
		m := res.Materialize()
		for _, d := range sigma {
			if v := naiveViolation(m, d); v != "" {
				t.Fatalf("trial %d: materialized chase result violates %s: %s\ngraph:\n%s", trial, d.Name, v, m)
			}
		}
	}
}

// naiveViolation checks G ⊨ φ directly on stored attribute values,
// returning a description of the first violating match.
func naiveViolation(g *graph.Graph, d *ged.GED) string {
	holds := func(l ged.Literal, m pattern.Match) bool {
		k, _ := l.Kind()
		switch k {
		case ged.ConstLiteral:
			v, ok := g.Attr(m[l.Left.Var], l.Left.Attr)
			return ok && v.Equal(l.Right.Const)
		case ged.VarLiteral:
			v1, ok1 := g.Attr(m[l.Left.Var], l.Left.Attr)
			v2, ok2 := g.Attr(m[l.Right.Var], l.Right.Attr)
			return ok1 && ok2 && v1.Equal(v2)
		default:
			return m[l.Left.Var] == m[l.Right.Var]
		}
	}
	bad := ""
	pattern.ForEachMatch(d.Pattern, g, func(m pattern.Match) bool {
		for _, l := range d.X {
			if !holds(l, m) {
				return true
			}
		}
		for _, l := range d.Y {
			if !holds(l, m) {
				bad = fmt.Sprintf("match %v fails %s", m, l)
				return false
			}
		}
		return true
	})
	return bad
}

// randomInstance generates a small random graph and GED set. Shapes are
// chosen to exercise id merges, constant bindings and variable literals.
func randomInstance(rng *rand.Rand) (*graph.Graph, ged.Set) {
	labels := []graph.Label{"a", "b", "c"}
	attrs := []graph.Attr{"p", "q"}
	g := graph.New()
	n := 3 + rng.Intn(4)
	for i := 0; i < n; i++ {
		id := g.AddNode(labels[rng.Intn(len(labels))])
		if rng.Intn(2) == 0 {
			g.SetAttr(id, attrs[rng.Intn(len(attrs))], graph.Int(rng.Intn(3)))
		}
	}
	edges := rng.Intn(2 * n)
	for i := 0; i < edges; i++ {
		g.AddEdge(graph.NodeID(rng.Intn(n)), "e", graph.NodeID(rng.Intn(n)))
	}
	var sigma ged.Set
	deps := 1 + rng.Intn(3)
	for i := 0; i < deps; i++ {
		q := pattern.New()
		q.AddVar("x", labels[rng.Intn(len(labels))])
		q.AddVar("y", labels[rng.Intn(len(labels))])
		if rng.Intn(2) == 0 {
			q.AddEdge("x", "e", "y")
		}
		var xs, ys []ged.Literal
		switch rng.Intn(3) {
		case 0:
			xs = []ged.Literal{ged.VarLit("x", attrs[0], "y", attrs[0])}
		case 1:
			xs = []ged.Literal{ged.ConstLit("x", attrs[rng.Intn(2)], graph.Int(rng.Intn(3)))}
		}
		switch rng.Intn(4) {
		case 0:
			ys = []ged.Literal{ged.IDLit("x", "y")}
		case 1:
			ys = []ged.Literal{ged.ConstLit("y", attrs[rng.Intn(2)], graph.Int(rng.Intn(3)))}
		case 2:
			ys = []ged.Literal{ged.VarLit("x", attrs[1], "y", attrs[1])}
		case 3:
			ys = []ged.Literal{ged.VarLit("x", attrs[0], "x", attrs[1])}
		}
		sigma = append(sigma, ged.New(fmt.Sprintf("r%d", i), q, xs, ys))
	}
	return g, sigma
}

func TestCoercionPanicsOnInconsistent(t *testing.T) {
	g, _ := example4Graph()
	res := Run(g, ged.Set{phi1(), phi2()})
	defer func() {
		if recover() == nil {
			t.Error("Coerce must panic on inconsistent Eq")
		}
	}()
	Coerce(res.Eq)
}

func TestMaterializePanicsOnInvalid(t *testing.T) {
	g, _ := example4Graph()
	res := Run(g, ged.Set{phi1(), phi2()})
	defer func() {
		if recover() == nil {
			t.Error("Materialize must panic on invalid chase")
		}
	}()
	res.Materialize()
}

func TestMaterializeFreshness(t *testing.T) {
	// Distinct constant-less value classes get distinct placeholders;
	// wildcard labels become fresh concrete labels.
	g := graph.New()
	a := g.AddNode(graph.Wildcard)
	b := g.AddNode(graph.Wildcard)
	q := pattern.New()
	q.AddVar("x", graph.Wildcard)
	phi := ged.New("gen", q, nil, []ged.Literal{ged.VarLit("x", "A", "x", "A")})
	res := Run(g, ged.Set{phi})
	if !res.Consistent() {
		t.Fatal("chase must be valid")
	}
	m := res.Materialize()
	va, _ := m.Attr(res.Coercion.NodeOf[a], "A")
	vb, _ := m.Attr(res.Coercion.NodeOf[b], "A")
	if va.Equal(vb) {
		t.Error("distinct value classes must materialize distinct constants")
	}
	if m.Label(res.Coercion.NodeOf[a]) == graph.Wildcard {
		t.Error("wildcard labels must be replaced")
	}
	if m.Label(res.Coercion.NodeOf[a]) == m.Label(res.Coercion.NodeOf[b]) {
		t.Error("fresh labels must be distinct")
	}
}

func TestStepsTraceRecorded(t *testing.T) {
	g, ids := example4Graph()
	res := Run(g, ged.Set{phi1()})
	if len(res.Steps) != 1 {
		t.Fatalf("got %d steps, want 1", len(res.Steps))
	}
	s := res.Steps[0]
	if s.GED != 0 || s.Literal != 0 {
		t.Errorf("step = %+v", s)
	}
	xs, ys := s.Match["x"], s.Match["y"]
	if !(xs == ids[0] && ys == ids[1] || xs == ids[1] && ys == ids[0]) {
		t.Errorf("step match = %v", s.Match)
	}
}

func TestEmptySigma(t *testing.T) {
	g, _ := example4Graph()
	res := Run(g, nil)
	if !res.Consistent() || len(res.Steps) != 0 {
		t.Error("empty Σ must be a trivial valid chase")
	}
	if res.Coercion.Graph.NumNodes() != g.NumNodes() {
		t.Error("coercion must be the identity quotient")
	}
}
