package chase

import (
	"context"
	"math/rand"
	"testing"

	"gedlib/internal/graph"
	"gedlib/internal/pattern"
)

// TestDeltaChaseEquivalentToRefreeze: the delta-maintained live
// coercion and the legacy per-round refreeze compute the same chase —
// same consistency verdict, same node partition, same derived attribute
// constants (Theorem 1's Church–Rosser property makes these the full
// semantic content of the result).
func TestDeltaChaseEquivalentToRefreeze(t *testing.T) {
	ctx := context.Background()
	rng := rand.New(rand.NewSource(191))
	for trial := 0; trial < 120; trial++ {
		g, sigma := randomInstance(rng)
		delta, err1 := RunCtxOpts(ctx, g, sigma, nil, 0, Options{})
		refreeze, err2 := RunCtxOpts(ctx, g, sigma, nil, 0, Options{RefreezeEachRound: true})
		if err1 != nil || err2 != nil {
			t.Fatalf("trial %d: errors %v / %v", trial, err1, err2)
		}
		if delta.Consistent() != refreeze.Consistent() {
			t.Fatalf("trial %d: consistency differs: delta=%v refreeze=%v",
				trial, delta.Consistent(), refreeze.Consistent())
		}
		if !delta.Consistent() {
			continue
		}
		attrs := []graph.Attr{"p", "q"}
		for _, a := range g.Nodes() {
			for _, b := range g.Nodes() {
				if delta.Eq.SameNode(a, b) != refreeze.Eq.SameNode(a, b) {
					t.Fatalf("trial %d: partition differs at (%d,%d)", trial, a, b)
				}
			}
			for _, at := range attrs {
				dv, dok := delta.Eq.AttrConst(a, at)
				rv, rok := refreeze.Eq.AttrConst(a, at)
				if dok != rok || (dok && !dv.Equal(rv)) {
					t.Fatalf("trial %d: AttrConst(%d,%s) differs: (%v,%v) vs (%v,%v)",
						trial, a, at, dv, dok, rv, rok)
				}
			}
		}
		// Both coercions quotient the same partition over the same base
		// graph, so the materialized witnesses must coincide.
		if delta.Materialize().String() != refreeze.Materialize().String() {
			t.Fatalf("trial %d: materialized witnesses differ", trial)
		}
	}
}

// TestDeltaChaseSeeded runs the same equivalence over seeded chases,
// which exercise merges applied before the live coercion exists.
func TestDeltaChaseSeeded(t *testing.T) {
	ctx := context.Background()
	rng := rand.New(rand.NewSource(193))
	for trial := 0; trial < 60; trial++ {
		g, sigma := randomInstance(rng)
		if len(sigma) == 0 || g.NumNodes() < 2 {
			continue
		}
		seeds := []Seed{{
			Literal: sigma[0].Y[0],
			Nodes: map[pattern.Var]graph.NodeID{
				"x": graph.NodeID(rng.Intn(g.NumNodes())),
				"y": graph.NodeID(rng.Intn(g.NumNodes())),
			},
		}}
		delta, _ := RunCtxOpts(ctx, g, sigma, seeds, 0, Options{})
		refreeze, _ := RunCtxOpts(ctx, g, sigma, seeds, 0, Options{RefreezeEachRound: true})
		if delta.Consistent() != refreeze.Consistent() {
			t.Fatalf("trial %d: consistency differs", trial)
		}
		if !delta.Consistent() {
			continue
		}
		for _, a := range g.Nodes() {
			for _, b := range g.Nodes() {
				if delta.Eq.SameNode(a, b) != refreeze.Eq.SameNode(a, b) {
					t.Fatalf("trial %d: partition differs at (%d,%d)", trial, a, b)
				}
			}
		}
	}
}
