// Package chase implements the revised chase of Section 4 of
// "Dependencies for Graphs" (Fan & Lu, PODS 2017).
//
// The chase of a graph G by a set Σ of GEDs is a sequence of extensions
// of an equivalence relation Eq over the nodes of G and attribute terms
// x.A. Enforcing a GED may merge nodes (id literals), equate attribute
// values (variable literals), bind attributes to constants (constant
// literals), and *generate* attributes that schemaless nodes did not
// carry. A chase step is invalid when it produces a label conflict (two
// ⪯-incompatible labels in one node class) or an attribute conflict (two
// distinct constants in one value class). Theorem 1 shows the chase is
// finite and Church-Rosser: every terminal chasing sequence yields the
// same result, so this package runs a single deterministic fixpoint.
//
// Every union records the reason it happened in a proof forest
// (Nieuwenhuis–Oliveras style), which the axiom package replays into
// formal A_GED proofs (Theorem 7's completeness argument).
package chase

import (
	"fmt"
	"sort"

	"gedlib/internal/graph"
)

// Term identifies a value term of Eq: either an attribute slot u.A of an
// original node u, or a constant of U. Terms are created on demand.
type Term int

const noTerm Term = -1

// ReasonKind discriminates why a union happened.
type ReasonKind uint8

const (
	// ReasonInitial records an attribute present in the input graph:
	// [x.A]_Eq0 contains x.A and its value.
	ReasonInitial ReasonKind = iota
	// ReasonGiven records a seed literal (the Eq_X of implication
	// analysis, Section 5.2).
	ReasonGiven
	// ReasonStep records a chase step Eq ⇒_(φ,h) Eq′ enforcing one
	// literal of φ's consequent.
	ReasonStep
	// ReasonIDProp records closure rule (d): nodes x, y were identified,
	// so their corresponding attribute classes [x.A] and [y.A] merged.
	ReasonIDProp
)

// Reason explains one proof-forest edge.
type Reason struct {
	Kind ReasonKind
	// Seed is the index of the seed literal for ReasonGiven.
	Seed int
	// Step is the index into the chase trace for ReasonStep.
	Step int
	// U, V are the original nodes whose identification propagated an
	// attribute merge, and A the attribute, for ReasonIDProp.
	U, V graph.NodeID
	A    graph.Attr
}

// ConflictKind discriminates the two inconsistency sources of Section 4.1.
type ConflictKind uint8

const (
	// LabelConflict: a node class contains ⪯-incompatible labels.
	LabelConflict ConflictKind = iota
	// AttrConflict: a value class contains two distinct constants.
	AttrConflict
)

// Conflict describes why Eq became inconsistent.
type Conflict struct {
	Kind ConflictKind
	// For LabelConflict: the two incompatible labels and witness nodes.
	LabelA, LabelB graph.Label
	NodeA, NodeB   graph.NodeID
	// For AttrConflict: the two distinct constants.
	ConstA, ConstB graph.Value
}

// Error renders the conflict.
func (c *Conflict) Error() string {
	if c.Kind == LabelConflict {
		return fmt.Sprintf("label conflict: node %d (%s) vs node %d (%s)", c.NodeA, c.LabelA, c.NodeB, c.LabelB)
	}
	return fmt.Sprintf("attribute conflict: %s vs %s", c.ConstA, c.ConstB)
}

// forestEdge is one reasoned edge of a proof forest.
type forestEdge struct {
	other  int // Term or NodeID of the other endpoint
	reason Reason
}

// attrEntry is a node class's binding of one attribute: the value term
// and an owner node whose slot witnesses membership (used to anchor
// ReasonIDProp explanations).
type attrEntry struct {
	term  Term
	owner graph.NodeID
}

// Eq is the equivalence relation of Section 4.1 over the nodes and
// attribute terms of one graph, maintained under the closure rules
// (a)–(d) as invariants:
//
//	(a,c) symmetry/transitivity — union–find;
//	(b)   value classes sharing a constant are merged — constants are
//	      themselves terms, so sharing a constant is sharing a member;
//	(d)   identified nodes share attribute classes — node-class merges
//	      union the per-attribute value terms of both classes.
type Eq struct {
	g *graph.Graph

	// Node union–find with per-root label and attribute map.
	nodeParent []graph.NodeID
	nodeLabel  map[graph.NodeID]graph.Label
	nodeAttrs  map[graph.NodeID]map[graph.Attr]attrEntry
	nodeForest map[graph.NodeID][]forestEdge

	// Value union–find. Terms are slots (u.A) or constants.
	valParent []Term
	slotOf    map[slotKey]Term
	slotKeys  []slotKey // per term; zero value for constants
	constOf   map[graph.Value]Term
	constVals []*graph.Value // per term; nil for slots
	rootConst map[Term]Term  // per value root: the constant term in the class
	valForest map[Term][]forestEdge

	conflict *Conflict
	// size counts union operations and term creations, to check the
	// Theorem 1 bound in tests.
	size int
}

type slotKey struct {
	node graph.NodeID
	attr graph.Attr
}

// NewEq returns Eq0 for g: singleton node classes, and for each stored
// attribute x.A = c the class {x.A, c} (Section 4.1's initial relation).
func NewEq(g *graph.Graph) *Eq {
	eq := &Eq{
		g:          g,
		nodeParent: make([]graph.NodeID, g.NumNodes()),
		nodeLabel:  make(map[graph.NodeID]graph.Label, g.NumNodes()),
		nodeAttrs:  make(map[graph.NodeID]map[graph.Attr]attrEntry),
		nodeForest: make(map[graph.NodeID][]forestEdge),
		slotOf:     make(map[slotKey]Term),
		constOf:    make(map[graph.Value]Term),
		rootConst:  make(map[Term]Term),
		valForest:  make(map[Term][]forestEdge),
	}
	for _, id := range g.Nodes() {
		eq.nodeParent[id] = id
		eq.nodeLabel[id] = g.Label(id)
	}
	for _, id := range g.Nodes() {
		attrs := g.Attrs(id)
		names := make([]string, 0, len(attrs))
		for a := range attrs {
			names = append(names, string(a))
		}
		sort.Strings(names)
		for _, a := range names {
			eq.bindConst(id, graph.Attr(a), attrs[graph.Attr(a)], Reason{Kind: ReasonInitial})
		}
	}
	return eq
}

// Graph returns the base graph the relation is over.
func (eq *Eq) Graph() *graph.Graph { return eq.g }

// Consistent reports whether no conflict has occurred.
func (eq *Eq) Consistent() bool { return eq.conflict == nil }

// Conflict returns the first conflict, or nil.
func (eq *Eq) Conflict() *Conflict { return eq.conflict }

// Size returns the number of extensions applied, the |Eq| measured by
// the Theorem 1 bound.
func (eq *Eq) Size() int { return eq.size }

// NodeRoot returns the representative of node x's class.
func (eq *Eq) NodeRoot(x graph.NodeID) graph.NodeID {
	for eq.nodeParent[x] != x {
		eq.nodeParent[x] = eq.nodeParent[eq.nodeParent[x]]
		x = eq.nodeParent[x]
	}
	return x
}

// SameNode reports x.id = y.id under Eq.
func (eq *Eq) SameNode(x, y graph.NodeID) bool { return eq.NodeRoot(x) == eq.NodeRoot(y) }

// ClassLabel returns the resolved label of x's class.
func (eq *Eq) ClassLabel(x graph.NodeID) graph.Label { return eq.nodeLabel[eq.NodeRoot(x)] }

// valRoot returns the representative of a value term's class.
func (eq *Eq) valRoot(t Term) Term {
	for eq.valParent[t] != t {
		eq.valParent[t] = eq.valParent[eq.valParent[t]]
		t = eq.valParent[t]
	}
	return t
}

// newTerm allocates a fresh value term.
func (eq *Eq) newTerm(sk slotKey, cv *graph.Value) Term {
	t := Term(len(eq.valParent))
	eq.valParent = append(eq.valParent, t)
	eq.slotKeys = append(eq.slotKeys, sk)
	eq.constVals = append(eq.constVals, cv)
	eq.size++
	return t
}

// constTerm returns the term for constant c, creating it on first use.
func (eq *Eq) constTerm(c graph.Value) Term {
	if t, ok := eq.constOf[c]; ok {
		return t
	}
	cv := c
	t := eq.newTerm(slotKey{}, &cv)
	eq.constOf[c] = t
	eq.rootConst[t] = t
	return t
}

// SlotTerm returns the value term of x.A if node x's class carries
// attribute A, and reports whether it does.
func (eq *Eq) SlotTerm(x graph.NodeID, a graph.Attr) (Term, bool) {
	r := eq.NodeRoot(x)
	e, ok := eq.nodeAttrs[r][a]
	if !ok {
		return noTerm, false
	}
	return eq.valRoot(e.term), true
}

// ensureSlot returns the value term of x.A, generating the attribute on
// x's class if absent — the "attribute generation" of chase-step cases
// (1) and (2). A distinct term is kept for every textually-mentioned
// (node, attribute) pair: when x's class already carries A through
// another node's slot, the new slot is unioned with it under an IDProp
// reason (closure rule (d)), so proof-forest explanations only ever name
// slots that some literal mentioned — which is what the GED2 side
// condition of the axiom system needs.
func (eq *Eq) ensureSlot(x graph.NodeID, a graph.Attr) Term {
	sk := slotKey{node: x, attr: a}
	if t, ok := eq.slotOf[sk]; ok {
		return eq.valRoot(t)
	}
	r := eq.NodeRoot(x)
	if entry, ok := eq.nodeAttrs[r][a]; ok {
		t := eq.newTerm(sk, nil)
		eq.slotOf[sk] = t
		eq.unionValues(eq.valRoot(entry.term), t, entry.term, t,
			Reason{Kind: ReasonIDProp, U: entry.owner, V: x, A: a})
		return eq.valRoot(t)
	}
	t := eq.newTerm(sk, nil)
	eq.slotOf[sk] = t
	if eq.nodeAttrs[r] == nil {
		eq.nodeAttrs[r] = make(map[graph.Attr]attrEntry)
	}
	eq.nodeAttrs[r][a] = attrEntry{term: t, owner: x}
	return eq.valRoot(t)
}

// ClassConst returns the constant bound to value class of term t, if any.
func (eq *Eq) ClassConst(t Term) (graph.Value, bool) {
	ct, ok := eq.rootConst[eq.valRoot(t)]
	if !ok {
		return graph.Value{}, false
	}
	return *eq.constVals[ct], true
}

// AttrConst returns the constant bound to x.A, if x's class carries A
// with a constant-bearing class.
func (eq *Eq) AttrConst(x graph.NodeID, a graph.Attr) (graph.Value, bool) {
	t, ok := eq.SlotTerm(x, a)
	if !ok {
		return graph.Value{}, false
	}
	return eq.ClassConst(t)
}

// SameValue reports whether x.A and y.B exist and lie in one value class.
func (eq *Eq) SameValue(x graph.NodeID, a graph.Attr, y graph.NodeID, b graph.Attr) bool {
	t1, ok1 := eq.SlotTerm(x, a)
	t2, ok2 := eq.SlotTerm(y, b)
	return ok1 && ok2 && t1 == t2
}

// bindConst unions x.A with constant c, generating the slot if needed.
func (eq *Eq) bindConst(x graph.NodeID, a graph.Attr, c graph.Value, why Reason) {
	t := eq.ensureSlot(x, a)
	// Anchor the forest edge at the concrete slot term, not the class root.
	slot := eq.slotTermForForest(x, a)
	eq.unionValues(t, eq.constTerm(c), slot, eq.constOf[c], why)
}

// bindEqual unions x.A with y.B, generating slots if needed.
func (eq *Eq) bindEqual(x graph.NodeID, a graph.Attr, y graph.NodeID, b graph.Attr, why Reason) {
	t1 := eq.ensureSlot(x, a)
	s1 := eq.slotTermForForest(x, a)
	t2 := eq.ensureSlot(y, b)
	s2 := eq.slotTermForForest(y, b)
	eq.unionValues(t1, t2, s1, s2, why)
}

// slotTermForForest returns the exact term of the mentioned slot (x, a),
// for use as a forest-edge endpoint. ensureSlot must have run first.
func (eq *Eq) slotTermForForest(x graph.NodeID, a graph.Attr) Term {
	return eq.slotOf[slotKey{node: x, attr: a}]
}

// unionValues merges the classes of value roots t1, t2, recording a
// forest edge between witness terms w1, w2. A class may carry at most
// one constant; two distinct constants are an attribute conflict.
func (eq *Eq) unionValues(t1, t2, w1, w2 Term, why Reason) {
	r1, r2 := eq.valRoot(t1), eq.valRoot(t2)
	if r1 == r2 {
		return
	}
	c1, has1 := eq.rootConst[r1]
	c2, has2 := eq.rootConst[r2]
	if has1 && has2 {
		v1, v2 := *eq.constVals[c1], *eq.constVals[c2]
		if !v1.Equal(v2) {
			eq.fail(&Conflict{Kind: AttrConflict, ConstA: v1, ConstB: v2})
			return
		}
	}
	eq.valParent[r2] = r1
	if has2 && !has1 {
		eq.rootConst[r1] = c2
	}
	delete(eq.rootConst, r2)
	if has1 {
		eq.rootConst[r1] = c1
	}
	eq.valForest[w1] = append(eq.valForest[w1], forestEdge{other: int(w2), reason: why})
	eq.valForest[w2] = append(eq.valForest[w2], forestEdge{other: int(w1), reason: why})
	eq.size++
}

// IdentifyNodes enforces x.id = y.id: it merges the node classes,
// resolves labels under ⪯, and applies closure rule (d) by merging the
// attribute classes of both sides. It is a no-op when already identified.
func (eq *Eq) IdentifyNodes(x, y graph.NodeID, why Reason) {
	r1, r2 := eq.NodeRoot(x), eq.NodeRoot(y)
	if r1 == r2 {
		return
	}
	l1, l2 := eq.nodeLabel[r1], eq.nodeLabel[r2]
	if !graph.LabelsCompatible(l1, l2) {
		eq.fail(&Conflict{Kind: LabelConflict, LabelA: l1, LabelB: l2, NodeA: r1, NodeB: r2})
		return
	}
	eq.nodeParent[r2] = r1
	eq.nodeLabel[r1] = graph.ResolveLabels(l1, l2)
	delete(eq.nodeLabel, r2)
	eq.nodeForest[x] = append(eq.nodeForest[x], forestEdge{other: int(y), reason: why})
	eq.nodeForest[y] = append(eq.nodeForest[y], forestEdge{other: int(x), reason: why})
	eq.size++

	// Closure rule (d): merge attribute maps.
	a1 := eq.nodeAttrs[r1]
	a2 := eq.nodeAttrs[r2]
	delete(eq.nodeAttrs, r2)
	if a2 == nil {
		return
	}
	if a1 == nil {
		eq.nodeAttrs[r1] = a2
		return
	}
	names := make([]string, 0, len(a2))
	for a := range a2 {
		names = append(names, string(a))
	}
	sort.Strings(names)
	for _, an := range names {
		a := graph.Attr(an)
		e2 := a2[a]
		if e1, ok := a1[a]; ok {
			eq.unionValues(eq.valRoot(e1.term), eq.valRoot(e2.term), e1.term, e2.term,
				Reason{Kind: ReasonIDProp, U: e1.owner, V: e2.owner, A: a})
			if !eq.Consistent() {
				return
			}
		} else {
			a1[a] = e2
		}
	}
}

func (eq *Eq) fail(c *Conflict) {
	if eq.conflict == nil {
		eq.conflict = c
	}
}

// NodeClasses returns the node classes as a map from representative to
// sorted members.
func (eq *Eq) NodeClasses() map[graph.NodeID][]graph.NodeID {
	out := make(map[graph.NodeID][]graph.NodeID)
	for _, id := range eq.g.Nodes() {
		r := eq.NodeRoot(id)
		out[r] = append(out[r], id)
	}
	return out
}

// ClassAttrs returns the attribute names carried by x's class, sorted.
func (eq *Eq) ClassAttrs(x graph.NodeID) []graph.Attr {
	r := eq.NodeRoot(x)
	m := eq.nodeAttrs[r]
	names := make([]string, 0, len(m))
	for a := range m {
		names = append(names, string(a))
	}
	sort.Strings(names)
	out := make([]graph.Attr, len(names))
	for i, n := range names {
		out[i] = graph.Attr(n)
	}
	return out
}
