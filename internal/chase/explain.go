package chase

import (
	"fmt"

	"gedlib/internal/graph"
)

// This file exposes the proof forests of Eq: for any two identified
// nodes, or any two terms in one value class, Explain* returns the chain
// of reasoned unions connecting them. The axiom package replays these
// chains into A_GED proofs (Section 6), turning the completeness
// argument of Theorem 7 into an executable proof generator.

// NodeLink is one edge of a node-forest explanation: nodes A and B were
// identified directly, for the given reason.
type NodeLink struct {
	A, B   graph.NodeID
	Reason Reason
}

// ValueEndpoint describes one end of a value-forest edge: either an
// attribute slot u.A or a constant.
type ValueEndpoint struct {
	IsConst bool
	Const   graph.Value
	Node    graph.NodeID
	Attr    graph.Attr
}

// String renders the endpoint.
func (v ValueEndpoint) String() string {
	if v.IsConst {
		return v.Const.String()
	}
	return fmt.Sprintf("n%d.%s", v.Node, v.Attr)
}

// ValueLink is one edge of a value-forest explanation.
type ValueLink struct {
	A, B   ValueEndpoint
	Reason Reason
}

// Endpoint describes term t.
func (eq *Eq) Endpoint(t Term) ValueEndpoint {
	if cv := eq.constVals[t]; cv != nil {
		return ValueEndpoint{IsConst: true, Const: *cv}
	}
	sk := eq.slotKeys[t]
	return ValueEndpoint{Node: sk.node, Attr: sk.attr}
}

// ExplainNodes returns a chain of directly-reasoned identifications
// connecting x and y, or nil if they are not identified (or are equal).
func (eq *Eq) ExplainNodes(x, y graph.NodeID) []NodeLink {
	if x == y || !eq.SameNode(x, y) {
		return nil
	}
	// BFS over the node forest.
	prev := map[graph.NodeID]forestEdge{}
	seen := map[graph.NodeID]bool{x: true}
	queue := []graph.NodeID{x}
	for len(queue) > 0 {
		cur := queue[0]
		queue = queue[1:]
		if cur == y {
			break
		}
		for _, e := range eq.nodeForest[cur] {
			o := graph.NodeID(e.other)
			if seen[o] {
				continue
			}
			seen[o] = true
			prev[o] = forestEdge{other: int(cur), reason: e.reason}
			queue = append(queue, o)
		}
	}
	if !seen[y] {
		return nil
	}
	var chain []NodeLink
	for cur := y; cur != x; {
		e := prev[cur]
		chain = append(chain, NodeLink{A: graph.NodeID(e.other), B: cur, Reason: e.reason})
		cur = graph.NodeID(e.other)
	}
	// Reverse into x→y order.
	for i, j := 0, len(chain)-1; i < j; i, j = i+1, j-1 {
		chain[i], chain[j] = chain[j], chain[i]
	}
	return chain
}

// ExplainTerms returns a chain of directly-reasoned value unions
// connecting terms s and t, or nil if they are in different classes (or
// equal).
func (eq *Eq) ExplainTerms(s, t Term) []ValueLink {
	if s == t || eq.valRoot(s) != eq.valRoot(t) {
		return nil
	}
	prev := map[Term]forestEdge{}
	seen := map[Term]bool{s: true}
	queue := []Term{s}
	for len(queue) > 0 {
		cur := queue[0]
		queue = queue[1:]
		if cur == t {
			break
		}
		for _, e := range eq.valForest[cur] {
			o := Term(e.other)
			if seen[o] {
				continue
			}
			seen[o] = true
			prev[o] = forestEdge{other: int(cur), reason: e.reason}
			queue = append(queue, o)
		}
	}
	if !seen[t] {
		return nil
	}
	var chain []ValueLink
	for cur := t; cur != s; {
		e := prev[cur]
		chain = append(chain, ValueLink{A: eq.Endpoint(Term(e.other)), B: eq.Endpoint(cur), Reason: e.reason})
		cur = Term(e.other)
	}
	for i, j := 0, len(chain)-1; i < j; i, j = i+1, j-1 {
		chain[i], chain[j] = chain[j], chain[i]
	}
	return chain
}

// SlotTermExact returns the term of the slot (x, a) if that exact slot
// was ever created (as opposed to the class-level SlotTerm lookup).
func (eq *Eq) SlotTermExact(x graph.NodeID, a graph.Attr) (Term, bool) {
	t, ok := eq.slotOf[slotKey{node: x, attr: a}]
	return t, ok
}

// ConstTermExact returns the term of constant c if it was ever created.
func (eq *Eq) ConstTermExact(c graph.Value) (Term, bool) {
	t, ok := eq.constOf[c]
	return t, ok
}

// ClassSlotTerm returns a term witnessing that class of x carries
// attribute a (the class entry term), and its owner node.
func (eq *Eq) ClassSlotTerm(x graph.NodeID, a graph.Attr) (Term, graph.NodeID, bool) {
	r := eq.NodeRoot(x)
	e, ok := eq.nodeAttrs[r][a]
	if !ok {
		return noTerm, 0, false
	}
	return e.term, e.owner, true
}
