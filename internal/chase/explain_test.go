package chase

import (
	"testing"

	"gedlib/internal/ged"
	"gedlib/internal/graph"
	"gedlib/internal/pattern"
)

func TestExplainNodesChain(t *testing.T) {
	// Three p-nodes merged pairwise by a key; the explanation between the
	// two outer nodes is a chain of step-reasoned links.
	g := graph.New()
	a := g.AddNodeAttrs("p", map[graph.Attr]graph.Value{"k": graph.Int(1)})
	b := g.AddNodeAttrs("p", map[graph.Attr]graph.Value{"k": graph.Int(1)})
	c := g.AddNodeAttrs("p", map[graph.Attr]graph.Value{"k": graph.Int(1)})
	q := pattern.New()
	q.AddVar("x", "p").AddVar("y", "p")
	key := ged.New("key", q,
		[]ged.Literal{ged.VarLit("x", "k", "y", "k")},
		[]ged.Literal{ged.IDLit("x", "y")})
	res := Run(g, ged.Set{key})
	if !res.Consistent() {
		t.Fatal("chase invalid")
	}
	if !res.Eq.SameNode(a, c) {
		t.Fatal("all nodes must merge")
	}
	chain := res.Eq.ExplainNodes(a, c)
	if len(chain) == 0 {
		t.Fatal("no explanation for identified nodes")
	}
	// Chain must connect a to c, each link reasoned by a chase step.
	if chain[0].A != a || chain[len(chain)-1].B != c {
		t.Errorf("chain endpoints wrong: %+v", chain)
	}
	for i := 0; i+1 < len(chain); i++ {
		if chain[i].B != chain[i+1].A {
			t.Errorf("chain broken at %d: %+v", i, chain)
		}
	}
	for _, l := range chain {
		if l.Reason.Kind != ReasonStep {
			t.Errorf("unexpected reason %v", l.Reason.Kind)
		}
		if l.Reason.Step >= len(res.Steps) {
			t.Errorf("dangling step index %d", l.Reason.Step)
		}
	}
	if res.Eq.ExplainNodes(a, a) != nil {
		t.Error("self-explanation must be nil")
	}
	_ = b
}

func TestExplainTermsThroughConstant(t *testing.T) {
	// v1.A and v2.A are connected through the shared constant 1
	// (closure rule (b)); the explanation passes through the constant
	// endpoint with initial reasons.
	g, ids := example4Graph()
	eq := NewEq(g)
	t1, ok1 := eq.SlotTerm(ids[0], "A")
	t2, ok2 := eq.SlotTerm(ids[1], "A")
	if !ok1 || !ok2 || t1 != t2 {
		t.Fatal("slots must share a class")
	}
	s1, _ := eq.SlotTermExact(ids[0], "A")
	s2, _ := eq.SlotTermExact(ids[1], "A")
	chain := eq.ExplainTerms(s1, s2)
	if len(chain) != 2 {
		t.Fatalf("expected 2-link chain through constant, got %d: %+v", len(chain), chain)
	}
	if !chain[0].B.IsConst || !chain[0].B.Const.Equal(graph.Int(1)) {
		t.Errorf("middle endpoint must be the constant 1: %+v", chain)
	}
	for _, l := range chain {
		if l.Reason.Kind != ReasonInitial {
			t.Errorf("expected initial reasons, got %v", l.Reason.Kind)
		}
	}
}

func TestExplainIDPropagation(t *testing.T) {
	// Merging nodes x, y propagates [x.k] = [y.k] with an IDProp reason.
	g := graph.New()
	a := g.AddNodeAttrs("p", map[graph.Attr]graph.Value{"k": graph.Int(1)})
	b := g.AddNodeAttrs("p", map[graph.Attr]graph.Value{"k": graph.Int(1)})
	// Use distinct attributes so rule (b) does not pre-merge them.
	g.SetAttr(a, "m", graph.Int(2))
	g.SetAttr(b, "m", graph.Int(3))
	eq := NewEq(g)
	eq.IdentifyNodes(a, b, Reason{Kind: ReasonGiven})
	if eq.Consistent() {
		t.Fatal("m-conflict expected: 2 vs 3")
	}

	// Now without the conflict: b has no m; a's m propagates, and the
	// k-slots merge with an IDProp-or-(b) explanation.
	g2 := graph.New()
	a2 := g2.AddNodeAttrs("p", map[graph.Attr]graph.Value{"n": graph.Int(5)})
	b2 := g2.AddNodeAttrs("p", map[graph.Attr]graph.Value{"n": graph.Int(7)})
	eq2 := NewEq(g2)
	// Distinct constants 5, 7: identifying the nodes must conflict.
	eq2.IdentifyNodes(a2, b2, Reason{Kind: ReasonGiven})
	if eq2.Consistent() {
		t.Fatal("expected attribute conflict via rule (d)")
	}
	if eq2.Conflict().Kind != AttrConflict {
		t.Errorf("conflict kind = %v", eq2.Conflict().Kind)
	}
}

func TestExplainDisconnected(t *testing.T) {
	g := graph.New()
	a := g.AddNode("p")
	b := g.AddNode("p")
	eq := NewEq(g)
	if eq.ExplainNodes(a, b) != nil {
		t.Error("unidentified nodes must have no explanation")
	}
}
