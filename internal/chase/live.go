package chase

import (
	"gedlib/internal/ged"
	"gedlib/internal/graph"
	"gedlib/internal/pattern"
)

// liveCoercion maintains the coercion graph G_Eq across chase rounds
// without rebuilding it. The structural changes between two rounds are
// exactly the node identifications the previous round performed — label
// refinements and attribute binds live in eq, which the chase evaluates
// literals against directly — so the maintenance is:
//
//   - each identified pair of classes elects a carrier (the coercion
//     node whose label equals the merged class's resolved label) and
//     the retired carrier's adjacency is transported onto it, with
//     class-internal edges folded into self-loops;
//   - the frozen snapshot is advanced by the working graph's own
//     mutation journal (Graph.DeltaSince + Snapshot.Apply), so the
//     matcher's host is refreshed in O(|merged adjacency|), not O(|G|);
//   - compiled match plans are rebound to the advanced snapshot.
//
// Retired carriers stay in the graph: their labels and edges are
// subsumed by their carriers (a retired node's label is its class label
// or a wildcard the class has since refined, and every one of its edges
// also connects the corresponding carriers), so matches binding them
// are duplicates of carrier-only matches and the round loop skips them
// via isCarrier. When too many nodes have retired, rebuild() re-coerces
// from scratch — the same valve a log-structured store compacts with.
type liveCoercion struct {
	eq    *Eq
	sigma ged.Set
	co    *Coercion
	snap  *graph.Snapshot
	// parent is a union-find over coercion nodes; a root is a carrier.
	parent []graph.NodeID
	stale  int
	plans  []*pattern.Plan
}

// deltaChaseMinNodes is the coercion-graph size below which a full
// rebuild is cheaper than carrying retired carriers in the matching
// space: rebuilding a few thousand nodes costs microseconds, while
// every stale node both widens candidate postings and pays the carrier
// filter on the matcher's innermost loop.
const deltaChaseMinNodes = 4096

func newLiveCoercion(eq *Eq, sigma ged.Set) *liveCoercion {
	lc := &liveCoercion{eq: eq, sigma: sigma}
	lc.rebuild()
	return lc
}

// rebuild re-coerces from scratch: the once-per-chase initialization,
// and the compaction valve when retirements pile up.
func (lc *liveCoercion) rebuild() {
	lc.co = Coerce(lc.eq)
	lc.snap = lc.co.Graph.Freeze()
	lc.parent = make([]graph.NodeID, lc.co.Graph.NumNodes())
	for i := range lc.parent {
		lc.parent[i] = graph.NodeID(i)
	}
	lc.stale = 0
	lc.plans = make([]*pattern.Plan, len(lc.sigma))
}

// find returns the carrier of coercion node c, with path halving.
func (lc *liveCoercion) find(c graph.NodeID) graph.NodeID {
	for lc.parent[c] != c {
		lc.parent[c] = lc.parent[lc.parent[c]]
		c = lc.parent[c]
	}
	return c
}

// isCarrier reports whether coercion node c still carries its class.
func (lc *liveCoercion) isCarrier(c graph.NodeID) bool { return lc.parent[c] == c }

// plan returns the compiled (and delta-rebound) match plan for Σ[gi].
//
// Chase plans pick up the matcher's intersection-based extension step
// (multi-way sorted-run intersection over the coercion snapshot's CSR
// runs) but deliberately push NO constant literals down: the chase
// evaluates literals against the equivalence relation Eq — where
// attribute values are *bound by chase steps*, not stored on the
// coercion graph, whose nodes start attribute-free — so the snapshot's
// value postings do not describe what X-literal satisfaction means
// here. Enforce's compiled-literal check is the single source of truth
// for that.
func (lc *liveCoercion) plan(gi int) *pattern.Plan {
	if lc.plans[gi] == nil {
		lc.plans[gi] = pattern.Compile(lc.sigma[gi].Pattern, lc.snap)
	}
	return lc.plans[gi]
}

// advance folds one round's node identifications into the coercion
// graph and catches the snapshot up by the resulting delta (the round
// that follows re-sweeps the patched snapshot). With no merges it is a
// no-op: const- and var-literal rounds reuse the snapshot as is, for
// free.
func (lc *liveCoercion) advance(merges [][2]graph.NodeID) {
	if len(merges) == 0 {
		return
	}
	// Rebuild eagerly outside the sparse-merge regime: a re-coercion
	// not only compacts the retired carriers away, it *shrinks* the
	// matching space to the quotient, which outweighs the O(|G|)
	// rebuild cost unless the graph dwarfs both the merge count and the
	// rebuild itself. The true delta path is reserved for large graphs
	// where a handful of classes collapse — the streaming regime the
	// snapshot maintenance exists for.
	n := lc.co.Graph.NumNodes()
	if n < deltaChaseMinNodes || (lc.stale+len(merges))*8 > n {
		lc.rebuild()
		return
	}
	for _, p := range merges {
		lc.merge(p[0], p[1])
	}
	d := lc.co.Graph.DeltaSince(lc.snap.SourceVersion())
	if d == nil {
		// The working graph trimmed its journal past the snapshot —
		// only possible after extreme merge-transport churn; compact.
		lc.rebuild()
		return
	}
	if d.Empty() {
		return
	}
	lc.snap = lc.snap.Apply(d)
	for i, pl := range lc.plans {
		if pl != nil {
			lc.plans[i] = pl.Rebind(lc.snap)
		}
	}
}

// merge retires one of the two classes' carriers in favor of the one
// whose label matches the merged class's resolved label, transporting
// the retired carrier's adjacency onto it. u and v are base-graph
// nodes, already identified in eq.
func (lc *liveCoercion) merge(u, v graph.NodeID) {
	cu := lc.find(lc.co.NodeOf[u])
	cv := lc.find(lc.co.NodeOf[v])
	if cu == cv {
		return
	}
	co := lc.co.Graph
	resolved := lc.eq.ClassLabel(u)
	winner, loser := cu, cv
	if co.Label(winner) != resolved {
		winner, loser = cv, cu
	}
	// Both carriers can only disagree with the resolved label while the
	// round's remaining merges still fold the concrete-labeled class in
	// (label refinement comes from merging alone); the final merge of
	// the batch then elects the properly-labeled carrier, so an interim
	// wildcard winner is fine. See the invariant note on liveCoercion.
	for _, e := range co.Out(loser) {
		dst := e.Dst
		if dst == loser {
			dst = winner
		}
		co.AddEdge(winner, e.Label, dst)
	}
	for _, e := range co.In(loser) {
		src := e.Src
		if src == loser {
			src = winner
		}
		co.AddEdge(src, e.Label, winner)
	}
	lc.parent[loser] = winner
	lc.stale++
	// Keep the carrier's base representative current, so recorded chase
	// steps name the same class representatives a fresh per-round
	// coercion would.
	lc.co.RepOf[winner] = lc.eq.NodeRoot(lc.co.RepOf[winner])
}
