package chase

import (
	"fmt"

	"gedlib/internal/graph"
)

// Materialize turns the final coercion of a valid chase into a concrete
// graph suitable as a model witness (Theorem 2's "only if" direction):
//
//   - residual wildcard node and edge labels are replaced by fresh
//     concrete labels (this preserves the match set exactly, because a
//     concrete pattern label matches neither the wildcard nor a label it
//     has never seen, while a wildcard pattern label matches both);
//   - every attribute class without a constant is materialized as a
//     fresh constant, one per value class, so equated attributes agree
//     and unequated ones differ.
//
// It must only be called on a consistent result.
func (r *Result) Materialize() *graph.Graph {
	if !r.Consistent() {
		panic("chase: materializing an invalid chase")
	}
	if r.Coercion == nil {
		panic("chase: materializing a result without a coercion")
	}
	eq, co := r.Eq, r.Coercion
	out := graph.New()
	freshLabels := 0
	for cn, rep := range co.RepOf {
		l := co.Graph.Label(graph.NodeID(cn))
		if l == graph.Wildcard {
			l = graph.Label(fmt.Sprintf("_fresh%d", freshLabels))
			freshLabels++
		}
		id := out.AddNode(l)
		if id != graph.NodeID(cn) {
			panic("chase: materialize node order")
		}
		_ = rep
	}
	for _, e := range co.Graph.Edges() {
		l := e.Label
		if l == graph.Wildcard {
			l = graph.Label(fmt.Sprintf("_freshe%d", freshLabels))
			freshLabels++
		}
		out.AddEdge(e.Src, l, e.Dst)
	}
	// Materialize attributes: constants verbatim, constant-less classes
	// as fresh values shared across the class.
	placeholder := make(map[Term]graph.Value)
	for cn, rep := range co.RepOf {
		for _, a := range eq.ClassAttrs(rep) {
			if v, ok := eq.AttrConst(rep, a); ok {
				out.SetAttr(graph.NodeID(cn), a, v)
				continue
			}
			t, _ := eq.SlotTerm(rep, a)
			v, ok := placeholder[t]
			if !ok {
				v = graph.String(fmt.Sprintf("_v%d", len(placeholder)))
				placeholder[t] = v
			}
			out.SetAttr(graph.NodeID(cn), a, v)
		}
	}
	return out
}
