package chase

import (
	"math/rand"
	"testing"

	"gedlib/internal/ged"
	"gedlib/internal/graph"
	"gedlib/internal/pattern"
)

// TestChaseIdempotent: chasing a valid chase result again applies no
// further steps — the result already satisfies Σ (fixpoint property).
func TestChaseIdempotent(t *testing.T) {
	rng := rand.New(rand.NewSource(83))
	for trial := 0; trial < 50; trial++ {
		g, sigma := randomInstance(rng)
		res := Run(g, sigma)
		if !res.Consistent() {
			continue
		}
		again := Run(res.Materialize(), sigma)
		if !again.Consistent() {
			t.Fatalf("trial %d: re-chasing a valid result failed", trial)
		}
		if len(again.Steps) != 0 {
			t.Fatalf("trial %d: re-chase applied %d steps; fixpoint broken", trial, len(again.Steps))
		}
	}
}

// TestChaseMonotoneInSigma: adding dependencies can only merge more —
// the node partition of chase(G, Σ) refines that of chase(G, Σ ∪ Σ′)
// when both are consistent.
func TestChaseMonotoneInSigma(t *testing.T) {
	rng := rand.New(rand.NewSource(89))
	for trial := 0; trial < 50; trial++ {
		g, sigma := randomInstance(rng)
		_, extra := randomInstance(rng)
		small := Run(g.Clone(), sigma)
		big := Run(g.Clone(), append(append(ged.Set{}, sigma...), extra...))
		if !small.Consistent() || !big.Consistent() {
			continue
		}
		for _, a := range g.Nodes() {
			for _, b := range g.Nodes() {
				if small.Eq.SameNode(a, b) && !big.Eq.SameNode(a, b) {
					t.Fatalf("trial %d: larger Σ separated nodes %d, %d", trial, a, b)
				}
			}
		}
	}
}

// TestSeededSupersetOfUnseeded: the seeded chase extends the unseeded
// one — every identification made without seeds persists with them,
// when both are consistent.
func TestSeededSupersetOfUnseeded(t *testing.T) {
	rng := rand.New(rand.NewSource(97))
	for trial := 0; trial < 40; trial++ {
		g, sigma := randomInstance(rng)
		base := Run(g.Clone(), sigma)
		if !base.Consistent() {
			continue
		}
		// Seed one extra id literal between two label-compatible nodes.
		ids := g.Nodes()
		a, b := ids[rng.Intn(len(ids))], ids[rng.Intn(len(ids))]
		if !graph.LabelsCompatible(g.Label(a), g.Label(b)) {
			continue
		}
		q := pattern.New()
		q.AddVar("u", graph.Wildcard).AddVar("v", graph.Wildcard)
		seeded := RunSeeded(g.Clone(), sigma, []Seed{{
			Literal: ged.IDLit("u", "v"),
			Nodes:   map[pattern.Var]graph.NodeID{"u": a, "v": b},
		}})
		if !seeded.Consistent() {
			continue
		}
		for _, x := range ids {
			for _, y := range ids {
				if base.Eq.SameNode(x, y) && !seeded.Eq.SameNode(x, y) {
					t.Fatalf("trial %d: seeding separated %d, %d", trial, x, y)
				}
			}
		}
		if !seeded.Eq.SameNode(a, b) {
			t.Fatalf("trial %d: seed literal not honored", trial)
		}
	}
}

// TestCoercionPreservesMatches: every pattern match in G survives into
// the coercion (composition with the quotient map).
func TestCoercionPreservesMatches(t *testing.T) {
	rng := rand.New(rand.NewSource(101))
	for trial := 0; trial < 40; trial++ {
		g, sigma := randomInstance(rng)
		res := Run(g.Clone(), sigma)
		if !res.Consistent() {
			continue
		}
		for _, d := range sigma {
			pattern.ForEachMatch(d.Pattern, g, func(m pattern.Match) bool {
				// The composed assignment must be a match in the coercion.
				composed := make(pattern.Match, len(m))
				for v, n := range m {
					composed[v] = res.Coercion.NodeOf[n]
				}
				// Verify labels and edges directly.
				for _, v := range d.Pattern.Vars() {
					if !graph.LabelMatches(d.Pattern.Label(v), res.Coercion.Graph.Label(composed[v])) {
						t.Fatalf("trial %d: label lost in coercion", trial)
					}
				}
				for _, e := range d.Pattern.Edges() {
					ok := false
					for _, ge := range res.Coercion.Graph.Out(composed[e.Src]) {
						if ge.Dst == composed[e.Dst] && graph.LabelMatches(e.Label, ge.Label) {
							ok = true
							break
						}
					}
					if !ok {
						t.Fatalf("trial %d: edge lost in coercion", trial)
					}
				}
				return true
			})
		}
	}
}

// TestEqClassesPartition: node classes form a partition of V.
func TestEqClassesPartition(t *testing.T) {
	rng := rand.New(rand.NewSource(103))
	for trial := 0; trial < 40; trial++ {
		g, sigma := randomInstance(rng)
		res := Run(g, sigma)
		if !res.Consistent() {
			continue
		}
		seen := map[graph.NodeID]int{}
		for rep, members := range res.Eq.NodeClasses() {
			for _, m := range members {
				seen[m]++
				if res.Eq.NodeRoot(m) != rep {
					t.Fatalf("trial %d: member %d not rooted at %d", trial, m, rep)
				}
			}
		}
		for _, id := range g.Nodes() {
			if seen[id] != 1 {
				t.Fatalf("trial %d: node %d appears %d times in the partition", trial, id, seen[id])
			}
		}
	}
}
