// Package discover mines GFDs that hold on a given graph — the
// profiling counterpart of validation, and the source of the "data
// quality rules" the paper's analyses are designed to manage. The
// implication analysis is used exactly as Section 5.2 motivates: "an
// optimization strategy to get rid of redundant rules" — every candidate
// implied by the rules already kept is pruned.
//
// The search space is deliberately the practical one the paper points
// at (Section 5.3: most real patterns are tiny): single-node patterns
// per label, and single-edge patterns per (label, edge label, label)
// triple occurring in the data. Over each shape, three rule families are
// mined:
//
//   - constant rules        Q[x̄](∅ → x.A = c)
//   - variable rules        Q[x,y](∅ → x.A = y.B)   (edge shapes)
//   - conditional rules     Q[x̄](x.A = c → z.B = d)
//
// Every returned rule is verified exactly (zero violations on g) and
// carries its support (number of matches it constrains).
package discover

import (
	"context"
	"errors"
	"fmt"
	"sort"

	"gedlib/internal/chase"
	"gedlib/internal/ged"
	"gedlib/internal/graph"
	"gedlib/internal/pattern"
	"gedlib/internal/reason"
)

// Options tunes the search.
type Options struct {
	// MinSupport is the minimum number of matches a rule must constrain
	// (matches satisfying its antecedent). Default 2.
	MinSupport int
	// MaxConstDomain bounds the number of distinct values an attribute
	// may take before constant/conditional rules on it are skipped.
	// Default 8.
	MaxConstDomain int
	// PruneImplied drops rules implied by rules already kept, using the
	// chase-based implication analysis. Default true (set SkipPruning to
	// disable).
	SkipPruning bool
}

func (o Options) minSupport() int {
	if o.MinSupport <= 0 {
		return 2
	}
	return o.MinSupport
}

func (o Options) maxDomain() int {
	if o.MaxConstDomain <= 0 {
		return 8
	}
	return o.MaxConstDomain
}

// Discovered is a mined rule with its support.
type Discovered struct {
	GED     *ged.GED
	Support int
}

// GFDs mines rules from g. Results are deterministic: rules are
// generated and kept in a canonical order.
func GFDs(g *graph.Graph, opt Options) []Discovered {
	out, _ := GFDsCtx(context.Background(), g, opt, 0)
	return out
}

// GFDsCtx is GFDs with cooperative cancellation: ctx is threaded into
// shape-match enumeration and into the implication chases that prune
// redundant candidates, so a cancelled context aborts the search
// mid-shape. maxRounds (<= 0 means unbounded) bounds each pruning
// chase; a candidate whose pruning chase exceeds the bound is kept —
// mining stays exact, pruning is best-effort under a resource cap. The
// rules kept before an abort are returned alongside ctx's error.
func GFDsCtx(ctx context.Context, g *graph.Graph, opt Options, maxRounds int) ([]Discovered, error) {
	return GFDsOnCtx(ctx, g, g.Freeze(), opt, maxRounds)
}

// GFDsOnCtx is GFDsCtx with the matching host supplied by the caller:
// h is a snapshot of g (the Engine facade passes its cached one), built
// once and shared across every shape enumeration and every exact
// verification, while attribute statistics are still gathered from g's
// native tuples.
func GFDsOnCtx(ctx context.Context, g *graph.Graph, h pattern.Host, opt Options, maxRounds int) ([]Discovered, error) {
	var out []Discovered
	var ctxErr error
	keep := func(d Discovered) {
		if ctxErr != nil || ctx.Err() != nil {
			return
		}
		if !opt.SkipPruning {
			var kept ged.Set
			for _, k := range out {
				kept = append(kept, k.GED)
			}
			if len(kept) > 0 {
				impl, err := reason.ImpliesCtx(ctx, kept, d.GED, maxRounds)
				switch {
				case errors.Is(err, chase.ErrDepthExceeded):
					// Implication unknown within the bound: keep the
					// (exactly verified) rule rather than guess.
				case err != nil:
					ctxErr = err
					return
				case impl.Implied:
					return
				}
			}
		}
		out = append(out, d)
	}

	for _, sh := range shapes(ctx, g, h) {
		if err := ctx.Err(); err != nil {
			return out, err
		}
		mineShape(ctx, g, h, sh, opt, keep)
		if ctxErr != nil {
			return out, ctxErr
		}
	}
	return out, ctx.Err()
}

// shape is a mining target: a tiny pattern plus its matches.
type shape struct {
	name    string
	pattern *pattern.Pattern
	matches []pattern.Match
}

// shapes enumerates single-node and single-edge shapes present in g,
// collecting their matches over the shared host h and aborting match
// collection when ctx is cancelled.
func shapes(ctx context.Context, g *graph.Graph, h pattern.Host) []shape {
	var out []shape
	stop := func() bool { return ctx.Err() != nil }
	collect := func(p *pattern.Pattern) []pattern.Match {
		var ms []pattern.Match
		pattern.ForEachMatchCancel(p, h, stop, func(m pattern.Match) bool {
			ms = append(ms, m.Clone())
			return ctx.Err() == nil
		})
		return ms
	}
	// Node shapes per concrete label.
	labels := map[graph.Label]bool{}
	for _, id := range g.Nodes() {
		labels[g.Label(id)] = true
	}
	var labelList []graph.Label
	for l := range labels {
		labelList = append(labelList, l)
	}
	sort.Slice(labelList, func(i, j int) bool { return labelList[i] < labelList[j] })
	for _, l := range labelList {
		if l == graph.Wildcard {
			continue
		}
		p := pattern.New()
		p.AddVar("x", l)
		out = append(out, shape{
			name:    fmt.Sprintf("(%s)", l),
			pattern: p,
			matches: collect(p),
		})
	}
	// Edge shapes per (srcLabel, edgeLabel, dstLabel) triple.
	type triple struct {
		s, e, d graph.Label
	}
	triples := map[triple]bool{}
	for _, e := range g.Edges() {
		triples[triple{g.Label(e.Src), e.Label, g.Label(e.Dst)}] = true
	}
	var tripleList []triple
	for t := range triples {
		tripleList = append(tripleList, t)
	}
	sort.Slice(tripleList, func(i, j int) bool {
		a, b := tripleList[i], tripleList[j]
		return fmt.Sprint(a) < fmt.Sprint(b)
	})
	for _, t := range tripleList {
		if t.s == graph.Wildcard || t.d == graph.Wildcard {
			continue
		}
		p := pattern.New()
		p.AddVar("x", t.s).AddVar("y", t.d)
		p.AddEdge("x", t.e, "y")
		out = append(out, shape{
			name:    fmt.Sprintf("(%s)-[%s]->(%s)", t.s, t.e, t.d),
			pattern: p,
			matches: collect(p),
		})
	}
	return out
}

// mineShape emits the rules of one shape through keep, abandoning the
// shape as soon as ctx is cancelled. Attribute statistics come from g's
// native tuples; exact verification matches over the shared host h.
func mineShape(ctx context.Context, g *graph.Graph, h pattern.Host, sh shape, opt Options, keep func(Discovered)) {
	if len(sh.matches) < opt.minSupport() {
		return
	}
	vars := sh.pattern.Vars()

	// Collect, per variable, the attributes and their value sets.
	type attrStat struct {
		values  map[graph.Value]int
		present int
	}
	stats := make(map[pattern.Var]map[graph.Attr]*attrStat)
	for _, v := range vars {
		stats[v] = map[graph.Attr]*attrStat{}
	}
	for _, m := range sh.matches {
		for _, v := range vars {
			for a, val := range g.Attrs(m[v]) {
				st := stats[v][a]
				if st == nil {
					st = &attrStat{values: map[graph.Value]int{}}
					stats[v][a] = st
				}
				st.values[val]++
				st.present++
			}
		}
	}
	sortedAttrs := func(v pattern.Var) []graph.Attr {
		var as []graph.Attr
		for a := range stats[v] {
			as = append(as, a)
		}
		sort.Slice(as, func(i, j int) bool { return as[i] < as[j] })
		return as
	}

	n := len(sh.matches)

	// Constant rules: x.A = c in every match.
	for _, v := range vars {
		for _, a := range sortedAttrs(v) {
			if ctx.Err() != nil {
				return
			}
			st := stats[v][a]
			if st.present != n || len(st.values) != 1 {
				continue
			}
			var c graph.Value
			for val := range st.values {
				c = val
			}
			rule := ged.New(fmt.Sprintf("const:%s.%s@%s", v, a, sh.name),
				sh.pattern, nil, []ged.Literal{ged.ConstLit(v, a, c)})
			emitVerified(ctx, h, rule, n, keep)
		}
	}

	// Variable rules on edge shapes: x.A = y.B in every match.
	if len(vars) == 2 {
		x, y := vars[0], vars[1]
		for _, a := range sortedAttrs(x) {
			for _, b := range sortedAttrs(y) {
				if ctx.Err() != nil {
					return
				}
				holds := 0
				for _, m := range sh.matches {
					va, ok1 := g.Attr(m[x], a)
					vb, ok2 := g.Attr(m[y], b)
					if ok1 && ok2 && va.Equal(vb) {
						holds++
					}
				}
				if holds != n {
					continue
				}
				rule := ged.New(fmt.Sprintf("var:%s.%s=%s.%s@%s", x, a, y, b, sh.name),
					sh.pattern, nil, []ged.Literal{ged.VarLit(x, a, y, b)})
				emitVerified(ctx, h, rule, n, keep)
			}
		}
	}

	// Conditional rules: (v.A = c) → (w.B = d), with small domains.
	for _, v := range vars {
		for _, a := range sortedAttrs(v) {
			if ctx.Err() != nil {
				return
			}
			st := stats[v][a]
			if len(st.values) > opt.maxDomain() {
				continue
			}
			var cvals []graph.Value
			for val := range st.values {
				cvals = append(cvals, val)
			}
			sort.Slice(cvals, func(i, j int) bool { return cvals[i].Less(cvals[j]) })
			for _, c := range cvals {
				// Matches satisfying the antecedent.
				var sel []pattern.Match
				for _, m := range sh.matches {
					if val, ok := g.Attr(m[v], a); ok && val.Equal(c) {
						sel = append(sel, m)
					}
				}
				if len(sel) < opt.minSupport() {
					continue
				}
				for _, w := range vars {
					for _, b := range sortedAttrs(w) {
						if ctx.Err() != nil {
							return
						}
						if w == v && b == a {
							continue
						}
						// A single consequent value across sel?
						var d *graph.Value
						uniform := true
						for _, m := range sel {
							val, ok := g.Attr(m[w], b)
							if !ok {
								uniform = false
								break
							}
							if d == nil {
								vv := val
								d = &vv
							} else if !d.Equal(val) {
								uniform = false
								break
							}
						}
						if !uniform || d == nil {
							continue
						}
						rule := ged.New(
							fmt.Sprintf("cond:%s.%s=%s->%s.%s@%s", v, a, c, w, b, sh.name),
							sh.pattern,
							[]ged.Literal{ged.ConstLit(v, a, c)},
							[]ged.Literal{ged.ConstLit(w, b, *d)})
						emitVerified(ctx, h, rule, len(sel), keep)
					}
				}
			}
		}
	}
}

// emitVerified double-checks the rule exactly before keeping it,
// reusing the shared matching host instead of re-freezing per
// candidate; the verification itself honors ctx, so cancellation cannot
// strand a full-graph validation.
func emitVerified(ctx context.Context, h pattern.Host, rule *ged.GED, support int, keep func(Discovered)) {
	vs, err := reason.ValidateOnCtx(ctx, h, ged.Set{rule}, 1)
	if err != nil || len(vs) != 0 {
		return // should not happen; mining is exact, but stay safe
	}
	keep(Discovered{GED: rule, Support: support})
}
