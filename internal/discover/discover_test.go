package discover

import (
	"strings"
	"testing"

	"gedlib/internal/ged"
	"gedlib/internal/gen"
	"gedlib/internal/graph"
	"gedlib/internal/reason"
)

// gameGraph builds a catalog where every video game is created by a
// programmer — the φ₁ regularity, plantable and minable.
func gameGraph(n int) *graph.Graph {
	g := graph.New()
	for i := 0; i < n; i++ {
		p := g.AddNodeAttrs("person", map[graph.Attr]graph.Value{
			"type": graph.String("programmer")})
		pr := g.AddNodeAttrs("product", map[graph.Attr]graph.Value{
			"type": graph.String("video game")})
		g.AddEdge(p, "create", pr)
	}
	return g
}

func TestDiscoverConstantRule(t *testing.T) {
	g := gameGraph(5)
	found := GFDs(g, Options{})
	if len(found) == 0 {
		t.Fatal("nothing discovered")
	}
	// Among the discovered rules: persons are programmers.
	var hit bool
	for _, d := range found {
		s := d.GED.String()
		if strings.Contains(s, `type = "programmer"`) && d.Support >= 5 {
			hit = true
		}
	}
	if !hit {
		t.Errorf("constant rule not discovered; got %d rules", len(found))
	}
	// Every discovered rule is exact on g.
	for _, d := range found {
		if !reason.Satisfies(g, ged.Set{d.GED}) {
			t.Errorf("discovered rule violated: %s", d.GED)
		}
	}
}

func TestDiscoverConditionalRule(t *testing.T) {
	// Mixed creators: video games by programmers, board games by
	// designers. The unconditional rule fails; the conditional ones hold.
	g := graph.New()
	add := func(ptype, gtype string) {
		p := g.AddNodeAttrs("person", map[graph.Attr]graph.Value{"type": graph.String(ptype)})
		pr := g.AddNodeAttrs("product", map[graph.Attr]graph.Value{"type": graph.String(gtype)})
		g.AddEdge(p, "create", pr)
	}
	for i := 0; i < 4; i++ {
		add("programmer", "video game")
		add("designer", "board game")
	}
	found := GFDs(g, Options{})
	var condVG, condBG, uncond bool
	for _, d := range found {
		s := d.GED.String()
		if strings.Contains(s, `y.type = "video game" -> x.type = "programmer"`) {
			condVG = true
		}
		if strings.Contains(s, `y.type = "board game" -> x.type = "designer"`) {
			condBG = true
		}
		if strings.Contains(s, `true -> x.type = "programmer"`) {
			uncond = true
		}
	}
	if !condVG || !condBG {
		var all []string
		for _, d := range found {
			all = append(all, d.GED.String())
		}
		t.Errorf("conditional rules missing (vg=%v bg=%v); discovered:\n%s",
			condVG, condBG, strings.Join(all, "\n"))
	}
	if uncond {
		t.Error("unconditional creator rule must not hold on mixed data")
	}
}

func TestDiscoverVariableRule(t *testing.T) {
	// Cities carry their country's region: x.region = y.region across
	// every capital edge.
	g := graph.New()
	for i := 0; i < 4; i++ {
		r := graph.String(string(rune('A' + i)))
		c := g.AddNodeAttrs("country", map[graph.Attr]graph.Value{"region": r})
		ci := g.AddNodeAttrs("city", map[graph.Attr]graph.Value{"region": r})
		g.AddEdge(c, "capital", ci)
	}
	found := GFDs(g, Options{})
	var hit bool
	for _, d := range found {
		if strings.Contains(d.GED.String(), "x.region = y.region") {
			hit = true
		}
	}
	if !hit {
		t.Error("variable rule not discovered")
	}
}

func TestDiscoverPrunesImplied(t *testing.T) {
	g := gameGraph(6)
	pruned := GFDs(g, Options{})
	unpruned := GFDs(g, Options{SkipPruning: true})
	if len(pruned) > len(unpruned) {
		t.Fatal("pruning added rules?!")
	}
	if len(pruned) == len(unpruned) {
		t.Skip("no redundancy on this input")
	}
	// The pruned set implies everything in the unpruned set.
	var kept ged.Set
	for _, d := range pruned {
		kept = append(kept, d.GED)
	}
	for _, d := range unpruned {
		if !reason.Implies(kept, d.GED).Implied {
			t.Errorf("pruned set lost information: %s", d.GED)
		}
	}
}

func TestDiscoverMinSupport(t *testing.T) {
	g := gameGraph(1) // single match: below the default support of 2
	if found := GFDs(g, Options{}); len(found) != 0 {
		t.Errorf("support-1 rules must be suppressed, got %d", len(found))
	}
	if found := GFDs(g, Options{MinSupport: 1}); len(found) == 0 {
		t.Error("support 1 must re-enable mining")
	}
}

func TestDiscoverOnCleanKB(t *testing.T) {
	// On a clean knowledge base, mined rules must include the planted
	// regularities (species inherit can_fly) and all be exact.
	g, _ := gen.KnowledgeBase(8, 30, 0)
	found := GFDs(g, Options{})
	if len(found) == 0 {
		t.Fatal("nothing mined from the knowledge base")
	}
	for _, d := range found {
		if !reason.Satisfies(g, ged.Set{d.GED}) {
			t.Errorf("mined rule violated: %s", d.GED)
		}
	}
}

func TestDiscoverDomainCap(t *testing.T) {
	// An attribute with a huge domain must not explode into per-value
	// conditional rules.
	g := graph.New()
	for i := 0; i < 40; i++ {
		g.AddNodeAttrs("p", map[graph.Attr]graph.Value{
			"serial": graph.Int(i), "kind": graph.String("widget")})
	}
	found := GFDs(g, Options{})
	for _, d := range found {
		if strings.Contains(d.GED.Name, "cond:x.serial") {
			t.Errorf("high-cardinality antecedent mined: %s", d.GED.Name)
		}
	}
}
