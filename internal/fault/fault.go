// Package fault is a fault-injecting persist.FS: a deterministic,
// seedable schedule of filesystem failures layered over any base FS.
// It exists so the durability and degraded-serving paths can be
// exercised continuously — the chaos soak (bench.ChaosSoak), the
// degraded-mode serve tests, and `gedserve -fault` all drive it —
// while production code never touches it.
//
// Faults are Rules. A rule watches one operation class (writes, syncs,
// opens, reads, renames) on paths matching a substring, and fires per
// its trigger:
//
//   - AfterBytes: an ENOSPC-style budget — matching writes succeed
//     until the byte budget is exhausted, then the write that crosses
//     the boundary lands partially (a realistic torn write at the end
//     of the disk) and fails; every later matching write fails too.
//   - Kth: fire from the Kth matching call onward (1-based).
//   - Count: fire at most Count times, then lapse (0 = until Heal).
//   - TornBytes: a torn write — write this many bytes of the payload
//     (a seeded random fraction when 0), then fail.
//   - Delay: latency injected before matching operations.
//
// All injected errors are sticky until healed unless bounded by Count;
// Heal drops every rule at once, which is what the soak's
// inject-then-heal episodes need. Everything is guarded by one mutex
// and the randomness comes from the constructor seed, so a given seed
// and operation sequence injects an identical fault schedule.
package fault

import (
	"fmt"
	"math/rand"
	"os"
	"strconv"
	"strings"
	"sync"
	"syscall"
	"time"

	"gedlib/persist"
)

// Op classifies the filesystem operations a Rule can watch.
type Op uint8

const (
	// OpWrite matches File.Write on files opened for writing.
	OpWrite Op = iota
	// OpSync matches File.Sync.
	OpSync
	// OpOpen matches FS.OpenFile and FS.CreateTemp.
	OpOpen
	// OpRead matches File.ReadAt, FS.ReadFile, FS.ReadDir and FS.Map.
	OpRead
	// OpRename matches FS.Rename.
	OpRename
)

// ParseOp parses "write", "sync", "open", "read", "rename".
func ParseOp(s string) (Op, error) {
	switch s {
	case "write":
		return OpWrite, nil
	case "sync":
		return OpSync, nil
	case "open":
		return OpOpen, nil
	case "read":
		return OpRead, nil
	case "rename":
		return OpRename, nil
	}
	return 0, fmt.Errorf("fault: unknown op %q (want write, sync, open, read or rename)", s)
}

func (op Op) String() string {
	switch op {
	case OpWrite:
		return "write"
	case OpSync:
		return "sync"
	case OpOpen:
		return "open"
	case OpRead:
		return "read"
	case OpRename:
		return "rename"
	}
	return "?"
}

// Rule is one scheduled fault. See the package comment for trigger
// semantics. Zero triggers (no AfterBytes, no Kth) fire immediately.
type Rule struct {
	// Kind names the fault for stats ("enospc", "eio", "torn",
	// "slow"...); free-form.
	Kind string
	// Op is the operation class the rule watches.
	Op Op
	// Path filters by substring of the operated-on path; "" matches all.
	Path string
	// Err is the injected error; nil makes the rule latency-only.
	Err error
	// AfterBytes arms the rule only after this many bytes have been
	// written through matching operations (OpWrite only).
	AfterBytes int64
	// Kth arms the rule from the Kth matching call onward (1-based;
	// 0 = the first).
	Kth int
	// Count bounds how many times the rule fires (0 = until Heal).
	Count int
	// TornBytes, on OpWrite, writes this many bytes of the payload
	// before failing; 0 with Err picks a seeded random proper fraction.
	TornBytes int
	// Delay is injected before every matching operation.
	Delay time.Duration
}

type rule struct {
	Rule
	seen  int   // matching calls so far
	bytes int64 // matching bytes so far (OpWrite)
	fired int
}

// FS implements persist.FS, forwarding to a base FS and injecting the
// scheduled faults. Safe for concurrent use.
type FS struct {
	base persist.FS

	mu       sync.Mutex
	rng      *rand.Rand
	rules    []*rule
	injected map[string]uint64
}

var _ persist.FS = (*FS)(nil)

// New builds a fault FS over base (nil base = the OS default) with a
// deterministic seed for torn-write sizes.
func New(seed int64, base persist.FS) *FS {
	if base == nil {
		base = persist.OSFS()
	}
	return &FS{base: base, rng: rand.New(rand.NewSource(seed)), injected: map[string]uint64{}}
}

// Inject adds rules to the schedule.
func (f *FS) Inject(rs ...Rule) {
	f.mu.Lock()
	defer f.mu.Unlock()
	for _, r := range rs {
		f.rules = append(f.rules, &rule{Rule: r})
	}
}

// Heal drops every rule: the disk works again.
func (f *FS) Heal() {
	f.mu.Lock()
	defer f.mu.Unlock()
	f.rules = nil
}

// Injected returns a copy of the per-kind injection counts.
func (f *FS) Injected() map[string]uint64 {
	f.mu.Lock()
	defer f.mu.Unlock()
	out := make(map[string]uint64, len(f.injected))
	for k, v := range f.injected {
		out[k] = v
	}
	return out
}

// check consults the schedule for one operation. n is the payload size
// for writes (0 otherwise). It returns how many payload bytes may be
// written before the fault hits (n when no fault) and the injected
// error. Latency is slept here, outside the lock.
func (f *FS) check(op Op, path string, n int) (int, error) {
	f.mu.Lock()
	allowed, delay := n, time.Duration(0)
	var err error
	for _, r := range f.rules {
		if r.Op != op || (r.Path != "" && !strings.Contains(path, r.Path)) {
			continue
		}
		r.seen++
		prior := r.bytes
		if op == OpWrite {
			r.bytes += int64(n)
		}
		if r.Delay > delay {
			delay = r.Delay
		}
		if r.Err == nil {
			continue
		}
		if r.Count > 0 && r.fired >= r.Count {
			continue
		}
		if r.Kth > 0 && r.seen < r.Kth {
			continue
		}
		if r.AfterBytes > 0 {
			if r.bytes <= r.AfterBytes {
				continue
			}
			// The write that crosses the budget lands partially: the
			// bytes that still fit make it to the file — a torn frame,
			// exactly what a full disk leaves behind.
			if fit := r.AfterBytes - prior; fit > 0 && fit < int64(allowed) {
				allowed = int(fit)
			} else if fit <= 0 {
				allowed = 0
			}
		} else if op == OpWrite && (r.TornBytes > 0 || r.Kind == "torn") {
			torn := r.TornBytes
			if torn == 0 && n > 1 {
				torn = 1 + f.rng.Intn(n-1)
			}
			if torn < allowed {
				allowed = torn
			}
		} else if op == OpWrite {
			allowed = 0
		}
		r.fired++
		f.injected[r.Kind]++
		if err == nil {
			err = r.Err
		}
	}
	f.mu.Unlock()
	if delay > 0 {
		time.Sleep(delay)
	}
	return allowed, err
}

func (f *FS) MkdirAll(dir string, perm os.FileMode) error { return f.base.MkdirAll(dir, perm) }
func (f *FS) Mkdir(dir string, perm os.FileMode) error    { return f.base.Mkdir(dir, perm) }

func (f *FS) OpenFile(name string, flag int, perm os.FileMode) (persist.File, error) {
	if _, err := f.check(OpOpen, name, 0); err != nil {
		return nil, &os.PathError{Op: "open", Path: name, Err: err}
	}
	inner, err := f.base.OpenFile(name, flag, perm)
	if err != nil {
		return nil, err
	}
	return &file{fs: f, name: name, inner: inner}, nil
}

func (f *FS) CreateTemp(dir, pattern string) (persist.File, error) {
	if _, err := f.check(OpOpen, dir+"/"+pattern, 0); err != nil {
		return nil, &os.PathError{Op: "createtemp", Path: dir, Err: err}
	}
	inner, err := f.base.CreateTemp(dir, pattern)
	if err != nil {
		return nil, err
	}
	return &file{fs: f, name: inner.Name(), inner: inner}, nil
}

func (f *FS) ReadDir(dir string) ([]os.DirEntry, error) {
	if _, err := f.check(OpRead, dir, 0); err != nil {
		return nil, &os.PathError{Op: "readdir", Path: dir, Err: err}
	}
	return f.base.ReadDir(dir)
}

func (f *FS) ReadFile(name string) ([]byte, error) {
	if _, err := f.check(OpRead, name, 0); err != nil {
		return nil, &os.PathError{Op: "read", Path: name, Err: err}
	}
	return f.base.ReadFile(name)
}

func (f *FS) Rename(oldpath, newpath string) error {
	if _, err := f.check(OpRename, newpath, 0); err != nil {
		return &os.LinkError{Op: "rename", Old: oldpath, New: newpath, Err: err}
	}
	return f.base.Rename(oldpath, newpath)
}

func (f *FS) Remove(name string) error               { return f.base.Remove(name) }
func (f *FS) RemoveAll(dir string) error             { return f.base.RemoveAll(dir) }
func (f *FS) Truncate(name string, size int64) error { return f.base.Truncate(name, size) }
func (f *FS) SyncDir(dir string) error               { return f.base.SyncDir(dir) }

func (f *FS) Map(name string) ([]byte, func(), error) {
	if _, err := f.check(OpRead, name, 0); err != nil {
		return nil, nil, &os.PathError{Op: "map", Path: name, Err: err}
	}
	return f.base.Map(name)
}

// file wraps a base File, injecting write/sync/read faults.
type file struct {
	fs    *FS
	name  string
	inner persist.File
}

func (w *file) Write(p []byte) (int, error) {
	allowed, err := w.fs.check(OpWrite, w.name, len(p))
	if err == nil {
		return w.inner.Write(p)
	}
	n := 0
	if allowed > 0 {
		// Torn write: the allowed prefix genuinely lands in the file
		// before the failure surfaces, like a partial write at the
		// ENOSPC boundary or a crash mid-write would leave.
		n, _ = w.inner.Write(p[:allowed])
	}
	return n, &os.PathError{Op: "write", Path: w.name, Err: err}
}

func (w *file) Sync() error {
	if _, err := w.fs.check(OpSync, w.name, 0); err != nil {
		return &os.PathError{Op: "sync", Path: w.name, Err: err}
	}
	return w.inner.Sync()
}

func (w *file) ReadAt(p []byte, off int64) (int, error) {
	if _, err := w.fs.check(OpRead, w.name, 0); err != nil {
		return 0, &os.PathError{Op: "read", Path: w.name, Err: err}
	}
	return w.inner.ReadAt(p, off)
}

func (w *file) Close() error               { return w.inner.Close() }
func (w *file) Name() string               { return w.name }
func (w *file) Stat() (os.FileInfo, error) { return w.inner.Stat() }
func (w *file) Truncate(size int64) error  { return w.inner.Truncate(size) }

// Parse builds rules from a compact spec: semicolon-separated
// directives, each "kind[:key=value]...". Kinds and their defaults:
//
//	enospc     ENOSPC on writes; usually with after=<bytes>
//	eio        EIO; default op=sync
//	torn       torn write: a random (or torn=<n>-byte) prefix lands, then EIO
//	slow       latency only; needs d=<duration>
//	partition  EIO on EVERY operation class (write, sync, open, read,
//	           rename) — the store is unreachable, as a network
//	           partition or a dead disk controller leaves it. One
//	           directive expands to one rule per class; count= bounds
//	           each class separately. A follower tailing through a
//	           partitioned FS sees its reads fail (and degrades past its
//	           failure streak); a leader sees appends fail. Heal ends it.
//
// Keys: op=<write|sync|open|read|rename>, path=<substring>,
// after=<bytes>, k=<n>, count=<n>, torn=<bytes>, d=<duration>.
//
//	enospc:path=wal-:after=65536
//	eio:op=sync:path=wal-:k=2
//	torn:path=wal-:k=3;slow:d=2ms
//	partition:path=g1
func Parse(spec string) ([]Rule, error) {
	var out []Rule
	for _, dir := range strings.Split(spec, ";") {
		dir = strings.TrimSpace(dir)
		if dir == "" {
			continue
		}
		parts := strings.Split(dir, ":")
		r := Rule{Kind: parts[0]}
		switch parts[0] {
		case "enospc":
			r.Op, r.Err = OpWrite, syscall.ENOSPC
		case "eio":
			r.Op, r.Err = OpSync, syscall.EIO
		case "torn":
			r.Op, r.Err = OpWrite, syscall.EIO
		case "slow":
			r.Op = OpWrite
		case "partition":
			r.Op, r.Err = OpWrite, syscall.EIO
		default:
			return nil, fmt.Errorf("fault: unknown fault kind %q (want enospc, eio, torn, slow or partition)", parts[0])
		}
		for _, kv := range parts[1:] {
			k, v, ok := strings.Cut(kv, "=")
			if !ok {
				return nil, fmt.Errorf("fault: %q: want key=value, got %q", dir, kv)
			}
			var err error
			switch k {
			case "op":
				r.Op, err = ParseOp(v)
			case "path":
				r.Path = v
			case "after":
				r.AfterBytes, err = strconv.ParseInt(v, 10, 64)
			case "k":
				r.Kth, err = strconv.Atoi(v)
			case "count":
				r.Count, err = strconv.Atoi(v)
			case "torn":
				r.TornBytes, err = strconv.Atoi(v)
			case "d":
				r.Delay, err = time.ParseDuration(v)
			default:
				err = fmt.Errorf("unknown key %q", k)
			}
			if err != nil {
				return nil, fmt.Errorf("fault: %q: %v", dir, err)
			}
		}
		if r.Kind == "slow" && r.Delay <= 0 {
			return nil, fmt.Errorf("fault: %q: slow needs d=<duration>", dir)
		}
		if r.Kind == "partition" {
			// The store is gone in every direction: one rule per
			// operation class, sharing the directive's filters.
			for _, op := range []Op{OpWrite, OpSync, OpOpen, OpRead, OpRename} {
				pr := r
				pr.Op = op
				out = append(out, pr)
			}
			continue
		}
		out = append(out, r)
	}
	if len(out) == 0 {
		return nil, fmt.Errorf("fault: empty fault spec")
	}
	return out, nil
}
