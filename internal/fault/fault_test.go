package fault

import (
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"syscall"
	"testing"
	"time"

	"gedlib"
	"gedlib/persist"
)

// grow appends n nodes (with attrs and a chain edge) to g, returning
// wire names parallel to the graph's nodes.
func grow(g *gedlib.Graph, names *[]string, n int) {
	for i := 0; i < n; i++ {
		id := g.AddNode("person")
		*names = append(*names, fmt.Sprintf("n%d", int(id)))
		g.SetAttr(id, "seq", gedlib.Int(int(id)))
		if id > 0 {
			g.AddEdge(id-1, "knows", id)
		}
	}
}

func TestEnospcBudget(t *testing.T) {
	fs := New(1, nil)
	fs.Inject(Rule{Kind: "enospc", Op: OpWrite, Err: syscall.ENOSPC, AfterBytes: 10})
	f, err := fs.OpenFile(filepath.Join(t.TempDir(), "x"), os.O_CREATE|os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		t.Fatal(err)
	}
	if n, err := f.Write([]byte("12345678")); err != nil || n != 8 {
		t.Fatalf("within budget: n=%d err=%v", n, err)
	}
	// This write crosses the budget: exactly the 2 bytes that fit land.
	n, err := f.Write([]byte("abcdefgh"))
	if !errors.Is(err, syscall.ENOSPC) {
		t.Fatalf("crossing budget: err=%v, want ENOSPC", err)
	}
	if n != 2 {
		t.Fatalf("crossing budget: %d bytes landed, want 2 (the torn prefix)", n)
	}
	if n, err := f.Write([]byte("zz")); err == nil || n != 0 {
		t.Fatalf("after budget: n=%d err=%v, want sticky ENOSPC", n, err)
	}
	if !persist.IsTransient(syscall.EIO) || persist.IsTransient(err) {
		t.Fatalf("classification: ENOSPC must be permanent, EIO transient")
	}
	fs.Heal()
	if _, err := f.Write([]byte("ok")); err != nil {
		t.Fatalf("after heal: %v", err)
	}
	data, _ := os.ReadFile(f.Name())
	if string(data) != "12345678"+"ab"+"ok" {
		t.Fatalf("file contents %q", data)
	}
	if got := fs.Injected()["enospc"]; got != 2 {
		t.Fatalf("injected count %d, want 2", got)
	}
}

func TestKthSyncAndPathFilter(t *testing.T) {
	dir := t.TempDir()
	fs := New(1, nil)
	fs.Inject(Rule{Kind: "eio", Op: OpSync, Path: "wal-", Err: syscall.EIO, Kth: 2})
	wal, err := fs.OpenFile(filepath.Join(dir, "wal-0001.log"), os.O_CREATE|os.O_WRONLY, 0o644)
	if err != nil {
		t.Fatal(err)
	}
	other, err := fs.OpenFile(filepath.Join(dir, "data.bin"), os.O_CREATE|os.O_WRONLY, 0o644)
	if err != nil {
		t.Fatal(err)
	}
	if err := wal.Sync(); err != nil {
		t.Fatalf("sync #1 should pass: %v", err)
	}
	if err := other.Sync(); err != nil {
		t.Fatalf("non-matching path must never fail: %v", err)
	}
	if err := wal.Sync(); !errors.Is(err, syscall.EIO) {
		t.Fatalf("sync #2: %v, want EIO", err)
	}
	if err := wal.Sync(); !errors.Is(err, syscall.EIO) {
		t.Fatalf("sync #3 must stay failed (sticky): %v", err)
	}
}

func TestTornWriteDeterministic(t *testing.T) {
	payload := []byte(strings.Repeat("x", 100))
	sizes := func(seed int64) []int {
		fs := New(seed, nil)
		fs.Inject(Rule{Kind: "torn", Op: OpWrite, Err: syscall.EIO})
		var out []int
		for i := 0; i < 3; i++ {
			f, err := fs.OpenFile(filepath.Join(t.TempDir(), "x"), os.O_CREATE|os.O_WRONLY, 0o644)
			if err != nil {
				t.Fatal(err)
			}
			n, werr := f.Write(payload)
			if !errors.Is(werr, syscall.EIO) {
				t.Fatalf("torn write: %v", werr)
			}
			if n <= 0 || n >= len(payload) {
				t.Fatalf("torn size %d not a proper prefix of %d", n, len(payload))
			}
			out = append(out, n)
		}
		return out
	}
	a, b := sizes(7), sizes(7)
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("same seed, different torn sizes: %v vs %v", a, b)
		}
	}
}

func TestParse(t *testing.T) {
	rules, err := Parse("enospc:path=wal-:after=65536; eio:op=sync:k=2 ;torn:torn=3:count=1;slow:d=2ms")
	if err != nil {
		t.Fatal(err)
	}
	if len(rules) != 4 {
		t.Fatalf("%d rules, want 4", len(rules))
	}
	if rules[0].AfterBytes != 65536 || !errors.Is(rules[0].Err, syscall.ENOSPC) || rules[0].Op != OpWrite {
		t.Fatalf("enospc rule %+v", rules[0])
	}
	if rules[1].Op != OpSync || rules[1].Kth != 2 {
		t.Fatalf("eio rule %+v", rules[1])
	}
	if rules[2].TornBytes != 3 || rules[2].Count != 1 {
		t.Fatalf("torn rule %+v", rules[2])
	}
	if rules[3].Delay != 2*time.Millisecond || rules[3].Err != nil {
		t.Fatalf("slow rule %+v", rules[3])
	}
	for _, bad := range []string{"", "bogus", "slow", "eio:op=frobnicate", "eio:k"} {
		if _, err := Parse(bad); err == nil {
			t.Fatalf("Parse(%q) accepted", bad)
		}
	}
}

// TestPartition: one partition directive severs the store in every
// direction — opens, reads, writes, syncs and renames all fail with EIO
// for matching paths — and Heal restores full service.
func TestPartition(t *testing.T) {
	rules, err := Parse("partition:path=g1")
	if err != nil {
		t.Fatal(err)
	}
	if len(rules) != 5 {
		t.Fatalf("partition expanded to %d rules, want 5 (one per op class)", len(rules))
	}
	ops := map[Op]bool{}
	for _, r := range rules {
		ops[r.Op] = true
		if r.Path != "g1" || !errors.Is(r.Err, syscall.EIO) {
			t.Fatalf("partition rule %+v", r)
		}
	}
	for _, op := range []Op{OpWrite, OpSync, OpOpen, OpRead, OpRename} {
		if !ops[op] {
			t.Fatalf("partition missing op class %v", op)
		}
	}

	dir := t.TempDir()
	fs := New(1, nil)
	path := filepath.Join(dir, "g1-wal.log")
	f, err := fs.OpenFile(path, os.O_CREATE|os.O_RDWR, 0o644)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := f.Write([]byte("before")); err != nil {
		t.Fatal(err)
	}
	fs.Inject(rules...)

	if _, err := fs.OpenFile(path, os.O_RDONLY, 0); !errors.Is(err, syscall.EIO) {
		t.Fatalf("open across partition: %v, want EIO", err)
	}
	if _, err := f.Write([]byte("x")); !errors.Is(err, syscall.EIO) {
		t.Fatalf("write across partition: %v, want EIO", err)
	}
	if err := f.Sync(); !errors.Is(err, syscall.EIO) {
		t.Fatalf("sync across partition: %v, want EIO", err)
	}
	if _, err := f.ReadAt(make([]byte, 3), 0); !errors.Is(err, syscall.EIO) {
		t.Fatalf("read across partition: %v, want EIO", err)
	}
	if err := fs.Rename(path, path+".moved"); !errors.Is(err, syscall.EIO) {
		t.Fatalf("rename across partition: %v, want EIO", err)
	}
	// Unmatched paths stay reachable: the partition is scoped, not global.
	if _, err := fs.OpenFile(filepath.Join(dir, "other"), os.O_CREATE|os.O_WRONLY, 0o644); err != nil {
		t.Fatalf("unmatched path must not be partitioned: %v", err)
	}

	fs.Heal()
	if _, err := f.ReadAt(make([]byte, 3), 0); err != nil {
		t.Fatalf("read after heal: %v", err)
	}
	if got := fs.Injected()["partition"]; got < 5 {
		t.Fatalf("injected count %d, want >= 5", got)
	}
}

// TestEnospcMidCheckpoint pins the checkpoint crash contract under
// injected disk-full: a checkpoint write that fails partway (temp file
// hits ENOSPC before the rename) must leave the previous checkpoint
// loadable, recovery intact, and no temp debris; after the disk heals
// the next checkpoint succeeds.
func TestEnospcMidCheckpoint(t *testing.T) {
	dir := t.TempDir()
	fs := New(3, nil)
	s, err := persist.Open(dir, persist.Options{FS: fs, CheckpointEvery: 1 << 30})
	if err != nil {
		t.Fatal(err)
	}
	g := gedlib.NewGraph()
	var names []string
	grow(g, &names, 50)
	gs, err := s.Create("kb", persist.State{Graph: g, Names: names})
	if err != nil {
		t.Fatal(err)
	}
	// Some appended tail on top of the initial checkpoint.
	from := g.Version()
	grow(g, &names, 20)
	d := g.DeltaSince(from)
	dn := make([]string, len(d.Nodes))
	for i, n := range d.Nodes {
		dn[i] = names[n.ID]
	}
	if err := gs.AppendDelta(d, dn); err != nil {
		t.Fatal(err)
	}
	if err := gs.Sync(); err != nil {
		t.Fatal(err)
	}

	// Disk fills up 1KiB into the checkpoint image.
	fs.Inject(Rule{Kind: "enospc", Op: OpWrite, Path: ".tmp-ckpt-", Err: syscall.ENOSPC, AfterBytes: 1024})
	grow(g, &names, 5)
	if err := gs.Checkpoint(persist.State{Graph: g, Names: names}); !errors.Is(err, syscall.ENOSPC) {
		t.Fatalf("checkpoint under disk-full: %v, want ENOSPC", err)
	}

	// The failed attempt must not have published anything or left debris.
	des, err := os.ReadDir(filepath.Join(dir, "kb"))
	if err != nil {
		t.Fatal(err)
	}
	for _, de := range des {
		if strings.HasPrefix(de.Name(), ".tmp-") {
			t.Fatalf("temp checkpoint %s left behind", de.Name())
		}
	}

	// Recovery still works from the previous checkpoint + WAL tail,
	// through the same (still-faulted) FS: only tmp-ckpt writes fail.
	rec, err := s.Recover("kb")
	if err != nil {
		t.Fatal(err)
	}
	if got, want := rec.State.Graph.Version(), from+uint64(d.Size()); got != want {
		t.Fatalf("recovered version %d, want %d (checkpoint + synced tail)", got, want)
	}

	// Heal; the next checkpoint publishes and recovery follows it.
	fs.Heal()
	if err := gs.Checkpoint(persist.State{Graph: g, Names: names}); err != nil {
		t.Fatal(err)
	}
	rec, err = s.Recover("kb")
	if err != nil {
		t.Fatal(err)
	}
	if rec.State.Graph.Version() != g.Version() {
		t.Fatalf("post-heal recovery at %d, want %d", rec.State.Graph.Version(), g.Version())
	}
	if rec.CheckpointVersion != g.Version() {
		t.Fatalf("post-heal checkpoint at %d, want %d", rec.CheckpointVersion, g.Version())
	}
}

// TestTornWALAppendRepair pins the dirty-tail contract: a torn WAL
// append fails the record, and the NEXT append first truncates the
// garbage so the log stays a clean record sequence — recovery sees
// every acked record and nothing else.
func TestTornWALAppendRepair(t *testing.T) {
	dir := t.TempDir()
	fs := New(11, nil)
	s, err := persist.Open(dir, persist.Options{FS: fs, CheckpointEvery: 1 << 30})
	if err != nil {
		t.Fatal(err)
	}
	g := gedlib.NewGraph()
	var names []string
	grow(g, &names, 10)
	gs, err := s.Create("kb", persist.State{Graph: g, Names: names})
	if err != nil {
		t.Fatal(err)
	}
	buildDelta := func() (*gedlib.Delta, []string) {
		from := g.Version()
		grow(g, &names, 5)
		d := g.DeltaSince(from)
		dn := make([]string, len(d.Nodes))
		for i, n := range d.Nodes {
			dn[i] = names[n.ID]
		}
		return d, dn
	}
	d1, n1 := buildDelta()
	if err := gs.AppendDelta(d1, n1); err != nil {
		t.Fatal(err)
	}
	fs.Inject(Rule{Kind: "torn", Op: OpWrite, Path: "wal-", Err: syscall.EIO})
	d2, n2 := buildDelta()
	if err := gs.AppendDelta(d2, n2); !errors.Is(err, syscall.EIO) {
		t.Fatalf("torn append: %v, want EIO", err)
	}
	fs.Heal()
	// Retrying the SAME record (what serve's transient-retry does) must
	// first truncate the torn prefix, or it would land after garbage
	// and recovery would cut it off.
	if err := gs.AppendDelta(d2, n2); err != nil {
		t.Fatal(err)
	}
	d3, n3 := buildDelta()
	if err := gs.AppendDelta(d3, n3); err != nil {
		t.Fatal(err)
	}
	if err := gs.Sync(); err != nil {
		t.Fatal(err)
	}
	rec, err := s.Recover("kb")
	if err != nil {
		t.Fatal(err)
	}
	if rec.TruncatedTail {
		t.Fatalf("recovery saw a torn tail; the dirty-tail repair should have removed it")
	}
	if rec.State.Graph.Version() != g.Version() {
		t.Fatalf("recovered version %d, want %d", rec.State.Graph.Version(), g.Version())
	}
	if rec.State.Graph.NumNodes() != g.NumNodes() {
		t.Fatalf("recovered %d nodes, want %d", rec.State.Graph.NumNodes(), g.NumNodes())
	}
}
