// Package gdc implements graph denial constraints (GDCs), the extension
// of GEDs with built-in predicates =, ≠, <, ≤, >, ≥ from Section 7.1 of
// "Dependencies for Graphs" (Fan & Lu, PODS 2017).
//
// A GDC has the same shape Q[x̄](X → Y) as a GED, but its attribute
// literals may compare with any of the six predicates (id literals
// remain equalities). GDCs can express relational denial constraints and
// "domain constraints" such as x.A ∈ {0, 1} (Example 9).
//
// Validation is decided exactly, by match enumeration (Theorem 8: it
// stays coNP-complete). Satisfiability and implication are Σᵖ₂- and
// Πᵖ₂-complete; the solver here mirrors that quantifier structure with a
// propagate-and-branch search over quotients of the canonical graph and
// normalized attribute values, certifying every positive answer with the
// validator. Resource caps make it return Unknown instead of diverging;
// see the Verdict type.
package gdc

import (
	"fmt"

	"gedlib/internal/ged"
	"gedlib/internal/graph"
	"gedlib/internal/pattern"
)

// GDC is a graph denial constraint Q[x̄](X → Y).
type GDC struct {
	// Name is an optional identifier.
	Name string
	// Pattern is the topological constraint Q[x̄].
	Pattern *pattern.Pattern
	// X and Y are literal sets; attribute literals may use any Op.
	X, Y []ged.Literal
}

// New returns the GDC Q[x̄](X → Y).
func New(name string, q *pattern.Pattern, x, y []ged.Literal) *GDC {
	return &GDC{Name: name, Pattern: q, X: x, Y: y}
}

// FromGED views a GED as a GDC (GEDs are the ⊕ = '=' special case).
func FromGED(g *ged.GED) *GDC {
	return &GDC{Name: g.Name, Pattern: g.Pattern, X: g.X, Y: g.Y}
}

// Validate checks well-formedness: literals are x.A ⊕ c, x.A ⊕ y.B, or
// x.id = y.id, over known variables.
func (g *GDC) Validate() error {
	check := func(side string, lits []ged.Literal) error {
		for i, l := range lits {
			ok := false
			switch {
			case l.Left.Kind == ged.OperandAttr && l.Right.Kind == ged.OperandConst:
				ok = true
			case l.Left.Kind == ged.OperandAttr && l.Right.Kind == ged.OperandAttr:
				ok = true
			case l.Left.Kind == ged.OperandID && l.Right.Kind == ged.OperandID:
				ok = l.Op == ged.OpEq
			}
			if !ok {
				return fmt.Errorf("gdc %s: %s[%d] (%s) is not a GDC literal", g.Name, side, i, l)
			}
			for _, v := range l.Vars() {
				if !g.Pattern.HasVar(v) {
					return fmt.Errorf("gdc %s: %s[%d] mentions unknown variable %s", g.Name, side, i, v)
				}
			}
		}
		return nil
	}
	if g.Pattern == nil {
		return fmt.Errorf("gdc %s: nil pattern", g.Name)
	}
	if err := check("X", g.X); err != nil {
		return err
	}
	return check("Y", g.Y)
}

// String renders the GDC.
func (g *GDC) String() string {
	tmp := ged.New(g.Name, g.Pattern, g.X, g.Y)
	return tmp.String()
}

// Set is a finite set Σ of GDCs.
type Set []*GDC

// Validate checks every member.
func (s Set) Validate() error {
	for _, g := range s {
		if err := g.Validate(); err != nil {
			return err
		}
	}
	return nil
}

// CanonicalGraph builds G_Σ, the disjoint union of all patterns.
func (s Set) CanonicalGraph() (*graph.Graph, []map[pattern.Var]graph.NodeID) {
	g := graph.New()
	maps := make([]map[pattern.Var]graph.NodeID, len(s))
	for i, d := range s {
		pg, vm := d.Pattern.ToGraph()
		nm := g.DisjointUnion(pg)
		m := make(map[pattern.Var]graph.NodeID, len(vm))
		for v, id := range vm {
			m[v] = nm[id]
		}
		maps[i] = m
	}
	return g, maps
}

// Violation is a match violating a GDC.
type Violation struct {
	GDC     *GDC
	Match   pattern.Match
	Literal ged.Literal
}

// HoldsInGraph evaluates h(x̄) ⊨ l directly against stored attributes;
// missing attributes falsify attribute literals, as for GEDs.
func HoldsInGraph(g *graph.Graph, l ged.Literal, m pattern.Match) bool {
	switch {
	case l.Left.Kind == ged.OperandID:
		return m[l.Left.Var] == m[l.Right.Var]
	case l.Right.Kind == ged.OperandConst:
		v, ok := g.Attr(m[l.Left.Var], l.Left.Attr)
		return ok && l.Op.Eval(v, l.Right.Const)
	default:
		v1, ok1 := g.Attr(m[l.Left.Var], l.Left.Attr)
		v2, ok2 := g.Attr(m[l.Right.Var], l.Right.Attr)
		return ok1 && ok2 && l.Op.Eval(v1, v2)
	}
}

// Validate finds violations of Σ in G, up to limit (≤ 0 means all).
func Validate(g *graph.Graph, sigma Set, limit int) []Violation {
	var out []Violation
	for _, d := range sigma {
		d := d
		pattern.ForEachMatch(d.Pattern, g, func(m pattern.Match) bool {
			for _, l := range d.X {
				if !HoldsInGraph(g, l, m) {
					return true
				}
			}
			for _, l := range d.Y {
				if !HoldsInGraph(g, l, m) {
					out = append(out, Violation{GDC: d, Match: m.Clone(), Literal: l})
					break
				}
			}
			return limit <= 0 || len(out) < limit
		})
		if limit > 0 && len(out) >= limit {
			break
		}
	}
	return out
}

// Satisfies reports G ⊨ Σ.
func Satisfies(g *graph.Graph, sigma Set) bool {
	return len(Validate(g, sigma, 1)) == 0
}

// DomainConstraint returns the two GDCs of Example 9 enforcing that
// every node labeled tau carries attribute a with a value among the
// given constants: φ₁ generates the attribute, φ₂ forbids other values.
func DomainConstraint(tau graph.Label, a graph.Attr, domain ...graph.Value) Set {
	q1 := pattern.New()
	q1.AddVar("x", tau)
	phi1 := New("dom-exists", q1, nil, []ged.Literal{ged.VarLit("x", a, "x", a)})
	q2 := pattern.New()
	q2.AddVar("x", tau)
	var xs []ged.Literal
	for _, v := range domain {
		xs = append(xs, ged.Cmp("x", a, ged.OpNe, v))
	}
	phi2 := New("dom-forbid", q2, xs, ged.False("x"))
	return Set{phi1, phi2}
}
