package gdc

import (
	"fmt"
	"math/rand"
	"testing"

	"gedlib/internal/ged"
	"gedlib/internal/graph"
	"gedlib/internal/pattern"
	"gedlib/internal/reason"
)

func nodeQ(label graph.Label) *pattern.Pattern {
	q := pattern.New()
	q.AddVar("x", label)
	return q
}

func TestGDCValidateShape(t *testing.T) {
	q := nodeQ("p")
	ok := New("ok", q, []ged.Literal{ged.Cmp("x", "a", ged.OpLt, graph.Int(5))}, nil)
	if err := ok.Validate(); err != nil {
		t.Errorf("valid GDC rejected: %v", err)
	}
	badID := New("bad", q, nil, []ged.Literal{{Left: ged.ID("x"), Right: ged.ID("x"), Op: ged.OpLt}})
	if badID.Validate() == nil {
		t.Error("ordered id literal accepted")
	}
	badVar := New("bad", q, nil, []ged.Literal{ged.Cmp("z", "a", ged.OpLt, graph.Int(1))})
	if badVar.Validate() == nil {
		t.Error("unknown variable accepted")
	}
}

func TestGDCValidationSalaryDenial(t *testing.T) {
	// Denial constraint: no employee earns more than their manager.
	q := pattern.New()
	q.AddVar("e", "emp").AddVar("m", "emp")
	q.AddEdge("e", "reports_to", "m")
	dc := New("salary", q,
		[]ged.Literal{ged.CmpVars("e", "salary", ged.OpGt, "m", "salary")},
		ged.False("e"))

	g := graph.New()
	boss := g.AddNodeAttrs("emp", map[graph.Attr]graph.Value{"salary": graph.Int(100)})
	worker := g.AddNodeAttrs("emp", map[graph.Attr]graph.Value{"salary": graph.Int(120)})
	g.AddEdge(worker, "reports_to", boss)
	vs := Validate(g, Set{dc}, 0)
	if len(vs) != 1 {
		t.Fatalf("got %d violations, want 1", len(vs))
	}
	g.SetAttr(worker, "salary", graph.Int(90))
	if !Satisfies(g, Set{dc}) {
		t.Error("fixed salary must satisfy the denial constraint")
	}
}

func TestExample9DomainConstraint(t *testing.T) {
	dom := DomainConstraint("tau", "A", graph.Int(0), graph.Int(1))

	// Validation: a tau node with A = 2 violates; A = 1 satisfies; a tau
	// node without A violates φ₁.
	g := graph.New()
	n := g.AddNodeAttrs("tau", map[graph.Attr]graph.Value{"A": graph.Int(2)})
	if Satisfies(g, dom) {
		t.Error("A = 2 must violate the domain constraint")
	}
	g.SetAttr(n, "A", graph.Int(1))
	if !Satisfies(g, dom) {
		t.Error("A = 1 must satisfy the domain constraint")
	}
	g2 := graph.New()
	g2.AddNode("tau")
	if Satisfies(g2, dom) {
		t.Error("missing A must violate φ₁")
	}

	// Satisfiability: the two GDCs have a model.
	r := CheckSat(dom)
	if r.Satisfiable != True {
		t.Fatalf("domain constraint must be satisfiable, got %v", r.Satisfiable)
	}
	if !Satisfies(r.Model, dom) {
		t.Errorf("witness violates Σ:\n%s", r.Model)
	}
}

func TestCheckSatOrderConflict(t *testing.T) {
	q := nodeQ("p")
	sigma := Set{
		New("lt", q, nil, []ged.Literal{ged.Cmp("x", "a", ged.OpLt, graph.Int(5))}),
		New("gt", nodeQ("p"), nil, []ged.Literal{ged.Cmp("x", "a", ged.OpGt, graph.Int(7))}),
	}
	if r := CheckSat(sigma); r.Satisfiable != False {
		t.Errorf("5 < a < 7 conflict must be unsatisfiable, got %v", r.Satisfiable)
	}
	// Compatible bounds are satisfiable.
	sigma2 := Set{
		New("lt", nodeQ("p"), nil, []ged.Literal{ged.Cmp("x", "a", ged.OpLt, graph.Int(7))}),
		New("gt", nodeQ("p"), nil, []ged.Literal{ged.Cmp("x", "a", ged.OpGt, graph.Int(5))}),
	}
	r := CheckSat(sigma2)
	if r.Satisfiable != True {
		t.Fatalf("5 < a < 7 must be satisfiable, got %v", r.Satisfiable)
	}
	if v, ok := r.Model.Attr(0, "a"); !ok || !(graph.Int(5).Less(v) && v.Less(graph.Int(7))) {
		t.Errorf("witness value %v outside (5, 7)", v)
	}
}

func TestCheckSatStrictCycle(t *testing.T) {
	// x -e-> y forces x.a < y.a; a 2-cycle in another pattern makes the
	// canonical graph contain nodes where the order loops strictly.
	q1 := pattern.New()
	q1.AddVar("x", "p").AddVar("y", "p")
	q1.AddEdge("x", "e", "y")
	inc := New("inc", q1, nil, []ged.Literal{ged.CmpVars("x", "a", ged.OpLt, "y", "a")})

	q2 := pattern.New()
	q2.AddVar("u", "p").AddVar("v", "p")
	q2.AddEdge("u", "e", "v")
	q2.AddEdge("v", "e", "u")
	cyc := New("cyc", q2, nil, []ged.Literal{ged.VarLit("u", "b", "u", "b")})

	if r := CheckSat(Set{inc, cyc}); r.Satisfiable != False {
		t.Errorf("strict order cycle must be unsatisfiable, got %v", r.Satisfiable)
	}
	// Without the 2-cycle pattern, a chain is a fine model.
	r := CheckSat(Set{inc})
	if r.Satisfiable != True {
		t.Fatalf("chain must be satisfiable, got %v", r.Satisfiable)
	}
	if !Satisfies(r.Model, Set{inc}) {
		t.Error("witness violates inc")
	}
}

func TestCheckSatNeChain(t *testing.T) {
	// a ≠ on an attribute forced equal by another GDC.
	q := pattern.New()
	q.AddVar("x", "p").AddVar("y", "p")
	eq := New("eq", q, nil, []ged.Literal{ged.CmpVars("x", "a", ged.OpEq, "y", "a")})
	q2 := pattern.New()
	q2.AddVar("x", "p").AddVar("y", "p")
	ne := New("ne", q2, nil, []ged.Literal{ged.CmpVars("x", "a", ged.OpNe, "y", "a")})
	if r := CheckSat(Set{eq, ne}); r.Satisfiable != False {
		// Homomorphism allows x = y, making x.a ≠ x.a refutable — so this
		// must be unsatisfiable.
		t.Errorf("eq+ne must be unsatisfiable, got %v", r.Satisfiable)
	}
}

func TestImpliesOrderWeakening(t *testing.T) {
	q := nodeQ("p")
	sigma := Set{New("lt5", q, nil, []ged.Literal{ged.Cmp("x", "a", ged.OpLt, graph.Int(5))})}
	phi10 := New("lt10", nodeQ("p"), nil, []ged.Literal{ged.Cmp("x", "a", ged.OpLt, graph.Int(10))})
	if r := Implies(sigma, phi10); r.Implied != True {
		t.Errorf("a < 5 must imply a < 10, got %v", r.Implied)
	}
	// The converse fails, with a certified counterexample.
	sigma10 := Set{New("lt10", nodeQ("p"), nil, []ged.Literal{ged.Cmp("x", "a", ged.OpLt, graph.Int(10))})}
	phi5 := New("lt5", nodeQ("p"), nil, []ged.Literal{ged.Cmp("x", "a", ged.OpLt, graph.Int(5))})
	r := Implies(sigma10, phi5)
	if r.Implied != False {
		t.Fatalf("a < 10 must not imply a < 5, got %v", r.Implied)
	}
	if r.Counterexample == nil || !Satisfies(r.Counterexample, sigma10) {
		t.Error("counterexample missing or violates Σ")
	}
	if len(Validate(r.Counterexample, Set{phi5}, 1)) == 0 {
		t.Error("counterexample does not violate φ")
	}
}

func TestImpliesDenialStrengthening(t *testing.T) {
	// (a > 5 → false) implies (a > 7 → false).
	sigma := Set{New("d5", nodeQ("p"),
		[]ged.Literal{ged.Cmp("x", "a", ged.OpGt, graph.Int(5))}, ged.False("x"))}
	phi := New("d7", nodeQ("p"),
		[]ged.Literal{ged.Cmp("x", "a", ged.OpGt, graph.Int(7))}, ged.False("x"))
	if r := Implies(sigma, phi); r.Implied != True {
		t.Errorf("stronger denial must be implied, got %v", r.Implied)
	}
	// Converse fails.
	sigma7 := Set{New("d7", nodeQ("p"),
		[]ged.Literal{ged.Cmp("x", "a", ged.OpGt, graph.Int(7))}, ged.False("x"))}
	phi5 := New("d5", nodeQ("p"),
		[]ged.Literal{ged.Cmp("x", "a", ged.OpGt, graph.Int(5))}, ged.False("x"))
	if r := Implies(sigma7, phi5); r.Implied != False {
		t.Errorf("weaker denial must not be implied, got %v", r.Implied)
	}
}

func TestImpliesIDLiterals(t *testing.T) {
	q := pattern.New()
	q.AddVar("x", "a").AddVar("y", "a")
	key := New("key", q, nil, []ged.Literal{ged.IDLit("x", "y")})
	// Σ ∋ φ.
	if r := Implies(Set{key}, key); r.Implied != True {
		t.Errorf("reflexive implication failed: %v", r.Implied)
	}
	// ∅ does not imply the key; the counterexample keeps two nodes.
	r := Implies(nil, key)
	if r.Implied != False {
		t.Fatalf("empty set must not imply a key, got %v", r.Implied)
	}
	if r.Counterexample.NumNodes() != 2 {
		t.Errorf("counterexample must keep the nodes distinct:\n%s", r.Counterexample)
	}
}

// TestGDCImpliesAgreesWithGEDImplication cross-checks the GDC solver
// against the exact chase-based decision on the equality-only fragment.
func TestGDCImpliesAgreesWithGEDImplication(t *testing.T) {
	rng := rand.New(rand.NewSource(37))
	agree, unknown := 0, 0
	for trial := 0; trial < 120; trial++ {
		sigma := randomGEDSigma(rng)
		phi := randomGEDSigma(rng)[0]
		want := reason.Implies(sigma, phi).Implied
		var gs Set
		for _, d := range sigma {
			gs = append(gs, FromGED(d))
		}
		got := Implies(gs, FromGED(phi)).Implied
		if got == Unknown {
			unknown++
			continue
		}
		if (got == True) != want {
			t.Fatalf("trial %d: GDC solver disagrees with chase: got %v want %v\nΣ=%v\nφ=%v",
				trial, got, want, sigma, phi)
		}
		agree++
	}
	if unknown > agree/4 {
		t.Errorf("too many Unknowns: %d vs %d agreements", unknown, agree)
	}
}

// TestGDCSatAgreesWithGEDSat cross-checks satisfiability on the
// equality-only fragment.
func TestGDCSatAgreesWithGEDSat(t *testing.T) {
	rng := rand.New(rand.NewSource(41))
	agree, unknown := 0, 0
	for trial := 0; trial < 120; trial++ {
		sigma := randomGEDSigma(rng)
		want := reason.CheckSat(sigma).Satisfiable
		var gs Set
		for _, d := range sigma {
			gs = append(gs, FromGED(d))
		}
		got := CheckSat(gs).Satisfiable
		if got == Unknown {
			unknown++
			continue
		}
		if (got == True) != want {
			t.Fatalf("trial %d: GDC sat disagrees with chase: got %v want %v\nΣ=%v",
				trial, got, want, sigma)
		}
		agree++
	}
	if unknown > agree/4 {
		t.Errorf("too many Unknowns: %d vs %d agreements", unknown, agree)
	}
}

func randomGEDSigma(rng *rand.Rand) ged.Set {
	labels := []graph.Label{"a", "b"}
	attrs := []graph.Attr{"p", "q"}
	var sigma ged.Set
	for i := 0; i < 1+rng.Intn(2); i++ {
		q := pattern.New()
		q.AddVar("x", labels[rng.Intn(len(labels))])
		q.AddVar("y", labels[rng.Intn(len(labels))])
		if rng.Intn(2) == 0 {
			q.AddEdge("x", "e", "y")
		}
		var xs, ys []ged.Literal
		switch rng.Intn(3) {
		case 0:
			xs = append(xs, ged.VarLit("x", attrs[0], "y", attrs[0]))
		case 1:
			xs = append(xs, ged.ConstLit("x", attrs[rng.Intn(2)], graph.Int(rng.Intn(2))))
		}
		switch rng.Intn(4) {
		case 0:
			ys = append(ys, ged.IDLit("x", "y"))
		case 1:
			ys = append(ys, ged.ConstLit("y", attrs[rng.Intn(2)], graph.Int(rng.Intn(2))))
		case 2:
			ys = append(ys, ged.VarLit("x", attrs[1], "y", attrs[1]))
		case 3:
			ys = append(ys, ged.ConstLit("x", attrs[0], graph.Int(rng.Intn(2))),
				ged.ConstLit("y", attrs[0], graph.Int(rng.Intn(2))))
		}
		sigma = append(sigma, ged.New(fmt.Sprintf("r%d", i), q, xs, ys))
	}
	return sigma
}

func TestStoreFeasibility(t *testing.T) {
	s := newStore()
	a := s.slotTerm(slot{node: 0, attr: "a"})
	b := s.slotTerm(slot{node: 1, attr: "a"})
	s.addOrder(a, b, false)
	s.addOrder(b, a, false)
	if !s.feasible() {
		t.Fatal("a ≤ b ≤ a is feasible (forces equality)")
	}
	if s.find(a) != s.find(b) {
		t.Error("non-strict cycle must merge classes")
	}
	s2 := newStore()
	a2 := s2.slotTerm(slot{node: 0, attr: "a"})
	b2 := s2.slotTerm(slot{node: 1, attr: "a"})
	s2.addOrder(a2, b2, true)
	s2.addOrder(b2, a2, false)
	if s2.feasible() {
		t.Error("strict cycle must be infeasible")
	}
	// Constant chain: 3 ≤ x ≤ 2 is infeasible.
	s3 := newStore()
	x := s3.slotTerm(slot{node: 0, attr: "a"})
	s3.addOrder(s3.constTerm(graph.Int(3)), x, false)
	s3.addOrder(x, s3.constTerm(graph.Int(2)), false)
	if s3.feasible() {
		t.Error("3 ≤ x ≤ 2 must be infeasible")
	}
	// Diseq after forced merge.
	s4 := newStore()
	p := s4.slotTerm(slot{node: 0, attr: "a"})
	q := s4.slotTerm(slot{node: 1, attr: "a"})
	s4.addDiseq(p, q)
	s4.addOrder(p, q, false)
	s4.addOrder(q, p, false)
	if s4.feasible() {
		t.Error("x ≠ y with x ≤ y ≤ x must be infeasible")
	}
}

func TestStoreAssignRespectsOrder(t *testing.T) {
	s := newStore()
	a := s.slotTerm(slot{node: 0, attr: "a"})
	b := s.slotTerm(slot{node: 1, attr: "a"})
	s.addOrder(s.constTerm(graph.Int(0)), a, true)
	s.addOrder(a, b, true)
	s.addOrder(b, s.constTerm(graph.Int(10)), true)
	if !s.feasible() {
		t.Fatal("feasible store rejected")
	}
	vals := s.assign()
	va, vb := vals[s.find(a)], vals[s.find(b)]
	if !graph.Int(0).Less(va) || !vb.Less(graph.Int(10)) {
		t.Errorf("bounds violated: a=%v b=%v", va, vb)
	}
}

func TestMixedKindOrderInfeasible(t *testing.T) {
	// "" < x < 5 is infeasible: all numbers precede all strings.
	s := newStore()
	x := s.slotTerm(slot{node: 0, attr: "a"})
	s.addOrder(s.constTerm(graph.String("")), x, true)
	s.addOrder(x, s.constTerm(graph.Int(5)), true)
	if s.feasible() {
		t.Error(`"" < x < 5 must be infeasible under the U order`)
	}
}
