package gdc

import (
	"fmt"

	"gedlib/internal/ged"
	"gedlib/internal/graph"
	"gedlib/internal/pattern"
)

// Verdict is a three-valued answer: the solver certifies every True with
// a concrete witness, returns False only when the branch space is
// exhausted, and Unknown when a resource cap is hit or a heuristic value
// assignment cannot be completed.
type Verdict uint8

const (
	// False: no witness exists in the searched space.
	False Verdict = iota
	// True: a certified witness was found.
	True
	// Unknown: the search was cut off.
	Unknown
)

// String names the verdict.
func (v Verdict) String() string {
	switch v {
	case True:
		return "true"
	case False:
		return "false"
	default:
		return "unknown"
	}
}

// SatResult reports a GDC satisfiability analysis.
type SatResult struct {
	// Satisfiable is the verdict; True is certified by Model.
	Satisfiable Verdict
	// Model is a concrete model of Σ when Satisfiable is True.
	Model *graph.Graph
}

// ImplResult reports a GDC implication analysis.
type ImplResult struct {
	// Implied is the verdict: True means no counterexample exists over
	// quotients of φ's canonical graph (exact for the equality-only
	// fragment, by Theorem 4); False is certified by Counterexample.
	Implied Verdict
	// Counterexample satisfies Σ but violates φ when Implied is False.
	Counterexample *graph.Graph
}

// defaultBudget bounds the number of propagate/branch operations.
const defaultBudget = 200000

// state is one branch of the solver: a partition of the canonical
// graph's nodes plus an attribute-constraint store.
type state struct {
	g          *graph.Graph
	nodeParent []graph.NodeID
	labels     map[graph.NodeID]graph.Label
	antiMerge  [][2]graph.NodeID
	st         *store
}

func newState(g *graph.Graph) *state {
	s := &state{
		g:          g,
		nodeParent: make([]graph.NodeID, g.NumNodes()),
		labels:     make(map[graph.NodeID]graph.Label, g.NumNodes()),
		st:         newStore(),
	}
	for _, id := range g.Nodes() {
		s.nodeParent[id] = id
		s.labels[id] = g.Label(id)
	}
	return s
}

func (s *state) clone() *state {
	c := &state{
		g:          s.g,
		nodeParent: append([]graph.NodeID{}, s.nodeParent...),
		labels:     make(map[graph.NodeID]graph.Label, len(s.labels)),
		antiMerge:  append([][2]graph.NodeID{}, s.antiMerge...),
		st:         s.st.clone(),
	}
	for k, v := range s.labels {
		c.labels[k] = v
	}
	return c
}

func (s *state) nodeRoot(x graph.NodeID) graph.NodeID {
	for s.nodeParent[x] != x {
		s.nodeParent[x] = s.nodeParent[s.nodeParent[x]]
		x = s.nodeParent[x]
	}
	return x
}

// mergeNodes identifies two node classes; false on label conflict or an
// anti-merge constraint.
func (s *state) mergeNodes(a, b graph.NodeID) bool {
	ra, rb := s.nodeRoot(a), s.nodeRoot(b)
	if ra == rb {
		return true
	}
	la, lb := s.labels[ra], s.labels[rb]
	if !graph.LabelsCompatible(la, lb) {
		return false
	}
	for _, am := range s.antiMerge {
		if (s.nodeRoot(am[0]) == ra && s.nodeRoot(am[1]) == rb) ||
			(s.nodeRoot(am[0]) == rb && s.nodeRoot(am[1]) == ra) {
			return false
		}
	}
	s.nodeParent[rb] = ra
	s.labels[ra] = graph.ResolveLabels(la, lb)
	delete(s.labels, rb)
	// Migrate rb's slots onto ra, unioning value terms (closure rule (d)).
	for _, sl := range sortedSlots(s.st) {
		if sl.node != rb {
			continue
		}
		t2 := s.st.slotOf[sl]
		target := slot{node: ra, attr: sl.attr}
		if t1, ok := s.st.slotOf[target]; ok {
			if !s.st.union(t1, t2) {
				return false
			}
		} else {
			s.st.slotOf[target] = t2
		}
		delete(s.st.slotOf, sl)
	}
	return true
}

func sortedSlots(st *store) []slot {
	out := make([]slot, 0, len(st.slotOf))
	for sl := range st.slotOf {
		out = append(out, sl)
	}
	// Deterministic order.
	for i := 1; i < len(out); i++ {
		for j := i; j > 0 && (out[j].node < out[j-1].node ||
			(out[j].node == out[j-1].node && out[j].attr < out[j-1].attr)); j-- {
			out[j], out[j-1] = out[j-1], out[j]
		}
	}
	return out
}

// slotTerm interns the slot of attribute a on x's class.
func (s *state) slotTerm(x graph.NodeID, a graph.Attr) int {
	return s.st.slotTerm(slot{node: s.nodeRoot(x), attr: a})
}

// hasSlot reports whether x's class carries attribute a in the store.
func (s *state) hasSlot(x graph.NodeID, a graph.Attr) (int, bool) {
	return s.st.hasSlot(slot{node: s.nodeRoot(x), attr: a})
}

// quotient builds the current quotient graph for pattern matching.
func (s *state) quotient() (*graph.Graph, map[graph.NodeID]graph.NodeID, []graph.NodeID) {
	q := graph.New()
	nodeOf := make(map[graph.NodeID]graph.NodeID, s.g.NumNodes())
	var repOf []graph.NodeID
	for _, id := range s.g.Nodes() {
		r := s.nodeRoot(id)
		if qn, ok := nodeOf[r]; ok {
			nodeOf[id] = qn
			continue
		}
		qn := q.AddNode(s.labels[r])
		nodeOf[r] = qn
		nodeOf[id] = qn
		repOf = append(repOf, r)
	}
	for _, e := range s.g.Edges() {
		q.AddEdge(nodeOf[e.Src], e.Label, nodeOf[e.Dst])
	}
	return q, nodeOf, repOf
}

// evalAntecedent evaluates a literal of an antecedent: models are
// attribute-minimal, so a missing slot refutes the literal.
func (s *state) evalAntecedent(l ged.Literal, m map[pattern.Var]graph.NodeID) status {
	return s.eval(l, m, false)
}

// evalConsequent evaluates a literal of a consequent: a missing slot is
// unknown — enforcement will generate it.
func (s *state) evalConsequent(l ged.Literal, m map[pattern.Var]graph.NodeID) status {
	return s.eval(l, m, true)
}

func (s *state) eval(l ged.Literal, m map[pattern.Var]graph.NodeID, generate bool) status {
	if l.Left.Kind == ged.OperandID {
		if s.nodeRoot(m[l.Left.Var]) == s.nodeRoot(m[l.Right.Var]) {
			return stEntailed
		}
		if generate {
			return stUnknown
		}
		return stRefuted // a later merge yields a new match to re-check
	}
	missing := stRefuted
	if generate {
		missing = stUnknown
	}
	t1, ok := s.hasSlot(m[l.Left.Var], l.Left.Attr)
	if !ok {
		return missing
	}
	if l.Right.Kind == ged.OperandConst {
		return s.st.cmpStatus(t1, l.Op, s.st.constTerm(l.Right.Const))
	}
	t2, ok := s.hasSlot(m[l.Right.Var], l.Right.Attr)
	if !ok {
		return missing
	}
	return s.st.cmpStatus(t1, l.Op, t2)
}

// enforceLit asserts a literal, generating slots as needed. It reports
// whether the state changed and whether the assertion is conflict-free.
func (s *state) enforceLit(l ged.Literal, m map[pattern.Var]graph.NodeID) (changed, ok bool) {
	if l.Left.Kind == ged.OperandID {
		ra, rb := s.nodeRoot(m[l.Left.Var]), s.nodeRoot(m[l.Right.Var])
		if ra == rb {
			return false, true
		}
		return true, s.mergeNodes(m[l.Left.Var], m[l.Right.Var])
	}
	created := false
	if _, ok := s.hasSlot(m[l.Left.Var], l.Left.Attr); !ok {
		created = true
	}
	t1 := s.slotTerm(m[l.Left.Var], l.Left.Attr)
	var t2 int
	if l.Right.Kind == ged.OperandConst {
		t2 = s.st.constTerm(l.Right.Const)
	} else {
		if _, ok := s.hasSlot(m[l.Right.Var], l.Right.Attr); !ok {
			created = true
		}
		t2 = s.slotTerm(m[l.Right.Var], l.Right.Attr)
	}
	changed, ok = s.st.addLiteralConstraint(t1, l.Op, t2)
	return changed || created, ok
}

// pendingMatch is a match whose antecedent is not yet decided.
type pendingMatch struct {
	gdc   *GDC
	match map[pattern.Var]graph.NodeID
}

// propagate closes the state under Σ: every match with a fully-entailed
// antecedent gets its consequent enforced. It returns ok=false on
// conflict, and complete=false when the budget ran out first.
func (s *state) propagate(sigma Set, budget *int) (ok, complete bool) {
	for {
		if *budget <= 0 {
			return true, false
		}
		*budget--
		q, _, repOf := s.quotient()
		changed := false
		conflict := false
		for _, d := range sigma {
			d := d
			pattern.ForEachMatch(d.Pattern, q, func(m pattern.Match) bool {
				base := make(map[pattern.Var]graph.NodeID, len(m))
				for v, qn := range m {
					base[v] = repOf[qn]
				}
				for _, l := range d.X {
					if s.evalAntecedent(l, base) != stEntailed {
						return true
					}
				}
				for _, l := range d.Y {
					switch s.evalConsequent(l, base) {
					case stEntailed:
					case stRefuted:
						conflict = true
						return false
					default:
						ch, lok := s.enforceLit(l, base)
						if !lok {
							conflict = true
							return false
						}
						changed = changed || ch
					}
				}
				return true
			})
			if conflict {
				return false, true
			}
		}
		if !s.st.feasible() {
			return false, true
		}
		if !changed {
			return true, true
		}
	}
}

// materialize builds a concrete candidate graph: the quotient with
// store-assigned attribute values and freshened wildcard labels.
func (s *state) materialize() (*graph.Graph, map[graph.NodeID]graph.NodeID, error) {
	if !s.st.feasible() {
		return nil, nil, fmt.Errorf("gdc: materializing an infeasible store")
	}
	assign := s.st.assign()
	q, nodeOf, repOf := s.quotient()
	out := graph.New()
	fresh := 0
	for qn, rep := range repOf {
		l := q.Label(graph.NodeID(qn))
		if l == graph.Wildcard {
			l = graph.Label(fmt.Sprintf("_fresh%d", fresh))
			fresh++
		}
		out.AddNode(l)
		_ = rep
	}
	for _, e := range q.Edges() {
		l := e.Label
		if l == graph.Wildcard {
			l = graph.Label(fmt.Sprintf("_freshe%d", fresh))
			fresh++
		}
		out.AddEdge(e.Src, l, e.Dst)
	}
	for _, sl := range sortedSlots(s.st) {
		t := s.st.slotOf[sl]
		v, ok := assign[s.st.find(t)]
		if !ok {
			return nil, nil, fmt.Errorf("gdc: unassigned term")
		}
		out.SetAttr(nodeOf[sl.node], sl.attr, v)
	}
	return out, nodeOf, nil
}

// signature fingerprints a state for progress detection.
func (s *state) signature() string {
	q, _, _ := s.quotient()
	return fmt.Sprintf("n%d|t%d|o%d|d%d|s%d",
		q.NumNodes(), len(s.st.parent), len(s.st.orders), len(s.st.diseqs), len(s.st.slotOf))
}

// CheckSat decides (with a three-valued verdict) whether Σ has a model:
// a graph satisfying Σ in which every pattern of Σ has a match. The
// search explores quotients of the canonical graph G_Σ with normalized
// attribute values — mirroring the small-model property behind
// Theorem 8 — and certifies positive answers with the validator.
func CheckSat(sigma Set) *SatResult {
	gs, _ := sigma.CanonicalGraph()
	budget := defaultBudget
	v, model := solve(newState(gs), sigma, &budget, nil, 0)
	return &SatResult{Satisfiable: v, Model: model}
}

// solve is the recursive propagate-and-branch core. certify, when
// non-nil, adds an extra acceptance predicate on candidate models (used
// by the implication counterexample search).
func solve(s *state, sigma Set, budget *int, certify func(*graph.Graph, *state) bool, depth int) (Verdict, *graph.Graph) {
	if *budget <= 0 || depth > 40 {
		return Unknown, nil
	}
	*budget--
	ok, complete := s.propagate(sigma, budget)
	if !ok {
		return False, nil
	}
	if !complete || *budget <= 0 {
		return Unknown, nil
	}
	model, _, err := s.materialize()
	if err != nil {
		return Unknown, nil
	}
	extraOK := certify == nil || certify(model, s)
	vs := Validate(model, sigma, 1)
	if len(vs) == 0 && extraOK {
		return True, model
	}
	if len(vs) == 0 && !extraOK {
		// Σ is satisfied but the extra predicate failed; there is no
		// violation to branch on — this branch cannot be refined further.
		return False, nil
	}
	// Branch on the first violation.
	viol := vs[0]
	base := matchToReps(s, viol.Match)
	sawUnknown := false
	// Branch A: some unknown antecedent literal is false.
	for _, l := range viol.GDC.X {
		if s.evalAntecedent(l, base) != stUnknown {
			continue
		}
		b := s.clone()
		if _, lok := b.enforceLit(l.Negate(), base); !lok {
			continue
		}
		v, m := solve(b, sigma, budget, certify, depth+1)
		switch v {
		case True:
			return True, m
		case Unknown:
			sawUnknown = true
		}
	}
	// Branch B: the antecedent holds, so the consequent must too.
	b := s.clone()
	bOK := true
	for _, l := range viol.GDC.X {
		if b.evalAntecedent(l, base) == stUnknown {
			if _, lok := b.enforceLit(l, base); !lok {
				bOK = false
				break
			}
		}
	}
	if bOK {
		for _, l := range viol.GDC.Y {
			if b.evalConsequent(l, base) != stEntailed {
				if _, lok := b.enforceLit(l, base); !lok {
					bOK = false
					break
				}
			}
		}
	}
	if bOK {
		if b.signature() == s.signature() {
			// No progress: the violation is a value-assignment artifact
			// the heuristic cannot resolve.
			sawUnknown = true
		} else {
			v, m := solve(b, sigma, budget, certify, depth+1)
			switch v {
			case True:
				return True, m
			case Unknown:
				sawUnknown = true
			}
		}
	}
	if sawUnknown {
		return Unknown, nil
	}
	return False, nil
}

// matchToReps resolves a quotient-graph match back to base class reps.
// The violation match is over the materialized graph, whose node ids
// coincide with quotient node ids.
func matchToReps(s *state, m pattern.Match) map[pattern.Var]graph.NodeID {
	_, _, repOf := s.quotient()
	out := make(map[pattern.Var]graph.NodeID, len(m))
	for v, qn := range m {
		out[v] = repOf[qn]
	}
	return out
}

// Implies decides (three-valued) whether Σ ⊨ φ by searching for a
// counterexample: a quotient of φ's canonical graph, closed under Σ,
// whose identity embedding of Q satisfies X but falsifies some literal
// of Y. For the equality-only fragment this search space is exactly the
// chase's and the answer is exact (Theorem 4); with inequalities it
// mirrors the Πᵖ₂ structure of Theorem 8 over normalized small models.
func Implies(sigma Set, phi *GDC) *ImplResult {
	gq, vm := phi.Pattern.ToGraph()
	budget := defaultBudget

	// Seed state: φ's antecedent holds on the identity embedding.
	s0 := newState(gq)
	for _, l := range phi.X {
		if _, ok := s0.enforceLit(l, resolveVars(l, vm, s0)); !ok {
			// X is unsatisfiable on Q: φ holds vacuously.
			return &ImplResult{Implied: True}
		}
	}
	if !s0.st.feasible() {
		return &ImplResult{Implied: True}
	}

	certifyFor := func(lit *ged.Literal) func(*graph.Graph, *state) bool {
		return func(model *graph.Graph, st *state) bool {
			// The identity embedding must satisfy X and falsify Y (the
			// specific literal when given, any literal otherwise).
			m := identityMatch(st, vm, model)
			for _, l := range phi.X {
				if !HoldsInGraph(model, l, m) {
					return false
				}
			}
			if lit != nil {
				return !HoldsInGraph(model, *lit, m)
			}
			for _, l := range phi.Y {
				if !HoldsInGraph(model, l, m) {
					return true
				}
			}
			return false
		}
	}

	sawUnknown := false
	// Branch per consequent literal: assert its negation.
	for i := range phi.Y {
		l := phi.Y[i]
		b := s0.clone()
		if l.Left.Kind == ged.OperandID {
			if b.nodeRoot(vm[l.Left.Var]) == b.nodeRoot(vm[l.Right.Var]) {
				continue // cannot be falsified in this quotient
			}
			b.antiMerge = append(b.antiMerge, [2]graph.NodeID{vm[l.Left.Var], vm[l.Right.Var]})
		} else if _, ok := b.enforceLit(l.Negate(), resolveVars(l, vm, b)); !ok {
			continue
		}
		v, m := solve(b, sigma, &budget, certifyFor(&l), 0)
		switch v {
		case True:
			return &ImplResult{Implied: False, Counterexample: m}
		case Unknown:
			sawUnknown = true
		}
	}
	// Extra attempt: attribute minimality alone may falsify Y (an
	// attribute mentioned only in Y never comes into existence).
	v, m := solve(s0.clone(), sigma, &budget, certifyFor(nil), 0)
	switch v {
	case True:
		return &ImplResult{Implied: False, Counterexample: m}
	case Unknown:
		sawUnknown = true
	}
	if sawUnknown {
		return &ImplResult{Implied: Unknown}
	}
	return &ImplResult{Implied: True}
}

// resolveVars maps a literal's variables to class reps.
func resolveVars(l ged.Literal, vm map[pattern.Var]graph.NodeID, s *state) map[pattern.Var]graph.NodeID {
	out := make(map[pattern.Var]graph.NodeID)
	for _, v := range l.Vars() {
		out[v] = s.nodeRoot(vm[v])
	}
	return out
}

// identityMatch maps φ's pattern variables to the candidate model's
// nodes through the quotient.
func identityMatch(s *state, vm map[pattern.Var]graph.NodeID, model *graph.Graph) pattern.Match {
	_, nodeOf, _ := s.quotient()
	m := make(pattern.Match, len(vm))
	for v, n := range vm {
		m[v] = nodeOf[n]
	}
	_ = model
	return m
}
