package gdc

import (
	"fmt"
	"sort"

	"gedlib/internal/ged"
	"gedlib/internal/graph"
)

// slot identifies an attribute of a node class by a class representative
// (kept canonical under node merges by the solver) and an attribute.
type slot struct {
	node graph.NodeID
	attr graph.Attr
}

// store is the attribute-constraint store of the GDC solver: an equality
// union–find over value terms (attribute slots and constants), order
// constraints between terms, and disequalities. The constant domain U is
// totally ordered and dense on each kind, which the feasibility check
// exploits: x ≤ y ≤ x collapses to x = y, a ≤/＜ cycle through a strict
// edge is infeasible, and any bound pattern without constant conflicts
// is realizable.
type store struct {
	parent []int
	// constOf maps a constant value to its term.
	constOf map[graph.Value]int
	// constant per term (nil for slots).
	consts []*graph.Value
	// slotOf maps slots to terms.
	slotOf map[slot]int
	slots  []slot // per term; zero for constants

	// orders are t1 ≤ t2 (strict: t1 < t2) constraints between terms.
	orders []orderCon
	// diseqs are t1 ≠ t2 constraints.
	diseqs [][2]int
}

type orderCon struct {
	lo, hi int
	strict bool
}

func newStore() *store {
	return &store{
		constOf: make(map[graph.Value]int),
		slotOf:  make(map[slot]int),
	}
}

// clone deep-copies the store (for branching).
func (s *store) clone() *store {
	c := &store{
		parent:  append([]int{}, s.parent...),
		constOf: make(map[graph.Value]int, len(s.constOf)),
		consts:  append([]*graph.Value{}, s.consts...),
		slotOf:  make(map[slot]int, len(s.slotOf)),
		slots:   append([]slot{}, s.slots...),
		orders:  append([]orderCon{}, s.orders...),
		diseqs:  append([][2]int{}, s.diseqs...),
	}
	for k, v := range s.constOf {
		c.constOf[k] = v
	}
	for k, v := range s.slotOf {
		c.slotOf[k] = v
	}
	return c
}

func (s *store) find(t int) int {
	for s.parent[t] != t {
		s.parent[t] = s.parent[s.parent[t]]
		t = s.parent[t]
	}
	return t
}

func (s *store) newTerm(sl slot, c *graph.Value) int {
	t := len(s.parent)
	s.parent = append(s.parent, t)
	s.slots = append(s.slots, sl)
	s.consts = append(s.consts, c)
	return t
}

// constTerm interns a constant.
func (s *store) constTerm(c graph.Value) int {
	if t, ok := s.constOf[c]; ok {
		return t
	}
	cv := c
	t := s.newTerm(slot{}, &cv)
	s.constOf[c] = t
	return t
}

// slotTerm interns a slot. The caller passes the canonical node
// representative.
func (s *store) slotTerm(sl slot) int {
	if t, ok := s.slotOf[sl]; ok {
		return t
	}
	t := s.newTerm(sl, nil)
	s.slotOf[sl] = t
	return t
}

// hasSlot reports whether the slot exists without creating it.
func (s *store) hasSlot(sl slot) (int, bool) {
	t, ok := s.slotOf[sl]
	return t, ok
}

// rootConst returns the constant bound to t's class, if any.
func (s *store) rootConst(t int) *graph.Value {
	r := s.find(t)
	// Constants are their own class witnesses; scan lazily: keep the
	// invariant that union propagates constants to the root.
	return s.consts[r]
}

// union merges two term classes; returns false on constant conflict.
func (s *store) union(a, b int) bool {
	ra, rb := s.find(a), s.find(b)
	if ra == rb {
		return true
	}
	ca, cb := s.consts[ra], s.consts[rb]
	if ca != nil && cb != nil && !ca.Equal(*cb) {
		return false
	}
	s.parent[rb] = ra
	if ca == nil {
		s.consts[ra] = cb
	}
	return true
}

// addOrder records lo ≤ hi (or lo < hi); it reports whether the
// constraint was new (dedup keeps propagation terminating).
func (s *store) addOrder(lo, hi int, strict bool) bool {
	rlo, rhi := s.find(lo), s.find(hi)
	for _, oc := range s.orders {
		if s.find(oc.lo) == rlo && s.find(oc.hi) == rhi && oc.strict == strict {
			return false
		}
	}
	s.orders = append(s.orders, orderCon{lo: lo, hi: hi, strict: strict})
	return true
}

// addDiseq records a ≠ b; it reports whether the constraint was new.
func (s *store) addDiseq(a, b int) bool {
	if s.hasDiseq(s.find(a), s.find(b)) {
		return false
	}
	s.diseqs = append(s.diseqs, [2]int{a, b})
	return true
}

// feasible checks the store: it merges ≤-cycles (dense order), verifies
// constant chains and disequalities, and reports whether a satisfying
// assignment exists. It mutates the store (SCC merging), which is the
// desired propagation.
func (s *store) feasible() bool {
	for {
		roots := s.rootSet()
		idx := make(map[int]int, len(roots))
		for i, r := range roots {
			idx[r] = i
		}
		n := len(roots)
		// reach[i][j]: 0 = none, 1 = ≤ path, 2 = path with a strict edge.
		reach := make([][]uint8, n)
		for i := range reach {
			reach[i] = make([]uint8, n)
		}
		for _, oc := range s.orders {
			i, j := idx[s.find(oc.lo)], idx[s.find(oc.hi)]
			v := uint8(1)
			if oc.strict {
				v = 2
			}
			if v > reach[i][j] {
				reach[i][j] = v
			}
		}
		// Floyd–Warshall closure keeping max strictness.
		for k := 0; k < n; k++ {
			for i := 0; i < n; i++ {
				if reach[i][k] == 0 {
					continue
				}
				for j := 0; j < n; j++ {
					if reach[k][j] == 0 {
						continue
					}
					v := reach[i][k]
					if reach[k][j] > v {
						v = reach[k][j]
					}
					if v > reach[i][j] {
						reach[i][j] = v
					}
				}
			}
		}
		// Strict self-cycles are infeasible; non-strict cycles merge
		// (dense order: x ≤ y ≤ x ⟹ x = y).
		merged := false
		for i := 0; i < n; i++ {
			if reach[i][i] == 2 {
				return false
			}
			for j := i + 1; j < n; j++ {
				if reach[i][j] >= 1 && reach[j][i] >= 1 {
					if !s.union(roots[i], roots[j]) {
						return false
					}
					merged = true
				}
			}
		}
		if merged {
			continue // recompute over the coarser partition
		}
		// Constant chains must respect the order of U.
		for i := 0; i < n; i++ {
			ci := s.consts[roots[i]]
			if ci == nil {
				continue
			}
			for j := 0; j < n; j++ {
				cj := s.consts[roots[j]]
				if cj == nil || reach[i][j] == 0 {
					continue
				}
				switch reach[i][j] {
				case 2:
					if !ci.Less(*cj) {
						return false
					}
				default:
					if cj.Less(*ci) {
						return false
					}
				}
			}
		}
		// Disequalities must separate classes.
		for _, d := range s.diseqs {
			if s.find(d[0]) == s.find(d[1]) {
				return false
			}
		}
		return true
	}
}

// rootSet returns the distinct class roots, sorted for determinism.
func (s *store) rootSet() []int {
	seen := make(map[int]bool)
	var roots []int
	for t := range s.parent {
		r := s.find(t)
		if !seen[r] {
			seen[r] = true
			roots = append(roots, r)
		}
	}
	sort.Ints(roots)
	return roots
}

// assign produces a concrete value per class satisfying the store, which
// must be feasible. Free classes get fresh values; ordered free classes
// get values consistent with their constant bounds; disequalities are
// avoided by nudging. The caller certifies the result with the
// validator, so assignment is heuristic without affecting soundness.
func (s *store) assign() map[int]graph.Value {
	roots := s.rootSet()
	idx := make(map[int]int, len(roots))
	for i, r := range roots {
		idx[r] = i
	}
	n := len(roots)
	// Bounds from constants through the order graph.
	lo := make([]*graph.Value, n)
	hi := make([]*graph.Value, n)
	loStrict := make([]bool, n)
	hiStrict := make([]bool, n)
	for i, r := range roots {
		if c := s.consts[r]; c != nil {
			lo[i], hi[i] = c, c
		}
	}
	// Relax bounds along order edges until fixpoint.
	for pass := 0; pass < n+1; pass++ {
		changed := false
		for _, oc := range s.orders {
			i, j := idx[s.find(oc.lo)], idx[s.find(oc.hi)]
			if lo[i] != nil && (lo[j] == nil || lo[j].Less(*lo[i])) {
				lo[j] = lo[i]
				loStrict[j] = oc.strict || loStrict[i]
				changed = true
			}
			if hi[j] != nil && (hi[i] == nil || hi[j].Less(*hi[i])) {
				hi[i] = hi[j]
				hiStrict[i] = oc.strict || hiStrict[j]
				changed = true
			}
		}
		if !changed {
			break
		}
	}
	out := make(map[int]graph.Value, n)
	taken := make(map[graph.Value]bool)
	fresh := 0
	pick := func(i int) graph.Value {
		if c := s.consts[roots[i]]; c != nil {
			return *c
		}
		var v graph.Value
		switch {
		case lo[i] == nil && hi[i] == nil:
			v = graph.Number(1e9 + float64(fresh))
			fresh++
		case lo[i] != nil && hi[i] != nil && lo[i].IsNumber() && hi[i].IsNumber():
			v = graph.Number((lo[i].Num() + hi[i].Num()) / 2)
		case lo[i] != nil && lo[i].IsNumber():
			v = graph.Number(lo[i].Num() + 1)
		case hi[i] != nil && hi[i].IsNumber():
			v = graph.Number(hi[i].Num() - 1)
		case lo[i] != nil && !lo[i].IsNumber():
			v = graph.String(lo[i].Str() + "~")
		default: // hi is a string; numbers precede strings
			v = graph.Number(float64(fresh))
			fresh++
		}
		// Avoid collisions with already-taken values (disequalities are
		// certified downstream; this just improves hit rate).
		for taken[v] {
			if v.IsNumber() {
				v = graph.Number(v.Num() + 1e-3)
			} else {
				v = graph.String(v.Str() + "~")
			}
		}
		return v
	}
	for i, r := range roots {
		v := pick(i)
		out[r] = v
		taken[v] = true
	}
	return out
}

// ---- literal status against the store ----

// status values for literal evaluation under a store.
type status uint8

const (
	stUnknown status = iota
	stEntailed
	stRefuted
)

// cmpStatus evaluates t1 ⊕ t2 against the store's closure, using exact
// constants only (a cheap sound approximation; unknown is always safe
// because the caller branches or revalidates).
func (s *store) cmpStatus(t1 int, op ged.Op, t2 int) status {
	r1, r2 := s.find(t1), s.find(t2)
	c1, c2 := s.consts[r1], s.consts[r2]
	if c1 != nil && c2 != nil {
		if op.Eval(*c1, *c2) {
			return stEntailed
		}
		return stRefuted
	}
	switch op {
	case ged.OpEq:
		if r1 == r2 {
			return stEntailed
		}
		if s.hasDiseq(r1, r2) {
			return stRefuted
		}
	case ged.OpNe:
		if r1 == r2 {
			return stRefuted
		}
		if s.hasDiseq(r1, r2) {
			return stEntailed
		}
	}
	return stUnknown
}

func (s *store) hasDiseq(r1, r2 int) bool {
	for _, d := range s.diseqs {
		a, b := s.find(d[0]), s.find(d[1])
		if (a == r1 && b == r2) || (a == r2 && b == r1) {
			return true
		}
	}
	return false
}

// addLiteralConstraint asserts t1 ⊕ t2. It reports whether the store
// changed and whether the assertion is free of immediate constant
// conflicts (full feasibility is checked separately).
func (s *store) addLiteralConstraint(t1 int, op ged.Op, t2 int) (changed, ok bool) {
	switch op {
	case ged.OpEq:
		if s.find(t1) == s.find(t2) {
			return false, true
		}
		return true, s.union(t1, t2)
	case ged.OpNe:
		return s.addDiseq(t1, t2), true
	case ged.OpLt:
		return s.addOrder(t1, t2, true), true
	case ged.OpLe:
		return s.addOrder(t1, t2, false), true
	case ged.OpGt:
		return s.addOrder(t2, t1, true), true
	case ged.OpGe:
		return s.addOrder(t2, t1, false), true
	default:
		panic(fmt.Sprintf("gdc: unknown op %v", op))
	}
}
