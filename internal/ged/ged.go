package ged

import (
	"fmt"
	"strings"

	"gedlib/internal/graph"
	"gedlib/internal/pattern"
)

// GED is a graph entity dependency φ = Q[x̄](X → Y). X and Y are
// (possibly empty) sets of literals of x̄; the paper calls Q[x̄] the
// pattern of φ and X → Y its FD.
type GED struct {
	// Name is an optional human-readable identifier (φ₁, ψ₂, ...).
	Name string
	// Pattern is the topological constraint Q[x̄].
	Pattern *pattern.Pattern
	// X is the antecedent literal set.
	X []Literal
	// Y is the consequent literal set.
	Y []Literal
}

// New returns the GED Q[x̄](X → Y).
func New(name string, q *pattern.Pattern, x, y []Literal) *GED {
	return &GED{Name: name, Pattern: q, X: x, Y: y}
}

// Validate checks that the GED is well-formed per Section 3: every
// literal is one of the three GED literal forms (equality only), every
// mentioned variable belongs to the pattern, and no attribute literal
// uses the reserved id. It returns the first problem found.
func (g *GED) Validate() error {
	if g.Pattern == nil {
		return fmt.Errorf("ged %s: nil pattern", g.Name)
	}
	check := func(side string, lits []Literal) error {
		for i, l := range lits {
			if _, ok := l.Kind(); !ok {
				return fmt.Errorf("ged %s: %s[%d] (%s) is not a GED literal", g.Name, side, i, l)
			}
			for _, v := range l.Vars() {
				if !g.Pattern.HasVar(v) {
					return fmt.Errorf("ged %s: %s[%d] mentions unknown variable %s", g.Name, side, i, v)
				}
			}
			if l.Left.Kind == OperandAttr && l.Left.Attr == "id" {
				return fmt.Errorf("ged %s: %s[%d] uses id as a plain attribute", g.Name, side, i)
			}
			if l.Right.Kind == OperandAttr && l.Right.Attr == "id" {
				return fmt.Errorf("ged %s: %s[%d] uses id as a plain attribute", g.Name, side, i)
			}
		}
		return nil
	}
	if err := check("X", g.X); err != nil {
		return err
	}
	return check("Y", g.Y)
}

// Class is the sub-class lattice of Section 3.
type Class uint8

const (
	// ClassGED is the general case: both constant and id literals may occur.
	ClassGED Class = iota
	// ClassGFD has no id literals (the GFDs of Fan, Wu & Xu, adapted to
	// homomorphism semantics).
	ClassGFD
	// ClassGEDx has no constant literals ("variable GEDs").
	ClassGEDx
	// ClassGFDx has neither constant nor id literals ("variable GFDs",
	// the graph analogue of plain relational FDs).
	ClassGFDx
)

// String names the class.
func (c Class) String() string {
	switch c {
	case ClassGFD:
		return "GFD"
	case ClassGEDx:
		return "GEDx"
	case ClassGFDx:
		return "GFDx"
	default:
		return "GED"
	}
}

// Classify places the GED in the most restrictive sub-class it belongs
// to: GFDx ⊂ GFD, GEDx ⊂ GED.
func (g *GED) Classify() Class {
	hasConst, hasID := false, false
	for _, l := range append(append([]Literal{}, g.X...), g.Y...) {
		switch k, _ := l.Kind(); k {
		case ConstLiteral:
			hasConst = true
		case IDLiteral:
			hasID = true
		}
	}
	switch {
	case !hasConst && !hasID:
		return ClassGFDx
	case !hasID:
		return ClassGFD
	case !hasConst:
		return ClassGEDx
	default:
		return ClassGED
	}
}

// IsForbidding reports whether the consequent is the false desugaring,
// i.e. the GED is a forbidding constraint Q[x̄](X → false).
func (g *GED) IsForbidding() bool { return IsFalse(g.Y) }

// String renders the GED in the DSL's logical notation.
func (g *GED) String() string {
	var b strings.Builder
	if g.Name != "" {
		fmt.Fprintf(&b, "%s: ", g.Name)
	}
	fmt.Fprintf(&b, "%s (", g.Pattern)
	writeLits(&b, g.X)
	b.WriteString(" -> ")
	writeLits(&b, g.Y)
	b.WriteString(")")
	return b.String()
}

func writeLits(b *strings.Builder, lits []Literal) {
	if len(lits) == 0 {
		b.WriteString("true")
		return
	}
	for i, l := range lits {
		if i > 0 {
			b.WriteString(" && ")
		}
		b.WriteString(l.String())
	}
}

// Set is a finite set Σ of GEDs.
type Set []*GED

// Size returns Σ's total size: the sum over its GEDs of pattern size plus
// literal count. It is the |Σ| of the chase bound in Theorem 1.
func (s Set) Size() int {
	n := 0
	for _, g := range s {
		n += g.Pattern.Size() + len(g.X) + len(g.Y)
	}
	return n
}

// Classify returns the most restrictive class containing every member.
func (s Set) Classify() Class {
	hasConst, hasID := false, false
	for _, g := range s {
		switch g.Classify() {
		case ClassGED:
			hasConst, hasID = true, true
		case ClassGFD:
			hasConst = true
		case ClassGEDx:
			hasID = true
		}
	}
	switch {
	case !hasConst && !hasID:
		return ClassGFDx
	case !hasID:
		return ClassGFD
	case !hasConst:
		return ClassGEDx
	default:
		return ClassGED
	}
}

// Validate checks every member.
func (s Set) Validate() error {
	for _, g := range s {
		if err := g.Validate(); err != nil {
			return err
		}
	}
	return nil
}

// CanonicalGraph builds the canonical graph G_Σ of Section 5.1: the
// disjoint union of the patterns of all GEDs in Σ, with empty attribute
// map. It returns, for each GED, the mapping from its pattern variables
// to nodes of G_Σ.
func (s Set) CanonicalGraph() (*graph.Graph, []map[pattern.Var]graph.NodeID) {
	g := graph.New()
	maps := make([]map[pattern.Var]graph.NodeID, len(s))
	for i, d := range s {
		pg, vm := d.Pattern.ToGraph()
		nm := g.DisjointUnion(pg)
		m := make(map[pattern.Var]graph.NodeID, len(vm))
		for v, id := range vm {
			m[v] = nm[id]
		}
		maps[i] = m
	}
	return g, maps
}
