package ged

import (
	"strings"
	"testing"

	"gedlib/internal/graph"
	"gedlib/internal/pattern"
)

func q1() *pattern.Pattern {
	p := pattern.New()
	p.AddVar("x", "person").AddVar("y", "product")
	p.AddEdge("x", "create", "y")
	return p
}

func TestOpEval(t *testing.T) {
	a, b := graph.Int(1), graph.Int(2)
	cases := []struct {
		op   Op
		x, y graph.Value
		want bool
	}{
		{OpEq, a, a, true}, {OpEq, a, b, false},
		{OpNe, a, b, true}, {OpNe, a, a, false},
		{OpLt, a, b, true}, {OpLt, b, a, false}, {OpLt, a, a, false},
		{OpLe, a, a, true}, {OpLe, a, b, true}, {OpLe, b, a, false},
		{OpGt, b, a, true}, {OpGt, a, b, false},
		{OpGe, a, a, true}, {OpGe, b, a, true}, {OpGe, a, b, false},
	}
	for _, c := range cases {
		if got := c.op.Eval(c.x, c.y); got != c.want {
			t.Errorf("%s.Eval(%s, %s) = %v, want %v", c.op, c.x, c.y, got, c.want)
		}
	}
}

func TestOpFlipNegate(t *testing.T) {
	vals := []graph.Value{graph.Int(1), graph.Int(2), graph.Int(3)}
	ops := []Op{OpEq, OpNe, OpLt, OpLe, OpGt, OpGe}
	for _, op := range ops {
		for _, a := range vals {
			for _, b := range vals {
				if op.Eval(a, b) != op.Flip().Eval(b, a) {
					t.Errorf("flip law fails for %s on (%s,%s)", op, a, b)
				}
				if op.Eval(a, b) == op.Negate().Eval(a, b) {
					t.Errorf("negate law fails for %s on (%s,%s)", op, a, b)
				}
			}
		}
	}
}

func TestLiteralKinds(t *testing.T) {
	cases := []struct {
		l    Literal
		want LiteralKind
		ok   bool
	}{
		{ConstLit("x", "type", graph.String("video game")), ConstLiteral, true},
		{VarLit("x", "name", "y", "name"), VarLiteral, true},
		{IDLit("x", "y"), IDLiteral, true},
		{Cmp("x", "age", OpLt, graph.Int(5)), 0, false},
		{Literal{Left: Const(graph.Int(1)), Right: Const(graph.Int(2)), Op: OpEq}, 0, false},
		{Literal{Left: Const(graph.Int(1)), Right: AttrOf("x", "a"), Op: OpEq}, 0, false},
	}
	for _, c := range cases {
		k, ok := c.l.Kind()
		if ok != c.ok || (ok && k != c.want) {
			t.Errorf("Kind(%s) = (%v,%v), want (%v,%v)", c.l, k, ok, c.want, c.ok)
		}
	}
}

func TestLiteralStringAndVars(t *testing.T) {
	l := VarLit("x", "name", "y", "title")
	if l.String() != "x.name = y.title" {
		t.Errorf("String = %q", l.String())
	}
	if vs := l.Vars(); len(vs) != 2 || vs[0] != "x" || vs[1] != "y" {
		t.Errorf("Vars = %v", vs)
	}
	self := VarLit("x", "a", "x", "b")
	if vs := self.Vars(); len(vs) != 1 || vs[0] != "x" {
		t.Errorf("self Vars = %v", vs)
	}
	c := ConstLit("x", "t", graph.String("v"))
	if vs := c.Vars(); len(vs) != 1 {
		t.Errorf("const Vars = %v", vs)
	}
	if got := Cmp("x", "age", OpGe, graph.Int(3)).String(); got != "x.age >= 3" {
		t.Errorf("cmp String = %q", got)
	}
	if got := IDLit("x", "y").String(); got != "x.id = y.id" {
		t.Errorf("id String = %q", got)
	}
}

func TestLiteralFlip(t *testing.T) {
	l := Cmp("x", "a", OpLt, graph.Int(5))
	f := l.Flip()
	if f.Op != OpGt || f.Left.Kind != OperandConst || f.Right != AttrOf("x", "a") {
		t.Errorf("Flip = %v", f)
	}
	eq := VarLit("x", "a", "y", "b").Flip()
	if eq.Left != AttrOf("y", "b") || eq.Op != OpEq {
		t.Errorf("eq Flip = %v", eq)
	}
}

func TestGEDValidate(t *testing.T) {
	ok := New("phi1", q1(),
		[]Literal{ConstLit("x", "type", graph.String("video game"))},
		[]Literal{ConstLit("y", "type", graph.String("programmer"))})
	if err := ok.Validate(); err != nil {
		t.Errorf("valid GED rejected: %v", err)
	}
	badVar := New("bad", q1(), nil, []Literal{ConstLit("z", "a", graph.Int(1))})
	if badVar.Validate() == nil {
		t.Error("unknown variable accepted")
	}
	badOp := New("bad", q1(), []Literal{Cmp("x", "a", OpLt, graph.Int(1))}, nil)
	if badOp.Validate() == nil {
		t.Error("comparison literal accepted in plain GED")
	}
	badID := New("bad", q1(), nil, []Literal{ConstLit("x", "id", graph.Int(1))})
	if badID.Validate() == nil {
		t.Error("id used as plain attribute accepted")
	}
}

func TestClassify(t *testing.T) {
	cases := []struct {
		name string
		x, y []Literal
		want Class
	}{
		{"gfdx", []Literal{VarLit("x", "a", "y", "a")}, []Literal{VarLit("x", "b", "y", "b")}, ClassGFDx},
		{"gfd", []Literal{ConstLit("x", "a", graph.Int(1))}, []Literal{VarLit("x", "b", "y", "b")}, ClassGFD},
		{"gedx", []Literal{VarLit("x", "a", "y", "a")}, []Literal{IDLit("x", "y")}, ClassGEDx},
		{"ged", []Literal{ConstLit("x", "a", graph.Int(1))}, []Literal{IDLit("x", "y")}, ClassGED},
		{"empty", nil, nil, ClassGFDx},
	}
	for _, c := range cases {
		g := New(c.name, q1(), c.x, c.y)
		if got := g.Classify(); got != c.want {
			t.Errorf("%s: Classify = %v, want %v", c.name, got, c.want)
		}
	}
}

func TestSetClassify(t *testing.T) {
	gfd := New("a", q1(), []Literal{ConstLit("x", "a", graph.Int(1))}, nil)
	gedx := New("b", q1(), nil, []Literal{IDLit("x", "y")})
	s := Set{gfd, gedx}
	if s.Classify() != ClassGED {
		t.Errorf("mixed set must classify as GED, got %v", s.Classify())
	}
	if (Set{gfd}).Classify() != ClassGFD {
		t.Error("singleton GFD set")
	}
	if (Set{}).Classify() != ClassGFDx {
		t.Error("empty set must be GFDx")
	}
}

func TestClassString(t *testing.T) {
	names := map[Class]string{ClassGED: "GED", ClassGFD: "GFD", ClassGEDx: "GEDx", ClassGFDx: "GFDx"}
	for c, want := range names {
		if c.String() != want {
			t.Errorf("Class(%d).String() = %s, want %s", c, c.String(), want)
		}
	}
}

func TestForbiddingFalse(t *testing.T) {
	f := False("y")
	if len(f) != 2 {
		t.Fatal("False must desugar to two literals")
	}
	if !IsFalse(f) {
		t.Error("IsFalse(False(y)) = false")
	}
	g := New("phi4", q1(), nil, f)
	if !g.IsForbidding() {
		t.Error("forbidding GED not recognized")
	}
	if IsFalse([]Literal{ConstLit("y", FalseAttr, graph.Int(0))}) {
		t.Error("single _F literal is not false")
	}
	if IsFalse([]Literal{ConstLit("y", "a", graph.Int(0)), ConstLit("y", "a", graph.Int(1))}) {
		t.Error("only the reserved attribute desugars false")
	}
	// Distinct anchors do not make false.
	mixed := []Literal{ConstLit("y", FalseAttr, graph.Int(0)), ConstLit("z", FalseAttr, graph.Int(1))}
	if IsFalse(mixed) {
		t.Error("false literals on distinct variables must not combine")
	}
}

func TestGEDString(t *testing.T) {
	g := New("phi1", q1(),
		[]Literal{ConstLit("x", "type", graph.String("video game"))},
		[]Literal{ConstLit("y", "type", graph.String("programmer"))})
	s := g.String()
	for _, want := range []string{"phi1:", "(x:person)-[create]->(y:product)", `x.type = "video game"`, "->", `y.type = "programmer"`} {
		if !strings.Contains(s, want) {
			t.Errorf("String() = %q missing %q", s, want)
		}
	}
	empty := New("", q1(), nil, nil)
	if !strings.Contains(empty.String(), "true -> true") {
		t.Errorf("empty sides must render as true: %q", empty.String())
	}
}

func TestCanonicalGraph(t *testing.T) {
	g1 := New("a", q1(), nil, nil)
	p2 := pattern.New()
	p2.AddVar("x", "country")
	g2 := New("b", p2, nil, nil)
	s := Set{g1, g2}
	gs, maps := s.CanonicalGraph()
	if gs.NumNodes() != 3 || gs.NumEdges() != 1 {
		t.Fatalf("G_Sigma shape: %d nodes %d edges", gs.NumNodes(), gs.NumEdges())
	}
	// Patterns are disjoint even though both use variable x.
	if maps[0]["x"] == maps[1]["x"] {
		t.Error("canonical graph must keep patterns disjoint")
	}
	if gs.Label(maps[0]["x"]) != "person" || gs.Label(maps[1]["x"]) != "country" {
		t.Error("canonical graph labels wrong")
	}
	if len(gs.Attrs(maps[0]["x"])) != 0 {
		t.Error("canonical graph attribute map must be empty")
	}
}

func TestSetSize(t *testing.T) {
	g := New("a", q1(), []Literal{ConstLit("x", "a", graph.Int(1))}, []Literal{IDLit("x", "y")})
	s := Set{g}
	// pattern size 3 + 1 X literal + 1 Y literal
	if s.Size() != 5 {
		t.Errorf("Size = %d, want 5", s.Size())
	}
}

func TestNewGKeyAlbum(t *testing.T) {
	// ψ2 of Example 3: album identified by title and release.
	q := pattern.New()
	q.AddVar("x", "album")
	k, err := NewGKey("psi2", q, "x", func(x, fx pattern.Var) []Literal {
		return []Literal{
			VarLit(x, "title", fx, "title"),
			VarLit(x, "release", fx, "release"),
		}
	})
	if err != nil {
		t.Fatal(err)
	}
	if k.Pattern.NumVars() != 2 {
		t.Fatalf("GKey pattern vars = %d, want 2", k.Pattern.NumVars())
	}
	if len(k.X) != 2 || len(k.Y) != 1 {
		t.Fatalf("GKey FD shape: |X|=%d |Y|=%d", len(k.X), len(k.Y))
	}
	if !IsGKey(k) {
		t.Error("NewGKey result not recognized by IsGKey")
	}
	if k.Classify() != ClassGEDx {
		t.Errorf("variable-literal GKey should classify GEDx, got %v", k.Classify())
	}
}

func TestNewGKeyRecursive(t *testing.T) {
	// ψ1/ψ3 of Example 3: album + artist with recursive id antecedents.
	q := pattern.New()
	q.AddVar("x", "album").AddVar("x2", "artist")
	q.AddEdge("x", "by", "x2")
	k, err := NewGKey("psi1", q, "x", func(x, fx pattern.Var) []Literal {
		if x == "x" {
			return []Literal{VarLit(x, "title", fx, "title")}
		}
		return []Literal{IDLit(x, fx)} // identify artists by id
	})
	if err != nil {
		t.Fatal(err)
	}
	if !IsGKey(k) {
		t.Error("recursive GKey not recognized")
	}
	// The copy must mirror the by-edge.
	found := 0
	for _, e := range k.Pattern.Edges() {
		if e.Label == "by" {
			found++
		}
	}
	if found != 2 {
		t.Errorf("copy must duplicate edges: found %d by-edges, want 2", found)
	}
}

func TestNewGKeyBadDesignated(t *testing.T) {
	q := pattern.New()
	q.AddVar("x", "album")
	if _, err := NewGKey("bad", q, "nope", nil); err == nil {
		t.Error("unknown designated node accepted")
	}
}

func TestIsGKeyRejects(t *testing.T) {
	// A plain GED with an id consequent but no copy structure.
	p := pattern.New()
	p.AddVar("x", "a").AddVar("y", "b")
	g := New("notkey", p, nil, []Literal{IDLit("x", "y")})
	if IsGKey(g) {
		t.Error("non-copy pattern accepted as GKey")
	}
	// Two consequent literals.
	q := pattern.New()
	q.AddVar("x", "a")
	k, err := NewGKey("k", q, "x", nil)
	if err != nil {
		t.Fatal(err)
	}
	k.Y = append(k.Y, VarLit("x", "a", "x'", "a"))
	if IsGKey(k) {
		t.Error("multi-literal consequent accepted as GKey")
	}
}
