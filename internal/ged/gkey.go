package ged

import (
	"fmt"

	"gedlib/internal/pattern"
)

// GKey construction, Section 3 special case (2).
//
// A key for graphs is a GED of the form Q[z̄](X → x₀.id = y₀.id) where
// Q is composed of a pattern Q₁[x̄] and a copy Q₂[ȳ] of Q₁ via a
// bijection f, z̄ = x̄ followed by ȳ, and x₀ ∈ x̄ with y₀ = f(x₀). The
// antecedent X typically pairs corresponding attributes (x.A = f(x).A)
// and may itself contain id literals, making keys recursively defined
// (the album/artist keys ψ₁–ψ₃ of Example 1).

// CopySuffix is the suffix appended to variables when building the copy
// pattern of a GKey.
const CopySuffix = "'"

// CopyVar returns the copy-side variable corresponding to x.
func CopyVar(x pattern.Var) pattern.Var { return x + CopySuffix }

// NewGKey builds the GKey identified by pattern q, designated node x0,
// and an antecedent builder: for each original variable x, buildX
// receives x and its copy f(x) and returns the antecedent literals
// relating them (often x.A = f(x).A pairs, or id literals for recursive
// keys). Passing a nil buildX yields an empty antecedent.
func NewGKey(name string, q *pattern.Pattern, x0 pattern.Var, buildX func(x, fx pattern.Var) []Literal) (*GED, error) {
	if !q.HasVar(x0) {
		return nil, fmt.Errorf("gkey %s: designated node %s not in pattern", name, x0)
	}
	cp, f := q.Copy(CopyVar)
	u := pattern.Union(q, cp)
	var xs []Literal
	if buildX != nil {
		for _, x := range q.Vars() {
			xs = append(xs, buildX(x, f[x])...)
		}
	}
	k := New(name, u, xs, []Literal{IDLit(x0, f[x0])})
	if err := k.Validate(); err != nil {
		return nil, err
	}
	return k, nil
}

// IsGKey reports whether the GED has the syntactic GKey shape: its
// pattern splits into two halves that are copies of each other under the
// CopyVar renaming, and its consequent is a single id literal pairing a
// designated node with its copy. This recognizes GKeys built by NewGKey;
// semantically equivalent GEDs with other variable naming conventions
// are classified as plain GEDs/GEDxs.
func IsGKey(g *GED) bool {
	if len(g.Y) != 1 {
		return false
	}
	l := g.Y[0]
	if k, ok := l.Kind(); !ok || k != IDLiteral {
		return false
	}
	x0, y0 := l.Left.Var, l.Right.Var
	if CopyVar(x0) != y0 {
		return false
	}
	// Every original variable must have its copy, with equal labels, and
	// every copy edge must mirror an original edge.
	var orig, copies []pattern.Var
	for _, v := range g.Pattern.Vars() {
		if len(v) > len(CopySuffix) && v[len(v)-len(CopySuffix):] == CopySuffix {
			copies = append(copies, v)
		} else {
			orig = append(orig, v)
		}
	}
	if len(orig) != len(copies) || len(orig) == 0 {
		return false
	}
	for _, x := range orig {
		y := CopyVar(x)
		if !g.Pattern.HasVar(y) || g.Pattern.Label(x) != g.Pattern.Label(y) {
			return false
		}
	}
	// Edge mirroring: count edges within each half and require bijection.
	type ekey struct {
		s, d pattern.Var
		l    interface{}
	}
	origEdges := make(map[ekey]int)
	copyEdges := make(map[ekey]int)
	isCopy := func(v pattern.Var) bool {
		return len(v) > len(CopySuffix) && v[len(v)-len(CopySuffix):] == CopySuffix
	}
	for _, e := range g.Pattern.Edges() {
		sc, dc := isCopy(e.Src), isCopy(e.Dst)
		switch {
		case !sc && !dc:
			origEdges[ekey{e.Src, e.Dst, e.Label}]++
		case sc && dc:
			base := ekey{e.Src[:len(e.Src)-len(CopySuffix)], e.Dst[:len(e.Dst)-len(CopySuffix)], e.Label}
			copyEdges[base]++
		default:
			return false // edge crossing the halves
		}
	}
	if len(origEdges) != len(copyEdges) {
		return false
	}
	for k, n := range origEdges {
		if copyEdges[k] != n {
			return false
		}
	}
	return true
}
