// Package ged defines graph entity dependencies (GEDs) and their
// sub-classes, following Section 3 of "Dependencies for Graphs"
// (Fan & Lu, PODS 2017).
//
// A GED φ = Q[x̄](X → Y) pairs a graph pattern Q[x̄] (the topological
// constraint identifying entities) with an attribute dependency X → Y
// over equality literals of x̄. Literals come in three forms:
//
//   - constant literals  x.A = c
//   - variable literals  x.A = y.B
//   - id literals        x.id = y.id
//
// The package represents literals in a slightly generalized two-operand
// form. This accommodates (a) the intermediate literal shape c = x.A that
// the axiom system of Section 6 permits in proofs, and (b) the built-in
// predicates ≠, <, ≤, >, ≥ of the GDC extension (Section 7.1), so that
// the chase, validator and axiom machinery share one literal type.
package ged

import (
	"fmt"

	"gedlib/internal/graph"
	"gedlib/internal/pattern"
)

// Op is a built-in comparison predicate. Plain GEDs use only OpEq;
// the other operators belong to the GDC extension.
type Op uint8

// The built-in predicates of Section 7.1.
const (
	OpEq Op = iota
	OpNe
	OpLt
	OpLe
	OpGt
	OpGe
)

// String renders the operator in DSL syntax.
func (o Op) String() string {
	switch o {
	case OpEq:
		return "="
	case OpNe:
		return "!="
	case OpLt:
		return "<"
	case OpLe:
		return "<="
	case OpGt:
		return ">"
	case OpGe:
		return ">="
	}
	return fmt.Sprintf("op(%d)", uint8(o))
}

// Eval applies the predicate to two constants under the total order on U.
func (o Op) Eval(a, b graph.Value) bool {
	switch o {
	case OpEq:
		return a.Equal(b)
	case OpNe:
		return !a.Equal(b)
	case OpLt:
		return a.Less(b)
	case OpLe:
		return a.Less(b) || a.Equal(b)
	case OpGt:
		return b.Less(a)
	case OpGe:
		return b.Less(a) || a.Equal(b)
	}
	return false
}

// Flip returns the predicate with its operands swapped: a ⊕ b iff
// b ⊕.Flip() a.
func (o Op) Flip() Op {
	switch o {
	case OpLt:
		return OpGt
	case OpLe:
		return OpGe
	case OpGt:
		return OpLt
	case OpGe:
		return OpLe
	}
	return o // =, ≠ are symmetric
}

// Negate returns the complement predicate: a ⊕ b iff !(a ⊕.Negate() b).
func (o Op) Negate() Op {
	switch o {
	case OpEq:
		return OpNe
	case OpNe:
		return OpEq
	case OpLt:
		return OpGe
	case OpLe:
		return OpGt
	case OpGt:
		return OpLe
	case OpGe:
		return OpLt
	}
	return o
}

// OperandKind discriminates the three operand forms.
type OperandKind uint8

const (
	// OperandID is the node identity x.id of a variable.
	OperandID OperandKind = iota
	// OperandAttr is an attribute designator x.A.
	OperandAttr
	// OperandConst is a constant from U.
	OperandConst
)

// Operand is one side of a literal: a node id, an attribute designator,
// or a constant.
type Operand struct {
	Kind  OperandKind
	Var   pattern.Var // for OperandID and OperandAttr
	Attr  graph.Attr  // for OperandAttr
	Const graph.Value // for OperandConst
}

// ID returns the operand x.id.
func ID(x pattern.Var) Operand { return Operand{Kind: OperandID, Var: x} }

// AttrOf returns the operand x.A.
func AttrOf(x pattern.Var, a graph.Attr) Operand {
	return Operand{Kind: OperandAttr, Var: x, Attr: a}
}

// Const returns a constant operand.
func Const(v graph.Value) Operand { return Operand{Kind: OperandConst, Const: v} }

// String renders the operand in DSL syntax.
func (o Operand) String() string {
	switch o.Kind {
	case OperandID:
		return string(o.Var) + ".id"
	case OperandAttr:
		return fmt.Sprintf("%s.%s", o.Var, o.Attr)
	default:
		return o.Const.String()
	}
}

// Literal is an equality (or, for GDCs, comparison) literal l of x̄.
type Literal struct {
	Left  Operand
	Right Operand
	Op    Op
}

// ConstLit returns the constant literal x.A = c.
func ConstLit(x pattern.Var, a graph.Attr, c graph.Value) Literal {
	return Literal{Left: AttrOf(x, a), Right: Const(c), Op: OpEq}
}

// VarLit returns the variable literal x.A = y.B.
func VarLit(x pattern.Var, a graph.Attr, y pattern.Var, b graph.Attr) Literal {
	return Literal{Left: AttrOf(x, a), Right: AttrOf(y, b), Op: OpEq}
}

// IDLit returns the id literal x.id = y.id.
func IDLit(x, y pattern.Var) Literal {
	return Literal{Left: ID(x), Right: ID(y), Op: OpEq}
}

// Cmp returns the comparison literal x.A ⊕ c (GDC form).
func Cmp(x pattern.Var, a graph.Attr, op Op, c graph.Value) Literal {
	return Literal{Left: AttrOf(x, a), Right: Const(c), Op: op}
}

// CmpVars returns the comparison literal x.A ⊕ y.B (GDC form).
func CmpVars(x pattern.Var, a graph.Attr, op Op, y pattern.Var, b graph.Attr) Literal {
	return Literal{Left: AttrOf(x, a), Right: AttrOf(y, b), Op: op}
}

// Kind classifies the literal per Section 3 when it is a plain GED
// literal, and reports whether it is one. Non-equality operators and
// degenerate shapes (const = const, id-vs-attr, bare constants on the
// left with attribute on the right, etc.) are not GED literals; they
// arise only in GDCs or in intermediate proof steps.
func (l Literal) Kind() (LiteralKind, bool) {
	if l.Op != OpEq {
		return 0, false
	}
	switch {
	case l.Left.Kind == OperandAttr && l.Right.Kind == OperandConst:
		return ConstLiteral, true
	case l.Left.Kind == OperandAttr && l.Right.Kind == OperandAttr:
		return VarLiteral, true
	case l.Left.Kind == OperandID && l.Right.Kind == OperandID:
		return IDLiteral, true
	}
	return 0, false
}

// LiteralKind is the paper's three-way literal classification.
type LiteralKind uint8

const (
	// ConstLiteral is x.A = c.
	ConstLiteral LiteralKind = iota
	// VarLiteral is x.A = y.B.
	VarLiteral
	// IDLiteral is x.id = y.id.
	IDLiteral
)

// Flip returns the literal with its operands exchanged (and the operator
// flipped accordingly). Flipping realizes rule GED3 of the axiom system.
func (l Literal) Flip() Literal {
	return Literal{Left: l.Right, Right: l.Left, Op: l.Op.Flip()}
}

// Negate returns the literal asserting the complement predicate. Used by
// the GDC solver when case-splitting on antecedent literals.
func (l Literal) Negate() Literal {
	return Literal{Left: l.Left, Right: l.Right, Op: l.Op.Negate()}
}

// Vars returns the pattern variables mentioned by the literal.
func (l Literal) Vars() []pattern.Var {
	var vs []pattern.Var
	if l.Left.Kind != OperandConst {
		vs = append(vs, l.Left.Var)
	}
	if l.Right.Kind != OperandConst && (len(vs) == 0 || l.Right.Var != vs[0]) {
		vs = append(vs, l.Right.Var)
	}
	return vs
}

// String renders the literal in DSL syntax.
func (l Literal) String() string {
	return fmt.Sprintf("%s %s %s", l.Left, l.Op, l.Right)
}

// FalseAttr is the reserved attribute used to desugar the Boolean
// constant false: the paper treats Q[x̄](X → false) as syntactic sugar
// for a consequent containing y.A = c and y.A = d for distinct constants
// c, d (Section 3, "forbidding GEDs"). We reserve the attribute _F and
// the constants 0 and 1 for this purpose.
const FalseAttr graph.Attr = "_F"

// False returns the two-literal desugaring of the Boolean constant false
// anchored at variable y. Any match satisfying the antecedent is then a
// violation, and the chase becomes invalid when it is enforced — exactly
// the paper's semantics for forbidding constraints.
func False(y pattern.Var) []Literal {
	return []Literal{
		ConstLit(y, FalseAttr, graph.Int(0)),
		ConstLit(y, FalseAttr, graph.Int(1)),
	}
}

// IsFalse reports whether the literal set contains the reserved false
// desugaring (two distinct constants asserted on one _F attribute).
func IsFalse(lits []Literal) bool {
	type key struct {
		v pattern.Var
	}
	seen := make(map[key]graph.Value)
	for _, l := range lits {
		if l.Op != OpEq || l.Left.Kind != OperandAttr || l.Left.Attr != FalseAttr || l.Right.Kind != OperandConst {
			continue
		}
		k := key{l.Left.Var}
		if prev, ok := seen[k]; ok && !prev.Equal(l.Right.Const) {
			return true
		}
		seen[k] = l.Right.Const
	}
	return false
}
