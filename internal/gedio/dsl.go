package gedio

import (
	"fmt"
	"strconv"
	"strings"
	"unicode"

	"gedlib/internal/gdc"
	"gedlib/internal/ged"
	"gedlib/internal/gedor"
	"gedlib/internal/graph"
	"gedlib/internal/pattern"
)

// The dependency DSL, one rule per `ged` block:
//
//	# a video game can only be created by programmers
//	ged phi1 on (x:person)-[create]->(y:product) {
//	  when y.type = "video game"
//	  then x.type = "programmer"
//	}
//
//	ged twoCapitals on (x:country)-[capital]->(y:city), (x)-[capital]->(z:city) {
//	  then y.name = z.name
//	}
//
//	ged domain on (x:account) {
//	  then x.flag = 0 or x.flag = 1        # disjunction → GED∨
//	}
//
//	ged bound on (x:emp) {
//	  when x.salary > 100                  # built-in predicate → GDC
//	  then false
//	}
//
// Patterns are comma-separated edge chains; a node is (var:label), with
// `_` for the wildcard and the label defaulting to `_` when omitted on
// re-mention. `when` (optional) introduces the antecedent, `then` the
// consequent; literals are `x.attr OP value`, `x.attr OP y.attr` or
// `x.id = y.id` with OP among = != < <= > >=; `false` desugars to the
// paper's two-constant encoding; `or` makes the consequent disjunctive.

// Rule is a parsed dependency, neutral among GED / GDC / GED∨.
type Rule struct {
	// Name is the rule identifier.
	Name string
	// Pattern is Q[x̄].
	Pattern *pattern.Pattern
	// X and Y are the antecedent and consequent.
	X, Y []ged.Literal
	// Disjunctive marks a consequent written with `or`.
	Disjunctive bool
}

// HasComparisons reports whether any literal uses a non-equality
// predicate (making the rule a GDC).
func (r *Rule) HasComparisons() bool {
	for _, l := range append(append([]ged.Literal{}, r.X...), r.Y...) {
		if l.Op != ged.OpEq {
			return true
		}
	}
	return false
}

// AsGED converts the rule, failing on comparisons or disjunction.
func (r *Rule) AsGED() (*ged.GED, error) {
	if r.Disjunctive {
		return nil, fmt.Errorf("gedio: rule %s is disjunctive; use AsGEDor", r.Name)
	}
	if r.HasComparisons() {
		return nil, fmt.Errorf("gedio: rule %s uses built-in predicates; use AsGDC", r.Name)
	}
	g := ged.New(r.Name, r.Pattern, r.X, r.Y)
	if err := g.Validate(); err != nil {
		return nil, err
	}
	return g, nil
}

// AsGDC converts the rule, failing on disjunction.
func (r *Rule) AsGDC() (*gdc.GDC, error) {
	if r.Disjunctive {
		return nil, fmt.Errorf("gedio: rule %s is disjunctive; use AsGEDor", r.Name)
	}
	g := gdc.New(r.Name, r.Pattern, r.X, r.Y)
	if err := g.Validate(); err != nil {
		return nil, err
	}
	return g, nil
}

// AsGEDor converts the rule, failing on comparisons.
func (r *Rule) AsGEDor() (*gedor.GEDor, error) {
	if r.HasComparisons() {
		return nil, fmt.Errorf("gedio: rule %s uses built-in predicates, which GED∨s do not support", r.Name)
	}
	g := gedor.New(r.Name, r.Pattern, r.X, r.Y)
	if err := g.Validate(); err != nil {
		return nil, err
	}
	return g, nil
}

// GEDs converts all rules to GEDs, failing if any is not one.
func GEDs(rules []*Rule) (ged.Set, error) {
	var out ged.Set
	for _, r := range rules {
		g, err := r.AsGED()
		if err != nil {
			return nil, err
		}
		out = append(out, g)
	}
	return out, nil
}

// ---- lexer ----

type tokKind uint8

const (
	tokEOF tokKind = iota
	tokIdent
	tokString
	tokNumber
	tokPunct // single/multi-char punctuation, stored in text
)

type token struct {
	kind tokKind
	text string
	num  float64
	line int
}

type lexer struct {
	src  []rune
	pos  int
	line int
}

func newLexer(src string) *lexer { return &lexer{src: []rune(src), line: 1} }

func (l *lexer) errf(format string, args ...interface{}) error {
	return fmt.Errorf("gedio: line %d: %s", l.line, fmt.Sprintf(format, args...))
}

func (l *lexer) next() (token, error) {
	for l.pos < len(l.src) {
		c := l.src[l.pos]
		switch {
		case c == '\n':
			l.line++
			l.pos++
		case unicode.IsSpace(c):
			l.pos++
		case c == '#':
			for l.pos < len(l.src) && l.src[l.pos] != '\n' {
				l.pos++
			}
		default:
			goto scan
		}
	}
	return token{kind: tokEOF, line: l.line}, nil

scan:
	c := l.src[l.pos]
	start := l.pos
	switch {
	case unicode.IsLetter(c) || c == '_':
		for l.pos < len(l.src) && (unicode.IsLetter(l.src[l.pos]) || unicode.IsDigit(l.src[l.pos]) || l.src[l.pos] == '_' || l.src[l.pos] == '\'') {
			l.pos++
		}
		return token{kind: tokIdent, text: string(l.src[start:l.pos]), line: l.line}, nil
	case unicode.IsDigit(c) || (c == '-' && l.pos+1 < len(l.src) && unicode.IsDigit(l.src[l.pos+1])):
		l.pos++
		for l.pos < len(l.src) && (unicode.IsDigit(l.src[l.pos]) || l.src[l.pos] == '.') {
			// A '.' followed by a non-digit terminates the number (it is
			// the attribute accessor).
			if l.src[l.pos] == '.' && (l.pos+1 >= len(l.src) || !unicode.IsDigit(l.src[l.pos+1])) {
				break
			}
			l.pos++
		}
		f, err := strconv.ParseFloat(string(l.src[start:l.pos]), 64)
		if err != nil {
			return token{}, l.errf("bad number %q", string(l.src[start:l.pos]))
		}
		return token{kind: tokNumber, num: f, text: string(l.src[start:l.pos]), line: l.line}, nil
	case c == '"':
		l.pos++
		var b strings.Builder
		for l.pos < len(l.src) && l.src[l.pos] != '"' {
			if l.src[l.pos] == '\\' && l.pos+1 < len(l.src) {
				l.pos++
			}
			if l.src[l.pos] == '\n' {
				return token{}, l.errf("unterminated string")
			}
			b.WriteRune(l.src[l.pos])
			l.pos++
		}
		if l.pos >= len(l.src) {
			return token{}, l.errf("unterminated string")
		}
		l.pos++
		return token{kind: tokString, text: b.String(), line: l.line}, nil
	default:
		two := ""
		if l.pos+1 < len(l.src) {
			two = string(l.src[l.pos : l.pos+2])
		}
		switch two {
		case "->", "!=", "<=", ">=":
			l.pos += 2
			return token{kind: tokPunct, text: two, line: l.line}, nil
		}
		l.pos++
		return token{kind: tokPunct, text: string(c), line: l.line}, nil
	}
}

// ---- parser ----

type parser struct {
	lex  *lexer
	tok  token
	prev token
}

// Parse parses a DSL document into rules.
func Parse(src string) ([]*Rule, error) {
	p := &parser{lex: newLexer(src)}
	if err := p.advance(); err != nil {
		return nil, err
	}
	var rules []*Rule
	for p.tok.kind != tokEOF {
		r, err := p.rule()
		if err != nil {
			return nil, err
		}
		rules = append(rules, r)
	}
	return rules, nil
}

func (p *parser) advance() error {
	p.prev = p.tok
	t, err := p.lex.next()
	if err != nil {
		return err
	}
	p.tok = t
	return nil
}

func (p *parser) errf(format string, args ...interface{}) error {
	return fmt.Errorf("gedio: line %d: %s", p.tok.line, fmt.Sprintf(format, args...))
}

func (p *parser) expectIdent(word string) error {
	if p.tok.kind != tokIdent || p.tok.text != word {
		return p.errf("expected %q, got %q", word, p.tok.text)
	}
	return p.advance()
}

func (p *parser) expectPunct(s string) error {
	if p.tok.kind != tokPunct || p.tok.text != s {
		return p.errf("expected %q, got %q", s, p.tok.text)
	}
	return p.advance()
}

func (p *parser) rule() (*Rule, error) {
	if err := p.expectIdent("ged"); err != nil {
		return nil, err
	}
	if p.tok.kind != tokIdent {
		return nil, p.errf("expected rule name")
	}
	r := &Rule{Name: p.tok.text, Pattern: pattern.New()}
	if err := p.advance(); err != nil {
		return nil, err
	}
	if err := p.expectIdent("on"); err != nil {
		return nil, err
	}
	if err := p.patternClause(r); err != nil {
		return nil, err
	}
	if err := p.expectPunct("{"); err != nil {
		return nil, err
	}
	if p.tok.kind == tokIdent && p.tok.text == "when" {
		if err := p.advance(); err != nil {
			return nil, err
		}
		lits, _, err := p.literalList(false)
		if err != nil {
			return nil, err
		}
		r.X = lits
	}
	if p.tok.kind == tokIdent && p.tok.text == "then" {
		if err := p.advance(); err != nil {
			return nil, err
		}
		lits, disj, err := p.literalList(true)
		if err != nil {
			return nil, err
		}
		r.Y = lits
		r.Disjunctive = disj
	}
	if err := p.expectPunct("}"); err != nil {
		return nil, err
	}
	fixFalseAnchors(r)
	return r, nil
}

// patternClause parses comma-separated node/edge chains.
func (p *parser) patternClause(r *Rule) error {
	for {
		v, err := p.node(r)
		if err != nil {
			return err
		}
		for p.tok.kind == tokPunct && p.tok.text == "-" {
			if err := p.advance(); err != nil {
				return err
			}
			if err := p.expectPunct("["); err != nil {
				return err
			}
			var label graph.Label
			switch p.tok.kind {
			case tokIdent:
				label = graph.Label(p.tok.text)
			default:
				return p.errf("expected edge label")
			}
			if err := p.advance(); err != nil {
				return err
			}
			if err := p.expectPunct("]"); err != nil {
				return err
			}
			if err := p.expectPunct("->"); err != nil {
				return err
			}
			dst, err := p.node(r)
			if err != nil {
				return err
			}
			r.Pattern.AddEdge(v, label, dst)
			v = dst
		}
		if p.tok.kind == tokPunct && p.tok.text == "," {
			if err := p.advance(); err != nil {
				return err
			}
			continue
		}
		return nil
	}
}

// node parses (var[:label]).
func (p *parser) node(r *Rule) (pattern.Var, error) {
	if err := p.expectPunct("("); err != nil {
		return "", err
	}
	if p.tok.kind != tokIdent {
		return "", p.errf("expected variable name")
	}
	v := pattern.Var(p.tok.text)
	if err := p.advance(); err != nil {
		return "", err
	}
	label := graph.Wildcard
	if p.tok.kind == tokPunct && p.tok.text == ":" {
		if err := p.advance(); err != nil {
			return "", err
		}
		if p.tok.kind != tokIdent {
			return "", p.errf("expected label")
		}
		label = graph.Label(p.tok.text)
		if err := p.advance(); err != nil {
			return "", err
		}
	}
	if err := p.expectPunct(")"); err != nil {
		return "", err
	}
	if r.Pattern.HasVar(v) {
		if label != graph.Wildcard && r.Pattern.Label(v) != label {
			return "", p.errf("variable %s relabeled", v)
		}
		return v, nil
	}
	r.Pattern.AddVar(v, label)
	return v, nil
}

// literalList parses literals separated by `and` (or `or` when allowOr);
// mixing the two in one list is rejected.
func (p *parser) literalList(allowOr bool) ([]ged.Literal, bool, error) {
	var lits []ged.Literal
	disj := false
	first := true
	for {
		ls, err := p.literal()
		if err != nil {
			return nil, false, err
		}
		lits = append(lits, ls...)
		isSep := p.tok.kind == tokIdent && (p.tok.text == "and" || p.tok.text == "or")
		if !isSep {
			return lits, disj, nil
		}
		isOr := p.tok.text == "or"
		if isOr && !allowOr {
			return nil, false, p.errf("`or` is only allowed in the consequent")
		}
		if !first && isOr != disj {
			return nil, false, p.errf("cannot mix `and` and `or` in one clause")
		}
		disj = isOr
		first = false
		if err := p.advance(); err != nil {
			return nil, false, err
		}
	}
}

// literal parses one literal (or `false`).
func (p *parser) literal() ([]ged.Literal, error) {
	if p.tok.kind == tokIdent && p.tok.text == "false" {
		if err := p.advance(); err != nil {
			return nil, err
		}
		return ged.False("x_false"), nil
	}
	left, err := p.operand()
	if err != nil {
		return nil, err
	}
	op, err := p.op()
	if err != nil {
		return nil, err
	}
	right, err := p.operand()
	if err != nil {
		return nil, err
	}
	return []ged.Literal{{Left: left, Right: right, Op: op}}, nil
}

func (p *parser) op() (ged.Op, error) {
	if p.tok.kind != tokPunct {
		return 0, p.errf("expected comparison operator, got %q", p.tok.text)
	}
	var op ged.Op
	switch p.tok.text {
	case "=":
		op = ged.OpEq
	case "!=":
		op = ged.OpNe
	case "<":
		op = ged.OpLt
	case "<=":
		op = ged.OpLe
	case ">":
		op = ged.OpGt
	case ">=":
		op = ged.OpGe
	default:
		return 0, p.errf("unknown operator %q", p.tok.text)
	}
	return op, p.advance()
}

func (p *parser) operand() (ged.Operand, error) {
	switch p.tok.kind {
	case tokNumber:
		v := graph.Number(p.tok.num)
		return ged.Const(v), p.advance()
	case tokString:
		v := graph.String(p.tok.text)
		return ged.Const(v), p.advance()
	case tokIdent:
		v := pattern.Var(p.tok.text)
		if err := p.advance(); err != nil {
			return ged.Operand{}, err
		}
		if err := p.expectPunct("."); err != nil {
			return ged.Operand{}, err
		}
		if p.tok.kind != tokIdent {
			return ged.Operand{}, p.errf("expected attribute name")
		}
		attr := p.tok.text
		if err := p.advance(); err != nil {
			return ged.Operand{}, err
		}
		if attr == "id" {
			return ged.ID(v), nil
		}
		return ged.AttrOf(v, graph.Attr(attr)), nil
	default:
		return ged.Operand{}, p.errf("expected operand, got %q", p.tok.text)
	}
}

// fixFalseAnchors rewrites the placeholder variable of a bare `false`
// consequent to the rule pattern's first variable.
func fixFalseAnchors(r *Rule) {
	if len(r.Pattern.Vars()) == 0 {
		return
	}
	anchor := r.Pattern.Vars()[0]
	for i, l := range r.Y {
		if l.Left.Kind == ged.OperandAttr && l.Left.Var == "x_false" {
			l.Left.Var = anchor
			r.Y[i] = l
		}
	}
}

// Format renders rules back into DSL text (a printer for round-trip
// tests and tool output).
func Format(rules []*Rule) string {
	var b strings.Builder
	for i, r := range rules {
		if i > 0 {
			b.WriteString("\n")
		}
		fmt.Fprintf(&b, "ged %s on %s {\n", r.Name, r.Pattern)
		sep := " and "
		if r.Disjunctive {
			sep = " or "
		}
		if len(r.X) > 0 {
			b.WriteString("  when ")
			for j, l := range r.X {
				if j > 0 {
					b.WriteString(" and ")
				}
				b.WriteString(litDSL(l))
			}
			b.WriteString("\n")
		}
		if len(r.Y) > 0 {
			b.WriteString("  then ")
			for j, l := range r.Y {
				if j > 0 {
					b.WriteString(sep)
				}
				b.WriteString(litDSL(l))
			}
			b.WriteString("\n")
		}
		b.WriteString("}\n")
	}
	return b.String()
}

func litDSL(l ged.Literal) string {
	return fmt.Sprintf("%s %s %s", l.Left, l.Op, l.Right)
}
