package gedio

import (
	"testing"
)

// FuzzParse drives the DSL parser with arbitrary inputs: it must never
// panic, and everything it accepts must survive a Format → Parse round
// trip. Run with `go test -fuzz=FuzzParse ./internal/gedio` to explore;
// the seed corpus runs under plain `go test`.
func FuzzParse(f *testing.F) {
	seeds := []string{
		phi1Src,
		`ged k on (x:album), (x':album) { when x.title = x'.title then x.id = x'.id }`,
		`ged d on (x:a) { then x.f = 0 or x.f = 1 }`,
		`ged b on (x:e) { when x.s > 100 and x.s <= 200 then false }`,
		`ged w on (y)-[is_a]->(x) { when x.c = x.c then y.c = x.c }`,
		`ged e on (x:a) { }`,
		`# only a comment`,
		`ged broken on (x:a { }`,
		`ged n on (x:a) { when x.a = -3.5 then x.b = "q\"uo" }`,
		"ged m on (x:a)-[e]->(y:b), (y)-[f]->(z) {\n when x.p = y.q\n then z.r = 1\n}",
	}
	for _, s := range seeds {
		f.Add(s)
	}
	f.Fuzz(func(t *testing.T, src string) {
		rules, err := Parse(src)
		if err != nil {
			return // rejection is fine; panics are not
		}
		// Accepted input must round-trip through the printer.
		text := Format(rules)
		again, err := Parse(text)
		if err != nil {
			t.Fatalf("printer output rejected: %v\ninput: %q\nprinted: %q", err, src, text)
		}
		if len(again) != len(rules) {
			t.Fatalf("rule count changed: %d -> %d", len(rules), len(again))
		}
	})
}

// FuzzUnmarshalGraph: the JSON reader must never panic, and accepted
// graphs must re-marshal.
func FuzzUnmarshalGraph(f *testing.F) {
	f.Add(`{"nodes":[{"id":"a","label":"x","attrs":{"k":1}}],"edges":[]}`)
	f.Add(`{"nodes":[{"id":"a","label":"x"},{"id":"b","label":"y"}],"edges":[{"src":"a","label":"e","dst":"b"}]}`)
	f.Add(`{}`)
	f.Add(`[1,2,3]`)
	f.Fuzz(func(t *testing.T, src string) {
		g, _, err := UnmarshalGraph([]byte(src))
		if err != nil {
			return
		}
		if _, err := MarshalGraph(g); err != nil {
			t.Fatalf("accepted graph failed to marshal: %v", err)
		}
	})
}
