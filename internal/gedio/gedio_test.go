package gedio

import (
	"testing"

	"gedlib/internal/gdc"
	"gedlib/internal/ged"
	"gedlib/internal/gedor"
	"gedlib/internal/graph"
	"gedlib/internal/reason"
)

func TestJSONRoundTrip(t *testing.T) {
	g := graph.New()
	a := g.AddNodeAttrs("person", map[graph.Attr]graph.Value{
		"name": graph.String("Ada"), "age": graph.Int(36)})
	b := g.AddNode("city")
	g.AddEdge(a, "born_in", b)

	data, err := MarshalGraph(g)
	if err != nil {
		t.Fatal(err)
	}
	g2, ids, err := UnmarshalGraph(data)
	if err != nil {
		t.Fatal(err)
	}
	if g2.NumNodes() != 2 || g2.NumEdges() != 1 {
		t.Fatal("round-trip shape wrong")
	}
	if v, ok := g2.Attr(ids["n0"], "name"); !ok || !v.Equal(graph.String("Ada")) {
		t.Error("string attr lost")
	}
	if v, ok := g2.Attr(ids["n0"], "age"); !ok || !v.Equal(graph.Int(36)) {
		t.Error("numeric attr lost")
	}
	if !g2.HasEdge(ids["n0"], "born_in", ids["n1"]) {
		t.Error("edge lost")
	}
	// Marshalling is deterministic.
	data2, _ := MarshalGraph(g)
	if string(data) != string(data2) {
		t.Error("marshal not deterministic")
	}
}

func TestUnmarshalErrors(t *testing.T) {
	cases := []string{
		`{"nodes": [{"id": "a", "label": "x"}, {"id": "a", "label": "y"}]}`,
		`{"nodes": [{"id": "a", "label": "x"}], "edges": [{"src": "a", "label": "e", "dst": "zz"}]}`,
		`{"nodes": [{"id": "a", "label": "x", "attrs": {"k": [1,2]}}]}`,
		`not json`,
	}
	for i, c := range cases {
		if _, _, err := UnmarshalGraph([]byte(c)); err == nil {
			t.Errorf("case %d: bad input accepted", i)
		}
	}
}

func TestUnmarshalBool(t *testing.T) {
	g, ids, err := UnmarshalGraph([]byte(`{"nodes": [{"id": "a", "label": "x", "attrs": {"fake": true}}]}`))
	if err != nil {
		t.Fatal(err)
	}
	if v, _ := g.Attr(ids["a"], "fake"); !v.Equal(graph.Int(1)) {
		t.Error("bool must encode as 1")
	}
}

const phi1Src = `
# a video game can only be created by programmers
ged phi1 on (x:person)-[create]->(y:product) {
  when y.type = "video game"
  then x.type = "programmer"
}
`

func TestParsePhi1(t *testing.T) {
	rules, err := Parse(phi1Src)
	if err != nil {
		t.Fatal(err)
	}
	if len(rules) != 1 {
		t.Fatalf("got %d rules", len(rules))
	}
	g, err := rules[0].AsGED()
	if err != nil {
		t.Fatal(err)
	}
	if g.Name != "phi1" || len(g.X) != 1 || len(g.Y) != 1 {
		t.Errorf("parsed GED wrong: %s", g)
	}
	if g.Pattern.Label("x") != "person" || g.Pattern.Label("y") != "product" {
		t.Error("pattern labels wrong")
	}
	if g.Classify() != ged.ClassGFD {
		t.Errorf("phi1 must be a GFD, got %v", g.Classify())
	}

	// End-to-end: catches the Ghetto Blaster inconsistency.
	gr := graph.New()
	p := gr.AddNodeAttrs("person", map[graph.Attr]graph.Value{"type": graph.String("psychologist")})
	pr := gr.AddNodeAttrs("product", map[graph.Attr]graph.Value{"type": graph.String("video game")})
	gr.AddEdge(p, "create", pr)
	if reason.Satisfies(gr, ged.Set{g}) {
		t.Error("parsed rule must catch the violation")
	}
}

func TestParseMultiEdgeChainAndSharedVars(t *testing.T) {
	src := `
ged twoCaps on (x:country)-[capital]->(y:city), (x)-[capital]->(z:city) {
  then y.name = z.name
}
`
	rules, err := Parse(src)
	if err != nil {
		t.Fatal(err)
	}
	g, err := rules[0].AsGED()
	if err != nil {
		t.Fatal(err)
	}
	if g.Pattern.NumVars() != 3 || len(g.Pattern.Edges()) != 2 {
		t.Errorf("pattern shape: %d vars %d edges", g.Pattern.NumVars(), len(g.Pattern.Edges()))
	}
}

func TestParseIDLiteralAndWildcard(t *testing.T) {
	src := `
ged key on (x:album), (y:album) {
  when x.title = y.title and x.release = y.release
  then x.id = y.id
}
ged inherit on (y)-[is_a]->(x) {
  when x.can_fly = x.can_fly
  then y.can_fly = x.can_fly
}
`
	rules, err := Parse(src)
	if err != nil {
		t.Fatal(err)
	}
	if len(rules) != 2 {
		t.Fatalf("got %d rules", len(rules))
	}
	key, err := rules[0].AsGED()
	if err != nil {
		t.Fatal(err)
	}
	if k, _ := key.Y[0].Kind(); k != ged.IDLiteral {
		t.Error("id literal not parsed")
	}
	inherit, err := rules[1].AsGED()
	if err != nil {
		t.Fatal(err)
	}
	if inherit.Pattern.Label("x") != graph.Wildcard {
		t.Error("unlabeled node must be wildcard")
	}
}

func TestParseFalse(t *testing.T) {
	src := `
ged noCycle on (x:person)-[child]->(y:person), (x)-[parent]->(y) {
  then false
}
`
	rules, err := Parse(src)
	if err != nil {
		t.Fatal(err)
	}
	g, err := rules[0].AsGED()
	if err != nil {
		t.Fatal(err)
	}
	if !g.IsForbidding() {
		t.Error("false must desugar to a forbidding constraint")
	}
}

func TestParseGDC(t *testing.T) {
	src := `
ged bound on (x:emp) {
  when x.salary > 100 and x.salary <= 200
  then false
}
`
	rules, err := Parse(src)
	if err != nil {
		t.Fatal(err)
	}
	r := rules[0]
	if !r.HasComparisons() {
		t.Fatal("comparisons not detected")
	}
	if _, err := r.AsGED(); err == nil {
		t.Error("comparison rule accepted as plain GED")
	}
	d, err := r.AsGDC()
	if err != nil {
		t.Fatal(err)
	}
	gr := graph.New()
	gr.AddNodeAttrs("emp", map[graph.Attr]graph.Value{"salary": graph.Int(150)})
	if gdc.Satisfies(gr, gdc.Set{d}) {
		t.Error("salary in (100, 200] must violate")
	}
	gr2 := graph.New()
	gr2.AddNodeAttrs("emp", map[graph.Attr]graph.Value{"salary": graph.Int(250)})
	if !gdc.Satisfies(gr2, gdc.Set{d}) {
		t.Error("salary 250 must satisfy")
	}
}

func TestParseDisjunction(t *testing.T) {
	src := `
ged domain on (x:account) {
  then x.flag = 0 or x.flag = 1
}
`
	rules, err := Parse(src)
	if err != nil {
		t.Fatal(err)
	}
	r := rules[0]
	if !r.Disjunctive {
		t.Fatal("disjunction not detected")
	}
	if _, err := r.AsGED(); err == nil {
		t.Error("disjunctive rule accepted as plain GED")
	}
	d, err := r.AsGEDor()
	if err != nil {
		t.Fatal(err)
	}
	gr := graph.New()
	gr.AddNodeAttrs("account", map[graph.Attr]graph.Value{"flag": graph.Int(1)})
	if !gedor.Satisfies(gr, gedor.Set{d}) {
		t.Error("flag = 1 must satisfy the domain")
	}
	gr.SetAttr(0, "flag", graph.Int(5))
	if gedor.Satisfies(gr, gedor.Set{d}) {
		t.Error("flag = 5 must violate the domain")
	}
}

func TestParseErrors(t *testing.T) {
	cases := []string{
		`ged on (x:a) { }`,              // missing name
		`ged r (x:a) { }`,               // missing on
		`ged r on (x:a) { when x.a = }`, // missing operand
		`ged r on (x:a { }`,             // bad pattern
		`ged r on (x:a) { then x.a = 1 or x.b = 2 and x.c = 3 }`,  // mixed and/or
		`ged r on (x:a) { when x.a = 1 or x.b = 2 then x.c = 3 }`, // or in when
		`ged r on (x:a)-[e]->(x:b) { }`,                           // relabel
		`ged r on (x:a) { when x.a = "unterminated }`,
	}
	for i, c := range cases {
		if _, err := Parse(c); err == nil {
			t.Errorf("case %d: bad input accepted: %s", i, c)
		}
	}
}

func TestFormatRoundTrip(t *testing.T) {
	rules, err := Parse(phi1Src)
	if err != nil {
		t.Fatal(err)
	}
	text := Format(rules)
	rules2, err := Parse(text)
	if err != nil {
		t.Fatalf("printer output does not re-parse: %v\n%s", err, text)
	}
	g1, _ := rules[0].AsGED()
	g2, _ := rules2[0].AsGED()
	if g1.String() != g2.String() {
		t.Errorf("round trip changed the rule:\n%s\nvs\n%s", g1, g2)
	}
}

func TestParseMultipleRules(t *testing.T) {
	src := phi1Src + `
ged second on (a:x) {
  then a.k = 1
}
`
	rules, err := Parse(src)
	if err != nil {
		t.Fatal(err)
	}
	if len(rules) != 2 {
		t.Fatalf("got %d rules, want 2", len(rules))
	}
	set, err := GEDs(rules)
	if err != nil {
		t.Fatal(err)
	}
	if len(set) != 2 {
		t.Error("GEDs conversion lost rules")
	}
}

func TestParsePrimedVars(t *testing.T) {
	// GKey copies use primed variables; the lexer must accept them.
	src := `
ged k on (x:album), (x':album) {
  when x.title = x'.title
  then x.id = x'.id
}
`
	rules, err := Parse(src)
	if err != nil {
		t.Fatal(err)
	}
	g, err := rules[0].AsGED()
	if err != nil {
		t.Fatal(err)
	}
	if !ged.IsGKey(g) {
		t.Error("parsed primed rule should be recognized as a GKey")
	}
}
