// Package gedio provides the surface syntax of the library: JSON
// serialization for property graphs, and a small Cypher-flavoured text
// DSL for dependencies (GEDs, GDCs and GED∨s) used by the command-line
// tools and examples.
package gedio

import (
	"encoding/json"
	"fmt"
	"sort"

	"gedlib/internal/graph"
)

// jsonGraph is the wire format of a property graph.
type jsonGraph struct {
	Nodes []jsonNode `json:"nodes"`
	Edges []jsonEdge `json:"edges"`
}

type jsonNode struct {
	ID    string                     `json:"id"`
	Label string                     `json:"label"`
	Attrs map[string]json.RawMessage `json:"attrs,omitempty"`
}

type jsonEdge struct {
	Src   string `json:"src"`
	Label string `json:"label"`
	Dst   string `json:"dst"`
}

// MarshalGraph renders g as JSON. Node ids are written as "n<i>" in
// insertion order, so marshalling is deterministic.
func MarshalGraph(g *graph.Graph) ([]byte, error) {
	var jg jsonGraph
	for _, id := range g.Nodes() {
		n := jsonNode{ID: fmt.Sprintf("n%d", id), Label: string(g.Label(id))}
		attrs := g.Attrs(id)
		if len(attrs) > 0 {
			n.Attrs = make(map[string]json.RawMessage, len(attrs))
			names := make([]string, 0, len(attrs))
			for a := range attrs {
				names = append(names, string(a))
			}
			sort.Strings(names)
			for _, a := range names {
				raw, err := marshalValue(attrs[graph.Attr(a)])
				if err != nil {
					return nil, err
				}
				n.Attrs[a] = raw
			}
		}
		jg.Nodes = append(jg.Nodes, n)
	}
	for _, e := range g.Edges() {
		jg.Edges = append(jg.Edges, jsonEdge{
			Src: fmt.Sprintf("n%d", e.Src), Label: string(e.Label), Dst: fmt.Sprintf("n%d", e.Dst),
		})
	}
	return json.MarshalIndent(jg, "", "  ")
}

func marshalValue(v graph.Value) (json.RawMessage, error) {
	if v.IsNumber() {
		return json.Marshal(v.Num())
	}
	return json.Marshal(v.Str())
}

// UnmarshalGraph parses the JSON wire format. Node ids may be arbitrary
// strings; edges refer to them. Attribute values may be JSON strings,
// numbers or booleans (booleans become 0/1 numbers, matching the
// paper's examples).
func UnmarshalGraph(data []byte) (*graph.Graph, map[string]graph.NodeID, error) {
	var jg jsonGraph
	if err := json.Unmarshal(data, &jg); err != nil {
		return nil, nil, fmt.Errorf("gedio: %w", err)
	}
	g := graph.New()
	ids := make(map[string]graph.NodeID, len(jg.Nodes))
	for _, n := range jg.Nodes {
		if _, dup := ids[n.ID]; dup {
			return nil, nil, fmt.Errorf("gedio: duplicate node id %q", n.ID)
		}
		id := g.AddNode(graph.Label(n.Label))
		ids[n.ID] = id
		names := make([]string, 0, len(n.Attrs))
		for a := range n.Attrs {
			names = append(names, a)
		}
		sort.Strings(names)
		for _, a := range names {
			v, err := unmarshalValue(n.Attrs[a])
			if err != nil {
				return nil, nil, fmt.Errorf("gedio: node %q attr %q: %w", n.ID, a, err)
			}
			g.SetAttr(id, graph.Attr(a), v)
		}
	}
	for i, e := range jg.Edges {
		src, ok := ids[e.Src]
		if !ok {
			return nil, nil, fmt.Errorf("gedio: edge %d: unknown source %q", i, e.Src)
		}
		dst, ok := ids[e.Dst]
		if !ok {
			return nil, nil, fmt.Errorf("gedio: edge %d: unknown target %q", i, e.Dst)
		}
		g.AddEdge(src, graph.Label(e.Label), dst)
	}
	return g, ids, nil
}

func unmarshalValue(raw json.RawMessage) (graph.Value, error) {
	var s string
	if err := json.Unmarshal(raw, &s); err == nil {
		return graph.String(s), nil
	}
	var f float64
	if err := json.Unmarshal(raw, &f); err == nil {
		return graph.Number(f), nil
	}
	var b bool
	if err := json.Unmarshal(raw, &b); err == nil {
		return graph.Bool(b), nil
	}
	return graph.Value{}, fmt.Errorf("unsupported value %s", raw)
}
