package gedio

import (
	"fmt"
	"math/rand"
	"testing"

	"gedlib/internal/ged"
	"gedlib/internal/graph"
	"gedlib/internal/pattern"
)

// randomRule builds a random parsed rule directly (bypassing the
// parser), to exercise Format → Parse round-trips from arbitrary inputs.
func randomRule(rng *rand.Rand, idx int) *Rule {
	labels := []graph.Label{"person", "product", "account", graph.Wildcard}
	attrs := []graph.Attr{"name", "age", "kind"}
	edges := []graph.Label{"knows", "likes", "owns"}
	p := pattern.New()
	n := 1 + rng.Intn(3)
	vars := make([]pattern.Var, n)
	for i := range vars {
		vars[i] = pattern.Var(fmt.Sprintf("v%d", i))
		p.AddVar(vars[i], labels[rng.Intn(len(labels))])
	}
	for i := 1; i < n; i++ {
		if rng.Intn(3) > 0 {
			p.AddEdge(vars[rng.Intn(i)], edges[rng.Intn(len(edges))], vars[i])
		}
	}
	rv := func() pattern.Var { return vars[rng.Intn(n)] }
	ra := func() graph.Attr { return attrs[rng.Intn(len(attrs))] }
	randLit := func(ops bool) ged.Literal {
		op := ged.OpEq
		if ops {
			op = []ged.Op{ged.OpEq, ged.OpNe, ged.OpLt, ged.OpLe, ged.OpGt, ged.OpGe}[rng.Intn(6)]
		}
		switch rng.Intn(3) {
		case 0:
			if rng.Intn(2) == 0 {
				return ged.Cmp(rv(), ra(), op, graph.Int(rng.Intn(10)))
			}
			return ged.Cmp(rv(), ra(), op, graph.String(fmt.Sprintf("s%d", rng.Intn(5))))
		case 1:
			return ged.CmpVars(rv(), ra(), op, rv(), ra())
		default:
			return ged.IDLit(rv(), rv())
		}
	}
	r := &Rule{Name: fmt.Sprintf("r%d", idx), Pattern: p}
	useOps := rng.Intn(3) == 0
	for i := 0; i < rng.Intn(3); i++ {
		r.X = append(r.X, randLit(useOps))
	}
	k := 1 + rng.Intn(2)
	for i := 0; i < k; i++ {
		r.Y = append(r.Y, randLit(false))
	}
	if k > 1 && rng.Intn(2) == 0 {
		r.Disjunctive = true
	}
	return r
}

// TestFormatParseRoundTripRandom: Format output always re-parses to an
// equivalent rule.
func TestFormatParseRoundTripRandom(t *testing.T) {
	rng := rand.New(rand.NewSource(73))
	for trial := 0; trial < 150; trial++ {
		r := randomRule(rng, trial)
		text := Format([]*Rule{r})
		parsed, err := Parse(text)
		if err != nil {
			t.Fatalf("trial %d: printer output rejected: %v\n%s", trial, err, text)
		}
		if len(parsed) != 1 {
			t.Fatalf("trial %d: %d rules from one", trial, len(parsed))
		}
		p := parsed[0]
		if p.Name != r.Name || p.Disjunctive != r.Disjunctive {
			t.Fatalf("trial %d: header changed\n%s", trial, text)
		}
		if len(p.X) != len(r.X) || len(p.Y) != len(r.Y) {
			t.Fatalf("trial %d: literal counts changed\n%s", trial, text)
		}
		for i := range r.X {
			if p.X[i] != r.X[i] {
				t.Fatalf("trial %d: X[%d] changed: %v vs %v\n%s", trial, i, r.X[i], p.X[i], text)
			}
		}
		for i := range r.Y {
			if p.Y[i] != r.Y[i] {
				t.Fatalf("trial %d: Y[%d] changed: %v vs %v\n%s", trial, i, r.Y[i], p.Y[i], text)
			}
		}
		// Patterns: same vars, labels and edge multiset.
		if p.Pattern.NumVars() != r.Pattern.NumVars() || len(p.Pattern.Edges()) != len(r.Pattern.Edges()) {
			t.Fatalf("trial %d: pattern shape changed\n%s", trial, text)
		}
		for _, v := range r.Pattern.Vars() {
			if p.Pattern.Label(v) != r.Pattern.Label(v) {
				t.Fatalf("trial %d: label of %s changed\n%s", trial, v, text)
			}
		}
	}
}

// TestJSONRoundTripRandom: MarshalGraph ∘ UnmarshalGraph is the identity
// on random graphs.
func TestJSONRoundTripRandom(t *testing.T) {
	rng := rand.New(rand.NewSource(79))
	for trial := 0; trial < 50; trial++ {
		g := graph.New()
		n := 1 + rng.Intn(8)
		for i := 0; i < n; i++ {
			id := g.AddNode(graph.Label(fmt.Sprintf("l%d", rng.Intn(3))))
			if rng.Intn(2) == 0 {
				g.SetAttr(id, "num", graph.Number(rng.Float64()*100))
			}
			if rng.Intn(2) == 0 {
				g.SetAttr(id, "str", graph.String(fmt.Sprintf("v%d", rng.Intn(5))))
			}
		}
		for i := 0; i < 2*n; i++ {
			if rng.Intn(2) == 0 {
				g.AddEdge(graph.NodeID(rng.Intn(n)), "e", graph.NodeID(rng.Intn(n)))
			}
		}
		data, err := MarshalGraph(g)
		if err != nil {
			t.Fatal(err)
		}
		g2, _, err := UnmarshalGraph(data)
		if err != nil {
			t.Fatal(err)
		}
		if g.String() != g2.String() {
			t.Fatalf("trial %d: round trip changed the graph:\n%s\nvs\n%s", trial, g, g2)
		}
	}
}
