// Package gedor implements GED∨s — GEDs with limited disjunction — from
// Section 7.2 of "Dependencies for Graphs" (Fan & Lu, PODS 2017).
//
// A GED∨ has the same syntactic form Q[x̄](X → Y) as a GED, but Y is
// interpreted as a disjunction: a match satisfying X must satisfy at
// least one literal of Y. GED∨s subsume GEDs (each conjunct becomes its
// own GED∨) and can express domain constraints such as
// Q[x](∅ → x.A = 0 ∨ x.A = 1) that plain GEDs cannot (Example 10).
//
// Validation is exact (coNP-complete, Theorem 9). Satisfiability and
// implication are decided by a branching chase that mirrors their
// Σᵖ₂/Πᵖ₂ structure: at every match with a satisfied antecedent and no
// satisfied disjunct, the search branches on which disjunct to enforce.
// Positive satisfiability answers are certified with the validator;
// non-implication answers with a certified countermodel.
package gedor

import (
	"gedlib/internal/chase"
	"gedlib/internal/ged"
	"gedlib/internal/graph"
	"gedlib/internal/pattern"
)

// GEDor is a disjunctive dependency Q[x̄](X → l₁ ∨ ... ∨ l_k).
type GEDor struct {
	// Name is an optional identifier.
	Name string
	// Pattern is the topological constraint Q[x̄].
	Pattern *pattern.Pattern
	// X is the (conjunctive) antecedent.
	X []ged.Literal
	// Y is the disjunctive consequent. An empty Y is the constant false,
	// making the GED∨ a forbidding constraint.
	Y []ged.Literal
}

// New returns the GED∨ Q[x̄](X → ∨Y).
func New(name string, q *pattern.Pattern, x, y []ged.Literal) *GEDor {
	return &GEDor{Name: name, Pattern: q, X: x, Y: y}
}

// FromGED splits a GED into the equivalent set of GED∨s, one per
// consequent literal (Section 7.2).
func FromGED(g *ged.GED) []*GEDor {
	if len(g.Y) == 0 {
		return []*GEDor{New(g.Name, g.Pattern, g.X, []ged.Literal{trivialLit(g.Pattern)})}
	}
	out := make([]*GEDor, 0, len(g.Y))
	for i, l := range g.Y {
		name := g.Name
		if len(g.Y) > 1 {
			name = g.Name + "#" + string(rune('0'+i))
		}
		out = append(out, New(name, g.Pattern, g.X, []ged.Literal{l}))
	}
	return out
}

// trivialLit is an always-satisfiable literal anchored at the pattern's
// first variable, standing in for an empty conjunctive consequent.
func trivialLit(q *pattern.Pattern) ged.Literal {
	x := q.Vars()[0]
	return ged.IDLit(x, x)
}

// Validate checks well-formedness (same literal forms as GEDs).
func (g *GEDor) Validate() error {
	return ged.New(g.Name, g.Pattern, g.X, g.Y).Validate()
}

// String renders the GED∨ with ∨-separated consequents.
func (g *GEDor) String() string {
	s := ged.New(g.Name, g.Pattern, g.X, nil).String()
	// Render Y by hand to show the disjunction.
	out := s[:len(s)-len("true)")]
	if len(g.Y) == 0 {
		return out + "false)"
	}
	for i, l := range g.Y {
		if i > 0 {
			out += " || "
		}
		out += l.String()
	}
	return out + ")"
}

// Set is a finite set Σ of GED∨s.
type Set []*GEDor

// Validate checks every member.
func (s Set) Validate() error {
	for _, g := range s {
		if err := g.Validate(); err != nil {
			return err
		}
	}
	return nil
}

// CanonicalGraph builds G_Σ.
func (s Set) CanonicalGraph() (*graph.Graph, []map[pattern.Var]graph.NodeID) {
	g := graph.New()
	maps := make([]map[pattern.Var]graph.NodeID, len(s))
	for i, d := range s {
		pg, vm := d.Pattern.ToGraph()
		nm := g.DisjointUnion(pg)
		m := make(map[pattern.Var]graph.NodeID, len(vm))
		for v, id := range vm {
			m[v] = nm[id]
		}
		maps[i] = m
	}
	return g, maps
}

// Violation is a match satisfying X with every disjunct of Y false.
type Violation struct {
	GEDor *GEDor
	Match pattern.Match
}

// Validate finds violations of Σ in G, up to limit (≤ 0 means all).
func Validate(g *graph.Graph, sigma Set, limit int) []Violation {
	var out []Violation
	for _, d := range sigma {
		d := d
		pattern.ForEachMatch(d.Pattern, g, func(m pattern.Match) bool {
			for _, l := range d.X {
				if !holdsInGraph(g, l, m) {
					return true
				}
			}
			for _, l := range d.Y {
				if holdsInGraph(g, l, m) {
					return true
				}
			}
			out = append(out, Violation{GEDor: d, Match: m.Clone()})
			return limit <= 0 || len(out) < limit
		})
		if limit > 0 && len(out) >= limit {
			break
		}
	}
	return out
}

// Satisfies reports G ⊨ Σ.
func Satisfies(g *graph.Graph, sigma Set) bool {
	return len(Validate(g, sigma, 1)) == 0
}

func holdsInGraph(g *graph.Graph, l ged.Literal, m pattern.Match) bool {
	k, ok := l.Kind()
	if !ok {
		panic("gedor: non-GED literal")
	}
	switch k {
	case ged.ConstLiteral:
		v, ok := g.Attr(m[l.Left.Var], l.Left.Attr)
		return ok && v.Equal(l.Right.Const)
	case ged.VarLiteral:
		v1, ok1 := g.Attr(m[l.Left.Var], l.Left.Attr)
		v2, ok2 := g.Attr(m[l.Right.Var], l.Right.Attr)
		return ok1 && ok2 && v1.Equal(v2)
	default:
		return m[l.Left.Var] == m[l.Right.Var]
	}
}

// DomainConstraint returns the GED∨ of Example 10: every node labeled
// tau has attribute a with a value among the given constants.
func DomainConstraint(tau graph.Label, a graph.Attr, domain ...graph.Value) *GEDor {
	q := pattern.New()
	q.AddVar("x", tau)
	var ys []ged.Literal
	for _, v := range domain {
		ys = append(ys, ged.ConstLit("x", a, v))
	}
	return New("domain", q, nil, ys)
}

// evalSeeds evaluates a literal under a seed-built equivalence relation.
func evalLit(eq *chase.Eq, l ged.Literal, m map[pattern.Var]graph.NodeID) bool {
	return chase.Holds(eq, l, m)
}
