package gedor

import (
	"fmt"
	"math/rand"
	"strings"
	"testing"

	"gedlib/internal/ged"
	"gedlib/internal/graph"
	"gedlib/internal/pattern"
	"gedlib/internal/reason"
)

func nodeQ(label graph.Label) *pattern.Pattern {
	q := pattern.New()
	q.AddVar("x", label)
	return q
}

func TestExample10DomainConstraint(t *testing.T) {
	// ψ: Qe[x](∅ → x.A = 0 ∨ x.A = 1).
	psi := DomainConstraint("tau", "A", graph.Int(0), graph.Int(1))

	g := graph.New()
	n := g.AddNodeAttrs("tau", map[graph.Attr]graph.Value{"A": graph.Int(1)})
	if !Satisfies(g, Set{psi}) {
		t.Error("A = 1 must satisfy the domain constraint")
	}
	g.SetAttr(n, "A", graph.Int(2))
	if Satisfies(g, Set{psi}) {
		t.Error("A = 2 must violate")
	}
	// Unlike the GDC pair of Example 9, the single GED∨ also forces the
	// attribute to exist.
	g2 := graph.New()
	g2.AddNode("tau")
	if Satisfies(g2, Set{psi}) {
		t.Error("missing A must violate the disjunction")
	}

	r := CheckSat(Set{psi})
	if r.Satisfiable != True {
		t.Fatalf("domain constraint must be satisfiable, got %v", r.Satisfiable)
	}
	if !Satisfies(r.Model, Set{psi}) {
		t.Error("witness violates ψ")
	}
	if v, ok := r.Model.Attr(0, "A"); !ok || !(v.Equal(graph.Int(0)) || v.Equal(graph.Int(1))) {
		t.Errorf("witness A = %v outside {0, 1}", v)
	}
}

func TestCheckSatForbidding(t *testing.T) {
	// An empty disjunction forbids the pattern outright; a Σ whose
	// pattern must match (strong satisfiability) is then unsatisfiable.
	forbid := New("forbid", nodeQ("tau"), nil, nil)
	if r := CheckSat(Set{forbid}); r.Satisfiable != False {
		t.Errorf("forbidding constraint alone must be unsatisfiable, got %v", r.Satisfiable)
	}
}

func TestCheckSatBranchingNeeded(t *testing.T) {
	// ψ1: x.A = 0 ∨ x.A = 1; ψ2: x.A = 1 ∨ x.A = 2. Only A = 1 satisfies
	// both, so the search must discard the first branch of ψ1 or commit
	// to the shared disjunct.
	psi1 := New("p1", nodeQ("tau"), nil, []ged.Literal{
		ged.ConstLit("x", "A", graph.Int(0)), ged.ConstLit("x", "A", graph.Int(1))})
	psi2 := New("p2", nodeQ("tau"), nil, []ged.Literal{
		ged.ConstLit("x", "A", graph.Int(1)), ged.ConstLit("x", "A", graph.Int(2))})
	r := CheckSat(Set{psi1, psi2})
	if r.Satisfiable != True {
		t.Fatalf("ψ1 ∧ ψ2 must be satisfiable (A = 1), got %v", r.Satisfiable)
	}
	if !Satisfies(r.Model, Set{psi1, psi2}) {
		t.Error("witness violates the set")
	}

	// Disjoint domains are unsatisfiable.
	psi3 := New("p3", nodeQ("tau"), nil, []ged.Literal{
		ged.ConstLit("x", "A", graph.Int(7)), ged.ConstLit("x", "A", graph.Int(8))})
	if r := CheckSat(Set{psi1, psi3}); r.Satisfiable != False {
		t.Errorf("disjoint domains must be unsatisfiable, got %v", r.Satisfiable)
	}
}

func TestImpliesDomainWeakening(t *testing.T) {
	// A ∈ {0} implies A ∈ {0, 1} but not vice versa.
	narrow := New("n", nodeQ("tau"), nil, []ged.Literal{ged.ConstLit("x", "A", graph.Int(0))})
	wide := New("w", nodeQ("tau"), nil, []ged.Literal{
		ged.ConstLit("x", "A", graph.Int(0)), ged.ConstLit("x", "A", graph.Int(1))})
	if r := Implies(Set{narrow}, wide); r.Implied != True {
		t.Errorf("narrow must imply wide, got %v", r.Implied)
	}
	r := Implies(Set{wide}, narrow)
	if r.Implied != False {
		t.Fatalf("wide must not imply narrow, got %v", r.Implied)
	}
	if r.Counterexample == nil || !Satisfies(r.Counterexample, Set{wide}) {
		t.Error("countermodel missing or violates Σ")
	}
	if len(Validate(r.Counterexample, Set{narrow}, 1)) == 0 {
		t.Error("countermodel does not violate φ")
	}
}

func TestImpliesReflexive(t *testing.T) {
	psi := DomainConstraint("tau", "A", graph.Int(0), graph.Int(1))
	if r := Implies(Set{psi}, psi); r.Implied != True {
		t.Errorf("Σ must imply its own member, got %v", r.Implied)
	}
}

func TestImpliesThroughCaseSplit(t *testing.T) {
	// Σ: A ∈ {0, 1}; in either case B = 5 (two conditional GED∨s).
	// Then Σ implies B = 5.
	dom := DomainConstraint("tau", "A", graph.Int(0), graph.Int(1))
	c0 := New("c0", nodeQ("tau"),
		[]ged.Literal{ged.ConstLit("x", "A", graph.Int(0))},
		[]ged.Literal{ged.ConstLit("x", "B", graph.Int(5))})
	c1 := New("c1", nodeQ("tau"),
		[]ged.Literal{ged.ConstLit("x", "A", graph.Int(1))},
		[]ged.Literal{ged.ConstLit("x", "B", graph.Int(5))})
	phi := New("phi", nodeQ("tau"), nil, []ged.Literal{ged.ConstLit("x", "B", graph.Int(5))})
	if r := Implies(Set{dom, c0, c1}, phi); r.Implied != True {
		t.Errorf("case split must yield B = 5 on every branch, got %v", r.Implied)
	}
	// Dropping one case loses the implication.
	r := Implies(Set{dom, c0}, phi)
	if r.Implied != False {
		t.Errorf("missing case must break the implication, got %v", r.Implied)
	}
}

func TestFromGED(t *testing.T) {
	q := nodeQ("p")
	g := ged.New("g", q,
		[]ged.Literal{ged.ConstLit("x", "a", graph.Int(1))},
		[]ged.Literal{ged.ConstLit("x", "b", graph.Int(2)), ged.ConstLit("x", "c", graph.Int(3))})
	split := FromGED(g)
	if len(split) != 2 {
		t.Fatalf("split into %d, want 2", len(split))
	}
	for _, s := range split {
		if len(s.Y) != 1 {
			t.Error("each split member must have a single disjunct")
		}
	}
	// Empty-consequent GED becomes a trivially-true GED∨.
	empty := ged.New("e", q, nil, nil)
	sp := FromGED(empty)
	if len(sp) != 1 || len(sp[0].Y) != 1 {
		t.Fatal("empty consequent must become one trivial disjunct")
	}
	gr := graph.New()
	gr.AddNode("p")
	if !Satisfies(gr, Set{sp[0]}) {
		t.Error("trivial disjunct must hold")
	}
}

// TestGEDorSatAgreesWithGEDSat: on singleton-consequent GED∨s (i.e.
// plain GEDs), the branching chase must agree with the exact chase.
func TestGEDorSatAgreesWithGEDSat(t *testing.T) {
	rng := rand.New(rand.NewSource(43))
	for trial := 0; trial < 100; trial++ {
		sigma := randomGEDSigma(rng)
		want := reason.CheckSat(sigma).Satisfiable
		var ds Set
		for _, d := range sigma {
			ds = append(ds, FromGED(d)...)
		}
		r := CheckSat(ds)
		if r.Satisfiable == Unknown {
			t.Fatalf("trial %d: unexpected Unknown", trial)
		}
		if (r.Satisfiable == True) != want {
			t.Fatalf("trial %d: disagreement: got %v want %v\nΣ=%v", trial, r.Satisfiable, want, sigma)
		}
	}
}

// TestGEDorImplAgreesWithGEDImpl cross-checks implication on the
// singleton fragment.
func TestGEDorImplAgreesWithGEDImpl(t *testing.T) {
	rng := rand.New(rand.NewSource(47))
	for trial := 0; trial < 100; trial++ {
		sigma := randomGEDSigma(rng)
		phiGED := randomGEDSigma(rng)[0]
		if len(phiGED.Y) != 1 {
			continue // the split-GED equivalence needs a single literal
		}
		want := reason.Implies(sigma, phiGED).Implied
		var ds Set
		for _, d := range sigma {
			ds = append(ds, FromGED(d)...)
		}
		phi := New(phiGED.Name, phiGED.Pattern, phiGED.X, phiGED.Y)
		r := Implies(ds, phi)
		if r.Implied == Unknown {
			t.Fatalf("trial %d: unexpected Unknown", trial)
		}
		if (r.Implied == True) != want {
			t.Fatalf("trial %d: disagreement: got %v want %v\nΣ=%v\nφ=%v", trial, r.Implied, want, sigma, phiGED)
		}
	}
}

func TestGEDorString(t *testing.T) {
	psi := DomainConstraint("tau", "A", graph.Int(0), graph.Int(1))
	s := psi.String()
	if !strings.Contains(s, "||") {
		t.Errorf("rendered GED∨ must show the disjunction: %s", s)
	}
	forbid := New("f", nodeQ("t"), nil, nil)
	if !strings.Contains(forbid.String(), "false") {
		t.Errorf("empty disjunction must render as false: %s", forbid.String())
	}
}

func randomGEDSigma(rng *rand.Rand) ged.Set {
	labels := []graph.Label{"a", "b"}
	attrs := []graph.Attr{"p", "q"}
	var sigma ged.Set
	for i := 0; i < 1+rng.Intn(2); i++ {
		q := pattern.New()
		q.AddVar("x", labels[rng.Intn(len(labels))])
		q.AddVar("y", labels[rng.Intn(len(labels))])
		if rng.Intn(2) == 0 {
			q.AddEdge("x", "e", "y")
		}
		var xs, ys []ged.Literal
		switch rng.Intn(3) {
		case 0:
			xs = append(xs, ged.VarLit("x", attrs[0], "y", attrs[0]))
		case 1:
			xs = append(xs, ged.ConstLit("x", attrs[rng.Intn(2)], graph.Int(rng.Intn(2))))
		}
		switch rng.Intn(4) {
		case 0:
			ys = append(ys, ged.IDLit("x", "y"))
		case 1:
			ys = append(ys, ged.ConstLit("y", attrs[rng.Intn(2)], graph.Int(rng.Intn(2))))
		case 2:
			ys = append(ys, ged.VarLit("x", attrs[1], "y", attrs[1]))
		case 3:
			ys = append(ys, ged.ConstLit("x", attrs[0], graph.Int(rng.Intn(2))),
				ged.ConstLit("y", attrs[0], graph.Int(rng.Intn(2))))
		}
		sigma = append(sigma, ged.New(fmt.Sprintf("r%d", i), q, xs, ys))
	}
	return sigma
}
