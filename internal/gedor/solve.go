package gedor

import (
	"gedlib/internal/chase"
	"gedlib/internal/graph"
	"gedlib/internal/pattern"
)

// Verdict is a three-valued answer, as in package gdc.
type Verdict uint8

const (
	// False: exhaustively refuted.
	False Verdict = iota
	// True: certified by a witness.
	True
	// Unknown: the search was cut off.
	Unknown
)

// String names the verdict.
func (v Verdict) String() string {
	switch v {
	case True:
		return "true"
	case False:
		return "false"
	default:
		return "unknown"
	}
}

// defaultBudget bounds the number of branch-chase states explored.
const defaultBudget = 100000

// SatResult reports a GED∨ satisfiability analysis.
type SatResult struct {
	// Satisfiable is the verdict; True is certified by Model.
	Satisfiable Verdict
	// Model is a model of Σ when satisfiable.
	Model *graph.Graph
}

// ImplResult reports a GED∨ implication analysis.
type ImplResult struct {
	// Implied is the verdict; False is certified by Counterexample.
	Implied Verdict
	// Counterexample satisfies Σ and violates φ when Implied is False.
	Counterexample *graph.Graph
}

// branchState is one node of the disjunctive chase tree: the seed
// literals committed so far over a fixed base graph.
type branchState struct {
	base  *graph.Graph
	seeds []chase.Seed
}

func (b branchState) with(s chase.Seed) branchState {
	return branchState{base: b.base, seeds: append(append([]chase.Seed{}, b.seeds...), s)}
}

// pending is a match whose antecedent holds but no disjunct does.
type pending struct {
	d     *GEDor
	match map[pattern.Var]graph.NodeID
}

// findPending rebuilds the relation for b and locates the first pending
// obligation, if any. It returns the chase result for reuse.
func findPending(b branchState, sigma Set) (*chase.Result, *pending) {
	res := chase.RunSeeded(b.base, nil, b.seeds)
	if !res.Consistent() {
		return res, nil
	}
	co := res.Coercion
	var found *pending
	for _, d := range sigma {
		d := d
		pattern.ForEachMatch(d.Pattern, co.Graph, func(m pattern.Match) bool {
			base := make(map[pattern.Var]graph.NodeID, len(m))
			for v, cn := range m {
				base[v] = co.RepOf[cn]
			}
			for _, l := range d.X {
				if !evalLit(res.Eq, l, base) {
					return true
				}
			}
			for _, l := range d.Y {
				if evalLit(res.Eq, l, base) {
					return true
				}
			}
			found = &pending{d: d, match: base}
			return false
		})
		if found != nil {
			break
		}
	}
	return res, found
}

// solveSat explores the disjunctive chase tree looking for a consistent
// terminal branch.
func solveSat(b branchState, sigma Set, budget *int, depth int) (Verdict, *graph.Graph) {
	if *budget <= 0 || depth > 200 {
		return Unknown, nil
	}
	*budget--
	res, p := findPending(b, sigma)
	if !res.Consistent() {
		return False, nil
	}
	if p == nil {
		// Terminal branch: materialize and certify.
		model := res.Materialize()
		if Satisfies(model, sigma) {
			return True, model
		}
		return Unknown, nil // materialization artifact; should not occur
	}
	sawUnknown := false
	for _, l := range p.d.Y {
		v, m := solveSat(b.with(chase.Seed{Literal: l, Nodes: p.match}), sigma, budget, depth+1)
		switch v {
		case True:
			return True, m
		case Unknown:
			sawUnknown = true
		}
	}
	if sawUnknown {
		return Unknown, nil
	}
	// Every disjunct choice died; a forbidding GED∨ (empty disjunction)
	// reaches here directly.
	return False, nil
}

// CheckSat decides (three-valued) whether Σ has a model — a graph
// satisfying Σ in which every pattern of Σ has a match — by a branching
// chase over the canonical graph G_Σ. Disjunction breaks the
// Church-Rosser property, so the search tries every disjunct choice;
// a consistent terminal branch materializes into a certified model
// (mirroring Theorem 2 branch-wise), and Σ is unsatisfiable when every
// branch dies (Theorem 9's Σᵖ₂ search, with the inner ∀ discharged by
// the validator).
func CheckSat(sigma Set) *SatResult {
	gs, _ := sigma.CanonicalGraph()
	budget := defaultBudget
	v, m := solveSat(branchState{base: gs}, sigma, &budget, 0)
	return &SatResult{Satisfiable: v, Model: m}
}

// Implies decides (three-valued) whether Σ ⊨ φ: the branching chase of
// φ's canonical graph from Eq_X by Σ must, on every consistent terminal
// branch, satisfy some disjunct of φ's consequent on the identity
// embedding. A terminal branch that does not yields a certified
// countermodel.
func Implies(sigma Set, phi *GEDor) *ImplResult {
	gq, vm := phi.Pattern.ToGraph()
	var seeds []chase.Seed
	for _, l := range phi.X {
		seeds = append(seeds, chase.SeedOf(l, vm))
	}
	budget := defaultBudget
	v, m := refute(branchState{base: gq, seeds: seeds}, sigma, phi, vm, &budget, 0)
	switch v {
	case True:
		return &ImplResult{Implied: False, Counterexample: m}
	case Unknown:
		return &ImplResult{Implied: Unknown}
	default:
		return &ImplResult{Implied: True}
	}
}

// refute searches for a consistent terminal branch whose identity
// embedding of φ's pattern satisfies X but no disjunct of Y.
func refute(b branchState, sigma Set, phi *GEDor, vm map[pattern.Var]graph.NodeID, budget *int, depth int) (Verdict, *graph.Graph) {
	if *budget <= 0 || depth > 200 {
		return Unknown, nil
	}
	*budget--
	res, p := findPending(b, sigma)
	if !res.Consistent() {
		return False, nil // vacuous branch: no countermodel here
	}
	if p == nil {
		// Terminal: does the identity embedding falsify φ?
		for _, l := range phi.Y {
			if evalLit(res.Eq, l, vm) {
				return False, nil // φ holds on this branch
			}
		}
		model := res.Materialize()
		// Certify: the countermodel must satisfy Σ and violate φ.
		if !Satisfies(model, sigma) {
			return Unknown, nil
		}
		if len(Validate(model, Set{phi}, 1)) == 0 {
			return Unknown, nil
		}
		return True, model
	}
	sawUnknown := false
	for _, l := range p.d.Y {
		v, m := refute(b.with(chase.Seed{Literal: l, Nodes: p.match}), sigma, phi, vm, budget, depth+1)
		switch v {
		case True:
			return True, m
		case Unknown:
			sawUnknown = true
		}
	}
	if sawUnknown {
		return Unknown, nil
	}
	return False, nil
}
