package gen

import (
	"math/rand"
	"testing"

	"gedlib/internal/ged"
	"gedlib/internal/graph"
	"gedlib/internal/reason"
)

func TestGraphFamiliesChromatic(t *testing.T) {
	cases := []struct {
		name string
		g    *UGraph
		chi3 bool // 3-colorable?
	}{
		{"K3", Complete(3), true},
		{"K4", Complete(4), false},
		{"K5", Complete(5), false},
		{"C4", Cycle(4), true},
		{"C5", Cycle(5), true},
		{"C7", Cycle(7), true},
		{"W4", Wheel(4), true},  // even wheel: 3-chromatic
		{"W5", Wheel(5), false}, // odd wheel: 4-chromatic
		{"W7", Wheel(7), false},
		{"Petersen", Petersen(), true},
		{"K33", CompleteBipartite(3, 3), true},
		{"Grotzsch", Grotzsch(), false}, // triangle-free, 4-chromatic
		{"Path5", Path(5), true},
	}
	for _, c := range cases {
		if got := c.g.Colorable(3); got != c.chi3 {
			t.Errorf("%s: Colorable(3) = %v, want %v", c.name, got, c.chi3)
		}
	}
	// Sanity on 2-colorability.
	if Cycle(5).Colorable(2) {
		t.Error("odd cycle must not be 2-colorable")
	}
	if !CompleteBipartite(2, 3).Colorable(2) {
		t.Error("bipartite graph must be 2-colorable")
	}
}

func TestGrotzschTriangleFree(t *testing.T) {
	g := Grotzsch()
	if g.N != 11 || len(g.Edges) != 20 {
		t.Fatalf("Grötzsch shape: n=%d m=%d, want 11/20", g.N, len(g.Edges))
	}
	adj := make(map[[2]int]bool)
	for _, e := range g.Edges {
		adj[[2]int{e[0], e[1]}] = true
		adj[[2]int{e[1], e[0]}] = true
	}
	for i := 0; i < g.N; i++ {
		for j := i + 1; j < g.N; j++ {
			for k := j + 1; k < g.N; k++ {
				if adj[[2]int{i, j}] && adj[[2]int{j, k}] && adj[[2]int{i, k}] {
					t.Fatalf("triangle %d-%d-%d in Grötzsch graph", i, j, k)
				}
			}
		}
	}
}

func TestConnected(t *testing.T) {
	if !Cycle(5).Connected() || !Petersen().Connected() {
		t.Error("families must be connected")
	}
	dis := &UGraph{N: 4}
	dis.AddEdge(0, 1)
	dis.AddEdge(2, 3)
	if dis.Connected() {
		t.Error("disconnected graph reported connected")
	}
	if (&UGraph{}).Connected() {
		t.Error("empty graph is not connected")
	}
}

func TestUGraphAddEdge(t *testing.T) {
	g := &UGraph{N: 3}
	g.AddEdge(0, 1)
	g.AddEdge(1, 0) // duplicate, reversed
	g.AddEdge(1, 1) // self-loop ignored
	if len(g.Edges) != 1 {
		t.Errorf("edges = %d, want 1", len(g.Edges))
	}
}

// reductionInputs are the instances the reductions are verified on.
func reductionInputs() map[string]*UGraph {
	return map[string]*UGraph{
		"K3":       Complete(3),
		"K4":       Complete(4),
		"C5":       Cycle(5),
		"W4":       Wheel(4),
		"W5":       Wheel(5),
		"Path4":    Path(4),
		"K23":      CompleteBipartite(2, 3),
		"Triangle": Cycle(3),
	}
}

func TestSatGFDFamily(t *testing.T) {
	// Σ(H) is satisfiable iff H is NOT 3-colorable (Theorem 3 shape).
	for name, h := range reductionInputs() {
		want := !h.Colorable(3)
		sigma := SatGFDFamily(h)
		if sigma.Classify() != ged.ClassGFD {
			t.Errorf("%s: family must be GFDs, got %v", name, sigma.Classify())
		}
		r := reason.CheckSat(sigma)
		if r.Satisfiable != want {
			t.Errorf("%s: satisfiable = %v, want %v", name, r.Satisfiable, want)
		}
		if r.Satisfiable && !reason.IsModel(r.Model, sigma) {
			t.Errorf("%s: witness is not a model", name)
		}
	}
}

func TestImplGFDxFamily(t *testing.T) {
	// Σ ⊨ φ iff H IS 3-colorable (Theorem 5 shape, single GFDx).
	for name, h := range reductionInputs() {
		want := h.Colorable(3)
		sigma, phi := ImplGFDxFamily(h)
		if sigma.Classify() != ged.ClassGFDx || phi.Classify() != ged.ClassGFDx {
			t.Errorf("%s: family must be GFDx", name)
		}
		if got := reason.Implies(sigma, phi).Implied; got != want {
			t.Errorf("%s: implied = %v, want %v", name, got, want)
		}
	}
}

func TestImplGKeyFamily(t *testing.T) {
	// Σ ⊨ φ iff H IS 3-colorable (Theorem 5 shape, GKeys).
	for name, h := range reductionInputs() {
		want := h.Colorable(3)
		sigma, phi := ImplGKeyFamily(h)
		if !ged.IsGKey(sigma[0]) || !ged.IsGKey(phi) {
			t.Errorf("%s: family must be GKeys", name)
		}
		if got := reason.Implies(sigma, phi).Implied; got != want {
			t.Errorf("%s: implied = %v, want %v", name, got, want)
		}
	}
}

func TestValidGFDxFamily(t *testing.T) {
	// G ⊨ Σ iff H is NOT 3-colorable (Theorem 6 shape, single GFDx).
	for name, h := range reductionInputs() {
		want := !h.Colorable(3)
		g, sigma := ValidGFDxFamily(h)
		if got := reason.Satisfies(g, sigma); got != want {
			t.Errorf("%s: G ⊨ Σ = %v, want %v", name, got, want)
		}
	}
}

func TestValidGKeyFamily(t *testing.T) {
	for name, h := range reductionInputs() {
		want := !h.Colorable(3)
		g, sigma := ValidGKeyFamily(h)
		if got := reason.Satisfies(g, sigma); got != want {
			t.Errorf("%s: G ⊨ Σ = %v, want %v", name, got, want)
		}
	}
}

func TestHardnessInputValidation(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("edgeless input must panic")
		}
	}()
	SatGFDFamily(&UGraph{N: 2})
}

func TestRandomConnected(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	for i := 0; i < 20; i++ {
		g := RandomConnected(rng, 5+rng.Intn(10), rng.Intn(8))
		if !g.Connected() {
			t.Fatal("RandomConnected produced a disconnected graph")
		}
	}
}

// TestReductionsOnRandomInputs cross-checks all four reduction families
// against brute force on random connected graphs.
func TestReductionsOnRandomInputs(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	for i := 0; i < 12; i++ {
		h := RandomConnected(rng, 4+rng.Intn(3), rng.Intn(5))
		if len(h.Edges) == 0 {
			continue
		}
		chi3 := h.Colorable(3)
		if got := reason.CheckSat(SatGFDFamily(h)).Satisfiable; got != !chi3 {
			t.Errorf("sat family wrong on %s (chi3=%v)", h, chi3)
		}
		sigma, phi := ImplGFDxFamily(h)
		if got := reason.Implies(sigma, phi).Implied; got != chi3 {
			t.Errorf("impl family wrong on %s (chi3=%v)", h, chi3)
		}
		g, s := ValidGFDxFamily(h)
		if got := reason.Satisfies(g, s); got != !chi3 {
			t.Errorf("valid family wrong on %s (chi3=%v)", h, chi3)
		}
	}
}

func TestKnowledgeBase(t *testing.T) {
	g, stats := KnowledgeBase(1, 20, 0.3)
	if stats.Total() == 0 {
		t.Fatal("expected planted inconsistencies at rate 0.3")
	}
	sigma := ged.Set{PaperPhi1(), PaperPhi2(), PaperPhi3(), PaperPhi4()}
	vs := reason.Validate(g, sigma, 0)
	if len(vs) < stats.Total() {
		t.Errorf("validation found %d violations, planted %d", len(vs), stats.Total())
	}
	// A clean KB validates.
	clean, cstats := KnowledgeBase(2, 20, 0)
	if cstats.Total() != 0 {
		t.Fatal("rate 0 must plant nothing")
	}
	if !reason.Satisfies(clean, sigma) {
		vs := reason.Validate(clean, sigma, 3)
		t.Errorf("clean KB must satisfy Σ; first violations: %v", vs)
	}
}

func TestSocialNetwork(t *testing.T) {
	g, stats := SocialNetwork(1, 4, 5)
	if stats.SeedFakes == 0 {
		t.Fatal("expected seed fakes")
	}
	phi5 := PaperPhi5(2)
	vs := reason.Validate(g, ged.Set{phi5}, 0)
	if len(vs) == 0 {
		t.Error("spam rule must fire on the social workload")
	}
}

func TestMusicDB(t *testing.T) {
	g, stats := MusicDB(1, 15, 0.5)
	if stats.DupPairs == 0 {
		t.Fatal("expected planted duplicates")
	}
	keys := PaperKeys()
	vs := reason.Validate(g, keys, 0)
	if len(vs) == 0 {
		t.Error("planted duplicates must violate the keys")
	}
	// A duplicate-free catalog satisfies the keys.
	clean, cstats := MusicDB(2, 15, 0)
	if cstats.DupPairs != 0 {
		t.Fatal("rate 0 must plant nothing")
	}
	if !reason.Satisfies(clean, keys) {
		t.Error("clean catalog must satisfy the keys")
	}
}

func TestRandomPropertyGraphDeterministic(t *testing.T) {
	labels := []graph.Label{"a", "b"}
	attrs := []graph.Attr{"p"}
	g1 := RandomPropertyGraph(7, 50, 2, labels, attrs, 3)
	g2 := RandomPropertyGraph(7, 50, 2, labels, attrs, 3)
	if g1.String() != g2.String() {
		t.Error("same seed must reproduce the graph")
	}
	g3 := RandomPropertyGraph(8, 50, 2, labels, attrs, 3)
	if g1.String() == g3.String() {
		t.Error("different seeds should differ")
	}
}

func TestRandomGEDSetValid(t *testing.T) {
	sigma := RandomGEDSet(5, 10, 4, []graph.Label{"a", "b"}, []graph.Attr{"p", "q"}, 3)
	if len(sigma) != 10 {
		t.Fatalf("size = %d", len(sigma))
	}
	if err := sigma.Validate(); err != nil {
		t.Errorf("generated set invalid: %v", err)
	}
}
