package gen

import (
	"gedlib/internal/ged"
	"gedlib/internal/graph"
	"gedlib/internal/pattern"
)

// This file encodes the worked dependencies of the paper — the GEDs
// φ₁–φ₅ of Example 3 over the patterns Q₁–Q₅ of Figure 1, and the keys
// ψ₁–ψ₃ over Q₆/Q₇ — as reusable constructors shared by tests, examples
// and benchmarks.

// PaperPhi1 is φ₁ = Q₁[x,y](x.type = "video game" → y.type =
// "programmer"): a video game can only be created by programmers. Note
// the paper binds the constant literal to the product's type in X and
// the person's in Y; variable x is the person, y the product.
func PaperPhi1() *ged.GED {
	q := pattern.New()
	q.AddVar("x", "person").AddVar("y", "product")
	q.AddEdge("x", "create", "y")
	return ged.New("phi1", q,
		[]ged.Literal{ged.ConstLit("y", "type", graph.String("video game"))},
		[]ged.Literal{ged.ConstLit("x", "type", graph.String("programmer"))})
}

// PaperPhi2 is φ₂ = Q₂[x,y,z](∅ → y.name = z.name): two capitals of one
// country carry the same name.
func PaperPhi2() *ged.GED {
	q := pattern.New()
	q.AddVar("x", "country").AddVar("y", "city").AddVar("z", "city")
	q.AddEdge("x", "capital", "y")
	q.AddEdge("x", "capital", "z")
	return ged.New("phi2", q, nil, []ged.Literal{ged.VarLit("y", "name", "z", "name")})
}

// InheritAttr is the attribute propagated by φ₃.
const InheritAttr graph.Attr = "can_fly"

// PaperPhi3 is φ₃ = Q₃[x,y](x.A = x.A → y.A = x.A): if y is_a x and x
// has attribute A, then y inherits x.A. Both variables are wildcards —
// the rule applies to generic entities.
func PaperPhi3() *ged.GED {
	q := pattern.New()
	q.AddVar("x", graph.Wildcard).AddVar("y", graph.Wildcard)
	q.AddEdge("y", "is_a", "x")
	return ged.New("phi3", q,
		[]ged.Literal{ged.VarLit("x", InheritAttr, "x", InheritAttr)},
		[]ged.Literal{ged.VarLit("y", InheritAttr, "x", InheritAttr)})
}

// PaperPhi4 is φ₄ = Q₄[x,y](∅ → false): no person is both a child and a
// parent of another person.
func PaperPhi4() *ged.GED {
	q := pattern.New()
	q.AddVar("x", "person").AddVar("y", "person")
	q.AddEdge("x", "child", "y")
	q.AddEdge("x", "parent", "y")
	return ged.New("phi4", q, nil, ged.False("x"))
}

// SpamKeyword is the peculiar keyword c of the spam rule φ₅.
const SpamKeyword = "peculiar-keyword"

// PaperPhi5 is φ₅ over Q₅ with k liked blogs: accounts x, x′ both like
// blogs y₁..y_k, x posts z₁, x′ posts z₂; if x′ is confirmed fake and
// z₁, z₂ share the peculiar keyword, then x is fake too.
func PaperPhi5(k int) *ged.GED {
	q := pattern.New()
	q.AddVar("x", "account").AddVar("x'", "account")
	q.AddVar("z1", "blog").AddVar("z2", "blog")
	q.AddEdge("x", "post", "z1")
	q.AddEdge("x'", "post", "z2")
	for i := 0; i < k; i++ {
		y := pattern.Var("y" + string(rune('1'+i)))
		q.AddVar(y, "blog")
		q.AddEdge("x", "like", y)
		q.AddEdge("x'", "like", y)
	}
	return ged.New("phi5", q,
		[]ged.Literal{
			ged.ConstLit("x'", "is_fake", graph.Int(1)),
			ged.ConstLit("z1", "keyword", graph.String(SpamKeyword)),
			ged.ConstLit("z2", "keyword", graph.String(SpamKeyword)),
		},
		[]ged.Literal{ged.ConstLit("x", "is_fake", graph.Int(1))})
}

// albumArtistPattern is Q₆'s first half: an album recorded by an artist.
func albumArtistPattern() *pattern.Pattern {
	q := pattern.New()
	q.AddVar("x", "album").AddVar("z", "artist")
	q.AddEdge("x", "by", "z")
	return q
}

// PaperPsi1 is ψ₁: an album is identified by its title and the id of its
// primary artist (a recursive key — it presupposes artist identity).
func PaperPsi1() *ged.GED {
	k, err := ged.NewGKey("psi1", albumArtistPattern(), "x", func(x, fx pattern.Var) []ged.Literal {
		if x == "x" {
			return []ged.Literal{ged.VarLit(x, "title", fx, "title")}
		}
		return []ged.Literal{ged.IDLit(x, fx)}
	})
	if err != nil {
		panic(err)
	}
	return k
}

// PaperPsi2 is ψ₂: an album is identified by its title and the year of
// initial release.
func PaperPsi2() *ged.GED {
	q := pattern.New()
	q.AddVar("x", "album")
	k, err := ged.NewGKey("psi2", q, "x", func(x, fx pattern.Var) []ged.Literal {
		return []ged.Literal{
			ged.VarLit(x, "title", fx, "title"),
			ged.VarLit(x, "release", fx, "release"),
		}
	})
	if err != nil {
		panic(err)
	}
	return k
}

// PaperPsi3 is ψ₃: an artist is identified by name and the id of an
// album they recorded (recursive with ψ₁).
func PaperPsi3() *ged.GED {
	k, err := ged.NewGKey("psi3", albumArtistPattern(), "z", func(x, fx pattern.Var) []ged.Literal {
		if x == "z" {
			return []ged.Literal{ged.VarLit(x, "name", fx, "name")}
		}
		return []ged.Literal{ged.IDLit(x, fx)}
	})
	if err != nil {
		panic(err)
	}
	return k
}

// PaperKeys returns {ψ₁, ψ₂, ψ₃}, the recursively-defined keys of
// Example 1(3).
func PaperKeys() ged.Set {
	return ged.Set{PaperPsi1(), PaperPsi2(), PaperPsi3()}
}

// PaperGEDs returns {φ₁..φ₅} with k = 2 liked blogs in φ₅.
func PaperGEDs() ged.Set {
	return ged.Set{PaperPhi1(), PaperPhi2(), PaperPhi3(), PaperPhi4(), PaperPhi5(2)}
}
