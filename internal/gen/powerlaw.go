package gen

import (
	"math/rand"

	"gedlib/internal/ged"
	"gedlib/internal/graph"
	"gedlib/internal/pattern"
)

// PowerLawStats reports what PowerLawSocial generated.
type PowerLawStats struct {
	// Communities is the number of contiguous community blocks.
	Communities int
	// Nodes is the total node count (Communities × community size).
	Nodes int
	// KnowsEdges counts intra-community "knows" edges.
	KnowsEdges int
	// FollowsEdges counts inter-community "follows" edges.
	FollowsEdges int
}

// PowerLawSocial synthesizes an LDBC-social-style person graph with
// power-law degree skew and explicit community structure, the host
// workload of the sharding benchmark:
//
//   - nodes are laid out as contiguous community blocks of `size`
//     persons each, so a streaming greedy partitioner can recover the
//     communities while a hash partitioner cuts almost every edge;
//   - "knows" edges stay inside a community, with both endpoints drawn
//     Zipf-skewed toward the community's low-id hubs (power-law degree
//     distribution);
//   - "follows" edges cross communities (interFrac of all edges),
//     again hub-biased on both sides;
//   - every person carries country (constant per community), lang and
//     active attributes drawn from small domains.
//
// Rules over "knows" therefore bind almost entirely within one shard
// under a community-aware partition (PartitionFriendlyRules), while
// rules over "follows" force cross-shard handoffs no matter how the
// graph is split (BoundaryHeavyRules). Deterministic in seed.
func PowerLawSocial(seed int64, communities, size int, degree, interFrac float64) (*graph.Graph, PowerLawStats) {
	rng := rand.New(rand.NewSource(seed))
	g := graph.New()
	stats := PowerLawStats{Communities: communities, Nodes: communities * size}
	for c := 0; c < communities; c++ {
		for i := 0; i < size; i++ {
			n := g.AddNode("person")
			g.SetAttr(n, "country", graph.Int(c%7))
			g.SetAttr(n, "lang", graph.Int(rng.Intn(3)))
			g.SetAttr(n, "active", graph.Int(rng.Intn(5)/4)) // ~20% active
		}
	}
	// Zipf over offsets within a community: offset 0 is the hub.
	zipf := rand.NewZipf(rng, 1.3, 4, uint64(size-1))
	pick := func(c int) graph.NodeID {
		return graph.NodeID(c*size + int(zipf.Uint64()))
	}
	edges := int(degree * float64(communities*size))
	for i := 0; i < edges; i++ {
		if rng.Float64() < interFrac && communities > 1 {
			cs := rng.Intn(communities)
			cd := rng.Intn(communities - 1)
			if cd >= cs {
				cd++
			}
			g.AddEdge(pick(cs), "follows", pick(cd))
			stats.FollowsEdges++
		} else {
			c := rng.Intn(communities)
			g.AddEdge(pick(c), "knows", pick(c))
			stats.KnowsEdges++
		}
	}
	return g, stats
}

// socialRule builds the rule Q[x,y] with one edge x -label-> y,
// antecedent xs and consequent ys.
func socialRule(name string, label graph.Label, xs func(x, y pattern.Var) []ged.Literal, ys func(x, y pattern.Var) []ged.Literal) *ged.GED {
	q := pattern.New()
	q.AddVar("x", "person")
	q.AddVar("y", "person")
	q.AddEdge("x", label, "y")
	return ged.New(name, q, xs("x", "y"), ys("x", "y"))
}

// PartitionFriendlyRules returns rules whose patterns walk only
// intra-community "knows" edges of PowerLawSocial: under a
// community-aware partition nearly every binding completes inside one
// shard, the best case for sharded validation.
func PartitionFriendlyRules() ged.Set {
	active := func(x, y pattern.Var) []ged.Literal {
		return []ged.Literal{
			ged.ConstLit(x, "active", graph.Int(1)),
			ged.ConstLit(y, "active", graph.Int(1)),
		}
	}
	sameLang := func(x, y pattern.Var) []ged.Literal {
		return []ged.Literal{ged.VarLit(x, "lang", y, "lang")}
	}
	// Two-hop rule: active users two "knows" hops apart stay in one
	// country. Communities share a country, so it mostly holds; the
	// enumeration work (hub fan-out squared) is the point.
	q := pattern.New()
	q.AddVar("x", "person")
	q.AddVar("y", "person")
	q.AddVar("z", "person")
	q.AddEdge("x", "knows", "y")
	q.AddEdge("y", "knows", "z")
	twoHop := ged.New("knows2-country", q,
		[]ged.Literal{ged.ConstLit("x", "active", graph.Int(1))},
		[]ged.Literal{ged.VarLit("x", "country", "z", "country")})
	return ged.Set{
		socialRule("knows-lang", "knows", active, sameLang),
		twoHop,
	}
}

// BoundaryHeavyRules returns rules whose patterns walk only
// inter-community "follows" edges of PowerLawSocial: every binding
// crosses a community boundary, so any partition forces cross-shard
// frontier handoffs — the stress case for sharded validation.
func BoundaryHeavyRules() ged.Set {
	active := func(x, y pattern.Var) []ged.Literal {
		return []ged.Literal{
			ged.ConstLit(x, "active", graph.Int(1)),
			ged.ConstLit(y, "active", graph.Int(1)),
		}
	}
	sameLang := func(x, y pattern.Var) []ged.Literal {
		return []ged.Literal{ged.VarLit(x, "lang", y, "lang")}
	}
	q := pattern.New()
	q.AddVar("x", "person")
	q.AddVar("y", "person")
	q.AddVar("z", "person")
	q.AddEdge("x", "follows", "y")
	q.AddEdge("y", "follows", "z")
	twoHop := ged.New("follows2-lang", q,
		[]ged.Literal{ged.ConstLit("x", "active", graph.Int(1))},
		[]ged.Literal{ged.VarLit("x", "lang", "z", "lang")})
	return ged.Set{
		socialRule("follows-lang", "follows", active, sameLang),
		twoHop,
	}
}
