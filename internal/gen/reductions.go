package gen

import (
	"fmt"

	"gedlib/internal/ged"
	"gedlib/internal/graph"
	"gedlib/internal/pattern"
)

// This file constructs the 3-colorability reduction families behind the
// paper's lower bounds (Theorems 3, 5 and 6). The authors defer the
// reduction details to proofs; the constructions here follow the stated
// shapes (number and form of the dependencies) and are verified against
// brute-force 3-coloring in the tests. See DESIGN.md §3 for the
// correctness arguments.

// hVar names the pattern variable of vertex i of H.
func hVar(i int) pattern.Var { return pattern.Var(fmt.Sprintf("h%d", i)) }

// kVar names the palette pattern variables.
func kVar(i int) pattern.Var { return pattern.Var(fmt.Sprintf("k%d", i)) }

// paletteLabel is the node label shared by palette and H-pattern nodes.
const paletteLabel graph.Label = "c"

// k3Pattern returns K3^sym as a pattern: three c-nodes with all six
// directed e-edges. Homomorphisms of a symmetrically-oriented graph into
// it are exactly the proper 3-colorings.
func k3Pattern() *pattern.Pattern {
	q := pattern.New()
	for i := 0; i < 3; i++ {
		q.AddVar(kVar(i), paletteLabel)
	}
	for i := 0; i < 3; i++ {
		for j := 0; j < 3; j++ {
			if i != j {
				q.AddEdge(kVar(i), "e", kVar(j))
			}
		}
	}
	return q
}

// k3Graph returns K3^sym as a concrete graph, optionally with distinct
// a-attribute values per corner.
func k3Graph(withAttrs bool) (*graph.Graph, []graph.NodeID) {
	g := graph.New()
	ids := make([]graph.NodeID, 3)
	for i := range ids {
		ids[i] = g.AddNode(paletteLabel)
		if withAttrs {
			g.SetAttr(ids[i], "a", graph.Int(i+1))
		}
	}
	for i := 0; i < 3; i++ {
		for j := 0; j < 3; j++ {
			if i != j {
				g.AddEdge(ids[i], "e", ids[j])
			}
		}
	}
	return g, ids
}

// hPatternAcyclic returns H as a pattern with c-labeled nodes and each
// undirected edge oriented low→high (an acyclic orientation, so K3^sym
// cannot map into it).
func hPatternAcyclic(h *UGraph) *pattern.Pattern {
	q := pattern.New()
	for i := 0; i < h.N; i++ {
		q.AddVar(hVar(i), paletteLabel)
	}
	for _, e := range h.Edges {
		q.AddEdge(hVar(e[0]), "e", hVar(e[1]))
	}
	return q
}

// hPatternSymmetric returns H as a pattern with both edge directions, so
// its homomorphisms into K3^sym are exactly the proper 3-colorings.
func hPatternSymmetric(h *UGraph) *pattern.Pattern {
	q := pattern.New()
	for i := 0; i < h.N; i++ {
		q.AddVar(hVar(i), paletteLabel)
	}
	for _, e := range h.Edges {
		q.AddEdge(hVar(e[0]), "e", hVar(e[1]))
		q.AddEdge(hVar(e[1]), "e", hVar(e[0]))
	}
	return q
}

// requireHardnessInput panics unless H is a valid reduction input:
// connected with at least one edge (3-colorability remains NP-complete
// under these restrictions).
func requireHardnessInput(h *UGraph) {
	if len(h.Edges) == 0 || !h.Connected() {
		panic("gen: hardness reductions require a connected graph with ≥1 edge")
	}
}

// SatGFDFamily returns the satisfiability instance Σ(H) of two GFDs of
// the form Q[x̄](∅ → Y) with constant literals, per the Theorem 3 proof
// shape: Σ(H) is satisfiable iff H is NOT 3-colorable.
//
// φ_K marks every K3^sym match t = 1 on all three corners; φ_H forces
// t = 2 on (the image of) vertex 0 of an acyclically-oriented copy of H.
// If H is 3-colorable, the coloring composes with any K3 match and the
// two marks collide; otherwise the disjoint union of a concrete palette
// and a concrete copy of H is a model.
func SatGFDFamily(h *UGraph) ged.Set {
	requireHardnessInput(h)
	phiK := ged.New("phiK", k3Pattern(), nil, []ged.Literal{
		ged.ConstLit(kVar(0), "t", graph.Int(1)),
		ged.ConstLit(kVar(1), "t", graph.Int(1)),
		ged.ConstLit(kVar(2), "t", graph.Int(1)),
	})
	phiH := ged.New("phiH", hPatternAcyclic(h), nil, []ged.Literal{
		ged.ConstLit(hVar(0), "t", graph.Int(2)),
	})
	return ged.Set{phiK, phiH}
}

// ImplGFDxFamily returns the implication instance (Σ, φ) with a single
// GFDx whose literals are all variable literals, per the Theorem 5 proof
// shape: Σ ⊨ φ iff H IS 3-colorable.
//
// Σ's GFDx equates the a-attributes across every edge of (symmetric) H;
// its matches in G_{K3} are the 3-colorings, and color permutations then
// equate all three palette attributes.
func ImplGFDxFamily(h *UGraph) (ged.Set, *ged.GED) {
	requireHardnessInput(h)
	var ys []ged.Literal
	for _, e := range h.Edges {
		ys = append(ys, ged.VarLit(hVar(e[0]), "a", hVar(e[1]), "a"))
	}
	sigma := ged.Set{ged.New("phiH", hPatternSymmetric(h), nil, ys)}
	phi := ged.New("phiK3", k3Pattern(), nil, []ged.Literal{
		ged.VarLit(kVar(0), "a", kVar(1), "a"),
		ged.VarLit(kVar(0), "a", kVar(2), "a"),
	})
	return sigma, phi
}

// ImplGKeyFamily returns the implication instance (Σ, φ) where both
// dependencies are GKeys without constant literals, per the Theorem 5
// proof shape: Σ ⊨ φ iff H IS 3-colorable.
//
// Σ's GKey identifies the images of vertex 0 across any two matches of
// symmetric H; in G of φ's pattern (two disjoint palettes) its matches
// are pairs of 3-colorings, and permutations merge every palette corner
// with every other, making φ's key literal deducible.
func ImplGKeyFamily(h *UGraph) (ged.Set, *ged.GED) {
	requireHardnessInput(h)
	psiH, err := ged.NewGKey("psiH", hPatternSymmetric(h), hVar(0), nil)
	if err != nil {
		panic(err)
	}
	phi, err := ged.NewGKey("phiK3", k3Pattern(), kVar(0), nil)
	if err != nil {
		panic(err)
	}
	return ged.Set{psiH}, phi
}

// ValidGFDxFamily returns the validation instance (G, Σ) with a single
// GFDx whose consequent is one variable literal, per the Theorem 6 proof
// shape: G ⊨ Σ iff H is NOT 3-colorable.
//
// G is a concrete K3^sym with pairwise-distinct a-values; φ requires the
// endpoint images of H's first edge to agree on a, which every proper
// coloring refutes.
func ValidGFDxFamily(h *UGraph) (*graph.Graph, ged.Set) {
	requireHardnessInput(h)
	g, _ := k3Graph(true)
	e0 := h.Edges[0]
	phi := ged.New("phiH", hPatternSymmetric(h), nil, []ged.Literal{
		ged.VarLit(hVar(e0[0]), "a", hVar(e0[1]), "a"),
	})
	return g, ged.Set{phi}
}

// ValidGKeyFamily returns the validation instance (G, Σ) with a single
// GKey, per the Theorem 6 proof shape: G ⊨ Σ iff H is NOT 3-colorable.
//
// The GKey's pattern is symmetric H plus its copy with an empty
// antecedent; a proper coloring pair mapping vertex 0 to different
// corners violates the key's id literal.
func ValidGKeyFamily(h *UGraph) (*graph.Graph, ged.Set) {
	requireHardnessInput(h)
	g, _ := k3Graph(false)
	psi, err := ged.NewGKey("psiH", hPatternSymmetric(h), hVar(0), nil)
	if err != nil {
		panic(err)
	}
	return g, ged.Set{psi}
}

// Note on coverage: the paper also sketches lower-bound reductions for
// GKey/GEDx *satisfiability* ("three GKeys without constant literals").
// Those constructions hinge on proof details the paper defers; rather
// than ship an unverified gadget, GEDx/GKey satisfiability is exercised
// here through the entity-resolution workloads (workloads.go), and the
// coNP-hardness family is reproduced explicitly for GFDs (SatGFDFamily),
// matching part (a) of the paper's Theorem 3 proof sketch. See
// EXPERIMENTS.md.
