// Package gen generates the workloads used to exercise and benchmark the
// GED analyses: classic undirected graph families with known chromatic
// numbers, the 3-colorability reduction families behind the paper's
// lower-bound proofs (Theorems 3, 5, 6), random property graphs, and the
// knowledge-base / social-network / music-catalog scenarios of Example 1.
package gen

import (
	"fmt"
	"math/rand"
)

// UGraph is a simple undirected graph on vertices 0..N-1, the input of
// the 3-colorability reductions.
type UGraph struct {
	N     int
	Edges [][2]int
}

// AddEdge inserts the undirected edge {u, v}; self-loops and duplicates
// are ignored.
func (g *UGraph) AddEdge(u, v int) {
	if u == v {
		return
	}
	if u > v {
		u, v = v, u
	}
	for _, e := range g.Edges {
		if e[0] == u && e[1] == v {
			return
		}
	}
	g.Edges = append(g.Edges, [2]int{u, v})
}

// Connected reports whether g is connected (the hardness families
// require connected inputs; 3-colorability stays NP-complete on them).
func (g *UGraph) Connected() bool {
	if g.N == 0 {
		return false
	}
	adj := make([][]int, g.N)
	for _, e := range g.Edges {
		adj[e[0]] = append(adj[e[0]], e[1])
		adj[e[1]] = append(adj[e[1]], e[0])
	}
	seen := make([]bool, g.N)
	stack := []int{0}
	seen[0] = true
	count := 1
	for len(stack) > 0 {
		u := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		for _, v := range adj[u] {
			if !seen[v] {
				seen[v] = true
				count++
				stack = append(stack, v)
			}
		}
	}
	return count == g.N
}

// Colorable reports whether g admits a proper k-coloring, by exhaustive
// backtracking. It is the ground truth the reduction tests compare
// against; inputs are kept small.
func (g *UGraph) Colorable(k int) bool {
	adj := make([][]int, g.N)
	for _, e := range g.Edges {
		adj[e[0]] = append(adj[e[0]], e[1])
		adj[e[1]] = append(adj[e[1]], e[0])
	}
	colors := make([]int, g.N)
	for i := range colors {
		colors[i] = -1
	}
	var rec func(v int) bool
	rec = func(v int) bool {
		if v == g.N {
			return true
		}
		// Symmetry breaking: vertex v may only use colors 0..min(v,k-1).
		max := k
		if v+1 < max {
			max = v + 1
		}
		for c := 0; c < max; c++ {
			ok := true
			for _, u := range adj[v] {
				if colors[u] == c {
					ok = false
					break
				}
			}
			if ok {
				colors[v] = c
				if rec(v + 1) {
					return true
				}
				colors[v] = -1
			}
		}
		return false
	}
	return rec(0)
}

// Complete returns K_n (chromatic number n).
func Complete(n int) *UGraph {
	g := &UGraph{N: n}
	for i := 0; i < n; i++ {
		for j := i + 1; j < n; j++ {
			g.AddEdge(i, j)
		}
	}
	return g
}

// Cycle returns C_n (chromatic number 2 if n even, 3 if odd).
func Cycle(n int) *UGraph {
	g := &UGraph{N: n}
	for i := 0; i < n; i++ {
		g.AddEdge(i, (i+1)%n)
	}
	return g
}

// Path returns P_n, the path on n vertices.
func Path(n int) *UGraph {
	g := &UGraph{N: n}
	for i := 0; i+1 < n; i++ {
		g.AddEdge(i, i+1)
	}
	return g
}

// Wheel returns W_n: a hub joined to every vertex of C_n. Chromatic
// number 4 when n is odd, 3 when n is even.
func Wheel(n int) *UGraph {
	g := Cycle(n)
	hub := g.N
	g.N++
	for i := 0; i < n; i++ {
		g.AddEdge(hub, i)
	}
	return g
}

// Petersen returns the Petersen graph (3-chromatic).
func Petersen() *UGraph {
	g := &UGraph{N: 10}
	for i := 0; i < 5; i++ {
		g.AddEdge(i, (i+1)%5)     // outer cycle
		g.AddEdge(5+i, 5+(i+2)%5) // inner pentagram
		g.AddEdge(i, 5+i)         // spokes
	}
	return g
}

// CompleteBipartite returns K_{a,b} (2-chromatic when a, b >= 1).
func CompleteBipartite(a, b int) *UGraph {
	g := &UGraph{N: a + b}
	for i := 0; i < a; i++ {
		for j := 0; j < b; j++ {
			g.AddEdge(i, a+j)
		}
	}
	return g
}

// Mycielski applies the Mycielski construction to g: it raises the
// chromatic number by one while keeping the graph triangle-free if g is.
// Mycielski(C5) is the Grötzsch graph, 4-chromatic and triangle-free — a
// good adversarial input for the reductions because local structure
// reveals nothing.
func Mycielski(g *UGraph) *UGraph {
	n := g.N
	out := &UGraph{N: 2*n + 1}
	for _, e := range g.Edges {
		out.AddEdge(e[0], e[1])   // original
		out.AddEdge(e[0]+n, e[1]) // shadow–original
		out.AddEdge(e[0], e[1]+n) // original–shadow
	}
	w := 2 * n
	for i := 0; i < n; i++ {
		out.AddEdge(n+i, w)
	}
	return out
}

// Grotzsch returns the Grötzsch graph: 11 vertices, triangle-free,
// chromatic number 4.
func Grotzsch() *UGraph { return Mycielski(Cycle(5)) }

// RandomConnected returns a random connected graph on n vertices with
// roughly extra additional edges beyond a random spanning tree.
func RandomConnected(rng *rand.Rand, n, extra int) *UGraph {
	g := &UGraph{N: n}
	perm := rng.Perm(n)
	for i := 1; i < n; i++ {
		g.AddEdge(perm[i], perm[rng.Intn(i)])
	}
	for i := 0; i < extra; i++ {
		g.AddEdge(rng.Intn(n), rng.Intn(n))
	}
	return g
}

// String renders the graph compactly.
func (g *UGraph) String() string {
	return fmt.Sprintf("UGraph{n=%d, m=%d}", g.N, len(g.Edges))
}
