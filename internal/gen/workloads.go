package gen

import (
	"fmt"
	"math/rand"

	"gedlib/internal/ged"
	"gedlib/internal/graph"
	"gedlib/internal/pattern"
)

// KBStats reports what a generated knowledge base planted.
type KBStats struct {
	// BadCreators counts video games created by non-programmers (φ₁).
	BadCreators int
	// BadCapitals counts countries with two differently-named capitals (φ₂).
	BadCapitals int
	// BadInherits counts species violating attribute inheritance (φ₃).
	BadInherits int
	// BadCycles counts child-and-parent pairs (φ₄).
	BadCycles int
}

// Total returns the number of planted inconsistencies.
func (s KBStats) Total() int {
	return s.BadCreators + s.BadCapitals + s.BadInherits + s.BadCycles
}

// KnowledgeBase synthesizes a Yago/DBPedia-style knowledge base with the
// four inconsistency shapes of Example 1 planted at the given rate
// (0 ≤ rate ≤ 1). It substitutes for the proprietary Yago3/DBPedia
// snapshots the paper draws its examples from: only the violation
// patterns matter to the analyses, and those are reproduced exactly.
func KnowledgeBase(seed int64, scale int, rate float64) (*graph.Graph, KBStats) {
	rng := rand.New(rand.NewSource(seed))
	g := graph.New()
	var stats KBStats
	plant := func() bool { return rng.Float64() < rate }

	// Countries and capitals (φ₂).
	for i := 0; i < scale; i++ {
		c := g.AddNodeAttrs("country", map[graph.Attr]graph.Value{
			"name": graph.String(fmt.Sprintf("country%d", i))})
		cap := g.AddNodeAttrs("city", map[graph.Attr]graph.Value{
			"name": graph.String(fmt.Sprintf("city%d", i))})
		g.AddEdge(c, "capital", cap)
		if plant() {
			extra := g.AddNodeAttrs("city", map[graph.Attr]graph.Value{
				"name": graph.String(fmt.Sprintf("city%d-alt", i))})
			g.AddEdge(c, "capital", extra)
			stats.BadCapitals++
		}
	}

	// Creators and products (φ₁).
	for i := 0; i < scale; i++ {
		typ := "programmer"
		bad := plant()
		if bad {
			typ = "psychologist"
		}
		p := g.AddNodeAttrs("person", map[graph.Attr]graph.Value{
			"name": graph.String(fmt.Sprintf("dev%d", i)),
			"type": graph.String(typ)})
		prod := g.AddNodeAttrs("product", map[graph.Attr]graph.Value{
			"name": graph.String(fmt.Sprintf("game%d", i)),
			"type": graph.String("video game")})
		g.AddEdge(p, "create", prod)
		if bad {
			stats.BadCreators++
		}
		// Some products that are not video games, to exercise the
		// antecedent filter.
		if i%3 == 0 {
			other := g.AddNodeAttrs("product", map[graph.Attr]graph.Value{
				"type": graph.String("board game")})
			g.AddEdge(p, "create", other)
		}
	}

	// Taxonomy with attribute inheritance (φ₃).
	for i := 0; i < scale; i++ {
		class := g.AddNodeAttrs("class", map[graph.Attr]graph.Value{
			InheritAttr: graph.String("yes")})
		species := g.AddNode("species")
		g.AddEdge(species, "is_a", class)
		if plant() {
			g.SetAttr(species, InheritAttr, graph.String("no"))
			stats.BadInherits++
		} else {
			g.SetAttr(species, InheritAttr, graph.String("yes"))
		}
	}

	// Family relations (φ₄).
	for i := 0; i < scale; i++ {
		a := g.AddNode("person")
		b := g.AddNode("person")
		g.AddEdge(a, "child", b)
		if plant() {
			g.AddEdge(a, "parent", b)
			stats.BadCycles++
		}
	}
	return g, stats
}

// SocialStats reports what a generated social network planted.
type SocialStats struct {
	// SeedFakes are accounts created with is_fake = 1.
	SeedFakes int
	// Spammy are accounts that post a peculiar-keyword blog and share
	// liked blogs with a seed fake (candidates for φ₅ propagation).
	Spammy []graph.NodeID
}

// SocialNetwork synthesizes a social graph for the spam rule φ₅ with
// k = 2: rings of accounts liking the same pair of blogs, each posting
// one blog; some blogs carry the peculiar keyword, and some accounts are
// confirmed fake. Spam propagates along shared-like chains, which makes
// the chase (not just validation) interesting on this workload.
func SocialNetwork(seed int64, rings, accountsPerRing int) (*graph.Graph, SocialStats) {
	rng := rand.New(rand.NewSource(seed))
	g := graph.New()
	var stats SocialStats
	for r := 0; r < rings; r++ {
		// Two shared blogs per ring.
		shared := [2]graph.NodeID{g.AddNode("blog"), g.AddNode("blog")}
		var accounts []graph.NodeID
		for i := 0; i < accountsPerRing; i++ {
			a := g.AddNode("account")
			accounts = append(accounts, a)
			g.AddEdge(a, "like", shared[0])
			g.AddEdge(a, "like", shared[1])
			post := g.AddNode("blog")
			spam := rng.Intn(3) != 0
			if spam {
				g.SetAttr(post, "keyword", graph.String(SpamKeyword))
			} else {
				g.SetAttr(post, "keyword", graph.String("cats"))
			}
			g.AddEdge(a, "post", post)
			if spam {
				stats.Spammy = append(stats.Spammy, a)
			}
		}
		// One confirmed fake per ring, posting spam.
		fake := accounts[rng.Intn(len(accounts))]
		g.SetAttr(fake, "is_fake", graph.Int(1))
		var fakePosts bool
		for _, e := range g.Out(fake) {
			if e.Label == "post" {
				g.SetAttr(e.Dst, "keyword", graph.String(SpamKeyword))
				fakePosts = true
			}
		}
		if fakePosts {
			stats.SeedFakes++
		}
	}
	return g, stats
}

// MusicStats reports what a generated music catalog planted.
type MusicStats struct {
	// DupPairs counts planted duplicate album pairs (same title and
	// release, distinct nodes, each by its own artist duplicate).
	DupPairs int
	// Artists and Albums are totals including duplicates.
	Artists, Albums int
}

// MusicDB synthesizes the album/artist catalog of Example 1(3): artists
// record albums; a fraction of album+artist pairs is duplicated with
// the same title, release and artist name. The recursive keys ψ₁–ψ₃
// then cascade under the chase: ψ₂ merges the album copies, ψ₃ merges
// their artists, and ψ₁ merges remaining albums of the merged artists.
func MusicDB(seed int64, artists int, dupRate float64) (*graph.Graph, MusicStats) {
	rng := rand.New(rand.NewSource(seed))
	g := graph.New()
	var stats MusicStats
	for i := 0; i < artists; i++ {
		name := graph.String(fmt.Sprintf("artist%d", i))
		a := g.AddNodeAttrs("artist", map[graph.Attr]graph.Value{"name": name})
		stats.Artists++
		nAlbums := 1 + rng.Intn(3)
		var titles []graph.Value
		for j := 0; j < nAlbums; j++ {
			title := graph.String(fmt.Sprintf("album%d-%d", i, j))
			titles = append(titles, title)
			al := g.AddNodeAttrs("album", map[graph.Attr]graph.Value{
				"title": title, "release": graph.Int(1980 + rng.Intn(40))})
			g.AddEdge(al, "by", a)
			stats.Albums++
		}
		if rng.Float64() < dupRate {
			// Duplicate the artist with one shared album (same title and
			// release as album 0) plus the rest of the discography.
			a2 := g.AddNodeAttrs("artist", map[graph.Attr]graph.Value{"name": name})
			stats.Artists++
			var rel graph.Value
			for _, e := range g.Edges() {
				if e.Label == "by" && e.Dst == a {
					if v, _ := g.Attr(e.Src, "title"); v.Equal(titles[0]) {
						rel, _ = g.Attr(e.Src, "release")
					}
				}
			}
			al2 := g.AddNodeAttrs("album", map[graph.Attr]graph.Value{
				"title": titles[0], "release": rel})
			g.AddEdge(al2, "by", a2)
			stats.Albums++
			stats.DupPairs++
		}
	}
	return g, stats
}

// RandomPropertyGraph returns a seeded random property graph with n
// nodes, average out-degree deg, and attributes drawn from small
// domains. It is the host-graph workload of the validation benchmarks.
func RandomPropertyGraph(seed int64, n int, deg float64, labels []graph.Label, attrs []graph.Attr, domain int) *graph.Graph {
	rng := rand.New(rand.NewSource(seed))
	g := graph.New()
	for i := 0; i < n; i++ {
		id := g.AddNode(labels[rng.Intn(len(labels))])
		for _, a := range attrs {
			if rng.Intn(2) == 0 {
				g.SetAttr(id, a, graph.Int(rng.Intn(domain)))
			}
		}
	}
	edges := int(deg * float64(n))
	for i := 0; i < edges; i++ {
		g.AddEdge(graph.NodeID(rng.Intn(n)), "e", graph.NodeID(rng.Intn(n)))
	}
	return g
}

// RandomGEDSet returns a seeded random GED set with count members whose
// patterns have at most maxVars variables, drawing labels and attributes
// from the same vocabulary as RandomPropertyGraph.
func RandomGEDSet(seed int64, count, maxVars int, labels []graph.Label, attrs []graph.Attr, domain int) ged.Set {
	rng := rand.New(rand.NewSource(seed))
	var sigma ged.Set
	for i := 0; i < count; i++ {
		q := pattern.New()
		nv := 2 + rng.Intn(maxVars-1)
		vars := make([]pattern.Var, nv)
		for j := range vars {
			vars[j] = pattern.Var(fmt.Sprintf("v%d", j))
			q.AddVar(vars[j], labels[rng.Intn(len(labels))])
		}
		for j := 1; j < nv; j++ {
			q.AddEdge(vars[rng.Intn(j)], "e", vars[j])
		}
		var xs, ys []ged.Literal
		if rng.Intn(2) == 0 {
			xs = append(xs, ged.VarLit(vars[0], attrs[0], vars[nv-1], attrs[0]))
		} else {
			xs = append(xs, ged.ConstLit(vars[0], attrs[rng.Intn(len(attrs))], graph.Int(rng.Intn(domain))))
		}
		switch rng.Intn(3) {
		case 0:
			ys = append(ys, ged.IDLit(vars[0], vars[nv-1]))
		case 1:
			ys = append(ys, ged.ConstLit(vars[nv-1], attrs[rng.Intn(len(attrs))], graph.Int(rng.Intn(domain))))
		default:
			ys = append(ys, ged.VarLit(vars[0], attrs[1%len(attrs)], vars[nv-1], attrs[1%len(attrs)]))
		}
		sigma = append(sigma, ged.New(fmt.Sprintf("g%d", i), q, xs, ys))
	}
	return sigma
}
