package graph

import "sort"

// Graphs are add-only: nodes and edges are inserted, never removed, and
// attributes are set, never unset. A Delta is therefore an add-only
// batch of changes — the Δ of incremental GED validation — anchored
// between two values of the graph's mutation counter. Deltas come from
// two places:
//
//   - Graph.DeltaSince(v) replays the graph's own mutation journal from
//     version v to the present: the automatic capture between two
//     Version() ticks, always exact.
//   - Explicit construction, for producers that know their changes
//     (the chase builds its per-round coercion delta this way via the
//     journal of its working graph).
//
// Snapshot.Apply consumes a Delta to advance a frozen snapshot in time
// proportional to the delta, not the graph.
type Delta struct {
	// FromVersion is the graph version the delta is based on; Apply
	// requires it to equal the snapshot's SourceVersion.
	FromVersion uint64
	// ToVersion is the graph version after the delta; the applied
	// snapshot reports it as its SourceVersion.
	ToVersion uint64

	// Nodes are the added nodes, in insertion order. IDs are dense, so
	// they must be contiguous starting at the base graph's NumNodes.
	Nodes []NodeAdd
	// Edges are the inserted edges. Duplicates (within the delta or
	// against the base) are tolerated and ignored, matching AddEdge's
	// idempotence.
	Edges []Edge
	// Attrs are the attribute writes, in application order: a later
	// write to the same (node, attr) wins, matching SetAttr.
	Attrs []AttrWrite
}

// NodeAdd records one added node.
type NodeAdd struct {
	ID    NodeID
	Label Label
}

// AttrWrite records one SetAttr.
type AttrWrite struct {
	Node  NodeID
	Attr  Attr
	Value Value
}

// Empty reports whether the delta carries no changes.
func (d *Delta) Empty() bool {
	return len(d.Nodes) == 0 && len(d.Edges) == 0 && len(d.Attrs) == 0
}

// Size returns the number of recorded changes |Δ|.
func (d *Delta) Size() int { return len(d.Nodes) + len(d.Edges) + len(d.Attrs) }

// TouchedNodes returns the distinct nodes involved in the delta — added
// nodes, edge endpoints and attribute-write targets — sorted ascending.
// These are exactly the nodes every new violation must touch, so the
// result feeds incremental validation directly.
func (d *Delta) TouchedNodes() []NodeID {
	out := make([]NodeID, 0, len(d.Nodes)+2*len(d.Edges)+len(d.Attrs))
	for _, n := range d.Nodes {
		out = append(out, n.ID)
	}
	for _, e := range d.Edges {
		out = append(out, e.Src, e.Dst)
	}
	for _, w := range d.Attrs {
		out = append(out, w.Node)
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	dedup := out[:0]
	for i, n := range out {
		if i == 0 || n != out[i-1] {
			dedup = append(dedup, n)
		}
	}
	return dedup
}

// journal op kinds. Every mutation that ticks the version counter
// appends exactly one op, so the journal index of an op equals the
// version before it was applied — DeltaSince(v) is a slice.
type opKind uint8

const (
	opAddNode opKind = iota
	opAddEdge
	opSetAttr
)

// op is one journaled mutation.
type op struct {
	kind     opKind
	node     NodeID // AddNode: the new id; SetAttr: the target
	src, dst NodeID // AddEdge endpoints
	label    Label  // AddNode / AddEdge label
	attr     Attr   // SetAttr name
	val      Value  // SetAttr value
}

// DeltaSince returns the changes applied to g after version v, i.e.
// between two observations of Version(). It panics when v exceeds the
// current version (a delta from the future), and returns nil when the
// journal has been trimmed past v (see noteOp) — the caller's copy is
// then too old to catch up by delta and must re-freeze.
// DeltaSince(g.Version()) is the empty delta.
func (g *Graph) DeltaSince(v uint64) *Delta {
	if v > g.version {
		panic("graph: DeltaSince from a version the graph never had")
	}
	if v < g.journalBase {
		return nil
	}
	d := &Delta{FromVersion: v, ToVersion: g.version}
	for _, o := range g.journal[v-g.journalBase:] {
		switch o.kind {
		case opAddNode:
			d.Nodes = append(d.Nodes, NodeAdd{ID: o.node, Label: o.label})
		case opAddEdge:
			d.Edges = append(d.Edges, Edge{Src: o.src, Label: o.label, Dst: o.dst})
		default:
			d.Attrs = append(d.Attrs, AttrWrite{Node: o.node, Attr: o.attr, Value: o.val})
		}
	}
	return d
}
