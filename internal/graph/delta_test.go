package graph

import (
	"fmt"
	"math/rand"
	"testing"
	"testing/quick"
)

// applyRandomOps drives rng-chosen mutations against g and returns how
// many ops ran. Labels/attrs are drawn from small pools plus an
// occasional fresh symbol, so deltas exercise both the shared and the
// cloned symbol-table paths.
func applyRandomOps(g *Graph, rng *rand.Rand, nOps int) {
	labels := []Label{"person", "city", "product", Wildcard}
	elabels := []Label{"knows", "lives_in", "likes", Wildcard}
	attrs := []Attr{"name", "age", "type"}
	for i := 0; i < nOps; i++ {
		switch k := rng.Intn(10); {
		case k < 2 || g.NumNodes() == 0:
			l := labels[rng.Intn(len(labels))]
			if rng.Intn(8) == 0 {
				l = Label(fmt.Sprintf("fresh%d", rng.Intn(50)))
			}
			g.AddNode(l)
		case k < 7:
			src := NodeID(rng.Intn(g.NumNodes()))
			dst := NodeID(rng.Intn(g.NumNodes()))
			l := elabels[rng.Intn(len(elabels))]
			if rng.Intn(10) == 0 {
				l = Label(fmt.Sprintf("efresh%d", rng.Intn(20)))
			}
			g.AddEdge(src, l, dst)
		default:
			id := NodeID(rng.Intn(g.NumNodes()))
			a := attrs[rng.Intn(len(attrs))]
			if rng.Intn(10) == 0 {
				a = Attr(fmt.Sprintf("afresh%d", rng.Intn(10)))
			}
			if rng.Intn(2) == 0 {
				g.SetAttr(id, a, Int(rng.Intn(5)))
			} else {
				g.SetAttr(id, a, String(fmt.Sprintf("v%d", rng.Intn(5))))
			}
		}
	}
}

// assertSnapshotsEqual compares two snapshots through every read API.
func assertSnapshotsEqual(t *testing.T, want, got *Snapshot, g *Graph) {
	t.Helper()
	if got.NumNodes() != want.NumNodes() || got.NumEdges() != want.NumEdges() {
		t.Fatalf("sizes: got (%d,%d), want (%d,%d)",
			got.NumNodes(), got.NumEdges(), want.NumNodes(), want.NumEdges())
	}
	if got.SourceVersion() != g.Version() {
		t.Fatalf("version: got %d, want %d", got.SourceVersion(), g.Version())
	}
	if len(got.Nodes()) != len(want.Nodes()) {
		t.Fatalf("Nodes length: got %d, want %d", len(got.Nodes()), len(want.Nodes()))
	}
	// Collect every label/attr mentioned anywhere, plus ghosts.
	labelSet := map[Label]bool{Wildcard: true, "ghost": true}
	attrSet := map[Attr]bool{"zz": true}
	for _, id := range g.Nodes() {
		labelSet[g.Label(id)] = true
		for a := range g.Attrs(id) {
			attrSet[a] = true
		}
	}
	for _, e := range g.Edges() {
		labelSet[e.Label] = true
	}
	for _, id := range want.Nodes() {
		if got.Label(id) != want.Label(id) {
			t.Fatalf("label of n%d: got %s, want %s", id, got.Label(id), want.Label(id))
		}
		if got.OutDegree(id) != want.OutDegree(id) || got.InDegree(id) != want.InDegree(id) {
			t.Fatalf("degree of n%d: got (%d,%d), want (%d,%d)", id,
				got.OutDegree(id), got.InDegree(id), want.OutDegree(id), want.InDegree(id))
		}
		for a := range attrSet {
			wv, wok := want.Attr(id, a)
			gv, gok := got.Attr(id, a)
			if wok != gok || (wok && !wv.Equal(gv)) {
				t.Fatalf("attr %s of n%d: got (%v,%v), want (%v,%v)", a, id, gv, gok, wv, wok)
			}
		}
		for l := range labelSet {
			if !sameIDSet(got.OutNeighbors(id, l), want.OutNeighbors(id, l)) {
				t.Fatalf("OutNeighbors(n%d,%s) differ: got %v, want %v",
					id, l, got.OutNeighbors(id, l), want.OutNeighbors(id, l))
			}
			if !sameIDSet(got.InNeighbors(id, l), want.InNeighbors(id, l)) {
				t.Fatalf("InNeighbors(n%d,%s) differ", id, l)
			}
		}
	}
	for l := range labelSet {
		if !sameIDSet(got.NodesWithLabel(l), want.NodesWithLabel(l)) {
			t.Fatalf("NodesWithLabel(%s): got %v, want %v", l, got.NodesWithLabel(l), want.NodesWithLabel(l))
		}
		if got.LabelAvgDegree(l) != want.LabelAvgDegree(l) {
			t.Fatalf("LabelAvgDegree(%s): got %v, want %v", l, got.LabelAvgDegree(l), want.LabelAvgDegree(l))
		}
	}
	for _, e := range g.Edges() {
		if !got.HasEdge(e.Src, e.Label, e.Dst) {
			t.Fatalf("missing edge %v", e)
		}
		if !got.HasAnyEdge(e.Src, e.Dst) {
			t.Fatalf("missing any-edge %d->%d", e.Src, e.Dst)
		}
	}
	// The folded-in attribute index must agree too.
	for a := range attrSet {
		for _, v := range []Value{Int(0), Int(1), Int(2), String("v0"), String("v1")} {
			if !sameIDSet(got.Lookup(a, v), want.Lookup(a, v)) {
				t.Fatalf("Lookup(%s,%v): got %v, want %v", a, v, got.Lookup(a, v), want.Lookup(a, v))
			}
		}
	}
}

// TestSnapshotApplyEquivalentToFreeze drives a random mutation stream
// and, after every batch, checks that the delta-maintained snapshot is
// indistinguishable from a fresh Freeze of the mutated graph.
func TestSnapshotApplyEquivalentToFreeze(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		g := New()
		applyRandomOps(g, rng, 5+rng.Intn(30))
		snap := g.Freeze()
		for batch := 0; batch < 6; batch++ {
			from := g.Version()
			applyRandomOps(g, rng, rng.Intn(12))
			snap = snap.Apply(g.DeltaSince(from))
			assertSnapshotsEqual(t, g.Freeze(), snap, g)
		}
		return !t.Failed()
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

// TestSnapshotApplySharing checks the copy-on-write contract: applying
// a delta must not disturb the parent snapshot, and an empty delta
// returns the receiver.
func TestSnapshotApplySharing(t *testing.T) {
	g := New()
	applyRandomOps(g, rand.New(rand.NewSource(7)), 200)
	parent := g.Freeze()
	want := g.Freeze() // reference copy of the pre-delta state

	if got := parent.Apply(g.DeltaSince(g.Version())); got != parent {
		t.Fatal("empty delta must return the receiver")
	}

	from := g.Version()
	applyRandomOps(g, rand.New(rand.NewSource(8)), 50)
	child := parent.Apply(g.DeltaSince(from))
	assertSnapshotsEqual(t, g.Freeze(), child, g)
	if child.Lineage() != parent.Lineage() {
		t.Fatal("Apply must preserve lineage")
	}

	// The parent must still mirror the pre-delta graph exactly.
	pre := New()
	rng := rand.New(rand.NewSource(7))
	applyRandomOps(pre, rng, 200)
	assertSnapshotsEqual(t, want, parent, pre)
}

// TestJournalTrim: attribute overwrites must not grow graph memory
// without bound — the journal trims, DeltaSince answers nil for
// versions older than the retained history, and recent versions keep
// replaying exactly.
func TestJournalTrim(t *testing.T) {
	g := New()
	id := g.AddNode("a")
	v0 := g.Version()
	for i := 0; i < 200000; i++ {
		g.SetAttr(id, "p", Int(i%7))
	}
	if n := len(g.journal); n > 4096+2*g.Size() {
		t.Fatalf("journal not trimmed: %d ops for a size-%d graph", n, g.Size())
	}
	if d := g.DeltaSince(v0); d != nil {
		t.Fatal("DeltaSince must refuse versions older than the trimmed journal")
	}
	// A recent version still replays, and Apply over it matches Freeze.
	vRecent := g.Version()
	g.SetAttr(id, "p", Int(42))
	g.SetAttr(id, "q", String("x"))
	d := g.DeltaSince(vRecent)
	if d == nil || len(d.Attrs) != 2 {
		t.Fatalf("recent delta not replayable: %+v", d)
	}
	base := g.Freeze()
	from := g.Version()
	g.SetAttr(id, "p", Int(43))
	got := base.Apply(g.DeltaSince(from))
	if v, ok := got.Attr(id, "p"); !ok || !v.Equal(Int(43)) {
		t.Fatalf("post-trim Apply lost the write: %v %v", v, ok)
	}
}

// TestDeltaSince checks journal capture and TouchedNodes.
func TestDeltaSince(t *testing.T) {
	g := New()
	a := g.AddNode("person")
	b := g.AddNode("person")
	v0 := g.Version()
	c := g.AddNode("city")
	g.AddEdge(a, "lives_in", c)
	g.SetAttr(b, "name", String("bob"))
	d := g.DeltaSince(v0)
	if d.FromVersion != v0 || d.ToVersion != g.Version() {
		t.Fatalf("versions: %d..%d, want %d..%d", d.FromVersion, d.ToVersion, v0, g.Version())
	}
	if len(d.Nodes) != 1 || d.Nodes[0].ID != c || d.Nodes[0].Label != "city" {
		t.Fatalf("nodes: %+v", d.Nodes)
	}
	if len(d.Edges) != 1 || len(d.Attrs) != 1 || d.Size() != 3 {
		t.Fatalf("delta: %+v", d)
	}
	touched := d.TouchedNodes()
	if !sameIDSet(touched, []NodeID{a, b, c}) {
		t.Fatalf("touched: %v", touched)
	}
	if !g.DeltaSince(g.Version()).Empty() {
		t.Fatal("delta at head must be empty")
	}
}
