// Package graph implements the property-graph data model of
// "Dependencies for Graphs" (Fan & Lu, PODS 2017), Section 2.
//
// A graph G = (V, E, L, F_A) has a finite set of nodes V, a finite set of
// labeled directed edges E ⊆ V × Γ × V, a node labeling L, and a partial
// attribute map F_A assigning each node a finite tuple of attribute/value
// pairs. Graphs are schemaless: a node may or may not carry any given
// attribute, but every node has an implicit, unique id (its NodeID).
//
// The special wildcard label "_" participates in the asymmetric label
// match relation ⪯ (LabelMatches): a wildcard matches any label, but a
// concrete label matches only itself. Ordinary data graphs use concrete
// labels; canonical graphs built from patterns (Section 5) may carry
// wildcards, which is why the relation lives here rather than in the
// pattern matcher.
package graph

import (
	"fmt"
	"sort"
	"strings"
)

// Label is a node or edge label drawn from the countably infinite set Γ,
// or the wildcard.
type Label string

// Wildcard is the special label '_' that matches any label (Section 2).
const Wildcard Label = "_"

// LabelMatches reports ι ⪯ ι′: either ι = ι′, or ι is the wildcard.
// The relation is asymmetric — a concrete label does not match the
// wildcard — exactly as the paper defines it.
func LabelMatches(pat, host Label) bool {
	return pat == Wildcard || pat == host
}

// LabelsCompatible reports whether two labels may describe the same node,
// i.e. ι ⪯ ι′ or ι′ ⪯ ι. Merging nodes whose labels are incompatible is
// a label conflict in the chase (Section 4.1).
func LabelsCompatible(a, b Label) bool {
	return LabelMatches(a, b) || LabelMatches(b, a)
}

// ResolveLabels returns the concrete label describing a merged node: the
// non-wildcard one if either is concrete, otherwise the wildcard. It must
// only be called on compatible labels.
func ResolveLabels(a, b Label) Label {
	if a == Wildcard {
		return b
	}
	return a
}

// Attr is an attribute name drawn from the countably infinite set Υ.
// The node identity is not an Attr; it is exposed as NodeID.
type Attr string

// NodeID identifies a node within one Graph. IDs are dense indexes
// assigned in insertion order; they realize the paper's special id
// attribute, which every node has and which is unique.
type NodeID int

// Edge is a labeled directed edge (src, label, dst).
type Edge struct {
	Src   NodeID
	Label Label
	Dst   NodeID
}

// node is the internal per-node record.
type node struct {
	label Label
	attrs map[Attr]Value
}

// Graph is a mutable finite directed labeled property graph. The zero
// value is not usable; construct with New.
type Graph struct {
	nodes   []node
	ids     []NodeID // cache of all ids in insertion order
	edges   map[Edge]struct{}
	out     map[NodeID][]Edge
	in      map[NodeID][]Edge
	byLabel map[Label][]NodeID
	// version counts mutations; it keys snapshot caches (see Freeze and
	// the Engine facade) so an unchanged graph is frozen only once.
	version uint64
	// journal records recent version ticks as one op each, so DeltaSince
	// can replay a suffix of the mutation history. Node and edge ops are
	// bounded by the graph itself, but attribute overwrites are not, so
	// the journal is trimmed once it outgrows the graph (see noteOp) —
	// journalBase is the version of the oldest retained op, and
	// DeltaSince answers nil for anything older. Clone does not copy the
	// journal; the clone rebuilds its own as it replays the mutations.
	journal     []op
	journalBase uint64
}

// noteOp journals one mutation and ticks the version. When the journal
// outgrows the graph by a comfortable margin it is trimmed to its
// recent half: every delta consumer this library ships (the Engine's
// caches, the chase's live coercion) falls back to a full freeze well
// before lagging that far, so the trim only sheds history nobody can
// use, and memory stays O(|G|) even under endless attribute overwrites.
func (g *Graph) noteOp(o op) {
	g.journal = append(g.journal, o)
	g.version++
	if limit := 4096 + 2*g.Size(); len(g.journal) > limit {
		drop := len(g.journal) - limit/2
		g.journalBase += uint64(drop)
		trimmed := make([]op, len(g.journal)-drop)
		copy(trimmed, g.journal[drop:])
		g.journal = trimmed
	}
}

// New returns an empty graph.
func New() *Graph {
	return &Graph{
		edges:   make(map[Edge]struct{}),
		out:     make(map[NodeID][]Edge),
		in:      make(map[NodeID][]Edge),
		byLabel: make(map[Label][]NodeID),
	}
}

// AddNode adds a node with the given label and no attributes, returning
// its id.
func (g *Graph) AddNode(label Label) NodeID {
	id := NodeID(len(g.nodes))
	g.nodes = append(g.nodes, node{label: label})
	g.ids = append(g.ids, id)
	g.byLabel[label] = append(g.byLabel[label], id)
	g.noteOp(op{kind: opAddNode, node: id, label: label})
	return id
}

// AddNodeAttrs adds a node with the given label and attribute tuple.
func (g *Graph) AddNodeAttrs(label Label, attrs map[Attr]Value) NodeID {
	id := g.AddNode(label)
	for a, v := range attrs {
		g.SetAttr(id, a, v)
	}
	return id
}

// AddEdge inserts the directed edge (src, label, dst). Duplicate
// insertions are idempotent, matching the set semantics of E.
func (g *Graph) AddEdge(src NodeID, label Label, dst NodeID) {
	e := Edge{Src: src, Label: label, Dst: dst}
	if _, ok := g.edges[e]; ok {
		return
	}
	g.edges[e] = struct{}{}
	g.out[src] = append(g.out[src], e)
	g.in[dst] = append(g.in[dst], e)
	g.noteOp(op{kind: opAddEdge, src: src, dst: dst, label: label})
}

// HasEdge reports whether the exact edge (src, label, dst) is present.
func (g *Graph) HasEdge(src NodeID, label Label, dst NodeID) bool {
	_, ok := g.edges[Edge{Src: src, Label: label, Dst: dst}]
	return ok
}

// SetAttr sets attribute a of node id to value v, creating it if absent.
func (g *Graph) SetAttr(id NodeID, a Attr, v Value) {
	n := &g.nodes[id]
	if n.attrs == nil {
		n.attrs = make(map[Attr]Value)
	}
	n.attrs[a] = v
	g.noteOp(op{kind: opSetAttr, node: id, attr: a, val: v})
}

// Version is the mutation counter: it increments on every AddNode,
// AddEdge and SetAttr, so callers holding a Snapshot (or any derived
// structure) can detect staleness cheaply.
func (g *Graph) Version() uint64 { return g.version }

// Attr returns the value of attribute a at node id, and whether the node
// carries that attribute. Graphs are schemaless, so absence is routine.
func (g *Graph) Attr(id NodeID, a Attr) (Value, bool) {
	v, ok := g.nodes[id].attrs[a]
	return v, ok
}

// Attrs returns the attribute tuple of node id. The returned map is the
// graph's own storage; callers must not mutate it.
func (g *Graph) Attrs(id NodeID) map[Attr]Value { return g.nodes[id].attrs }

// Label returns the label of node id.
func (g *Graph) Label(id NodeID) Label { return g.nodes[id].label }

// NumNodes returns |V|.
func (g *Graph) NumNodes() int { return len(g.nodes) }

// NumEdges returns |E|.
func (g *Graph) NumEdges() int { return len(g.edges) }

// Size returns |G| = |V| + |E|, the measure used by the chase bound of
// Theorem 1.
func (g *Graph) Size() int { return g.NumNodes() + g.NumEdges() }

// Nodes returns all node ids in insertion order. The returned slice is
// the graph's own cache; callers must not mutate it.
func (g *Graph) Nodes() []NodeID { return g.ids }

// Edges returns all edges in a deterministic order.
func (g *Graph) Edges() []Edge {
	es := make([]Edge, 0, len(g.edges))
	for e := range g.edges {
		es = append(es, e)
	}
	sort.Slice(es, func(i, j int) bool {
		a, b := es[i], es[j]
		if a.Src != b.Src {
			return a.Src < b.Src
		}
		if a.Label != b.Label {
			return a.Label < b.Label
		}
		return a.Dst < b.Dst
	})
	return es
}

// Out returns the outgoing edges of node id.
func (g *Graph) Out(id NodeID) []Edge { return g.out[id] }

// In returns the incoming edges of node id.
func (g *Graph) In(id NodeID) []Edge { return g.in[id] }

// NodesWithLabel returns the nodes carrying exactly the given label.
// Wildcard-labeled nodes are returned only for label == Wildcard; use
// CandidateNodes for ⪯-based lookup.
func (g *Graph) NodesWithLabel(label Label) []NodeID { return g.byLabel[label] }

// CandidateNodes returns the nodes a pattern node labeled pat may map to
// under ⪯: every node if pat is the wildcard, otherwise the nodes whose
// label equals pat.
func (g *Graph) CandidateNodes(pat Label) []NodeID {
	if pat == Wildcard {
		return g.Nodes()
	}
	return g.byLabel[pat]
}

// HasAnyEdge reports whether some edge src -> dst exists, under any
// label — the host-side check for wildcard-labeled pattern edges.
func (g *Graph) HasAnyEdge(src, dst NodeID) bool {
	for _, e := range g.out[src] {
		if e.Dst == dst {
			return true
		}
	}
	return false
}

// OutNeighbors returns the distinct targets of src's outgoing edges
// whose label is matched by l under ⪯ (the wildcard matches any label),
// in first-seen order. Deduplication scans the (short) result slice:
// adjacency lists of real graphs are small and this sits on the
// matcher's fallback hot path; Snapshot.OutNeighbors is the
// zero-allocation variant.
func (g *Graph) OutNeighbors(src NodeID, l Label) []NodeID {
	var out []NodeID
	for _, e := range g.out[src] {
		if !LabelMatches(l, e.Label) {
			continue
		}
		if !containsID(out, e.Dst) {
			out = append(out, e.Dst)
		}
	}
	return out
}

// InNeighbors is OutNeighbors for incoming edges: the distinct sources
// of dst's incoming edges whose label is matched by l under ⪯.
func (g *Graph) InNeighbors(dst NodeID, l Label) []NodeID {
	var out []NodeID
	for _, e := range g.in[dst] {
		if !LabelMatches(l, e.Label) {
			continue
		}
		if !containsID(out, e.Src) {
			out = append(out, e.Src)
		}
	}
	return out
}

func containsID(xs []NodeID, n NodeID) bool {
	for _, x := range xs {
		if x == n {
			return true
		}
	}
	return false
}

// Clone returns a deep copy of g.
func (g *Graph) Clone() *Graph {
	c := New()
	for _, n := range g.nodes {
		id := c.AddNode(n.label)
		for a, v := range n.attrs {
			c.SetAttr(id, a, v)
		}
	}
	for e := range g.edges {
		c.AddEdge(e.Src, e.Label, e.Dst)
	}
	return c
}

// DisjointUnion appends a copy of h to g and returns the mapping from
// h's node ids to their new ids in g. It is the ⊎ used to build canonical
// graphs G_Σ (Section 5.1).
func (g *Graph) DisjointUnion(h *Graph) map[NodeID]NodeID {
	m := make(map[NodeID]NodeID, h.NumNodes())
	for _, id := range h.Nodes() {
		nid := g.AddNode(h.Label(id))
		for a, v := range h.Attrs(id) {
			g.SetAttr(nid, a, v)
		}
		m[id] = nid
	}
	for e := range h.edges {
		g.AddEdge(m[e.Src], e.Label, m[e.Dst])
	}
	return m
}

// String renders the graph in a compact multi-line form for debugging
// and golden tests.
func (g *Graph) String() string {
	var b strings.Builder
	for i, n := range g.nodes {
		fmt.Fprintf(&b, "n%d:%s", i, n.label)
		if len(n.attrs) > 0 {
			names := make([]string, 0, len(n.attrs))
			for a := range n.attrs {
				names = append(names, string(a))
			}
			sort.Strings(names)
			b.WriteString(" {")
			for j, a := range names {
				if j > 0 {
					b.WriteString(", ")
				}
				fmt.Fprintf(&b, "%s=%s", a, n.attrs[Attr(a)])
			}
			b.WriteString("}")
		}
		b.WriteString("\n")
	}
	for _, e := range g.Edges() {
		fmt.Fprintf(&b, "n%d -%s-> n%d\n", e.Src, e.Label, e.Dst)
	}
	return b.String()
}
