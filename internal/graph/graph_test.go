package graph

import (
	"testing"
	"testing/quick"
)

func TestLabelMatches(t *testing.T) {
	cases := []struct {
		pat, host Label
		want      bool
	}{
		{"person", "person", true},
		{"person", "product", false},
		{Wildcard, "person", true},
		{Wildcard, Wildcard, true},
		{"person", Wildcard, false}, // ⪯ is asymmetric
	}
	for _, c := range cases {
		if got := LabelMatches(c.pat, c.host); got != c.want {
			t.Errorf("LabelMatches(%q, %q) = %v, want %v", c.pat, c.host, got, c.want)
		}
	}
}

func TestLabelsCompatible(t *testing.T) {
	if !LabelsCompatible("a", "a") {
		t.Error("identical labels must be compatible")
	}
	if !LabelsCompatible(Wildcard, "a") || !LabelsCompatible("a", Wildcard) {
		t.Error("wildcard must be compatible with any label, both ways")
	}
	if LabelsCompatible("a", "b") {
		t.Error("distinct concrete labels must conflict")
	}
}

func TestResolveLabels(t *testing.T) {
	if got := ResolveLabels(Wildcard, "a"); got != "a" {
		t.Errorf("ResolveLabels(_, a) = %s", got)
	}
	if got := ResolveLabels("a", Wildcard); got != "a" {
		t.Errorf("ResolveLabels(a, _) = %s", got)
	}
	if got := ResolveLabels(Wildcard, Wildcard); got != Wildcard {
		t.Errorf("ResolveLabels(_, _) = %s", got)
	}
}

func TestAddNodeAndAttrs(t *testing.T) {
	g := New()
	a := g.AddNodeAttrs("person", map[Attr]Value{"name": String("Ada")})
	b := g.AddNode("product")
	if g.NumNodes() != 2 {
		t.Fatalf("NumNodes = %d, want 2", g.NumNodes())
	}
	if g.Label(a) != "person" || g.Label(b) != "product" {
		t.Error("labels not stored")
	}
	if v, ok := g.Attr(a, "name"); !ok || !v.Equal(String("Ada")) {
		t.Error("attribute not stored")
	}
	if _, ok := g.Attr(b, "name"); ok {
		t.Error("schemaless: product must not have name")
	}
	g.SetAttr(a, "name", String("Lovelace"))
	if v, _ := g.Attr(a, "name"); !v.Equal(String("Lovelace")) {
		t.Error("SetAttr must overwrite")
	}
}

func TestEdgesSetSemantics(t *testing.T) {
	g := New()
	a := g.AddNode("x")
	b := g.AddNode("y")
	g.AddEdge(a, "e", b)
	g.AddEdge(a, "e", b) // duplicate
	g.AddEdge(b, "e", a)
	g.AddEdge(a, "f", b)
	if g.NumEdges() != 3 {
		t.Fatalf("NumEdges = %d, want 3", g.NumEdges())
	}
	if !g.HasEdge(a, "e", b) || !g.HasEdge(b, "e", a) || !g.HasEdge(a, "f", b) {
		t.Error("edges missing")
	}
	if g.HasEdge(b, "f", a) {
		t.Error("phantom edge")
	}
	if len(g.Out(a)) != 2 || len(g.In(b)) != 2 || len(g.Out(b)) != 1 {
		t.Error("adjacency lists wrong")
	}
}

func TestSelfLoop(t *testing.T) {
	g := New()
	a := g.AddNode("x")
	g.AddEdge(a, "e", a)
	if !g.HasEdge(a, "e", a) {
		t.Error("self loop missing")
	}
	if len(g.Out(a)) != 1 || len(g.In(a)) != 1 {
		t.Error("self loop adjacency wrong")
	}
}

func TestCandidateNodes(t *testing.T) {
	g := New()
	a := g.AddNode("x")
	b := g.AddNode("y")
	w := g.AddNode(Wildcard)
	got := g.CandidateNodes("x")
	if len(got) != 1 || got[0] != a {
		t.Errorf("CandidateNodes(x) = %v", got)
	}
	if n := len(g.CandidateNodes(Wildcard)); n != 3 {
		t.Errorf("CandidateNodes(_) size = %d, want 3", n)
	}
	// A concrete pattern label does not match a wildcard-labeled node.
	for _, id := range g.CandidateNodes("y") {
		if id == w {
			t.Error("wildcard node returned for concrete label")
		}
	}
	_ = b
}

func TestCloneIndependence(t *testing.T) {
	g := New()
	a := g.AddNodeAttrs("x", map[Attr]Value{"k": Int(1)})
	b := g.AddNode("y")
	g.AddEdge(a, "e", b)
	c := g.Clone()
	c.SetAttr(a, "k", Int(2))
	c.AddEdge(b, "e", a)
	if v, _ := g.Attr(a, "k"); !v.Equal(Int(1)) {
		t.Error("clone mutated original attrs")
	}
	if g.HasEdge(b, "e", a) {
		t.Error("clone mutated original edges")
	}
	if c.NumEdges() != 2 || g.NumEdges() != 1 {
		t.Error("edge counts wrong after clone")
	}
}

func TestDisjointUnion(t *testing.T) {
	g := New()
	a := g.AddNode("x")
	h := New()
	b := h.AddNodeAttrs("y", map[Attr]Value{"k": Int(7)})
	c := h.AddNode("z")
	h.AddEdge(b, "e", c)
	m := g.DisjointUnion(h)
	if g.NumNodes() != 3 || g.NumEdges() != 1 {
		t.Fatalf("union size wrong: %d nodes %d edges", g.NumNodes(), g.NumEdges())
	}
	if g.Label(m[b]) != "y" || g.Label(m[c]) != "z" {
		t.Error("labels not copied")
	}
	if v, ok := g.Attr(m[b], "k"); !ok || !v.Equal(Int(7)) {
		t.Error("attrs not copied")
	}
	if !g.HasEdge(m[b], "e", m[c]) {
		t.Error("edge not copied")
	}
	_ = a
}

func TestValueOrderAndEquality(t *testing.T) {
	if !Int(1).Equal(Number(1)) {
		t.Error("Int and Number must agree")
	}
	if String("1").Equal(Int(1)) {
		t.Error("string and number constants are distinct elements of U")
	}
	if !Int(1).Less(Int(2)) || Int(2).Less(Int(1)) {
		t.Error("numeric order wrong")
	}
	if !String("a").Less(String("b")) {
		t.Error("string order wrong")
	}
	if !Int(5).Less(String("")) {
		t.Error("numbers must precede strings in the total order")
	}
	if Bool(true) != Int(1) || Bool(false) != Int(0) {
		t.Error("Bool encoding")
	}
	if Int(3).Compare(Int(3)) != 0 || Int(3).Compare(Int(4)) != -1 || Int(4).Compare(Int(3)) != 1 {
		t.Error("Compare wrong")
	}
}

func TestValueString(t *testing.T) {
	if Int(3).String() != "3" {
		t.Errorf("Int(3).String() = %s", Int(3).String())
	}
	if String("x").String() != `"x"` {
		t.Errorf("String(x).String() = %s", String("x").String())
	}
	if Number(2.5).String() != "2.5" {
		t.Errorf("Number(2.5).String() = %s", Number(2.5).String())
	}
}

// TestValueOrderProperties checks that Less is a strict total order on a
// mixed population of values, via testing/quick.
func TestValueOrderProperties(t *testing.T) {
	mk := func(isNum bool, n float64, s string) Value {
		if isNum {
			return Number(n)
		}
		return String(s)
	}
	trichotomy := func(an bool, af float64, as string, bn bool, bf float64, bs string) bool {
		a, b := mk(an, af, as), mk(bn, bf, bs)
		n := 0
		if a.Less(b) {
			n++
		}
		if b.Less(a) {
			n++
		}
		if a.Equal(b) {
			n++
		}
		return n == 1
	}
	if err := quick.Check(trichotomy, nil); err != nil {
		t.Error(err)
	}
	transitive := func(af, bf, cf float64) bool {
		a, b, c := Number(af), Number(bf), Number(cf)
		if a.Less(b) && b.Less(c) {
			return a.Less(c)
		}
		return true
	}
	if err := quick.Check(transitive, nil); err != nil {
		t.Error(err)
	}
}

func TestGraphString(t *testing.T) {
	g := New()
	a := g.AddNodeAttrs("person", map[Attr]Value{"name": String("Ada"), "age": Int(36)})
	b := g.AddNode("city")
	g.AddEdge(a, "born_in", b)
	want := "n0:person {age=36, name=\"Ada\"}\nn1:city\nn0 -born_in-> n1\n"
	if got := g.String(); got != want {
		t.Errorf("String() =\n%s\nwant\n%s", got, want)
	}
}

func TestSizeAndNodes(t *testing.T) {
	g := New()
	for i := 0; i < 5; i++ {
		g.AddNode("n")
	}
	g.AddEdge(0, "e", 1)
	g.AddEdge(1, "e", 2)
	if g.Size() != 7 {
		t.Errorf("Size = %d, want 7", g.Size())
	}
	ids := g.Nodes()
	for i, id := range ids {
		if id != NodeID(i) {
			t.Errorf("Nodes()[%d] = %d", i, id)
		}
	}
}
