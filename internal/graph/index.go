package graph

import "sort"

// AttrIndex is a secondary index from (attribute, value) to the nodes
// carrying that binding — the access path that turns constant literals
// of dependency antecedents into index lookups instead of scans.
//
// The index is a snapshot: it reflects the graph at Build time and is
// immutable (and therefore safe for concurrent readers) afterwards.
type AttrIndex struct {
	byAttr map[Attr]map[Value][]NodeID
}

// BuildAttrIndex scans g once and indexes every stored attribute value.
func BuildAttrIndex(g *Graph) *AttrIndex {
	idx := &AttrIndex{byAttr: make(map[Attr]map[Value][]NodeID)}
	for _, id := range g.Nodes() {
		for a, v := range g.Attrs(id) {
			m := idx.byAttr[a]
			if m == nil {
				m = make(map[Value][]NodeID)
				idx.byAttr[a] = m
			}
			m[v] = append(m[v], id)
		}
	}
	// Sort postings for deterministic iteration.
	for _, m := range idx.byAttr {
		for v := range m {
			ids := m[v]
			sort.Slice(ids, func(i, j int) bool { return ids[i] < ids[j] })
		}
	}
	return idx
}

// Lookup returns the nodes with attribute a equal to v. The returned
// slice is the index's own storage; callers must not mutate it.
func (idx *AttrIndex) Lookup(a Attr, v Value) []NodeID {
	return idx.byAttr[a][v]
}

// Selectivity returns the number of nodes carrying a = v.
func (idx *AttrIndex) Selectivity(a Attr, v Value) int {
	return len(idx.byAttr[a][v])
}

// HasAttr reports whether any node carries attribute a.
func (idx *AttrIndex) HasAttr(a Attr) bool {
	return len(idx.byAttr[a]) > 0
}
