package graph

import (
	"fmt"
	"math"
	"sort"
)

// This file is the persistence contract of the graph package: ApplyDelta
// replays a logical Delta onto a mutable graph (the consumer side of a
// delta WAL), and Image is a flat arena export of a whole graph (the
// payload of a checkpoint file). Together they give a storage layer the
// identity it needs: FromImage(ImageOf(g)) followed by ApplyDelta of the
// journal tail reconstructs g exactly, version counter included.

// ApplyDelta replays d onto g. It requires d.FromVersion == g.Version():
// deltas compose only when applied in sequence, exactly as DeltaSince
// produced them. The delta is validated before any mutation, so a
// returned error leaves g unchanged.
//
// After a successful replay g.Version() == d.ToVersion even when some of
// the delta's ops were no-ops locally (AddEdge is idempotent and does
// not tick the version on duplicates): the version counter is resynced
// to the producer's and the local journal dropped, so a later
// DeltaSince against pre-resync versions answers nil rather than a
// mis-sliced history.
func (g *Graph) ApplyDelta(d *Delta) error {
	if d.FromVersion != g.version {
		return fmt.Errorf("graph: delta from version %d does not apply at version %d", d.FromVersion, g.version)
	}
	n := len(g.nodes)
	for i, na := range d.Nodes {
		if na.ID != NodeID(n+i) {
			return fmt.Errorf("graph: delta node id n%d is not contiguous at %d nodes", na.ID, n+i)
		}
	}
	n += len(d.Nodes)
	for _, e := range d.Edges {
		if e.Src < 0 || int(e.Src) >= n || e.Dst < 0 || int(e.Dst) >= n {
			return fmt.Errorf("graph: delta edge n%d -%s-> n%d references an unknown node", e.Src, e.Label, e.Dst)
		}
	}
	for _, w := range d.Attrs {
		if w.Node < 0 || int(w.Node) >= n {
			return fmt.Errorf("graph: delta attr write to unknown node n%d", w.Node)
		}
	}
	for _, na := range d.Nodes {
		g.AddNode(na.Label)
	}
	for _, e := range d.Edges {
		g.AddEdge(e.Src, e.Label, e.Dst)
	}
	for _, w := range d.Attrs {
		g.SetAttr(w.Node, w.Attr, w.Value)
	}
	if g.version != d.ToVersion {
		g.version = d.ToVersion
		g.journal = nil
		g.journalBase = d.ToVersion
	}
	return nil
}

// Image is a flat, arena-style export of a Graph: every label, attribute
// name and string value interned into a dense symbol table, every node,
// edge and attribute a fixed-width row in a columnar array. The layout
// is what a checkpoint file stores section by section — a loader can
// alias the numeric columns directly onto mmap'd bytes and hand the
// result to FromImage without any per-row decoding.
type Image struct {
	// Version is the graph's mutation counter at export time; FromImage
	// restores it, so deltas journaled after the export still compose.
	Version uint64

	// Symbol tables.
	Labels    []string // node and edge labels
	AttrNames []string // attribute names
	Strings   []string // string attribute values

	// NodeLabel[id] indexes Labels; node ids are the dense 0..n-1.
	NodeLabel []uint32

	// Edge rows, parallel arrays. EdgeLabel indexes Labels.
	EdgeSrc   []uint32
	EdgeLabel []uint32
	EdgeDst   []uint32

	// Attribute rows, parallel arrays. AttrName indexes AttrNames;
	// AttrKind is the ValueKind; AttrVal holds float64 bits for numbers
	// and a Strings index for strings.
	AttrNode []uint32
	AttrName []uint32
	AttrKind []uint8
	AttrVal  []uint64
}

// ImageOf exports g as a flat Image. Rows are emitted deterministically
// (nodes in id order, edges in Edges() order, attributes per node in
// name order), so identical graphs produce identical images.
func ImageOf(g *Graph) *Image {
	img := &Image{Version: g.version}
	labelIdx := make(map[Label]uint32)
	labelOf := func(l Label) uint32 {
		if i, ok := labelIdx[l]; ok {
			return i
		}
		i := uint32(len(img.Labels))
		img.Labels = append(img.Labels, string(l))
		labelIdx[l] = i
		return i
	}
	attrIdx := make(map[Attr]uint32)
	attrOf := func(a Attr) uint32 {
		if i, ok := attrIdx[a]; ok {
			return i
		}
		i := uint32(len(img.AttrNames))
		img.AttrNames = append(img.AttrNames, string(a))
		attrIdx[a] = i
		return i
	}
	strIdx := make(map[string]uint32)
	strOf := func(s string) uint32 {
		if i, ok := strIdx[s]; ok {
			return i
		}
		i := uint32(len(img.Strings))
		img.Strings = append(img.Strings, s)
		strIdx[s] = i
		return i
	}

	img.NodeLabel = make([]uint32, len(g.nodes))
	for id, n := range g.nodes {
		img.NodeLabel[id] = labelOf(n.label)
	}
	for _, e := range g.Edges() {
		img.EdgeSrc = append(img.EdgeSrc, uint32(e.Src))
		img.EdgeLabel = append(img.EdgeLabel, labelOf(e.Label))
		img.EdgeDst = append(img.EdgeDst, uint32(e.Dst))
	}
	for id, n := range g.nodes {
		if len(n.attrs) == 0 {
			continue
		}
		names := make([]string, 0, len(n.attrs))
		for a := range n.attrs {
			names = append(names, string(a))
		}
		sort.Strings(names)
		for _, a := range names {
			v := n.attrs[Attr(a)]
			img.AttrNode = append(img.AttrNode, uint32(id))
			img.AttrName = append(img.AttrName, attrOf(Attr(a)))
			img.AttrKind = append(img.AttrKind, uint8(v.Kind()))
			if v.Kind() == KindNumber {
				img.AttrVal = append(img.AttrVal, math.Float64bits(v.Num()))
			} else {
				img.AttrVal = append(img.AttrVal, uint64(strOf(v.Str())))
			}
		}
	}
	return img
}

// FromImage rebuilds a Graph from an Image. Every index is bounds
// checked, so a corrupted image yields an error, never a panic. The
// rebuilt graph starts with an empty journal based at img.Version: its
// history begins where the image was cut, exactly like a graph whose
// journal was trimmed.
func (img *Image) validate() error {
	if len(img.EdgeSrc) != len(img.EdgeLabel) || len(img.EdgeSrc) != len(img.EdgeDst) {
		return fmt.Errorf("graph: image edge columns disagree (%d/%d/%d rows)",
			len(img.EdgeSrc), len(img.EdgeLabel), len(img.EdgeDst))
	}
	if len(img.AttrNode) != len(img.AttrName) || len(img.AttrNode) != len(img.AttrKind) || len(img.AttrNode) != len(img.AttrVal) {
		return fmt.Errorf("graph: image attr columns disagree (%d/%d/%d/%d rows)",
			len(img.AttrNode), len(img.AttrName), len(img.AttrKind), len(img.AttrVal))
	}
	nNodes, nLabels := uint32(len(img.NodeLabel)), uint32(len(img.Labels))
	for _, li := range img.NodeLabel {
		if li >= nLabels {
			return fmt.Errorf("graph: image node label index %d out of range", li)
		}
	}
	for i := range img.EdgeSrc {
		if img.EdgeSrc[i] >= nNodes || img.EdgeDst[i] >= nNodes {
			return fmt.Errorf("graph: image edge row %d references an unknown node", i)
		}
		if img.EdgeLabel[i] >= nLabels {
			return fmt.Errorf("graph: image edge row %d label index out of range", i)
		}
	}
	for i := range img.AttrNode {
		if img.AttrNode[i] >= nNodes {
			return fmt.Errorf("graph: image attr row %d references an unknown node", i)
		}
		if img.AttrName[i] >= uint32(len(img.AttrNames)) {
			return fmt.Errorf("graph: image attr row %d name index out of range", i)
		}
		switch ValueKind(img.AttrKind[i]) {
		case KindNumber:
		case KindString:
			if img.AttrVal[i] >= uint64(len(img.Strings)) {
				return fmt.Errorf("graph: image attr row %d string index out of range", i)
			}
		default:
			return fmt.Errorf("graph: image attr row %d has unknown value kind %d", i, img.AttrKind[i])
		}
	}
	return nil
}

// FromImage rebuilds the exported graph; see Image.
func FromImage(img *Image) (*Graph, error) {
	if err := img.validate(); err != nil {
		return nil, err
	}
	g := New()
	g.nodes = make([]node, len(img.NodeLabel))
	g.ids = make([]NodeID, len(img.NodeLabel))
	for i, li := range img.NodeLabel {
		l := Label(img.Labels[li])
		g.nodes[i] = node{label: l}
		g.ids[i] = NodeID(i)
		g.byLabel[l] = append(g.byLabel[l], NodeID(i))
	}
	for i := range img.EdgeSrc {
		e := Edge{Src: NodeID(img.EdgeSrc[i]), Label: Label(img.Labels[img.EdgeLabel[i]]), Dst: NodeID(img.EdgeDst[i])}
		if _, dup := g.edges[e]; dup {
			continue
		}
		g.edges[e] = struct{}{}
		g.out[e.Src] = append(g.out[e.Src], e)
		g.in[e.Dst] = append(g.in[e.Dst], e)
	}
	for i := range img.AttrNode {
		n := &g.nodes[img.AttrNode[i]]
		if n.attrs == nil {
			n.attrs = make(map[Attr]Value)
		}
		var v Value
		if ValueKind(img.AttrKind[i]) == KindNumber {
			v = Number(math.Float64frombits(img.AttrVal[i]))
		} else {
			v = String(img.Strings[img.AttrVal[i]])
		}
		n.attrs[Attr(img.AttrNames[img.AttrName[i]])] = v
	}
	g.version = img.Version
	g.journalBase = img.Version
	return g, nil
}
