package graph

import (
	"math/rand"
	"testing"
	"testing/quick"
)

// assertGraphsEqual compares two graphs structurally (String renders
// deterministically) and by version counter.
func assertGraphsEqual(t *testing.T, want, got *Graph) {
	t.Helper()
	if got.String() != want.String() {
		t.Fatalf("graphs differ:\ngot:\n%s\nwant:\n%s", got.String(), want.String())
	}
	if got.Version() != want.Version() {
		t.Fatalf("version: got %d, want %d", got.Version(), want.Version())
	}
}

// TestDeltaSinceEmptySuffix: the delta from the current version is the
// empty delta, and applying it is a no-op that does not tick anything.
func TestDeltaSinceEmptySuffix(t *testing.T) {
	g := New()
	applyRandomOps(g, rand.New(rand.NewSource(3)), 60)
	d := g.DeltaSince(g.Version())
	if d == nil || !d.Empty() || d.Size() != 0 {
		t.Fatalf("delta at head must be empty, got %+v", d)
	}
	if d.FromVersion != g.Version() || d.ToVersion != g.Version() {
		t.Fatalf("empty delta versions: %d..%d, want %d..%d", d.FromVersion, d.ToVersion, g.Version(), g.Version())
	}
	v := g.Version()
	if err := g.ApplyDelta(d); err != nil {
		t.Fatal(err)
	}
	if g.Version() != v {
		t.Fatalf("empty ApplyDelta ticked the version: %d -> %d", v, g.Version())
	}
}

// TestDeltaSinceFullReplay: DeltaSince(0) of an untrimmed graph is its
// whole history — replaying it onto a fresh graph reconstructs the
// original exactly. This is the WAL's "recover with no checkpoint"
// contract.
func TestDeltaSinceFullReplay(t *testing.T) {
	f := func(seed int64) bool {
		g := New()
		applyRandomOps(g, rand.New(rand.NewSource(seed)), 120)
		d := g.DeltaSince(0)
		if d == nil {
			t.Fatal("journal trimmed unexpectedly on a small graph")
		}
		fresh := New()
		if err := fresh.ApplyDelta(d); err != nil {
			t.Fatal(err)
		}
		assertGraphsEqual(t, g, fresh)
		assertSnapshotsEqual(t, g.Freeze(), fresh.Freeze(), g)
		return !t.Failed()
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Fatal(err)
	}
}

// TestDeltaComposition: replaying DeltaSince(a)→b then DeltaSince(b)→head
// lands on the same graph as replaying DeltaSince(a)→head once. Deltas
// compose — the property that lets a WAL be cut into per-flush records.
func TestDeltaComposition(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		g := New()
		applyRandomOps(g, rng, 40)
		a := g.Version()
		base := New() // replica of g as of version a
		if err := base.ApplyDelta(g.DeltaSince(0)); err != nil {
			t.Fatal(err)
		}
		applyRandomOps(g, rng, 25)
		b := g.Version()
		d1 := g.DeltaSince(a) // a..b, captured while head == b
		applyRandomOps(g, rng, 25)
		d2 := g.DeltaSince(b)  // b..head
		dAB := g.DeltaSince(a) // a..head in one delta
		if d1 == nil || d2 == nil || dAB == nil {
			t.Fatal("journal trimmed unexpectedly")
		}

		// Path 1: one composite delta.
		once := New()
		if err := once.ApplyDelta(base.DeltaSince(0)); err != nil {
			t.Fatal(err)
		}
		if err := once.ApplyDelta(dAB); err != nil {
			t.Fatal(err)
		}
		// Path 2: the same history in two chunks.
		twice := New()
		if err := twice.ApplyDelta(base.DeltaSince(0)); err != nil {
			t.Fatal(err)
		}
		if err := twice.ApplyDelta(d1); err != nil {
			t.Fatal(err)
		}
		if err := twice.ApplyDelta(d2); err != nil {
			t.Fatal(err)
		}
		assertGraphsEqual(t, once, twice)
		assertGraphsEqual(t, g, once)
		return !t.Failed()
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Fatal(err)
	}
}

// TestApplyDeltaResyncsVersionOnDup: a delta containing an edge the
// receiver already has (AddEdge is idempotent and does not tick the
// version) must still land the receiver on ToVersion, and the receiver
// must refuse to serve deltas across the resync.
func TestApplyDeltaResyncsVersionOnDup(t *testing.T) {
	g := New()
	a := g.AddNode("x")
	b := g.AddNode("x")
	g.AddEdge(a, "e", b) // the delta below re-adds this edge
	v := g.Version()

	// A producer that ticked twice for the same logical state: its edge
	// add was not a dup over there, but it is here, so the local replay
	// falls one tick short of ToVersion and must resync.
	d := &Delta{
		FromVersion: v,
		ToVersion:   v + 2,
		Edges:       []Edge{{Src: a, Label: "e", Dst: b}},
		Attrs:       []AttrWrite{{Node: b, Attr: "q", Value: Int(2)}},
	}
	if err := g.ApplyDelta(d); err != nil {
		t.Fatal(err)
	}
	if g.Version() != d.ToVersion {
		t.Fatalf("version not resynced: %d, want %d", g.Version(), d.ToVersion)
	}
	// After a resync the local journal is dropped: deltas from versions
	// before the resync must answer nil, not mis-sliced history.
	if got := g.DeltaSince(v); got != nil {
		t.Fatalf("DeltaSince across a resync must be nil, got %+v", got)
	}
	// And the replica keeps composing: the next delta from ToVersion
	// applies cleanly.
	d2 := &Delta{
		FromVersion: d.ToVersion,
		ToVersion:   d.ToVersion + 1,
		Attrs:       []AttrWrite{{Node: a, Attr: "r", Value: String("s")}},
	}
	if err := g.ApplyDelta(d2); err != nil {
		t.Fatal(err)
	}
	if val, ok := g.Attr(a, "r"); !ok || !val.Equal(String("s")) {
		t.Fatalf("post-resync delta lost the write: %v %v", val, ok)
	}
}

// TestApplyDeltaRejects: version mismatches and out-of-range references
// error without mutating the receiver.
func TestApplyDeltaRejects(t *testing.T) {
	g := New()
	g.AddNode("x")
	before := g.String()
	v := g.Version()

	cases := []*Delta{
		{FromVersion: v + 5, ToVersion: v + 6, Nodes: []NodeAdd{{ID: 1, Label: "x"}}},
		{FromVersion: v, ToVersion: v + 1, Nodes: []NodeAdd{{ID: 7, Label: "x"}}},
		{FromVersion: v, ToVersion: v + 1, Edges: []Edge{{Src: 0, Label: "e", Dst: 9}}},
		{FromVersion: v, ToVersion: v + 1, Attrs: []AttrWrite{{Node: 9, Attr: "a", Value: Int(1)}}},
	}
	for i, d := range cases {
		if err := g.ApplyDelta(d); err == nil {
			t.Fatalf("case %d: bad delta accepted", i)
		}
		if g.String() != before || g.Version() != v {
			t.Fatalf("case %d: rejected delta mutated the graph", i)
		}
	}
}

// TestImageRoundTrip: FromImage(ImageOf(g)) == g for random graphs,
// including the version counter and delta composability afterwards.
func TestImageRoundTrip(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		g := New()
		applyRandomOps(g, rng, 10+rng.Intn(150))
		img := ImageOf(g)
		got, err := FromImage(img)
		if err != nil {
			t.Fatal(err)
		}
		assertGraphsEqual(t, g, got)
		assertSnapshotsEqual(t, g.Freeze(), got.Freeze(), g)

		// The restored graph journals from the image's version: deltas
		// produced by the original after the export apply cleanly.
		from := g.Version()
		applyRandomOps(g, rng, 20)
		if d := g.DeltaSince(from); d != nil {
			if err := got.ApplyDelta(d); err != nil {
				t.Fatal(err)
			}
			assertGraphsEqual(t, g, got)
		}
		return !t.Failed()
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Fatal(err)
	}
}

// TestImageValidate: corrupted images error rather than panic.
func TestImageValidate(t *testing.T) {
	g := New()
	id := g.AddNode("x")
	g.SetAttr(id, "a", String("s"))
	g.AddEdge(id, "e", id)

	corrupt := []func(img *Image){
		func(img *Image) { img.NodeLabel[0] = 99 },
		func(img *Image) { img.EdgeDst[0] = 99 },
		func(img *Image) { img.EdgeLabel[0] = 99 },
		func(img *Image) { img.AttrNode[0] = 99 },
		func(img *Image) { img.AttrName[0] = 99 },
		func(img *Image) { img.AttrKind[0] = 7 },
		func(img *Image) { img.AttrVal[0] = 99 }, // string index out of range
		func(img *Image) { img.EdgeSrc = img.EdgeSrc[:0] },
		func(img *Image) { img.AttrVal = img.AttrVal[:0] },
	}
	for i, mutate := range corrupt {
		img := ImageOf(g)
		mutate(img)
		if _, err := FromImage(img); err == nil {
			t.Fatalf("case %d: corrupted image accepted", i)
		}
	}
}
