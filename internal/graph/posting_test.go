package graph

import (
	"fmt"
	"math/rand"
	"testing"
	"testing/quick"
)

// attrValueDomain is the (attr, value) space applyRandomOps draws from,
// plus ghosts that no node carries.
func attrValueDomain() (attrs []Attr, vals []Value) {
	attrs = []Attr{"name", "age", "type", "afresh0", "afresh5", "ghostattr"}
	for i := 0; i < 5; i++ {
		vals = append(vals, Int(i), String(fmt.Sprintf("v%d", i)))
	}
	vals = append(vals, String("ghostvalue"))
	return attrs, vals
}

// TestPostingsMaintainedAcrossApply materializes the postings up front
// and then drives enough delta batches through Apply to exercise the
// lazy maintenance in all three regimes — clean pairs served from the
// base, dirty pairs rebuilt on demand, and the pending-chain
// compaction (batches > postingChainMax) — checking after every batch
// that the maintained postings equal a fresh Freeze's. Most batches
// probe only Lookup/LookupAttrID (which keep the snapshot
// unmaterialized, letting the chain grow); every few batches the
// interned PostingID/PostingByID surface forces a materialization and
// is checked too.
func TestPostingsMaintainedAcrossApply(t *testing.T) {
	attrs, vals := attrValueDomain()
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		g := New()
		applyRandomOps(g, rng, 20+rng.Intn(30))
		snap := g.Freeze()
		snap.ensurePostings() // force the maintained path from batch one
		for batch := 0; batch < 3*postingChainMax; batch++ {
			from := g.Version()
			applyRandomOps(g, rng, 1+rng.Intn(8))
			snap = snap.Apply(g.DeltaSince(from))
			if !snap.postingsReady.Load() && snap.postingBase == nil {
				t.Errorf("seed %d batch %d: postings not carried across Apply", seed, batch)
				return false
			}
			full := batch%11 == 10 || batch == 3*postingChainMax-1
			fresh := g.Freeze()
			for _, a := range attrs {
				aid, aok := snap.AttrID(a)
				for _, v := range vals {
					want := fresh.Lookup(a, v)
					if got := snap.Lookup(a, v); !sameIDSet(got, want) {
						t.Errorf("seed %d batch %d: Lookup(%s,%v) = %v, want %v", seed, batch, a, v, got, want)
						return false
					}
					if aok {
						if got := snap.LookupAttrID(aid, v); !sameIDSet(got, want) {
							t.Errorf("seed %d batch %d: LookupAttrID(%s,%v) = %v, want %v", seed, batch, a, v, got, want)
							return false
						}
					}
					if !full {
						continue
					}
					pid, ok := snap.PostingID(a, v)
					if !ok && len(want) > 0 {
						// A pair can retain an interned id with an empty
						// posting after overwrites; only a missing id for a
						// non-empty posting is a bug.
						t.Errorf("seed %d batch %d: PostingID(%s,%v) absent with %d nodes", seed, batch, a, v, len(want))
						return false
					}
					if ok {
						if got := snap.PostingByID(pid); !sameIDSet(got, want) {
							t.Errorf("seed %d batch %d: PostingByID(%d) = %v, want %v", seed, batch, pid, got, want)
							return false
						}
					}
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 20}); err != nil {
		t.Fatal(err)
	}
}

// TestPostingsParentUntouchedByApply: maintaining the child's postings
// must not disturb the parent's — copy-on-write, not sharing-by-alias.
func TestPostingsParentUntouchedByApply(t *testing.T) {
	g := New()
	a := g.AddNodeAttrs("person", map[Attr]Value{"type": String("x")})
	b := g.AddNodeAttrs("person", map[Attr]Value{"type": String("x")})
	parent := g.Freeze()
	if got := parent.Lookup("type", String("x")); !sameIDSet(got, []NodeID{a, b}) {
		t.Fatalf("parent Lookup = %v", got)
	}

	from := g.Version()
	g.SetAttr(a, "type", String("y"))
	g.SetAttr(b, "kind", String("z"))
	child := parent.Apply(g.DeltaSince(from))

	if got := parent.Lookup("type", String("x")); !sameIDSet(got, []NodeID{a, b}) {
		t.Fatalf("parent postings disturbed: %v", got)
	}
	if got := parent.Lookup("kind", String("z")); len(got) != 0 {
		t.Fatalf("parent sees child-only posting: %v", got)
	}
	if got := child.Lookup("type", String("x")); !sameIDSet(got, []NodeID{b}) {
		t.Fatalf("child Lookup(type,x) = %v, want [%d]", got, b)
	}
	if got := child.Lookup("type", String("y")); !sameIDSet(got, []NodeID{a}) {
		t.Fatalf("child Lookup(type,y) = %v, want [%d]", got, a)
	}
	if got := child.Lookup("kind", String("z")); !sameIDSet(got, []NodeID{b}) {
		t.Fatalf("child Lookup(kind,z) = %v, want [%d]", got, b)
	}
}

// TestPostingsLazyWhenParentLazy: an unmaterialized parent must hand
// the child nothing — the child rebuilds on first use and still agrees
// with a fresh Freeze.
func TestPostingsLazyWhenParentLazy(t *testing.T) {
	g := New()
	g.AddNodeAttrs("person", map[Attr]Value{"type": String("x")})
	parent := g.Freeze()
	from := g.Version()
	id := g.AddNode("person")
	g.SetAttr(id, "type", String("x"))
	child := parent.Apply(g.DeltaSince(from))
	if child.postingsReady.Load() || child.postingBase != nil {
		t.Fatal("child postings materialized without a materialized parent")
	}
	if got, want := child.Lookup("type", String("x")), g.Freeze().Lookup("type", String("x")); !sameIDSet(got, want) {
		t.Fatalf("lazy child Lookup = %v, want %v", got, want)
	}
}
