package graph

import (
	"sort"
	"sync"
)

// Snapshot is a frozen, read-optimized view of a Graph: the storage
// layout production graph matchers use. Labels, attribute names and
// attribute values are interned into dense ints; in/out adjacency is
// laid out in CSR form with each node's edges grouped and sorted by
// (edge label, endpoint), so "neighbors of v via label ι" is one
// contiguous slice and HasEdge is a binary search; per-label node
// postings replace the byLabel map; the attribute-value index of
// BuildAttrIndex is folded in as first-class postings; and per-node /
// per-label degree statistics feed the matcher's planning heuristics.
//
// A Snapshot is immutable and safe for unsynchronized concurrent
// readers. It reflects the graph at Freeze time: later mutations of the
// source graph are not visible (compare Graph.Version against
// SourceVersion to detect staleness). All slices returned by Snapshot
// methods are the snapshot's own storage; callers must not mutate them.
type Snapshot struct {
	// symbol tables
	labels   []Label
	labelIDs map[Label]int32
	attrs    []Attr
	attrIDs  map[Attr]int32

	// nodes
	ids       []NodeID // all node ids in insertion order
	nodeLabel []int32  // node -> label symbol

	// CSR adjacency; within a node's segment entries are sorted by
	// (label symbol, other endpoint).
	outOff []int32
	outLbl []int32
	outDst []NodeID
	inOff  []int32
	inLbl  []int32
	inSrc  []NodeID

	// per-label postings and degree statistics; indexed by label symbol,
	// sized to the node-label symbols only (edge-only labels have no
	// nodes and fall outside the slice).
	labelNodes [][]NodeID
	labelDeg   []float64

	// per-node attribute tuples in CSR form, sorted by attr symbol.
	attrOff   []int32
	attrKey   []int32
	attrValue []Value

	// (attr, value) -> nodes carrying that binding, ascending by id —
	// the folded-in AttrIndex. Built lazily on first Lookup/Selectivity
	// (sync.Once keeps concurrent readers safe): plain validation never
	// touches value postings, so Freeze does not pay for them.
	postingsOnce sync.Once
	postings     map[postingKey][]NodeID

	numEdges int
	version  uint64
}

type postingKey struct {
	attr int32
	val  Value
}

func (s *Snapshot) internLabel(l Label) int32 {
	if id, ok := s.labelIDs[l]; ok {
		return id
	}
	id := int32(len(s.labels))
	s.labels = append(s.labels, l)
	s.labelIDs[l] = id
	return id
}

func (s *Snapshot) internAttr(a Attr) int32 {
	if id, ok := s.attrIDs[a]; ok {
		return id
	}
	id := int32(len(s.attrs))
	s.attrs = append(s.attrs, a)
	s.attrIDs[a] = id
	return id
}

// Freeze builds a read-only Snapshot of g. The cost is one pass over
// nodes, edges and attributes plus a per-node sort of adjacency — the
// price is paid once and amortized across every match enumeration run
// against the result.
func (g *Graph) Freeze() *Snapshot {
	n := len(g.nodes)
	s := &Snapshot{
		labelIDs: make(map[Label]int32),
		attrIDs:  make(map[Attr]int32),
		numEdges: len(g.edges),
		version:  g.version,
	}
	s.ids = g.ids[:n:n]

	// Nodes, node-label symbols and per-label postings. Node labels are
	// interned first so labelNodes/labelDeg cover exactly the symbols
	// that can have postings.
	s.nodeLabel = make([]int32, n)
	for i := range g.nodes {
		s.nodeLabel[i] = s.internLabel(g.nodes[i].label)
	}
	s.labelNodes = make([][]NodeID, len(s.labels))
	for i := 0; i < n; i++ {
		lid := s.nodeLabel[i]
		s.labelNodes[lid] = append(s.labelNodes[lid], NodeID(i))
	}

	// CSR adjacency, label-grouped and sorted: edges are gathered once
	// into parallel arrays and permuted by two global sorts — one per
	// direction — rather than 2n per-node sorts.
	s.buildAdjacency(g, n)

	// Per-label average total degree, for plan seeding.
	s.labelDeg = make([]float64, len(s.labelNodes))
	for lid, nodes := range s.labelNodes {
		if len(nodes) == 0 {
			continue
		}
		total := 0
		for _, id := range nodes {
			total += int(s.outOff[id+1]-s.outOff[id]) + int(s.inOff[id+1]-s.inOff[id])
		}
		s.labelDeg[lid] = float64(total) / float64(len(nodes))
	}

	// Attribute tuples and the folded-in attribute-value index.
	s.attrOff = make([]int32, n+1)
	total := 0
	for i := range g.nodes {
		total += len(g.nodes[i].attrs)
		s.attrOff[i+1] = int32(total)
	}
	s.attrKey = make([]int32, total)
	s.attrValue = make([]Value, total)
	type kv struct {
		key int32
		val Value
	}
	var scratch []kv
	for i := range g.nodes {
		scratch = scratch[:0]
		for a, v := range g.nodes[i].attrs {
			scratch = append(scratch, kv{s.internAttr(a), v})
		}
		// Attribute tuples are tiny; insertion sort avoids a sort.Slice
		// closure per node.
		for x := 1; x < len(scratch); x++ {
			for y := x; y > 0 && scratch[y].key < scratch[y-1].key; y-- {
				scratch[y], scratch[y-1] = scratch[y-1], scratch[y]
			}
		}
		base := s.attrOff[i]
		for k, p := range scratch {
			s.attrKey[base+int32(k)] = p.key
			s.attrValue[base+int32(k)] = p.val
		}
	}
	return s
}

// buildAdjacency lays out both CSR directions: offsets plus parallel
// (label symbol, endpoint) arrays, each node's segment sorted by
// (label, endpoint) so per-label neighbor runs are contiguous. Edges
// are flattened once and permuted by one global sort per direction.
func (s *Snapshot) buildAdjacency(g *Graph, n int) {
	m := len(g.edges)
	esrc := make([]NodeID, 0, m)
	elbl := make([]int32, 0, m)
	edst := make([]NodeID, 0, m)
	for i := 0; i < n; i++ {
		for _, e := range g.out[NodeID(i)] {
			esrc = append(esrc, e.Src)
			elbl = append(elbl, s.internLabel(e.Label))
			edst = append(edst, e.Dst)
		}
	}
	perm := make([]int32, m)
	for i := range perm {
		perm[i] = int32(i)
	}

	s.outOff = make([]int32, n+1)
	s.outLbl = make([]int32, m)
	s.outDst = make([]NodeID, m)
	sort.Slice(perm, func(x, y int) bool {
		a, b := perm[x], perm[y]
		if esrc[a] != esrc[b] {
			return esrc[a] < esrc[b]
		}
		if elbl[a] != elbl[b] {
			return elbl[a] < elbl[b]
		}
		return edst[a] < edst[b]
	})
	for i, p := range perm {
		s.outOff[esrc[p]+1]++
		s.outLbl[i] = elbl[p]
		s.outDst[i] = edst[p]
	}
	for i := 0; i < n; i++ {
		s.outOff[i+1] += s.outOff[i]
	}

	s.inOff = make([]int32, n+1)
	s.inLbl = make([]int32, m)
	s.inSrc = make([]NodeID, m)
	sort.Slice(perm, func(x, y int) bool {
		a, b := perm[x], perm[y]
		if edst[a] != edst[b] {
			return edst[a] < edst[b]
		}
		if elbl[a] != elbl[b] {
			return elbl[a] < elbl[b]
		}
		return esrc[a] < esrc[b]
	})
	for i, p := range perm {
		s.inOff[edst[p]+1]++
		s.inLbl[i] = elbl[p]
		s.inSrc[i] = esrc[p]
	}
	for i := 0; i < n; i++ {
		s.inOff[i+1] += s.inOff[i]
	}
}

// ---- node accessors ----

// NumNodes returns |V| at freeze time.
func (s *Snapshot) NumNodes() int { return len(s.nodeLabel) }

// NumEdges returns |E| at freeze time.
func (s *Snapshot) NumEdges() int { return s.numEdges }

// Size returns |G| = |V| + |E|.
func (s *Snapshot) Size() int { return s.NumNodes() + s.numEdges }

// Nodes returns all node ids in insertion order.
func (s *Snapshot) Nodes() []NodeID { return s.ids }

// Label returns the label of node id.
func (s *Snapshot) Label(id NodeID) Label { return s.labels[s.nodeLabel[id]] }

// SourceVersion is the mutation counter of the source graph at Freeze
// time; comparing it against Graph.Version detects staleness.
func (s *Snapshot) SourceVersion() uint64 { return s.version }

// Attr returns the value of attribute a at node id, and whether the
// node carries it, by binary search over the node's interned tuple.
func (s *Snapshot) Attr(id NodeID, a Attr) (Value, bool) {
	aid, ok := s.attrIDs[a]
	if !ok {
		return Value{}, false
	}
	lo, hi := s.attrOff[id], s.attrOff[id+1]
	for lo < hi {
		mid := int32(uint32(lo+hi) >> 1)
		switch {
		case s.attrKey[mid] < aid:
			lo = mid + 1
		case s.attrKey[mid] > aid:
			hi = mid
		default:
			return s.attrValue[mid], true
		}
	}
	return Value{}, false
}

// ---- label postings ----

// NodesWithLabel returns the nodes carrying exactly the given label
// (wildcard-labeled nodes only for label == Wildcard), mirroring
// Graph.NodesWithLabel.
func (s *Snapshot) NodesWithLabel(label Label) []NodeID {
	lid, ok := s.labelIDs[label]
	if !ok || int(lid) >= len(s.labelNodes) {
		return nil
	}
	return s.labelNodes[lid]
}

// CandidateNodes returns the nodes a pattern node labeled pat may map
// to under ⪯: every node for the wildcard, otherwise the label posting.
func (s *Snapshot) CandidateNodes(pat Label) []NodeID {
	if pat == Wildcard {
		return s.ids
	}
	return s.NodesWithLabel(pat)
}

// LabelCount returns how many nodes carry the label (all nodes for the
// wildcard).
func (s *Snapshot) LabelCount(l Label) int {
	if l == Wildcard {
		return s.NumNodes()
	}
	return len(s.NodesWithLabel(l))
}

// LabelAvgDegree returns the average total (in+out) degree of the nodes
// carrying l — the density statistic the matcher's planner uses to
// prefer well-connected seeds among equally selective ones. For the
// wildcard it is the graph-wide average.
func (s *Snapshot) LabelAvgDegree(l Label) float64 {
	if l == Wildcard {
		if len(s.nodeLabel) == 0 {
			return 0
		}
		return 2 * float64(s.numEdges) / float64(len(s.nodeLabel))
	}
	lid, ok := s.labelIDs[l]
	if !ok || int(lid) >= len(s.labelDeg) {
		return 0
	}
	return s.labelDeg[lid]
}

// ---- adjacency ----

// labelRun returns the [lo, hi) bounds of the lid-labeled run inside a
// node's sorted CSR segment [off0, off1). The binary searches are
// hand-rolled: this sits on the matcher's innermost loop, where the
// sort.Search closure costs show up.
func labelRun(lbls []int32, off0, off1 int32, lid int32) (int32, int32) {
	lo, hi := off0, off1
	for lo < hi {
		mid := int32(uint32(lo+hi) >> 1)
		if lbls[mid] < lid {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	start := lo
	hi = off1
	for lo < hi {
		mid := int32(uint32(lo+hi) >> 1)
		if lbls[mid] <= lid {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	return start, lo
}

// OutNeighbors returns the distinct targets of src's outgoing edges
// whose label is matched by l under ⪯ (the wildcard matches any label).
// For a concrete label this is a zero-allocation sub-slice of the CSR
// run; for the wildcard the per-label runs are merged and deduplicated.
func (s *Snapshot) OutNeighbors(src NodeID, l Label) []NodeID {
	off0, off1 := s.outOff[src], s.outOff[src+1]
	if l != Wildcard {
		lid, ok := s.labelIDs[l]
		if !ok {
			return nil
		}
		lo, hi := labelRun(s.outLbl, off0, off1, lid)
		return s.outDst[lo:hi]
	}
	return dedupNeighbors(s.outDst[off0:off1])
}

// InNeighbors is OutNeighbors for incoming edges: the distinct sources
// of dst's incoming edges whose label is matched by l under ⪯.
func (s *Snapshot) InNeighbors(dst NodeID, l Label) []NodeID {
	off0, off1 := s.inOff[dst], s.inOff[dst+1]
	if l != Wildcard {
		lid, ok := s.labelIDs[l]
		if !ok {
			return nil
		}
		lo, hi := labelRun(s.inLbl, off0, off1, lid)
		return s.inSrc[lo:hi]
	}
	return dedupNeighbors(s.inSrc[off0:off1])
}

// dedupNeighbors returns the distinct ids of seg in first-seen order.
// The input segment is sorted by (label, id), so ids may repeat across
// labels; real adjacency lists are short, and the linear scan avoids a
// sort (and its closure) on the matcher's hot path.
func dedupNeighbors(seg []NodeID) []NodeID {
	if len(seg) <= 1 {
		return seg
	}
	out := make([]NodeID, 0, len(seg))
	for _, d := range seg {
		dup := false
		for _, x := range out {
			if x == d {
				dup = true
				break
			}
		}
		if !dup {
			out = append(out, d)
		}
	}
	return out
}

// HasEdge reports whether the exact edge (src, label, dst) is present:
// a label-run lookup plus a binary search over its sorted targets.
func (s *Snapshot) HasEdge(src NodeID, label Label, dst NodeID) bool {
	lid, ok := s.labelIDs[label]
	if !ok {
		return false
	}
	lo, hi := labelRun(s.outLbl, s.outOff[src], s.outOff[src+1], lid)
	for lo < hi {
		mid := int32(uint32(lo+hi) >> 1)
		switch {
		case s.outDst[mid] < dst:
			lo = mid + 1
		case s.outDst[mid] > dst:
			hi = mid
		default:
			return true
		}
	}
	return false
}

// HasAnyEdge reports whether some edge src -> dst exists, under any
// label — the host-side check for wildcard-labeled pattern edges.
func (s *Snapshot) HasAnyEdge(src, dst NodeID) bool {
	for _, d := range s.outDst[s.outOff[src]:s.outOff[src+1]] {
		if d == dst {
			return true
		}
	}
	return false
}

// OutDegree returns the number of outgoing edges of id.
func (s *Snapshot) OutDegree(id NodeID) int { return int(s.outOff[id+1] - s.outOff[id]) }

// InDegree returns the number of incoming edges of id.
func (s *Snapshot) InDegree(id NodeID) int { return int(s.inOff[id+1] - s.inOff[id]) }

// ---- the folded-in attribute-value index ----

// Lookup returns the nodes with attribute a equal to v, ascending by
// id — the access path that turns constant antecedent literals into
// index probes. The postings are materialized on first use.
func (s *Snapshot) Lookup(a Attr, v Value) []NodeID {
	aid, ok := s.attrIDs[a]
	if !ok {
		return nil
	}
	s.postingsOnce.Do(s.buildPostings)
	return s.postings[postingKey{attr: aid, val: v}]
}

// buildPostings folds the attribute CSR into (attr, value) postings.
func (s *Snapshot) buildPostings() {
	s.postings = make(map[postingKey][]NodeID)
	for i := range s.nodeLabel {
		for k := s.attrOff[i]; k < s.attrOff[i+1]; k++ {
			pk := postingKey{attr: s.attrKey[k], val: s.attrValue[k]}
			s.postings[pk] = append(s.postings[pk], NodeID(i))
		}
	}
}

// Selectivity returns the number of nodes carrying a = v.
func (s *Snapshot) Selectivity(a Attr, v Value) int { return len(s.Lookup(a, v)) }

// HasAttr reports whether any node carries attribute a.
func (s *Snapshot) HasAttr(a Attr) bool {
	_, ok := s.attrIDs[a]
	return ok
}

// ---- interned fast paths ----
//
// The matcher compiles a pattern against one host; when that host is a
// Snapshot it resolves pattern labels to dense symbols once per Compile
// and then uses the *ID accessors below, keeping string hashing out of
// the innermost search loop entirely.

// LabelID returns the dense symbol of l and whether l occurs anywhere
// in the snapshot (as a node or an edge label).
func (s *Snapshot) LabelID(l Label) (int32, bool) {
	id, ok := s.labelIDs[l]
	return id, ok
}

// NodeLabelID returns the label symbol of node id.
func (s *Snapshot) NodeLabelID(id NodeID) int32 { return s.nodeLabel[id] }

// CandidateNodesID is CandidateNodes for a resolved node-label symbol.
func (s *Snapshot) CandidateNodesID(lid int32) []NodeID {
	if int(lid) >= len(s.labelNodes) {
		return nil
	}
	return s.labelNodes[lid]
}

// OutNeighborsID is OutNeighbors for a resolved concrete edge-label
// symbol: one CSR run lookup, no hashing, no allocation.
func (s *Snapshot) OutNeighborsID(src NodeID, lid int32) []NodeID {
	lo, hi := labelRun(s.outLbl, s.outOff[src], s.outOff[src+1], lid)
	return s.outDst[lo:hi]
}

// InNeighborsID is InNeighbors for a resolved concrete edge-label symbol.
func (s *Snapshot) InNeighborsID(dst NodeID, lid int32) []NodeID {
	lo, hi := labelRun(s.inLbl, s.inOff[dst], s.inOff[dst+1], lid)
	return s.inSrc[lo:hi]
}

// HasEdgeID is HasEdge for a resolved edge-label symbol.
func (s *Snapshot) HasEdgeID(src NodeID, lid int32, dst NodeID) bool {
	lo, hi := labelRun(s.outLbl, s.outOff[src], s.outOff[src+1], lid)
	for lo < hi {
		mid := int32(uint32(lo+hi) >> 1)
		switch {
		case s.outDst[mid] < dst:
			lo = mid + 1
		case s.outDst[mid] > dst:
			hi = mid
		default:
			return true
		}
	}
	return false
}
