package graph

import (
	"sort"
	"sync"
	"sync/atomic"
)

// Snapshot is a frozen, read-optimized view of a Graph: the storage
// layout production graph matchers use. Labels, attribute names and
// attribute values are interned into dense ints; each node's in/out
// adjacency is one segment grouped and sorted by (edge label, endpoint),
// so "neighbors of v via label ι" is one contiguous slice and HasEdge is
// a binary search; per-label node postings replace the byLabel map; the
// attribute-value index of BuildAttrIndex is folded in as first-class
// postings; and per-label degree statistics feed the matcher's planning
// heuristics.
//
// Storage is page-chunked: the per-node tables (label symbols, adjacency
// segments, attribute tuples) are arrays of fixed-size pages, and every
// segment of a freshly frozen snapshot is a view into one flat arena.
// The chunking exists for Apply: advancing a snapshot by a Delta clones
// only the pages and label postings the delta touches and shares every
// other backing array with the parent — copy-on-write at page and
// label-group granularity, so maintenance is O(|Δ| + touched adjacency)
// instead of O(|G|).
//
// A Snapshot is immutable and safe for unsynchronized concurrent
// readers. It reflects the graph at Freeze (or Apply) time: later
// mutations of the source graph are not visible (compare Graph.Version
// against SourceVersion to detect staleness, and use Apply with
// Graph.DeltaSince to catch up). All slices returned by Snapshot methods
// are the snapshot's own storage; callers must not mutate them.
type Snapshot struct {
	// symbol tables; shared with the parent unless the delta interned
	// new symbols (ids are append-only, so a child's symbols extend its
	// parent's).
	labels   []Label
	labelIDs map[Label]int32
	attrs    []Attr
	attrIDs  map[Attr]int32

	// nodes
	numNodes  int
	ids       []NodeID  // identity prefix, shared process-wide
	nodeLabel [][]int32 // paged: node -> label symbol

	// per-node adjacency segments, paged; within a segment entries are
	// sorted by (label symbol, other endpoint).
	out [][]adjSeg
	in  [][]adjSeg

	// per-node attribute tuples, paged; sorted by attr symbol.
	attr [][]attrSeg

	// per-label postings and degree totals; indexed by label symbol,
	// sized to the node-label symbols only (edge-only labels have no
	// nodes and fall outside the slice). labelDegTotal[l] is the summed
	// in+out degree of the posting's nodes.
	labelNodes    [][]NodeID
	labelDegTotal []int64

	// (attr, value) -> nodes carrying that binding, ascending by id —
	// the folded-in AttrIndex, interned: each distinct (attrID, value)
	// pair gets a dense posting id, resolved through postingTables.
	// Built lazily on first Lookup/Selectivity/PostingID (postingsReady
	// + postingsMu keep concurrent readers safe): plain validation
	// never touches value postings, so Freeze does not pay for them.
	//
	// Apply keeps materialized postings valid across deltas *lazily*:
	// the child references the nearest materialized ancestor's tables
	// (postingBase) plus the pending attribute-edit batches since
	// (postingPending, oldest first), and a lookup serves a pair the
	// pending batches never touch straight from the base — zero
	// maintenance for postings nobody reads — while a dirty pair is
	// rebuilt from base + replayed edits once and memoized in
	// postingPatch. A deep pending chain is compacted into a fresh
	// materialized table at the next Apply, bounding both replay cost
	// and retention. An unmaterialized parent hands the child nothing
	// and the child builds from its own attribute segments as before.
	postingsMu     sync.Mutex
	postingsReady  atomic.Bool
	postings       *postingTables
	postingBase    *postingTables
	postingPending []postingBatch
	postingPatch   map[postingKey][]NodeID

	numEdges int
	version  uint64
	// lineage identifies the Freeze root this snapshot derives from;
	// Apply preserves it. Two snapshots with equal lineage share one
	// append-only symbol universe, which is what lets compiled matcher
	// plans rebind between them without re-resolving from strings.
	lineage uint64
}

// adjSeg is one node's adjacency in one direction.
type adjSeg struct {
	lbl []int32
	ids []NodeID
}

// attrSeg is one node's attribute tuple.
type attrSeg struct {
	key []int32
	val []Value
}

// Pages are 64 entries: small enough that Apply's per-dirty-page
// copies (the dominant cost of a scattered small delta — each clone
// zeroes and copies a full page of segment headers) stay proportional
// to the touched neighborhood, big enough that the outer page tables —
// which Apply clones whole — stay a small fraction of a percent of the
// graph.
const (
	pageShift = 6
	pageSize  = 1 << pageShift
	pageMask  = pageSize - 1
)

// pagesOf splits a flat arena into page views. Capacities are clamped
// so a page can never grow into its neighbor's storage.
func pagesOf[T any](flat []T) [][]T {
	n := len(flat)
	pgs := make([][]T, (n+pageSize-1)/pageSize)
	for p := range pgs {
		lo := p * pageSize
		hi := lo + pageSize
		if hi > n {
			hi = n
		}
		pgs[p] = flat[lo:hi:hi]
	}
	return pgs
}

type postingKey struct {
	attr int32
	val  Value
}

// postingTables is a materialized posting index: the pid-resolution
// maps as a newest-first overlay chain (Apply-time compaction gives
// each generation a small private overlay instead of cloning the whole
// map) and the paged pid -> sorted node-list table. Tables are
// immutable once published.
type postingTables struct {
	maps  []map[postingKey]int32
	pages [][][]NodeID
	num   int
}

// pid resolves a posting key through the overlay chain, newest first.
// Keys appear in at most one chain member, so first hit wins.
func (pt *postingTables) pid(pk postingKey) (int32, bool) {
	for _, m := range pt.maps {
		if pid, ok := m[pk]; ok {
			return pid, true
		}
	}
	return 0, false
}

func (pt *postingTables) at(pid int32) []NodeID {
	return pt.pages[pid>>pageShift][pid&pageMask]
}

func (pt *postingTables) lookup(pk postingKey) []NodeID {
	pid, ok := pt.pid(pk)
	if !ok {
		return nil
	}
	return pt.at(pid)
}

// postingEdit is one membership change of a posting: id joined (or,
// when del, left) the (attr, value) pair's node set.
type postingEdit struct {
	id  NodeID
	del bool
}

// postingBatch is one delta's worth of posting edits, keyed by pair;
// per-pair edits are in write order, so the last edit per id wins.
type postingBatch map[postingKey][]postingEdit

// replayPosting applies batches' edits for pk, in order, to the sorted
// base list, returning a fresh slice (never aliasing base).
func replayPosting(base []NodeID, batches []postingBatch, pk postingKey) []NodeID {
	out := append(make([]NodeID, 0, len(base)+4), base...)
	for _, b := range batches {
		for _, e := range b[pk] {
			pos := sort.Search(len(out), func(k int) bool { return out[k] >= e.id })
			present := pos < len(out) && out[pos] == e.id
			switch {
			case e.del && present:
				out = append(out[:pos], out[pos+1:]...)
			case !e.del && !present:
				out = append(out, 0)
				copy(out[pos+1:], out[pos:])
				out[pos] = e.id
			}
		}
	}
	return out
}

// identity ids are shared process-wide: every snapshot's Nodes() is a
// prefix of one immutable [0,1,2,...] table, grown under a lock and
// published atomically, so neither Freeze nor Apply materializes it.
var (
	identityMu  sync.Mutex
	identityTab atomic.Value // []NodeID
)

func identityIDs(n int) []NodeID {
	tab, _ := identityTab.Load().([]NodeID)
	if len(tab) < n {
		identityMu.Lock()
		tab, _ = identityTab.Load().([]NodeID)
		if len(tab) < n {
			m := 1024
			for m < n {
				m *= 2
			}
			tab = make([]NodeID, m)
			for i := range tab {
				tab[i] = NodeID(i)
			}
			identityTab.Store(tab)
		}
		identityMu.Unlock()
	}
	return tab[:n:n]
}

var lineageCounter atomic.Uint64

func (s *Snapshot) internLabel(l Label) int32 {
	if id, ok := s.labelIDs[l]; ok {
		return id
	}
	id := int32(len(s.labels))
	s.labels = append(s.labels, l)
	s.labelIDs[l] = id
	return id
}

func (s *Snapshot) internAttr(a Attr) int32 {
	if id, ok := s.attrIDs[a]; ok {
		return id
	}
	id := int32(len(s.attrs))
	s.attrs = append(s.attrs, a)
	s.attrIDs[a] = id
	return id
}

// Freeze builds a read-only Snapshot of g. The cost is one pass over
// nodes, edges and attributes plus a global sort of each adjacency
// direction — the price is paid once and amortized across every match
// enumeration run against the result; later mutations are folded in
// with Apply instead of re-freezing.
func (g *Graph) Freeze() *Snapshot {
	n := len(g.nodes)
	s := &Snapshot{
		labelIDs: make(map[Label]int32),
		attrIDs:  make(map[Attr]int32),
		numNodes: n,
		numEdges: len(g.edges),
		version:  g.version,
		lineage:  lineageCounter.Add(1),
	}
	s.ids = identityIDs(n)

	// Nodes, node-label symbols and per-label postings. Node labels are
	// interned first so labelNodes/labelDegTotal cover exactly the
	// symbols that can have postings.
	nodeLabel := make([]int32, n)
	for i := range g.nodes {
		nodeLabel[i] = s.internLabel(g.nodes[i].label)
	}
	s.nodeLabel = pagesOf(nodeLabel)
	s.labelNodes = make([][]NodeID, len(s.labels))
	for i := 0; i < n; i++ {
		lid := nodeLabel[i]
		s.labelNodes[lid] = append(s.labelNodes[lid], NodeID(i))
	}

	// Adjacency segments, label-grouped and sorted: edges are gathered
	// once into parallel arrays and permuted by two global sorts — one
	// per direction — rather than 2n per-node sorts.
	s.buildAdjacency(g, n)

	// Per-label total degree, for plan seeding.
	s.labelDegTotal = make([]int64, len(s.labelNodes))
	for lid, nodes := range s.labelNodes {
		total := int64(0)
		for _, id := range nodes {
			total += int64(s.OutDegree(id) + s.InDegree(id))
		}
		s.labelDegTotal[lid] = total
	}

	// Attribute tuples in one arena, paged into per-node segments.
	total := 0
	for i := range g.nodes {
		total += len(g.nodes[i].attrs)
	}
	keyArena := make([]int32, 0, total)
	valArena := make([]Value, 0, total)
	segs := make([]attrSeg, n)
	type kv struct {
		key int32
		val Value
	}
	var scratch []kv
	for i := range g.nodes {
		scratch = scratch[:0]
		for a, v := range g.nodes[i].attrs {
			scratch = append(scratch, kv{s.internAttr(a), v})
		}
		// Attribute tuples are tiny; insertion sort avoids a sort.Slice
		// closure per node.
		for x := 1; x < len(scratch); x++ {
			for y := x; y > 0 && scratch[y].key < scratch[y-1].key; y-- {
				scratch[y], scratch[y-1] = scratch[y-1], scratch[y]
			}
		}
		base := len(keyArena)
		for _, p := range scratch {
			keyArena = append(keyArena, p.key)
			valArena = append(valArena, p.val)
		}
		segs[i] = attrSeg{
			key: keyArena[base:len(keyArena):len(keyArena)],
			val: valArena[base:len(valArena):len(valArena)],
		}
	}
	s.attr = pagesOf(segs)
	return s
}

// buildAdjacency lays out both directions: per-node (label symbol,
// endpoint) segments sorted by (label, endpoint) so per-label neighbor
// runs are contiguous. Edges are flattened once and permuted by one
// global sort per direction; the segments are views into the flat
// arenas.
func (s *Snapshot) buildAdjacency(g *Graph, n int) {
	m := len(g.edges)
	esrc := make([]NodeID, 0, m)
	elbl := make([]int32, 0, m)
	edst := make([]NodeID, 0, m)
	for i := 0; i < n; i++ {
		for _, e := range g.out[NodeID(i)] {
			esrc = append(esrc, e.Src)
			elbl = append(elbl, s.internLabel(e.Label))
			edst = append(edst, e.Dst)
		}
	}
	perm := make([]int32, m)
	for i := range perm {
		perm[i] = int32(i)
	}

	layout := func(major, minor []NodeID, dir func(a, b int32) bool) [][]adjSeg {
		sort.Slice(perm, func(x, y int) bool { return dir(perm[x], perm[y]) })
		off := make([]int32, n+1)
		lblArena := make([]int32, m)
		idArena := make([]NodeID, m)
		for i, p := range perm {
			off[major[p]+1]++
			lblArena[i] = elbl[p]
			idArena[i] = minor[p]
		}
		for i := 0; i < n; i++ {
			off[i+1] += off[i]
		}
		segs := make([]adjSeg, n)
		for i := 0; i < n; i++ {
			lo, hi := off[i], off[i+1]
			segs[i] = adjSeg{lbl: lblArena[lo:hi:hi], ids: idArena[lo:hi:hi]}
		}
		return pagesOf(segs)
	}

	s.out = layout(esrc, edst, func(a, b int32) bool {
		if esrc[a] != esrc[b] {
			return esrc[a] < esrc[b]
		}
		if elbl[a] != elbl[b] {
			return elbl[a] < elbl[b]
		}
		return edst[a] < edst[b]
	})
	s.in = layout(edst, esrc, func(a, b int32) bool {
		if edst[a] != edst[b] {
			return edst[a] < edst[b]
		}
		if elbl[a] != elbl[b] {
			return elbl[a] < elbl[b]
		}
		return esrc[a] < esrc[b]
	})
}

// ---- paged accessors ----

func (s *Snapshot) outSeg(id NodeID) *adjSeg { return &s.out[id>>pageShift][id&pageMask] }
func (s *Snapshot) inSeg(id NodeID) *adjSeg  { return &s.in[id>>pageShift][id&pageMask] }
func (s *Snapshot) attrSeg(id NodeID) *attrSeg {
	return &s.attr[id>>pageShift][id&pageMask]
}

// ---- node accessors ----

// NumNodes returns |V| at freeze time.
func (s *Snapshot) NumNodes() int { return s.numNodes }

// NumEdges returns |E| at freeze time.
func (s *Snapshot) NumEdges() int { return s.numEdges }

// Size returns |G| = |V| + |E|.
func (s *Snapshot) Size() int { return s.numNodes + s.numEdges }

// Nodes returns all node ids in insertion order.
func (s *Snapshot) Nodes() []NodeID { return s.ids }

// Label returns the label of node id.
func (s *Snapshot) Label(id NodeID) Label {
	return s.labels[s.nodeLabel[id>>pageShift][id&pageMask]]
}

// SourceVersion is the mutation counter of the source graph at Freeze
// (or Apply) time; comparing it against Graph.Version detects staleness.
func (s *Snapshot) SourceVersion() uint64 { return s.version }

// Lineage identifies the Freeze root this snapshot derives from: a
// snapshot and any snapshot produced from it by Apply share a lineage,
// and with it one append-only symbol universe. Compiled plans may be
// rebound between snapshots of equal lineage.
func (s *Snapshot) Lineage() uint64 { return s.lineage }

// Attr returns the value of attribute a at node id, and whether the
// node carries it, by binary search over the node's interned tuple.
func (s *Snapshot) Attr(id NodeID, a Attr) (Value, bool) {
	aid, ok := s.attrIDs[a]
	if !ok {
		return Value{}, false
	}
	return s.AttrValueID(id, aid)
}

// ---- label postings ----

// NodesWithLabel returns the nodes carrying exactly the given label
// (wildcard-labeled nodes only for label == Wildcard), mirroring
// Graph.NodesWithLabel.
func (s *Snapshot) NodesWithLabel(label Label) []NodeID {
	lid, ok := s.labelIDs[label]
	if !ok || int(lid) >= len(s.labelNodes) {
		return nil
	}
	return s.labelNodes[lid]
}

// CandidateNodes returns the nodes a pattern node labeled pat may map
// to under ⪯: every node for the wildcard, otherwise the label posting.
func (s *Snapshot) CandidateNodes(pat Label) []NodeID {
	if pat == Wildcard {
		return s.ids
	}
	return s.NodesWithLabel(pat)
}

// LabelCount returns how many nodes carry the label (all nodes for the
// wildcard).
func (s *Snapshot) LabelCount(l Label) int {
	if l == Wildcard {
		return s.numNodes
	}
	return len(s.NodesWithLabel(l))
}

// LabelAvgDegree returns the average total (in+out) degree of the nodes
// carrying l — the density statistic the matcher's planner uses to
// prefer well-connected seeds among equally selective ones. For the
// wildcard it is the graph-wide average.
func (s *Snapshot) LabelAvgDegree(l Label) float64 {
	if l == Wildcard {
		if s.numNodes == 0 {
			return 0
		}
		return 2 * float64(s.numEdges) / float64(s.numNodes)
	}
	lid, ok := s.labelIDs[l]
	if !ok || int(lid) >= len(s.labelNodes) || len(s.labelNodes[lid]) == 0 {
		return 0
	}
	return float64(s.labelDegTotal[lid]) / float64(len(s.labelNodes[lid]))
}

// ---- adjacency ----

// labelRun returns the [lo, hi) bounds of the lid-labeled run inside a
// node's sorted segment. The binary searches are hand-rolled: this sits
// on the matcher's innermost loop, where the sort.Search closure costs
// show up.
func labelRun(lbls []int32, lid int32) (int, int) {
	lo, hi := 0, len(lbls)
	for lo < hi {
		mid := int(uint(lo+hi) >> 1)
		if lbls[mid] < lid {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	start := lo
	hi = len(lbls)
	for lo < hi {
		mid := int(uint(lo+hi) >> 1)
		if lbls[mid] <= lid {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	return start, lo
}

// OutNeighbors returns the distinct targets of src's outgoing edges
// whose label is matched by l under ⪯ (the wildcard matches any label).
// For a concrete label this is a zero-allocation sub-slice of the
// segment's label run; for the wildcard the per-label runs are merged
// and deduplicated.
func (s *Snapshot) OutNeighbors(src NodeID, l Label) []NodeID {
	seg := s.outSeg(src)
	if l != Wildcard {
		lid, ok := s.labelIDs[l]
		if !ok {
			return nil
		}
		lo, hi := labelRun(seg.lbl, lid)
		return seg.ids[lo:hi]
	}
	if len(seg.ids) <= 1 {
		return seg.ids
	}
	return dedupNeighbors(nil, seg.ids)
}

// InNeighbors is OutNeighbors for incoming edges: the distinct sources
// of dst's incoming edges whose label is matched by l under ⪯.
func (s *Snapshot) InNeighbors(dst NodeID, l Label) []NodeID {
	seg := s.inSeg(dst)
	if l != Wildcard {
		lid, ok := s.labelIDs[l]
		if !ok {
			return nil
		}
		lo, hi := labelRun(seg.lbl, lid)
		return seg.ids[lo:hi]
	}
	if len(seg.ids) <= 1 {
		return seg.ids
	}
	return dedupNeighbors(nil, seg.ids)
}

// AppendOutNeighbors appends the distinct targets of src's outgoing
// wildcard-matched edges to buf and returns it — the allocation-free
// variant of OutNeighbors(src, Wildcard) for callers (the matcher's
// pooled scratch) that recycle buffers.
func (s *Snapshot) AppendOutNeighbors(buf []NodeID, src NodeID) []NodeID {
	return dedupNeighbors(buf, s.outSeg(src).ids)
}

// AppendInNeighbors is AppendOutNeighbors for incoming edges.
func (s *Snapshot) AppendInNeighbors(buf []NodeID, dst NodeID) []NodeID {
	return dedupNeighbors(buf, s.inSeg(dst).ids)
}

// dedupNeighbors appends the distinct ids of seg to buf in first-seen
// order; the result never aliases snapshot storage, so callers may
// recycle it as the buf of a later call. The input segment is sorted by
// (label, id), so ids may repeat across labels; real adjacency lists
// are short, and the linear scan avoids a sort (and its closure) on the
// matcher's hot path.
func dedupNeighbors(buf []NodeID, seg []NodeID) []NodeID {
	out := buf
	for _, d := range seg {
		dup := false
		for _, x := range out {
			if x == d {
				dup = true
				break
			}
		}
		if !dup {
			out = append(out, d)
		}
	}
	return out
}

// HasEdge reports whether the exact edge (src, label, dst) is present:
// a label-run lookup plus a binary search over its sorted targets.
func (s *Snapshot) HasEdge(src NodeID, label Label, dst NodeID) bool {
	lid, ok := s.labelIDs[label]
	if !ok {
		return false
	}
	return s.HasEdgeID(src, lid, dst)
}

// HasAnyEdge reports whether some edge src -> dst exists, under any
// label — the host-side check for wildcard-labeled pattern edges.
func (s *Snapshot) HasAnyEdge(src, dst NodeID) bool {
	for _, d := range s.outSeg(src).ids {
		if d == dst {
			return true
		}
	}
	return false
}

// OutDegree returns the number of outgoing edges of id.
func (s *Snapshot) OutDegree(id NodeID) int { return len(s.outSeg(id).ids) }

// InDegree returns the number of incoming edges of id.
func (s *Snapshot) InDegree(id NodeID) int { return len(s.inSeg(id).ids) }

// ---- the folded-in attribute-value index ----

// Lookup returns the nodes with attribute a equal to v, ascending by
// id — the access path that turns constant antecedent literals into
// index probes. The postings are materialized on first use.
func (s *Snapshot) Lookup(a Attr, v Value) []NodeID {
	aid, ok := s.attrIDs[a]
	if !ok {
		return nil
	}
	return s.LookupAttrID(aid, v)
}

// LookupAttrID is Lookup for a resolved attribute symbol — the form
// compiled matcher plans re-resolve their pushed-down literal postings
// through on every rebind, since attr symbols are append-only within a
// snapshot lineage while the posting contents move with each Apply.
func (s *Snapshot) LookupAttrID(aid int32, v Value) []NodeID {
	pk := postingKey{attr: aid, val: v}
	if s.postingsReady.Load() {
		return s.postings.lookup(pk)
	}
	if s.postingBase != nil {
		return s.lookupViaBase(pk)
	}
	s.ensurePostings()
	return s.postings.lookup(pk)
}

// lookupViaBase serves a posting of a delta-maintained, not yet
// materialized snapshot: a pair the pending batches never touched
// comes straight from the materialized ancestor's table; a dirty pair
// is rebuilt once (base + replayed edits) and memoized.
func (s *Snapshot) lookupViaBase(pk postingKey) []NodeID {
	s.postingsMu.Lock()
	defer s.postingsMu.Unlock()
	if s.postingsReady.Load() {
		// Materialized while we waited for the lock.
		return s.postings.lookup(pk)
	}
	if l, ok := s.postingPatch[pk]; ok {
		return l
	}
	dirty := false
	for _, b := range s.postingPending {
		if _, ok := b[pk]; ok {
			dirty = true
			break
		}
	}
	base := s.postingBase.lookup(pk)
	if !dirty {
		return base
	}
	l := replayPosting(base, s.postingPending, pk)
	if s.postingPatch == nil {
		s.postingPatch = make(map[postingKey][]NodeID)
	}
	s.postingPatch[pk] = l
	return l
}

// PostingID returns the interned id of the (a, v) posting and whether
// any node carries that binding, materializing the postings if needed.
// Posting ids are dense and stable for the life of one snapshot;
// across Apply they stay aligned while the lineage compacts its
// pending batches in sequence, but a lazily rebuilt child may assign
// them afresh — resolve by (attr symbol, value) when crossing
// snapshots, as Plan.Rebind does.
func (s *Snapshot) PostingID(a Attr, v Value) (int32, bool) {
	aid, ok := s.attrIDs[a]
	if !ok {
		return 0, false
	}
	s.ensurePostings()
	return s.postings.pid(postingKey{attr: aid, val: v})
}

// PostingByID returns the sorted node list of an interned posting id.
func (s *Snapshot) PostingByID(pid int32) []NodeID {
	s.ensurePostings()
	if pid < 0 || int(pid) >= s.postings.num {
		return nil
	}
	return s.postings.at(pid)
}

// NumPostings returns the number of distinct (attr, value) pairs,
// materializing the postings if needed.
func (s *Snapshot) NumPostings() int {
	s.ensurePostings()
	return s.postings.num
}

// ensurePostings materializes the value postings once; concurrent
// readers either see the ready flag (acquire) or serialize on the
// build lock. A snapshot holding a materialized base compacts base +
// pending batches — cost proportional to the edits and the postings
// they touch; only a snapshot with no materialized ancestor scans its
// attribute segments.
func (s *Snapshot) ensurePostings() {
	if s.postingsReady.Load() {
		return
	}
	s.postingsMu.Lock()
	defer s.postingsMu.Unlock()
	if s.postingsReady.Load() {
		return
	}
	if s.postingBase != nil {
		s.postings = compactPostings(s.postingBase, s.postingPending)
	} else {
		s.buildPostings()
	}
	s.postingsReady.Store(true)
}

// buildPostings folds the attribute segments into interned (attr,
// value) postings.
func (s *Snapshot) buildPostings() {
	ids := make(map[postingKey]int32)
	var lists [][]NodeID
	for i := 0; i < s.numNodes; i++ {
		seg := s.attrSeg(NodeID(i))
		for k := range seg.key {
			pk := postingKey{attr: seg.key[k], val: seg.val[k]}
			pid, ok := ids[pk]
			if !ok {
				pid = int32(len(lists))
				ids[pk] = pid
				lists = append(lists, nil)
			}
			lists[pid] = append(lists[pid], NodeID(i))
		}
	}
	s.postings = &postingTables{
		maps:  []map[postingKey]int32{ids},
		pages: pagesOf(lists),
		num:   len(lists),
	}
}

// Selectivity returns the number of nodes carrying a = v.
func (s *Snapshot) Selectivity(a Attr, v Value) int { return len(s.Lookup(a, v)) }

// HasAttr reports whether any node carries attribute a.
func (s *Snapshot) HasAttr(a Attr) bool {
	_, ok := s.attrIDs[a]
	return ok
}

// ---- interned fast paths ----
//
// The matcher compiles a pattern against one host; when that host is a
// Snapshot it resolves pattern labels to dense symbols once per Compile
// and then uses the *ID accessors below, keeping string hashing out of
// the innermost search loop entirely.

// LabelID returns the dense symbol of l and whether l occurs anywhere
// in the snapshot (as a node or an edge label).
func (s *Snapshot) LabelID(l Label) (int32, bool) {
	id, ok := s.labelIDs[l]
	return id, ok
}

// NodeLabelID returns the label symbol of node id.
func (s *Snapshot) NodeLabelID(id NodeID) int32 {
	return s.nodeLabel[id>>pageShift][id&pageMask]
}

// AttrID returns the dense symbol of attribute a and whether any node
// carries it. Attr symbols, like label symbols, are append-only within
// a snapshot lineage, so compiled plans may keep them across rebinds.
func (s *Snapshot) AttrID(a Attr) (int32, bool) {
	id, ok := s.attrIDs[a]
	return id, ok
}

// AttrValueID is Attr for a resolved attribute symbol: one binary
// search over the node's interned tuple, no hashing.
func (s *Snapshot) AttrValueID(id NodeID, aid int32) (Value, bool) {
	seg := s.attrSeg(id)
	lo, hi := 0, len(seg.key)
	for lo < hi {
		mid := int(uint(lo+hi) >> 1)
		switch {
		case seg.key[mid] < aid:
			lo = mid + 1
		case seg.key[mid] > aid:
			hi = mid
		default:
			return seg.val[mid], true
		}
	}
	return Value{}, false
}

// CandidateNodesID is CandidateNodes for a resolved node-label symbol.
func (s *Snapshot) CandidateNodesID(lid int32) []NodeID {
	if int(lid) >= len(s.labelNodes) {
		return nil
	}
	return s.labelNodes[lid]
}

// OutNeighborsID is OutNeighbors for a resolved concrete edge-label
// symbol: one label-run lookup, no hashing, no allocation.
func (s *Snapshot) OutNeighborsID(src NodeID, lid int32) []NodeID {
	seg := s.outSeg(src)
	lo, hi := labelRun(seg.lbl, lid)
	return seg.ids[lo:hi]
}

// InNeighborsID is InNeighbors for a resolved concrete edge-label symbol.
func (s *Snapshot) InNeighborsID(dst NodeID, lid int32) []NodeID {
	seg := s.inSeg(dst)
	lo, hi := labelRun(seg.lbl, lid)
	return seg.ids[lo:hi]
}

// HasEdgeID is HasEdge for a resolved edge-label symbol.
func (s *Snapshot) HasEdgeID(src NodeID, lid int32, dst NodeID) bool {
	seg := s.outSeg(src)
	lo, hi := labelRun(seg.lbl, lid)
	for lo < hi {
		mid := int(uint(lo+hi) >> 1)
		switch {
		case seg.ids[mid] < dst:
			lo = mid + 1
		case seg.ids[mid] > dst:
			hi = mid
		default:
			return true
		}
	}
	return false
}
