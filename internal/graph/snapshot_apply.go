package graph

import (
	"fmt"
	"sort"
)

// pagedPatch mutates a paged per-node table copy-on-write: the outer
// page table and each touched page are cloned at most once, everything
// else stays shared with the parent snapshot.
type pagedPatch[T any] struct {
	pgs      [][]T
	ownOuter bool
	ownPage  map[int]bool
}

func newPagedPatch[T any](pgs [][]T) *pagedPatch[T] {
	return &pagedPatch[T]{pgs: pgs, ownPage: make(map[int]bool)}
}

func (pp *pagedPatch[T]) cloneOuter(extraPages int) {
	if pp.ownOuter {
		return
	}
	out := make([][]T, len(pp.pgs), len(pp.pgs)+extraPages)
	copy(out, pp.pgs)
	pp.pgs = out
	pp.ownOuter = true
}

// clonePage copies page p to full-page capacity on first touch; the
// caller must have cloned the outer table already.
func (pp *pagedPatch[T]) clonePage(p int) {
	if pp.ownPage[p] {
		return
	}
	pg := pp.pgs[p]
	np := make([]T, len(pg), pageSize)
	copy(np, pg)
	pp.pgs[p] = np
	pp.ownPage[p] = true
}

func (pp *pagedPatch[T]) ownedPage(p int) []T {
	pp.cloneOuter(0)
	pp.clonePage(p)
	return pp.pgs[p]
}

// at reads the current value of entry id.
func (pp *pagedPatch[T]) at(id NodeID) T { return pp.pgs[id>>pageShift][id&pageMask] }

// set overwrites entry id, cloning its page on first touch.
func (pp *pagedPatch[T]) set(id NodeID, v T) {
	pp.ownedPage(int(id) >> pageShift)[int(id)&pageMask] = v
}

// extend appends items for ids oldN, oldN+1, ...: the last partial page
// is cloned to full-page capacity and new pages are allocated fresh.
func (pp *pagedPatch[T]) extend(oldN int, items []T) {
	if len(items) == 0 {
		return
	}
	pp.cloneOuter((len(items) + pageSize - 1) / pageSize)
	for i, v := range items {
		p := (oldN + i) >> pageShift
		if p == len(pp.pgs) {
			pp.pgs = append(pp.pgs, make([]T, 0, pageSize))
			pp.ownPage[p] = true
		} else {
			pp.clonePage(p)
		}
		pp.pgs[p] = append(pp.pgs[p], v)
	}
}

// epatch is one direction of one added edge, with the label resolved.
type epatch struct {
	node  NodeID // the segment owner (src for out, dst for in)
	lid   int32
	other NodeID
}

// Apply produces the snapshot of the graph after delta d, in time
// proportional to |Δ| plus the adjacency, attribute tuples and touched
// value postings of the touched nodes — not the graph. The result
// shares every untouched page, label posting and symbol table with s;
// both snapshots remain fully usable and immutable. Materialized value
// postings (Lookup/PostingID) are carried forward copy-on-write at
// posting granularity, so compiled plans with pushed-down constant
// literals follow a delta-maintained snapshot without an O(|G|)
// posting rebuild; postings a parent never materialized stay lazy in
// the child.
//
// d.FromVersion must equal s.SourceVersion(): deltas compose in
// sequence, exactly as Graph.DeltaSince hands them out. Apply panics on
// a version mismatch, on non-contiguous node ids, and on edges or
// attribute writes naming nodes the result would not have — all
// programmer errors in delta construction, never data errors.
//
// Applying an empty delta returns s itself. The result is
// indistinguishable from Graph.Freeze() on the post-delta graph (the
// differential tests assert exactly that), so callers may mix the two
// freely.
func (s *Snapshot) Apply(d *Delta) *Snapshot {
	if d.FromVersion != s.version {
		panic(fmt.Sprintf("graph: Apply of delta from version %d onto snapshot at version %d",
			d.FromVersion, s.version))
	}
	if d.Empty() && d.ToVersion == s.version {
		return s
	}
	oldN := s.numNodes
	n := oldN + len(d.Nodes)
	ns := &Snapshot{
		labels:        s.labels,
		labelIDs:      s.labelIDs,
		attrs:         s.attrs,
		attrIDs:       s.attrIDs,
		numNodes:      n,
		ids:           identityIDs(n),
		nodeLabel:     s.nodeLabel,
		out:           s.out,
		in:            s.in,
		attr:          s.attr,
		labelNodes:    s.labelNodes,
		labelDegTotal: s.labelDegTotal,
		numEdges:      s.numEdges,
		version:       d.ToVersion,
		lineage:       s.lineage,
	}

	// Symbol tables: cloned at most once, on the first genuinely new
	// symbol. Ids are append-only, so child symbols extend the parent's
	// and compiled plans stay rebindable across the lineage.
	ownLabels, ownAttrs := false, false
	internLabel := func(l Label) int32 {
		if id, ok := ns.labelIDs[l]; ok {
			return id
		}
		if !ownLabels {
			m := make(map[Label]int32, len(ns.labelIDs)+1)
			for k, v := range ns.labelIDs {
				m[k] = v
			}
			ns.labelIDs = m
			ns.labels = append(make([]Label, 0, len(ns.labels)+1), ns.labels...)
			ownLabels = true
		}
		id := int32(len(ns.labels))
		ns.labels = append(ns.labels, l)
		ns.labelIDs[l] = id
		return id
	}
	internAttr := func(a Attr) int32 {
		if id, ok := ns.attrIDs[a]; ok {
			return id
		}
		if !ownAttrs {
			m := make(map[Attr]int32, len(ns.attrIDs)+1)
			for k, v := range ns.attrIDs {
				m[k] = v
			}
			ns.attrIDs = m
			ns.attrs = append(make([]Attr, 0, len(ns.attrs)+1), ns.attrs...)
			ownAttrs = true
		}
		id := int32(len(ns.attrs))
		ns.attrs = append(ns.attrs, a)
		ns.attrIDs[a] = id
		return id
	}

	// Label postings and degree totals: outer slices cloned on first
	// touch, individual postings cloned per touched label-group only.
	ownPostings := false
	ownedPosting := make(map[int32]bool)
	ensureLabelTables := func(minLen int) {
		if !ownPostings {
			ns.labelNodes = append(make([][]NodeID, 0, max(minLen, len(ns.labelNodes))), ns.labelNodes...)
			ns.labelDegTotal = append(make([]int64, 0, max(minLen, len(ns.labelDegTotal))), ns.labelDegTotal...)
			ownPostings = true
		}
		for len(ns.labelNodes) < minLen {
			ns.labelNodes = append(ns.labelNodes, nil)
			ns.labelDegTotal = append(ns.labelDegTotal, 0)
		}
	}

	nodeLabelPP := newPagedPatch(ns.nodeLabel)
	outPP := newPagedPatch(ns.out)
	inPP := newPagedPatch(ns.in)
	attrPP := newPagedPatch(ns.attr)

	// --- added nodes ---
	if len(d.Nodes) > 0 {
		newLids := make([]int32, len(d.Nodes))
		maxLid := int32(-1)
		for i, na := range d.Nodes {
			if na.ID != NodeID(oldN+i) {
				panic(fmt.Sprintf("graph: delta node id %d not contiguous with snapshot of %d nodes", na.ID, oldN))
			}
			newLids[i] = internLabel(na.Label)
			if newLids[i] > maxLid {
				maxLid = newLids[i]
			}
		}
		nodeLabelPP.extend(oldN, newLids)
		outPP.extend(oldN, make([]adjSeg, len(d.Nodes)))
		inPP.extend(oldN, make([]adjSeg, len(d.Nodes)))
		attrPP.extend(oldN, make([]attrSeg, len(d.Nodes)))
		ensureLabelTables(int(maxLid) + 1)
		for i, lid := range newLids {
			if !ownedPosting[lid] {
				old := ns.labelNodes[lid]
				ns.labelNodes[lid] = append(make([]NodeID, 0, len(old)+1), old...)
				ownedPosting[lid] = true
			}
			ns.labelNodes[lid] = append(ns.labelNodes[lid], NodeID(oldN+i))
		}
	}
	labelOf := func(id NodeID) int32 { return nodeLabelPP.at(id) }

	// --- added edges ---
	if len(d.Edges) > 0 {
		outAdd := make([]epatch, 0, len(d.Edges))
		inAdd := make([]epatch, 0, len(d.Edges))
		for _, e := range d.Edges {
			if e.Src < 0 || int(e.Src) >= n || e.Dst < 0 || int(e.Dst) >= n {
				panic(fmt.Sprintf("graph: delta edge (%d,%s,%d) names a node outside [0,%d)", e.Src, e.Label, e.Dst, n))
			}
			lid := internLabel(e.Label)
			outAdd = append(outAdd, epatch{node: e.Src, lid: lid, other: e.Dst})
			inAdd = append(inAdd, epatch{node: e.Dst, lid: lid, other: e.Src})
		}
		sortPatches(outAdd)
		sortPatches(inAdd)
		// The out pass is authoritative for what is genuinely new (the
		// in pass sees the mirror of exactly the same edge set), so it
		// alone maintains the edge count and degree totals.
		ensureLabelTables(0)
		mergePatches(outPP, outAdd, func(p epatch) {
			ns.numEdges++
			ns.labelDegTotal[labelOf(p.node)]++
			ns.labelDegTotal[labelOf(p.other)]++
		})
		mergePatches(inPP, inAdd, nil)
	}

	// Posting maintenance is lazy: when the parent carries materialized
	// postings (its own or an ancestor's base), the child inherits the
	// base tables plus the pending edit batches, and this delta's
	// attribute writes are recorded as one more batch. Reads then serve
	// untouched pairs from the base for free and rebuild only the pairs
	// someone actually asks for; a deep pending chain compacts here.
	var postingBase *postingTables
	var pending []postingBatch
	if s.postingsReady.Load() {
		postingBase = s.postings
	} else if s.postingBase != nil {
		postingBase = s.postingBase
		pending = s.postingPending
	}
	var batch postingBatch
	record := func(aid int32, v Value, id NodeID, del bool) {
		if batch == nil {
			batch = make(postingBatch)
		}
		pk := postingKey{attr: aid, val: v}
		batch[pk] = append(batch[pk], postingEdit{id: id, del: del})
	}

	// --- attribute writes ---
	if len(d.Attrs) > 0 {
		writes := make([]AttrWrite, len(d.Attrs))
		copy(writes, d.Attrs)
		// Stable by node: application order within a node is preserved,
		// so a later write to the same attribute wins, as in SetAttr.
		sort.SliceStable(writes, func(i, j int) bool { return writes[i].Node < writes[j].Node })
		for lo := 0; lo < len(writes); {
			hi := lo
			for hi < len(writes) && writes[hi].Node == writes[lo].Node {
				hi++
			}
			id := writes[lo].Node
			if id < 0 || int(id) >= n {
				panic(fmt.Sprintf("graph: delta attribute write names node %d outside [0,%d)", id, n))
			}
			seg := attrPP.at(id)
			key := append(make([]int32, 0, len(seg.key)+hi-lo), seg.key...)
			val := append(make([]Value, 0, len(seg.val)+hi-lo), seg.val...)
			for _, w := range writes[lo:hi] {
				aid := internAttr(w.Attr)
				pos := sort.Search(len(key), func(k int) bool { return key[k] >= aid })
				if pos < len(key) && key[pos] == aid {
					if postingBase != nil && !val[pos].Equal(w.Value) {
						record(aid, val[pos], id, true)
						record(aid, w.Value, id, false)
					}
					val[pos] = w.Value
				} else {
					if postingBase != nil {
						record(aid, w.Value, id, false)
					}
					key = append(key, 0)
					copy(key[pos+1:], key[pos:])
					key[pos] = aid
					val = append(val, Value{})
					copy(val[pos+1:], val[pos:])
					val[pos] = w.Value
				}
			}
			attrPP.set(id, attrSeg{key: key, val: val})
			lo = hi
		}
	}

	if postingBase != nil {
		if batch != nil {
			pending = append(append(make([]postingBatch, 0, len(pending)+1), pending...), batch)
		}
		switch {
		case len(pending) == 0:
			// Nothing moved a posting: the base describes the child
			// verbatim (node and edge additions never touch one).
			ns.postings = postingBase
			ns.postingsReady.Store(true)
		case len(pending) > postingChainMax:
			ns.postings = compactPostings(postingBase, pending)
			ns.postingsReady.Store(true)
		default:
			ns.postingBase = postingBase
			ns.postingPending = pending
		}
	}

	ns.nodeLabel = nodeLabelPP.pgs
	ns.out = outPP.pgs
	ns.in = inPP.pgs
	ns.attr = attrPP.pgs
	return ns
}

// postingChainMax bounds the pending-batch chain: a chain past this
// depth is compacted into a fresh materialized table at Apply time, so
// both per-lookup replay cost and ancestor-table retention stay
// bounded. Compaction reuses the overlay-map scheme: the new
// generation gets a small private pid map in front of the base's, and
// the base's accumulated overlays merge once they pile up — the large
// root map built at materialization is never copied.
const postingChainMax = 8

// compactPostings folds pending edit batches into base, producing a
// fresh materialized table. Cost is proportional to the batches and
// the size of the postings they touch; untouched pages and postings
// are shared with base copy-on-write.
func compactPostings(base *postingTables, pending []postingBatch) *postingTables {
	over := make(map[postingKey]int32)
	var maps []map[postingKey]int32
	if len(base.maps) >= postingChainMax {
		// Merge the base's overlays (all small), keep its root as is.
		// Keys appear in at most one chain member, so fold order is
		// free.
		overlays := base.maps[:len(base.maps)-1]
		total := 0
		for _, m := range overlays {
			total += len(m)
		}
		merged := make(map[postingKey]int32, total+8)
		for _, m := range overlays {
			for k, v := range m {
				merged[k] = v
			}
		}
		maps = []map[postingKey]int32{over, merged, base.maps[len(base.maps)-1]}
	} else {
		maps = append(append(make([]map[postingKey]int32, 0, len(base.maps)+1), over), base.maps...)
	}
	pt := &postingTables{maps: maps, num: base.num}
	pp := newPagedPatch(base.pages)
	done := make(map[postingKey]bool)
	for _, b := range pending {
		for pk := range b {
			if done[pk] {
				continue
			}
			done[pk] = true
			var old []NodeID
			pid, ok := pt.pid(pk)
			if ok {
				old = pp.at(NodeID(pid))
			} else {
				pid = int32(pt.num)
				pt.num++
				over[pk] = pid
				pp.extend(int(pid), [][]NodeID{nil})
			}
			pp.set(NodeID(pid), replayPosting(old, pending, pk))
		}
	}
	pt.pages = pp.pgs
	return pt
}

// sortPatches orders edge patches by (owner, label, endpoint) and drops
// exact duplicates within the delta.
func sortPatches(ps []epatch) {
	sort.Slice(ps, func(i, j int) bool {
		a, b := ps[i], ps[j]
		if a.node != b.node {
			return a.node < b.node
		}
		if a.lid != b.lid {
			return a.lid < b.lid
		}
		return a.other < b.other
	})
}

// mergePatches folds sorted edge patches into the per-node segments of
// one direction, cloning only the touched pages. Entries already in a
// segment (duplicate inserts) are skipped; onNew, when non-nil, fires
// once per genuinely new entry.
func mergePatches(pp *pagedPatch[adjSeg], ps []epatch, onNew func(epatch)) {
	for lo := 0; lo < len(ps); {
		hi := lo
		for hi < len(ps) && ps[hi].node == ps[lo].node {
			hi++
		}
		id := ps[lo].node
		old := pp.at(id)
		fresh := ps[lo:hi:hi]
		// Drop duplicates: within the delta, and against the segment.
		kept := fresh[:0:0]
		for k, p := range fresh {
			if k > 0 && p == fresh[k-1] {
				continue
			}
			if segHas(old, p.lid, p.other) {
				continue
			}
			kept = append(kept, p)
			if onNew != nil {
				onNew(p)
			}
		}
		if len(kept) > 0 {
			pp.set(id, mergeSeg(old, kept))
		}
		lo = hi
	}
}

// segHas reports whether the segment contains the (label, endpoint)
// entry: the same label-run + binary-search walk as HasEdgeID.
func segHas(seg adjSeg, lid int32, other NodeID) bool {
	lo, hi := labelRun(seg.lbl, lid)
	for lo < hi {
		mid := int(uint(lo+hi) >> 1)
		switch {
		case seg.ids[mid] < other:
			lo = mid + 1
		case seg.ids[mid] > other:
			hi = mid
		default:
			return true
		}
	}
	return false
}

// mergeSeg interleaves a sorted segment with sorted, known-absent new
// entries, preserving the (label, endpoint) order invariant.
func mergeSeg(old adjSeg, add []epatch) adjSeg {
	lbl := make([]int32, 0, len(old.lbl)+len(add))
	ids := make([]NodeID, 0, len(old.ids)+len(add))
	i, j := 0, 0
	for i < len(old.lbl) || j < len(add) {
		takeOld := j >= len(add) ||
			(i < len(old.lbl) &&
				(old.lbl[i] < add[j].lid ||
					(old.lbl[i] == add[j].lid && old.ids[i] < add[j].other)))
		if takeOld {
			lbl = append(lbl, old.lbl[i])
			ids = append(ids, old.ids[i])
			i++
		} else {
			lbl = append(lbl, add[j].lid)
			ids = append(ids, add[j].other)
			j++
		}
	}
	return adjSeg{lbl: lbl, ids: ids}
}
