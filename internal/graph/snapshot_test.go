package graph

import (
	"math/rand"
	"sort"
	"testing"
)

// buildDemo constructs a small graph exercising every snapshot feature:
// multiple labels, parallel edges under distinct labels, a wildcard
// edge label, attributes, and an isolated node.
func buildDemo() *Graph {
	g := New()
	a := g.AddNodeAttrs("person", map[Attr]Value{"name": String("ada"), "age": Int(36)})
	b := g.AddNodeAttrs("person", map[Attr]Value{"name": String("bob")})
	c := g.AddNodeAttrs("city", map[Attr]Value{"name": String("paris")})
	d := g.AddNode("person")
	g.AddEdge(a, "knows", b)
	g.AddEdge(a, "lives_in", c)
	g.AddEdge(b, "lives_in", c)
	g.AddEdge(a, Wildcard, c)
	g.AddEdge(b, "knows", a)
	_ = d
	return g
}

func sortedIDs(ids []NodeID) []NodeID {
	out := append([]NodeID(nil), ids...)
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

func sameIDSet(a, b []NodeID) bool {
	a, b = sortedIDs(a), sortedIDs(b)
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

func TestSnapshotMirrorsGraph(t *testing.T) {
	g := buildDemo()
	s := g.Freeze()

	if s.NumNodes() != g.NumNodes() || s.NumEdges() != g.NumEdges() || s.Size() != g.Size() {
		t.Fatalf("sizes: snapshot (%d,%d) vs graph (%d,%d)",
			s.NumNodes(), s.NumEdges(), g.NumNodes(), g.NumEdges())
	}
	for _, id := range g.Nodes() {
		if s.Label(id) != g.Label(id) {
			t.Errorf("label of n%d: %s vs %s", id, s.Label(id), g.Label(id))
		}
		for _, a := range []Attr{"name", "age", "zz"} {
			gv, gok := g.Attr(id, a)
			sv, sok := s.Attr(id, a)
			if gok != sok || (gok && !gv.Equal(sv)) {
				t.Errorf("attr %s of n%d: (%v,%v) vs (%v,%v)", a, id, sv, sok, gv, gok)
			}
		}
	}
	for _, l := range []Label{"person", "city", "ghost", Wildcard} {
		if !sameIDSet(s.CandidateNodes(l), g.CandidateNodes(l)) {
			t.Errorf("CandidateNodes(%s) differ", l)
		}
		if !sameIDSet(s.NodesWithLabel(l), g.NodesWithLabel(l)) {
			t.Errorf("NodesWithLabel(%s) differ", l)
		}
	}
}

func TestSnapshotEdgesAndNeighbors(t *testing.T) {
	g := buildDemo()
	s := g.Freeze()
	n := g.NumNodes()
	labels := []Label{"knows", "lives_in", "ghost", Wildcard}
	for src := 0; src < n; src++ {
		for dst := 0; dst < n; dst++ {
			for _, l := range labels {
				if got, want := s.HasEdge(NodeID(src), l, NodeID(dst)), g.HasEdge(NodeID(src), l, NodeID(dst)); got != want {
					t.Errorf("HasEdge(n%d,%s,n%d) = %v, want %v", src, l, dst, got, want)
				}
			}
			if got, want := s.HasAnyEdge(NodeID(src), NodeID(dst)), g.HasAnyEdge(NodeID(src), NodeID(dst)); got != want {
				t.Errorf("HasAnyEdge(n%d,n%d) = %v, want %v", src, dst, got, want)
			}
		}
		for _, l := range labels {
			if !sameIDSet(s.OutNeighbors(NodeID(src), l), g.OutNeighbors(NodeID(src), l)) {
				t.Errorf("OutNeighbors(n%d,%s) differ: %v vs %v",
					src, l, s.OutNeighbors(NodeID(src), l), g.OutNeighbors(NodeID(src), l))
			}
			if !sameIDSet(s.InNeighbors(NodeID(src), l), g.InNeighbors(NodeID(src), l)) {
				t.Errorf("InNeighbors(n%d,%s) differ", src, l)
			}
		}
		if s.OutDegree(NodeID(src)) != len(g.Out(NodeID(src))) || s.InDegree(NodeID(src)) != len(g.In(NodeID(src))) {
			t.Errorf("degrees of n%d differ", src)
		}
	}
	// A concrete pattern label must NOT see the wildcard-labeled host
	// edge a -_-> c (⪯ is asymmetric), but the wildcard must.
	if s.HasEdge(0, "knows", 2) {
		t.Error("concrete label matched a wildcard host edge")
	}
	if !s.HasAnyEdge(0, 2) {
		t.Error("wildcard lookup missed the wildcard host edge")
	}
}

func TestSnapshotFoldedAttrIndex(t *testing.T) {
	g := buildDemo()
	s := g.Freeze()
	idx := BuildAttrIndex(g)
	cases := []struct {
		a Attr
		v Value
	}{
		{"name", String("ada")}, {"name", String("paris")}, {"age", Int(36)},
		{"name", String("nobody")}, {"zz", Int(1)},
	}
	for _, c := range cases {
		want := idx.Lookup(c.a, c.v)
		got := s.Lookup(c.a, c.v)
		if !sameIDSet(got, want) {
			t.Errorf("Lookup(%s,%v) = %v, want %v", c.a, c.v, got, want)
		}
		if s.Selectivity(c.a, c.v) != idx.Selectivity(c.a, c.v) {
			t.Errorf("Selectivity(%s,%v) differs", c.a, c.v)
		}
	}
	if !s.HasAttr("name") || s.HasAttr("zz") {
		t.Error("HasAttr wrong")
	}
}

func TestSnapshotDegreeStats(t *testing.T) {
	g := buildDemo()
	s := g.Freeze()
	// person nodes: n0 (deg 4+1... count explicitly below), n1, n3.
	total := 0
	for _, id := range g.NodesWithLabel("person") {
		total += len(g.Out(id)) + len(g.In(id))
	}
	want := float64(total) / 3
	if got := s.LabelAvgDegree("person"); got != want {
		t.Errorf("LabelAvgDegree(person) = %v, want %v", got, want)
	}
	if s.LabelAvgDegree("ghost") != 0 {
		t.Error("unknown label must have zero average degree")
	}
	if s.LabelCount("person") != 3 || s.LabelCount(Wildcard) != g.NumNodes() {
		t.Error("LabelCount wrong")
	}
}

func TestSnapshotStaleness(t *testing.T) {
	g := buildDemo()
	v0 := g.Version()
	s := g.Freeze()
	if s.SourceVersion() != v0 {
		t.Fatal("snapshot must record the freeze-time version")
	}
	g.SetAttr(0, "age", Int(37))
	if g.Version() == v0 {
		t.Fatal("SetAttr must bump the version")
	}
	// The snapshot still reflects the old state.
	if v, _ := s.Attr(0, "age"); !v.Equal(Int(36)) {
		t.Error("snapshot leaked a post-freeze mutation")
	}
	n0 := g.Version()
	g.AddNode("person")
	g.AddEdge(0, "knows", 3)
	if g.Version() != n0+2 {
		t.Error("AddNode/AddEdge must each bump the version")
	}
	// Idempotent duplicate edge insertion does not mutate.
	n1 := g.Version()
	g.AddEdge(0, "knows", 3)
	if g.Version() != n1 {
		t.Error("duplicate AddEdge must not bump the version")
	}
}

// TestSnapshotRandomEquivalence cross-checks every read API on random
// graphs, including empty ones.
func TestSnapshotRandomEquivalence(t *testing.T) {
	rng := rand.New(rand.NewSource(71))
	labels := []Label{"a", "b", "c", Wildcard}
	elabels := []Label{"e", "f", Wildcard}
	attrs := []Attr{"p", "q"}
	for trial := 0; trial < 50; trial++ {
		g := New()
		n := rng.Intn(12)
		for i := 0; i < n; i++ {
			id := g.AddNode(labels[rng.Intn(len(labels))])
			for _, a := range attrs {
				if rng.Intn(2) == 0 {
					g.SetAttr(id, a, Int(rng.Intn(3)))
				}
			}
		}
		for i := 0; i < 3*n; i++ {
			g.AddEdge(NodeID(rng.Intn(n)), elabels[rng.Intn(len(elabels))], NodeID(rng.Intn(n)))
		}
		s := g.Freeze()
		if s.NumNodes() != g.NumNodes() || s.NumEdges() != g.NumEdges() {
			t.Fatalf("trial %d: size mismatch", trial)
		}
		for i := 0; i < n; i++ {
			id := NodeID(i)
			if s.Label(id) != g.Label(id) {
				t.Fatalf("trial %d: label mismatch at n%d", trial, i)
			}
			for _, a := range attrs {
				gv, gok := g.Attr(id, a)
				sv, sok := s.Attr(id, a)
				if gok != sok || (gok && !gv.Equal(sv)) {
					t.Fatalf("trial %d: attr mismatch at n%d.%s", trial, i, a)
				}
			}
			for _, l := range elabels {
				if !sameIDSet(s.OutNeighbors(id, l), g.OutNeighbors(id, l)) {
					t.Fatalf("trial %d: out neighbors differ at n%d via %s", trial, i, l)
				}
				if !sameIDSet(s.InNeighbors(id, l), g.InNeighbors(id, l)) {
					t.Fatalf("trial %d: in neighbors differ at n%d via %s", trial, i, l)
				}
				for j := 0; j < n; j++ {
					if s.HasEdge(id, l, NodeID(j)) != g.HasEdge(id, l, NodeID(j)) {
						t.Fatalf("trial %d: HasEdge differs", trial)
					}
				}
			}
		}
		for _, l := range labels {
			if !sameIDSet(s.CandidateNodes(l), g.CandidateNodes(l)) {
				t.Fatalf("trial %d: candidates differ for %s", trial, l)
			}
		}
		idx := BuildAttrIndex(g)
		for _, a := range attrs {
			for v := 0; v < 3; v++ {
				if !sameIDSet(s.Lookup(a, Int(v)), idx.Lookup(a, Int(v))) {
					t.Fatalf("trial %d: postings differ for %s=%d", trial, a, v)
				}
			}
		}
	}
}
