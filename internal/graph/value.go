package graph

import (
	"fmt"
	"strconv"
)

// ValueKind discriminates the representation of a constant in the
// countably infinite domain U of the paper. Two kinds are supported:
// character strings and (double-precision) numbers. The domain is totally
// ordered and dense, which is what the GDC extension (Section 7.1)
// requires for its built-in predicates <, ≤, >, ≥ to be meaningful.
type ValueKind uint8

const (
	// KindString is a string constant.
	KindString ValueKind = iota
	// KindNumber is a numeric constant.
	KindNumber
)

// Value is a constant from the domain U. Values are comparable with ==
// (they are valid map keys) and totally ordered by Less: all numbers
// precede all strings, numbers order numerically and strings
// lexicographically. Both orders are dense and unbounded on their own
// kind, and the cross-kind gap never matters because equality across
// kinds is always false.
type Value struct {
	kind ValueKind
	str  string
	num  float64
}

// String returns a Value holding the string constant s.
func String(s string) Value { return Value{kind: KindString, str: s} }

// Number returns a Value holding the numeric constant f.
func Number(f float64) Value { return Value{kind: KindNumber, num: f} }

// Int returns a Value holding the numeric constant i.
func Int(i int) Value { return Value{kind: KindNumber, num: float64(i)} }

// Bool returns the conventional encoding of a boolean as a number:
// 1 for true and 0 for false. GEDs themselves have no boolean type; the
// paper's examples (e.g. x.is_fake = 1) use numeric flags.
func Bool(b bool) Value {
	if b {
		return Number(1)
	}
	return Number(0)
}

// Kind reports the representation kind of v.
func (v Value) Kind() ValueKind { return v.kind }

// Str returns the string payload of v. It is only meaningful when
// Kind() == KindString.
func (v Value) Str() string { return v.str }

// Num returns the numeric payload of v. It is only meaningful when
// Kind() == KindNumber.
func (v Value) Num() float64 { return v.num }

// IsNumber reports whether v is a numeric constant.
func (v Value) IsNumber() bool { return v.kind == KindNumber }

// Equal reports whether v and w are the same constant of U.
func (v Value) Equal(w Value) bool { return v == w }

// Less reports whether v strictly precedes w in the total order on U:
// numbers before strings, then the natural order of each kind.
func (v Value) Less(w Value) bool {
	if v.kind != w.kind {
		return v.kind == KindNumber
	}
	if v.kind == KindNumber {
		return v.num < w.num
	}
	return v.str < w.str
}

// Compare returns -1, 0 or +1 as v is less than, equal to, or greater
// than w in the total order on U.
func (v Value) Compare(w Value) int {
	switch {
	case v.Equal(w):
		return 0
	case v.Less(w):
		return -1
	default:
		return 1
	}
}

// String renders the constant the way the DSL writes it: strings are
// double-quoted, numbers are bare.
func (v Value) String() string {
	if v.kind == KindNumber {
		return strconv.FormatFloat(v.num, 'g', -1, 64)
	}
	return fmt.Sprintf("%q", v.str)
}
