// Package obs is the dependency-free observability core of the
// library: an atomic metrics registry (counters, gauges, log-scale
// latency histograms with quantile extraction), context-propagated
// spans collected into a lock-free recent-trace ring buffer with a
// slow-operation hook, and the match profiler the pattern matcher
// reports plan statistics through.
//
// Everything is built for the hot path it instruments:
//
//   - Metric handles are obtained once (get-or-create on the Registry)
//     and then updated with single atomic operations; histograms index
//     a fixed log-scale bucket table with two sub-buckets per octave,
//     so Record is one shift, one mask and three atomic adds.
//   - Every handle type is nil-safe: methods on a nil *Counter, *Gauge,
//     *Histogram, *Tracer or *Span are no-ops, so instrumented code
//     pays one nil check when observation is disabled instead of
//     branching on configuration.
//   - The span ring is a fixed array of atomic pointers rotated by a
//     single fetch-add; writers never block each other or readers, and
//     Recent reassembles the newest spans without locking.
//
// The Registry renders itself in the Prometheus text exposition format
// (WritePrometheus); serve mounts that as GET /metricsz and the span
// ring as GET /tracez. The Observer bundles one Registry and one
// Tracer and travels by injection — Engine option WithObserver,
// serve.Config.Observer, persist.Options.Observer — or by context
// (ContextWithObserver / FromContext) where no wiring exists, as in
// the chase.
//
// Metric naming follows the Prometheus conventions: every family is
// prefixed ged_, counters end in _total, histograms and their
// exposition are in seconds, and bounded label sets only (stage names,
// rule names, shard indices, graph names — never node ids or request
// payloads).
package obs
