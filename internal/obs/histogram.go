package obs

import (
	"math"
	"math/bits"
	"sync/atomic"
	"time"
)

// The histogram is log-scale over nanoseconds with two sub-buckets per
// octave: bucket boundaries sit at 2^k and 1.5*2^k, so any recorded
// value lands in a bucket whose upper/lower ratio is at most 1.5 —
// quantiles read back from bucket edges are within a factor of 1.5 of
// the true sample quantile (see TestHistogramQuantileOracle). The
// resolved range is [256ns, ~275s); smaller values collapse into an
// underflow bucket, larger ones into an overflow bucket whose quantile
// estimate saturates at the range ceiling.
const (
	histMinShift = 8  // 2^8 ns = 256ns: finest resolved magnitude
	histMaxShift = 38 // 2^38 ns ≈ 275s: coarsest resolved magnitude

	// underflow + two half-octave buckets per octave + overflow.
	numHistBuckets = 2 + 2*(histMaxShift-histMinShift)
)

// bucketIndex maps a nanosecond value to its bucket.
func bucketIndex(ns int64) int {
	if ns < 1<<histMinShift {
		return 0
	}
	if ns >= 1<<histMaxShift {
		return numHistBuckets - 1
	}
	l := bits.Len64(uint64(ns)) - 1 // histMinShift..histMaxShift-1
	half := int(ns>>(l-1)) & 1      // second-highest bit: which half-octave
	return 1 + 2*(l-histMinShift) + half
}

// bucketUpper is the exclusive upper bound, in nanoseconds, of bucket i
// (MaxInt64 for the overflow bucket).
func bucketUpper(i int) int64 {
	if i <= 0 {
		return 1 << histMinShift
	}
	if i >= numHistBuckets-1 {
		return math.MaxInt64
	}
	i--
	l := i/2 + histMinShift
	half := int64(i % 2)
	// The bucket covers [2^l*(2+half)/2, 2^l*(3+half)/2).
	return (3 + half) << (l - 1)
}

// Histogram is a fixed-bucket log-scale latency histogram. Record is
// lock-free (one index computation and three atomic adds) and safe for
// any number of concurrent writers and snapshotting readers. A nil
// *Histogram is a no-op sink.
type Histogram struct {
	buckets [numHistBuckets]atomic.Uint64
	count   atomic.Uint64
	sum     atomic.Int64 // nanoseconds
}

// NewHistogram returns an empty histogram.
func NewHistogram() *Histogram { return &Histogram{} }

// Record adds one observation of ns nanoseconds.
func (h *Histogram) Record(ns int64) {
	if h == nil {
		return
	}
	if ns < 0 {
		ns = 0
	}
	h.buckets[bucketIndex(ns)].Add(1)
	h.count.Add(1)
	h.sum.Add(ns)
}

// Observe records a duration.
func (h *Histogram) Observe(d time.Duration) { h.Record(int64(d)) }

// HistogramSnapshot is a point-in-time copy of a histogram's state.
// The copy is not a single atomic cut across buckets — concurrent
// records may straddle it — but every individual value is a consistent
// atomic load, and a quiescent histogram snapshots exactly.
type HistogramSnapshot struct {
	Count   uint64
	Sum     int64 // nanoseconds
	Buckets [numHistBuckets]uint64
}

// Snapshot copies the histogram's current state; zero value on nil.
func (h *Histogram) Snapshot() HistogramSnapshot {
	var s HistogramSnapshot
	if h == nil {
		return s
	}
	for i := range h.buckets {
		s.Buckets[i] = h.buckets[i].Load()
	}
	s.Count = h.count.Load()
	s.Sum = h.sum.Load()
	return s
}

// Count returns the number of recorded observations.
func (h *Histogram) Count() uint64 {
	if h == nil {
		return 0
	}
	return h.count.Load()
}

// Quantile returns the q-quantile (0 < q <= 1) as the upper edge of the
// bucket holding the rank-⌈q·count⌉ observation — an estimate within a
// factor of 1.5 above the true sample quantile for in-range values.
// Returns 0 on an empty snapshot; saturates at the range ceiling for
// observations in the overflow bucket.
func (s HistogramSnapshot) Quantile(q float64) time.Duration {
	// Sum the buckets rather than trusting Count: a snapshot taken under
	// concurrent writers may have the two out of step, and the walk must
	// terminate inside the table.
	var total uint64
	for _, c := range s.Buckets {
		total += c
	}
	if total == 0 || q <= 0 {
		return 0
	}
	if q > 1 {
		q = 1
	}
	rank := uint64(math.Ceil(q * float64(total)))
	if rank < 1 {
		rank = 1
	}
	var cum uint64
	for i, c := range s.Buckets {
		cum += c
		if cum >= rank {
			if i == numHistBuckets-1 {
				return time.Duration(int64(1) << histMaxShift)
			}
			return time.Duration(bucketUpper(i))
		}
	}
	return time.Duration(int64(1) << histMaxShift)
}

// Mean returns the average recorded duration; 0 when empty.
func (s HistogramSnapshot) Mean() time.Duration {
	if s.Count == 0 {
		return 0
	}
	return time.Duration(s.Sum / int64(s.Count))
}
