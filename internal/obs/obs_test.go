package obs

import (
	"fmt"
	"math"
	"math/rand"
	"sort"
	"strings"
	"sync"
	"testing"
	"time"
)

// TestBucketEdges pins the bucket geometry: indexes are monotone, every
// in-range value lands in a bucket whose bounds contain it, and the
// upper/lower ratio never exceeds 1.5.
func TestBucketEdges(t *testing.T) {
	if got := bucketIndex(0); got != 0 {
		t.Fatalf("bucketIndex(0) = %d, want 0", got)
	}
	if got := bucketIndex(255); got != 0 {
		t.Fatalf("bucketIndex(255) = %d, want 0", got)
	}
	if got := bucketIndex(1 << histMaxShift); got != numHistBuckets-1 {
		t.Fatalf("overflow bucket: got %d, want %d", got, numHistBuckets-1)
	}
	prev := 0
	for ns := int64(256); ns < 1<<histMaxShift; ns += ns / 3 {
		i := bucketIndex(ns)
		if i < prev {
			t.Fatalf("bucketIndex not monotone at %d: %d < %d", ns, i, prev)
		}
		prev = i
		up := bucketUpper(i)
		var lo int64 = 0
		if i > 0 {
			lo = bucketUpper(i - 1)
		}
		if ns < lo || ns >= up {
			t.Fatalf("ns=%d in bucket %d with bounds [%d, %d)", ns, i, lo, up)
		}
		if i > 0 && i < numHistBuckets-1 && float64(up)/float64(lo) > 1.5+1e-9 {
			t.Fatalf("bucket %d ratio %g > 1.5", i, float64(up)/float64(lo))
		}
	}
}

// TestHistogramQuantileOracle is the accuracy property test: against a
// sorted-sample oracle, every quantile estimate must bracket the true
// value from above within the documented factor of 1.5.
func TestHistogramQuantileOracle(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for trial := 0; trial < 50; trial++ {
		h := NewHistogram()
		n := 100 + rng.Intn(5000)
		samples := make([]int64, n)
		for i := range samples {
			// Log-uniform over the resolved range [256ns, ~275s).
			e := float64(histMinShift) + rng.Float64()*float64(histMaxShift-histMinShift-1)
			samples[i] = int64(math.Pow(2, e))
			h.Record(samples[i])
		}
		sort.Slice(samples, func(i, j int) bool { return samples[i] < samples[j] })
		snap := h.Snapshot()
		for _, q := range []float64{0.5, 0.9, 0.95, 0.99, 1.0} {
			rank := int(math.Ceil(q * float64(n)))
			truth := samples[rank-1]
			est := int64(snap.Quantile(q))
			if est < truth {
				t.Fatalf("trial %d q=%g: estimate %d below true %d", trial, q, est, truth)
			}
			if float64(est) > float64(truth)*1.5 {
				t.Fatalf("trial %d q=%g: estimate %d > 1.5x true %d", trial, q, est, truth)
			}
		}
	}
}

// TestHistogramHammer runs concurrent Record against concurrent
// Snapshot/Quantile readers (race-detector food), then checks the
// final state adds up exactly.
func TestHistogramHammer(t *testing.T) {
	h := NewHistogram()
	const writers = 8
	const perWriter = 20000
	var wg sync.WaitGroup
	stop := make(chan struct{})
	for r := 0; r < 4; r++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				select {
				case <-stop:
					return
				default:
				}
				s := h.Snapshot()
				_ = s.Quantile(0.99)
				_ = s.Mean()
			}
		}()
	}
	var ww sync.WaitGroup
	for wr := 0; wr < writers; wr++ {
		ww.Add(1)
		go func(seed int64) {
			defer ww.Done()
			rng := rand.New(rand.NewSource(seed))
			for i := 0; i < perWriter; i++ {
				h.Record(int64(rng.Intn(1 << 30)))
			}
		}(int64(wr))
	}
	ww.Wait()
	close(stop)
	wg.Wait()

	s := h.Snapshot()
	if s.Count != writers*perWriter {
		t.Fatalf("count %d, want %d", s.Count, writers*perWriter)
	}
	var cum uint64
	for _, c := range s.Buckets {
		cum += c
	}
	if cum != s.Count {
		t.Fatalf("bucket sum %d != count %d", cum, s.Count)
	}
}

// TestTracerRingRotation hammers span completion from many goroutines
// while readers drain Recent, then checks the ring retains exactly the
// newest spans.
func TestTracerRingRotation(t *testing.T) {
	tr := NewTracer(32, nil)
	var wg sync.WaitGroup
	stop := make(chan struct{})
	for r := 0; r < 4; r++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				select {
				case <-stop:
					return
				default:
				}
				for _, sd := range tr.Recent(32, nil) {
					if sd.Op == "" {
						t.Error("ring served a zero span")
						return
					}
				}
			}
		}()
	}
	var ww sync.WaitGroup
	for w := 0; w < 8; w++ {
		ww.Add(1)
		go func(w int) {
			defer ww.Done()
			for i := 0; i < 5000; i++ {
				sp := tr.Start("g", fmt.Sprintf("op%d", w))
				sp.Stage("work")
				sp.End()
			}
		}(w)
	}
	ww.Wait()
	close(stop)
	wg.Wait()

	got := tr.Recent(64, nil)
	if len(got) != 32 {
		t.Fatalf("ring retained %d spans, want 32", len(got))
	}
	filtered := tr.Recent(32, func(sd *SpanData) bool { return sd.Op == "op3" })
	for _, sd := range filtered {
		if sd.Op != "op3" {
			t.Fatalf("filter leaked op %q", sd.Op)
		}
	}
}

// TestSlowOpHook: only spans at or above the threshold fire the hook.
func TestSlowOpHook(t *testing.T) {
	var fired []*SpanData
	tr := NewTracer(8, func(sd *SpanData) { fired = append(fired, sd) })
	tr.SetSlowOp(10 * time.Millisecond)

	fast := tr.Start("g", "fast")
	fast.End()
	slow := tr.Start("g", "slow")
	slow.d.Start = slow.d.Start.Add(-20 * time.Millisecond) // backdate: deterministic slowness
	slow.End()

	if len(fired) != 1 || fired[0].Op != "slow" {
		t.Fatalf("slow-op hook fired for %v, want exactly [slow]", fired)
	}
}

// TestNilSafety: every handle method must be callable through nil.
func TestNilSafety(t *testing.T) {
	var c *Counter
	c.Inc()
	c.Add(3)
	if c.Value() != 0 {
		t.Fatal("nil counter value")
	}
	var g *Gauge
	g.Set(5)
	g.Add(-2)
	if g.Value() != 0 {
		t.Fatal("nil gauge value")
	}
	var h *Histogram
	h.Record(100)
	h.Observe(time.Second)
	if h.Snapshot().Count != 0 || h.Count() != 0 {
		t.Fatal("nil histogram count")
	}
	var tr *Tracer
	tr.SetSlowOp(time.Second)
	sp := tr.Start("g", "op")
	sp.Stage("s")
	sp.StageDur("s", time.Second)
	sp.Fail(fmt.Errorf("x"))
	sp.End()
	if tr.Recent(10, nil) != nil {
		t.Fatal("nil tracer recent")
	}
	var o *Observer
	o.SetSlowOp(time.Second)
	if o.Registry() != nil || o.Tracer() != nil {
		t.Fatal("nil observer handles")
	}
	var r *Registry
	if r.Counter("x", "") != nil || r.Gauge("x", "") != nil || r.Histogram("x", "") != nil {
		t.Fatal("nil registry handles")
	}
	r.GaugeFunc("x", "", func() float64 { return 0 })
	r.RemoveLabeled("k", "v")
	r.WritePrometheus(&strings.Builder{})
}

// TestRegistryExposition pins the Prometheus text rendering and the
// get-or-create + RemoveLabeled contract.
func TestRegistryExposition(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("ged_test_total", "a counter", "graph", "kb")
	c.Add(41)
	if c2 := r.Counter("ged_test_total", "a counter", "graph", "kb"); c2 != c {
		t.Fatal("get-or-create returned a different counter")
	}
	c.Inc()
	r.Gauge("ged_test_gauge", "a gauge", "graph", "kb").Set(-7)
	r.GaugeFunc("ged_test_fn", "a sampled gauge", func() float64 { return 2.5 })
	h := r.Histogram("ged_test_seconds", "a histogram", "graph", "kb")
	h.Observe(time.Millisecond)

	var b strings.Builder
	r.WritePrometheus(&b)
	out := b.String()
	for _, want := range []string{
		"# TYPE ged_test_total counter",
		`ged_test_total{graph="kb"} 42`,
		`ged_test_gauge{graph="kb"} -7`,
		"ged_test_fn 2.5",
		"# TYPE ged_test_seconds histogram",
		`ged_test_seconds_count{graph="kb"} 1`,
		`le="+Inf"`,
	} {
		if !strings.Contains(out, want) {
			t.Errorf("exposition missing %q:\n%s", want, out)
		}
	}

	r.RemoveLabeled("graph", "kb")
	b.Reset()
	r.WritePrometheus(&b)
	if strings.Contains(b.String(), `graph="kb"`) {
		t.Fatalf("RemoveLabeled left kb series:\n%s", b.String())
	}
	if !strings.Contains(b.String(), "ged_test_fn 2.5") {
		t.Fatal("RemoveLabeled dropped an unlabeled series")
	}
}

// TestRegistryConcurrent hammers get-or-create and exposition together.
func TestRegistryConcurrent(t *testing.T) {
	r := NewRegistry()
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < 2000; i++ {
				r.Counter("ged_conc_total", "", "w", fmt.Sprint(w%4)).Inc()
				r.Histogram("ged_conc_seconds", "", "w", fmt.Sprint(w%4)).Record(int64(i))
				if i%100 == 0 {
					r.WritePrometheus(&strings.Builder{})
				}
			}
		}(w)
	}
	wg.Wait()
	var total uint64
	for w := 0; w < 4; w++ {
		total += r.Counter("ged_conc_total", "", "w", fmt.Sprint(w)).Value()
	}
	if total != 8*2000 {
		t.Fatalf("counter total %d, want %d", total, 8*2000)
	}
}
