package obs

import "time"

// Observer bundles the two observation sinks — a metrics Registry and
// a span Tracer — as the single handle instrumented layers accept. A
// nil *Observer (and the nil Registry/Tracer it hands out) disables
// observation at the cost of a nil check per site.
type Observer struct {
	reg *Registry
	tr  *Tracer
}

// New returns a full observer: a fresh registry plus a tracer with the
// default ring size. onSlow, when non-nil, receives every span meeting
// the SetSlowOp threshold.
func New(onSlow func(*SpanData)) *Observer {
	return &Observer{reg: NewRegistry(), tr: NewTracer(DefaultTraceRing, onSlow)}
}

// NewWithRegistry returns a full observer whose metrics land in an
// existing registry — how serve shares one registry between its own
// always-on counters and the injected pipeline instrumentation.
func NewWithRegistry(reg *Registry, onSlow func(*SpanData)) *Observer {
	if reg == nil {
		reg = NewRegistry()
	}
	return &Observer{reg: reg, tr: NewTracer(DefaultTraceRing, onSlow)}
}

// Registry returns the observer's registry; nil on a nil observer.
func (o *Observer) Registry() *Registry {
	if o == nil {
		return nil
	}
	return o.reg
}

// Tracer returns the observer's tracer; nil on a nil observer.
func (o *Observer) Tracer() *Tracer {
	if o == nil {
		return nil
	}
	return o.tr
}

// SetSlowOp sets the tracer's slow-operation threshold.
func (o *Observer) SetSlowOp(d time.Duration) {
	if o != nil {
		o.tr.SetSlowOp(d)
	}
}

// MatchStats is the per-plan profiler sink the matcher flushes its
// enumeration tallies into: how many candidate nodes the plan
// examined, how many worst-case-optimal intersection steps vs
// per-candidate probe steps it took, and how many complete bindings it
// materialized. Counters are shared obs handles (typically labeled by
// rule), so the stats accumulate across enumerations and snapshot
// rebinds; any field may be nil.
type MatchStats struct {
	Candidates     *Counter
	IntersectSteps *Counter
	ProbeSteps     *Counter
	Bindings       *Counter
}
