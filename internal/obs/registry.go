package obs

import (
	"fmt"
	"io"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
)

// Counter is a monotonically increasing metric. The zero value is
// ready to use; a nil *Counter is a no-op sink.
type Counter struct {
	v atomic.Uint64
}

// Add increments the counter by n.
func (c *Counter) Add(n uint64) {
	if c != nil {
		c.v.Add(n)
	}
}

// Inc increments the counter by one.
func (c *Counter) Inc() { c.Add(1) }

// Value returns the current count; 0 on a nil counter.
func (c *Counter) Value() uint64 {
	if c == nil {
		return 0
	}
	return c.v.Load()
}

// Gauge is a metric that can go up and down. The zero value is ready
// to use; a nil *Gauge is a no-op sink.
type Gauge struct {
	v atomic.Int64
}

// Set stores v.
func (g *Gauge) Set(v int64) {
	if g != nil {
		g.v.Store(v)
	}
}

// Add adjusts the gauge by d.
func (g *Gauge) Add(d int64) {
	if g != nil {
		g.v.Add(d)
	}
}

// Value returns the current value; 0 on a nil gauge.
func (g *Gauge) Value() int64 {
	if g == nil {
		return 0
	}
	return g.v.Load()
}

// metric type discriminators, also the Prometheus TYPE strings.
const (
	typeCounter   = "counter"
	typeGauge     = "gauge"
	typeHistogram = "histogram"
)

// series is one labeled instance of a metric family. Exactly one of
// the value fields is set, matching the family's type.
type series struct {
	labels []string // alternating key, value
	c      *Counter
	g      *Gauge
	gf     func() float64
	h      *Histogram
}

// family is one named metric with its labeled series.
type family struct {
	name, help, typ string
	series          map[string]*series
}

// Registry is a set of named metric families. Handles are get-or-create:
// asking for the same (name, labels) twice returns the same Counter,
// Gauge or Histogram, so instrumented code can re-derive its handles
// idempotently. All methods are safe for concurrent use, and every
// method on a nil *Registry returns a nil (no-op) handle.
type Registry struct {
	mu       sync.Mutex
	families map[string]*family
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{families: make(map[string]*family)}
}

// seriesKey folds a label list into a map key. Label lists come from
// instrumentation call sites, which pass keys in a fixed order, so no
// canonicalization is needed.
func seriesKey(labels []string) string {
	return strings.Join(labels, "\xff")
}

// lookup returns the series for (name, labels), creating family and
// series as needed. It panics on a type mismatch or an odd label list —
// both are programming errors at an instrumentation site, not runtime
// conditions.
func (r *Registry) lookup(name, help, typ string, labels []string) *series {
	if len(labels)%2 != 0 {
		panic(fmt.Sprintf("obs: metric %s: odd label list %v", name, labels))
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	f := r.families[name]
	if f == nil {
		f = &family{name: name, help: help, typ: typ, series: make(map[string]*series)}
		r.families[name] = f
	}
	if f.typ != typ {
		panic(fmt.Sprintf("obs: metric %s registered as %s, requested as %s", name, f.typ, typ))
	}
	key := seriesKey(labels)
	s := f.series[key]
	if s == nil {
		s = &series{labels: append([]string(nil), labels...)}
		switch typ {
		case typeCounter:
			s.c = &Counter{}
		case typeGauge:
			s.g = &Gauge{}
		case typeHistogram:
			s.h = NewHistogram()
		}
		f.series[key] = s
	}
	return s
}

// Counter returns the counter (name, labels), creating it on first use.
// labels alternate key, value.
func (r *Registry) Counter(name, help string, labels ...string) *Counter {
	if r == nil {
		return nil
	}
	return r.lookup(name, help, typeCounter, labels).c
}

// Gauge returns the gauge (name, labels), creating it on first use.
func (r *Registry) Gauge(name, help string, labels ...string) *Gauge {
	if r == nil {
		return nil
	}
	return r.lookup(name, help, typeGauge, labels).g
}

// GaugeFunc registers fn as the value of the gauge (name, labels),
// sampled at exposition time. Re-registering the same series replaces
// the function.
func (r *Registry) GaugeFunc(name, help string, fn func() float64, labels ...string) {
	if r == nil {
		return
	}
	s := r.lookup(name, help, typeGauge, labels)
	r.mu.Lock()
	s.gf = fn
	r.mu.Unlock()
}

// Histogram returns the latency histogram (name, labels), creating it
// on first use. Histograms record nanoseconds and expose seconds.
func (r *Registry) Histogram(name, help string, labels ...string) *Histogram {
	if r == nil {
		return nil
	}
	return r.lookup(name, help, typeHistogram, labels).h
}

// RemoveLabeled drops every series (of every family) carrying the label
// pair key=value — the cleanup hook for a per-graph label when the
// graph is deleted, so gauges and functions stop pinning its state.
func (r *Registry) RemoveLabeled(key, value string) {
	if r == nil {
		return
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	for _, f := range r.families {
		for sk, s := range f.series {
			for i := 0; i+1 < len(s.labels); i += 2 {
				if s.labels[i] == key && s.labels[i+1] == value {
					delete(f.series, sk)
					break
				}
			}
		}
	}
}

// RemoveFamilyLabeled drops the series of one family carrying the label
// pair key=value, leaving every other family alone — how an info-style
// gauge (ged_match_plan_info) sheds its stale series on recompile
// without discarding the rule's accumulated counters.
func (r *Registry) RemoveFamilyLabeled(name, key, value string) {
	if r == nil {
		return
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	f := r.families[name]
	if f == nil {
		return
	}
	for sk, s := range f.series {
		for i := 0; i+1 < len(s.labels); i += 2 {
			if s.labels[i] == key && s.labels[i+1] == value {
				delete(f.series, sk)
				break
			}
		}
	}
}

// labelString renders {k="v",...}; empty for an unlabeled series.
func labelString(labels []string, extra ...string) string {
	all := append(append([]string(nil), labels...), extra...)
	if len(all) == 0 {
		return ""
	}
	var b strings.Builder
	b.WriteByte('{')
	for i := 0; i+1 < len(all); i += 2 {
		if i > 0 {
			b.WriteByte(',')
		}
		fmt.Fprintf(&b, "%s=%q", all[i], all[i+1])
	}
	b.WriteByte('}')
	return b.String()
}

// WritePrometheus renders every family in the Prometheus text
// exposition format (version 0.0.4), families and series in sorted
// order so the output is deterministic.
func (r *Registry) WritePrometheus(w io.Writer) {
	if r == nil {
		return
	}
	r.mu.Lock()
	names := make([]string, 0, len(r.families))
	for n := range r.families {
		names = append(names, n)
	}
	sort.Strings(names)
	type row struct {
		fam *family
		ser []*series
	}
	rows := make([]row, 0, len(names))
	for _, n := range names {
		f := r.families[n]
		keys := make([]string, 0, len(f.series))
		for k := range f.series {
			keys = append(keys, k)
		}
		sort.Strings(keys)
		ss := make([]*series, len(keys))
		for i, k := range keys {
			ss[i] = f.series[k]
		}
		rows = append(rows, row{f, ss})
	}
	r.mu.Unlock()

	for _, rw := range rows {
		f := rw.fam
		if f.help != "" {
			fmt.Fprintf(w, "# HELP %s %s\n", f.name, f.help)
		}
		fmt.Fprintf(w, "# TYPE %s %s\n", f.name, f.typ)
		for _, s := range rw.ser {
			switch {
			case s.c != nil:
				fmt.Fprintf(w, "%s%s %d\n", f.name, labelString(s.labels), s.c.Value())
			case s.gf != nil:
				fmt.Fprintf(w, "%s%s %g\n", f.name, labelString(s.labels), s.gf())
			case s.g != nil:
				fmt.Fprintf(w, "%s%s %d\n", f.name, labelString(s.labels), s.g.Value())
			case s.h != nil:
				writeHistogram(w, f.name, s.labels, s.h.Snapshot())
			}
		}
	}
}

// writeHistogram renders one histogram series: cumulative _bucket rows
// with le bounds in seconds, then _sum (seconds) and _count.
func writeHistogram(w io.Writer, name string, labels []string, s HistogramSnapshot) {
	var cum uint64
	for i, c := range s.Buckets {
		cum += c
		le := "+Inf"
		if i < len(s.Buckets)-1 {
			le = fmt.Sprintf("%g", float64(bucketUpper(i))/1e9)
		}
		fmt.Fprintf(w, "%s_bucket%s %d\n", name, labelString(labels, "le", le), cum)
	}
	fmt.Fprintf(w, "%s_sum%s %g\n", name, labelString(labels), float64(s.Sum)/1e9)
	fmt.Fprintf(w, "%s_count%s %d\n", name, labelString(labels), s.Count)
}
