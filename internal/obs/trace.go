package obs

import (
	"context"
	"sync/atomic"
	"time"
)

// Stage is one timed phase of a span — a flush's WAL append, its
// fsync, its Engine.Apply, and so on.
type Stage struct {
	Name string        `json:"name"`
	Dur  time.Duration `json:"duration_ns"`
}

// SpanData is one completed operation as kept in the trace ring and
// served by /tracez.
type SpanData struct {
	Graph  string        `json:"graph,omitempty"`
	Op     string        `json:"op"`
	Start  time.Time     `json:"start"`
	Dur    time.Duration `json:"duration_ns"`
	Err    string        `json:"error,omitempty"`
	Stages []Stage       `json:"stages,omitempty"`
}

// DefaultTraceRing is the span ring size a fresh Observer uses.
const DefaultTraceRing = 256

// Tracer collects completed spans into a fixed-size lock-free ring:
// writers claim a slot with one fetch-add and store a pointer, so
// tracing never serializes the operations it observes; the ring simply
// retains the most recent spans. A nil *Tracer produces nil (no-op)
// spans.
type Tracer struct {
	ring   []atomic.Pointer[SpanData]
	pos    atomic.Uint64
	slowNS atomic.Int64
	onSlow func(*SpanData)
}

// NewTracer returns a tracer retaining the size most recent spans.
// onSlow, when non-nil, is invoked synchronously for every span whose
// duration meets the SetSlowOp threshold.
func NewTracer(size int, onSlow func(*SpanData)) *Tracer {
	if size <= 0 {
		size = DefaultTraceRing
	}
	return &Tracer{ring: make([]atomic.Pointer[SpanData], size), onSlow: onSlow}
}

// SetSlowOp sets the slow-operation threshold; 0 disables the hook.
func (t *Tracer) SetSlowOp(d time.Duration) {
	if t != nil {
		t.slowNS.Store(int64(d))
	}
}

// Start begins a span for op on graph (graph may be empty for
// process-wide operations). Returns nil — a no-op span — on a nil
// tracer. A span is owned by one goroutine; it is not safe for
// concurrent use.
func (t *Tracer) Start(graph, op string) *Span {
	if t == nil {
		return nil
	}
	now := time.Now()
	return &Span{t: t, d: SpanData{Graph: graph, Op: op, Start: now}, mark: now}
}

// Recent returns up to max of the newest completed spans, newest
// first. A filter of nil keeps every span.
func (t *Tracer) Recent(max int, keep func(*SpanData) bool) []*SpanData {
	if t == nil || max <= 0 {
		return nil
	}
	if max > len(t.ring) {
		max = len(t.ring)
	}
	out := make([]*SpanData, 0, max)
	pos := t.pos.Load()
	for i := uint64(0); i < uint64(len(t.ring)) && len(out) < max; i++ {
		idx := (pos - 1 - i + uint64(len(t.ring))) % uint64(len(t.ring))
		sd := t.ring[idx].Load()
		if sd == nil {
			continue
		}
		if keep == nil || keep(sd) {
			out = append(out, sd)
		}
	}
	return out
}

// Span is one in-flight operation. All methods are no-ops on nil.
type Span struct {
	t    *Tracer
	d    SpanData
	mark time.Time
}

// Stage closes the current phase under name: its duration is the time
// since the previous Stage call (or the span's start) and the phase
// clock resets.
func (s *Span) Stage(name string) {
	if s == nil {
		return
	}
	now := time.Now()
	s.d.Stages = append(s.d.Stages, Stage{Name: name, Dur: now.Sub(s.mark)})
	s.mark = now
}

// StageDur records a phase with an explicitly measured duration,
// without touching the phase clock — for phases timed elsewhere (a
// request's queue wait measured from its enqueue timestamp).
func (s *Span) StageDur(name string, d time.Duration) {
	if s == nil {
		return
	}
	s.d.Stages = append(s.d.Stages, Stage{Name: name, Dur: d})
}

// Fail records the error the operation ended with.
func (s *Span) Fail(err error) {
	if s == nil || err == nil {
		return
	}
	s.d.Err = err.Error()
}

// End completes the span: computes its duration, publishes it into the
// ring, and fires the slow-op hook when the threshold is met.
func (s *Span) End() {
	if s == nil {
		return
	}
	s.d.Dur = time.Since(s.d.Start)
	t := s.t
	sd := &s.d
	idx := (t.pos.Add(1) - 1) % uint64(len(t.ring))
	t.ring[idx].Store(sd)
	if slow := t.slowNS.Load(); slow > 0 && int64(s.d.Dur) >= slow && t.onSlow != nil {
		t.onSlow(sd)
	}
}

// ctxKey keys the context values this package propagates.
type ctxKey int

const (
	spanKey ctxKey = iota
	observerKey
)

// ContextWithSpan attaches a span to ctx.
func ContextWithSpan(ctx context.Context, s *Span) context.Context {
	return context.WithValue(ctx, spanKey, s)
}

// SpanFrom returns the span attached to ctx, or nil.
func SpanFrom(ctx context.Context) *Span {
	s, _ := ctx.Value(spanKey).(*Span)
	return s
}

// ContextWithObserver attaches an observer to ctx — the handoff into
// layers with no explicit wiring (the chase reads it back with
// FromContext).
func ContextWithObserver(ctx context.Context, o *Observer) context.Context {
	if o == nil {
		return ctx
	}
	return context.WithValue(ctx, observerKey, o)
}

// FromContext returns the observer attached to ctx, or nil.
func FromContext(ctx context.Context) *Observer {
	o, _ := ctx.Value(observerKey).(*Observer)
	return o
}
