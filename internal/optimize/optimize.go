// Package optimize rewrites graph pattern queries using a set of GEDs,
// realizing the query-optimization application the paper lists for the
// chase (Section 4.1: "optimize graph pattern queries Q with Σ when G
// represents Q") and motivates in the introduction for billion-node
// social graphs.
//
// Given a query — a pattern Q[x̄] with an optional selection X — and a
// set Σ of GEDs known to hold on the data, chase(G_Q, Eq_X, Σ) yields
// equalities that every match in every graph satisfying Σ must obey
// (Theorem 4). Those equalities justify three rewrites:
//
//   - variables identified by the chase are merged, shrinking the
//     pattern (fewer joins for the matcher);
//   - attribute constants deduced by the chase become pushed-down
//     selections (index lookups instead of post-filters);
//   - an inconsistent chase proves the query returns no results on any
//     consistent database, so it can be answered without touching data.
//
// The rewrite is equivalence-preserving on graphs satisfying Σ, which
// the tests check by comparing match sets on random Σ-satisfying hosts.
package optimize

import (
	"context"
	"sort"

	"gedlib/internal/chase"
	"gedlib/internal/ged"
	"gedlib/internal/graph"
	"gedlib/internal/pattern"
)

// Query is a pattern query with an optional conjunctive selection.
type Query struct {
	// Pattern is Q[x̄].
	Pattern *pattern.Pattern
	// X is the selection: literals every reported match must satisfy.
	X []ged.Literal
}

// Result is the optimized form of a query.
type Result struct {
	// Empty reports that the query has no answers on any graph
	// satisfying Σ (the chase of G_Q from Eq_X was inconsistent).
	Empty bool
	// Query is the rewritten query (nil when Empty).
	Query *Query
	// VarMap sends each original variable to its representative in the
	// rewritten pattern. Matches of the rewritten query pull back to
	// matches of the original through this map.
	VarMap map[pattern.Var]pattern.Var
	// InferredConsts are constant bindings x.A = c guaranteed by Σ for
	// every match — usable as index-backed selections. Variables are
	// representatives of the rewritten pattern.
	InferredConsts []ged.Literal
	// InferredAttrs are attributes guaranteed to exist on each variable
	// (from the chase's attribute generation), keyed by representative.
	InferredAttrs map[pattern.Var][]graph.Attr
	// MergedVars counts variables eliminated by the rewrite.
	MergedVars int
}

// Rewrite optimizes q under Σ.
func Rewrite(q *Query, sigma ged.Set) *Result {
	out, _ := RewriteCtx(context.Background(), q, sigma, 0)
	return out
}

// RewriteCtx is Rewrite with cooperative cancellation and an optional
// chase round bound (see chase.RunCtx). On cancellation or an exceeded
// bound the error is non-nil and the result is not meaningful.
func RewriteCtx(ctx context.Context, q *Query, sigma ged.Set, maxRounds int) (*Result, error) {
	gq, vm := q.Pattern.ToGraph()
	inv := make(map[graph.NodeID]pattern.Var, len(vm))
	for v, n := range vm {
		inv[n] = v
	}
	seeds := make([]chase.Seed, 0, len(q.X))
	for _, l := range q.X {
		seeds = append(seeds, chase.SeedOf(l, vm))
	}
	res, err := chase.RunCtx(ctx, gq, sigma, seeds, maxRounds)
	if err != nil {
		return nil, err
	}
	if !res.Consistent() {
		return &Result{Empty: true}, nil
	}
	eq := res.Eq

	// Representative variable per node class: the lexicographically
	// smallest member, for determinism.
	varMap := make(map[pattern.Var]pattern.Var, len(vm))
	repVar := make(map[graph.NodeID]pattern.Var)
	for _, v := range q.Pattern.Vars() {
		r := eq.NodeRoot(vm[v])
		if cur, ok := repVar[r]; !ok || v < cur {
			repVar[r] = v
		}
	}
	merged := 0
	for _, v := range q.Pattern.Vars() {
		rep := repVar[eq.NodeRoot(vm[v])]
		varMap[v] = rep
		if rep != v {
			merged++
		}
	}

	// Rewritten pattern: the quotient, with class-resolved labels
	// (a wildcard variable identified with a labeled one becomes
	// concrete — cheaper candidate sets for the matcher).
	np := pattern.New()
	for _, v := range q.Pattern.Vars() {
		if varMap[v] != v {
			continue
		}
		np.AddVar(v, eq.ClassLabel(vm[v]))
	}
	seenEdge := make(map[pattern.Edge]bool)
	for _, e := range q.Pattern.Edges() {
		ne := pattern.Edge{Src: varMap[e.Src], Label: e.Label, Dst: varMap[e.Dst]}
		if seenEdge[ne] {
			continue
		}
		seenEdge[ne] = true
		np.AddEdge(ne.Src, ne.Label, ne.Dst)
	}

	// Rewritten selection: substitute representatives, dropping
	// duplicates and literals the chase proved redundant (id literals
	// within one class are now tautological).
	var nx []ged.Literal
	seenLit := make(map[ged.Literal]bool)
	for _, l := range q.X {
		nl := substituteVars(l, varMap)
		if k, _ := nl.Kind(); k == ged.IDLiteral && nl.Left.Var == nl.Right.Var {
			continue
		}
		if !seenLit[nl] {
			seenLit[nl] = true
			nx = append(nx, nl)
		}
	}

	// Inferred facts per representative.
	out := &Result{
		Query:         &Query{Pattern: np, X: nx},
		VarMap:        varMap,
		InferredAttrs: make(map[pattern.Var][]graph.Attr),
		MergedVars:    merged,
	}
	reps := make([]pattern.Var, 0, len(repVar))
	for _, v := range repVar {
		reps = append(reps, v)
	}
	sort.Slice(reps, func(i, j int) bool { return reps[i] < reps[j] })
	for _, v := range reps {
		n := vm[v]
		attrs := eq.ClassAttrs(n)
		if len(attrs) > 0 {
			out.InferredAttrs[v] = attrs
		}
		for _, a := range attrs {
			if c, ok := eq.AttrConst(n, a); ok {
				out.InferredConsts = append(out.InferredConsts, ged.ConstLit(v, a, c))
			}
		}
	}
	return out, nil
}

func substituteVars(l ged.Literal, m map[pattern.Var]pattern.Var) ged.Literal {
	sub := func(o ged.Operand) ged.Operand {
		if o.Kind == ged.OperandConst {
			return o
		}
		o.Var = m[o.Var]
		return o
	}
	return ged.Literal{Left: sub(l.Left), Right: sub(l.Right), Op: l.Op}
}

// Answers evaluates a query on a graph: the matches of its pattern that
// satisfy its selection.
func Answers(q *Query, g *graph.Graph) []pattern.Match {
	var out []pattern.Match
	pattern.ForEachMatch(q.Pattern, g, func(m pattern.Match) bool {
		for _, l := range q.X {
			if !holdsInGraph(g, l, m) {
				return true
			}
		}
		out = append(out, m.Clone())
		return true
	})
	return out
}

func holdsInGraph(g *graph.Graph, l ged.Literal, m pattern.Match) bool {
	k, ok := l.Kind()
	if !ok {
		panic("optimize: non-GED literal in a query selection")
	}
	switch k {
	case ged.ConstLiteral:
		v, ok := g.Attr(m[l.Left.Var], l.Left.Attr)
		return ok && v.Equal(l.Right.Const)
	case ged.VarLiteral:
		v1, ok1 := g.Attr(m[l.Left.Var], l.Left.Attr)
		v2, ok2 := g.Attr(m[l.Right.Var], l.Right.Attr)
		return ok1 && ok2 && v1.Equal(v2)
	default:
		return m[l.Left.Var] == m[l.Right.Var]
	}
}

// PullBack translates a match of the rewritten query into a match of the
// original query through the variable map.
func (r *Result) PullBack(m pattern.Match, original *pattern.Pattern) pattern.Match {
	out := make(pattern.Match, original.NumVars())
	for _, v := range original.Vars() {
		out[v] = m[r.VarMap[v]]
	}
	return out
}
