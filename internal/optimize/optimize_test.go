package optimize

import (
	"fmt"
	"math/rand"
	"sort"
	"testing"

	"gedlib/internal/ged"
	"gedlib/internal/graph"
	"gedlib/internal/pattern"
	"gedlib/internal/reason"
)

func TestRewriteMergesKeyEqualVars(t *testing.T) {
	// Σ: albums with equal title+release are the same node. A query
	// selecting two albums with equal title+release can then drop one
	// variable entirely.
	q := pattern.New()
	q.AddVar("a", "album")
	key, err := ged.NewGKey("k", q, "a", func(x, fx pattern.Var) []ged.Literal {
		return []ged.Literal{ged.VarLit(x, "title", fx, "title"), ged.VarLit(x, "release", fx, "release")}
	})
	if err != nil {
		t.Fatal(err)
	}
	sigma := ged.Set{key}

	qp := pattern.New()
	qp.AddVar("u", "album").AddVar("v", "album")
	query := &Query{Pattern: qp, X: []ged.Literal{
		ged.VarLit("u", "title", "v", "title"),
		ged.VarLit("u", "release", "v", "release"),
	}}
	r := Rewrite(query, sigma)
	if r.Empty {
		t.Fatal("query must not be empty")
	}
	if r.MergedVars != 1 {
		t.Fatalf("MergedVars = %d, want 1", r.MergedVars)
	}
	if r.Query.Pattern.NumVars() != 1 {
		t.Errorf("rewritten pattern has %d vars, want 1", r.Query.Pattern.NumVars())
	}
	if r.VarMap["u"] != r.VarMap["v"] {
		t.Error("u and v must share a representative")
	}
}

func TestRewriteInfersConstants(t *testing.T) {
	// Σ: every video game's creator is a programmer. A query for
	// creators of video games gains the pushed-down selection
	// x.type = "programmer".
	q := pattern.New()
	q.AddVar("x", "person").AddVar("y", "product")
	q.AddEdge("x", "create", "y")
	sigma := ged.Set{ged.New("phi1", q,
		[]ged.Literal{ged.ConstLit("y", "type", graph.String("video game"))},
		[]ged.Literal{ged.ConstLit("x", "type", graph.String("programmer"))})}

	qp := pattern.New()
	qp.AddVar("p", "person").AddVar("g", "product")
	qp.AddEdge("p", "create", "g")
	query := &Query{Pattern: qp, X: []ged.Literal{
		ged.ConstLit("g", "type", graph.String("video game")),
	}}
	r := Rewrite(query, sigma)
	if r.Empty {
		t.Fatal("query must not be empty")
	}
	found := false
	for _, l := range r.InferredConsts {
		if l.Left.Var == "p" && l.Left.Attr == "type" && l.Right.Const.Equal(graph.String("programmer")) {
			found = true
		}
	}
	if !found {
		t.Errorf("p.type = programmer not inferred: %v", r.InferredConsts)
	}
	if attrs := r.InferredAttrs["p"]; len(attrs) == 0 {
		t.Error("attribute existence not inferred for p")
	}
}

func TestRewriteDetectsEmptyQuery(t *testing.T) {
	// Σ forbids the queried pattern outright.
	q := pattern.New()
	q.AddVar("x", "person").AddVar("y", "person")
	q.AddEdge("x", "child", "y")
	q.AddEdge("x", "parent", "y")
	sigma := ged.Set{ged.New("phi4", q.Clone(), nil, ged.False("x"))}

	query := &Query{Pattern: q}
	r := Rewrite(query, sigma)
	if !r.Empty {
		t.Fatal("forbidden pattern must yield an empty query")
	}
}

func TestRewriteResolvesWildcardLabels(t *testing.T) {
	// A wildcard variable identified with a labeled one becomes
	// concrete, narrowing the matcher's candidate set.
	q := pattern.New()
	q.AddVar("x", graph.Wildcard).AddVar("y", "city")
	sigma := ged.Set{ged.New("same", q.Clone(),
		[]ged.Literal{ged.VarLit("x", "name", "y", "name")},
		[]ged.Literal{ged.IDLit("x", "y")})}
	query := &Query{Pattern: q, X: []ged.Literal{ged.VarLit("x", "name", "y", "name")}}
	r := Rewrite(query, sigma)
	if r.Empty || r.Query.Pattern.NumVars() != 1 {
		t.Fatal("vars must merge")
	}
	rep := r.Query.Pattern.Vars()[0]
	if r.Query.Pattern.Label(rep) != "city" {
		t.Errorf("merged label = %s, want city", r.Query.Pattern.Label(rep))
	}
}

// TestRewriteEquivalenceOnRandomHosts: on random graphs satisfying Σ,
// the original and rewritten queries have the same answers (through the
// variable map).
func TestRewriteEquivalenceOnRandomHosts(t *testing.T) {
	rng := rand.New(rand.NewSource(53))
	checked := 0
	for trial := 0; trial < 200 && checked < 40; trial++ {
		sigma := randomSigma(rng)
		query := randomQuery(rng)
		r := Rewrite(query, sigma)

		g := randomGraph(rng)
		if !reason.Satisfies(g, sigma) {
			continue
		}
		checked++
		orig := answerSet(query, g, nil, query.Pattern)
		if r.Empty {
			if len(orig) != 0 {
				t.Fatalf("trial %d: empty-rewrite but %d answers exist\nΣ=%v\nQ=%v",
					trial, len(orig), sigma, query.Pattern)
			}
			continue
		}
		rewritten := answerSet(r.Query, g, r, query.Pattern)
		if !sameSet(orig, rewritten) {
			t.Fatalf("trial %d: answer sets differ\nΣ=%v\nQ=%v X=%v\nQ'=%v X'=%v\norig=%v\nrewr=%v",
				trial, sigma, query.Pattern, query.X, r.Query.Pattern, r.Query.X, orig, rewritten)
		}
	}
	if checked < 10 {
		t.Logf("only %d hosts satisfied Σ; coverage low", checked)
	}
}

// answerSet returns canonical strings of answers over the ORIGINAL
// variables; when r is non-nil the matches are pulled back first.
func answerSet(q *Query, g *graph.Graph, r *Result, original *pattern.Pattern) []string {
	var out []string
	for _, m := range Answers(q, g) {
		if r != nil {
			m = r.PullBack(m, original)
		}
		vars := original.Vars()
		s := ""
		for _, v := range vars {
			s += fmt.Sprintf("%s=%d;", v, m[v])
		}
		out = append(out, s)
	}
	sort.Strings(out)
	return out
}

func sameSet(a, b []string) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

func randomSigma(rng *rand.Rand) ged.Set {
	labels := []graph.Label{"a", "b"}
	attrs := []graph.Attr{"p", "q"}
	var sigma ged.Set
	for i := 0; i < 1+rng.Intn(2); i++ {
		q := pattern.New()
		q.AddVar("x", labels[rng.Intn(len(labels))])
		q.AddVar("y", labels[rng.Intn(len(labels))])
		if rng.Intn(2) == 0 {
			q.AddEdge("x", "e", "y")
		}
		var xs, ys []ged.Literal
		switch rng.Intn(3) {
		case 0:
			xs = append(xs, ged.VarLit("x", attrs[0], "y", attrs[0]))
		case 1:
			xs = append(xs, ged.ConstLit("x", attrs[rng.Intn(2)], graph.Int(rng.Intn(2))))
		}
		switch rng.Intn(3) {
		case 0:
			ys = append(ys, ged.IDLit("x", "y"))
		case 1:
			ys = append(ys, ged.ConstLit("y", attrs[rng.Intn(2)], graph.Int(rng.Intn(2))))
		default:
			ys = append(ys, ged.VarLit("x", attrs[1], "y", attrs[1]))
		}
		sigma = append(sigma, ged.New(fmt.Sprintf("r%d", i), q, xs, ys))
	}
	return sigma
}

func randomQuery(rng *rand.Rand) *Query {
	labels := []graph.Label{"a", "b", graph.Wildcard}
	attrs := []graph.Attr{"p", "q"}
	q := pattern.New()
	n := 2 + rng.Intn(2)
	vars := make([]pattern.Var, n)
	for i := range vars {
		vars[i] = pattern.Var(fmt.Sprintf("v%d", i))
		q.AddVar(vars[i], labels[rng.Intn(len(labels))])
	}
	for i := 1; i < n; i++ {
		if rng.Intn(2) == 0 {
			q.AddEdge(vars[rng.Intn(i)], "e", vars[i])
		}
	}
	var xs []ged.Literal
	if rng.Intn(2) == 0 {
		xs = append(xs, ged.VarLit(vars[0], attrs[0], vars[n-1], attrs[0]))
	}
	if rng.Intn(3) == 0 {
		xs = append(xs, ged.ConstLit(vars[0], attrs[rng.Intn(2)], graph.Int(rng.Intn(2))))
	}
	return &Query{Pattern: q, X: xs}
}

func randomGraph(rng *rand.Rand) *graph.Graph {
	labels := []graph.Label{"a", "b"}
	attrs := []graph.Attr{"p", "q"}
	g := graph.New()
	n := 2 + rng.Intn(4)
	for i := 0; i < n; i++ {
		id := g.AddNode(labels[rng.Intn(len(labels))])
		for _, a := range attrs {
			if rng.Intn(2) == 0 {
				g.SetAttr(id, a, graph.Int(rng.Intn(2)))
			}
		}
	}
	for i := 0; i < 2*n; i++ {
		if rng.Intn(2) == 0 {
			g.AddEdge(graph.NodeID(rng.Intn(n)), "e", graph.NodeID(rng.Intn(n)))
		}
	}
	return g
}
