package pattern_test

// Differential tests for the two matcher hosts: matching over a frozen
// graph.Snapshot must return exactly the same match sets as matching
// over the mutable graph.Graph, across generated workloads
// (testing/quick drives the seeds). An external test package is used so
// the workload generators of internal/gen can be imported without a
// cycle.

import (
	"fmt"
	"sort"
	"testing"
	"testing/quick"

	"gedlib/internal/gen"
	"gedlib/internal/graph"
	"gedlib/internal/pattern"
)

// canonMatches renders a match list canonically for set comparison.
func canonMatches(p *pattern.Pattern, ms []pattern.Match) []string {
	out := make([]string, 0, len(ms))
	for _, m := range ms {
		s := ""
		for _, x := range p.Vars() {
			s += fmt.Sprintf("%s=%d;", x, m[x])
		}
		out = append(out, s)
	}
	sort.Strings(out)
	return out
}

func sameCanon(a, b []string) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

var (
	diffLabels = []graph.Label{"a", "b", "c"}
	diffAttrs  = []graph.Attr{"p", "q"}
)

// workloadFor derives a deterministic random host graph and rule set
// from one seed.
func workloadFor(seed int64) (*graph.Graph, []*pattern.Pattern) {
	g := gen.RandomPropertyGraph(seed, 30, 2.5, diffLabels, diffAttrs, 3)
	sigma := gen.RandomGEDSet(seed+1, 6, 4, diffLabels, diffAttrs, 3)
	ps := make([]*pattern.Pattern, 0, len(sigma)+2)
	for _, d := range sigma {
		ps = append(ps, d.Pattern)
	}
	// A wildcard-heavy pattern and the empty pattern ride along: both
	// exercise host paths the GED generator rarely produces.
	wild := pattern.New()
	wild.AddVar("x", graph.Wildcard)
	wild.AddEdge("x", graph.Wildcard, "y")
	ps = append(ps, wild, pattern.New())
	return g, ps
}

// TestSnapshotMatchingDifferential: for quick-generated seeds, every
// pattern finds exactly the same match set on both hosts.
func TestSnapshotMatchingDifferential(t *testing.T) {
	f := func(seed int64) bool {
		g, ps := workloadFor(seed % 1_000_000)
		snap := g.Freeze()
		for _, p := range ps {
			onGraph := canonMatches(p, pattern.FindMatches(p, g, 0))
			onSnap := canonMatches(p, pattern.FindMatches(p, snap, 0))
			if !sameCanon(onGraph, onSnap) {
				t.Logf("seed %d: pattern %s: %d matches on graph, %d on snapshot",
					seed, p, len(onGraph), len(onSnap))
				return false
			}
			if pattern.HasMatch(p, g) != pattern.HasMatch(p, snap) {
				return false
			}
			if pattern.CountMatches(p, g) != pattern.CountMatches(p, snap) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Fatal(err)
	}
}

// TestSnapshotPivotDifferential: the pivot-block primitive partitions
// identically over both hosts.
func TestSnapshotPivotDifferential(t *testing.T) {
	f := func(seed int64) bool {
		g, ps := workloadFor(seed % 1_000_000)
		snap := g.Freeze()
		for _, p := range ps {
			if p.NumVars() == 0 {
				continue
			}
			pivot := p.Vars()[0]
			cands := g.CandidateNodes(p.Label(pivot))
			var onGraph, onSnap []pattern.Match
			pattern.Compile(p, g).ForEachPivot(pivot, cands, func(m pattern.Match) bool {
				onGraph = append(onGraph, m.Clone())
				return true
			})
			pattern.Compile(p, snap).ForEachPivot(pivot, cands, func(m pattern.Match) bool {
				onSnap = append(onSnap, m.Clone())
				return true
			})
			if !sameCanon(canonMatches(p, onGraph), canonMatches(p, onSnap)) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 15}); err != nil {
		t.Fatal(err)
	}
}

// TestEmptyPatternYieldContract: the empty pattern delivers its single
// empty match through the regular search, so the "return false to stop"
// contract holds and pre-bindings (which necessarily name unknown
// variables) yield nothing.
func TestEmptyPatternYieldContract(t *testing.T) {
	g := graph.New()
	g.AddNode("a")
	for _, host := range []pattern.Host{g, g.Freeze()} {
		pl := pattern.Compile(pattern.New(), host)
		calls := 0
		pl.ForEachBound(nil, func(m pattern.Match) bool {
			calls++
			if len(m) != 0 {
				t.Errorf("empty pattern yielded non-empty match %v", m)
			}
			return false // must be honored: no further yields
		})
		if calls != 1 {
			t.Errorf("empty pattern yielded %d times, want 1", calls)
		}
		// A pre-binding on the empty pattern names an unknown variable
		// and must match nothing.
		pl.ForEachBound(pattern.Match{"zzz": 0}, func(pattern.Match) bool {
			t.Error("pre-bound unknown variable yielded a match on the empty pattern")
			return true
		})
	}
}

// BenchmarkMatcherHosts compares the two hosts on a mid-size random
// graph with a 3-variable path pattern — the matcher's inner loop in
// isolation.
func BenchmarkMatcherHosts(b *testing.B) {
	g := gen.RandomPropertyGraph(5, 2000, 4, diffLabels, diffAttrs, 4)
	p := pattern.New()
	p.AddVar("x", "a").AddVar("y", "b").AddVar("z", "c")
	p.AddEdge("x", "e", "y").AddEdge("y", "e", "z")
	b.Run("graph", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			pattern.CountMatches(p, g)
		}
	})
	snap := g.Freeze()
	b.Run("snapshot", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			pattern.CountMatches(p, snap)
		}
	})
}
