package pattern

import "gedlib/internal/graph"

// IntersectSortedForTest exposes the leapfrog intersection to the
// external differential-test package.
func IntersectSortedForTest(lists [][]graph.NodeID) []graph.NodeID {
	return intersectInto(nil, lists)
}
