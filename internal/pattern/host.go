package pattern

import "gedlib/internal/graph"

// Host is the read-only graph surface the matcher binds against. Both
// the mutable *graph.Graph and the frozen, interned *graph.Snapshot
// implement it, so every matching entry point (and everything layered
// on top: validation, the chase, discovery) runs unchanged over either
// representation. Freeze once and pass the snapshot wherever matching
// is repeated — the CSR-backed methods are allocation-free on the
// concrete-label hot path.
//
// Slices returned by Host methods are the host's own storage; callers
// must not mutate them. A Host used concurrently must itself be safe
// for concurrent reads (snapshots are; a Graph is only while nobody
// mutates it).
type Host interface {
	// NumNodes returns |V|.
	NumNodes() int
	// Label returns the label of node id.
	Label(id graph.NodeID) graph.Label
	// Attr returns the value of attribute a at node id, and whether the
	// node carries it.
	Attr(id graph.NodeID, a graph.Attr) (graph.Value, bool)
	// CandidateNodes returns the nodes a pattern node labeled pat may
	// map to under ⪯: every node for the wildcard, otherwise the nodes
	// carrying exactly pat.
	CandidateNodes(pat graph.Label) []graph.NodeID
	// HasEdge reports whether the exact edge (src, label, dst) exists.
	HasEdge(src graph.NodeID, label graph.Label, dst graph.NodeID) bool
	// HasAnyEdge reports whether some edge src -> dst exists under any
	// label — the check for wildcard-labeled pattern edges.
	HasAnyEdge(src, dst graph.NodeID) bool
	// OutNeighbors returns the distinct targets of src's outgoing edges
	// whose label is matched by l under ⪯.
	OutNeighbors(src graph.NodeID, l graph.Label) []graph.NodeID
	// InNeighbors returns the distinct sources of dst's incoming edges
	// whose label is matched by l under ⪯.
	InNeighbors(dst graph.NodeID, l graph.Label) []graph.NodeID
}

var (
	_ Host = (*graph.Graph)(nil)
	_ Host = (*graph.Snapshot)(nil)
)

// degreeStats is optionally implemented by hosts that precompute
// per-label degree statistics (graph.Snapshot does); planOrder and
// pivot selection use it to break selectivity ties toward
// better-connected seeds.
type degreeStats interface {
	LabelAvgDegree(l graph.Label) float64
}
