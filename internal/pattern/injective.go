package pattern

import "gedlib/internal/graph"

// Injective (subgraph-isomorphism style) matching, provided as the
// ablation counterpart of the package's homomorphism semantics.
//
// The paper's predecessors ([19, 23]) interpreted patterns via subgraph
// isomorphism; Section 3 argues this breaks the uniform treatment of
// GFDs and keys: under isomorphism two variables can never map to one
// node, so a GKey like ψ₃ — whose antecedent identifies a pair of
// albums by id — can never find a violating match, and a key stating
// "all UoE nodes are one node" has no sensible model. The tests and
// benchmarks use ForEachMatchInjective to demonstrate exactly that
// divergence; all analyses in this repository use homomorphism.

// ForEachMatchInjective enumerates the injective matches of p in h:
// label-compatible homomorphisms whose variable assignments are pairwise
// distinct.
func ForEachMatchInjective(p *Pattern, h Host, yield func(Match) bool) {
	used := make(map[graph.NodeID]Var, p.NumVars())
	ForEachMatch(p, h, func(m Match) bool {
		clear(used)
		for v, n := range m {
			if w, ok := used[n]; ok && w != v {
				return true // not injective; skip
			}
			used[n] = v
		}
		return yield(m)
	})
}

// CountMatchesInjective returns the number of injective matches.
func CountMatchesInjective(p *Pattern, h Host) int {
	n := 0
	ForEachMatchInjective(p, h, func(Match) bool {
		n++
		return true
	})
	return n
}
