package pattern

import "gedlib/internal/graph"

// Multi-way sorted-set intersection — the extension step of worst-case-
// optimal join processing. The CSR snapshot stores every per-label
// adjacency run and every (attr, value) posting as an ascending
// []graph.NodeID, so "candidates of a variable with k bound pattern
// neighbors (and pushed-down constant literals)" is exactly the
// intersection of k sorted lists, computed here by a leapfrog walk with
// galloping seeks instead of scanning one list and probing the rest.

// gallopSearch returns the smallest index i in xs with xs[i] >= target,
// starting from a hint position: exponential probes double the step
// until the target is bracketed, then a binary search finishes inside
// the bracket. For the near-sorted access pattern of a leapfrog walk
// this is O(log gap) per seek rather than O(log n).
func gallopSearch(xs []graph.NodeID, from int, target graph.NodeID) int {
	n := len(xs)
	if from >= n || xs[from] >= target {
		return from
	}
	// Invariant: xs[lo] < target. Probe lo+1, lo+2, lo+4, ...
	lo, step := from, 1
	for {
		hi := lo + step
		if hi >= n {
			hi = n
			lo++
			// Binary search in (lo, hi).
			for lo < hi {
				mid := int(uint(lo+hi) >> 1)
				if xs[mid] < target {
					lo = mid + 1
				} else {
					hi = mid
				}
			}
			return lo
		}
		if xs[hi] >= target {
			lo++
			for lo < hi {
				mid := int(uint(lo+hi) >> 1)
				if xs[mid] < target {
					lo = mid + 1
				} else {
					hi = mid
				}
			}
			return lo
		}
		lo = hi
		step <<= 1
	}
}

// intersectInto appends the intersection of the ascending lists to dst
// and returns it. The walk leapfrogs: the smallest list drives, every
// other list gallops to the current candidate, and any overshoot
// becomes the next candidate — so the cost is proportional to the
// smallest list times the log of the skip distances, not to the sum of
// list lengths. lists must each be sorted ascending and duplicate-free;
// the result is ascending. lists is reordered in place (smallest
// first).
func intersectInto(dst []graph.NodeID, lists [][]graph.NodeID) []graph.NodeID {
	switch len(lists) {
	case 0:
		return dst
	case 1:
		return append(dst, lists[0]...)
	}
	// Smallest list first: it drives the walk.
	min := 0
	for i := 1; i < len(lists); i++ {
		if len(lists[i]) < len(lists[min]) {
			min = i
		}
	}
	lists[0], lists[min] = lists[min], lists[0]
	if len(lists[0]) == 0 {
		return dst
	}
	if len(lists) == 2 {
		return intersect2Into(dst, lists[0], lists[1])
	}
	// cursors[i] is the frontier of lists[i].
	var cursorBuf [8]int
	cursors := cursorBuf[:0]
	for range lists {
		cursors = append(cursors, 0)
	}
outer:
	for {
		if cursors[0] >= len(lists[0]) {
			return dst
		}
		cand := lists[0][cursors[0]]
		for i := 1; i < len(lists); i++ {
			j := gallopSearch(lists[i], cursors[i], cand)
			cursors[i] = j
			if j >= len(lists[i]) {
				return dst
			}
			if lists[i][j] != cand {
				// Overshoot: restart the round from the new, larger
				// candidate.
				cursors[0] = gallopSearch(lists[0], cursors[0], lists[i][j])
				continue outer
			}
		}
		dst = append(dst, cand)
		cursors[0]++
	}
}

// intersect2Into is the two-list case of intersectInto with the driver
// already known to be no longer than probe.
func intersect2Into(dst, drive, probe []graph.NodeID) []graph.NodeID {
	j := 0
	for _, cand := range drive {
		j = gallopSearch(probe, j, cand)
		if j >= len(probe) {
			return dst
		}
		if probe[j] == cand {
			dst = append(dst, cand)
			j++
		}
	}
	return dst
}
