package pattern

import (
	"sort"
	"sync"

	"gedlib/internal/graph"
)

// Match is a homomorphism h from a pattern to a graph, i.e. the vector
// h(x̄) of Section 2. Distinct variables may map to the same node.
//
// Match is the public boundary of the matcher; internally the compiled
// plan binds variables through a dense []graph.NodeID keyed by variable
// index and materializes the map only when a complete match is yielded.
type Match map[Var]graph.NodeID

// Clone returns a copy of m.
func (m Match) Clone() Match {
	c := make(Match, len(m))
	for k, v := range m {
		c[k] = v
	}
	return c
}

// unbound marks an unassigned slot of the dense binding vector. Real
// node ids are non-negative.
const unbound = graph.NodeID(-1)

// labelAbsent and labelWild are the sentinel resolved-label symbols of
// snapshot-compiled plans: absent means the label occurs nowhere in the
// snapshot (the edge or variable can never match), wild is the
// wildcard.
const (
	labelAbsent int32 = -2
	labelWild   int32 = -1
)

// cedge is a compiled pattern edge: endpoints resolved to variable
// indexes so the search never hashes a Var, and — on snapshot hosts —
// the edge label resolved to its interned symbol so the search never
// hashes a label either.
type cedge struct {
	src, dst int
	label    graph.Label
	lid      int32 // resolved symbol; labelWild / labelAbsent sentinels
}

// matcher holds the scratch state of one backtracking search. Matchers
// are pooled per Plan: the small per-update searches of incremental
// validation run thousands of times per second, and re-allocating the
// binding vector, dirty set, output map and candidate buffers on every
// enumeration dominates their cost.
type matcher struct {
	pl       *Plan
	h        Host
	snap     *graph.Snapshot           // non-nil fast path, mirrors pl.snap
	bind     []graph.NodeID            // dense partial assignment, unbound = -1
	last     []graph.NodeID            // binding each out entry currently holds
	out      Match                     // reused map handed to yield
	order    []int                     // variable indexes still to bind, in order
	orderBuf []int                     // pooled backing for filtered orders
	wild     [][]graph.NodeID          // per-variable wildcard-neighbor dedup buffers
	yield    func(Match) bool          // returns false to stop enumeration
	dense    func([]graph.NodeID) bool // dense-vector alternative to yield
	filter   func(graph.NodeID) bool   // optional host-node admission filter
	stop     func() bool               // polled inside the search; true aborts
	tick     uint32                    // amortizes stop polling
	done     bool
}

// stopEvery is how many search steps pass between stop polls: frequent
// enough that a cancelled context aborts even a match-free exponential
// search promptly, rare enough to stay off the hot path.
const stopEvery = 1024

// Plan is a compiled matching plan for one (pattern, host) pair: the
// variable order, index-resolved adjacency and binding layout are
// computed once and shared across any number of (concurrent)
// enumerations. Plans are immutable after Compile and safe for
// concurrent use.
type Plan struct {
	p      *Pattern
	h      Host
	snap   *graph.Snapshot // non-nil when h is a snapshot: interned fast path
	vars   []Var           // variable index -> variable
	varIdx map[Var]int
	labels []graph.Label // variable index -> label
	varLid []int32       // variable index -> resolved label symbol (snapshot hosts)
	adj    [][]cedge     // variable index -> incident pattern edges
	order  []int         // variable binding order, as indexes

	// pool recycles matcher scratch across enumerations; see matcher.
	// It is a pointer so Rebind-derived plans share one pool: the
	// scratch is sized by the pattern (identical across a lineage of
	// rebinds), and sharing keeps the pool warm on the per-delta path
	// where validators rebase for every update.
	pool *sync.Pool
}

// Compile prepares a matching plan for p over h — a mutable graph or a
// frozen snapshot.
func Compile(p *Pattern, h Host) *Plan {
	n := len(p.vars)
	pl := &Plan{
		p:      p,
		h:      h,
		vars:   p.vars,
		varIdx: make(map[Var]int, n),
		labels: make([]graph.Label, n),
		adj:    make([][]cedge, n),
		pool:   new(sync.Pool),
	}
	pl.snap, _ = h.(*graph.Snapshot)
	resolve := func(l graph.Label) int32 {
		if l == graph.Wildcard {
			return labelWild
		}
		if lid, ok := pl.snap.LabelID(l); ok {
			return lid
		}
		return labelAbsent
	}
	pl.varLid = make([]int32, n)
	for i, x := range p.vars {
		pl.varIdx[x] = i
		pl.labels[i] = p.labels[x]
		if pl.snap != nil {
			pl.varLid[i] = resolve(p.labels[x])
		}
	}
	for _, e := range p.edges {
		ce := cedge{src: pl.varIdx[e.Src], dst: pl.varIdx[e.Dst], label: e.Label}
		if pl.snap != nil {
			ce.lid = resolve(e.Label)
		}
		pl.adj[ce.src] = append(pl.adj[ce.src], ce)
		if ce.dst != ce.src {
			pl.adj[ce.dst] = append(pl.adj[ce.dst], ce)
		}
	}
	pl.order = planOrder(pl, h)
	return pl
}

// Rebind returns a plan equivalent to pl but bound to snap, an
// immutable snapshot of the same lineage as the plan's host (i.e. one
// produced from it by graph.Snapshot.Apply, in any number of steps).
// Within a lineage symbol ids are append-only, so the compiled variable
// order and adjacency carry over unchanged; only label symbols that
// were absent at Compile time are re-resolved — a delta may have
// interned them since. The cost is proportional to the pattern, never
// the host, which is what lets validators follow a delta-maintained
// snapshot without recompiling.
//
// Rebinding onto an unrelated snapshot corrupts label resolution
// silently; callers are expected to check Lineage, as the Engine's plan
// cache does.
func (pl *Plan) Rebind(snap *graph.Snapshot) *Plan {
	if snap == pl.snap {
		return pl
	}
	np := &Plan{
		p:      pl.p,
		h:      snap,
		snap:   snap,
		vars:   pl.vars,
		varIdx: pl.varIdx,
		labels: pl.labels,
		varLid: pl.varLid,
		adj:    pl.adj,
		order:  pl.order,
		pool:   pl.pool, // same pattern, same scratch shape: stay warm
	}
	resolve := func(l graph.Label) int32 {
		if l == graph.Wildcard {
			return labelWild
		}
		if lid, ok := snap.LabelID(l); ok {
			return lid
		}
		return labelAbsent
	}
	for i, lid := range pl.varLid {
		if lid != labelAbsent {
			continue
		}
		if resolve(pl.labels[i]) == labelAbsent {
			continue
		}
		// A previously-absent symbol exists now: re-resolve the whole
		// (tiny) table once.
		nv := make([]int32, len(pl.varLid))
		for j := range nv {
			nv[j] = resolve(pl.labels[j])
		}
		np.varLid = nv
		break
	}
	for x := range pl.adj {
		for _, e := range pl.adj[x] {
			if e.lid != labelAbsent || resolve(e.label) == labelAbsent {
				continue
			}
			// Same for edge labels: clone the adjacency with fresh
			// resolutions.
			nadj := make([][]cedge, len(pl.adj))
			for y := range pl.adj {
				es := make([]cedge, len(pl.adj[y]))
				copy(es, pl.adj[y])
				for k := range es {
					es[k].lid = resolve(es[k].label)
				}
				nadj[y] = es
			}
			np.adj = nadj
			return np
		}
	}
	return np
}

// newMatcher checks the plan's pool for recycled per-enumeration state —
// the dense binding vector, dirty set, output map and candidate
// buffers — and allocates it only on a cold pool. Callers must hand the
// matcher back with putMatcher when the enumeration ends.
func (pl *Plan) newMatcher(stop func() bool, yield func(Match) bool) *matcher {
	m, ok := pl.pool.Get().(*matcher)
	if !ok {
		m = &matcher{
			bind: make([]graph.NodeID, len(pl.vars)),
			last: make([]graph.NodeID, len(pl.vars)),
			out:  make(Match, len(pl.vars)),
		}
	}
	// The pool is shared across same-lineage rebinds, so a recycled
	// matcher may carry a predecessor plan; re-point it every time.
	m.pl, m.h, m.snap = pl, pl.h, pl.snap
	m.yield = yield
	m.stop = stop
	m.tick = 0
	m.done = false
	// The out map may carry entries from a previous run; they are all
	// overwritten before the next yield because every last slot resets
	// to unbound, and a yield only ever happens with every variable
	// bound.
	for i := range m.bind {
		m.bind[i] = unbound
		m.last[i] = unbound
	}
	return m
}

// putMatcher returns scratch to the plan's pool, dropping the caller's
// closures — and the plan/host/snapshot references, which would
// otherwise pin a superseded snapshot's COW pages across rebinds — so
// the pool never pins them. newMatcher re-points them on every Get.
func (pl *Plan) putMatcher(m *matcher) {
	m.yield = nil
	m.dense = nil
	m.filter = nil
	m.stop = nil
	m.pl = nil
	m.h = nil
	m.snap = nil
	pl.pool.Put(m)
}

// wildBuf returns variable x's recycled wildcard-neighbor buffer,
// emptied. Buffers are per variable because candidate slices stay live
// while deeper search levels compute theirs.
func (m *matcher) wildBuf(x int) []graph.NodeID {
	if m.wild == nil {
		m.wild = make([][]graph.NodeID, len(m.pl.vars))
	}
	return m.wild[x][:0]
}

// ForEachBound enumerates matches extending the partial assignment pre
// (which may be nil). Pre-bindings violating labels or edges — or
// naming variables the pattern does not have — yield no matches. The
// Match passed to yield is reused; clone it to retain it.
func (pl *Plan) ForEachBound(pre Match, yield func(Match) bool) {
	pl.ForEachBoundCancel(pre, nil, yield)
}

// ForEachBoundCancel is ForEachBound with a cooperative abort hook:
// stop (when non-nil) is polled periodically *inside* the backtracking
// search, so even an exponential exploration that never completes a
// match can be cut short. Enumeration ends when stop returns true.
//
// The empty pattern has exactly one (empty) match, delivered through
// the same search path as every other pattern, so yield's "return false
// to stop" verdict and pre-binding rejection apply uniformly.
func (pl *Plan) ForEachBoundCancel(pre Match, stop func() bool, yield func(Match) bool) {
	m := pl.newMatcher(stop, yield)
	defer pl.putMatcher(m)
	for v, n := range pre {
		i, ok := pl.varIdx[v]
		if !ok {
			return
		}
		if !m.consistent(i, n) {
			return
		}
		m.bind[i] = n
	}
	if len(pre) == 0 {
		m.order = pl.order
	} else {
		order := m.orderBuf[:0]
		for _, i := range pl.order {
			if m.bind[i] == unbound {
				order = append(order, i)
			}
		}
		m.orderBuf = order
		m.order = order
	}
	m.search(0)
}

// ForEachDenseCancel enumerates every match as its dense binding
// vector, indexed by the position of each variable in the pattern's
// Vars() order — no Match map is materialized. The vector is the
// matcher's own scratch: read it during the callback, copy it to
// retain it. stop is the cooperative abort hook of ForEachBoundCancel.
//
// This is the entry point for high-volume consumers (the chase's
// fixpoint loop) where the per-match map handling of the Match boundary
// dominates.
func (pl *Plan) ForEachDenseCancel(stop func() bool, yield func([]graph.NodeID) bool) {
	pl.ForEachDenseFiltered(stop, nil, yield)
}

// ForEachDenseFiltered is ForEachDenseCancel restricted to host nodes
// the filter admits: rejected nodes are pruned at binding time, so a
// search never descends below an inadmissible assignment. The chase
// uses it to make retired coercion carriers invisible to matching.
func (pl *Plan) ForEachDenseFiltered(stop func() bool, filter func(graph.NodeID) bool, yield func([]graph.NodeID) bool) {
	m := pl.newMatcher(stop, nil)
	m.dense = yield
	m.filter = filter
	defer pl.putMatcher(m)
	m.order = pl.order
	m.search(0)
}

// ForEachPivot enumerates matches with the pivot variable successively
// bound to each candidate, reusing one matcher across the whole block —
// the low-overhead primitive behind parallel validation. Candidates that
// violate the pivot's label or incident edges are skipped.
func (pl *Plan) ForEachPivot(pivot Var, cands []graph.NodeID, yield func(Match) bool) {
	pl.ForEachPivotCancel(pivot, cands, nil, yield)
}

// ForEachPivotCancel is ForEachPivot with the cooperative abort hook of
// ForEachBoundCancel.
func (pl *Plan) ForEachPivotCancel(pivot Var, cands []graph.NodeID, stop func() bool, yield func(Match) bool) {
	pi, ok := pl.varIdx[pivot]
	if !ok {
		return
	}
	m := pl.newMatcher(stop, yield)
	defer pl.putMatcher(m)
	order := m.orderBuf[:0]
	for _, i := range pl.order {
		if i != pi {
			order = append(order, i)
		}
	}
	m.orderBuf = order
	m.order = order
	for _, c := range cands {
		if !m.consistent(pi, c) {
			continue
		}
		m.bind[pi] = c
		m.search(0)
		m.bind[pi] = unbound
		if m.done {
			return
		}
	}
}

// ForEachMatch enumerates the matches of p in h, invoking yield for each.
// Enumeration stops early when yield returns false. The Match passed to
// yield is reused between invocations; clone it to retain it.
func ForEachMatch(p *Pattern, h Host, yield func(Match) bool) {
	Compile(p, h).ForEachBound(nil, yield)
}

// ForEachMatchCancel is ForEachMatch with the cooperative abort hook of
// ForEachBoundCancel.
func ForEachMatchCancel(p *Pattern, h Host, stop func() bool, yield func(Match) bool) {
	Compile(p, h).ForEachBoundCancel(nil, stop, yield)
}

// ForEachMatchBound enumerates the matches of p in h extending the
// partial assignment pre. For repeated enumeration over one host,
// Compile once and use Plan.ForEachBound.
func ForEachMatchBound(p *Pattern, h Host, pre Match, yield func(Match) bool) {
	Compile(p, h).ForEachBound(pre, yield)
}

// FindMatches returns up to limit matches of p in h; limit <= 0 means all.
func FindMatches(p *Pattern, h Host, limit int) []Match {
	var out []Match
	ForEachMatch(p, h, func(m Match) bool {
		out = append(out, m.Clone())
		return limit <= 0 || len(out) < limit
	})
	return out
}

// HasMatch reports whether p has at least one match in h.
func HasMatch(p *Pattern, h Host) bool {
	found := false
	ForEachMatch(p, h, func(Match) bool {
		found = true
		return false
	})
	return found
}

// CountMatches returns the number of matches of p in h.
func CountMatches(p *Pattern, h Host) int {
	n := 0
	ForEachMatch(p, h, func(Match) bool {
		n++
		return true
	})
	return n
}

// planOrder chooses a variable binding order: the variable with the
// fewest label candidates first, then greedily any variable connected to
// an already-ordered one (preferring small candidate sets), so that
// adjacency can prune candidates. Disconnected components are started at
// their most selective variable. Hosts exposing degree statistics
// (snapshots) break selectivity ties toward the label with the higher
// average degree — a better-connected seed prunes its neighborhood
// harder.
func planOrder(pl *Plan, h Host) []int {
	n := len(pl.vars)
	stats, hasStats := h.(degreeStats)
	candCount := func(i int) int {
		if pl.labels[i] == graph.Wildcard {
			return h.NumNodes()
		}
		return len(h.CandidateNodes(pl.labels[i]))
	}
	avgDeg := func(i int) float64 {
		if !hasStats {
			return 0
		}
		return stats.LabelAvgDegree(pl.labels[i])
	}
	// better reports whether variable a is the more attractive next
	// binding than b: fewer candidates, then higher average degree, then
	// name for determinism.
	better := func(a, b int) bool {
		ca, cb := candCount(a), candCount(b)
		if ca != cb {
			return ca < cb
		}
		da, db := avgDeg(a), avgDeg(b)
		if da != db {
			return da > db
		}
		return pl.vars[a] < pl.vars[b]
	}

	neighbors := make([][]int, n)
	for i := 0; i < n; i++ {
		for _, e := range pl.adj[i] {
			if e.src == i && e.dst != i {
				neighbors[i] = append(neighbors[i], e.dst)
			}
			if e.dst == i && e.src != i {
				neighbors[i] = append(neighbors[i], e.src)
			}
		}
	}

	remaining := make([]int, n)
	for i := range remaining {
		remaining[i] = i
	}
	sort.Slice(remaining, func(x, y int) bool { return better(remaining[x], remaining[y]) })

	ordered := make([]int, 0, n)
	placed := make([]bool, n)
	frontier := make(map[int]bool)
	place := func(x int) {
		ordered = append(ordered, x)
		placed[x] = true
		delete(frontier, x)
		for _, y := range neighbors[x] {
			if !placed[y] {
				frontier[y] = true
			}
		}
	}

	for len(ordered) < n {
		next := -1
		if len(frontier) > 0 {
			for x := range frontier {
				if next < 0 || better(x, next) {
					next = x
				}
			}
		} else {
			for _, x := range remaining {
				if !placed[x] {
					next = x
					break
				}
			}
		}
		place(next)
	}
	return ordered
}

// search binds the variable at position i of the order and recurses.
func (m *matcher) search(i int) {
	if m.done {
		return
	}
	if m.stop != nil {
		m.tick++
		if m.tick%stopEvery == 0 && m.stop() {
			m.done = true
			return
		}
	}
	if i == len(m.order) {
		m.emit()
		return
	}
	x := m.order[i]
	for _, v := range m.candidates(x) {
		if !m.consistent(x, v) {
			continue
		}
		m.bind[x] = v
		m.search(i + 1)
		m.bind[x] = unbound
		if m.done {
			return
		}
	}
}

// emit delivers a complete assignment. Dense consumers receive the
// binding vector itself (indexed by variable position, not retained);
// map consumers get the reused Match map, into which only bindings that
// changed since the previous emit are written back: between consecutive
// leaves of a deep search only the innermost variables move, so most
// string-keyed map writes are skipped. At a leaf every variable is
// bound, so the map never carries stale entries.
func (m *matcher) emit() {
	if m.dense != nil {
		if !m.dense(m.bind) {
			m.done = true
		}
		return
	}
	for i, x := range m.pl.vars {
		if m.last[i] != m.bind[i] {
			m.out[x] = m.bind[i]
			m.last[i] = m.bind[i]
		}
	}
	if !m.yield(m.out) {
		m.done = true
	}
}

// candidates returns the nodes that variable index x may be bound to:
// the ⪯-compatible neighbors of a bound pattern-neighbor when one
// exists (a label-grouped slice on snapshot hosts), the label candidate
// set otherwise. Node-label compatibility is checked by consistent.
func (m *matcher) candidates(x int) []graph.NodeID {
	if m.snap != nil {
		return m.candidatesSnap(x)
	}
	for _, e := range m.pl.adj[x] {
		if e.src == x && e.dst != x {
			if v := m.bind[e.dst]; v != unbound {
				return m.h.InNeighbors(v, e.label)
			}
		}
		if e.dst == x && e.src != x {
			if v := m.bind[e.src]; v != unbound {
				return m.h.OutNeighbors(v, e.label)
			}
		}
	}
	return m.h.CandidateNodes(m.pl.labels[x])
}

// candidatesSnap is candidates over the interned snapshot symbols: the
// common concrete-label case is one CSR run lookup with no hashing and
// no allocation.
func (m *matcher) candidatesSnap(x int) []graph.NodeID {
	for _, e := range m.pl.adj[x] {
		if e.src == x && e.dst != x {
			if v := m.bind[e.dst]; v != unbound {
				switch e.lid {
				case labelAbsent:
					return nil
				case labelWild:
					buf := m.snap.AppendInNeighbors(m.wildBuf(x), v)
					m.wild[x] = buf
					return buf
				default:
					return m.snap.InNeighborsID(v, e.lid)
				}
			}
		}
		if e.dst == x && e.src != x {
			if v := m.bind[e.src]; v != unbound {
				switch e.lid {
				case labelAbsent:
					return nil
				case labelWild:
					buf := m.snap.AppendOutNeighbors(m.wildBuf(x), v)
					m.wild[x] = buf
					return buf
				default:
					return m.snap.OutNeighborsID(v, e.lid)
				}
			}
		}
	}
	switch lid := m.pl.varLid[x]; lid {
	case labelAbsent:
		return nil
	case labelWild:
		return m.snap.Nodes()
	default:
		return m.snap.CandidateNodesID(lid)
	}
}

// consistent checks label compatibility of binding x↦v and every pattern
// edge between x and already-bound variables (including self-loops).
func (m *matcher) consistent(x int, v graph.NodeID) bool {
	if m.filter != nil && !m.filter(v) {
		return false
	}
	if m.snap != nil {
		return m.consistentSnap(x, v)
	}
	if !graph.LabelMatches(m.pl.labels[x], m.h.Label(v)) {
		return false
	}
	for _, e := range m.pl.adj[x] {
		var src, dst graph.NodeID
		switch {
		case e.src == x && e.dst == x:
			src, dst = v, v
		case e.src == x:
			dst = m.bind[e.dst]
			if dst == unbound {
				continue
			}
			src = v
		default: // e.dst == x
			src = m.bind[e.src]
			if src == unbound {
				continue
			}
			dst = v
		}
		if !HostHasCompatibleEdge(m.h, src, e.label, dst) {
			return false
		}
	}
	return true
}

// consistentSnap is consistent over the interned snapshot symbols.
func (m *matcher) consistentSnap(x int, v graph.NodeID) bool {
	switch lid := m.pl.varLid[x]; lid {
	case labelWild:
	case labelAbsent:
		return false
	default:
		if m.snap.NodeLabelID(v) != lid {
			return false
		}
	}
	for _, e := range m.pl.adj[x] {
		var src, dst graph.NodeID
		switch {
		case e.src == x && e.dst == x:
			src, dst = v, v
		case e.src == x:
			dst = m.bind[e.dst]
			if dst == unbound {
				continue
			}
			src = v
		default: // e.dst == x
			src = m.bind[e.src]
			if src == unbound {
				continue
			}
			dst = v
		}
		switch e.lid {
		case labelAbsent:
			return false
		case labelWild:
			if !m.snap.HasAnyEdge(src, dst) {
				return false
			}
		default:
			if !m.snap.HasEdgeID(src, e.lid, dst) {
				return false
			}
		}
	}
	return true
}

// HostHasCompatibleEdge reports whether h has an edge (src, ι′, dst)
// with ι ⪯ ι′: the exact edge for a concrete pattern label (a
// wildcard-labeled host edge is NOT matched by a concrete pattern label
// under ⪯), any edge for the wildcard. It is the single home of that
// asymmetric rule — the validator's re-check path shares it with the
// matcher.
func HostHasCompatibleEdge(h Host, src graph.NodeID, label graph.Label, dst graph.NodeID) bool {
	if label != graph.Wildcard {
		return h.HasEdge(src, label, dst)
	}
	return h.HasAnyEdge(src, dst)
}
