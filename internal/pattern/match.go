package pattern

import (
	"sort"
	"sync"

	"gedlib/internal/graph"
	"gedlib/internal/obs"
)

// Match is a homomorphism h from a pattern to a graph, i.e. the vector
// h(x̄) of Section 2. Distinct variables may map to the same node.
//
// Match is the public boundary of the matcher; internally the compiled
// plan binds variables through a dense []graph.NodeID keyed by variable
// index and materializes the map only when a complete match is yielded.
type Match map[Var]graph.NodeID

// Clone returns a copy of m.
func (m Match) Clone() Match {
	c := make(Match, len(m))
	for k, v := range m {
		c[k] = v
	}
	return c
}

// unbound marks an unassigned slot of the dense binding vector. Real
// node ids are non-negative.
const unbound = graph.NodeID(-1)

// labelAbsent and labelWild are the sentinel resolved-label symbols of
// snapshot-compiled plans: absent means the label occurs nowhere in the
// snapshot (the edge or variable can never match), wild is the
// wildcard.
const (
	labelAbsent int32 = -2
	labelWild   int32 = -1
)

// cedge is a compiled pattern edge: endpoints resolved to variable
// indexes so the search never hashes a Var, and — on snapshot hosts —
// the edge label resolved to its interned symbol so the search never
// hashes a label either.
type cedge struct {
	src, dst int
	label    graph.Label
	lid      int32 // resolved symbol; labelWild / labelAbsent sentinels
}

// matcher holds the scratch state of one backtracking search. Matchers
// are pooled per Plan: the small per-update searches of incremental
// validation run thousands of times per second, and re-allocating the
// binding vector, dirty set, output map and candidate buffers on every
// enumeration dominates their cost.
type matcher struct {
	pl       *Plan
	h        Host
	snap     *graph.Snapshot           // non-nil fast path, mirrors pl.snap
	bind     []graph.NodeID            // dense partial assignment, unbound = -1
	last     []graph.NodeID            // binding each out entry currently holds
	out      Match                     // reused map handed to yield
	order    []int                     // variable indexes still to bind, in order
	orderBuf []int                     // pooled backing for filtered orders
	wild     [][]graph.NodeID          // per-variable wildcard-neighbor dedup buffers
	isect    [][]graph.NodeID          // per-variable intersection output buffers
	runs     [][][]graph.NodeID        // per-variable sorted-run collection buffers
	covered  []bool                    // candidates(x) already enforced x's bound edges+filters
	yield    func(Match) bool          // returns false to stop enumeration
	dense    func([]graph.NodeID) bool // dense-vector alternative to yield
	filter   func(graph.NodeID) bool   // optional host-node admission filter
	stop     func() bool               // polled inside the search; true aborts
	tick     uint32                    // amortizes stop polling
	done     bool

	// Per-enumeration profiler tallies, plain ints on the hot path;
	// flushed into Plan.prof (when attached) by putMatcher.
	nCand  uint64 // candidates examined by search
	nIsect uint64 // sorted runs walked by leapfrog intersections
	nProbe uint64 // per-candidate consistency probes
	nBind  uint64 // complete bindings materialized
}

// stopEvery is how many search steps pass between stop polls: frequent
// enough that a cancelled context aborts even a match-free exponential
// search promptly, rare enough to stay off the hot path.
const stopEvery = 1024

// ConstFilter is a constant literal x.A = c pushed down into a plan:
// the enumeration then emits only matches whose binding of Var carries
// attribute Attr with exactly Value, skipping literal-failing partial
// bindings inside the search instead of post-filtering whole matches.
// On snapshot hosts the filter resolves to the snapshot's (attr,
// value) posting list and joins the candidate intersection; on mutable
// hosts it is enforced per candidate at binding time. Filters naming
// variables the pattern does not have are ignored.
type ConstFilter struct {
	Var   Var
	Attr  graph.Attr
	Value graph.Value
}

// cfilter is a compiled pushed-down filter: the attribute resolved to
// its interned symbol and, on snapshot hosts, the posting list of
// nodes carrying (attr, value).
type cfilter struct {
	attr graph.Attr
	val  graph.Value
	aid  int32          // resolved attr symbol; -1 = unresolved/absent
	post []graph.NodeID // snapshot posting, ascending; nil on mutable hosts
}

// Plan is a compiled matching plan for one (pattern, host) pair: the
// variable order, index-resolved adjacency, pushed-down literal
// postings and binding layout are computed once and shared across any
// number of (concurrent) enumerations. Plans are immutable after
// Compile and safe for concurrent use.
type Plan struct {
	p      *Pattern
	h      Host
	snap   *graph.Snapshot // non-nil when h is a snapshot: interned fast path
	vars   []Var           // variable index -> variable
	varIdx map[Var]int
	labels []graph.Label // variable index -> label
	varLid []int32       // variable index -> resolved label symbol (snapshot hosts)
	adj    [][]cedge     // variable index -> incident pattern edges
	order  []int         // variable binding order, as indexes

	filters []ConstFilter // pushed-down constant literals, as given
	varFilt [][]cfilter   // variable index -> compiled filters
	// probe selects the legacy scan-and-probe extension step (first
	// bound neighbor's adjacency list, every other constraint probed per
	// candidate) instead of the default multi-way sorted intersection.
	// It exists as the measured baseline of BENCH_match and as the
	// differential-test oracle for the intersection path.
	probe bool

	// pool recycles matcher scratch across enumerations; see matcher.
	// It is a pointer so Rebind-derived plans share one pool: the
	// scratch is sized by the pattern (identical across a lineage of
	// rebinds), and sharing keeps the pool warm on the per-delta path
	// where validators rebase for every update.
	pool *sync.Pool

	// prof, when attached via SetProfile, receives every enumeration's
	// tallies; carried across Rebind so per-rule statistics accumulate
	// over a validator's whole snapshot lineage.
	prof *obs.MatchStats
}

// Compile prepares a matching plan for p over h — a mutable graph or a
// frozen snapshot.
func Compile(p *Pattern, h Host) *Plan {
	return compile(p, h, nil, false)
}

// CompileFiltered is Compile with constant literals pushed down into
// the plan: enumeration skips bindings that fail them, so callers that
// would post-filter matches on x.A = c literals (validators checking a
// GED's antecedent) never enumerate the failing matches at all. On
// snapshot hosts each filter resolves to the attribute-value index's
// posting list and candidate generation intersects it alongside the
// adjacency runs.
func CompileFiltered(p *Pattern, h Host, filters []ConstFilter) *Plan {
	return compile(p, h, filters, false)
}

// CompileProbe compiles the legacy scan-and-probe plan: candidates come
// from the first bound pattern-neighbor's adjacency list and every
// remaining constraint is probed per candidate, with the pre-intersection
// variable ordering. It is the measured baseline of the worst-case-
// optimal extension step and the oracle of its differential tests.
func CompileProbe(p *Pattern, h Host) *Plan {
	return compile(p, h, nil, true)
}

func compile(p *Pattern, h Host, filters []ConstFilter, probe bool) *Plan {
	n := len(p.vars)
	pl := &Plan{
		p:       p,
		h:       h,
		vars:    p.vars,
		varIdx:  make(map[Var]int, n),
		labels:  make([]graph.Label, n),
		adj:     make([][]cedge, n),
		varFilt: make([][]cfilter, n),
		probe:   probe,
		pool:    new(sync.Pool),
	}
	pl.snap, _ = h.(*graph.Snapshot)
	resolve := func(l graph.Label) int32 {
		if l == graph.Wildcard {
			return labelWild
		}
		if lid, ok := pl.snap.LabelID(l); ok {
			return lid
		}
		return labelAbsent
	}
	pl.varLid = make([]int32, n)
	for i, x := range p.vars {
		pl.varIdx[x] = i
		pl.labels[i] = p.labels[x]
		if pl.snap != nil {
			pl.varLid[i] = resolve(p.labels[x])
		}
	}
	for _, e := range p.edges {
		ce := cedge{src: pl.varIdx[e.Src], dst: pl.varIdx[e.Dst], label: e.Label}
		if pl.snap != nil {
			ce.lid = resolve(e.Label)
		}
		pl.adj[ce.src] = append(pl.adj[ce.src], ce)
		if ce.dst != ce.src {
			pl.adj[ce.dst] = append(pl.adj[ce.dst], ce)
		}
	}
	if len(filters) > 0 {
		pl.filters = append([]ConstFilter(nil), filters...)
		for _, f := range pl.filters {
			i, ok := pl.varIdx[f.Var]
			if !ok {
				continue
			}
			cf := cfilter{attr: f.Attr, val: f.Value, aid: -1}
			if pl.snap != nil {
				if aid, ok := pl.snap.AttrID(f.Attr); ok {
					cf.aid = aid
					cf.post = pl.snap.LookupAttrID(aid, f.Value)
				}
			}
			pl.varFilt[i] = append(pl.varFilt[i], cf)
		}
	}
	pl.order = planOrder(pl, h)
	return pl
}

// Rebind returns a plan equivalent to pl but bound to snap, an
// immutable snapshot of the same lineage as the plan's host (i.e. one
// produced from it by graph.Snapshot.Apply, in any number of steps).
// Within a lineage symbol ids are append-only, so the compiled variable
// order and adjacency carry over unchanged; only label symbols that
// were absent at Compile time are re-resolved — a delta may have
// interned them since. The cost is proportional to the pattern, never
// the host, which is what lets validators follow a delta-maintained
// snapshot without recompiling.
//
// Rebinding onto an unrelated snapshot corrupts label resolution
// silently; callers are expected to check Lineage, as the Engine's plan
// cache does.
// OrderedVars returns the plan's variable binding order — the sequence
// the worst-case-optimal search extends partial bindings in, chosen
// from the host's statistics at compile time. Callers that drive their
// own extension loop (the sharded validator resumes partial bindings
// across shard queues) reuse it so their enumeration visits variables
// in the same cost-aware order. The returned slice is fresh.
func (pl *Plan) OrderedVars() []Var {
	out := make([]Var, len(pl.order))
	for i, vi := range pl.order {
		out[i] = pl.vars[vi]
	}
	return out
}

func (pl *Plan) Rebind(snap *graph.Snapshot) *Plan {
	if snap == pl.snap {
		return pl
	}
	np := &Plan{
		p:       pl.p,
		h:       snap,
		snap:    snap,
		vars:    pl.vars,
		varIdx:  pl.varIdx,
		labels:  pl.labels,
		varLid:  pl.varLid,
		adj:     pl.adj,
		order:   pl.order,
		filters: pl.filters,
		varFilt: pl.varFilt,
		probe:   pl.probe,
		pool:    pl.pool, // same pattern, same scratch shape: stay warm
		prof:    pl.prof, // profile accumulates across the lineage
	}
	// Pushed-down postings are per-snapshot: attr symbols carry over
	// (append-only within a lineage, re-resolved if they appeared since
	// Compile) but the posting contents move with every Apply, so they
	// are re-fetched here — at pattern cost, through the posting index
	// the snapshot maintains across deltas.
	if len(pl.filters) > 0 {
		nf := make([][]cfilter, len(pl.varFilt))
		for i, fs := range pl.varFilt {
			if len(fs) == 0 {
				continue
			}
			cs := make([]cfilter, len(fs))
			copy(cs, fs)
			for k := range cs {
				if cs[k].aid < 0 {
					if aid, ok := snap.AttrID(cs[k].attr); ok {
						cs[k].aid = aid
					}
				}
				if cs[k].aid >= 0 {
					cs[k].post = snap.LookupAttrID(cs[k].aid, cs[k].val)
				}
			}
			nf[i] = cs
		}
		np.varFilt = nf
	}
	resolve := func(l graph.Label) int32 {
		if l == graph.Wildcard {
			return labelWild
		}
		if lid, ok := snap.LabelID(l); ok {
			return lid
		}
		return labelAbsent
	}
	for i, lid := range pl.varLid {
		if lid != labelAbsent {
			continue
		}
		if resolve(pl.labels[i]) == labelAbsent {
			continue
		}
		// A previously-absent symbol exists now: re-resolve the whole
		// (tiny) table once.
		nv := make([]int32, len(pl.varLid))
		for j := range nv {
			nv[j] = resolve(pl.labels[j])
		}
		np.varLid = nv
		break
	}
	for x := range pl.adj {
		for _, e := range pl.adj[x] {
			if e.lid != labelAbsent || resolve(e.label) == labelAbsent {
				continue
			}
			// Same for edge labels: clone the adjacency with fresh
			// resolutions.
			nadj := make([][]cedge, len(pl.adj))
			for y := range pl.adj {
				es := make([]cedge, len(pl.adj[y]))
				copy(es, pl.adj[y])
				for k := range es {
					es[k].lid = resolve(es[k].label)
				}
				nadj[y] = es
			}
			np.adj = nadj
			return np
		}
	}
	return np
}

// newMatcher checks the plan's pool for recycled per-enumeration state —
// the dense binding vector, dirty set, output map and candidate
// buffers — and allocates it only on a cold pool. Callers must hand the
// matcher back with putMatcher when the enumeration ends.
func (pl *Plan) newMatcher(stop func() bool, yield func(Match) bool) *matcher {
	m, ok := pl.pool.Get().(*matcher)
	if !ok {
		m = &matcher{
			bind:    make([]graph.NodeID, len(pl.vars)),
			last:    make([]graph.NodeID, len(pl.vars)),
			covered: make([]bool, len(pl.vars)),
			out:     make(Match, len(pl.vars)),
		}
	}
	// The pool is shared across same-lineage rebinds, so a recycled
	// matcher may carry a predecessor plan; re-point it every time.
	m.pl, m.h, m.snap = pl, pl.h, pl.snap
	m.yield = yield
	m.stop = stop
	m.tick = 0
	m.done = false
	// The out map may carry entries from a previous run; they are all
	// overwritten before the next yield because every last slot resets
	// to unbound, and a yield only ever happens with every variable
	// bound.
	for i := range m.bind {
		m.bind[i] = unbound
		m.last[i] = unbound
		m.covered[i] = false
	}
	return m
}

// putMatcher returns scratch to the plan's pool, dropping the caller's
// closures — and the plan/host/snapshot references, which would
// otherwise pin a superseded snapshot's COW pages across rebinds — so
// the pool never pins them. newMatcher re-points them on every Get.
func (pl *Plan) putMatcher(m *matcher) {
	pl.flushProfile(m)
	m.yield = nil
	m.dense = nil
	m.filter = nil
	m.stop = nil
	m.pl = nil
	m.h = nil
	m.snap = nil
	// The run-collection buffers hold views into snapshot CSR storage;
	// nil them so a pooled matcher never pins a superseded snapshot's
	// pages (the buffers themselves — a few slice headers per variable —
	// stay recycled).
	for x := range m.runs {
		rs := m.runs[x]
		for j := range rs {
			rs[j] = nil
		}
		m.runs[x] = rs[:0]
	}
	pl.pool.Put(m)
}

// wildBuf returns variable x's recycled wildcard-neighbor buffer,
// emptied. Buffers are per variable because candidate slices stay live
// while deeper search levels compute theirs.
func (m *matcher) wildBuf(x int) []graph.NodeID {
	if m.wild == nil {
		m.wild = make([][]graph.NodeID, len(m.pl.vars))
	}
	return m.wild[x][:0]
}

// runsBuf returns variable x's recycled sorted-run collection buffer,
// emptied; isectBuf its intersection output buffer. Both are per
// variable for the same reason as wildBuf: a level's candidate slice
// stays live while deeper levels compute theirs.
func (m *matcher) runsBuf(x int) [][]graph.NodeID {
	if m.runs == nil {
		m.runs = make([][][]graph.NodeID, len(m.pl.vars))
	}
	return m.runs[x][:0]
}

func (m *matcher) isectBuf(x int) []graph.NodeID {
	if m.isect == nil {
		m.isect = make([][]graph.NodeID, len(m.pl.vars))
	}
	return m.isect[x][:0]
}

// candFail is the empty-candidate-set exit of candidatesSnap: it hands
// a non-nil run collection buffer back to its per-variable slot (so
// its capacity is recycled) and yields no candidates.
func (m *matcher) candFail(x int, runs [][]graph.NodeID) []graph.NodeID {
	if runs != nil {
		m.runs[x] = runs
	}
	return nil
}

// ForEachBound enumerates matches extending the partial assignment pre
// (which may be nil). Pre-bindings violating labels or edges — or
// naming variables the pattern does not have — yield no matches. The
// Match passed to yield is reused; clone it to retain it.
func (pl *Plan) ForEachBound(pre Match, yield func(Match) bool) {
	pl.ForEachBoundCancel(pre, nil, yield)
}

// ForEachBoundCancel is ForEachBound with a cooperative abort hook:
// stop (when non-nil) is polled periodically *inside* the backtracking
// search, so even an exponential exploration that never completes a
// match can be cut short. Enumeration ends when stop returns true.
//
// The empty pattern has exactly one (empty) match, delivered through
// the same search path as every other pattern, so yield's "return false
// to stop" verdict and pre-binding rejection apply uniformly.
func (pl *Plan) ForEachBoundCancel(pre Match, stop func() bool, yield func(Match) bool) {
	m := pl.newMatcher(stop, yield)
	defer pl.putMatcher(m)
	for v, n := range pre {
		i, ok := pl.varIdx[v]
		if !ok {
			return
		}
		if !m.consistent(i, n) {
			return
		}
		m.bind[i] = n
	}
	if len(pre) == 0 {
		m.order = pl.order
	} else {
		order := m.orderBuf[:0]
		for _, i := range pl.order {
			if m.bind[i] == unbound {
				order = append(order, i)
			}
		}
		m.orderBuf = order
		m.order = order
	}
	m.search(0)
}

// ForEachDenseCancel enumerates every match as its dense binding
// vector, indexed by the position of each variable in the pattern's
// Vars() order — no Match map is materialized. The vector is the
// matcher's own scratch: read it during the callback, copy it to
// retain it. stop is the cooperative abort hook of ForEachBoundCancel.
//
// This is the entry point for high-volume consumers (the chase's
// fixpoint loop) where the per-match map handling of the Match boundary
// dominates.
func (pl *Plan) ForEachDenseCancel(stop func() bool, yield func([]graph.NodeID) bool) {
	pl.ForEachDenseFiltered(stop, nil, yield)
}

// ForEachDenseFiltered is ForEachDenseCancel restricted to host nodes
// the filter admits: rejected nodes are pruned at binding time, so a
// search never descends below an inadmissible assignment. The chase
// uses it to make retired coercion carriers invisible to matching.
func (pl *Plan) ForEachDenseFiltered(stop func() bool, filter func(graph.NodeID) bool, yield func([]graph.NodeID) bool) {
	m := pl.newMatcher(stop, nil)
	m.dense = yield
	m.filter = filter
	defer pl.putMatcher(m)
	m.order = pl.order
	m.search(0)
}

// ForEachPivot enumerates matches with the pivot variable successively
// bound to each candidate, reusing one matcher across the whole block —
// the low-overhead primitive behind parallel validation. Candidates that
// violate the pivot's label or incident edges are skipped.
func (pl *Plan) ForEachPivot(pivot Var, cands []graph.NodeID, yield func(Match) bool) {
	pl.ForEachPivotCancel(pivot, cands, nil, yield)
}

// ForEachPivotCancel is ForEachPivot with the cooperative abort hook of
// ForEachBoundCancel. Pivot candidates are intersected with the pivot's
// pushed-down literal postings up front when the candidate list is
// sorted (it usually is: label postings and attribute-value postings
// both arrive ascending); unsorted candidate lists fall back to the
// per-candidate literal check in consistent.
func (pl *Plan) ForEachPivotCancel(pivot Var, cands []graph.NodeID, stop func() bool, yield func(Match) bool) {
	pi, ok := pl.varIdx[pivot]
	if !ok {
		return
	}
	m := pl.newMatcher(stop, yield)
	defer pl.putMatcher(m)
	cands = m.pivotCands(pi, cands)
	order := m.orderBuf[:0]
	for _, i := range pl.order {
		if i != pi {
			order = append(order, i)
		}
	}
	m.orderBuf = order
	m.order = order
	m.nCand += uint64(len(cands))
	for _, c := range cands {
		if !m.consistent(pi, c) {
			continue
		}
		m.bind[pi] = c
		m.search(0)
		m.bind[pi] = unbound
		if m.done {
			return
		}
	}
}

// pivotCands narrows a pivot block to the candidates satisfying the
// pivot's pushed-down literals, by sorted intersection with their
// posting lists when the block itself is ascending. Candidates the
// filters reject would be discarded one by one by consistent anyway;
// the intersection skips them wholesale, which is what makes pivoted
// re-checks over selective literals cheap.
func (m *matcher) pivotCands(pi int, cands []graph.NodeID) []graph.NodeID {
	if m.snap == nil || m.pl.probe || len(m.pl.varFilt[pi]) == 0 || len(cands) == 0 {
		return cands
	}
	for fi := range m.pl.varFilt[pi] {
		f := &m.pl.varFilt[pi][fi]
		if f.aid < 0 || len(f.post) == 0 {
			return nil
		}
	}
	for i := 1; i < len(cands); i++ {
		if cands[i] <= cands[i-1] {
			return cands // unsorted block: consistent filters per candidate
		}
	}
	runs := m.runsBuf(pi)
	runs = append(runs, cands)
	for fi := range m.pl.varFilt[pi] {
		runs = append(runs, m.pl.varFilt[pi][fi].post)
	}
	m.nIsect += uint64(len(runs))
	out := intersectInto(m.isectBuf(pi), runs)
	m.isect[pi] = out
	m.runs[pi] = runs
	m.covered[pi] = true // literals pre-satisfied; edges all unbound yet
	return out
}

// ForEachMatch enumerates the matches of p in h, invoking yield for each.
// Enumeration stops early when yield returns false. The Match passed to
// yield is reused between invocations; clone it to retain it.
func ForEachMatch(p *Pattern, h Host, yield func(Match) bool) {
	Compile(p, h).ForEachBound(nil, yield)
}

// ForEachMatchCancel is ForEachMatch with the cooperative abort hook of
// ForEachBoundCancel.
func ForEachMatchCancel(p *Pattern, h Host, stop func() bool, yield func(Match) bool) {
	Compile(p, h).ForEachBoundCancel(nil, stop, yield)
}

// ForEachMatchBound enumerates the matches of p in h extending the
// partial assignment pre. For repeated enumeration over one host,
// Compile once and use Plan.ForEachBound.
func ForEachMatchBound(p *Pattern, h Host, pre Match, yield func(Match) bool) {
	Compile(p, h).ForEachBound(pre, yield)
}

// FindMatches returns up to limit matches of p in h; limit <= 0 means all.
func FindMatches(p *Pattern, h Host, limit int) []Match {
	var out []Match
	ForEachMatch(p, h, func(m Match) bool {
		out = append(out, m.Clone())
		return limit <= 0 || len(out) < limit
	})
	return out
}

// HasMatch reports whether p has at least one match in h.
func HasMatch(p *Pattern, h Host) bool {
	found := false
	ForEachMatch(p, h, func(Match) bool {
		found = true
		return false
	})
	return found
}

// CountMatches returns the number of matches of p in h.
func CountMatches(p *Pattern, h Host) int {
	n := 0
	ForEachMatch(p, h, func(Match) bool {
		n++
		return true
	})
	return n
}

// planOrder chooses a variable binding order: the variable with the
// fewest candidates first — counting pushed-down literal postings, not
// just label postings, so a selective constant literal pulls its
// variable to the front — then greedily the frontier variable with the
// most edges into already-ordered variables (the intersection-tight
// choice: every such edge contributes one more sorted run to the
// extension step's intersection), breaking ties toward small candidate
// sets. Disconnected components are started at their most selective
// variable. Hosts exposing degree statistics (snapshots) break
// remaining ties toward the label with the higher average degree — a
// better-connected seed prunes its neighborhood harder. Probe-mode
// plans keep the legacy frontier rule (selectivity only), as the
// faithful baseline of the pre-intersection matcher.
func planOrder(pl *Plan, h Host) []int {
	n := len(pl.vars)
	stats, hasStats := h.(degreeStats)
	candCount := func(i int) int {
		c := 0
		if pl.labels[i] == graph.Wildcard {
			c = h.NumNodes()
		} else {
			c = len(h.CandidateNodes(pl.labels[i]))
		}
		if pl.snap != nil {
			for fi := range pl.varFilt[i] {
				f := &pl.varFilt[i][fi]
				if f.aid < 0 {
					return 0
				}
				if len(f.post) < c {
					c = len(f.post)
				}
			}
		}
		return c
	}
	avgDeg := func(i int) float64 {
		if !hasStats {
			return 0
		}
		return stats.LabelAvgDegree(pl.labels[i])
	}
	// better reports whether variable a is the more attractive next
	// binding than b: fewer candidates, then higher average degree, then
	// name for determinism.
	better := func(a, b int) bool {
		ca, cb := candCount(a), candCount(b)
		if ca != cb {
			return ca < cb
		}
		da, db := avgDeg(a), avgDeg(b)
		if da != db {
			return da > db
		}
		return pl.vars[a] < pl.vars[b]
	}

	neighbors := make([][]int, n)
	for i := 0; i < n; i++ {
		for _, e := range pl.adj[i] {
			if e.src == i && e.dst != i {
				neighbors[i] = append(neighbors[i], e.dst)
			}
			if e.dst == i && e.src != i {
				neighbors[i] = append(neighbors[i], e.src)
			}
		}
	}

	remaining := make([]int, n)
	for i := range remaining {
		remaining[i] = i
	}
	sort.Slice(remaining, func(x, y int) bool { return better(remaining[x], remaining[y]) })

	ordered := make([]int, 0, n)
	placed := make([]bool, n)
	frontier := make(map[int]bool)
	place := func(x int) {
		ordered = append(ordered, x)
		placed[x] = true
		delete(frontier, x)
		for _, y := range neighbors[x] {
			if !placed[y] {
				frontier[y] = true
			}
		}
	}

	// tightness counts x's pattern edges into already-placed variables:
	// each is one more sorted run in x's extension intersection.
	tightness := func(x int) int {
		t := 0
		for _, y := range neighbors[x] {
			if placed[y] {
				t++
			}
		}
		return t
	}

	for len(ordered) < n {
		next, nextTight := -1, -1
		if len(frontier) > 0 {
			for x := range frontier {
				t := 0
				if !pl.probe {
					t = tightness(x)
				}
				if next < 0 || t > nextTight || (t == nextTight && better(x, next)) {
					next, nextTight = x, t
				}
			}
		} else {
			for _, x := range remaining {
				if !placed[x] {
					next = x
					break
				}
			}
		}
		place(next)
	}
	return ordered
}

// search binds the variable at position i of the order and recurses.
func (m *matcher) search(i int) {
	if m.done {
		return
	}
	if m.stop != nil {
		m.tick++
		if m.tick%stopEvery == 0 && m.stop() {
			m.done = true
			return
		}
	}
	if i == len(m.order) {
		m.emit()
		return
	}
	x := m.order[i]
	cands := m.candidates(x)
	m.nCand += uint64(len(cands))
	for _, v := range cands {
		if !m.consistent(x, v) {
			continue
		}
		m.bind[x] = v
		m.search(i + 1)
		m.bind[x] = unbound
		if m.done {
			return
		}
	}
}

// emit delivers a complete assignment. Dense consumers receive the
// binding vector itself (indexed by variable position, not retained);
// map consumers get the reused Match map, into which only bindings that
// changed since the previous emit are written back: between consecutive
// leaves of a deep search only the innermost variables move, so most
// string-keyed map writes are skipped. At a leaf every variable is
// bound, so the map never carries stale entries.
func (m *matcher) emit() {
	m.nBind++
	if m.dense != nil {
		if !m.dense(m.bind) {
			m.done = true
		}
		return
	}
	for i, x := range m.pl.vars {
		if m.last[i] != m.bind[i] {
			m.out[x] = m.bind[i]
			m.last[i] = m.bind[i]
		}
	}
	if !m.yield(m.out) {
		m.done = true
	}
}

// candidates returns the nodes that variable index x may be bound to.
// On snapshot hosts the default path intersects the sorted CSR
// adjacency runs of every already-bound pattern-neighbor, together
// with x's pushed-down literal postings — candidates then satisfy
// every incident concrete-labeled edge and every pushed-down literal
// by construction (worst-case-optimal extension). On mutable hosts the
// smallest bound-neighbor list is scanned and the residual constraints
// are probed by consistent. Node-label compatibility is checked by
// consistent.
func (m *matcher) candidates(x int) []graph.NodeID {
	if m.snap != nil {
		if m.pl.probe {
			return m.candidatesSnapProbe(x)
		}
		return m.candidatesSnap(x)
	}
	if m.pl.probe {
		for _, e := range m.pl.adj[x] {
			if e.src == x && e.dst != x {
				if v := m.bind[e.dst]; v != unbound {
					return m.h.InNeighbors(v, e.label)
				}
			}
			if e.dst == x && e.src != x {
				if v := m.bind[e.src]; v != unbound {
					return m.h.OutNeighbors(v, e.label)
				}
			}
		}
		return m.h.CandidateNodes(m.pl.labels[x])
	}
	// Mutable-host parity with the snapshot path's min-run selection:
	// scan every bound pattern-neighbor and extend from the *smallest*
	// neighbor list, not the first one hit; the other edges are probed
	// per candidate by consistent.
	var best []graph.NodeID
	found := false
	for _, e := range m.pl.adj[x] {
		var c []graph.NodeID
		if e.src == x && e.dst != x {
			v := m.bind[e.dst]
			if v == unbound {
				continue
			}
			c = m.h.InNeighbors(v, e.label)
		} else if e.dst == x && e.src != x {
			v := m.bind[e.src]
			if v == unbound {
				continue
			}
			c = m.h.OutNeighbors(v, e.label)
		} else {
			continue
		}
		if !found || len(c) < len(best) {
			best, found = c, true
			if len(best) == 0 {
				return best
			}
		}
	}
	if found {
		return best
	}
	return m.h.CandidateNodes(m.pl.labels[x])
}

// candidatesSnap is the snapshot extension step: collect the sorted
// adjacency run of every bound concrete-labeled incident edge plus the
// pushed-down literal postings, and leapfrog-intersect them. With one
// eligible run the run itself is returned (zero copy) — the smallest,
// since it is the only one. Wildcard-labeled incident edges cannot
// feed the intersection (their neighbor sets are merged across label
// runs, not sorted) and stay residual checks in consistent, unless
// they are the only bound edges, in which case the legacy deduped
// neighbor buffer is used, picked from the smallest bound neighborhood.
func (m *matcher) candidatesSnap(x int) []graph.NodeID {
	m.covered[x] = false
	pl := m.pl
	// run0 carries the first sorted run; the collection buffer is only
	// touched once a second run shows up, keeping the dominant
	// single-bound-edge case free of bookkeeping.
	var run0 []graph.NodeID
	var runs [][]graph.NodeID
	nAdj := 0
	// The smallest-neighborhood bound wildcard edge, kept as the
	// fallback candidate source when no sorted run exists.
	wildEdge := -1
	wildIn := false
	var wildV graph.NodeID
	wildLen := 0
	push := func(run []graph.NodeID) {
		if run0 == nil {
			run0 = run
			return
		}
		if runs == nil {
			runs = append(m.runsBuf(x), run0)
		}
		runs = append(runs, run)
	}
	for ei := range pl.adj[x] {
		e := &pl.adj[x][ei]
		var v graph.NodeID
		var in bool
		if e.src == x && e.dst != x {
			if v = m.bind[e.dst]; v == unbound {
				continue
			}
			in = true // x -> v: candidates are in-neighbors of v
		} else if e.dst == x && e.src != x {
			if v = m.bind[e.src]; v == unbound {
				continue
			}
			in = false // v -> x: candidates are out-neighbors of v
		} else {
			continue
		}
		switch e.lid {
		case labelAbsent:
			return m.candFail(x, runs)
		case labelWild:
			deg := m.snap.OutDegree(v)
			if in {
				deg = m.snap.InDegree(v)
			}
			if wildEdge < 0 || deg < wildLen {
				wildEdge, wildIn, wildV, wildLen = ei, in, v, deg
			}
		default:
			var run []graph.NodeID
			if in {
				run = m.snap.InNeighborsID(v, e.lid)
			} else {
				run = m.snap.OutNeighborsID(v, e.lid)
			}
			if len(run) == 0 {
				return m.candFail(x, runs)
			}
			nAdj++
			push(run)
		}
	}
	// Pushed-down literal postings join the intersection; a filter whose
	// attribute or value occurs nowhere in the snapshot admits nothing.
	for fi := range pl.varFilt[x] {
		f := &pl.varFilt[x][fi]
		if f.aid < 0 || len(f.post) == 0 {
			return m.candFail(x, runs)
		}
		push(f.post)
	}
	if nAdj == 0 && run0 != nil && wildEdge < 0 {
		// Seed variable driven by its literal postings alone: fold the
		// label posting in too, so the intersection is as tight as both
		// indexes allow.
		switch lid := pl.varLid[x]; lid {
		case labelAbsent:
			return m.candFail(x, runs)
		case labelWild:
		default:
			post := m.snap.CandidateNodesID(lid)
			if len(post) == 0 {
				return m.candFail(x, runs)
			}
			push(post)
		}
	}
	if run0 == nil {
		if wildEdge >= 0 {
			// Only wildcard-labeled bound edges: fall back to the merged,
			// deduplicated neighbor buffer of the smallest neighborhood;
			// consistent probes it (and every other constraint).
			var buf []graph.NodeID
			if wildIn {
				buf = m.snap.AppendInNeighbors(m.wildBuf(x), wildV)
			} else {
				buf = m.snap.AppendOutNeighbors(m.wildBuf(x), wildV)
			}
			m.wild[x] = buf
			return buf
		}
		switch lid := pl.varLid[x]; lid {
		case labelAbsent:
			return nil
		case labelWild:
			return m.snap.Nodes()
		default:
			return m.snap.CandidateNodesID(lid)
		}
	}
	// Every concrete bound edge and every pushed-down literal is folded
	// into the candidate set; consistent skips re-probing them.
	m.covered[x] = true
	if runs == nil {
		return run0
	}
	m.nIsect += uint64(len(runs))
	out := intersectInto(m.isectBuf(x), runs)
	m.isect[x] = out
	m.runs[x] = runs
	return out
}

// candidatesSnapProbe is the legacy scan-and-probe extension step over
// the interned snapshot symbols: the first bound pattern-neighbor's
// run is scanned and every other constraint is probed per candidate.
func (m *matcher) candidatesSnapProbe(x int) []graph.NodeID {
	for _, e := range m.pl.adj[x] {
		if e.src == x && e.dst != x {
			if v := m.bind[e.dst]; v != unbound {
				switch e.lid {
				case labelAbsent:
					return nil
				case labelWild:
					buf := m.snap.AppendInNeighbors(m.wildBuf(x), v)
					m.wild[x] = buf
					return buf
				default:
					return m.snap.InNeighborsID(v, e.lid)
				}
			}
		}
		if e.dst == x && e.src != x {
			if v := m.bind[e.src]; v != unbound {
				switch e.lid {
				case labelAbsent:
					return nil
				case labelWild:
					buf := m.snap.AppendOutNeighbors(m.wildBuf(x), v)
					m.wild[x] = buf
					return buf
				default:
					return m.snap.OutNeighborsID(v, e.lid)
				}
			}
		}
	}
	switch lid := m.pl.varLid[x]; lid {
	case labelAbsent:
		return nil
	case labelWild:
		return m.snap.Nodes()
	default:
		return m.snap.CandidateNodesID(lid)
	}
}

// consistent checks label compatibility of binding x↦v, x's pushed-down
// constant literals, and every pattern edge between x and already-bound
// variables (including self-loops).
func (m *matcher) consistent(x int, v graph.NodeID) bool {
	m.nProbe++
	if m.filter != nil && !m.filter(v) {
		return false
	}
	if m.snap != nil {
		return m.consistentSnap(x, v)
	}
	if !graph.LabelMatches(m.pl.labels[x], m.h.Label(v)) {
		return false
	}
	for fi := range m.pl.varFilt[x] {
		f := &m.pl.varFilt[x][fi]
		val, ok := m.h.Attr(v, f.attr)
		if !ok || !val.Equal(f.val) {
			return false
		}
	}
	for _, e := range m.pl.adj[x] {
		var src, dst graph.NodeID
		switch {
		case e.src == x && e.dst == x:
			src, dst = v, v
		case e.src == x:
			dst = m.bind[e.dst]
			if dst == unbound {
				continue
			}
			src = v
		default: // e.dst == x
			src = m.bind[e.src]
			if src == unbound {
				continue
			}
			dst = v
		}
		if !HostHasCompatibleEdge(m.h, src, e.label, dst) {
			return false
		}
	}
	return true
}

// consistentSnap is consistent over the interned snapshot symbols.
// When the candidate came out of candidatesSnap's intersection
// (covered), the concrete bound-edge and pushed-down literal
// constraints were satisfied by construction and only the residual
// constraints — node label, self-loops, wildcard-labeled edges — are
// checked.
func (m *matcher) consistentSnap(x int, v graph.NodeID) bool {
	switch lid := m.pl.varLid[x]; lid {
	case labelWild:
	case labelAbsent:
		return false
	default:
		if m.snap.NodeLabelID(v) != lid {
			return false
		}
	}
	covered := m.covered[x]
	if !covered {
		for fi := range m.pl.varFilt[x] {
			f := &m.pl.varFilt[x][fi]
			if f.aid < 0 {
				return false
			}
			val, ok := m.snap.AttrValueID(v, f.aid)
			if !ok || !val.Equal(f.val) {
				return false
			}
		}
	}
	for _, e := range m.pl.adj[x] {
		var src, dst graph.NodeID
		selfLoop := false
		switch {
		case e.src == x && e.dst == x:
			src, dst = v, v
			selfLoop = true
		case e.src == x:
			dst = m.bind[e.dst]
			if dst == unbound {
				continue
			}
			src = v
		default: // e.dst == x
			src = m.bind[e.src]
			if src == unbound {
				continue
			}
			dst = v
		}
		switch e.lid {
		case labelAbsent:
			return false
		case labelWild:
			if !m.snap.HasAnyEdge(src, dst) {
				return false
			}
		default:
			if covered && !selfLoop {
				// Already enforced by the candidate intersection.
				continue
			}
			if !m.snap.HasEdgeID(src, e.lid, dst) {
				return false
			}
		}
	}
	return true
}

// HostHasCompatibleEdge reports whether h has an edge (src, ι′, dst)
// with ι ⪯ ι′: the exact edge for a concrete pattern label (a
// wildcard-labeled host edge is NOT matched by a concrete pattern label
// under ⪯), any edge for the wildcard. It is the single home of that
// asymmetric rule — the validator's re-check path shares it with the
// matcher.
func HostHasCompatibleEdge(h Host, src graph.NodeID, label graph.Label, dst graph.NodeID) bool {
	if label != graph.Wildcard {
		return h.HasEdge(src, label, dst)
	}
	return h.HasAnyEdge(src, dst)
}
