package pattern

import (
	"sort"

	"gedlib/internal/graph"
)

// Match is a homomorphism h from a pattern to a graph, i.e. the vector
// h(x̄) of Section 2. Distinct variables may map to the same node.
type Match map[Var]graph.NodeID

// Clone returns a copy of m.
func (m Match) Clone() Match {
	c := make(Match, len(m))
	for k, v := range m {
		c[k] = v
	}
	return c
}

// matcher holds the state of one backtracking search.
type matcher struct {
	p     *Pattern
	g     *graph.Graph
	order []Var            // variable binding order
	adj   map[Var][]Edge   // pattern edges incident to each variable
	bind  Match            // current partial assignment
	yield func(Match) bool // returns false to stop enumeration
	stop  func() bool      // polled inside the search; true aborts
	tick  uint32           // amortizes stop polling
	done  bool
}

// stopEvery is how many search steps pass between stop polls: frequent
// enough that a cancelled context aborts even a match-free exponential
// search promptly, rare enough to stay off the hot path.
const stopEvery = 1024

// Plan is a compiled matching plan for one (pattern, graph) pair: the
// variable order and adjacency index are computed once and shared across
// any number of (concurrent) enumerations. Plans are immutable after
// Compile and safe for concurrent use.
type Plan struct {
	p     *Pattern
	g     *graph.Graph
	order []Var
	adj   map[Var][]Edge
}

// Compile prepares a matching plan for p over g.
func Compile(p *Pattern, g *graph.Graph) *Plan {
	pl := &Plan{p: p, g: g, adj: make(map[Var][]Edge, len(p.vars))}
	for _, e := range p.edges {
		pl.adj[e.Src] = append(pl.adj[e.Src], e)
		if e.Dst != e.Src {
			pl.adj[e.Dst] = append(pl.adj[e.Dst], e)
		}
	}
	pl.order = planOrder(p, g)
	return pl
}

// ForEachBound enumerates matches extending the partial assignment pre
// (which may be nil). Pre-bindings violating labels or edges yield no
// matches. The Match passed to yield is reused; clone it to retain it.
func (pl *Plan) ForEachBound(pre Match, yield func(Match) bool) {
	pl.ForEachBoundCancel(pre, nil, yield)
}

// ForEachBoundCancel is ForEachBound with a cooperative abort hook:
// stop (when non-nil) is polled periodically *inside* the backtracking
// search, so even an exponential exploration that never completes a
// match can be cut short. Enumeration ends when stop returns true.
func (pl *Plan) ForEachBoundCancel(pre Match, stop func() bool, yield func(Match) bool) {
	if len(pl.p.vars) == 0 {
		yield(Match{})
		return
	}
	m := &matcher{
		p:     pl.p,
		g:     pl.g,
		adj:   pl.adj,
		bind:  make(Match, len(pl.p.vars)),
		yield: yield,
		stop:  stop,
	}
	for v, n := range pre {
		if !pl.p.HasVar(v) {
			return
		}
		if !m.consistent(v, n) {
			return
		}
		m.bind[v] = n
	}
	if len(pre) == 0 {
		m.order = pl.order
	} else {
		order := make([]Var, 0, len(pl.order))
		for _, v := range pl.order {
			if _, ok := pre[v]; !ok {
				order = append(order, v)
			}
		}
		m.order = order
	}
	m.search(0)
}

// ForEachPivot enumerates matches with the pivot variable successively
// bound to each candidate, reusing one matcher across the whole block —
// the low-overhead primitive behind parallel validation. Candidates that
// violate the pivot's label or incident edges are skipped.
func (pl *Plan) ForEachPivot(pivot Var, cands []graph.NodeID, yield func(Match) bool) {
	pl.ForEachPivotCancel(pivot, cands, nil, yield)
}

// ForEachPivotCancel is ForEachPivot with the cooperative abort hook of
// ForEachBoundCancel.
func (pl *Plan) ForEachPivotCancel(pivot Var, cands []graph.NodeID, stop func() bool, yield func(Match) bool) {
	if !pl.p.HasVar(pivot) {
		return
	}
	m := &matcher{
		p:     pl.p,
		g:     pl.g,
		adj:   pl.adj,
		bind:  make(Match, len(pl.p.vars)),
		yield: yield,
		stop:  stop,
	}
	order := make([]Var, 0, len(pl.order))
	for _, v := range pl.order {
		if v != pivot {
			order = append(order, v)
		}
	}
	m.order = order
	for _, c := range cands {
		if !m.consistent(pivot, c) {
			continue
		}
		m.bind[pivot] = c
		m.search(0)
		delete(m.bind, pivot)
		if m.done {
			return
		}
	}
}

// ForEachMatch enumerates the matches of p in g, invoking yield for each.
// Enumeration stops early when yield returns false. The Match passed to
// yield is reused between invocations; clone it to retain it.
func ForEachMatch(p *Pattern, g *graph.Graph, yield func(Match) bool) {
	Compile(p, g).ForEachBound(nil, yield)
}

// ForEachMatchCancel is ForEachMatch with the cooperative abort hook of
// ForEachBoundCancel.
func ForEachMatchCancel(p *Pattern, g *graph.Graph, stop func() bool, yield func(Match) bool) {
	Compile(p, g).ForEachBoundCancel(nil, stop, yield)
}

// ForEachMatchBound enumerates the matches of p in g extending the
// partial assignment pre. For repeated enumeration over one graph,
// Compile once and use Plan.ForEachBound.
func ForEachMatchBound(p *Pattern, g *graph.Graph, pre Match, yield func(Match) bool) {
	Compile(p, g).ForEachBound(pre, yield)
}

// FindMatches returns up to limit matches of p in g; limit <= 0 means all.
func FindMatches(p *Pattern, g *graph.Graph, limit int) []Match {
	var out []Match
	ForEachMatch(p, g, func(m Match) bool {
		out = append(out, m.Clone())
		return limit <= 0 || len(out) < limit
	})
	return out
}

// HasMatch reports whether p has at least one match in g.
func HasMatch(p *Pattern, g *graph.Graph) bool {
	found := false
	ForEachMatch(p, g, func(Match) bool {
		found = true
		return false
	})
	return found
}

// CountMatches returns the number of matches of p in g.
func CountMatches(p *Pattern, g *graph.Graph) int {
	n := 0
	ForEachMatch(p, g, func(Match) bool {
		n++
		return true
	})
	return n
}

// planOrder chooses a variable binding order: the variable with the
// fewest label candidates first, then greedily any variable connected to
// an already-ordered one (preferring small candidate sets), so that
// adjacency can prune candidates. Disconnected components are started at
// their most selective variable.
func planOrder(p *Pattern, g *graph.Graph) []Var {
	candCount := func(x Var) int {
		l := p.labels[x]
		if l == graph.Wildcard {
			return g.NumNodes()
		}
		return len(g.NodesWithLabel(l))
	}
	neighbors := make(map[Var][]Var, len(p.vars))
	for _, e := range p.edges {
		if e.Src != e.Dst {
			neighbors[e.Src] = append(neighbors[e.Src], e.Dst)
			neighbors[e.Dst] = append(neighbors[e.Dst], e.Src)
		}
	}
	ordered := make([]Var, 0, len(p.vars))
	placed := make(map[Var]bool, len(p.vars))
	frontier := make(map[Var]bool)

	remaining := append([]Var(nil), p.vars...)
	sort.Slice(remaining, func(i, j int) bool {
		ci, cj := candCount(remaining[i]), candCount(remaining[j])
		if ci != cj {
			return ci < cj
		}
		return remaining[i] < remaining[j]
	})

	place := func(x Var) {
		ordered = append(ordered, x)
		placed[x] = true
		delete(frontier, x)
		for _, y := range neighbors[x] {
			if !placed[y] {
				frontier[y] = true
			}
		}
	}

	for len(ordered) < len(p.vars) {
		var next Var
		if len(frontier) > 0 {
			best := -1
			for x := range frontier {
				c := candCount(x)
				if best < 0 || c < best || (c == best && x < next) {
					best, next = c, x
				}
			}
		} else {
			for _, x := range remaining {
				if !placed[x] {
					next = x
					break
				}
			}
		}
		place(next)
	}
	return ordered
}

// search binds the variable at position i of the order and recurses.
func (m *matcher) search(i int) {
	if m.done {
		return
	}
	if m.stop != nil {
		m.tick++
		if m.tick%stopEvery == 0 && m.stop() {
			m.done = true
			return
		}
	}
	if i == len(m.order) {
		if !m.yield(m.bind) {
			m.done = true
		}
		return
	}
	x := m.order[i]
	for _, v := range m.candidates(x) {
		if !m.consistent(x, v) {
			continue
		}
		m.bind[x] = v
		m.search(i + 1)
		delete(m.bind, x)
		if m.done {
			return
		}
	}
}

// candidates returns the nodes that x may be bound to, using a bound
// neighbor's adjacency when available and the label index otherwise.
func (m *matcher) candidates(x Var) []graph.NodeID {
	lbl := m.p.labels[x]
	// Prefer deriving candidates from a bound neighbor: follow the
	// pattern edge from/to the bound node.
	for _, e := range m.adj[x] {
		if e.Src == x && e.Dst != x {
			if v, ok := m.bind[e.Dst]; ok {
				return sources(m.g.In(v), e.Label, lbl, m.g)
			}
		}
		if e.Dst == x && e.Src != x {
			if v, ok := m.bind[e.Src]; ok {
				return targets(m.g.Out(v), e.Label, lbl, m.g)
			}
		}
	}
	return m.g.CandidateNodes(lbl)
}

// sources collects the ⪯-compatible sources of edges in `in` whose label
// matches elabel, filtered by the node label nlabel. Deduplication scans
// the (short) result slice instead of allocating a set: adjacency lists
// of real patterns are small and this sits on the matcher's hot path.
func sources(in []graph.Edge, elabel, nlabel graph.Label, g *graph.Graph) []graph.NodeID {
	var out []graph.NodeID
	for _, e := range in {
		if !graph.LabelMatches(elabel, e.Label) {
			continue
		}
		if containsNode(out, e.Src) {
			continue
		}
		if graph.LabelMatches(nlabel, g.Label(e.Src)) {
			out = append(out, e.Src)
		}
	}
	return out
}

// targets collects the ⪯-compatible targets of edges in `out` whose label
// matches elabel, filtered by the node label nlabel.
func targets(outE []graph.Edge, elabel, nlabel graph.Label, g *graph.Graph) []graph.NodeID {
	var out []graph.NodeID
	for _, e := range outE {
		if !graph.LabelMatches(elabel, e.Label) {
			continue
		}
		if containsNode(out, e.Dst) {
			continue
		}
		if graph.LabelMatches(nlabel, g.Label(e.Dst)) {
			out = append(out, e.Dst)
		}
	}
	return out
}

func containsNode(xs []graph.NodeID, n graph.NodeID) bool {
	for _, x := range xs {
		if x == n {
			return true
		}
	}
	return false
}

// consistent checks label compatibility of binding x↦v and every pattern
// edge between x and already-bound variables (including self-loops).
func (m *matcher) consistent(x Var, v graph.NodeID) bool {
	if !graph.LabelMatches(m.p.labels[x], m.g.Label(v)) {
		return false
	}
	for _, e := range m.adj[x] {
		var src, dst graph.NodeID
		var ok bool
		switch {
		case e.Src == x && e.Dst == x:
			src, dst, ok = v, v, true
		case e.Src == x:
			dst, ok = m.bind[e.Dst]
			src = v
		default: // e.Dst == x
			src, ok = m.bind[e.Src]
			dst = v
		}
		if !ok {
			continue
		}
		if !m.hasCompatibleEdge(src, e.Label, dst) {
			return false
		}
	}
	return true
}

// hasCompatibleEdge reports whether g has an edge (src, ι′, dst) with
// ι ⪯ ι′.
func (m *matcher) hasCompatibleEdge(src graph.NodeID, label graph.Label, dst graph.NodeID) bool {
	if label != graph.Wildcard {
		if m.g.HasEdge(src, label, dst) {
			return true
		}
		// A wildcard-labeled host edge is NOT matched by a concrete
		// pattern label under ⪯; no fallback.
		return false
	}
	for _, e := range m.g.Out(src) {
		if e.Dst == dst {
			return true
		}
	}
	return false
}
