// Package pattern implements graph patterns Q[x̄] and homomorphism-based
// graph pattern matching, as defined in Section 2 of "Dependencies for
// Graphs" (Fan & Lu, PODS 2017).
//
// A pattern is a directed graph whose nodes are variables carrying labels
// (possibly the wildcard '_'), and whose edges carry labels (possibly the
// wildcard). A match of Q[x̄] in a graph G is a homomorphism h from Q to
// G with L_Q(u) ⪯ L(h(u)) for every pattern node u, and for every pattern
// edge (u, ι, u′) an edge (h(u), ι′, h(u′)) in G with ι ⪯ ι′.
//
// The paper deliberately adopts homomorphism rather than subgraph
// isomorphism so that GFDs and GKeys can be expressed uniformly: distinct
// variables may map to the same node.
package pattern

import (
	"fmt"
	"sort"
	"strings"

	"gedlib/internal/graph"
)

// Var is a pattern variable, i.e. an element of the variable list x̄.
type Var string

// Edge is a directed pattern edge between two variables.
type Edge struct {
	Src   Var
	Label graph.Label
	Dst   Var
}

// Pattern is a graph pattern Q[x̄] = (V_Q, E_Q, L_Q). Variables are kept
// in insertion order; that order is the paper's list x̄.
type Pattern struct {
	vars   []Var
	labels map[Var]graph.Label
	edges  []Edge
}

// New returns an empty pattern.
func New() *Pattern {
	return &Pattern{labels: make(map[Var]graph.Label)}
}

// AddVar adds variable x with the given label. Adding an existing
// variable with a different label panics: patterns assign one label per
// variable.
func (p *Pattern) AddVar(x Var, label graph.Label) *Pattern {
	if old, ok := p.labels[x]; ok {
		if old != label {
			panic(fmt.Sprintf("pattern: variable %s relabeled %s -> %s", x, old, label))
		}
		return p
	}
	p.vars = append(p.vars, x)
	p.labels[x] = label
	return p
}

// AddEdge adds the pattern edge (src, label, dst). Both endpoints must
// already be variables of the pattern; unknown endpoints are added with
// the wildcard label for convenience.
func (p *Pattern) AddEdge(src Var, label graph.Label, dst Var) *Pattern {
	if _, ok := p.labels[src]; !ok {
		p.AddVar(src, graph.Wildcard)
	}
	if _, ok := p.labels[dst]; !ok {
		p.AddVar(dst, graph.Wildcard)
	}
	p.edges = append(p.edges, Edge{Src: src, Label: label, Dst: dst})
	return p
}

// Vars returns the variable list x̄ in insertion order. Callers must not
// mutate the returned slice.
func (p *Pattern) Vars() []Var { return p.vars }

// HasVar reports whether x is a variable of the pattern.
func (p *Pattern) HasVar(x Var) bool {
	_, ok := p.labels[x]
	return ok
}

// Label returns the label of variable x, or the wildcard if x is not a
// variable of p.
func (p *Pattern) Label(x Var) graph.Label {
	if l, ok := p.labels[x]; ok {
		return l
	}
	return graph.Wildcard
}

// Edges returns the pattern edges in insertion order. Callers must not
// mutate the returned slice.
func (p *Pattern) Edges() []Edge { return p.edges }

// NumVars returns |V_Q|.
func (p *Pattern) NumVars() int { return len(p.vars) }

// Size returns |Q| = |V_Q| + |E_Q|.
func (p *Pattern) Size() int { return len(p.vars) + len(p.edges) }

// Clone returns a deep copy of p.
func (p *Pattern) Clone() *Pattern {
	c := New()
	for _, x := range p.vars {
		c.AddVar(x, p.labels[x])
	}
	c.edges = append(c.edges, p.edges...)
	return c
}

// Copy returns a copy of p with every variable x renamed to rename(x),
// together with the bijection used. It implements the paper's notion of
// a pattern copy via a bijection f: x̄ → ȳ (Section 2), used to build
// GKeys. The rename function must be injective and must produce variables
// disjoint from those of p; Copy panics otherwise.
func (p *Pattern) Copy(rename func(Var) Var) (*Pattern, map[Var]Var) {
	c := New()
	f := make(map[Var]Var, len(p.vars))
	seen := make(map[Var]bool, len(p.vars))
	for _, x := range p.vars {
		y := rename(x)
		if p.HasVar(y) {
			panic(fmt.Sprintf("pattern: copy variable %s collides with original", y))
		}
		if seen[y] {
			panic(fmt.Sprintf("pattern: rename not injective at %s", y))
		}
		seen[y] = true
		f[x] = y
		c.AddVar(y, p.labels[x])
	}
	for _, e := range p.edges {
		c.AddEdge(f[e.Src], e.Label, f[e.Dst])
	}
	return c, f
}

// Union returns the pattern consisting of p and q side by side. Shared
// variables must carry compatible labels; a wildcard resolves to the
// concrete label (incompatible concrete labels panic). Edge lists are
// concatenated. Union builds the composite patterns of GKeys and the
// canonical graphs of satisfiability analysis.
func Union(p, q *Pattern) *Pattern {
	u := p.Clone()
	for _, x := range q.vars {
		ql := q.labels[x]
		if ul, ok := u.labels[x]; ok {
			if !graph.LabelsCompatible(ul, ql) {
				panic(fmt.Sprintf("pattern: union label conflict at %s: %s vs %s", x, ul, ql))
			}
			u.labels[x] = graph.ResolveLabels(ul, ql)
			continue
		}
		u.AddVar(x, ql)
	}
	u.edges = append(u.edges, q.edges...)
	return u
}

// ToGraph materializes the pattern as a graph — the canonical graph G_Q
// of Section 5.2, with an empty attribute map — and returns the mapping
// from variables to node ids.
func (p *Pattern) ToGraph() (*graph.Graph, map[Var]graph.NodeID) {
	g := graph.New()
	m := make(map[Var]graph.NodeID, len(p.vars))
	for _, x := range p.vars {
		m[x] = g.AddNode(p.labels[x])
	}
	for _, e := range p.edges {
		g.AddEdge(m[e.Src], e.Label, m[e.Dst])
	}
	return g, m
}

// String renders the pattern in the DSL's edge-list syntax.
func (p *Pattern) String() string {
	var b strings.Builder
	mentioned := make(map[Var]bool)
	first := true
	writeNode := func(x Var) {
		if mentioned[x] {
			fmt.Fprintf(&b, "(%s)", x)
		} else {
			fmt.Fprintf(&b, "(%s:%s)", x, p.labels[x])
			mentioned[x] = true
		}
	}
	for _, e := range p.edges {
		if !first {
			b.WriteString(", ")
		}
		first = false
		writeNode(e.Src)
		fmt.Fprintf(&b, "-[%s]->", e.Label)
		writeNode(e.Dst)
	}
	isolated := make([]Var, 0)
	for _, x := range p.vars {
		used := false
		for _, e := range p.edges {
			if e.Src == x || e.Dst == x {
				used = true
				break
			}
		}
		if !used {
			isolated = append(isolated, x)
		}
	}
	sort.Slice(isolated, func(i, j int) bool { return isolated[i] < isolated[j] })
	for _, x := range isolated {
		if !first {
			b.WriteString(", ")
		}
		first = false
		writeNode(x)
	}
	return b.String()
}
