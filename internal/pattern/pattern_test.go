package pattern

import (
	"testing"

	"gedlib/internal/graph"
)

func TestBuildPattern(t *testing.T) {
	p := New()
	p.AddVar("x", "person").AddVar("y", "product")
	p.AddEdge("x", "create", "y")
	if p.NumVars() != 2 || len(p.Edges()) != 1 || p.Size() != 3 {
		t.Fatalf("pattern shape wrong: %d vars, %d edges", p.NumVars(), len(p.Edges()))
	}
	if p.Label("x") != "person" || p.Label("y") != "product" {
		t.Error("labels wrong")
	}
	if p.Label("zzz") != graph.Wildcard {
		t.Error("unknown var label should be wildcard")
	}
	if got := []Var{p.Vars()[0], p.Vars()[1]}; got[0] != "x" || got[1] != "y" {
		t.Error("var order must be insertion order")
	}
}

func TestAddEdgeAutoVars(t *testing.T) {
	p := New()
	p.AddEdge("a", "e", "b")
	if !p.HasVar("a") || !p.HasVar("b") {
		t.Error("endpoints must be auto-added")
	}
	if p.Label("a") != graph.Wildcard {
		t.Error("auto-added vars are wildcard-labeled")
	}
}

func TestRelabelPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("expected panic on relabel")
		}
	}()
	New().AddVar("x", "a").AddVar("x", "b")
}

func TestCopyBijection(t *testing.T) {
	p := New()
	p.AddVar("x", "album").AddVar("x2", "artist")
	p.AddEdge("x", "by", "x2")
	c, f := p.Copy(func(v Var) Var { return "y_" + v })
	if f["x"] != "y_x" || f["x2"] != "y_x2" {
		t.Fatalf("bijection wrong: %v", f)
	}
	if c.Label("y_x") != "album" || c.Label("y_x2") != "artist" {
		t.Error("copy labels wrong")
	}
	if len(c.Edges()) != 1 || c.Edges()[0] != (Edge{"y_x", "by", "y_x2"}) {
		t.Error("copy edges wrong")
	}
	// Originals untouched.
	if p.HasVar("y_x") {
		t.Error("copy mutated original")
	}
}

func TestCopyCollisionPanics(t *testing.T) {
	p := New()
	p.AddVar("x", "a").AddVar("y_x", "a")
	defer func() {
		if recover() == nil {
			t.Error("expected panic on colliding rename")
		}
	}()
	p.Copy(func(v Var) Var { return "y_" + v })
}

func TestUnion(t *testing.T) {
	p := New()
	p.AddVar("x", "a")
	q := New()
	q.AddVar("y", "b")
	q.AddEdge("y", "e", "x") // shares x, which union adds as wildcard first? No: q auto-adds x wildcard.
	u := Union(p, q)
	if u.NumVars() != 2 {
		t.Fatalf("union vars = %d, want 2", u.NumVars())
	}
	if u.Label("x") != "a" {
		t.Error("union must keep p's concrete label for shared var")
	}
}

func TestToGraph(t *testing.T) {
	p := New()
	p.AddVar("x", "person").AddVar("y", graph.Wildcard)
	p.AddEdge("x", "likes", "y")
	g, m := p.ToGraph()
	if g.NumNodes() != 2 || g.NumEdges() != 1 {
		t.Fatal("canonical graph shape wrong")
	}
	if g.Label(m["x"]) != "person" || g.Label(m["y"]) != graph.Wildcard {
		t.Error("canonical graph labels wrong")
	}
	if !g.HasEdge(m["x"], "likes", m["y"]) {
		t.Error("canonical graph edge missing")
	}
	if len(g.Attrs(m["x"])) != 0 {
		t.Error("canonical graph must have empty F_A")
	}
}

// triangleGraph returns K3^sym: three c-nodes with all six directed edges.
func triangleGraph() *graph.Graph {
	g := graph.New()
	var ids []graph.NodeID
	for i := 0; i < 3; i++ {
		ids = append(ids, g.AddNode("c"))
	}
	for i := 0; i < 3; i++ {
		for j := 0; j < 3; j++ {
			if i != j {
				g.AddEdge(ids[i], "e", ids[j])
			}
		}
	}
	return g
}

func TestMatchSimpleEdge(t *testing.T) {
	g := graph.New()
	p1 := g.AddNode("person")
	pr := g.AddNode("product")
	p2 := g.AddNode("person")
	g.AddEdge(p1, "create", pr)
	g.AddEdge(p2, "like", pr)

	q := New()
	q.AddVar("x", "person").AddVar("y", "product")
	q.AddEdge("x", "create", "y")

	ms := FindMatches(q, g, 0)
	if len(ms) != 1 {
		t.Fatalf("got %d matches, want 1", len(ms))
	}
	if ms[0]["x"] != p1 || ms[0]["y"] != pr {
		t.Errorf("match wrong: %v", ms[0])
	}
}

func TestMatchHomomorphismNotInjective(t *testing.T) {
	// Two pattern variables may map to the same node: this is the crux of
	// the paper's homomorphism semantics (the "UoE" example, Section 3).
	g := graph.New()
	u := g.AddNode("UoE")
	q := New()
	q.AddVar("x", "UoE").AddVar("y", "UoE")
	ms := FindMatches(q, g, 0)
	if len(ms) != 1 {
		t.Fatalf("got %d matches, want 1", len(ms))
	}
	if ms[0]["x"] != u || ms[0]["y"] != u {
		t.Error("both variables must map to the single node")
	}
}

func TestMatchWildcardNodeLabel(t *testing.T) {
	g := graph.New()
	a := g.AddNode("bird")
	b := g.AddNode("moa")
	g.AddEdge(b, "is_a", a)
	q := New()
	q.AddVar("x", graph.Wildcard).AddVar("y", graph.Wildcard)
	q.AddEdge("y", "is_a", "x")
	ms := FindMatches(q, g, 0)
	if len(ms) != 1 {
		t.Fatalf("got %d matches, want 1", len(ms))
	}
	if ms[0]["y"] != b || ms[0]["x"] != a {
		t.Error("wildcard match wrong")
	}
}

func TestConcreteLabelDoesNotMatchWildcardNode(t *testing.T) {
	// In canonical graphs nodes may be labeled '_'; a concretely-labeled
	// pattern variable must not match them (⪯ is asymmetric).
	g := graph.New()
	g.AddNode(graph.Wildcard)
	q := New()
	q.AddVar("x", "person")
	if HasMatch(q, g) {
		t.Error("concrete label must not match wildcard node")
	}
	q2 := New()
	q2.AddVar("x", graph.Wildcard)
	if !HasMatch(q2, g) {
		t.Error("wildcard label must match wildcard node")
	}
}

func TestMatchWildcardEdgeLabel(t *testing.T) {
	g := graph.New()
	a := g.AddNode("x")
	b := g.AddNode("y")
	g.AddEdge(a, "anything", b)
	q := New()
	q.AddVar("u", "x").AddVar("v", "y")
	q.AddEdge("u", graph.Wildcard, "v")
	if !HasMatch(q, g) {
		t.Error("wildcard edge label must match any edge")
	}
	q2 := New()
	q2.AddVar("u", "x").AddVar("v", "y")
	q2.AddEdge("u", "other", "v")
	if HasMatch(q2, g) {
		t.Error("concrete edge label must not match different label")
	}
}

func TestConcreteEdgeLabelDoesNotMatchWildcardEdge(t *testing.T) {
	g := graph.New()
	a := g.AddNode("x")
	b := g.AddNode("y")
	g.AddEdge(a, graph.Wildcard, b)
	q := New()
	q.AddVar("u", "x").AddVar("v", "y")
	q.AddEdge("u", "e", "v")
	if HasMatch(q, g) {
		t.Error("concrete edge label must not match wildcard host edge")
	}
}

func TestTriangleColorings(t *testing.T) {
	// Homomorphisms from a single undirected edge (both directions) into
	// K3^sym are the ordered pairs of distinct colors: 6 of them.
	g := triangleGraph()
	q := New()
	q.AddVar("u", "c").AddVar("v", "c")
	q.AddEdge("u", "e", "v")
	q.AddEdge("v", "e", "u")
	if n := CountMatches(q, g); n != 6 {
		t.Errorf("edge into K3: %d matches, want 6", n)
	}
	// A path of two edges: 3*2*2 = 12 homomorphisms.
	q2 := New()
	q2.AddVar("a", "c").AddVar("b", "c").AddVar("c", "c")
	q2.AddEdge("a", "e", "b")
	q2.AddEdge("b", "e", "c")
	if n := CountMatches(q2, g); n != 12 {
		t.Errorf("path into K3: %d matches, want 12", n)
	}
	// Triangle into K3^sym: 3! = 6 proper colorings.
	q3 := New()
	q3.AddVar("a", "c").AddVar("b", "c").AddVar("d", "c")
	for _, e := range [][2]Var{{"a", "b"}, {"b", "d"}, {"a", "d"}} {
		q3.AddEdge(e[0], "e", e[1])
		q3.AddEdge(e[1], "e", e[0])
	}
	if n := CountMatches(q3, g); n != 6 {
		t.Errorf("triangle into K3: %d matches, want 6", n)
	}
}

func TestSelfLoopPattern(t *testing.T) {
	g := graph.New()
	a := g.AddNode("x")
	b := g.AddNode("x")
	g.AddEdge(a, "e", a)
	g.AddEdge(a, "e", b)
	q := New()
	q.AddVar("u", "x")
	q.AddEdge("u", "e", "u")
	ms := FindMatches(q, g, 0)
	if len(ms) != 1 || ms[0]["u"] != a {
		t.Errorf("self-loop matches: %v", ms)
	}
}

func TestEmptyPattern(t *testing.T) {
	g := graph.New()
	g.AddNode("x")
	ms := FindMatches(New(), g, 0)
	if len(ms) != 1 {
		t.Errorf("empty pattern must have exactly one match, got %d", len(ms))
	}
}

func TestIsolatedVariables(t *testing.T) {
	g := graph.New()
	g.AddNode("a")
	g.AddNode("a")
	g.AddNode("b")
	q := New()
	q.AddVar("x", "a").AddVar("y", "b")
	if n := CountMatches(q, g); n != 2 {
		t.Errorf("isolated vars: %d matches, want 2", n)
	}
}

func TestNoMatchMissingEdge(t *testing.T) {
	g := graph.New()
	a := g.AddNode("x")
	b := g.AddNode("y")
	g.AddEdge(a, "e", b)
	q := New()
	q.AddVar("u", "x").AddVar("v", "y")
	q.AddEdge("v", "e", "u") // reversed direction
	if HasMatch(q, g) {
		t.Error("direction must be respected")
	}
}

func TestFindMatchesLimit(t *testing.T) {
	g := graph.New()
	for i := 0; i < 10; i++ {
		g.AddNode("a")
	}
	q := New()
	q.AddVar("x", "a")
	if n := len(FindMatches(q, g, 3)); n != 3 {
		t.Errorf("limit: got %d, want 3", n)
	}
	if n := len(FindMatches(q, g, 0)); n != 10 {
		t.Errorf("no limit: got %d, want 10", n)
	}
}

func TestForEachMatchEarlyStop(t *testing.T) {
	g := graph.New()
	for i := 0; i < 100; i++ {
		g.AddNode("a")
	}
	q := New()
	q.AddVar("x", "a")
	calls := 0
	ForEachMatch(q, g, func(Match) bool {
		calls++
		return calls < 5
	})
	if calls != 5 {
		t.Errorf("early stop: %d calls, want 5", calls)
	}
}

func TestMatchReuseRequiresClone(t *testing.T) {
	g := graph.New()
	g.AddNode("a")
	g.AddNode("a")
	q := New()
	q.AddVar("x", "a")
	var kept []Match
	ForEachMatch(q, g, func(m Match) bool {
		kept = append(kept, m.Clone())
		return true
	})
	if len(kept) != 2 || kept[0]["x"] == kept[1]["x"] {
		t.Error("cloned matches must be independent")
	}
}

func TestDisconnectedPatternComponents(t *testing.T) {
	g := graph.New()
	a := g.AddNode("x")
	b := g.AddNode("y")
	c := g.AddNode("p")
	d := g.AddNode("q")
	g.AddEdge(a, "e", b)
	g.AddEdge(c, "f", d)
	q := New()
	q.AddVar("u", "x").AddVar("v", "y").AddVar("s", "p").AddVar("t", "q")
	q.AddEdge("u", "e", "v")
	q.AddEdge("s", "f", "t")
	ms := FindMatches(q, g, 0)
	if len(ms) != 1 {
		t.Fatalf("got %d matches, want 1", len(ms))
	}
}

func TestPatternString(t *testing.T) {
	p := New()
	p.AddVar("x", "person").AddVar("y", "product")
	p.AddEdge("x", "create", "y")
	want := "(x:person)-[create]->(y:product)"
	if got := p.String(); got != want {
		t.Errorf("String() = %q, want %q", got, want)
	}
}

func TestCloneIndependent(t *testing.T) {
	p := New()
	p.AddVar("x", "a")
	c := p.Clone()
	c.AddVar("y", "b")
	c.AddEdge("x", "e", "y")
	if p.HasVar("y") || len(p.Edges()) != 0 {
		t.Error("clone mutated original")
	}
}

// TestLargeCycleMatch exercises the matcher on a directed cycle pattern
// against a cycle host: a directed n-cycle has exactly n homomorphisms
// into itself (the rotations).
func TestLargeCycleMatch(t *testing.T) {
	const n = 8
	g := graph.New()
	ids := make([]graph.NodeID, n)
	for i := range ids {
		ids[i] = g.AddNode("v")
	}
	for i := range ids {
		g.AddEdge(ids[i], "e", ids[(i+1)%n])
	}
	q := New()
	vars := make([]Var, n)
	for i := range vars {
		vars[i] = Var(rune('a' + i))
		q.AddVar(vars[i], "v")
	}
	for i := range vars {
		q.AddEdge(vars[i], "e", vars[(i+1)%n])
	}
	if got := CountMatches(q, g); got != n {
		t.Errorf("cycle homs = %d, want %d", got, n)
	}
}
