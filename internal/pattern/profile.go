package pattern

import (
	"fmt"
	"strings"

	"gedlib/internal/obs"
)

// SetProfile attaches a profiler sink to the plan: every enumeration
// flushes its tallies — candidates examined, intersection vs probe
// steps, bindings materialized — into ms when the matcher returns to
// the pool (one batch of atomic adds per enumeration, so the per-step
// accounting stays plain integer arithmetic). The sink is carried
// across Rebind, so a validator that rebases per delta keeps one
// accumulating profile per rule. nil detaches.
func (pl *Plan) SetProfile(ms *obs.MatchStats) { pl.prof = ms }

// Profile returns the plan's attached profiler sink, or nil.
func (pl *Plan) Profile() *obs.MatchStats { return pl.prof }

// Fingerprint renders the compiled plan's identity compactly: the
// variable binding order, the extension strategy, and how many
// constant literals were pushed down — enough to tell from metrics
// alone which plan shape a rule is running, and to notice when a
// recompile changed it.
func (pl *Plan) Fingerprint() string {
	var b strings.Builder
	for i, vi := range pl.order {
		if i > 0 {
			b.WriteByte(',')
		}
		b.WriteString(string(pl.vars[vi]))
	}
	if pl.probe {
		b.WriteString(";probe")
	} else {
		b.WriteString(";isect")
	}
	nf := 0
	for _, fs := range pl.varFilt {
		nf += len(fs)
	}
	if nf > 0 {
		fmt.Fprintf(&b, ";push=%d", nf)
	}
	return b.String()
}

// flushProfile adds one enumeration's tallies to the plan's sink and
// zeroes them for the matcher's next pooled use.
func (pl *Plan) flushProfile(m *matcher) {
	if ms := pl.prof; ms != nil {
		ms.Candidates.Add(m.nCand)
		ms.IntersectSteps.Add(m.nIsect)
		ms.ProbeSteps.Add(m.nProbe)
		ms.Bindings.Add(m.nBind)
	}
	m.nCand, m.nIsect, m.nProbe, m.nBind = 0, 0, 0, 0
}
