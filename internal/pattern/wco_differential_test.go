package pattern_test

// Differential tests for the worst-case-optimal extension step: the
// intersection path (multi-way sorted-run intersection with pushed-down
// literal postings) must enumerate exactly the same match sets as the
// legacy scan-and-probe path, on both hosts, across generated cyclic
// workloads — triangles, diamonds, 4-cliques, wildcard edges and
// self-loops, the shapes where the two extension strategies diverge
// most. testing/quick drives the seeds; CI runs the package under
// -race, which also guards the pooled intersection scratch.

import (
	"math/rand"
	"testing"
	"testing/quick"

	"gedlib/internal/gen"
	"gedlib/internal/graph"
	"gedlib/internal/pattern"
)

var (
	wcoLabels = []graph.Label{"a", "b", "c"}
	wcoAttrs  = []graph.Attr{"p", "q"}
)

// cyclicPatterns builds the dense shapes from one seed: a triangle, a
// diamond, a 4-clique, plus variants with wildcard labels and a
// self-loop, each over labels drawn from the workload vocabulary.
func cyclicPatterns(seed int64) []*pattern.Pattern {
	rng := rand.New(rand.NewSource(seed))
	lbl := func() graph.Label {
		if rng.Intn(4) == 0 {
			return graph.Wildcard
		}
		return wcoLabels[rng.Intn(len(wcoLabels))]
	}
	elbl := func() graph.Label {
		if rng.Intn(4) == 0 {
			return graph.Wildcard
		}
		return "e"
	}
	var ps []*pattern.Pattern

	tri := pattern.New()
	tri.AddVar("x", lbl()).AddVar("y", lbl()).AddVar("z", lbl())
	tri.AddEdge("x", elbl(), "y").AddEdge("y", elbl(), "z").AddEdge("x", elbl(), "z")
	ps = append(ps, tri)

	dia := pattern.New()
	dia.AddVar("x", lbl()).AddVar("y", lbl()).AddVar("z", lbl()).AddVar("w", lbl())
	dia.AddEdge("x", elbl(), "y").AddEdge("x", elbl(), "z")
	dia.AddEdge("y", elbl(), "w").AddEdge("z", elbl(), "w")
	ps = append(ps, dia)

	clique := pattern.New()
	vars := []pattern.Var{"x", "y", "z", "w"}
	for _, v := range vars {
		clique.AddVar(v, lbl())
	}
	for i := range vars {
		for j := range vars {
			if i != j && rng.Intn(2) == 0 {
				clique.AddEdge(vars[i], elbl(), vars[j])
			}
		}
	}
	clique.AddEdge(vars[0], elbl(), vars[1]) // never edgeless
	ps = append(ps, clique)

	loop := pattern.New()
	loop.AddVar("x", lbl()).AddVar("y", lbl())
	loop.AddEdge("x", elbl(), "x").AddEdge("x", elbl(), "y").AddEdge("y", elbl(), "x")
	ps = append(ps, loop)

	return ps
}

// wcoHost builds a host graph dense enough that cyclic patterns close:
// a seeded random property graph with self-loops and triangles mixed
// in.
func wcoHost(seed int64) *graph.Graph {
	g := gen.RandomPropertyGraph(seed, 40, 3.5, wcoLabels, wcoAttrs, 3)
	rng := rand.New(rand.NewSource(seed ^ 0x5ca1ab1e))
	n := g.NumNodes()
	for i := 0; i < n/2; i++ {
		a, b, c := graph.NodeID(rng.Intn(n)), graph.NodeID(rng.Intn(n)), graph.NodeID(rng.Intn(n))
		g.AddEdge(a, "e", b)
		g.AddEdge(b, "e", c)
		g.AddEdge(a, "e", c)
	}
	g.AddEdge(graph.NodeID(rng.Intn(n)), "e", graph.NodeID(rng.Intn(n)))
	g.AddEdge(0, "e", 0) // at least one host self-loop
	return g
}

// TestIntersectionMatchesProbe: on both hosts, for dense cyclic
// patterns, the intersection path and the probe path enumerate the
// same match sets.
func TestIntersectionMatchesProbe(t *testing.T) {
	f := func(seed int64) bool {
		seed %= 1_000_000
		g := wcoHost(seed)
		snap := g.Freeze()
		for _, p := range cyclicPatterns(seed) {
			for _, host := range []pattern.Host{g, snap} {
				var probe, isect []pattern.Match
				pattern.CompileProbe(p, host).ForEachBound(nil, func(m pattern.Match) bool {
					probe = append(probe, m.Clone())
					return true
				})
				pattern.Compile(p, host).ForEachBound(nil, func(m pattern.Match) bool {
					isect = append(isect, m.Clone())
					return true
				})
				if !sameCanon(canonMatches(p, probe), canonMatches(p, isect)) {
					t.Logf("seed %d host %T pattern %s: probe %d matches, intersection %d",
						seed, host, p, len(probe), len(isect))
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Fatal(err)
	}
}

// TestFilteredMatchesPostFilter: a plan with pushed-down constant
// literals enumerates exactly the probe-path matches that survive
// checking those literals post-match — on both hosts, including
// filters over absent attributes and values.
func TestFilteredMatchesPostFilter(t *testing.T) {
	f := func(seed int64) bool {
		seed %= 1_000_000
		g := wcoHost(seed)
		snap := g.Freeze()
		rng := rand.New(rand.NewSource(seed + 7))
		for _, p := range cyclicPatterns(seed) {
			vars := p.Vars()
			var filters []pattern.ConstFilter
			for _, v := range vars {
				if rng.Intn(2) == 0 {
					continue
				}
				a := wcoAttrs[rng.Intn(len(wcoAttrs))]
				val := graph.Value(graph.Int(rng.Intn(4))) // domain is 3: value 3 is absent
				if rng.Intn(8) == 0 {
					a = "ghost" // attribute no node carries
				}
				filters = append(filters, pattern.ConstFilter{Var: v, Attr: a, Value: val})
			}
			holds := func(h pattern.Host, m pattern.Match) bool {
				for _, f := range filters {
					got, ok := h.Attr(m[f.Var], f.Attr)
					if !ok || !got.Equal(f.Value) {
						return false
					}
				}
				return true
			}
			for _, host := range []pattern.Host{g, snap} {
				var want, got []pattern.Match
				pattern.CompileProbe(p, host).ForEachBound(nil, func(m pattern.Match) bool {
					if holds(host, m) {
						want = append(want, m.Clone())
					}
					return true
				})
				pattern.CompileFiltered(p, host, filters).ForEachBound(nil, func(m pattern.Match) bool {
					got = append(got, m.Clone())
					return true
				})
				if !sameCanon(canonMatches(p, want), canonMatches(p, got)) {
					t.Logf("seed %d host %T pattern %s filters %v: want %d matches, got %d",
						seed, host, p, filters, len(want), len(got))
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Fatal(err)
	}
}

// TestPivotRoutesThroughIntersection is the pivoted re-check
// regression: ForEachPivot over a filtered plan must enumerate exactly
// the probe-path pivot matches surviving the literal post-filter, for
// both sorted candidate blocks (pre-intersected with the pivot's
// postings) and unsorted ones (per-candidate filtering) — the shapes
// ValidateTouching and the parallel validator feed it.
func TestPivotRoutesThroughIntersection(t *testing.T) {
	f := func(seed int64) bool {
		seed %= 1_000_000
		g := wcoHost(seed)
		snap := g.Freeze()
		rng := rand.New(rand.NewSource(seed + 13))
		for _, p := range cyclicPatterns(seed) {
			vars := p.Vars()
			pivot := vars[rng.Intn(len(vars))]
			filters := []pattern.ConstFilter{
				{Var: pivot, Attr: wcoAttrs[rng.Intn(len(wcoAttrs))], Value: graph.Int(rng.Intn(3))},
			}
			// A sorted block (every node, ascending) and an unsorted,
			// duplicate-carrying block of touched nodes.
			sorted := append([]graph.NodeID(nil), snap.Nodes()...)
			unsorted := make([]graph.NodeID, 0, 8)
			for i := 0; i < 8; i++ {
				unsorted = append(unsorted, graph.NodeID(rng.Intn(g.NumNodes())))
			}
			for _, cands := range [][]graph.NodeID{sorted, unsorted} {
				var want, got []pattern.Match
				pattern.CompileProbe(p, snap).ForEachPivot(pivot, cands, func(m pattern.Match) bool {
					ok := true
					for _, f := range filters {
						v, has := snap.Attr(m[f.Var], f.Attr)
						if !has || !v.Equal(f.Value) {
							ok = false
							break
						}
					}
					if ok {
						want = append(want, m.Clone())
					}
					return true
				})
				pattern.CompileFiltered(p, snap, filters).ForEachPivot(pivot, cands, func(m pattern.Match) bool {
					got = append(got, m.Clone())
					return true
				})
				if !sameCanon(canonMatches(p, want), canonMatches(p, got)) {
					t.Logf("seed %d pattern %s pivot %s: want %d matches, got %d",
						seed, p, pivot, len(want), len(got))
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 20}); err != nil {
		t.Fatal(err)
	}
}

// TestIntersectInto exercises the leapfrog intersection directly
// against a map-based oracle, across list counts and skew.
func TestIntersectInto(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		k := 1 + rng.Intn(5)
		lists := make([][]graph.NodeID, k)
		count := make(map[graph.NodeID]int)
		for i := range lists {
			n := rng.Intn(40)
			seen := make(map[graph.NodeID]bool)
			for j := 0; j < n; j++ {
				id := graph.NodeID(rng.Intn(60))
				if !seen[id] {
					seen[id] = true
					lists[i] = append(lists[i], id)
				}
			}
			// ascending, duplicate-free
			ids := lists[i]
			for a := 1; a < len(ids); a++ {
				for b := a; b > 0 && ids[b] < ids[b-1]; b-- {
					ids[b], ids[b-1] = ids[b-1], ids[b]
				}
			}
			for id := range seen {
				count[id]++
			}
		}
		var want []graph.NodeID
		for id, c := range count {
			if c == k {
				want = append(want, id)
			}
		}
		got := pattern.IntersectSortedForTest(lists)
		if len(got) != len(want) {
			t.Logf("seed %d: got %v", seed, got)
			return false
		}
		wantSet := make(map[graph.NodeID]bool, len(want))
		for _, id := range want {
			wantSet[id] = true
		}
		for i, id := range got {
			if !wantSet[id] || (i > 0 && got[i-1] >= id) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

// BenchmarkExtensionStep compares probe vs intersection on a dense
// triangle workload — the matcher's extension step in isolation.
func BenchmarkExtensionStep(b *testing.B) {
	g := gen.RandomPropertyGraph(5, 2000, 16, wcoLabels, wcoAttrs, 4)
	tri := pattern.New()
	tri.AddVar("x", "a").AddVar("y", "b").AddVar("z", "c")
	tri.AddEdge("x", "e", "y").AddEdge("y", "e", "z").AddEdge("x", "e", "z")
	snap := g.Freeze()
	b.Run("probe", func(b *testing.B) {
		pl := pattern.CompileProbe(tri, snap)
		for i := 0; i < b.N; i++ {
			n := 0
			pl.ForEachBound(nil, func(pattern.Match) bool { n++; return true })
		}
	})
	b.Run("intersect", func(b *testing.B) {
		pl := pattern.Compile(tri, snap)
		for i := 0; i < b.N; i++ {
			n := 0
			pl.ForEachBound(nil, func(pattern.Match) bool { n++; return true })
		}
	})
}
