package reason

// Differential and property tests for snapshot-backed validation: the
// frozen-snapshot path must report exactly the same violation sets —
// and, for the canonical-order APIs, the same violation order — as
// matching directly over the mutable graph, across generated workloads.
// The benchmarks compare the two paths head to head on the workload
// generators' larger graphs.

import (
	"context"
	"math/rand"
	"testing"
	"testing/quick"

	"gedlib/internal/ged"
	"gedlib/internal/gen"
	"gedlib/internal/graph"
)

// orderedCanon renders violations in their reported order (no sorting),
// so equality checks cover order as well as membership.
func orderedCanon(vs []Violation, sigma ged.Set) []string {
	idx := make(map[*ged.GED]int)
	for i, d := range sigma {
		idx[d] = i
	}
	keys := make([]string, 0, len(vs))
	for _, v := range vs {
		s := ""
		for _, x := range v.GED.Pattern.Vars() {
			s += string(x) + "=" + itoa(int(v.Match[x])) + ";"
		}
		keys = append(keys, itoa(idx[v.GED])+":"+s)
	}
	return keys
}

func itoa(n int) string {
	if n == 0 {
		return "0"
	}
	neg := n < 0
	if neg {
		n = -n
	}
	var b [24]byte
	i := len(b)
	for n > 0 {
		i--
		b[i] = byte('0' + n%10)
		n /= 10
	}
	if neg {
		i--
		b[i] = '-'
	}
	return string(b[i:])
}

func equalStrings(a, b []string) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// TestValidateSnapshotDifferential: quick-generated workloads validate
// to identical violation sets over both hosts, and the canonical-order
// parallel path returns the identical ordered list on both.
func TestValidateSnapshotDifferential(t *testing.T) {
	ctx := context.Background()
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed % 1_000_000))
		sigma := randomSigma(rng)
		g := randomGraph(rng)
		snap := g.Freeze()

		onGraph, _ := ValidateOnCtx(ctx, g, sigma, 0)
		onSnap, _ := ValidateOnCtx(ctx, snap, sigma, 0)
		if !equalStrings(canonViolations(onGraph, sigma), canonViolations(onSnap, sigma)) {
			t.Logf("seed %d: violation sets differ (%d vs %d)", seed, len(onGraph), len(onSnap))
			return false
		}

		// The canonical-order APIs must agree as ordered lists.
		parGraph, _ := ValidateParallelOnCtx(ctx, g, sigma, 0, 4)
		parSnap, _ := ValidateParallelOnCtx(ctx, snap, sigma, 0, 4)
		if !equalStrings(orderedCanon(parGraph, sigma), orderedCanon(parSnap, sigma)) {
			t.Logf("seed %d: canonical violation order differs", seed)
			return false
		}
		// And both must be the canonical ordering of the sequential set.
		seq := append([]Violation(nil), onSnap...)
		sortViolations(seq, sigma)
		return equalStrings(orderedCanon(parSnap, sigma), orderedCanon(seq, sigma))
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 20}); err != nil {
		t.Fatal(err)
	}
}

// TestValidateTouchingSnapshotDifferential: the incremental path agrees
// across hosts, order included (its contract is canonical order).
func TestValidateTouchingSnapshotDifferential(t *testing.T) {
	ctx := context.Background()
	rng := rand.New(rand.NewSource(401))
	for trial := 0; trial < 15; trial++ {
		sigma := randomSigma(rng)
		g := randomGraph(rng)
		var touched []graph.NodeID
		for i := 0; i < 5 && i < g.NumNodes(); i++ {
			touched = append(touched, graph.NodeID(rng.Intn(g.NumNodes())))
		}
		onGraph, _ := ValidateTouchingOnCtx(ctx, g, sigma, touched, 0)
		onSnap, _ := ValidateTouchingOnCtx(ctx, g.Freeze(), sigma, touched, 0)
		if !equalStrings(orderedCanon(onGraph, sigma), orderedCanon(onSnap, sigma)) {
			t.Fatalf("trial %d: incremental violations differ across hosts", trial)
		}
	}
}

// TestValidatorSnapshotSharing: a validator built on a shared snapshot
// equals one that froze privately, and both equal plain validation.
func TestValidatorSnapshotSharing(t *testing.T) {
	g, _ := gen.KnowledgeBase(23, 60, 0.25)
	sigma := ged.Set{gen.PaperPhi1(), gen.PaperPhi2(), gen.PaperPhi3(), gen.PaperPhi4()}
	snap := g.Freeze()
	a := canonViolations(NewValidatorOn(snap, sigma).Run(0), sigma)
	b := canonViolations(NewValidator(g, sigma).Run(0), sigma)
	c := canonViolations(Validate(g, sigma, 0), sigma)
	if !equalStrings(a, b) || !equalStrings(b, c) {
		t.Fatalf("validator paths disagree: %d / %d / %d violations", len(a), len(b), len(c))
	}
}

// ---- benchmarks: snapshot path vs mutable-graph path ----

func benchValidate(b *testing.B, scale int) {
	g, _ := gen.KnowledgeBase(31, scale, 0.1)
	sigma := ged.Set{gen.PaperPhi1(), gen.PaperPhi2(), gen.PaperPhi3(), gen.PaperPhi4()}
	ctx := context.Background()
	b.Run("graph", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			ValidateOnCtx(ctx, g, sigma, 0)
		}
	})
	b.Run("snapshot", func(b *testing.B) {
		// Freeze cost is included: this is the end-to-end Validate path.
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			ValidateOnCtx(ctx, g.Freeze(), sigma, 0)
		}
	})
	b.Run("snapshot-cached", func(b *testing.B) {
		snap := g.Freeze()
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			ValidateOnCtx(ctx, snap, sigma, 0)
		}
	})
}

func BenchmarkValidateKB200(b *testing.B)  { benchValidate(b, 200) }
func BenchmarkValidateKB800(b *testing.B)  { benchValidate(b, 800) }
func BenchmarkValidateKB2000(b *testing.B) { benchValidate(b, 2000) }

func BenchmarkValidateSpamHosts(b *testing.B) {
	g, _ := gen.SocialNetwork(7, 12, 14)
	sigma := ged.Set{gen.PaperPhi5(2)}
	ctx := context.Background()
	b.Run("graph", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			ValidateOnCtx(ctx, g, sigma, 0)
		}
	})
	b.Run("snapshot", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			ValidateOnCtx(ctx, g.Freeze(), sigma, 0)
		}
	})
}
