package reason

import (
	"context"
	"strconv"

	"gedlib/internal/ged"
	"gedlib/internal/graph"
	"gedlib/internal/pattern"
)

// ValidateTouching finds the violations of Σ whose match involves at
// least one of the given nodes. After a localized update (attribute
// writes or edge insertions around a handful of nodes), the *new*
// violations all touch an updated node, so re-checking only those
// matches — rather than re-enumerating every match of every pattern —
// gives incremental validation:
//
//	dirty := g mutated at nodes N
//	newViolations := ValidateTouching(dirty, sigma, N, 0)
//
// Deletions are different: removing an edge or attribute can only
// *remove* violations (matches and antecedent satisfactions are
// monotone in the graph), so the stale entries of a maintained violation
// list are re-checked with StillViolating instead. ViolationStore
// packages both halves into one maintained set, and Engine.Apply drives
// it from the graph's own change journal.
//
// Matches touching several affected nodes are reported once. The result
// order is canonical, as in ValidateParallel.
func ValidateTouching(g *graph.Graph, sigma ged.Set, nodes []graph.NodeID, limit int) []Violation {
	out, _ := ValidateTouchingCtx(context.Background(), g, sigma, nodes, limit)
	return out
}

// ValidateTouchingCtx is ValidateTouching with cooperative cancellation,
// checked between candidate matches; the violations found before the
// abort are returned alongside ctx's error.
func ValidateTouchingCtx(ctx context.Context, g *graph.Graph, sigma ged.Set, nodes []graph.NodeID, limit int) ([]Violation, error) {
	return ValidateTouchingOnCtx(ctx, g, sigma, nodes, limit)
}

// ValidateTouchingOnCtx is ValidateTouchingCtx over any matcher host:
// a delta-maintained snapshot of the post-update graph (the fast path
// the Engine uses), or the mutable graph itself. Plans are compiled per
// call; a Validator's TouchingCtx reuses its prepared plans instead.
func ValidateTouchingOnCtx(ctx context.Context, h pattern.Host, sigma ged.Set, nodes []graph.NodeID, limit int) ([]Violation, error) {
	if len(nodes) == 0 {
		// The empty delta touches nothing: no plan compilation, no
		// per-GED sort/dedup bookkeeping.
		return nil, ctx.Err()
	}
	return validateTouching(ctx, h, sigma, nodes, limit, func(i int) *pattern.Plan {
		return pattern.CompileFiltered(sigma[i].Pattern, h, PushdownFilters(sigma[i]))
	})
}

// validateTouching is the shared touched-neighborhood core: plans come
// from planOf, so one-shot callers compile on the fly while prepared
// validators hand out cached plans.
func validateTouching(ctx context.Context, h pattern.Host, sigma ged.Set, nodes []graph.NodeID, limit int, planOf func(int) *pattern.Plan) ([]Violation, error) {
	var out []Violation
	var ctxErr error
	stop := func() bool { return ctx.Err() != nil }
	var seen seenSet
	for gi, d := range sigma {
		pl := planOf(gi)
		vars := d.Pattern.Vars()
		for _, pivot := range vars {
			pl.ForEachPivotCancel(pivot, nodes, stop, func(m pattern.Match) bool {
				if ctxErr = ctx.Err(); ctxErr != nil {
					return false
				}
				// Dedup: a match with several affected bindings is found
				// once per (pivot, binding); canonicalize.
				if !seen.add(gi, vars, m) {
					return true
				}
				for _, l := range d.X {
					if !HoldsInGraph(h, l, m) {
						return true
					}
				}
				for _, l := range d.Y {
					if !HoldsInGraph(h, l, m) {
						out = append(out, Violation{GED: d, Match: m.Clone(), Literal: l})
						break
					}
				}
				return true
			})
			ctxErr = ctx.Err()
			if ctxErr != nil {
				break
			}
		}
		if ctxErr != nil {
			break
		}
	}
	// Partial results keep the contract: canonical order, limit applied.
	sortViolations(out, sigma)
	if limit > 0 && len(out) > limit {
		out = out[:limit]
	}
	return out, ctxErr
}

// StillViolating re-checks a previously-found violation against the
// current state of a host (graph or snapshot): the match must still
// exist (labels and edges), the antecedent must still hold, and some
// consequent literal must still fail.
func StillViolating(h pattern.Host, v Violation) bool {
	_, ok := FailingLiteral(h, v)
	return ok
}

// FailingLiteral is StillViolating exposing the evidence: the first
// consequent literal that currently fails. It may differ from the
// recorded v.Literal — an update can fix the recorded literal while
// breaking another — which is why maintained stores must refresh their
// entries from it rather than keep the stale one.
func FailingLiteral(h pattern.Host, v Violation) (ged.Literal, bool) {
	// Nodes must still exist.
	for _, x := range v.GED.Pattern.Vars() {
		n, ok := v.Match[x]
		if !ok || int(n) >= h.NumNodes() {
			return ged.Literal{}, false
		}
		if !graph.LabelMatches(v.GED.Pattern.Label(x), h.Label(n)) {
			return ged.Literal{}, false
		}
	}
	for _, e := range v.GED.Pattern.Edges() {
		if !pattern.HostHasCompatibleEdge(h, v.Match[e.Src], e.Label, v.Match[e.Dst]) {
			return ged.Literal{}, false
		}
	}
	for _, l := range v.GED.X {
		if !HoldsInGraph(h, l, v.Match) {
			return ged.Literal{}, false
		}
	}
	for _, l := range v.GED.Y {
		if !HoldsInGraph(h, l, v.Match) {
			return l, true
		}
	}
	return ged.Literal{}, false
}

// denseKeyVars is how many bindings the allocation-free match key holds
// inline; patterns are small (the paper's examples top out at four
// variables, doubled keys at eight), so the string spill path is all
// but dead code.
const denseKeyVars = 8

// denseKey identifies one (GED, match) pair without allocating: the
// dense binding vector in variable order, inlined into a comparable
// array. It replaces the fmt.Sprintf string key that used to dominate
// the touched-neighborhood profile.
type denseKey struct {
	gi  int32
	n   int32
	ids [denseKeyVars]graph.NodeID
}

// seenSet is a set of (GED, match) keys: dense for patterns that fit
// the inline array, a string map as the spill path for wider ones. The
// zero value is ready to use.
type seenSet struct {
	dense map[denseKey]bool
	wide  map[string]bool
}

func makeKey(gi int, vars []pattern.Var, m pattern.Match) (denseKey, bool) {
	if len(vars) > denseKeyVars {
		return denseKey{}, false
	}
	k := denseKey{gi: int32(gi), n: int32(len(vars))}
	for i, v := range vars {
		k.ids[i] = m[v]
	}
	return k, true
}

func wideKey(gi int, vars []pattern.Var, m pattern.Match) string {
	buf := make([]byte, 0, 16+8*len(vars))
	buf = strconv.AppendInt(buf, int64(gi), 10)
	for _, v := range vars {
		buf = append(buf, ':')
		buf = strconv.AppendInt(buf, int64(m[v]), 10)
	}
	return string(buf)
}

// add inserts the key of (gi, m) and reports whether it was absent.
func (s *seenSet) add(gi int, vars []pattern.Var, m pattern.Match) bool {
	if k, ok := makeKey(gi, vars, m); ok {
		if s.dense == nil {
			s.dense = make(map[denseKey]bool)
		}
		if s.dense[k] {
			return false
		}
		s.dense[k] = true
		return true
	}
	k := wideKey(gi, vars, m)
	if s.wide == nil {
		s.wide = make(map[string]bool)
	}
	if s.wide[k] {
		return false
	}
	s.wide[k] = true
	return true
}

// remove deletes the key of (gi, m).
func (s *seenSet) remove(gi int, vars []pattern.Var, m pattern.Match) {
	if k, ok := makeKey(gi, vars, m); ok {
		delete(s.dense, k)
		return
	}
	delete(s.wide, wideKey(gi, vars, m))
}
