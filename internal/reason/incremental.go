package reason

import (
	"context"
	"fmt"

	"gedlib/internal/ged"
	"gedlib/internal/graph"
	"gedlib/internal/pattern"
)

// ValidateTouching finds the violations of Σ whose match involves at
// least one of the given nodes. After a localized update (attribute
// writes or edge insertions around a handful of nodes), the *new*
// violations all touch an updated node, so re-checking only those
// matches — rather than re-enumerating every match of every pattern —
// gives incremental validation:
//
//	dirty := g mutated at nodes N
//	newViolations := ValidateTouching(dirty, sigma, N, 0)
//
// Deletions are different: removing an edge or attribute can only
// *remove* violations (matches and antecedent satisfactions are
// monotone in the graph), so the stale entries of a maintained violation
// list are re-checked with StillViolating instead.
//
// Matches touching several affected nodes are reported once. The result
// order is canonical, as in ValidateParallel.
//
// Unlike full validation, this path deliberately matches over the
// mutable graph rather than freezing it: it runs right after a
// mutation, when no cached snapshot can be fresh, and a full O(|G|)
// freeze would dwarf the touched-neighborhood work it is meant to
// replace. Callers that do hold a fresh snapshot can pass it to
// ValidateTouchingOnCtx instead.
func ValidateTouching(g *graph.Graph, sigma ged.Set, nodes []graph.NodeID, limit int) []Violation {
	out, _ := ValidateTouchingCtx(context.Background(), g, sigma, nodes, limit)
	return out
}

// ValidateTouchingCtx is ValidateTouching with cooperative cancellation,
// checked between candidate matches; the violations found before the
// abort are returned alongside ctx's error.
func ValidateTouchingCtx(ctx context.Context, g *graph.Graph, sigma ged.Set, nodes []graph.NodeID, limit int) ([]Violation, error) {
	return ValidateTouchingOnCtx(ctx, g, sigma, nodes, limit)
}

// ValidateTouchingOnCtx is ValidateTouchingCtx over any matcher host:
// the mutable graph (the default — see ValidateTouching on why), or a
// known-fresh snapshot of the post-update graph.
func ValidateTouchingOnCtx(ctx context.Context, h pattern.Host, sigma ged.Set, nodes []graph.NodeID, limit int) ([]Violation, error) {
	var out []Violation
	var ctxErr error
	stop := func() bool { return ctx.Err() != nil }
	seen := make(map[string]bool)
	for gi, d := range sigma {
		pl := pattern.Compile(d.Pattern, h)
		vars := d.Pattern.Vars()
		for _, pivot := range vars {
			pl.ForEachPivotCancel(pivot, nodes, stop, func(m pattern.Match) bool {
				if ctxErr = ctx.Err(); ctxErr != nil {
					return false
				}
				// Dedup: a match with several affected bindings is found
				// once per (pivot, binding); canonicalize.
				key := matchKey(gi, vars, m)
				if seen[key] {
					return true
				}
				seen[key] = true
				for _, l := range d.X {
					if !HoldsInGraph(h, l, m) {
						return true
					}
				}
				for _, l := range d.Y {
					if !HoldsInGraph(h, l, m) {
						out = append(out, Violation{GED: d, Match: m.Clone(), Literal: l})
						break
					}
				}
				return true
			})
			ctxErr = ctx.Err()
			if ctxErr != nil {
				break
			}
		}
		if ctxErr != nil {
			break
		}
	}
	// Partial results keep the contract: canonical order, limit applied.
	sortViolations(out, sigma)
	if limit > 0 && len(out) > limit {
		out = out[:limit]
	}
	return out, ctxErr
}

// StillViolating re-checks a previously-found violation against the
// current state of a host (graph or snapshot): the match must still
// exist (labels and edges), the antecedent must still hold, and the
// recorded literal must still fail.
func StillViolating(h pattern.Host, v Violation) bool {
	// Nodes must still exist.
	for _, x := range v.GED.Pattern.Vars() {
		n, ok := v.Match[x]
		if !ok || int(n) >= h.NumNodes() {
			return false
		}
		if !graph.LabelMatches(v.GED.Pattern.Label(x), h.Label(n)) {
			return false
		}
	}
	for _, e := range v.GED.Pattern.Edges() {
		if !hasCompatibleEdge(h, v.Match[e.Src], e.Label, v.Match[e.Dst]) {
			return false
		}
	}
	for _, l := range v.GED.X {
		if !HoldsInGraph(h, l, v.Match) {
			return false
		}
	}
	for _, l := range v.GED.Y {
		if !HoldsInGraph(h, l, v.Match) {
			return true
		}
	}
	return false
}

func hasCompatibleEdge(h pattern.Host, src graph.NodeID, label graph.Label, dst graph.NodeID) bool {
	if label != graph.Wildcard {
		return h.HasEdge(src, label, dst)
	}
	return h.HasAnyEdge(src, dst)
}

func matchKey(gi int, vars []pattern.Var, m pattern.Match) string {
	s := fmt.Sprintf("g%d:", gi)
	for _, v := range vars {
		s += fmt.Sprintf("%d,", m[v])
	}
	return s
}
