package reason

import (
	"math/rand"
	"testing"

	"gedlib/internal/ged"
	"gedlib/internal/gen"
	"gedlib/internal/graph"
)

func TestValidateTouchingFindsNewViolation(t *testing.T) {
	g, stats := gen.KnowledgeBase(13, 30, 0)
	if stats.Total() != 0 {
		t.Fatal("expected a clean KB")
	}
	sigma := ged.Set{gen.PaperPhi1(), gen.PaperPhi2(), gen.PaperPhi3(), gen.PaperPhi4()}
	if !Satisfies(g, sigma) {
		t.Fatal("clean KB must validate")
	}
	// Break one creator.
	var dev graph.NodeID = -1
	for _, id := range g.Nodes() {
		if v, ok := g.Attr(id, "type"); ok && v.Equal(graph.String("programmer")) {
			dev = id
			break
		}
	}
	if dev < 0 {
		t.Fatal("no programmer found")
	}
	g.SetAttr(dev, "type", graph.String("psychologist"))

	inc := ValidateTouching(g, sigma, []graph.NodeID{dev}, 0)
	full := Validate(g, sigma, 0)
	if len(inc) != len(full) {
		t.Fatalf("incremental found %d, full %d", len(inc), len(full))
	}
	if len(inc) == 0 {
		t.Fatal("the broken creator must be reported")
	}
}

// TestValidateTouchingEqualsFullOnRandomUpdates: after mutating a few
// nodes of a clean-ish graph, incremental (over the touched nodes) and
// full validation agree on all violations touching them; and every new
// violation touches a mutated node.
func TestValidateTouchingEqualsFullOnRandomUpdates(t *testing.T) {
	rng := rand.New(rand.NewSource(71))
	for trial := 0; trial < 30; trial++ {
		sigma := randomSigma(rng)
		g := randomGraph(rng)
		before := canonViolations(Validate(g, sigma, 0), sigma)

		// Mutate 1-2 nodes.
		var touched []graph.NodeID
		for k := 0; k < 1+rng.Intn(2); k++ {
			n := graph.NodeID(rng.Intn(g.NumNodes()))
			g.SetAttr(n, "p", graph.Int(rng.Intn(2)))
			touched = append(touched, n)
		}
		full := Validate(g, sigma, 0)
		inc := ValidateTouching(g, sigma, touched, 0)

		// Every violation in full that touches a mutated node must be in
		// inc, and vice versa.
		touchedSet := map[graph.NodeID]bool{}
		for _, n := range touched {
			touchedSet[n] = true
		}
		var fullTouching []Violation
		for _, v := range full {
			for _, x := range v.GED.Pattern.Vars() {
				if touchedSet[v.Match[x]] {
					fullTouching = append(fullTouching, v)
					break
				}
			}
		}
		a := canonViolations(fullTouching, sigma)
		b := canonViolations(inc, sigma)
		if len(a) != len(b) {
			t.Fatalf("trial %d: touching sets differ: full=%d inc=%d (before=%d)",
				trial, len(a), len(b), len(before))
		}
		for i := range a {
			if a[i] != b[i] {
				t.Fatalf("trial %d: touching sets differ at %d", trial, i)
			}
		}
	}
}

func TestStillViolating(t *testing.T) {
	g := graph.New()
	dev := g.AddNodeAttrs("person", map[graph.Attr]graph.Value{"type": graph.String("psychologist")})
	game := g.AddNodeAttrs("product", map[graph.Attr]graph.Value{"type": graph.String("video game")})
	g.AddEdge(dev, "create", game)
	sigma := ged.Set{gen.PaperPhi1()}
	vs := Validate(g, sigma, 0)
	if len(vs) != 1 {
		t.Fatal("expected one violation")
	}
	if !StillViolating(g, vs[0]) {
		t.Error("fresh violation must still be violating")
	}
	// Repairing the attribute clears it.
	g.SetAttr(dev, "type", graph.String("programmer"))
	if StillViolating(g, vs[0]) {
		t.Error("repaired violation must clear")
	}
	// Breaking the antecedent also clears it.
	g.SetAttr(dev, "type", graph.String("psychologist"))
	g.SetAttr(game, "type", graph.String("board game"))
	if StillViolating(g, vs[0]) {
		t.Error("antecedent no longer holds; violation must clear")
	}
}

func TestValidateTouchingDedup(t *testing.T) {
	// A match touching two affected nodes is reported once.
	g := graph.New()
	c := g.AddNodeAttrs("country", map[graph.Attr]graph.Value{})
	y := g.AddNodeAttrs("city", map[graph.Attr]graph.Value{"name": graph.String("A")})
	z := g.AddNodeAttrs("city", map[graph.Attr]graph.Value{"name": graph.String("B")})
	g.AddEdge(c, "capital", y)
	g.AddEdge(c, "capital", z)
	sigma := ged.Set{gen.PaperPhi2()}
	inc := ValidateTouching(g, sigma, []graph.NodeID{y, z, c}, 0)
	full := Validate(g, sigma, 0)
	if len(inc) != len(full) {
		t.Errorf("dedup broken: inc=%d full=%d", len(inc), len(full))
	}
}
