package reason

import (
	"fmt"

	"gedlib/internal/obs"
)

// Observe attaches per-rule observability to the validator's compiled
// plans: a match profile (candidates, intersection vs probe steps,
// bindings — flushed by the matcher once per enumeration) accumulating
// into rule-labeled counters, and an info-style gauge naming each
// rule's current plan fingerprint. Profiles survive Rebase, which
// rebinds plans and carries their sinks; the engine re-attaches only
// on a full recompile. A nil registry leaves the validator unobserved.
func (v *Validator) Observe(reg *obs.Registry) {
	if reg == nil {
		return
	}
	for i, pl := range v.plans {
		name := ruleName(v.sigma[i].Name, i)
		pl.SetProfile(&obs.MatchStats{
			Candidates:     reg.Counter("ged_match_candidates_total", "candidate nodes examined by the matcher", "rule", name),
			IntersectSteps: reg.Counter("ged_match_intersect_steps_total", "posting-list runs fed to leapfrog intersection", "rule", name),
			ProbeSteps:     reg.Counter("ged_match_probe_steps_total", "per-candidate consistency probes", "rule", name),
			Bindings:       reg.Counter("ged_match_bindings_total", "complete bindings materialized", "rule", name),
		})
		// A recompile may change the plan shape; retire the old
		// fingerprint series so exactly one is live per rule.
		reg.RemoveFamilyLabeled("ged_match_plan_info", "rule", name)
		reg.Gauge("ged_match_plan_info", "compiled plan identity per rule (value is always 1)",
			"rule", name, "plan", pl.Fingerprint()).Set(1)
	}
}

// ruleName labels a rule for metrics: its declared name, or a stable
// positional fallback for anonymous rules.
func ruleName(name string, i int) string {
	if name != "" {
		return name
	}
	return fmt.Sprintf("rule%d", i)
}

// Observe attaches maintenance counters to the store (any may be nil):
// entries re-checked after a delta, entries dropped as repaired, and
// fresh violations admitted. Together they answer how much of the
// store's churn is recheck-survival versus new discovery.
func (st *ViolationStore) Observe(recheck, drop, fresh *obs.Counter) {
	st.ctrRecheck, st.ctrDrop, st.ctrFresh = recheck, drop, fresh
}
