package reason

import (
	"context"
	"runtime"
	"sort"
	"strconv"
	"sync"

	"gedlib/internal/ged"
	"gedlib/internal/graph"
	"gedlib/internal/pattern"
)

// ValidateParallel is the data-parallel validator, a first step toward
// the "parallel scalable algorithms for reasoning about GEDs" the paper
// leaves as future work (Section 9). The match space of each GED is
// partitioned by pre-binding the pattern's most selective variable to
// disjoint slices of its candidate nodes; workers search the partitions
// independently and merge their violation lists. The result is
// deterministic: violations are returned in the same canonical order
// regardless of worker count.
//
// workers ≤ 0 selects GOMAXPROCS. limit ≤ 0 returns all violations
// (a positive limit bounds the result but, unlike Validate, the workers
// may transiently find more).
func ValidateParallel(g *graph.Graph, sigma ged.Set, limit, workers int) []Violation {
	out, _ := ValidateParallelCtx(context.Background(), g, sigma, limit, workers)
	return out
}

// ValidateParallelCtx is ValidateParallel with cooperative cancellation:
// every worker checks ctx between candidate matches and between tasks,
// so a cancelled context drains the whole pool promptly. The (canonical,
// possibly partial) violations found before the abort are returned
// alongside ctx's error.
func ValidateParallelCtx(ctx context.Context, g *graph.Graph, sigma ged.Set, limit, workers int) ([]Violation, error) {
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers == 1 {
		return ValidateCtx(ctx, g, sigma, limit)
	}

	// One compiled plan per GED, shared by all workers; tasks are
	// candidate blocks of the GED's most selective variable.
	type task struct {
		gedIdx int
		pivot  pattern.Var
		cands  []graph.NodeID // nil means "run unpartitioned"
	}
	plans := make([]*pattern.Plan, len(sigma))
	var tasks []task
	for gi, d := range sigma {
		plans[gi] = pattern.Compile(d.Pattern, g)
		v, cands := pivotVar(d.Pattern, g)
		if v == "" {
			tasks = append(tasks, task{gedIdx: gi})
			continue
		}
		blocks := workers * 4
		block := (len(cands) + blocks - 1) / blocks
		if block == 0 {
			block = 1
		}
		for lo := 0; lo < len(cands); lo += block {
			hi := lo + block
			if hi > len(cands) {
				hi = len(cands)
			}
			tasks = append(tasks, task{gedIdx: gi, pivot: v, cands: cands[lo:hi]})
		}
	}

	ch := make(chan task, len(tasks))
	for _, t := range tasks {
		ch <- t
	}
	close(ch)

	var mu sync.Mutex
	var out []Violation
	var wg sync.WaitGroup
	stop := func() bool { return ctx.Err() != nil }
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			var local []Violation
			for t := range ch {
				if ctx.Err() != nil {
					break
				}
				d := sigma[t.gedIdx]
				pl := plans[t.gedIdx]
				collect := func(m pattern.Match) bool {
					if ctx.Err() != nil {
						return false
					}
					for _, l := range d.X {
						if !HoldsInGraph(g, l, m) {
							return true
						}
					}
					for _, l := range d.Y {
						if !HoldsInGraph(g, l, m) {
							local = append(local, Violation{GED: d, Match: m.Clone(), Literal: l})
							break
						}
					}
					return true
				}
				if t.cands == nil {
					pl.ForEachBoundCancel(nil, stop, collect)
					continue
				}
				pl.ForEachPivotCancel(t.pivot, t.cands, stop, collect)
			}
			if len(local) > 0 {
				mu.Lock()
				out = append(out, local...)
				mu.Unlock()
			}
		}()
	}
	wg.Wait()

	sortViolations(out, sigma)
	if limit > 0 && len(out) > limit {
		out = out[:limit]
	}
	return out, ctx.Err()
}

// pivotVar picks the variable with the smallest candidate set, returning
// its sorted candidates. An empty pattern returns "".
func pivotVar(p *pattern.Pattern, g *graph.Graph) (pattern.Var, []graph.NodeID) {
	var best pattern.Var
	var bestCands []graph.NodeID
	for _, v := range p.Vars() {
		c := g.CandidateNodes(p.Label(v))
		if best == "" || len(c) < len(bestCands) {
			best, bestCands = v, c
		}
	}
	return best, bestCands
}

// sortViolations puts violations into a canonical order: by GED index,
// then by the match bindings in variable order.
func sortViolations(vs []Violation, sigma ged.Set) {
	idx := make(map[*ged.GED]int, len(sigma))
	for i, d := range sigma {
		idx[d] = i
	}
	key := func(v Violation) string {
		s := ""
		for _, x := range v.GED.Pattern.Vars() {
			s += string(x) + "=" + strconv.Itoa(int(v.Match[x])) + ";"
		}
		return s
	}
	sort.Slice(vs, func(i, j int) bool {
		if idx[vs[i].GED] != idx[vs[j].GED] {
			return idx[vs[i].GED] < idx[vs[j].GED]
		}
		return key(vs[i]) < key(vs[j])
	})
}
