package reason

import (
	"context"
	"runtime"
	"sort"
	"strconv"
	"sync"

	"gedlib/internal/ged"
	"gedlib/internal/graph"
	"gedlib/internal/pattern"
)

// ValidateParallel is the data-parallel validator, a first step toward
// the "parallel scalable algorithms for reasoning about GEDs" the paper
// leaves as future work (Section 9). The graph is frozen once into a
// read-only snapshot shared by every worker; the match space of each
// GED is partitioned by pre-binding a pivot variable — the most
// selective constant-literal access path of the antecedent when the
// snapshot's attribute index beats the label postings, the smallest
// label candidate set otherwise — to disjoint candidate blocks; workers
// search the partitions independently and merge their violation lists.
//
// The result is deterministic: violations are returned in the same
// canonical order (by GED index, then by match bindings in variable
// order) regardless of worker count. With a positive limit the workers
// may transiently find more than limit violations; the merged list is
// put into canonical order first and then truncated, so the reported
// prefix is the canonically-least limit violations and is likewise
// deterministic across runs and worker counts.
//
// workers ≤ 0 selects GOMAXPROCS. limit ≤ 0 returns all violations.
func ValidateParallel(g *graph.Graph, sigma ged.Set, limit, workers int) []Violation {
	out, _ := ValidateParallelCtx(context.Background(), g, sigma, limit, workers)
	return out
}

// ValidateParallelCtx is ValidateParallel with cooperative cancellation:
// every worker checks ctx between candidate matches and between tasks,
// so a cancelled context drains the whole pool promptly. The (canonical,
// possibly partial) violations found before the abort are returned
// alongside ctx's error.
func ValidateParallelCtx(ctx context.Context, g *graph.Graph, sigma ged.Set, limit, workers int) ([]Violation, error) {
	return ValidateParallelOnCtx(ctx, g.Freeze(), sigma, limit, workers)
}

// ValidateParallelOnCtx is ValidateParallelCtx over any matcher host —
// normally a pre-built *graph.Snapshot shared across calls; a mutable
// *graph.Graph also works and returns identical results.
func ValidateParallelOnCtx(ctx context.Context, h pattern.Host, sigma ged.Set, limit, workers int) ([]Violation, error) {
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers == 1 {
		return ValidateOnCtx(ctx, h, sigma, limit)
	}
	return validateParallel(ctx, h, sigma, limit, workers,
		func(i int) *pattern.Plan {
			return pattern.CompileFiltered(sigma[i].Pattern, h, PushdownFilters(sigma[i]))
		},
		func(i int) (pattern.Var, []graph.NodeID) { return pivotFor(sigma[i], h) })
}

// validateParallel is the shared data-parallel core: plans and pivots
// come from the callbacks, so one-shot callers compile on the fly while
// prepared validators hand out cached state.
func validateParallel(ctx context.Context, h pattern.Host, sigma ged.Set, limit, workers int,
	planOf func(int) *pattern.Plan, pivotOf func(int) (pattern.Var, []graph.NodeID)) ([]Violation, error) {
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}

	// One compiled plan per GED, shared by all workers; tasks are
	// candidate blocks of the GED's pivot variable.
	type task struct {
		gedIdx int
		pivot  pattern.Var
		cands  []graph.NodeID // nil means "run unpartitioned"
	}
	plans := make([]*pattern.Plan, len(sigma))
	var tasks []task
	for gi := range sigma {
		plans[gi] = planOf(gi)
		v, cands := pivotOf(gi)
		if v == "" {
			tasks = append(tasks, task{gedIdx: gi})
			continue
		}
		blocks := workers * 4
		block := (len(cands) + blocks - 1) / blocks
		if block == 0 {
			block = 1
		}
		for lo := 0; lo < len(cands); lo += block {
			hi := lo + block
			if hi > len(cands) {
				hi = len(cands)
			}
			tasks = append(tasks, task{gedIdx: gi, pivot: v, cands: cands[lo:hi]})
		}
	}

	ch := make(chan task, len(tasks))
	for _, t := range tasks {
		ch <- t
	}
	close(ch)

	var mu sync.Mutex
	var out []Violation
	var wg sync.WaitGroup
	stop := func() bool { return ctx.Err() != nil }
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			var local []Violation
			for t := range ch {
				if ctx.Err() != nil {
					break
				}
				d := sigma[t.gedIdx]
				pl := plans[t.gedIdx]
				collect := func(m pattern.Match) bool {
					if ctx.Err() != nil {
						return false
					}
					for _, l := range d.X {
						if !HoldsInGraph(h, l, m) {
							return true
						}
					}
					for _, l := range d.Y {
						if !HoldsInGraph(h, l, m) {
							local = append(local, Violation{GED: d, Match: m.Clone(), Literal: l})
							break
						}
					}
					return true
				}
				if t.cands == nil {
					pl.ForEachBoundCancel(nil, stop, collect)
					continue
				}
				pl.ForEachPivotCancel(t.pivot, t.cands, stop, collect)
			}
			if len(local) > 0 {
				mu.Lock()
				out = append(out, local...)
				mu.Unlock()
			}
		}()
	}
	wg.Wait()

	sortViolations(out, sigma)
	if limit > 0 && len(out) > limit {
		out = out[:limit]
	}
	return out, ctx.Err()
}

// pivotFor selects the partitioning variable of d's match space. On a
// snapshot host the most selective constant literal of the antecedent
// is pushed down into the folded-in attribute index first — matches
// outside its postings cannot satisfy the antecedent, so restricting
// the pivot to them loses no violations; when no constant literal beats
// the label postings the label-based pivotVar is used.
func pivotFor(d *ged.GED, h pattern.Host) (pattern.Var, []graph.NodeID) {
	if snap, ok := h.(*graph.Snapshot); ok {
		if p := choosePivot(d, snap); p != nil {
			return p.variable, p.cands
		}
	}
	return pivotVar(d.Pattern, h)
}

// pivotVar picks the variable with the smallest candidate set, breaking
// ties toward the label with the higher average degree when the host
// exposes degree statistics, and returns its candidates. An empty
// pattern returns "".
func pivotVar(p *pattern.Pattern, h pattern.Host) (pattern.Var, []graph.NodeID) {
	stats, hasStats := h.(interface {
		LabelAvgDegree(graph.Label) float64
	})
	avgDeg := func(l graph.Label) float64 {
		if !hasStats {
			return 0
		}
		return stats.LabelAvgDegree(l)
	}
	var best pattern.Var
	var bestCands []graph.NodeID
	for _, v := range p.Vars() {
		c := h.CandidateNodes(p.Label(v))
		switch {
		case best == "" || len(c) < len(bestCands):
			best, bestCands = v, c
		case len(c) == len(bestCands) && avgDeg(p.Label(v)) > avgDeg(p.Label(best)):
			best, bestCands = v, c
		}
	}
	return best, bestCands
}

// appendViolationKey appends the canonical within-GED sort key of v —
// the match bindings in variable order — to buf. The ViolationStore
// precomputes and caches these keys so its per-delta maintenance never
// re-strings the stored set.
func appendViolationKey(buf []byte, v Violation) []byte {
	for _, x := range v.GED.Pattern.Vars() {
		buf = append(buf, string(x)...)
		buf = append(buf, '=')
		buf = strconv.AppendInt(buf, int64(v.Match[x]), 10)
		buf = append(buf, ';')
	}
	return buf
}

// SortViolations puts violations into the canonical order every
// validation API reports: by GED index in sigma, then by the match
// bindings in variable order. Exported for callers that assemble
// violation lists from several independent searches (the sharded
// validator merges per-shard result sets with it) and need them in the
// same order the single-snapshot paths produce.
func SortViolations(vs []Violation, sigma ged.Set) { sortViolations(vs, sigma) }

// sortViolations puts violations into a canonical order: by GED index,
// then by the match bindings in variable order. The per-violation keys
// are computed once up front — not inside the comparator, which would
// redo the strconv/concat work O(n log n) times.
func sortViolations(vs []Violation, sigma ged.Set) {
	if len(vs) < 2 {
		return
	}
	idx := make(map[*ged.GED]int, len(sigma))
	for i, d := range sigma {
		idx[d] = i
	}
	type keyed struct {
		gi  int
		key string
		v   Violation
	}
	ks := make([]keyed, len(vs))
	var buf []byte
	for i, v := range vs {
		buf = appendViolationKey(buf[:0], v)
		ks[i] = keyed{gi: idx[v.GED], key: string(buf), v: v}
	}
	sort.Slice(ks, func(i, j int) bool {
		if ks[i].gi != ks[j].gi {
			return ks[i].gi < ks[j].gi
		}
		return ks[i].key < ks[j].key
	})
	for i := range ks {
		vs[i] = ks[i].v
	}
}
