package reason

import (
	"fmt"
	"math/rand"
	"sort"
	"testing"

	"gedlib/internal/ged"
	"gedlib/internal/graph"
	"gedlib/internal/pattern"
)

// canonViolations renders a violation list canonically for comparison.
func canonViolations(vs []Violation, sigma ged.Set) []string {
	idx := make(map[*ged.GED]int)
	for i, d := range sigma {
		idx[d] = i
	}
	out := make([]string, 0, len(vs))
	for _, v := range vs {
		s := fmt.Sprintf("g%d:", idx[v.GED])
		vars := v.GED.Pattern.Vars()
		for _, x := range vars {
			s += fmt.Sprintf("%s=%d;", x, v.Match[x])
		}
		out = append(out, s)
	}
	sort.Strings(out)
	return out
}

// TestParallelMatchesSequential: the parallel validator finds exactly
// the violations the sequential one does, for every worker count.
func TestParallelMatchesSequential(t *testing.T) {
	rng := rand.New(rand.NewSource(59))
	for trial := 0; trial < 30; trial++ {
		sigma := randomSigma(rng)
		g := randomGraph(rng)
		want := canonViolations(Validate(g, sigma, 0), sigma)
		for _, workers := range []int{1, 2, 4, 8} {
			got := canonViolations(ValidateParallel(g, sigma, 0, workers), sigma)
			if len(got) != len(want) {
				t.Fatalf("trial %d workers %d: %d violations vs %d sequential",
					trial, workers, len(got), len(want))
			}
			for i := range got {
				if got[i] != want[i] {
					t.Fatalf("trial %d workers %d: violation sets differ", trial, workers)
				}
			}
		}
	}
}

// TestParallelDeterministicOrder: repeated parallel runs return
// violations in the same order.
func TestParallelDeterministicOrder(t *testing.T) {
	rng := rand.New(rand.NewSource(61))
	sigma := randomSigma(rng)
	g := randomGraph(rng)
	first := ValidateParallel(g, sigma, 0, 4)
	for i := 0; i < 5; i++ {
		again := ValidateParallel(g, sigma, 0, 4)
		if len(again) != len(first) {
			t.Fatal("violation count changed between runs")
		}
		for j := range again {
			if again[j].GED != first[j].GED || fmt.Sprint(again[j].Match) != fmt.Sprint(first[j].Match) {
				t.Fatal("violation order changed between runs")
			}
		}
	}
}

func TestParallelLimit(t *testing.T) {
	q := pattern.New()
	q.AddVar("x", "p")
	phi := ged.New("f", q, nil, []ged.Literal{ged.ConstLit("x", "k", graph.Int(1))})
	g := randomGraph(rand.New(rand.NewSource(1)))
	for i := 0; i < 30; i++ {
		g.AddNode("p")
	}
	vs := ValidateParallel(g, ged.Set{phi}, 5, 4)
	if len(vs) != 5 {
		t.Errorf("limit 5: got %d", len(vs))
	}
}

func TestParallelEmptyPattern(t *testing.T) {
	phi := ged.New("e", pattern.New(), nil, nil)
	g := randomGraph(rand.New(rand.NewSource(2)))
	if n := len(ValidateParallel(g, ged.Set{phi}, 0, 4)); n != 0 {
		t.Errorf("empty consequent can never be violated, got %d", n)
	}
}

// TestForEachMatchBound covers the pre-binding primitive directly.
func TestForEachMatchBound(t *testing.T) {
	g := randomGraph(rand.New(rand.NewSource(3)))
	q := pattern.New()
	q.AddVar("x", "a").AddVar("y", "b")
	total := pattern.CountMatches(q, g)
	sum := 0
	for _, c := range g.CandidateNodes("a") {
		pattern.ForEachMatchBound(q, g, pattern.Match{"x": c}, func(pattern.Match) bool {
			sum++
			return true
		})
	}
	if sum != total {
		t.Errorf("partitioned count %d != total %d", sum, total)
	}
	// A label-violating pre-binding yields nothing.
	for _, c := range g.CandidateNodes("b") {
		found := false
		pattern.ForEachMatchBound(q, g, pattern.Match{"x": c}, func(pattern.Match) bool {
			found = true
			return false
		})
		if found && g.Label(c) != "a" {
			t.Error("label-violating pre-binding produced a match")
		}
	}
	// An unknown variable yields nothing.
	count := 0
	pattern.ForEachMatchBound(q, g, pattern.Match{"zzz": 0}, func(pattern.Match) bool {
		count++
		return true
	})
	if count != 0 {
		t.Error("unknown pre-bound variable must yield no matches")
	}
}
