package reason

// Differential tests for constant-literal pushdown: every validation
// API that now compiles plans with pushed-down antecedent literals must
// report violations byte-identical (canonical order, same evidence
// literal) to a probe-path oracle that enumerates with the legacy
// scan-and-probe plans and checks every literal post-match.

import (
	"context"
	"math/rand"
	"testing"
	"testing/quick"

	"gedlib/internal/ged"
	"gedlib/internal/gen"
	"gedlib/internal/graph"
	"gedlib/internal/pattern"
)

// probeOracleValidate is the legacy enumeration: probe plans, no
// pushdown, all literals checked after a full match materializes.
func probeOracleValidate(h pattern.Host, sigma ged.Set) []Violation {
	var out []Violation
	for _, d := range sigma {
		d := d
		pattern.CompileProbe(d.Pattern, h).ForEachBound(nil, func(m pattern.Match) bool {
			for _, l := range d.X {
				if !HoldsInGraph(h, l, m) {
					return true
				}
			}
			for _, l := range d.Y {
				if !HoldsInGraph(h, l, m) {
					out = append(out, Violation{GED: d, Match: m.Clone(), Literal: l})
					break
				}
			}
			return true
		})
	}
	sortViolations(out, sigma)
	return out
}

// violationBytes renders a violation list canonically, evidence literal
// included, for byte-for-byte comparison.
func violationBytes(vs []Violation, sigma ged.Set) string {
	idx := make(map[*ged.GED]int, len(sigma))
	for i, d := range sigma {
		idx[d] = i
	}
	var buf []byte
	for _, v := range vs {
		buf = append(buf, byte('0'+idx[v.GED]))
		buf = append(buf, ':')
		buf = appendViolationKey(buf, v)
		buf = append(buf, v.Literal.String()...)
		buf = append(buf, '\n')
	}
	return string(buf)
}

// pushdownWorkload derives a graph and a GED set whose antecedents mix
// constant literals (pushable), variable literals (not pushable) and
// dense patterns from one seed.
func pushdownWorkload(seed int64) (*graph.Graph, ged.Set) {
	labels := []graph.Label{"a", "b", "c"}
	attrs := []graph.Attr{"p", "q"}
	g := gen.RandomPropertyGraph(seed, 35, 3, labels, attrs, 3)
	sigma := gen.RandomGEDSet(seed+1, 8, 4, labels, attrs, 3)
	// A GED with two constant literals on distinct variables and a
	// cyclic pattern rides along: the multi-filter, multi-run case.
	q := pattern.New()
	q.AddVar("x", "a").AddVar("y", "b")
	q.AddEdge("x", "e", "y").AddEdge("y", "e", "x")
	rng := rand.New(rand.NewSource(seed + 2))
	sigma = append(sigma, ged.New("dense", q,
		[]ged.Literal{
			ged.ConstLit("x", "p", graph.Int(rng.Intn(3))),
			ged.ConstLit("y", "q", graph.Int(rng.Intn(3))),
		},
		[]ged.Literal{ged.VarLit("x", "q", "y", "p")},
	))
	return g, sigma
}

// TestPushdownViolationsByteIdentical: sequential, parallel and
// prepared-validator validation over both hosts agree byte-for-byte
// with the probe-path oracle.
func TestPushdownViolationsByteIdentical(t *testing.T) {
	ctx := context.Background()
	f := func(seed int64) bool {
		seed %= 1_000_000
		g, sigma := pushdownWorkload(seed)
		snap := g.Freeze()
		want := violationBytes(probeOracleValidate(snap, sigma), sigma)

		must := func(vs []Violation, err error) []Violation {
			if err != nil {
				t.Fatal(err)
			}
			return vs
		}
		for name, got := range map[string][]Violation{
			"graph":    must(ValidateOnCtx(ctx, g, sigma, 0)),
			"snapshot": must(ValidateOnCtx(ctx, snap, sigma, 0)),
			"parallel": must(ValidateParallelOnCtx(ctx, snap, sigma, 0, 4)),
			"prepared": NewValidatorOn(snap, sigma).Run(0),
		} {
			canon := append([]Violation(nil), got...)
			sortViolations(canon, sigma)
			if gotBytes := violationBytes(canon, sigma); gotBytes != want {
				t.Logf("seed %d: %s diverges from probe oracle:\n got %q\nwant %q", seed, name, gotBytes, want)
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Fatal(err)
	}
}

// TestPushdownTouchingByteIdentical: the touched-neighborhood API with
// pushed-down plans agrees with a probe oracle restricted to matches
// binding a touched node.
func TestPushdownTouchingByteIdentical(t *testing.T) {
	ctx := context.Background()
	f := func(seed int64) bool {
		seed %= 1_000_000
		g, sigma := pushdownWorkload(seed)
		snap := g.Freeze()
		rng := rand.New(rand.NewSource(seed + 3))
		touched := make([]graph.NodeID, 0, 6)
		for i := 0; i < 6; i++ {
			touched = append(touched, graph.NodeID(rng.Intn(g.NumNodes())))
		}
		inTouched := func(m pattern.Match) bool {
			for _, n := range m {
				for _, tn := range touched {
					if n == tn {
						return true
					}
				}
			}
			return false
		}
		var want []Violation
		for _, v := range probeOracleValidate(snap, sigma) {
			if inTouched(v.Match) {
				want = append(want, v)
			}
		}
		for _, host := range []pattern.Host{g, snap} {
			got, err := ValidateTouchingOnCtx(ctx, host, sigma, touched, 0)
			if err != nil {
				t.Fatal(err)
			}
			if violationBytes(got, sigma) != violationBytes(want, sigma) {
				t.Logf("seed %d host %T: touching diverges", seed, host)
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 20}); err != nil {
		t.Fatal(err)
	}
}
