// Package reason implements the three classical static analyses of GEDs
// from Section 5 of "Dependencies for Graphs" (Fan & Lu, PODS 2017):
//
//   - satisfiability (Section 5.1, Theorem 2): does Σ have a model — a
//     graph satisfying Σ in which every pattern of Σ has a match?
//   - implication (Section 5.2, Theorem 4): does every finite graph
//     satisfying Σ also satisfy φ?
//   - validation (Section 5.3): does a given graph satisfy Σ, and if
//     not, which matches violate which literals?
//
// Satisfiability and implication are decided through the revised chase,
// exactly as the paper's characterizations prescribe; both are
// intractable in general (coNP-complete and NP-complete, Theorems 3
// and 5), which here surfaces as worst-case exponential match
// enumeration inside the chase.
package reason

import (
	"context"

	"gedlib/internal/chase"
	"gedlib/internal/ged"
	"gedlib/internal/graph"
	"gedlib/internal/pattern"
)

// SatResult reports a satisfiability analysis.
type SatResult struct {
	// Satisfiable reports whether Σ has a model.
	Satisfiable bool
	// Chase is the chase of the canonical graph G_Σ (Theorem 2).
	Chase *chase.Result
	// Model is a concrete witness graph when satisfiable: the
	// materialized coercion of the terminal chase, which satisfies Σ and
	// matches every pattern of Σ.
	Model *graph.Graph
}

// CheckSat decides whether Σ is satisfiable in the strong sense of
// Section 5.1, by chasing the canonical graph G_Σ (Theorem 2: Σ is
// satisfiable iff chase(G_Σ, Σ) is consistent).
func CheckSat(sigma ged.Set) *SatResult {
	out, _ := CheckSatCtx(context.Background(), sigma, 0)
	return out
}

// CheckSatCtx is CheckSat with cooperative cancellation and an optional
// chase round bound (see chase.RunCtx). On cancellation or an exceeded
// bound the error is non-nil and the result is not meaningful.
func CheckSatCtx(ctx context.Context, sigma ged.Set, maxRounds int) (*SatResult, error) {
	gs, _ := sigma.CanonicalGraph()
	res, err := chase.RunCtx(ctx, gs, sigma, nil, maxRounds)
	if err != nil {
		return nil, err
	}
	out := &SatResult{Satisfiable: res.Consistent(), Chase: res}
	if res.Consistent() {
		out.Model = res.Materialize()
	}
	return out, nil
}

// DecideSat answers only the yes/no satisfiability question. For GFDx
// sets it returns true in O(1) beyond the syntactic class scan: with
// neither constant nor id literals no chase step can conflict, exactly
// the O(1) row of Theorem 3. Other classes fall back to the chase.
func DecideSat(sigma ged.Set) bool {
	if sigma.Classify() == ged.ClassGFDx {
		return true
	}
	gs, _ := sigma.CanonicalGraph()
	return chase.Run(gs, sigma).Consistent()
}

// ImplResult reports an implication analysis.
type ImplResult struct {
	// Implied reports Σ ⊨ φ.
	Implied bool
	// ByInconsistency is true when condition (1) of Theorem 4 applied:
	// chase(G_Q, Eq_X, Σ) is inconsistent, so no graph satisfying Σ has
	// a match of Q satisfying X, and φ holds vacuously.
	ByInconsistency bool
	// Chase is the chase of φ's canonical graph seeded with Eq_X.
	Chase *chase.Result
	// Missing is the first consequent literal that could not be deduced
	// when Implied is false.
	Missing *ged.Literal
}

// Implies decides Σ ⊨ φ by Theorem 4: chase the canonical graph G_Q of
// φ's pattern starting from Eq_X; φ is implied iff the chase is
// inconsistent, or it is consistent and every literal of Y can be
// deduced from its result.
func Implies(sigma ged.Set, phi *ged.GED) *ImplResult {
	out, _ := ImpliesCtx(context.Background(), sigma, phi, 0)
	return out
}

// ImpliesCtx is Implies with cooperative cancellation and an optional
// chase round bound (see chase.RunCtx).
func ImpliesCtx(ctx context.Context, sigma ged.Set, phi *ged.GED, maxRounds int) (*ImplResult, error) {
	gq, vm := phi.Pattern.ToGraph()
	seeds := make([]chase.Seed, 0, len(phi.X))
	for _, l := range phi.X {
		seeds = append(seeds, chase.SeedOf(l, vm))
	}
	res, err := chase.RunCtx(ctx, gq, sigma, seeds, maxRounds)
	if err != nil {
		return nil, err
	}
	if !res.Consistent() {
		return &ImplResult{Implied: true, ByInconsistency: true, Chase: res}, nil
	}
	for _, l := range phi.Y {
		if !res.Deduced(l, vm) {
			ll := l
			return &ImplResult{Implied: false, Chase: res, Missing: &ll}, nil
		}
	}
	return &ImplResult{Implied: true, Chase: res}, nil
}

// Violation is one witness that G ⊭ Σ: a match of a GED's pattern that
// satisfies X but fails the given consequent literal (for forbidding
// constraints the failed literal is part of the false desugaring).
type Violation struct {
	// GED is the violated dependency.
	GED *ged.GED
	// Match is the violating match h(x̄).
	Match pattern.Match
	// Literal is the first consequent literal not satisfied.
	Literal ged.Literal
}

// Validate finds violations of Σ in G, up to limit (limit <= 0 means
// all). G ⊨ Σ iff the result is empty (Section 5.3).
func Validate(g *graph.Graph, sigma ged.Set, limit int) []Violation {
	out, _ := ValidateCtx(context.Background(), g, sigma, limit)
	return out
}

// ValidateCtx is Validate with cooperative cancellation: ctx is checked
// between candidate matches and, via the matcher's abort hook, inside
// the backtracking search itself — so a cancelled context aborts even a
// match-free exponential exploration. The violations found so far are
// returned alongside ctx's error.
//
// The graph is frozen once into a read-only snapshot shared across all
// of Σ's match enumerations; to validate against a pre-built snapshot
// (or directly against the mutable graph) use ValidateOnCtx.
func ValidateCtx(ctx context.Context, g *graph.Graph, sigma ged.Set, limit int) ([]Violation, error) {
	return ValidateOnCtx(ctx, g.Freeze(), sigma, limit)
}

// ValidateOnCtx is ValidateCtx over any matcher host: a frozen
// *graph.Snapshot (the fast path) or a mutable *graph.Graph. With
// limit <= 0 both hosts return exactly the same violation sets; a
// positive limit truncates in enumeration order, which may differ
// between hosts (snapshots enumerate neighbors in (label, id) order,
// graphs in insertion order), so the reported prefix can differ even
// though the full sets agree.
func ValidateOnCtx(ctx context.Context, h pattern.Host, sigma ged.Set, limit int) ([]Violation, error) {
	var out []Violation
	stop := func() bool { return ctx.Err() != nil }
	for _, d := range sigma {
		d := d
		// Constant antecedent literals are pushed down into the plan, so
		// the enumeration below only ever surfaces matches that already
		// satisfy them; the in-callback X check covers the rest (variable
		// and id literals).
		pl := pattern.CompileFiltered(d.Pattern, h, PushdownFilters(d))
		pl.ForEachBoundCancel(nil, stop, func(m pattern.Match) bool {
			if ctx.Err() != nil {
				return false
			}
			for _, l := range d.X {
				if !HoldsInGraph(h, l, m) {
					return true
				}
			}
			for _, l := range d.Y {
				if !HoldsInGraph(h, l, m) {
					out = append(out, Violation{GED: d, Match: m.Clone(), Literal: l})
					break
				}
			}
			return limit <= 0 || len(out) < limit
		})
		if err := ctx.Err(); err != nil {
			return out, err
		}
		if limit > 0 && len(out) >= limit {
			break
		}
	}
	return out, nil
}

// Satisfies reports G ⊨ Σ.
func Satisfies(g *graph.Graph, sigma ged.Set) bool {
	return len(Validate(g, sigma, 1)) == 0
}

// HoldsInGraph evaluates h(x̄) ⊨ l directly against the stored attribute
// values of the host (a graph or a snapshot), with the paper's existence
// semantics: a literal over a missing attribute is false.
func HoldsInGraph(h pattern.Host, l ged.Literal, m pattern.Match) bool {
	k, ok := l.Kind()
	if !ok {
		panic("reason: non-GED literal in validation")
	}
	switch k {
	case ged.ConstLiteral:
		v, ok := h.Attr(m[l.Left.Var], l.Left.Attr)
		return ok && v.Equal(l.Right.Const)
	case ged.VarLiteral:
		v1, ok1 := h.Attr(m[l.Left.Var], l.Left.Attr)
		v2, ok2 := h.Attr(m[l.Right.Var], l.Right.Attr)
		return ok1 && ok2 && v1.Equal(v2)
	default:
		return m[l.Left.Var] == m[l.Right.Var]
	}
}

// ModelHasAllPatterns verifies the "strong" part of Section 5.1's model
// definition: every pattern of Σ has a match in g. CheckSat's models
// have this by construction; the check is exposed for tests and tools.
func ModelHasAllPatterns(g *graph.Graph, sigma ged.Set) bool {
	h := g.Freeze()
	for _, d := range sigma {
		if !pattern.HasMatch(d.Pattern, h) {
			return false
		}
	}
	return true
}

// IsModel reports whether g is a model of Σ: g ⊨ Σ and every pattern of
// Σ has a match in g.
func IsModel(g *graph.Graph, sigma ged.Set) bool {
	return Satisfies(g, sigma) && ModelHasAllPatterns(g, sigma)
}
