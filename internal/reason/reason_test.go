package reason

import (
	"fmt"
	"math/rand"
	"testing"

	"gedlib/internal/ged"
	"gedlib/internal/graph"
	"gedlib/internal/pattern"
)

// ---- Example 5 / Figure 3: satisfiability interaction ----

// fig3Phi1 is φ1 = Q1[x,y,z](x.A = x.B → y.id = z.id) with Q1 an a-node
// pointing at a b-node and a c-node.
func fig3Phi1() *ged.GED {
	q := pattern.New()
	q.AddVar("x", "a").AddVar("y", "b").AddVar("z", "c")
	q.AddEdge("x", "e", "y")
	q.AddEdge("x", "e", "z")
	return ged.New("phi1", q,
		[]ged.Literal{ged.VarLit("x", "A", "x", "B")},
		[]ged.Literal{ged.IDLit("y", "z")})
}

// fig3Phi2 is φ2 = Q2[x1,y1,z1,x2,y2,z2](∅ → x1.A = x1.B), Q2 being two
// wildcard-labeled copies of Q1's shape (so Q2 maps homomorphically into
// Q1 but not vice versa).
func fig3Phi2() *ged.GED {
	q := pattern.New()
	for _, i := range []string{"1", "2"} {
		x, y, z := pattern.Var("x"+i), pattern.Var("y"+i), pattern.Var("z"+i)
		q.AddVar(x, graph.Wildcard).AddVar(y, graph.Wildcard).AddVar(z, graph.Wildcard)
		q.AddEdge(x, "e", y)
		q.AddEdge(x, "e", z)
	}
	return ged.New("phi2", q, nil, []ged.Literal{ged.VarLit("x1", "A", "x1", "B")})
}

// fig3Phi2Prime extends Q2 with a connected component C2 (a d-node with
// a self-loop) so that neither Q1 nor Q'2 maps into the other.
func fig3Phi2Prime() *ged.GED {
	p := fig3Phi2()
	q := p.Pattern.Clone()
	q.AddVar("w", "d")
	q.AddEdge("w", "f", "w")
	return ged.New("phi2p", q, nil, []ged.Literal{ged.VarLit("x1", "A", "x1", "B")})
}

func TestExample5IndividuallySatisfiable(t *testing.T) {
	for _, phi := range []*ged.GED{fig3Phi1(), fig3Phi2(), fig3Phi2Prime()} {
		r := CheckSat(ged.Set{phi})
		if !r.Satisfiable {
			t.Errorf("%s alone must be satisfiable", phi.Name)
			continue
		}
		if !IsModel(r.Model, ged.Set{phi}) {
			t.Errorf("%s: produced witness is not a model", phi.Name)
		}
	}
}

func TestExample5Sigma1Unsatisfiable(t *testing.T) {
	r := CheckSat(ged.Set{fig3Phi1(), fig3Phi2()})
	if r.Satisfiable {
		t.Fatal("Σ1 of Example 5 must be unsatisfiable")
	}
	if r.Chase.Consistent() {
		t.Error("chase(G_Σ1, Σ1) must be inconsistent (Example 6)")
	}
}

func TestExample5Sigma2Unsatisfiable(t *testing.T) {
	// Even though Q1 and Q'2 are not homomorphic to each other, the GEDs
	// interact and Σ2 has no model (Example 5(2)).
	r := CheckSat(ged.Set{fig3Phi1(), fig3Phi2Prime()})
	if r.Satisfiable {
		t.Fatal("Σ2 of Example 5 must be unsatisfiable")
	}
}

// ---- Example 7 / Figure 4: implication ----

func TestExample7Implication(t *testing.T) {
	q1 := pattern.New()
	q1.AddVar("x1", graph.Wildcard).AddVar("x2", graph.Wildcard)
	phi1 := ged.New("phi1", q1,
		[]ged.Literal{ged.VarLit("x1", "A", "x2", "A")},
		[]ged.Literal{ged.IDLit("x1", "x2")})

	q2 := pattern.New()
	q2.AddVar("x1", graph.Wildcard).AddVar("x2", graph.Wildcard)
	phi2 := ged.New("phi2", q2,
		[]ged.Literal{ged.VarLit("x1", "B", "x2", "B")},
		[]ged.Literal{ged.VarLit("x1", "A", "x1", "B")})

	q := pattern.New()
	q.AddVar("x1", graph.Wildcard).AddVar("x2", graph.Wildcard)
	q.AddVar("x3", "a").AddVar("x4", "b")
	phi := ged.New("phi", q,
		[]ged.Literal{ged.VarLit("x1", "A", "x3", "A"), ged.VarLit("x2", "B", "x4", "B")},
		[]ged.Literal{ged.IDLit("x1", "x3"), ged.IDLit("x2", "x4")})

	r := Implies(ged.Set{phi1, phi2}, phi)
	if !r.Implied {
		t.Fatalf("Σ must imply φ (Example 7); missing literal: %v", r.Missing)
	}
	if r.ByInconsistency {
		t.Error("implication must come from deduction, not inconsistency")
	}
	// x3 (label a) must have been identified with wildcard-labeled x1 —
	// this is why the chase compares labels with ⪯.
	if !r.Implied {
		return
	}

	// Dropping phi2 loses the implication.
	r2 := Implies(ged.Set{phi1}, phi)
	if r2.Implied {
		t.Error("φ must not follow from φ1 alone")
	}
	if r2.Missing == nil {
		t.Error("non-implication must report a missing literal")
	}
}

func TestImplicationReflexive(t *testing.T) {
	phi := fig3Phi1()
	if !Implies(ged.Set{phi}, phi).Implied {
		t.Error("Σ must imply its own members")
	}
}

func TestImplicationTrivial(t *testing.T) {
	// Empty consequent is always implied; X → X likewise.
	q := pattern.New()
	q.AddVar("x", "a")
	empty := ged.New("e", q, []ged.Literal{ged.ConstLit("x", "k", graph.Int(1))}, nil)
	if !Implies(nil, empty).Implied {
		t.Error("empty consequent must be implied by anything")
	}
	xx := ged.New("xx", q,
		[]ged.Literal{ged.ConstLit("x", "k", graph.Int(1))},
		[]ged.Literal{ged.ConstLit("x", "k", graph.Int(1))})
	if !Implies(nil, xx).Implied {
		t.Error("X → X must be implied by the empty set")
	}
}

func TestImplicationByInconsistency(t *testing.T) {
	// Condition (1) of Theorem 4: an unsatisfiable antecedent implies
	// anything.
	q := pattern.New()
	q.AddVar("x", "a")
	phi := ged.New("inc", q,
		[]ged.Literal{ged.ConstLit("x", "k", graph.Int(1)), ged.ConstLit("x", "k", graph.Int(2))},
		[]ged.Literal{ged.ConstLit("x", "m", graph.Int(9))})
	r := Implies(nil, phi)
	if !r.Implied || !r.ByInconsistency {
		t.Error("inconsistent Eq_X must imply φ vacuously")
	}
}

func TestImplicationTransitivityChain(t *testing.T) {
	// A → B and B → C implies A → C on one pattern.
	q := pattern.New()
	q.AddVar("x", "p")
	ab := ged.New("ab", q,
		[]ged.Literal{ged.ConstLit("x", "a", graph.Int(1))},
		[]ged.Literal{ged.ConstLit("x", "b", graph.Int(2))})
	bc := ged.New("bc", q,
		[]ged.Literal{ged.ConstLit("x", "b", graph.Int(2))},
		[]ged.Literal{ged.ConstLit("x", "c", graph.Int(3))})
	ac := ged.New("ac", q,
		[]ged.Literal{ged.ConstLit("x", "a", graph.Int(1))},
		[]ged.Literal{ged.ConstLit("x", "c", graph.Int(3))})
	if !Implies(ged.Set{ab, bc}, ac).Implied {
		t.Error("transitivity chain must be implied")
	}
	if Implies(ged.Set{ab}, ac).Implied {
		t.Error("dropping the middle link must lose the implication")
	}
}

func TestGKeyImplication(t *testing.T) {
	// A key on (title, release) implies the same key with a stronger
	// antecedent (title, release, label).
	q := pattern.New()
	q.AddVar("x", "album")
	k1, err := ged.NewGKey("k1", q, "x", func(x, fx pattern.Var) []ged.Literal {
		return []ged.Literal{ged.VarLit(x, "title", fx, "title"), ged.VarLit(x, "release", fx, "release")}
	})
	if err != nil {
		t.Fatal(err)
	}
	k2, err := ged.NewGKey("k2", q, "x", func(x, fx pattern.Var) []ged.Literal {
		return []ged.Literal{
			ged.VarLit(x, "title", fx, "title"),
			ged.VarLit(x, "release", fx, "release"),
			ged.VarLit(x, "label", fx, "label"),
		}
	})
	if err != nil {
		t.Fatal(err)
	}
	if !Implies(ged.Set{k1}, k2).Implied {
		t.Error("weaker key must imply stronger-antecedent key")
	}
	if Implies(ged.Set{k2}, k1).Implied {
		t.Error("stronger-antecedent key must not imply the weaker key")
	}
}

// ---- Validation: the Example 1 / Example 3 scenarios ----

func TestValidationVideoGame(t *testing.T) {
	// φ1: a video game can only be created by programmers; the Yago3
	// Ghetto Blaster inconsistency.
	q := pattern.New()
	q.AddVar("x", "person").AddVar("y", "product")
	q.AddEdge("x", "create", "y")
	phi1 := ged.New("phi1", q,
		[]ged.Literal{ged.ConstLit("y", "type", graph.String("video game"))},
		[]ged.Literal{ged.ConstLit("x", "type", graph.String("programmer"))})

	g := graph.New()
	gibson := g.AddNodeAttrs("person", map[graph.Attr]graph.Value{
		"name": graph.String("Tony Gibson"), "type": graph.String("psychologist")})
	blaster := g.AddNodeAttrs("product", map[graph.Attr]graph.Value{
		"name": graph.String("Ghetto Blaster"), "type": graph.String("video game")})
	g.AddEdge(gibson, "create", blaster)

	vs := Validate(g, ged.Set{phi1}, 0)
	if len(vs) != 1 {
		t.Fatalf("got %d violations, want 1", len(vs))
	}
	if vs[0].Match["x"] != gibson {
		t.Error("violation must name the psychologist")
	}

	// Fixing the type removes the violation.
	g.SetAttr(gibson, "type", graph.String("programmer"))
	if !Satisfies(g, ged.Set{phi1}) {
		t.Error("fixed graph must satisfy φ1")
	}
}

func TestValidationTwoCapitals(t *testing.T) {
	// φ2: one country, two capitals with different names (Yago3 Finland).
	q := pattern.New()
	q.AddVar("x", "country").AddVar("y", "city").AddVar("z", "city")
	q.AddEdge("x", "capital", "y")
	q.AddEdge("x", "capital", "z")
	phi2 := ged.New("phi2", q, nil, []ged.Literal{ged.VarLit("y", "name", "z", "name")})

	g := graph.New()
	fin := g.AddNodeAttrs("country", map[graph.Attr]graph.Value{"name": graph.String("Finland")})
	hel := g.AddNodeAttrs("city", map[graph.Attr]graph.Value{"name": graph.String("Helsinki")})
	stp := g.AddNodeAttrs("city", map[graph.Attr]graph.Value{"name": graph.String("Saint Petersburg")})
	g.AddEdge(fin, "capital", hel)
	g.AddEdge(fin, "capital", stp)

	if Satisfies(g, ged.Set{phi2}) {
		t.Fatal("two differently-named capitals must violate φ2")
	}
}

func TestValidationInheritance(t *testing.T) {
	// φ3: if y is_a x and x has attribute A, y inherits it (birds/moa).
	q := pattern.New()
	q.AddVar("x", graph.Wildcard).AddVar("y", graph.Wildcard)
	q.AddEdge("y", "is_a", "x")
	phi3 := ged.New("phi3", q,
		[]ged.Literal{ged.VarLit("x", "can_fly", "x", "can_fly")},
		[]ged.Literal{ged.VarLit("y", "can_fly", "x", "can_fly")})

	g := graph.New()
	bird := g.AddNodeAttrs("class", map[graph.Attr]graph.Value{"can_fly": graph.String("yes")})
	moa := g.AddNodeAttrs("species", map[graph.Attr]graph.Value{"can_fly": graph.String("no")})
	g.AddEdge(moa, "is_a", bird)

	vs := Validate(g, ged.Set{phi3}, 0)
	if len(vs) != 1 {
		t.Fatalf("got %d violations, want 1 (moa is a flightless bird)", len(vs))
	}
	// A species with no can_fly attribute at all also violates: the
	// consequent requires the attribute to exist.
	kiwi := g.AddNode("species")
	g.AddEdge(kiwi, "is_a", bird)
	g.SetAttr(moa, "can_fly", graph.String("yes"))
	vs = Validate(g, ged.Set{phi3}, 0)
	if len(vs) != 1 || vs[0].Match["y"] != kiwi {
		t.Errorf("missing attribute must violate the consequent: %v", vs)
	}
}

func TestValidationForbidding(t *testing.T) {
	// φ4: nobody is both a child and a parent of the same person
	// (DBPedia's Sclater cycle).
	q := pattern.New()
	q.AddVar("x", "person").AddVar("y", "person")
	q.AddEdge("x", "child", "y")
	q.AddEdge("x", "parent", "y")
	phi4 := ged.New("phi4", q, nil, ged.False("x"))

	g := graph.New()
	philip := g.AddNode("person")
	william := g.AddNode("person")
	g.AddEdge(philip, "child", william)
	g.AddEdge(philip, "parent", william)

	vs := Validate(g, ged.Set{phi4}, 0)
	if len(vs) != 1 {
		t.Fatalf("got %d violations, want 1", len(vs))
	}

	ok := graph.New()
	a := ok.AddNode("person")
	b := ok.AddNode("person")
	ok.AddEdge(a, "child", b)
	if !Satisfies(ok, ged.Set{phi4}) {
		t.Error("plain child edge must satisfy φ4")
	}
}

func TestValidationSpamRule(t *testing.T) {
	// φ5 / Q5 with k = 2: two accounts liking the same blogs, posting
	// blogs sharing a peculiar keyword; one confirmed fake.
	q := pattern.New()
	q.AddVar("x", "account").AddVar("x2", "account")
	q.AddVar("z1", "blog").AddVar("z2", "blog")
	q.AddVar("y1", "blog").AddVar("y2", "blog")
	q.AddEdge("x", "post", "z1")
	q.AddEdge("x2", "post", "z2")
	for _, a := range []pattern.Var{"x", "x2"} {
		for _, b := range []pattern.Var{"y1", "y2"} {
			q.AddEdge(a, "like", b)
		}
	}
	phi5 := ged.New("phi5", q,
		[]ged.Literal{
			ged.ConstLit("x2", "is_fake", graph.Int(1)),
			ged.ConstLit("z1", "keyword", graph.String("cheap pills")),
			ged.ConstLit("z2", "keyword", graph.String("cheap pills")),
		},
		[]ged.Literal{ged.ConstLit("x", "is_fake", graph.Int(1))})

	g := graph.New()
	acc1 := g.AddNode("account")
	acc2 := g.AddNodeAttrs("account", map[graph.Attr]graph.Value{"is_fake": graph.Int(1)})
	b1 := g.AddNodeAttrs("blog", map[graph.Attr]graph.Value{"keyword": graph.String("cheap pills")})
	b2 := g.AddNodeAttrs("blog", map[graph.Attr]graph.Value{"keyword": graph.String("cheap pills")})
	p1 := g.AddNode("blog")
	p2 := g.AddNode("blog")
	g.AddEdge(acc1, "post", b1)
	g.AddEdge(acc2, "post", b2)
	for _, a := range []graph.NodeID{acc1, acc2} {
		for _, b := range []graph.NodeID{p1, p2} {
			g.AddEdge(a, "like", b)
		}
	}
	vs := Validate(g, ged.Set{phi5}, 0)
	found := false
	for _, v := range vs {
		if v.Match["x"] == acc1 {
			found = true
		}
	}
	if !found {
		t.Error("acc1 must be caught by the spam rule")
	}
}

func TestValidationGKeyDuplicates(t *testing.T) {
	// ψ2: two albums with equal title and release violate the key when
	// they are distinct nodes.
	q := pattern.New()
	q.AddVar("x", "album")
	psi2, err := ged.NewGKey("psi2", q, "x", func(x, fx pattern.Var) []ged.Literal {
		return []ged.Literal{ged.VarLit(x, "title", fx, "title"), ged.VarLit(x, "release", fx, "release")}
	})
	if err != nil {
		t.Fatal(err)
	}
	g := graph.New()
	a1 := g.AddNodeAttrs("album", map[graph.Attr]graph.Value{
		"title": graph.String("Bleach"), "release": graph.Int(1989)})
	a2 := g.AddNodeAttrs("album", map[graph.Attr]graph.Value{
		"title": graph.String("Bleach"), "release": graph.Int(1989)})
	vs := Validate(g, ged.Set{psi2}, 0)
	if len(vs) == 0 {
		t.Fatal("duplicate albums must violate the key")
	}
	// Two "Bleach" albums by different bands (different release) are fine.
	g2 := graph.New()
	g2.AddNodeAttrs("album", map[graph.Attr]graph.Value{
		"title": graph.String("Bleach"), "release": graph.Int(1989)})
	g2.AddNodeAttrs("album", map[graph.Attr]graph.Value{
		"title": graph.String("Bleach"), "release": graph.Int(1990)})
	if !Satisfies(g2, ged.Set{psi2}) {
		t.Error("distinct releases must satisfy the key")
	}
	_ = a1
	_ = a2
}

func TestValidateLimit(t *testing.T) {
	q := pattern.New()
	q.AddVar("x", "p")
	phi := ged.New("f", q, nil, []ged.Literal{ged.ConstLit("x", "k", graph.Int(1))})
	g := graph.New()
	for i := 0; i < 10; i++ {
		g.AddNode("p")
	}
	if n := len(Validate(g, ged.Set{phi}, 3)); n != 3 {
		t.Errorf("limit 3: got %d", n)
	}
	if n := len(Validate(g, ged.Set{phi}, 0)); n != 10 {
		t.Errorf("no limit: got %d", n)
	}
}

// ---- Cross-checking properties ----

// TestSatModelsAreModels: whenever CheckSat reports satisfiable, the
// produced witness must actually be a model (Theorem 2's construction).
func TestSatModelsAreModels(t *testing.T) {
	rng := rand.New(rand.NewSource(19))
	sat, unsat := 0, 0
	for trial := 0; trial < 120; trial++ {
		sigma := randomSigma(rng)
		r := CheckSat(sigma)
		if !r.Satisfiable {
			unsat++
			continue
		}
		sat++
		if !Satisfies(r.Model, sigma) {
			t.Fatalf("trial %d: witness violates Σ\nΣ: %v\nmodel:\n%s", trial, sigma, r.Model)
		}
		if !ModelHasAllPatterns(r.Model, sigma) {
			t.Fatalf("trial %d: witness misses a pattern match", trial)
		}
	}
	if sat == 0 || unsat == 0 {
		t.Logf("note: sat=%d unsat=%d (want both populated for coverage)", sat, unsat)
	}
}

// TestGFDxAlwaysSatisfiable: Theorem 3's O(1) row — sets of GFDxs are
// always satisfiable (no constant or id literals, so no chase conflicts).
func TestGFDxAlwaysSatisfiable(t *testing.T) {
	rng := rand.New(rand.NewSource(23))
	for trial := 0; trial < 100; trial++ {
		sigma := randomSigma(rng)
		// Strip to GFDx: drop constant/id literals.
		var gfdx ged.Set
		for _, d := range sigma {
			strip := func(ls []ged.Literal) []ged.Literal {
				var out []ged.Literal
				for _, l := range ls {
					if k, _ := l.Kind(); k == ged.VarLiteral {
						out = append(out, l)
					}
				}
				return out
			}
			gfdx = append(gfdx, ged.New(d.Name, d.Pattern, strip(d.X), strip(d.Y)))
		}
		if gfdx.Classify() != ged.ClassGFDx {
			t.Fatal("stripping failed")
		}
		if !CheckSat(gfdx).Satisfiable {
			t.Fatalf("trial %d: GFDx set reported unsatisfiable: %v", trial, gfdx)
		}
	}
}

// TestImplicationSoundOnRandomGraphs: if Σ ⊨ φ, then every random graph
// satisfying Σ satisfies φ.
func TestImplicationSoundOnRandomGraphs(t *testing.T) {
	rng := rand.New(rand.NewSource(29))
	implied, checked := 0, 0
	for trial := 0; trial < 150; trial++ {
		sigma := randomSigma(rng)
		phi := randomSigma(rng)[0]
		r := Implies(sigma, phi)
		if !r.Implied {
			continue
		}
		implied++
		for i := 0; i < 10; i++ {
			g := randomGraph(rng)
			if !Satisfies(g, sigma) {
				continue
			}
			checked++
			if !Satisfies(g, ged.Set{phi}) {
				t.Fatalf("trial %d: Σ ⊨ φ claimed but counterexample found\nΣ: %v\nφ: %v\nG:\n%s",
					trial, sigma, phi, g)
			}
		}
	}
	t.Logf("implied=%d graph-checks=%d", implied, checked)
}

func randomGraph(rng *rand.Rand) *graph.Graph {
	labels := []graph.Label{"a", "b"}
	attrs := []graph.Attr{"p", "q"}
	g := graph.New()
	n := 2 + rng.Intn(4)
	for i := 0; i < n; i++ {
		id := g.AddNode(labels[rng.Intn(len(labels))])
		for _, a := range attrs {
			if rng.Intn(2) == 0 {
				g.SetAttr(id, a, graph.Int(rng.Intn(2)))
			}
		}
	}
	for i := 0; i < 2*n; i++ {
		if rng.Intn(2) == 0 {
			g.AddEdge(graph.NodeID(rng.Intn(n)), "e", graph.NodeID(rng.Intn(n)))
		}
	}
	return g
}

func randomSigma(rng *rand.Rand) ged.Set {
	labels := []graph.Label{"a", "b", graph.Wildcard}
	attrs := []graph.Attr{"p", "q"}
	var sigma ged.Set
	for i := 0; i < 1+rng.Intn(2); i++ {
		q := pattern.New()
		q.AddVar("x", labels[rng.Intn(len(labels))])
		q.AddVar("y", labels[rng.Intn(len(labels))])
		if rng.Intn(2) == 0 {
			q.AddEdge("x", "e", "y")
		}
		var xs, ys []ged.Literal
		switch rng.Intn(3) {
		case 0:
			xs = append(xs, ged.VarLit("x", attrs[0], "y", attrs[0]))
		case 1:
			xs = append(xs, ged.ConstLit("x", attrs[rng.Intn(2)], graph.Int(rng.Intn(2))))
		}
		switch rng.Intn(4) {
		case 0:
			ys = append(ys, ged.IDLit("x", "y"))
		case 1:
			ys = append(ys, ged.ConstLit("y", attrs[rng.Intn(2)], graph.Int(rng.Intn(2))))
		case 2:
			ys = append(ys, ged.VarLit("x", attrs[1], "y", attrs[1]))
		case 3:
			ys = append(ys, ged.ConstLit("x", attrs[0], graph.Int(rng.Intn(2))),
				ged.ConstLit("y", attrs[0], graph.Int(rng.Intn(2))))
		}
		sigma = append(sigma, ged.New(fmt.Sprintf("r%d", i), q, xs, ys))
	}
	return sigma
}
