package reason

import (
	"testing"

	"gedlib/internal/ged"
	"gedlib/internal/gen"
	"gedlib/internal/graph"
	"gedlib/internal/pattern"
)

// validateInjective is Validate under subgraph-isomorphism semantics —
// the ablation baseline of [19, 23] the paper argues against.
func validateInjective(g *graph.Graph, sigma ged.Set, limit int) []Violation {
	var out []Violation
	for _, d := range sigma {
		d := d
		pattern.ForEachMatchInjective(d.Pattern, g, func(m pattern.Match) bool {
			for _, l := range d.X {
				if !HoldsInGraph(g, l, m) {
					return true
				}
			}
			for _, l := range d.Y {
				if !HoldsInGraph(g, l, m) {
					out = append(out, Violation{GED: d, Match: m.Clone(), Literal: l})
					break
				}
			}
			return limit <= 0 || len(out) < limit
		})
	}
	return out
}

// TestIsomorphismMakesRecursiveKeysVacuous reproduces the paper's
// Section 3 argument for homomorphism semantics: ψ₃ identifies artists
// via the ids of a shared album (X₈ contains x.id = x'.id), which an
// injective match can never satisfy — so under isomorphism the key
// catches nothing, while under homomorphism it catches the duplicate.
func TestIsomorphismMakesRecursiveKeysVacuous(t *testing.T) {
	// One album recorded by two artist nodes with the same name — a
	// duplicate ψ₃ should catch.
	g := graph.New()
	album := g.AddNodeAttrs("album", map[graph.Attr]graph.Value{"title": graph.String("Bleach")})
	a1 := g.AddNodeAttrs("artist", map[graph.Attr]graph.Value{"name": graph.String("Nirvana")})
	a2 := g.AddNodeAttrs("artist", map[graph.Attr]graph.Value{"name": graph.String("Nirvana")})
	g.AddEdge(album, "by", a1)
	g.AddEdge(album, "by", a2)

	psi3 := gen.PaperPsi3()

	hom := Validate(g, ged.Set{psi3}, 0)
	if len(hom) == 0 {
		t.Fatal("homomorphism semantics must catch the duplicate artist")
	}
	iso := validateInjective(g, ged.Set{psi3}, 0)
	if len(iso) != 0 {
		t.Fatalf("under isomorphism ψ₃ should be vacuous (X₈ needs x = x'), got %d violations", len(iso))
	}
}

// TestIsomorphismUoEKeyHasNoSensibleMatches reproduces the "UoE"
// example: the key Q[x,y](∅ → x.id = y.id) over two same-labeled nodes.
// Under homomorphism a single-node graph satisfies it (x and y map to
// the same node); under isomorphism the pattern needs two distinct
// nodes, so the key forbids any graph with ≥ 2 UoE nodes from being a
// model while a 1-node graph has no injective match at all.
func TestIsomorphismUoEKeyHasNoSensibleMatches(t *testing.T) {
	q := pattern.New()
	q.AddVar("x", "UoE").AddVar("y", "UoE")
	key := ged.New("uoe", q, nil, []ged.Literal{ged.IDLit("x", "y")})

	single := graph.New()
	single.AddNode("UoE")
	// Homomorphism: one match (x = y), key satisfied, pattern matched —
	// a model in the paper's strong sense.
	if !IsModel(single, ged.Set{key}) {
		t.Fatal("single-node graph must be a model under homomorphism")
	}
	// Isomorphism: no injective match exists on one node.
	if n := pattern.CountMatchesInjective(q, single); n != 0 {
		t.Fatalf("injective matches on a single node: %d", n)
	}
	// And with two nodes, every injective match violates the key.
	double := graph.New()
	double.AddNode("UoE")
	double.AddNode("UoE")
	if vs := validateInjective(double, ged.Set{key}, 0); len(vs) == 0 {
		t.Fatal("two distinct UoE nodes must violate under isomorphism")
	}
}

// TestInjectiveCountsSubsetOfHomomorphism: injective matches are always
// a subset; the triangle-into-K3 counts match the combinatorial truth.
func TestInjectiveCountsSubsetOfHomomorphism(t *testing.T) {
	g := graph.New()
	ids := make([]graph.NodeID, 3)
	for i := range ids {
		ids[i] = g.AddNode("c")
	}
	for i := 0; i < 3; i++ {
		for j := 0; j < 3; j++ {
			if i != j {
				g.AddEdge(ids[i], "e", ids[j])
			}
		}
	}
	// A path of two e-edges: 12 homs, 6 injective (ordered triples).
	q := pattern.New()
	q.AddVar("a", "c").AddVar("b", "c").AddVar("d", "c")
	q.AddEdge("a", "e", "b")
	q.AddEdge("b", "e", "d")
	hom := pattern.CountMatches(q, g)
	inj := pattern.CountMatchesInjective(q, g)
	if hom != 12 || inj != 6 {
		t.Fatalf("path counts: hom=%d inj=%d, want 12/6", hom, inj)
	}
}
