package reason

import (
	"context"
	"sort"

	"gedlib/internal/ged"
	"gedlib/internal/graph"
	"gedlib/internal/obs"
	"gedlib/internal/pattern"
)

// ViolationStore is a maintained violation set: the answer to "which
// matches violate Σ" kept perpetually fresh under graph updates instead
// of recomputed. Seeding runs one full validation; from then on every
// update costs work proportional to the delta — the touched
// neighborhoods searched for new violations, and the stored entries
// that actually bind a touched node (found through an inverted
// node→entry index), re-checked:
//
//	st, _ := NewViolationStoreCtx(ctx, g.Freeze(), sigma)
//	...
//	from := st.Snapshot().SourceVersion()
//	mutate g
//	if delta := g.DeltaSince(from); delta != nil {
//		st.Apply(ctx, st.Snapshot().Apply(delta), delta.TouchedNodes())
//	} else {
//		// the journal no longer reaches back to from: re-seed from a
//		// fresh freeze (Engine.Apply does exactly this, and also
//		// re-seeds when the backlog rivals the graph)
//	}
//
// Apply exploits the two monotonicity facts of add-only graphs that
// ValidateTouching documents: every *new* violation's match touches an
// updated node (matches are monotone, and attribute writes land on a
// match's own bindings), and an *existing* violation can only change
// status if its match touches an updated node. Touched entries are
// re-checked with FailingLiteral — which also refreshes the recorded
// evidence, since an update can fix the recorded literal while
// breaking another — and the touched neighborhoods are searched for
// new violations, deduplicated against what is already stored.
//
// Entries carry their canonical sort key and dense binding vector,
// computed once at admission: a delta re-sorts nothing — survivors stay
// in order and the (few, already-sorted) newcomers merge in.
//
// The store is single-writer: Apply must not run concurrently with
// itself or Violations. Engine.Apply provides the locking.
type ViolationStore struct {
	val    *Validator
	sigma  ged.Set
	gedIdx map[*ged.GED]int
	vs     []*storedViolation
	seen   seenSet
	// byNode indexes live entries by every node their match binds.
	// Lists are pruned of dropped entries as they are visited and the
	// whole index is rebuilt when dross piles up.
	byNode map[graph.NodeID][]*storedViolation
	dross  int
	// stamp deduplicates multi-bind entries within one Apply.
	stamp uint64
	// view is the cached materialization of vs; deltas that change
	// nothing (the common case for localized updates) hand the same
	// slice back instead of rebuilding O(|V|) state per call. The
	// backing array is never written after materialization.
	view []Violation
	// maintenance counters (Observe); nil-safe no-op sinks by default.
	ctrRecheck, ctrDrop, ctrFresh *obs.Counter
}

// storedViolation is one maintained violation with its admission-time
// derived data.
type storedViolation struct {
	v       Violation
	gi      int
	key     string         // canonical within-GED sort key
	bind    []graph.NodeID // match bindings in variable order
	dropped bool
	stamp   uint64
}

func (e *storedViolation) less(o *storedViolation) bool {
	if e.gi != o.gi {
		return e.gi < o.gi
	}
	return e.key < o.key
}

func (st *ViolationStore) admit(v Violation) *storedViolation {
	gi := st.gedIdx[v.GED]
	vars := v.GED.Pattern.Vars()
	bind := make([]graph.NodeID, len(vars))
	for i, x := range vars {
		bind[i] = v.Match[x]
	}
	e := &storedViolation{
		v:    v,
		gi:   gi,
		key:  string(appendViolationKey(nil, v)),
		bind: bind,
	}
	for _, n := range distinctBind(bind) {
		st.byNode[n] = append(st.byNode[n], e)
	}
	return e
}

// distinctBind returns bind's distinct nodes (in place of a set; match
// vectors are tiny).
func distinctBind(bind []graph.NodeID) []graph.NodeID {
	out := bind[:0:0]
	for i, n := range bind {
		dup := false
		for _, m := range bind[:i] {
			if m == n {
				dup = true
				break
			}
		}
		if !dup {
			out = append(out, n)
		}
	}
	return out
}

// distinctBindCount is len(distinctBind(bind)) without the allocation.
func distinctBindCount(bind []graph.NodeID) int {
	count := 0
	for i, n := range bind {
		dup := false
		for _, m := range bind[:i] {
			if m == n {
				dup = true
				break
			}
		}
		if !dup {
			count++
		}
	}
	return count
}

// NewViolationStoreCtx seeds a maintained violation set with one full
// sequential validation through the prepared validator — share the
// Engine's (or any existing) validator to reuse its compiled plans;
// build a one-off with NewValidatorOn otherwise. On cancellation the
// partial store is not returned: a store is either complete or absent.
func NewViolationStoreCtx(ctx context.Context, val *Validator) (*ViolationStore, error) {
	return NewViolationStoreParallelCtx(ctx, val, 1)
}

// NewViolationStoreParallelCtx is NewViolationStoreCtx with the seeding
// validation data-parallel across workers (1 = sequential, <= 0 =
// GOMAXPROCS); the resulting store is identical — seeding is the one
// O(|G|) step of the store's life, so it deserves the same parallelism
// a full Validate gets.
func NewViolationStoreParallelCtx(ctx context.Context, val *Validator, workers int) (*ViolationStore, error) {
	sigma := val.sigma
	vs, err := val.RunParallelCtx(ctx, 0, workers)
	if err != nil {
		return nil, err
	}
	st := &ViolationStore{
		val:    val,
		sigma:  sigma,
		gedIdx: make(map[*ged.GED]int, len(sigma)),
		byNode: make(map[graph.NodeID][]*storedViolation),
	}
	for i, d := range sigma {
		st.gedIdx[d] = i
	}
	st.vs = make([]*storedViolation, len(vs))
	for i, v := range vs {
		st.vs[i] = st.admit(v)
		st.seen.add(st.vs[i].gi, v.GED.Pattern.Vars(), v.Match)
	}
	sort.Slice(st.vs, func(i, j int) bool { return st.vs[i].less(st.vs[j]) })
	return st, nil
}

// NewViolationStoreSeeded builds a maintained store over val's snapshot
// from an externally computed violation set — the complete violations of
// val's rules against val's snapshot, in any order (the sharded engine
// seeds per-shard stores this way, from a partitioned parallel search
// instead of val's own run). The slice is not retained; entries are
// admitted and put into canonical order.
func NewViolationStoreSeeded(val *Validator, vs []Violation) *ViolationStore {
	sigma := val.sigma
	st := &ViolationStore{
		val:    val,
		sigma:  sigma,
		gedIdx: make(map[*ged.GED]int, len(sigma)),
		byNode: make(map[graph.NodeID][]*storedViolation),
	}
	for i, d := range sigma {
		st.gedIdx[d] = i
	}
	st.vs = make([]*storedViolation, 0, len(vs))
	for _, v := range vs {
		if st.seen.add(st.gedIdx[v.GED], v.GED.Pattern.Vars(), v.Match) {
			st.vs = append(st.vs, st.admit(v))
		}
	}
	sort.Slice(st.vs, func(i, j int) bool { return st.vs[i].less(st.vs[j]) })
	return st
}

// Snapshot returns the snapshot the store currently reflects.
func (st *ViolationStore) Snapshot() *graph.Snapshot { return st.val.Snapshot() }

// Sigma returns the rule set the store maintains violations of.
func (st *ViolationStore) Sigma() ged.Set { return st.sigma }

// Violations returns the maintained set in canonical order. The slice
// (cached across no-change deltas, its backing array never rewritten)
// and the Match maps are read-only for the caller.
func (st *ViolationStore) Violations() []Violation {
	if st.view == nil {
		view := make([]Violation, len(st.vs))
		for i, e := range st.vs {
			view[i] = e.v
		}
		st.view = view
	}
	return st.view
}

// Len returns the current violation count.
func (st *ViolationStore) Len() int { return len(st.vs) }

// Apply advances the store to snap — the delta-updated successor of the
// store's current snapshot — where touched are the delta's touched
// nodes (Delta.TouchedNodes). On a non-nil error the store may reflect
// only part of the delta; callers should discard and re-seed it.
//
// Apply is Recheck (drop/refresh the stored entries the delta touches)
// followed by the validator's own touched-neighborhood search feeding
// AdmitFresh. Callers that find the fresh violations elsewhere — the
// sharded engine searches across shard queues — run the two halves
// directly.
func (st *ViolationStore) Apply(ctx context.Context, snap *graph.Snapshot, touched []graph.NodeID) error {
	if err := st.Recheck(ctx, snap, touched); err != nil || len(touched) == 0 {
		return err
	}
	// Find the new violations around the touched nodes; matches already
	// stored re-surface here and are dropped by the key set. The fresh
	// list arrives canonically sorted, so it merges rather than
	// re-sorting the store.
	fresh, err := st.val.TouchingCtx(ctx, touched, 0)
	st.AdmitFresh(fresh)
	return err
}

// Recheck is the first half of Apply: it rebases the store's validator
// onto snap and re-checks exactly the stored violations whose match
// binds a touched node, dropping the ones that no longer violate and
// refreshing recorded evidence. It does not search for new violations.
func (st *ViolationStore) Recheck(ctx context.Context, snap *graph.Snapshot, touched []graph.NodeID) error {
	st.val = st.val.Rebase(snap)
	if len(touched) == 0 {
		return ctx.Err()
	}
	// Re-check exactly the stored violations whose match the delta
	// touches — an untouched match cannot have changed status. The
	// index lists are compacted of dropped entries as a side effect.
	st.stamp++
	refreshed := false
	droppedAny := false
	for _, n := range touched {
		list := st.byNode[n]
		if len(list) == 0 {
			continue
		}
		live := list[:0]
		for _, e := range list {
			if e.dropped {
				st.dross--
				continue
			}
			live = append(live, e)
			if e.stamp == st.stamp {
				continue
			}
			e.stamp = st.stamp
			st.ctrRecheck.Inc()
			l, still := FailingLiteral(snap, e.v)
			switch {
			case !still:
				st.ctrDrop.Inc()
				st.seen.remove(e.gi, e.v.GED.Pattern.Vars(), e.v.Match)
				e.dropped = true
				// The entry appears in one index list per distinct
				// bound node; one reference is pruned right here.
				st.dross += distinctBindCount(e.bind) - 1
				live = live[:len(live)-1]
				droppedAny = true
			case l != e.v.Literal:
				// The update fixed the recorded literal but broke
				// another; keep the evidence current.
				e.v.Literal = l
				refreshed = true
			}
		}
		if len(live) == 0 {
			delete(st.byNode, n)
		} else {
			st.byNode[n] = live
		}
	}
	if droppedAny {
		kept := st.vs[:0]
		for _, e := range st.vs {
			if !e.dropped {
				kept = append(kept, e)
			}
		}
		st.vs = kept
	}
	if refreshed || droppedAny {
		st.view = nil
	}
	if st.dross > 4*len(st.vs)+64 {
		st.rebuildIndex()
	}
	return ctx.Err()
}

// AdmitFresh is the second half of Apply: it merges externally found
// fresh violations into the store. The input must be verified against
// the store's current snapshot and canonically sorted (SortViolations);
// duplicates — of stored entries or within vs — are dropped by the key
// set, so re-discovering a maintained violation is harmless.
func (st *ViolationStore) AdmitFresh(vs []Violation) {
	var add []*storedViolation
	for _, v := range vs {
		if st.seen.add(st.gedIdx[v.GED], v.GED.Pattern.Vars(), v.Match) {
			add = append(add, st.admit(v))
		}
	}
	if len(add) > 0 {
		st.ctrFresh.Add(uint64(len(add)))
		st.vs = mergeStored(st.vs, add)
		st.view = nil
	}
}

// rebuildIndex re-derives byNode from the live entries, shedding the
// references dropped entries left in unvisited lists.
func (st *ViolationStore) rebuildIndex() {
	st.byNode = make(map[graph.NodeID][]*storedViolation, len(st.byNode))
	for _, e := range st.vs {
		for _, n := range distinctBind(e.bind) {
			st.byNode[n] = append(st.byNode[n], e)
		}
	}
	st.dross = 0
}

// mergeStored folds the sorted newcomers into the sorted store by a
// backward in-place merge, reusing the store's capacity (growing it
// only amortizedly) instead of reallocating the whole set per delta.
func mergeStored(a, b []*storedViolation) []*storedViolation {
	i := len(a) - 1
	out := append(a, b...)
	for j, w := len(b)-1, len(out)-1; j >= 0; w-- {
		if i >= 0 && b[j].less(a[i]) {
			out[w] = a[i]
			i--
		} else {
			out[w] = b[j]
			j--
		}
	}
	return out
}

var _ pattern.Host = (*graph.Snapshot)(nil)
