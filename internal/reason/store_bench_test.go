package reason

import (
	"context"
	"math/rand"
	"testing"

	"gedlib/internal/ged"
	"gedlib/internal/gen"
	"gedlib/internal/graph"
)

func BenchmarkStoreApplyKB2000(b *testing.B) {
	ctx := context.Background()
	g, _ := gen.KnowledgeBase(11, 2000, 0.1)
	sigma := ged.Set{gen.PaperPhi1(), gen.PaperPhi2(), gen.PaperPhi3(), gen.PaperPhi4()}
	st, err := NewViolationStoreCtx(ctx, NewValidatorOn(g.Freeze(), sigma))
	if err != nil {
		b.Fatal(err)
	}
	rng := rand.New(rand.NewSource(5))
	types := []graph.Value{graph.String("programmer"), graph.String("psychologist")}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		from := st.Snapshot().SourceVersion()
		for k := 0; k < 10; k++ {
			id := graph.NodeID(rng.Intn(g.NumNodes()))
			if rng.Intn(2) == 0 {
				g.SetAttr(id, "type", types[rng.Intn(2)])
			} else {
				g.AddEdge(id, "create", graph.NodeID(rng.Intn(g.NumNodes())))
			}
		}
		d := g.DeltaSince(from)
		if err := st.Apply(ctx, st.Snapshot().Apply(d), d.TouchedNodes()); err != nil {
			b.Fatal(err)
		}
		_ = st.Violations()
	}
}
