package reason

import (
	"context"
	"math/rand"
	"testing"

	"gedlib/internal/ged"
	"gedlib/internal/gen"
	"gedlib/internal/graph"
	"gedlib/internal/pattern"
)

// mutateReason applies a few random mutations matching the vocabulary
// of randomGraph/randomSigma (labels a/b, attrs p/q, edge label e).
func mutateReason(g *graph.Graph, rng *rand.Rand, nOps int) {
	labels := []graph.Label{"a", "b"}
	attrs := []graph.Attr{"p", "q"}
	for i := 0; i < nOps; i++ {
		switch rng.Intn(6) {
		case 0:
			g.AddNode(labels[rng.Intn(len(labels))])
		case 1, 2:
			g.AddEdge(graph.NodeID(rng.Intn(g.NumNodes())), "e", graph.NodeID(rng.Intn(g.NumNodes())))
		default:
			g.SetAttr(graph.NodeID(rng.Intn(g.NumNodes())), attrs[rng.Intn(2)], graph.Int(rng.Intn(3)))
		}
	}
}

// TestViolationStoreEqualsFullValidate: a ViolationStore maintained
// through a random delta stream reports exactly the violations a full
// from-scratch validation reports, after every single delta.
func TestViolationStoreEqualsFullValidate(t *testing.T) {
	ctx := context.Background()
	rng := rand.New(rand.NewSource(311))
	for trial := 0; trial < 40; trial++ {
		sigma := randomSigma(rng)
		g := randomGraph(rng)
		st, err := NewViolationStoreCtx(ctx, NewValidatorOn(g.Freeze(), sigma))
		if err != nil {
			t.Fatal(err)
		}
		for step := 0; step < 8; step++ {
			from := st.Snapshot().SourceVersion()
			mutateReason(g, rng, 1+rng.Intn(4))
			d := g.DeltaSince(from)
			if err := st.Apply(ctx, st.Snapshot().Apply(d), d.TouchedNodes()); err != nil {
				t.Fatal(err)
			}
			want := canonViolations(Validate(g, sigma, 0), sigma)
			got := canonViolations(st.Violations(), sigma)
			if len(want) != len(got) {
				t.Fatalf("trial %d step %d: store has %d violations, full validate %d",
					trial, step, len(got), len(want))
			}
			for i := range want {
				if want[i] != got[i] {
					t.Fatalf("trial %d step %d: violation sets differ at %d: %s vs %s",
						trial, step, i, got[i], want[i])
				}
			}
		}
	}
}

// TestViolationStoreRefreshesLiteral: when an update fixes the recorded
// failing literal but breaks a different one of the same match, the
// maintained entry must report the literal that fails now, exactly as a
// fresh validation would.
func TestViolationStoreRefreshesLiteral(t *testing.T) {
	ctx := context.Background()
	g := graph.New()
	n := g.AddNodeAttrs("a", map[graph.Attr]graph.Value{"p": graph.Int(1), "q": graph.Int(0)})
	q := patternOf(t)
	d := ged.New("both", q, nil, []ged.Literal{
		ged.ConstLit("x", "p", graph.Int(1)),
		ged.ConstLit("x", "q", graph.Int(2)),
	})
	sigma := ged.Set{d}
	st, err := NewViolationStoreCtx(ctx, NewValidatorOn(g.Freeze(), sigma))
	if err != nil {
		t.Fatal(err)
	}
	if got := st.Violations(); len(got) != 1 || got[0].Literal != d.Y[1] {
		t.Fatalf("seed: want one violation failing %s, got %+v", d.Y[1], got)
	}
	// Fix q (the recorded literal) and break p in one delta.
	from := st.Snapshot().SourceVersion()
	g.SetAttr(n, "q", graph.Int(2))
	g.SetAttr(n, "p", graph.Int(0))
	dl := g.DeltaSince(from)
	if err := st.Apply(ctx, st.Snapshot().Apply(dl), dl.TouchedNodes()); err != nil {
		t.Fatal(err)
	}
	got := st.Violations()
	if len(got) != 1 {
		t.Fatalf("want one violation, got %d", len(got))
	}
	if got[0].Literal != d.Y[0] {
		t.Fatalf("stale literal: store reports %s, but %s is what fails now", got[0].Literal, d.Y[0])
	}
	want := Validate(g, sigma, 0)
	if len(want) != 1 || want[0].Literal != got[0].Literal {
		t.Fatalf("store disagrees with fresh validation: %+v vs %+v", got, want)
	}
}

func patternOf(t *testing.T) *pattern.Pattern {
	t.Helper()
	q := pattern.New()
	q.AddVar("x", "a")
	return q
}

// TestViolationStoreOnWorkload drives the store over the knowledge-base
// workload: break and repair rules repeatedly, comparing against full
// validation each time.
func TestViolationStoreOnWorkload(t *testing.T) {
	ctx := context.Background()
	rng := rand.New(rand.NewSource(313))
	g, _ := gen.KnowledgeBase(29, 40, 0.1)
	sigma := ged.Set{gen.PaperPhi1(), gen.PaperPhi2(), gen.PaperPhi3(), gen.PaperPhi4()}
	st, err := NewViolationStoreCtx(ctx, NewValidatorOn(g.Freeze(), sigma))
	if err != nil {
		t.Fatal(err)
	}
	types := []graph.Value{
		graph.String("programmer"), graph.String("video game"), graph.String("psychologist"),
	}
	for step := 0; step < 25; step++ {
		from := st.Snapshot().SourceVersion()
		for k := 0; k < 1+rng.Intn(3); k++ {
			id := graph.NodeID(rng.Intn(g.NumNodes()))
			switch rng.Intn(3) {
			case 0:
				g.SetAttr(id, "type", types[rng.Intn(len(types))])
			case 1:
				g.SetAttr(id, "name", graph.String("renamed"))
			default:
				g.AddEdge(id, "capital", graph.NodeID(rng.Intn(g.NumNodes())))
			}
		}
		d := g.DeltaSince(from)
		if err := st.Apply(ctx, st.Snapshot().Apply(d), d.TouchedNodes()); err != nil {
			t.Fatal(err)
		}
		want := canonViolations(Validate(g, sigma, 0), sigma)
		got := canonViolations(st.Violations(), sigma)
		if len(want) != len(got) {
			t.Fatalf("step %d: store %d vs full %d", step, len(got), len(want))
		}
		for i := range want {
			if want[i] != got[i] {
				t.Fatalf("step %d: sets differ at %d", step, i)
			}
		}
	}
}
